// Shared setup for the experiment benches (E1-E7).
//
// Every bench prints one or more paper-style tables on stdout and exits 0
// iff the hard real-time invariant (zero deadline misses where it must
// hold) was observed.  CSV copies of each table are written next to the
// binary as <bench>_<table>.csv for offline plotting.
#pragma once

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "core/registry.hpp"
#include "cpu/processors.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"

namespace dvs::bench {

/// Generator settings used across the random-task-set experiments: 5-ms
/// period grid (finite hyperperiods), periods 10..160 ms.
inline task::GeneratorConfig base_generator(std::size_t n_tasks, double u,
                                            double bcet_ratio) {
  task::GeneratorConfig cfg;
  cfg.n_tasks = n_tasks;
  cfg.total_utilization = u;
  cfg.period_min = 0.01;
  cfg.period_max = 0.16;
  cfg.bcet_ratio = bcet_ratio;
  cfg.grid_fraction = 0.5;
  return cfg;
}

/// One random case: task set from `gen`, uniform RET in [bcet, wcet].
inline exp::Case uniform_case(const task::GeneratorConfig& gen,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  return {task::generate_task_set(gen, rng), task::uniform_model(seed)};
}

/// Print the sweep and also persist it as CSV under ./bench_csv/.
inline void emit(const exp::SweepOutcome& sweep, const std::string& title,
                 const std::string& csv_name) {
  exp::print_sweep(std::cout, sweep, title);
  std::error_code ec;
  std::filesystem::create_directories("bench_csv", ec);
  std::ofstream csv("bench_csv/" + csv_name);
  if (csv) exp::write_sweep_csv(csv, sweep);
}

/// Total misses across a sweep (0 required for a clean exit).
inline std::int64_t total_misses(const exp::SweepOutcome& sweep) {
  std::int64_t misses = 0;
  for (const auto& p : sweep.points) misses += p.total_misses;
  return misses;
}

}  // namespace dvs::bench
