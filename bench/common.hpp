// Shared setup for the experiment benches (E1-E7).
//
// Every bench prints one or more paper-style tables on stdout and exits 0
// iff the hard real-time invariant (zero deadline misses where it must
// hold) was observed.  CSV copies of each table are written next to the
// binary as <bench>_<table>.csv for offline plotting; execution metadata
// (wall-clock, simulations/s, threads) goes to a sibling *.meta.csv so the
// data CSVs stay byte-identical across thread counts.
//
// Parallelism: every bench accepts `--jobs N` (or the SLACKDVS_JOBS
// environment variable; the flag wins).  N = 0 (the default) uses one
// worker per hardware thread, N = 1 forces the legacy serial path.
// Results are bit-for-bit identical for every N — see DESIGN.md §6.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "cpu/processors.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dvs::bench {

/// Worker-thread request from `--jobs N` / SLACKDVS_JOBS (flag wins);
/// 0 = hardware concurrency.  Unknown arguments are rejected with exit 2
/// so a typo cannot silently run a different experiment.
inline std::size_t parse_jobs(int argc, char** argv) {
  std::size_t jobs = 0;
  if (const char* env = std::getenv("SLACKDVS_JOBS")) {
    jobs = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--jobs" && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::cerr << "usage: " << argv[0] << " [--jobs N]\n"
                << "  (N = 0: one worker per hardware thread; N = 1: "
                   "serial; results are identical for every N)\n";
      std::exit(2);
    }
  }
  return jobs;
}

/// Options of the fault/robustness benches, a superset of parse_jobs:
/// `--strict` turns failure isolation off (fail-fast on the first broken
/// simulation), `--smoke` shrinks the grid for CI smoke runs, `--oracle`
/// adds the clairvoyant YDS lower bound and per-governor optimality-gap
/// columns (ExperimentConfig::oracle).
struct BenchOptions {
  std::size_t jobs = 0;
  bool strict = false;
  bool smoke = false;
  bool oracle = false;
};

inline BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions opts;
  if (const char* env = std::getenv("SLACKDVS_JOBS")) {
    opts.jobs = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--jobs" && i + 1 < argc) {
      opts.jobs =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (a == "--strict") {
      opts.strict = true;
    } else if (a == "--smoke") {
      opts.smoke = true;
    } else if (a == "--oracle") {
      opts.oracle = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--jobs N] [--strict] [--smoke] [--oracle]\n"
                << "  --jobs N   worker threads (0: one per hardware thread; "
                   "1: serial; identical results for every N)\n"
                << "  --strict   abort on the first failed simulation instead "
                   "of isolating it\n"
                << "  --smoke    tiny grid for CI smoke runs\n"
                << "  --oracle   compute the clairvoyant YDS bound and report "
                   "per-governor optimality gaps\n";
      std::exit(2);
    }
  }
  return opts;
}

/// Generator settings used across the random-task-set experiments: 5-ms
/// period grid (finite hyperperiods), periods 10..160 ms.
inline task::GeneratorConfig base_generator(std::size_t n_tasks, double u,
                                            double bcet_ratio) {
  task::GeneratorConfig cfg;
  cfg.n_tasks = n_tasks;
  cfg.total_utilization = u;
  cfg.period_min = 0.01;
  cfg.period_max = 0.16;
  cfg.bcet_ratio = bcet_ratio;
  cfg.grid_fraction = 0.5;
  return cfg;
}

/// One random case: task set from `gen`, uniform RET in [bcet, wcet].
inline exp::Case uniform_case(const task::GeneratorConfig& gen,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  return {task::generate_task_set(gen, rng), task::uniform_model(seed)};
}

/// Print the sweep and also persist it as CSV under ./bench_csv/ (data in
/// <csv_name>, timing metadata in <csv_name minus .csv>.meta.csv).
inline void emit(const exp::SweepOutcome& sweep, const std::string& title,
                 const std::string& csv_name) {
  exp::print_sweep(std::cout, sweep, title);
  std::error_code ec;
  std::filesystem::create_directories("bench_csv", ec);
  std::ofstream csv("bench_csv/" + csv_name);
  if (csv) exp::write_sweep_csv(csv, sweep);
  std::string meta_name = csv_name;
  if (meta_name.size() > 4 && meta_name.ends_with(".csv")) {
    meta_name.resize(meta_name.size() - 4);
  }
  std::ofstream meta("bench_csv/" + meta_name + ".meta.csv");
  if (meta) exp::write_sweep_meta_csv(meta, sweep);
  // Slack-audit companion (one row per governor), only for sweeps that ran
  // with ExperimentConfig::audit_decisions — the data CSV stays untouched.
  bool audited = false;
  for (const auto& a : sweep.slack_accuracy) audited |= a.decisions > 0;
  if (audited) {
    std::ofstream metrics("bench_csv/" + meta_name + ".metrics.csv");
    if (metrics) exp::write_sweep_metrics_csv(metrics, sweep);
  }
}

/// Total misses across a sweep (0 required for a clean exit).
inline std::int64_t total_misses(const exp::SweepOutcome& sweep) {
  std::int64_t misses = 0;
  for (const auto& p : sweep.points) misses += p.total_misses;
  return misses;
}

/// Sweep-wide floor of the continuous optimality gap: the minimum of
/// gap_continuous over every governor at every point (skipping empty
/// stats — a governor whose every case failed contributes nothing).
/// Returns 0 when the sweep carries no gap samples at all, so a
/// misconfigured oracle run fails the >= 1 gate loudly instead of
/// passing vacuously.
inline double min_gap_continuous(const exp::SweepOutcome& sweep) {
  double floor = 0.0;
  bool any = false;
  for (const auto& p : sweep.points) {
    for (const auto& s : p.gap_continuous) {
      if (s.empty()) continue;
      floor = any ? std::min(floor, s.min()) : s.min();
      any = true;
    }
  }
  return any ? floor : 0.0;
}

/// Oracle-mode exit gate: on an idle-free processor no governor's energy
/// can undercut the clairvoyant continuous YDS bound, so every recorded
/// gap must stay >= 1 (minus float tolerance).  Trivially true on
/// non-oracle sweeps.
inline bool oracle_gap_holds(const exp::SweepOutcome& sweep,
                             double tol = 1e-6) {
  return !sweep.oracle || min_gap_continuous(sweep) >= 1.0 - tol;
}

/// Evaluate `fn(i)` for i in [0, n) and return the results in index order.
/// With jobs != 1 the calls run on a util::ThreadPool; `fn` must be safe
/// to invoke concurrently (the benches' case runners are pure functions of
/// the index).  Because results are collected by index, the output — and
/// any aggregation done over it in order — is identical for every jobs
/// value.  This is the deterministic fan-out used by the benches whose
/// loops do not fit exp::run_sweep (E5, E8, A1).
template <typename Fn>
auto parallel_index_map(std::size_t jobs, std::size_t n, const Fn& fn)
    -> std::vector<decltype(fn(std::size_t{}))> {
  using R = decltype(fn(std::size_t{}));
  std::vector<R> results;
  results.reserve(n);
  const std::size_t workers =
      std::min(util::ThreadPool::resolve_threads(jobs), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) results.push_back(fn(i));
    return results;
  }
  util::ThreadPool pool(workers);
  std::vector<std::future<R>> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pending.push_back(pool.submit([&fn, i] { return fn(i); }));
  }
  for (auto& f : pending) results.push_back(f.get());
  return results;
}

}  // namespace dvs::bench
