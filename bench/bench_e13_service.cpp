// E13 — planning-service throughput and latency (EXPERIMENTS.md §E13).
//
// Starts an in-process svc::Daemon on an ephemeral loopback port and
// measures, over real TCP round trips:
//
//   table 1  single client, synchronous admission queries — qps and the
//            client-observed p50/p99 latency,
//   table 2  C concurrent clients, each synchronous — aggregate qps,
//   table 3  one batch request of N admission queries vs N sequential
//            singles — per-query speedup of the batched path.
//
// A machine-readable copy goes to bench_csv/BENCH_service.json.  Exit 0
// requires: the single-client admission rate meets --min-qps (default
// 10000), and the batch responses are byte-identical to the single
// responses (the protocol's determinism contract).
//
//   bench_e13_service [--seconds S] [--clients C] [--batch N]
//                     [--min-qps Q] [--jobs N]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_mini.hpp"
#include "obs/json_writer.hpp"
#include "svc/daemon.hpp"
#include "task/benchmarks.hpp"
#include "task/task_set.hpp"
#include "util/error.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Minimal synchronous NDJSON client (same framing as tools/planner_client).
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    DVS_EXPECT(fd_ >= 0, std::string("socket(): ") + std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    DVS_EXPECT(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof addr) == 0,
               std::string("connect(): ") + std::strerror(errno));
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  std::string round_trip(const std::string& line) {
    std::string framed = line;
    framed.push_back('\n');
    const char* p = framed.data();
    std::size_t left = framed.size();
    while (left > 0) {
      const ssize_t n = ::send(fd_, p, left, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        DVS_EXPECT(false, "send() failed mid-benchmark");
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    while (true) {
      const auto nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string out = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return out;
      }
      char chunk[65536];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      DVS_EXPECT(n > 0 || (n < 0 && errno == EINTR),
                 "connection closed mid-benchmark");
      if (n > 0) buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

/// Admission query over the CNC preset, inlined as a "tasks" array so the
/// daemon exercises the full parse -> validate -> demand-test path.
std::string admit_query(const dvs::task::TaskSet& ts) {
  std::string out;
  dvs::obs::JsonWriter j(out);
  j.begin_object().kv("op", "admit");
  j.key("tasks").begin_array();
  for (const auto& t : ts.tasks()) {
    j.begin_object()
        .kv("name", t.name)
        .kv("period", t.period)
        .kv("wcet", t.wcet)
        .kv("deadline", t.deadline)
        .kv("bcet", t.bcet)
        .end_object();
  }
  j.end_array().end_object();
  return out;
}

struct LoadResult {
  std::uint64_t queries = 0;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double qps() const { return seconds > 0.0 ? queries / seconds : 0.0; }
};

/// Drive synchronous queries for `seconds`, recording per-query latency.
LoadResult drive(Client& client, const std::string& query, double seconds) {
  LoadResult r;
  std::vector<double> lat_us;
  lat_us.reserve(1 << 16);
  const auto end = Clock::now() + std::chrono::duration<double>(seconds);
  while (Clock::now() < end) {
    const auto t0 = Clock::now();
    const std::string resp = client.round_trip(query);
    const auto t1 = Clock::now();
    DVS_EXPECT(resp.rfind("{\"ok\":true", 0) == 0,
               "daemon returned an error under load: " + resp);
    lat_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    ++r.queries;
  }
  r.seconds = seconds;
  if (!lat_us.empty()) {
    std::sort(lat_us.begin(), lat_us.end());
    r.p50_us = lat_us[lat_us.size() / 2];
    r.p99_us = lat_us[std::min(lat_us.size() - 1,
                               static_cast<std::size_t>(
                                   0.99 * static_cast<double>(lat_us.size())))];
  }
  return r;
}

struct Options {
  double seconds = 2.0;
  std::size_t clients = 4;
  std::size_t batch = 1000;
  double min_qps = 10000.0;
  std::size_t jobs = 0;
};

Options parse_options(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_arg = i + 1 < argc;
    if (a == "--seconds" && has_arg) {
      o.seconds = std::strtod(argv[++i], nullptr);
    } else if (a == "--clients" && has_arg) {
      o.clients = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--batch" && has_arg) {
      o.batch = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--min-qps" && has_arg) {
      o.min_qps = std::strtod(argv[++i], nullptr);
    } else if (a == "--jobs" && has_arg) {
      o.jobs = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--seconds S] [--clients C] [--batch N] [--min-qps Q]"
                   " [--jobs N]\n";
      std::exit(2);
    }
  }
  DVS_EXPECT(o.seconds > 0.0 && o.clients >= 1 && o.batch >= 1,
             "bench_e13_service: invalid options");
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_options(argc, argv);
  const dvs::task::TaskSet cnc = dvs::task::cnc_task_set();
  const std::string query = admit_query(cnc);

  dvs::svc::DaemonOptions dopts;
  dopts.port = 0;
  dopts.batch_threads = opts.jobs;
  dvs::svc::Daemon daemon(dopts);
  daemon.start();
  const std::uint16_t port = daemon.port();
  std::cout << "E13: planning service on 127.0.0.1:" << port
            << " (admission query: " << query.size() << " bytes, "
            << cnc.size() << " tasks)\n\n";

  // --- Table 1: single synchronous client -------------------------------
  LoadResult single;
  {
    Client client(port);
    client.round_trip(query);  // warm up (first query builds the session)
    single = drive(client, query, opts.seconds);
  }
  std::cout << "single client, synchronous admission\n"
            << "  queries    " << single.queries << "\n"
            << "  qps        " << static_cast<std::uint64_t>(single.qps())
            << "\n"
            << "  p50        " << single.p50_us << " us\n"
            << "  p99        " << single.p99_us << " us\n\n";

  // --- Table 2: concurrent synchronous clients --------------------------
  std::vector<LoadResult> per_client(opts.clients);
  {
    std::vector<std::thread> threads;
    threads.reserve(opts.clients);
    for (std::size_t c = 0; c < opts.clients; ++c) {
      threads.emplace_back([&, c] {
        Client client(port);
        client.round_trip(query);
        per_client[c] = drive(client, query, opts.seconds);
      });
    }
    for (auto& t : threads) t.join();
  }
  std::uint64_t concurrent_queries = 0;
  double concurrent_p99 = 0.0;
  for (const LoadResult& r : per_client) {
    concurrent_queries += r.queries;
    concurrent_p99 = std::max(concurrent_p99, r.p99_us);
  }
  const double concurrent_qps =
      static_cast<double>(concurrent_queries) / opts.seconds;
  std::cout << opts.clients << " concurrent clients\n"
            << "  queries    " << concurrent_queries << "\n"
            << "  qps        " << static_cast<std::uint64_t>(concurrent_qps)
            << "\n"
            << "  worst p99  " << concurrent_p99 << " us\n\n";

  // --- Table 3: batch vs sequential singles -----------------------------
  double singles_s = 0.0;
  double batch_s = 0.0;
  bool batch_identical = true;
  {
    Client client(port);
    client.round_trip(query);
    std::vector<std::string> single_resps;
    single_resps.reserve(opts.batch);
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < opts.batch; ++i) {
      single_resps.push_back(client.round_trip(query));
    }
    singles_s = std::chrono::duration<double>(Clock::now() - t0).count();

    std::string batch_req = R"({"op":"batch","queries":[)";
    for (std::size_t i = 0; i < opts.batch; ++i) {
      if (i != 0) batch_req.push_back(',');
      batch_req += query;
    }
    batch_req += "]}";
    const auto t1 = Clock::now();
    const std::string batch_resp = client.round_trip(batch_req);
    batch_s = std::chrono::duration<double>(Clock::now() - t1).count();

    const dvs::obs::JsonValue parsed = dvs::obs::parse_json(batch_resp);
    const dvs::obs::JsonValue* results = parsed.find("results");
    DVS_EXPECT(results != nullptr && results->is_array() &&
                   results->array.size() == opts.batch,
               "batch response malformed: " + batch_resp.substr(0, 200));
    for (std::size_t i = 0; i < opts.batch; ++i) {
      batch_identical = batch_identical &&
                        dvs::obs::write_json(results->array[i]) ==
                            single_resps[i];
    }
  }
  const double per_query_speedup = batch_s > 0.0 ? singles_s / batch_s : 0.0;
  std::cout << "batch of " << opts.batch << " admissions vs singles\n"
            << "  singles    " << singles_s * 1e3 << " ms\n"
            << "  batch      " << batch_s * 1e3 << " ms\n"
            << "  speedup    " << per_query_speedup << "x\n"
            << "  identical  " << (batch_identical ? "yes" : "NO") << "\n\n";

  daemon.stop();

  // --- BENCH_service.json ----------------------------------------------
  {
    std::string report;
    dvs::obs::JsonWriter j(report);
    j.begin_object();
    j.kv("bench", "e13_service").kv("seconds", opts.seconds);
    j.key("single").begin_object();
    j.kv("queries", single.queries)
        .kv("qps", single.qps())
        .kv("p50_us", single.p50_us)
        .kv("p99_us", single.p99_us)
        .end_object();
    j.key("concurrent").begin_object();
    j.kv("clients", static_cast<std::uint64_t>(opts.clients))
        .kv("queries", concurrent_queries)
        .kv("qps", concurrent_qps)
        .kv("worst_p99_us", concurrent_p99)
        .end_object();
    j.key("batch").begin_object();
    j.kv("n", static_cast<std::uint64_t>(opts.batch))
        .kv("singles_ms", singles_s * 1e3)
        .kv("batch_ms", batch_s * 1e3)
        .kv("speedup", per_query_speedup)
        .kv("identical", batch_identical)
        .end_object();
    j.kv("min_qps_gate", opts.min_qps);
    j.end_object();
    std::error_code ec;
    std::filesystem::create_directories("bench_csv", ec);
    std::ofstream out("bench_csv/BENCH_service.json");
    if (out) out << report << '\n';
  }

  bool pass = true;
  if (single.qps() < opts.min_qps) {
    std::cout << "FAIL: single-client qps " << single.qps() << " < gate "
              << opts.min_qps << "\n";
    pass = false;
  }
  if (!batch_identical) {
    std::cout << "FAIL: batch responses differ from single responses\n";
    pass = false;
  }
  std::cout << (pass ? "E13 PASS" : "E13 FAIL") << "\n";
  return pass ? 0 : 1;
}
