// E9 — Fault injection: WCET overruns, containment policies, and
// processor faults (DESIGN.md §7).
//
// Part A sweeps the per-job overrun probability (magnitude fixed at +50%
// WCET) under each sim::OverrunPolicy; Part B fixes the probability and
// sweeps the overrun magnitude; Part C injects processor faults
// (stuck-frequency + transition stalls) at increasing rates.  Every
// governor runs wrapped in fault::CheckedGovernor, so an out-of-range
// speed request under fault pressure becomes a recorded SimFailure
// instead of a silently wrong number.
//
// Expected shape: under `none` the miss ratio grows with the fault rate
// (the paper's guarantee is conditioned on demand <= WCET);
// `clamp_at_wcet` restores the fault-free run exactly, so its sweeps must
// stay at zero misses; `escalate_to_max_speed` trades energy for misses
// in between.  Exit 0 iff no simulation failed, the clamp sweeps kept the
// hard real-time invariant, and every fault-free baseline point is
// miss-free.
#include "common.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "fault/fault.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace dvs;

constexpr std::uint64_t kFaultSeedSalt = 0x9e3779b97f4a7c15ull;

// Containment policies compared in Parts A and B.
const sim::OverrunPolicy kPolicies[] = {
    sim::OverrunPolicy::kNone,
    sim::OverrunPolicy::kClampAtWcet,
    sim::OverrunPolicy::kEscalateToMaxSpeed,
};

exp::CaseBuilder overrun_builder(double fixed_prob, double fixed_mag,
                                 bool sweep_is_magnitude) {
  return [=](double x, std::size_t /*rep*/, std::uint64_t seed) {
    exp::Case c = bench::uniform_case(bench::base_generator(8, 0.85, 0.1),
                                      seed);
    fault::FaultSpec spec;
    spec.seed = seed ^ kFaultSeedSalt;
    spec.overrun_prob = sweep_is_magnitude ? fixed_prob : x;
    spec.overrun_magnitude = sweep_is_magnitude ? x : fixed_mag;
    c.workload = fault::faulty_workload(std::move(c.workload), spec);
    return c;
  };
}

// Append one combined-CSV row per (point, governor) of `sweep`.
void append_rows(util::CsvWriter& csv, const std::string& part,
                 sim::OverrunPolicy policy, const std::string& x_name,
                 const exp::SweepOutcome& sweep) {
  for (const auto& p : sweep.points) {
    for (std::size_t g = 0; g < sweep.governors.size(); ++g) {
      const auto& miss = p.miss_ratio[g];
      const auto& energy = p.normalized_energy[g];
      csv.row({part, fault::containment_name(policy), x_name,
               util::format_double(p.x, 6), sweep.governors[g],
               miss.count() > 0 ? util::format_double(miss.mean(), 6) : "",
               miss.count() > 0 ? util::format_double(miss.max(), 6) : "",
               energy.count() > 0 ? util::format_double(energy.mean(), 6)
                                  : "",
               std::to_string(sweep.failures.size())});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dvs;
  const bench::BenchOptions opts = bench::parse_bench_options(argc, argv);

  exp::ExperimentConfig cfg = exp::default_config();
  cfg.governors = {"staticEDF", "ccEDF", "laEDF", "DRA", "lpSEH"};
  cfg.seed = 9;
  cfg.replications = opts.smoke ? 2 : 6;
  cfg.sim_length = opts.smoke ? 0.4 : 1.2;
  cfg.n_threads = opts.jobs;
  cfg.check_governors = true;  // loud failures instead of silent clamps
  cfg.fail_fast = opts.strict;

  const std::vector<double> probs =
      opts.smoke ? std::vector<double>{0.0, 0.2}
                 : std::vector<double>{0.0, 0.05, 0.1, 0.2, 0.4};
  const std::vector<double> mags = opts.smoke
                                       ? std::vector<double>{0.5}
                                       : std::vector<double>{0.25, 0.5, 1.0};
  constexpr double kFixedMag = 0.5;   // Part A: demand = 1.5 x WCET
  constexpr double kFixedProb = 0.2;  // Part B: one job in five overruns

  std::error_code ec;
  std::filesystem::create_directories("bench_csv", ec);
  util::CsvFile combined("bench_csv/bench_e9_faults.csv");
  combined.writer().row({"part", "containment", "x_name", "x", "governor",
                         "miss_ratio_mean", "miss_ratio_max",
                         "norm_energy_mean", "failures"});

  std::size_t failures = 0;
  std::int64_t clamp_misses = 0;
  std::int64_t baseline_misses = 0;

  // --- Parts A and B: overrun probability / magnitude sweeps --------------
  for (const auto policy : kPolicies) {
    cfg.containment = policy;
    const std::string pname = fault::containment_name(policy);

    const auto prob_sweep = exp::run_sweep(
        cfg, "overrun_prob", probs,
        overrun_builder(kFixedProb, kFixedMag, /*sweep_is_magnitude=*/false));
    bench::emit(prob_sweep,
                "E9a[" + pname + "]: overrun probability sweep "
                "(magnitude +50% WCET, 8 tasks, U = 0.85)",
                "bench_e9a_" + pname + ".csv");
    append_rows(combined.writer(), "A", policy, "overrun_prob", prob_sweep);
    failures += prob_sweep.failures.size();
    baseline_misses += prob_sweep.points.front().total_misses;  // prob = 0
    if (policy == sim::OverrunPolicy::kClampAtWcet) {
      clamp_misses += bench::total_misses(prob_sweep);
    }

    const auto mag_sweep = exp::run_sweep(
        cfg, "overrun_mag", mags,
        overrun_builder(kFixedProb, kFixedMag, /*sweep_is_magnitude=*/true));
    bench::emit(mag_sweep,
                "E9b[" + pname + "]: overrun magnitude sweep "
                "(probability 0.2, 8 tasks, U = 0.85)",
                "bench_e9b_" + pname + ".csv");
    append_rows(combined.writer(), "B", policy, "overrun_mag", mag_sweep);
    failures += mag_sweep.failures.size();
    if (policy == sim::OverrunPolicy::kClampAtWcet) {
      clamp_misses += bench::total_misses(mag_sweep);
    }
  }

  // --- Part C: processor faults (stuck frequency + transition stalls) ----
  cfg.containment = sim::OverrunPolicy::kNone;
  const std::vector<double> stuck_probs =
      opts.smoke ? std::vector<double>{0.0, 0.25}
                 : std::vector<double>{0.0, 0.1, 0.25, 0.5};

  util::TextTable table;
  {
    std::vector<std::string> header{"stuck_prob"};
    for (const auto& g : cfg.governors) {
      header.push_back(g + " energy");
      header.push_back(g + " faults");
    }
    header.push_back("misses");
    table.header(std::move(header));
  }
  for (const double stuck : stuck_probs) {
    fault::FaultSpec spec;
    spec.seed = 909;
    spec.stuck_prob = stuck;
    spec.stall_prob = 0.25;
    spec.stall_time = 0.0005;  // 0.5 ms extra stall when injected

    util::Rng rng(909);
    const auto ts =
        task::generate_task_set(bench::base_generator(8, 0.85, 0.1), rng);
    exp::ExperimentConfig run_cfg = cfg;
    run_cfg.processor = fault::faulty_processor(cfg.processor, spec);
    const auto outcome =
        exp::run_case({ts, task::uniform_model(909)}, run_cfg);

    std::vector<std::string> row{util::format_double(stuck, 2)};
    std::int64_t row_misses = 0;
    for (const auto& name : cfg.governors) {
      const auto& g = outcome.by_name(name);
      row.push_back(util::format_double(g.normalized_energy, 4));
      row.push_back(std::to_string(g.result.processor_faults));
      row_misses += g.result.deadline_misses;
      combined.writer().row(
          {"C", "none", "stuck_prob", util::format_double(stuck, 6), name,
           util::format_double(static_cast<double>(g.result.deadline_misses) /
                                   static_cast<double>(std::max<std::int64_t>(
                                       g.result.jobs_released, 1)),
                               6),
           "", util::format_double(g.normalized_energy, 6), "0"});
    }
    row.push_back(std::to_string(row_misses));
    table.row(std::move(row));
  }
  std::cout << "== E9c: processor faults (stall_prob 0.25, stall 0.5 ms; "
               "one 8-task set, U = 0.85; misses reported, not gated) ==\n";
  table.render(std::cout);

  // --- Verdict ------------------------------------------------------------
  const bool ok = failures == 0 && clamp_misses == 0 && baseline_misses == 0;
  std::cout << "  failed simulations: " << failures
            << ", clamp_at_wcet misses: " << clamp_misses
            << ", fault-free baseline misses: " << baseline_misses
            << (ok ? "  [containment invariant holds]\n" : "  [VIOLATION]\n");
  return ok ? 0 : 1;
}
