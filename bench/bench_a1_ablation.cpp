// A1 — Ablations of the design choices behind the slack-time governor.
//
//  (a) checkpoint budget: how many demand checkpoints does the heuristic
//      need before it matches the exact sweep?  (the paper's O(n)
//      heuristic vs. the exact analysis)
//  (b) slack assignment: greedy (all slack to the head job, as published)
//      vs. uniform spreading (the repo's extension) across utilizations —
//      the single biggest energy lever found in this reproduction.
//  (c) safety-margin price: charging the slack analysis for switch stalls
//      (switch_overhead) costs energy even when the hardware switches for
//      free; quantifies the price of the hard guarantee of E5.
//  (d) idle power: nonzero idle draw shrinks *normalized* DVS savings
//      because the noDVS baseline idles the most.
#include "common.hpp"

#include "core/slack_time.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace dvs;

/// Worker threads for every ablation below (set once from the CLI).
std::size_t g_jobs = 0;

/// Mean normalized energy of `governor` over `n` random cases.  The cases
/// fan out over a thread pool; `make` must be callable concurrently (all
/// makers below construct a fresh governor per call).  Aggregation happens
/// in case-index order, so the result is independent of --jobs.
template <typename MakeGovernor>
double mean_normalized(MakeGovernor make, const cpu::Processor& proc,
                       double u, std::size_t n, std::int64_t& misses) {
  struct CaseResult {
    double normalized = 0.0;
    std::int64_t misses = 0;
  };
  const auto results =
      bench::parallel_index_map(g_jobs, n, [&](std::size_t i) {
        const auto c = bench::uniform_case(bench::base_generator(8, u, 0.1),
                                           4242 + 31 * i);
        sim::SimOptions opts;
        opts.length = 1.2;
        auto nodvs = core::make_governor("noDVS");
        const auto base =
            sim::simulate(c.task_set, *c.workload, proc, *nodvs, opts);
        auto g = make();
        const auto r = sim::simulate(c.task_set, *c.workload, proc, *g, opts);
        return CaseResult{r.total_energy() / base.total_energy(),
                          r.deadline_misses};
      });
  util::RunningStats acc;
  for (const auto& r : results) {
    acc.add(r.normalized);
    misses += r.misses;
  }
  return acc.mean();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dvs;
  g_jobs = bench::parse_jobs(argc, argv);
  const std::size_t kCases = 6;
  std::int64_t misses = 0;
  const cpu::Processor ideal = cpu::ideal_processor();

  // (a) checkpoint budget --------------------------------------------------
  {
    util::TextTable t;
    t.header({"checkpoints", "U=0.5", "U=0.7", "U=0.9"});
    for (int k : {1, 2, 4, 8, 16, 0}) {  // 0 = exact sweep
      std::vector<double> row;
      for (double u : {0.5, 0.7, 0.9}) {
        auto make = [k]() -> sim::GovernorPtr {
          if (k == 0) return std::make_unique<core::SlackTimeGovernor>();
          core::SlackTimeConfig cfg;
          cfg.mode = core::SlackTimeConfig::Mode::kHeuristic;
          cfg.heuristic_checkpoints = k;
          return std::make_unique<core::SlackTimeGovernor>(cfg);
        };
        row.push_back(mean_normalized(make, ideal, u, kCases, misses));
      }
      t.row_numeric(k == 0 ? "exact" : std::to_string(k), row, 4);
    }
    std::cout << "== A1a: heuristic checkpoint budget vs exact sweep "
                 "(normalized energy, uniform RET) ==\n";
    t.render(std::cout);
    std::cout << '\n';
  }

  // (b) greedy vs uniform slack assignment ---------------------------------
  {
    util::TextTable t;
    t.header({"assignment", "U=0.5", "U=0.7", "U=0.9"});
    for (const char* name : {"lpSEH", "uniformSlack"}) {
      std::vector<double> row;
      for (double u : {0.5, 0.7, 0.9}) {
        auto make = [name] { return core::make_governor(name); };
        row.push_back(mean_normalized(make, ideal, u, kCases, misses));
      }
      t.row_numeric(name, row, 4);
    }
    std::cout << "== A1b: slack assignment — greedy (as published) vs "
                 "uniform spreading (extension) ==\n";
    t.render(std::cout);
    std::cout << '\n';
  }

  // (c) price of the stall safety margin on stall-free hardware ------------
  {
    util::TextTable t;
    t.header({"charged stall", "U=0.7 energy"});
    for (Time sw : {0.0, 140e-6, 1e-3}) {
      auto make = [sw] {
        core::SlackTimeConfig cfg;
        cfg.switch_overhead = sw;
        return std::make_unique<core::SlackTimeGovernor>(cfg);
      };
      std::vector<double> row{
          mean_normalized(make, ideal, 0.7, kCases, misses)};
      t.row_numeric(util::format_si_time(sw), row, 4);
    }
    std::cout << "== A1c: conservatism price of charging switch stalls "
                 "(hardware switches are actually free here) ==\n";
    t.render(std::cout);
    std::cout << '\n';
  }

  // (d) idle power ---------------------------------------------------------
  {
    util::TextTable t;
    t.header({"idle fraction", "staticEDF", "lpSEH", "uniformSlack"});
    for (double idle : {0.0, 0.05, 0.2}) {
      cpu::Processor proc = ideal;
      proc.power = cpu::cubic_power_model(idle);
      std::vector<double> row;
      for (const char* name : {"staticEDF", "lpSEH", "uniformSlack"}) {
        auto make = [name] { return core::make_governor(name); };
        row.push_back(mean_normalized(make, proc, 0.7, kCases, misses));
      }
      t.row_numeric(util::format_double(idle, 2), row, 4);
    }
    std::cout << "== A1d: idle-power sensitivity (normalized energy at "
                 "U = 0.7) ==\n";
    t.render(std::cout);
    std::cout << '\n';
  }

  std::cout << "total deadline misses across ablations: " << misses
            << (misses == 0 ? "  [hard real-time invariant holds]\n"
                            : "  [VIOLATION]\n");
  return misses == 0 ? 0 : 1;
}
