// E1 — Normalized energy vs. worst-case utilization (the headline figure).
//
// Protocol: random implicit-deadline task sets (UUniFast, 8 tasks,
// periods 10..160 ms), actual execution times uniform in [0.1, 1.0] x
// WCET, ideal continuously-scalable processor (P = alpha^3).  Every
// governor replays the identical workload; energy is normalized to noDVS.
//
// Expected shape (DATE-2002-era literature): all DVS schemes save energy;
// savings shrink as U -> 1; dynamic slack reclaiming (DRA, laEDF, lpSEH)
// beats the static optimum below U ~ 0.9; lppsEDF trails the pack.
//
// `--oracle` additionally runs the clairvoyant YDS-optimal schedule on
// every case and reports each governor's optimality gap (energy / lower
// bound).  The exit code then also gates the gap floor: on the ideal
// idle-free processor no governor may undercut the continuous bound, so
// every per-point gap minimum must stay >= 1.  `--smoke` shrinks the
// grid for the CI oracle step (the O(jobs^2) bound is costly at full
// length).
#include "common.hpp"

#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace dvs;
  const bench::BenchOptions opts = bench::parse_bench_options(argc, argv);

  exp::ExperimentConfig cfg = exp::default_config();
  cfg.seed = 20020304;  // DATE 2002
  cfg.replications = opts.smoke ? 3 : 8;
  cfg.sim_length = opts.smoke ? 0.6 : 1.2;
  cfg.n_threads = opts.jobs;
  cfg.fail_fast = opts.strict;
  cfg.oracle = opts.oracle;
  // Slack-estimate audit for the headline figure (observational only: the
  // data CSV is byte-identical with this off — CI compares it across runs).
  cfg.audit_decisions = true;

  const std::vector<double> utils =
      opts.smoke ? std::vector<double>{0.3, 0.5, 0.7, 0.9}
                 : std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9, 1.0};
  const auto sweep = exp::run_sweep(
      cfg, "U", utils, [](double u, std::size_t, std::uint64_t seed) {
        return bench::uniform_case(bench::base_generator(8, u, 0.1), seed);
      });

  bench::emit(sweep,
              "E1: normalized energy vs worst-case utilization "
              "(8 tasks, uniform RET in [0.1, 1.0] x WCET, ideal CPU)",
              "bench_e1_util_sweep.csv");

  const std::int64_t misses = bench::total_misses(sweep);
  bool ok = misses == 0;
  if (opts.oracle) {
    const bool gap_ok = bench::oracle_gap_holds(sweep);
    std::cout << "  continuous-gap floor across all governors and points: "
              << util::format_double(bench::min_gap_continuous(sweep), 6)
              << (gap_ok ? "  [oracle lower bound holds]\n"
                         : "  [BOUND VIOLATION]\n");
    ok = ok && gap_ok;
  }
  return ok ? 0 : 1;
}
