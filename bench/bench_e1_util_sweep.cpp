// E1 — Normalized energy vs. worst-case utilization (the headline figure).
//
// Protocol: random implicit-deadline task sets (UUniFast, 8 tasks,
// periods 10..160 ms), actual execution times uniform in [0.1, 1.0] x
// WCET, ideal continuously-scalable processor (P = alpha^3).  Every
// governor replays the identical workload; energy is normalized to noDVS.
//
// Expected shape (DATE-2002-era literature): all DVS schemes save energy;
// savings shrink as U -> 1; dynamic slack reclaiming (DRA, laEDF, lpSEH)
// beats the static optimum below U ~ 0.9; lppsEDF trails the pack.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dvs;

  exp::ExperimentConfig cfg = exp::default_config();
  cfg.seed = 20020304;  // DATE 2002
  cfg.replications = 8;
  cfg.sim_length = 1.2;
  cfg.n_threads = bench::parse_jobs(argc, argv);
  // Slack-estimate audit for the headline figure (observational only: the
  // data CSV is byte-identical with this off — CI compares it across runs).
  cfg.audit_decisions = true;

  const std::vector<double> utils{0.1, 0.2, 0.3, 0.4, 0.5,
                                  0.6, 0.7, 0.8, 0.9, 1.0};
  const auto sweep = exp::run_sweep(
      cfg, "U", utils, [](double u, std::size_t, std::uint64_t seed) {
        return bench::uniform_case(bench::base_generator(8, u, 0.1), seed);
      });

  bench::emit(sweep,
              "E1: normalized energy vs worst-case utilization "
              "(8 tasks, uniform RET in [0.1, 1.0] x WCET, ideal CPU)",
              "bench_e1_util_sweep.csv");
  return bench::total_misses(sweep) == 0 ? 0 : 1;
}
