// E7 — Governor runtime cost (google-benchmark).
//
// The reproduced paper claims O(n) per-scheduling-point cost for its slack
// estimation heuristic.  This bench measures whole-simulation throughput
// (simulated jobs per second of host time) for every governor as the task
// count grows, which exposes each policy's per-decision scaling:
//   * noDVS / staticEDF / ccEDF / lppsEDF: O(1)-O(n) bookkeeping,
//   * laEDF: O(n log n) deferral pass + demand floor,
//   * DRA: O(n) alpha-queue maintenance,
//   * lpSEH exact: demand sweep over the analysis window,
//   * lpSEH-h: bounded checkpoint count (the paper's O(n) claim).
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "cpu/processors.hpp"
#include "sim/simulator.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"

namespace {

using namespace dvs;

task::TaskSet bench_set(std::size_t n_tasks) {
  task::GeneratorConfig cfg;
  cfg.n_tasks = n_tasks;
  cfg.total_utilization = 0.8;
  cfg.period_min = 0.01;
  cfg.period_max = 0.16;
  cfg.bcet_ratio = 0.1;
  cfg.grid_fraction = 0.5;
  util::Rng rng(7777);
  return task::generate_task_set(cfg, rng);
}

void run_governor(benchmark::State& state, const std::string& name) {
  const auto ts = bench_set(static_cast<std::size_t>(state.range(0)));
  const auto workload = task::uniform_model(1);
  const cpu::Processor proc = cpu::ideal_processor();
  sim::SimOptions opts;
  opts.length = 0.6;

  std::int64_t jobs = 0;
  for (auto _ : state) {
    auto g = core::make_governor(name);
    const auto r = sim::simulate(ts, *workload, proc, *g, opts);
    jobs += r.jobs_released;
    benchmark::DoNotOptimize(r.busy_energy);
    if (r.deadline_misses != 0) state.SkipWithError("deadline miss!");
  }
  state.SetItemsProcessed(jobs);
  state.SetLabel("simulated jobs/s");
}

}  // namespace

#define GOVERNOR_BENCH(id, name)                              \
  void BM_##id(benchmark::State& state) {                     \
    run_governor(state, name);                                \
  }                                                           \
  BENCHMARK(BM_##id)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)

GOVERNOR_BENCH(noDVS, "noDVS");
GOVERNOR_BENCH(staticEDF, "staticEDF");
GOVERNOR_BENCH(lppsEDF, "lppsEDF");
GOVERNOR_BENCH(ccEDF, "ccEDF");
GOVERNOR_BENCH(laEDF, "laEDF");
GOVERNOR_BENCH(DRA, "DRA");
GOVERNOR_BENCH(lpSEH_h, "lpSEH-h");
GOVERNOR_BENCH(lpSEH, "lpSEH");
GOVERNOR_BENCH(uniformSlack, "uniformSlack");

// Expanded BENCHMARK_MAIN() that first strips --jobs (accepted for CLI
// uniformity with the other benches, but deliberately ignored: this bench
// measures single-governor scheduling cost, and those timings must stay
// single-threaded to be meaningful).
int main(int argc, char** argv) {
  std::vector<char*> kept;
  kept.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::string(argv[i]) == "--jobs" && i + 1 < argc) {
      std::cout << "note: --jobs ignored; E7 is a single-threaded "
                   "microbenchmark of per-governor cost\n";
      ++i;
      continue;
    }
    kept.push_back(argv[i]);
  }
  int kept_argc = static_cast<int>(kept.size());
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
