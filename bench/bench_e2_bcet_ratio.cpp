// E2 — Normalized energy vs. BCET/WCET ratio (execution-time variability).
//
// The ratio controls how much dynamic slack exists: at ratio 1.0 every job
// consumes its full WCET and only static slack (1 - U) remains; at low
// ratios most of the budget goes unused.  U is fixed at 0.7.
//
// Expected shape: all dynamic schemes converge toward the static optimum
// as ratio -> 1; the gap between dynamic and static widens as ratio -> 0.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dvs;

  exp::ExperimentConfig cfg = exp::default_config();
  cfg.seed = 1302;
  cfg.replications = 8;
  cfg.sim_length = 1.2;
  cfg.n_threads = bench::parse_jobs(argc, argv);

  const std::vector<double> ratios{0.1, 0.2, 0.3, 0.4, 0.5,
                                   0.6, 0.7, 0.8, 0.9, 1.0};
  const auto sweep = exp::run_sweep(
      cfg, "bcet/wcet", ratios,
      [](double ratio, std::size_t, std::uint64_t seed) {
        return bench::uniform_case(bench::base_generator(8, 0.7, ratio),
                                   seed);
      });

  bench::emit(sweep,
              "E2: normalized energy vs BCET/WCET ratio "
              "(U = 0.7, 8 tasks, uniform RET, ideal CPU)",
              "bench_e2_bcet_ratio.csv");
  return bench::total_misses(sweep) == 0 ? 0 : 1;
}
