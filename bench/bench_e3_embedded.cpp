// E3 — Real embedded application task sets (INS, CNC, avionics).
//
// The evaluation protocol of the reproduced paper's group exercises DVS
// algorithms on three classic applications (approximated parameter tables,
// see task/benchmarks.hpp) at three execution-time variability levels.
//
// Expected shape: savings track each set's static slack (CNC, U ~ 0.52,
// saves the most; INS, U ~ 0.89, the least) plus the dynamic slack from
// the BCET ratio.
#include "common.hpp"

#include "task/benchmarks.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace dvs;

  exp::ExperimentConfig cfg = exp::default_config();
  cfg.sim_length = -1.0;  // per-set default (multiple hyperperiods)
  // No sweep here; --jobs parallelizes the governors within each case.
  cfg.n_threads = bench::parse_jobs(argc, argv);

  std::int64_t misses = 0;
  for (double ratio : {0.2, 0.5, 0.8}) {
    for (const auto& ts : task::embedded_task_sets(ratio)) {
      exp::ExperimentConfig run_cfg = cfg;
      // Bound the avionics run (59 s hyperperiod) to keep the bench quick.
      run_cfg.sim_length = std::min(ts.default_sim_length(), 12.0);
      const auto workload = task::uniform_model(7);
      const auto outcome = exp::run_case({ts, workload}, run_cfg);
      exp::print_case(std::cout, outcome,
                      "E3: " + ts.name() + " (U = " +
                          util::format_double(ts.utilization(), 2) +
                          ", bcet/wcet = " + util::format_double(ratio, 1) +
                          ")");
      for (const auto& g : outcome.outcomes) {
        misses += g.result.deadline_misses;
      }
    }
  }
  std::cout << "total deadline misses: " << misses
            << (misses == 0 ? "  [hard real-time invariant holds]\n"
                            : "  [VIOLATION]\n");
  return misses == 0 ? 0 : 1;
}
