// E14 — Global vs partitioned multiprocessor DVS: normalized energy vs
// core count under one shared deadline-ordered ready queue (DESIGN.md
// §14) against the three bin-packing heuristics of E11.
//
// For every backend arm (global at zero migration cost, global charging a
// 50 us surcharge per migration, and partitioned ff/bf/wf) and M in
// {2, 4, 8, 16} cores, random task sets with total U = 0.55 * M and
// per-task utilization capped at 0.35 are simulated under every governor;
// energy is normalized against the noDVS run of the same case and
// backend.  The utilization point is chosen GFB-safe: with the cap, the
// global dispatch floor (U + (M-1) * U_max) / M stays below 0.9, so the
// global arms are schedulable by construction — and low enough that
// every heuristic partitions every sampled set, so the arms compare the
// same workloads.  6M tasks keep the UUniFast per-task cap generatable
// (the max share of n concentrates near U * ln(n) / n, so the cap needs
// U <= 0.15 * n with comfortable headroom).
//
// Expected shape: the arms quantify a real tension.  The partitioned
// backends hand every governor a per-core subset with U <= 1, where the
// paper's uniprocessor slack analysis applies in full; the global backend
// feeds the shared governor the whole set (U = 0.55 * M > 1), so the
// analytical governors (staticEDF, lpSEH) pin at full speed and only
// measurement-driven reclamation (ccEDF, DRA) recovers energy — at the
// price the migration columns make explicit.  The priced arm shows the
// 50 us surcharge folding into demands.  Exit 0 iff every simulation
// completed and no deadline was missed in any arm.
#include "common.hpp"

#include <cstdint>

#include "mp/global_sim.hpp"
#include "mp/mp_sim.hpp"
#include "mp/partition.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace {

using namespace dvs;

/// Per-core target utilization: GFB-safe under the per-task cap (floor
/// 0.55 + 0.35 * (M-1)/M < 0.9 for every M) yet high enough that slack
/// reclamation separates the governors.
constexpr double kPerCoreU = 0.55;
constexpr double kMaxTaskU = 0.35;
constexpr std::size_t kTasksPerCore = 6;
/// The priced global arm's per-migration surcharge (seconds).
constexpr double kMigrationCost = 50e-6;

exp::CaseBuilder global_builder(std::size_t m) {
  return [m](double /*x*/, std::size_t /*rep*/, std::uint64_t seed) {
    task::GeneratorConfig gen = bench::base_generator(
        kTasksPerCore * m, kPerCoreU * static_cast<double>(m), 0.1);
    gen.allow_overload = true;     // total U > 1 is the point of M cores
    gen.max_task_utilization = kMaxTaskU;  // GFB-safe + packable
    util::Rng rng(seed);
    return exp::Case{task::generate_task_set(gen, rng),
                     task::uniform_model(seed)};
  };
}

/// One comparison arm: a backend configuration sharing the same cases.
struct Arm {
  std::string name;                 // CSV/report label
  mp::MpBackend backend = mp::MpBackend::kPartitioned;
  mp::PartitionHeuristic heuristic = mp::PartitionHeuristic::kFirstFit;
  Time migration_cost = 0.0;        // global arms only
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dvs;
  const bench::BenchOptions opts = bench::parse_bench_options(argc, argv);
  if (opts.oracle) {
    // The YDS bound decomposes over independent cores; migration
    // invalidates it, so the global arms cannot be oracle-gated.
    std::cerr << "bench_e14_global: --oracle is not supported (the global "
                 "backend has no per-core YDS decomposition)\n";
    return 2;
  }

  exp::ExperimentConfig cfg = exp::default_config();
  cfg.governors = {"staticEDF", "ccEDF", "DRA", "lpSEH"};
  cfg.seed = 14;
  cfg.replications = opts.smoke ? 2 : 5;
  cfg.sim_length = opts.smoke ? 0.3 : 1.0;
  cfg.n_threads = opts.jobs;
  cfg.fail_fast = opts.strict;

  const std::vector<std::size_t> core_counts =
      opts.smoke ? std::vector<std::size_t>{2, 4}
                 : std::vector<std::size_t>{2, 4, 8, 16};

  const std::vector<Arm> arms{
      {"global", mp::MpBackend::kGlobal, mp::PartitionHeuristic::kFirstFit,
       0.0},
      {"global-mc50", mp::MpBackend::kGlobal,
       mp::PartitionHeuristic::kFirstFit, kMigrationCost},
      {"ff", mp::MpBackend::kPartitioned, mp::PartitionHeuristic::kFirstFit,
       0.0},
      {"bf", mp::MpBackend::kPartitioned, mp::PartitionHeuristic::kBestFit,
       0.0},
      {"wf", mp::MpBackend::kPartitioned, mp::PartitionHeuristic::kWorstFit,
       0.0},
  };

  std::error_code ec;
  std::filesystem::create_directories("bench_csv", ec);
  util::CsvFile combined("bench_csv/bench_e14_global.csv");
  combined.writer().row({"backend", "cores", "governor", "norm_energy_mean",
                         "norm_energy_min", "norm_energy_max",
                         "miss_ratio_mean", "misses", "migrations_mean",
                         "total_migrations", "migration_overhead_us",
                         "failures"});

  std::size_t failures = 0;
  std::int64_t misses = 0;

  for (const Arm& arm : arms) {
    cfg.mp_backend = arm.backend;
    cfg.partitioner = arm.heuristic;
    cfg.migration_cost = arm.migration_cost;
    for (const std::size_t m : core_counts) {
      cfg.n_cores = m;
      const auto sweep =
          exp::run_sweep(cfg, "cores", {static_cast<double>(m)},
                         global_builder(m));
      bench::emit(sweep,
                  "E14[" + arm.name + ", M=" + std::to_string(m) +
                      "]: global vs partitioned, per-core U = 0.55, " +
                      std::to_string(kTasksPerCore * m) + " tasks",
                  "bench_e14_" + arm.name + "_m" + std::to_string(m) +
                      ".csv");
      failures += sweep.failures.size();
      misses += bench::total_misses(sweep);
      const auto& p = sweep.points.front();
      for (std::size_t g = 0; g < sweep.governors.size(); ++g) {
        const auto& e = p.normalized_energy[g];
        const auto& mr = p.miss_ratio[g];
        const bool global = sweep.global_mp;
        const auto& mig = global ? p.migrations[g] : util::RunningStats{};
        combined.writer().row(
            {arm.name, std::to_string(m), sweep.governors[g],
             e.count() > 0 ? util::format_double(e.mean(), 6) : "",
             e.count() > 0 ? util::format_double(e.min(), 6) : "",
             e.count() > 0 ? util::format_double(e.max(), 6) : "",
             mr.count() > 0 ? util::format_double(mr.mean(), 6) : "",
             std::to_string(p.total_misses),
             mig.count() > 0 ? util::format_double(mig.mean(), 3) : "",
             global ? std::to_string(p.total_migrations) : "",
             global ? util::format_double(p.total_migration_overhead_us, 1)
                    : "",
             std::to_string(sweep.failures.size())});
      }
    }
  }

  const bool ok = failures == 0 && misses == 0;
  std::cout << "  failed simulations / rejected partitions: " << failures
            << ", deadline misses: " << misses
            << (ok ? "  [hard real-time invariant holds]\n"
                   : "  [VIOLATION]\n");
  return ok ? 0 : 1;
}
