// E12 — Graceful degradation: (m,k)-firm skip-aware overload management
// (DESIGN.md §11).
//
// Part A overloads the task set (sustained U > 1, every job at WCET) and
// compares the degradation controller (skipping) against a monitor-only
// controller (observes pressure and windows but never sheds) under every
// governor.  Part B keeps the set feasible and injects WCET overrun
// storms instead.  Part C fixes the overload and sweeps the firmness
// window k of (1,k)-firm tasks — the energy-vs-firmness tradeoff table in
// EXPERIMENTS.md.
//
// Every set keeps its minimum-utilization task hard (m == k); the others
// are weakly-hard.  Expected shape: the monitor arm misses deadlines all
// over the overloaded points, the skipping arm sheds window-legal jobs
// instead.  Part B runs under clamp_at_wcet: the clamp keeps every
// executed job within its budget (the regime where the weakly-hard
// contract is provable — see DESIGN.md §11; uncontained overrun storms
// are E9's subject, and no shedding policy can stop an overrunning job
// from missing its own deadline), while the overruns remain visible to
// the controller as pressure events.  Exit 0 iff no simulation failed,
// every skipping arm kept the weakly-hard contract — zero (m,k)
// violations and zero hard-task misses — the monitor arm did record
// misses at the overloaded points, and the overrun storms did push the
// skipping arm into shedding (the comparison would be vacuous otherwise).
#include "common.hpp"

#include <cstdint>
#include <utility>
#include <vector>

#include "degrade/degrade.hpp"
#include "fault/fault.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace dvs;

constexpr std::uint64_t kOverrunSeedSalt = 0x9e3779b97f4a7c15ull;

/// Overloaded case: 8 tasks at total utilization `x` (> 1 allowed), every
/// job demanding its full WCET, all tasks (1,k)-firm except the
/// minimum-utilization one, which stays hard.
exp::CaseBuilder overload_builder(std::int32_t k) {
  return [k](double x, std::size_t /*rep*/, std::uint64_t seed) {
    task::GeneratorConfig gen = bench::base_generator(8, x, 1.0);
    gen.allow_overload = true;
    util::Rng rng(seed);
    task::TaskSet ts = task::generate_task_set(gen, rng);
    std::size_t hard = 0;
    for (std::size_t i = 1; i < ts.size(); ++i) {
      if (ts[i].utilization() < ts[hard].utilization()) hard = i;
    }
    ts = degrade::with_firmness(ts, 1, k);
    ts = degrade::with_task_firmness(ts, hard, 1, 1);
    return exp::Case{std::move(ts), task::constant_ratio_model(1.0)};
  };
}

/// Feasible case (U = 0.75) under a WCET overrun storm of probability `x`
/// (+50% WCET demand per overrun); firmness as in overload_builder.
exp::CaseBuilder overrun_builder() {
  return [](double x, std::size_t /*rep*/, std::uint64_t seed) {
    exp::Case c =
        bench::uniform_case(bench::base_generator(8, 0.75, 0.5), seed);
    std::size_t hard = 0;
    const task::TaskSet& ts = c.task_set;
    for (std::size_t i = 1; i < ts.size(); ++i) {
      if (ts[i].utilization() < ts[hard].utilization()) hard = i;
    }
    c.task_set = degrade::with_firmness(c.task_set, 1, 2);
    c.task_set = degrade::with_task_firmness(c.task_set, hard, 1, 1);
    fault::FaultSpec spec;
    spec.seed = seed ^ kOverrunSeedSalt;
    spec.overrun_prob = x;
    spec.overrun_magnitude = 0.5;
    c.workload = fault::faulty_workload(std::move(c.workload), spec);
    return c;
  };
}

struct SweepTotals {
  std::int64_t misses = 0;
  std::int64_t skips = 0;
  std::int64_t mk_violations = 0;
  std::int64_t hard_misses = 0;
};

SweepTotals totals_of(const exp::SweepOutcome& sweep) {
  SweepTotals t;
  for (const auto& p : sweep.points) {
    t.misses += p.total_misses;
    t.skips += p.total_skips;
    t.mk_violations += p.total_mk_violations;
    t.hard_misses += p.total_hard_misses;
  }
  return t;
}

// Append one combined-CSV row per (point, governor) of `sweep`.
void append_rows(util::CsvWriter& csv, const std::string& part,
                 const std::string& arm, const std::string& x_name,
                 const exp::SweepOutcome& sweep) {
  for (const auto& p : sweep.points) {
    for (std::size_t g = 0; g < sweep.governors.size(); ++g) {
      const auto& miss = p.miss_ratio[g];
      const auto& skip = p.skip_ratio[g];
      const auto& energy = p.normalized_energy[g];
      csv.row({part, arm, x_name, util::format_double(p.x, 6),
               sweep.governors[g],
               miss.count() > 0 ? util::format_double(miss.mean(), 6) : "",
               skip.count() > 0 ? util::format_double(skip.mean(), 6) : "",
               energy.count() > 0 ? util::format_double(energy.mean(), 6)
                                  : "",
               std::to_string(p.total_skips),
               std::to_string(p.total_mk_violations),
               std::to_string(p.total_hard_misses),
               std::to_string(sweep.failures.size())});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dvs;
  const bench::BenchOptions opts = bench::parse_bench_options(argc, argv);

  exp::ExperimentConfig cfg = exp::default_config();
  cfg.governors = {"staticEDF", "ccEDF", "laEDF", "DRA", "lpSEH"};
  cfg.seed = 12;
  cfg.replications = opts.smoke ? 2 : 6;
  cfg.sim_length = opts.smoke ? 0.4 : 1.2;
  cfg.n_threads = opts.jobs;
  cfg.check_governors = true;  // loud failures instead of silent clamps
  cfg.fail_fast = opts.strict;

  // The two arms: a shedding controller that reacts to the first pressure
  // event, and the identical controller in monitor-only mode (the honest
  // "degradation off" comparison — same windows, same counters, no skips).
  degrade::DegradationConfig deg_on;
  deg_on.enter_pressure = 1;
  degrade::DegradationConfig monitor = deg_on;
  monitor.skipping = false;
  const std::pair<const char*, const degrade::DegradationConfig*> kArms[] = {
      {"degrade", &deg_on},
      {"monitor", &monitor},
  };

  std::error_code ec;
  std::filesystem::create_directories("bench_csv", ec);
  util::CsvFile combined("bench_csv/bench_e12_degradation.csv");
  combined.writer().row({"part", "arm", "x_name", "x", "governor",
                         "miss_ratio_mean", "skip_ratio_mean",
                         "norm_energy_mean", "skips", "mk_violations",
                         "hard_misses", "failures"});

  std::size_t failures = 0;
  std::int64_t degrade_mk_violations = 0;
  std::int64_t degrade_hard_misses = 0;
  std::int64_t monitor_overload_misses = 0;
  std::int64_t degrade_storm_skips = 0;

  // --- Part A: sustained overload sweep (every job at WCET) ---------------
  const std::vector<double> overloads =
      opts.smoke ? std::vector<double>{1.0, 1.2}
                 : std::vector<double>{1.0, 1.05, 1.1, 1.2, 1.3};
  for (const auto& [arm, dcfg] : kArms) {
    cfg.degradation = *dcfg;
    const auto sweep = exp::run_sweep(cfg, "utilization", overloads,
                                      overload_builder(/*k=*/2));
    bench::emit(sweep,
                std::string("E12a[") + arm + "]: overload sweep "
                "(8 tasks, (1,2)-firm + one hard, demand = WCET)",
                std::string("bench_e12a_") + arm + ".csv");
    append_rows(combined.writer(), "A", arm, "utilization", sweep);
    failures += sweep.failures.size();
    const SweepTotals t = totals_of(sweep);
    if (std::string(arm) == "degrade") {
      degrade_mk_violations += t.mk_violations;
      degrade_hard_misses += t.hard_misses;
    } else {
      // Points with U > 1 must show misses in the monitor arm, or the
      // comparison proves nothing.
      for (const auto& p : sweep.points) {
        if (p.x > 1.0) monitor_overload_misses += p.total_misses;
      }
    }
  }

  // --- Part B: WCET overrun storms on a feasible set, clamp containment ---
  const std::vector<double> probs =
      opts.smoke ? std::vector<double>{0.0, 0.2}
                 : std::vector<double>{0.0, 0.1, 0.2, 0.4};
  cfg.containment = sim::OverrunPolicy::kClampAtWcet;
  for (const auto& [arm, dcfg] : kArms) {
    cfg.degradation = *dcfg;
    const auto sweep =
        exp::run_sweep(cfg, "overrun_prob", probs, overrun_builder());
    bench::emit(sweep,
                std::string("E12b[") + arm + "]: overrun storm sweep "
                "(U = 0.75, magnitude +50% WCET clamped, (1,2)-firm + one "
                "hard)",
                std::string("bench_e12b_") + arm + ".csv");
    append_rows(combined.writer(), "B", arm, "overrun_prob", sweep);
    failures += sweep.failures.size();
    const SweepTotals t = totals_of(sweep);
    if (std::string(arm) == "degrade") {
      degrade_mk_violations += t.mk_violations;
      degrade_hard_misses += t.hard_misses;
      for (const auto& p : sweep.points) {
        if (p.x > 0.0) degrade_storm_skips += p.total_skips;
      }
    }
  }
  cfg.containment = sim::OverrunPolicy::kNone;

  // --- Part C: energy vs firmness (fixed overload, sweep window k) --------
  const std::vector<double> windows =
      opts.smoke ? std::vector<double>{2, 4} : std::vector<double>{2, 3, 4, 5};
  {
    cfg.degradation = deg_on;
    std::vector<exp::SweepOutcome> per_k;
    for (const double k : windows) {
      const auto sweep = exp::run_sweep(
          cfg, "firmness_k", {1.15},
          overload_builder(static_cast<std::int32_t>(k)));
      failures += sweep.failures.size();
      const SweepTotals t = totals_of(sweep);
      degrade_mk_violations += t.mk_violations;
      degrade_hard_misses += t.hard_misses;
      for (const auto& p : sweep.points) {
        for (std::size_t g = 0; g < sweep.governors.size(); ++g) {
          const auto& miss = p.miss_ratio[g];
          const auto& skip = p.skip_ratio[g];
          const auto& energy = p.normalized_energy[g];
          combined.writer().row(
              {"C", "degrade", "firmness_k", util::format_double(k, 6),
               sweep.governors[g],
               miss.count() > 0 ? util::format_double(miss.mean(), 6) : "",
               skip.count() > 0 ? util::format_double(skip.mean(), 6) : "",
               energy.count() > 0 ? util::format_double(energy.mean(), 6)
                                  : "",
               std::to_string(p.total_skips),
               std::to_string(p.total_mk_violations),
               std::to_string(p.total_hard_misses),
               std::to_string(sweep.failures.size())});
        }
      }
      per_k.push_back(sweep);
    }
    std::cout << "== E12c: energy vs firmness (U = 1.15, (1,k)-firm + one "
                 "hard, demand = WCET) ==\n";
    util::TextTable table;
    std::vector<std::string> header{"k"};
    for (const auto& g : cfg.governors) header.push_back(g + " energy");
    header.push_back("shed ratio");
    table.header(std::move(header));
    for (std::size_t i = 0; i < windows.size(); ++i) {
      const auto& p = per_k[i].points.front();
      std::vector<std::string> row{util::format_double(windows[i], 0)};
      double shed = 0.0;
      std::size_t shed_n = 0;
      for (std::size_t g = 0; g < per_k[i].governors.size(); ++g) {
        if (p.skip_ratio[g].count() > 0) {
          shed += p.skip_ratio[g].mean();
          ++shed_n;
        }
        // noDVS leads the roster; the configured governors follow it.
        if (per_k[i].governors[g] == "noDVS") continue;
        row.push_back(p.normalized_energy[g].count() > 0
                          ? util::format_double(
                                p.normalized_energy[g].mean(), 4)
                          : "");
      }
      row.push_back(shed_n > 0 ? util::format_double(shed / shed_n, 4) : "");
      table.row(std::move(row));
    }
    table.render(std::cout);
  }

  // --- Verdict ------------------------------------------------------------
  const bool ok = failures == 0 && degrade_mk_violations == 0 &&
                  degrade_hard_misses == 0 && monitor_overload_misses > 0 &&
                  degrade_storm_skips > 0;
  std::cout << "  failed simulations: " << failures
            << ", degrade-arm (m,k) violations: " << degrade_mk_violations
            << ", degrade-arm hard misses: " << degrade_hard_misses
            << ", monitor-arm overload misses: " << monitor_overload_misses
            << ", storm-arm sheds: " << degrade_storm_skips
            << (ok ? "  [weakly-hard contract holds]\n" : "  [VIOLATION]\n");
  return ok ? 0 : 1;
}
