// E10 — hot-path microbenchmark (repo experiment, no paper counterpart).
//
// Two measurements per governor, on the E1 workload (8 tasks, 5-ms period
// grid, uniform actual demand):
//
//   * ns/decision — wall time of a full simulation divided by the number
//     of governor dispatches in it (counted once with a DecisionAudit on
//     an untimed run; the timed runs carry no observers).  This is the
//     end-to-end cost of one scheduling decision including the engine's
//     share, which is what a deployment would pay.
//   * sims/s — single-thread simulation throughput over the E1
//     utilization grid (one fresh governor per case, serial loop).
//
// Output: a human table on stdout and a JSON report (default
// BENCH_hotpath.json; see docs/PERFORMANCE.md for the format).  With
// `--check [baseline.json]` the run compares RELATIVE throughput —
// each governor's sims/s divided by the same run's noDVS sims/s — against
// the committed baseline and exits 1 on a regression beyond 30%.  The
// regressions this gate exists for — losing the incremental sweep or the
// scratch buffers puts the slack governors 2-3x down — sit far below the
// threshold, while run-to-run noise on a loaded single core stays above
// it.
// Relative numbers are used because absolute sims/s measures the host
// machine as much as the code; the noDVS ratio cancels the machine.
//
// Timing uses std::chrono::steady_clock directly (not google-benchmark):
// each sample is a whole simulation, hundreds of microseconds at least,
// so a monotonic clock and best-of-R is plenty — and the JSON stays fully
// under our control.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/audit.hpp"
#include "obs/json_mini.hpp"
#include "sim/simulator.hpp"

namespace dvs::bench {
namespace {

struct E10Options {
  bool smoke = false;
  bool check = false;
  std::size_t reps = 0;  ///< 0: mode default (smoke 2, full 5)
  std::string out = "BENCH_hotpath.json";
  std::string baseline = "";  ///< --check default: next to the binary
  std::string delta_baseline = "";  ///< --baseline: ns/dec delta report
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--smoke] [--reps N] [--out FILE] [--check [BASELINE]]"
      << " [--baseline FILE]\n"
      << "  --smoke          tiny grid for CI smoke runs\n"
      << "  --reps N         timing repetitions per measurement (best-of)\n"
      << "  --out FILE       write the JSON report here\n"
      << "  --check [FILE]   compare relative throughput against a baseline\n"
      << "                   report (default bench/baseline_hotpath.json,\n"
      << "                   resolved from the source tree) and exit 1 on a\n"
      << "                   >30% regression\n"
      << "  --baseline FILE  print per-governor ns/decision deltas against a\n"
      << "                   committed report (e.g. BENCH_hotpath.json) and\n"
      << "                   exit 1 when a governor's noDVS-normalized\n"
      << "                   ns/decision regressed by more than 30%\n";
  std::exit(2);
}

E10Options parse(int argc, char** argv) {
  E10Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      o.smoke = true;
    } else if (a == "--reps" && i + 1 < argc) {
      o.reps = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (a == "--out" && i + 1 < argc) {
      o.out = argv[++i];
    } else if (a == "--check") {
      o.check = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') o.baseline = argv[++i];
    } else if (a == "--baseline" && i + 1 < argc) {
      o.delta_baseline = argv[++i];
    } else {
      usage(argv[0]);
    }
  }
  return o;
}

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Single sims are tens of microseconds — far below timer and scheduler
/// noise on a shared core.  Like google-benchmark, calibrate an inner
/// iteration count so one timed sample spans at least `min_sample_s`,
/// then report the best per-iteration time across `reps` samples.
constexpr double kMinSampleSeconds = 0.1;

template <typename Body>
double best_seconds_per_iteration(std::size_t reps, const Body& body) {
  const auto c0 = Clock::now();
  body();
  const double once = std::max(seconds_since(c0), 1e-9);
  const auto inner = static_cast<std::size_t>(kMinSampleSeconds / once) + 1;
  double best = once;  // the calibration pass is itself a 1-iter sample
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < inner; ++i) body();
    best = std::min(best, seconds_since(t0) / static_cast<double>(inner));
  }
  return best;
}

struct GovernorReport {
  std::string name;
  std::int64_t decisions = 0;
  double ns_per_decision = 0.0;
  double sims_per_second = 0.0;
  double relative_throughput = 1.0;  ///< sims/s divided by noDVS sims/s
};

/// ns/decision on one fixed heavy case (E1 shape, U = 0.9).
GovernorReport measure_decisions(const std::string& name, Time length,
                                 std::size_t reps) {
  GovernorReport rep;
  rep.name = name;
  const exp::Case c = uniform_case(base_generator(8, 0.9, 0.1), 20020304);
  const cpu::Processor proc = cpu::ideal_processor();

  {  // Count dispatches once; the audit is not attached to timed runs.
    obs::DecisionAudit audit;
    sim::SimOptions opts;
    opts.length = length;
    opts.audit = &audit;
    auto gov = core::make_governor(name);
    (void)sim::simulate(c.task_set, *c.workload, proc, *gov, opts);
    rep.decisions = static_cast<std::int64_t>(audit.records().size());
  }

  sim::SimOptions opts;
  opts.length = length;
  const double best = best_seconds_per_iteration(reps, [&] {
    auto gov = core::make_governor(name);
    (void)sim::simulate(c.task_set, *c.workload, proc, *gov, opts);
  });
  if (rep.decisions > 0) {
    rep.ns_per_decision = best * 1e9 / static_cast<double>(rep.decisions);
  }
  return rep;
}

/// Serial sims/s over the E1 utilization grid (fresh governor per case).
double measure_throughput(const std::string& name,
                          const std::vector<double>& utils, Time length,
                          std::size_t reps) {
  const cpu::Processor proc = cpu::ideal_processor();
  std::vector<exp::Case> cases;
  for (std::size_t i = 0; i < utils.size(); ++i) {
    cases.push_back(
        uniform_case(base_generator(8, utils[i], 0.1), 777 + 13 * i));
  }
  sim::SimOptions opts;
  opts.length = length;
  const double best = best_seconds_per_iteration(reps, [&] {
    for (const auto& c : cases) {
      auto gov = core::make_governor(name);
      (void)sim::simulate(c.task_set, *c.workload, proc, *gov, opts);
    }
  });
  return static_cast<double>(cases.size()) / best;
}

void write_json(std::ostream& out, const std::vector<GovernorReport>& reps,
                const E10Options& o) {
  out << "{\n"
      << "  \"bench\": \"e10_hotpath\",\n"
      << "  \"mode\": \"" << (o.smoke ? "smoke" : "full") << "\",\n"
      << "  \"workload\": \"E1 grid, 8 tasks, uniform demand\",\n"
      << "  \"governors\": [\n";
  out << std::setprecision(10);
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const auto& r = reps[i];
    out << "    {\"name\": \"" << r.name
        << "\", \"decisions\": " << r.decisions
        << ", \"ns_per_decision\": " << r.ns_per_decision
        << ", \"sims_per_second\": " << r.sims_per_second
        << ", \"relative_throughput\": " << r.relative_throughput << "}"
        << (i + 1 < reps.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

/// Locate the committed baseline next to this source file's tree when
/// --check was given without a path.
std::string default_baseline() {
  return std::string(SLACKDVS_E10_BASELINE);
}

/// Returns the number of regressions (>30% relative-throughput loss).
int check_against(const std::string& path,
                  const std::vector<GovernorReport>& reps) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "e10: cannot open baseline " << path << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const obs::JsonValue doc = obs::parse_json(buf.str());
  const obs::JsonValue* govs = doc.find("governors");
  if (govs == nullptr || !govs->is_array()) {
    std::cerr << "e10: baseline " << path << " has no governors array\n";
    return 1;
  }
  int regressions = 0;
  for (const auto& r : reps) {
    const obs::JsonValue* base = nullptr;
    for (const auto& g : govs->array) {
      const obs::JsonValue* n = g.find("name");
      if (n != nullptr && n->is_string() && n->string == r.name) base = &g;
    }
    if (base == nullptr) {
      std::cout << "  [check] " << r.name << ": no baseline entry, skipped\n";
      continue;
    }
    const obs::JsonValue* rel = base->find("relative_throughput");
    if (rel == nullptr || !rel->is_number() || rel->number <= 0.0) continue;
    const double ratio = r.relative_throughput / rel->number;
    const bool bad = ratio < 0.7;
    std::cout << "  [check] " << std::left << std::setw(12) << r.name
              << " relative " << std::fixed << std::setprecision(4)
              << r.relative_throughput << " vs baseline " << rel->number
              << "  (" << std::setprecision(2) << ratio * 100.0 << "%)"
              << (bad ? "  REGRESSION" : "") << "\n";
    if (bad) ++regressions;
  }
  return regressions;
}

/// Per-governor ns/decision deltas against a committed report.  Absolute
/// ns measures the host as much as the code, so the pass/fail verdict
/// normalizes both sides by their own noDVS ns/decision (the engine
/// floor) and flags a >30% growth of that ratio; the raw before/after
/// columns are printed anyway because they are what docs/PERFORMANCE.md
/// quotes.  Returns the number of regressed governors.
int delta_against(const std::string& path,
                  const std::vector<GovernorReport>& reps) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "e10: cannot open baseline " << path << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const obs::JsonValue doc = obs::parse_json(buf.str());
  const obs::JsonValue* govs = doc.find("governors");
  if (govs == nullptr || !govs->is_array()) {
    std::cerr << "e10: baseline " << path << " has no governors array\n";
    return 1;
  }
  auto baseline_ns = [&](const std::string& name) -> double {
    for (const auto& g : govs->array) {
      const obs::JsonValue* n = g.find("name");
      if (n == nullptr || !n->is_string() || n->string != name) continue;
      const obs::JsonValue* ns = g.find("ns_per_decision");
      if (ns != nullptr && ns->is_number()) return ns->number;
    }
    return 0.0;
  };
  double now_floor = 0.0;
  for (const auto& r : reps) {
    if (r.name == "noDVS") now_floor = r.ns_per_decision;
  }
  const double base_floor = baseline_ns("noDVS");

  std::cout << "ns/decision vs " << path
            << " (normalized by noDVS; fail above 130%)\n"
            << std::left << std::setw(14) << "governor" << std::right
            << std::setw(12) << "baseline" << std::setw(12) << "now"
            << std::setw(12) << "delta" << std::setw(12) << "norm" << "\n";
  int regressions = 0;
  for (const auto& r : reps) {
    const double base = baseline_ns(r.name);
    if (base <= 0.0 || r.ns_per_decision <= 0.0) {
      std::cout << std::left << std::setw(14) << r.name
                << "  no baseline entry, skipped\n";
      continue;
    }
    const double delta = (r.ns_per_decision - base) / base;
    double norm = 0.0;
    if (base_floor > 0.0 && now_floor > 0.0) {
      norm = (r.ns_per_decision / now_floor) / (base / base_floor);
    }
    const bool bad = r.name != "noDVS" && norm > 1.3;
    std::cout << std::left << std::setw(14) << r.name << std::right
              << std::setw(12) << std::fixed << std::setprecision(1) << base
              << std::setw(12) << r.ns_per_decision << std::setw(11)
              << std::showpos << std::setprecision(1) << delta * 100.0
              << "%" << std::noshowpos << std::setw(11)
              << std::setprecision(0) << norm * 100.0 << "%"
              << (bad ? "  REGRESSION" : "") << "\n";
    if (bad) ++regressions;
  }
  return regressions;
}

int run(int argc, char** argv) {
  const E10Options o = parse(argc, argv);
  const std::size_t reps = o.reps != 0 ? o.reps : (o.smoke ? 2 : 5);
  const Time length = o.smoke ? 0.4 : 1.2;
  const std::vector<double> utils =
      o.smoke ? std::vector<double>{0.3, 0.9}
              : std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5,
                                    0.6, 0.7, 0.8, 0.9, 1.0};

  std::vector<GovernorReport> reports;
  for (const std::string& name : core::governor_names()) {
    GovernorReport rep = measure_decisions(name, length, reps);
    rep.sims_per_second = measure_throughput(name, utils, length, reps);
    reports.push_back(rep);
  }
  double no_dvs = 0.0;
  for (const auto& r : reports) {
    if (r.name == "noDVS") no_dvs = r.sims_per_second;
  }
  for (auto& r : reports) {
    r.relative_throughput =
        no_dvs > 0.0 ? r.sims_per_second / no_dvs : 1.0;
  }

  std::cout << "E10 hot path (" << (o.smoke ? "smoke" : "full")
            << " mode, best of " << reps << ")\n"
            << std::left << std::setw(14) << "governor" << std::right
            << std::setw(12) << "decisions" << std::setw(16) << "ns/decision"
            << std::setw(12) << "sims/s" << std::setw(12) << "rel" << "\n";
  for (const auto& r : reports) {
    std::cout << std::left << std::setw(14) << r.name << std::right
              << std::setw(12) << r.decisions << std::setw(16) << std::fixed
              << std::setprecision(0) << r.ns_per_decision << std::setw(12)
              << std::setprecision(1) << r.sims_per_second << std::setw(12)
              << std::setprecision(4) << r.relative_throughput << "\n";
  }

  std::ofstream out(o.out);
  if (!out) {
    std::cerr << "e10: cannot write " << o.out << "\n";
    return 1;
  }
  write_json(out, reports, o);
  std::cout << "JSON report: " << o.out << "\n";

  if (o.check) {
    const std::string baseline =
        o.baseline.empty() ? default_baseline() : o.baseline;
    std::cout << "checking against " << baseline
              << " (fail under 70% of baseline relative throughput)\n";
    const int bad = check_against(baseline, reports);
    if (bad > 0) {
      std::cerr << "e10: " << bad << " governor(s) regressed\n";
      return 1;
    }
  }
  if (!o.delta_baseline.empty()) {
    const int bad = delta_against(o.delta_baseline, reports);
    if (bad > 0) {
      std::cerr << "e10: " << bad
                << " governor(s) regressed in ns/decision\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace dvs::bench

int main(int argc, char** argv) { return dvs::bench::run(argc, argv); }
