// E4 — Effect of the number of discrete frequency levels.
//
// Governors emit continuous speed requests; the hardware rounds them UP to
// the nearest available level.  This bench sweeps 2/4/8/16 evenly spaced
// levels plus the continuous ideal, at U = 0.7 with uniform RET.
//
// Expected shape: energy decreases monotonically (on average) with more
// levels and approaches the continuous bound; the marginal benefit beyond
// ~8 levels is small — the classic justification for the handful of
// operating points real processors ship.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dvs;

  // x encodes the level count; 0 stands for the continuous scale.
  const std::vector<double> levels{2, 4, 8, 16, 0};

  exp::ExperimentConfig cfg = exp::default_config();
  cfg.governors = {"staticEDF", "ccEDF", "DRA", "lpSEH", "uniformSlack"};
  cfg.seed = 4;
  cfg.replications = 8;
  cfg.sim_length = 1.2;
  cfg.n_threads = bench::parse_jobs(argc, argv);

  std::int64_t misses = 0;
  exp::SweepOutcome combined;
  combined.x_label = "levels";
  for (double x : levels) {
    exp::ExperimentConfig point_cfg = cfg;
    point_cfg.processor = x == 0
                              ? cpu::ideal_processor()
                              : cpu::quantized_ideal_processor(
                                    static_cast<int>(x), /*alpha_min=*/0.1);
    const auto sweep = exp::run_sweep(
        point_cfg, "levels", {x},
        [](double, std::size_t, std::uint64_t seed) {
          return bench::uniform_case(bench::base_generator(8, 0.7, 0.1),
                                     seed);
        });
    combined.governors = sweep.governors;
    combined.points.push_back(sweep.points.front());
    combined.wall_seconds += sweep.wall_seconds;
    combined.simulations += sweep.simulations;
    combined.threads_used = sweep.threads_used;
    misses += bench::total_misses(sweep);
  }

  bench::emit(combined,
              "E4: normalized energy vs number of frequency levels "
              "(U = 0.7, uniform RET; level count 0 = continuous)",
              "bench_e4_freq_levels.csv");
  return misses == 0 ? 0 : 1;
}
