// E6 — Robustness: task-set size and workload patterns.
//
// Part A sweeps the number of tasks at fixed U = 0.9 (the "is the saving
// stable as sets grow" question); Part B fixes a task set shape and sweeps
// the RET pattern (constant / uniform / sin / cos / bimodal / phased),
// mirroring the Sin/Cos/Constant pattern tables of the era.
//
// Expected shape: normalized energy is nearly flat across set sizes, and
// consistent (within a few percent) across patterns with equal mean
// demand — the algorithms react to slack, not to its shape.
#include "common.hpp"

#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dvs;

  // --- Part A: task-set size sweep ---------------------------------------
  exp::ExperimentConfig cfg = exp::default_config();
  cfg.governors = {"staticEDF", "lppsEDF", "ccEDF", "laEDF", "DRA", "lpSEH",
                   "uniformSlack"};
  cfg.seed = 6;
  cfg.replications = 6;
  cfg.sim_length = 1.2;
  cfg.n_threads = bench::parse_jobs(argc, argv);

  const std::vector<double> sizes{3, 5, 8, 12, 16};
  const auto size_sweep = exp::run_sweep(
      cfg, "tasks", sizes, [](double n, std::size_t, std::uint64_t seed) {
        return bench::uniform_case(
            bench::base_generator(static_cast<std::size_t>(n), 0.9, 0.1),
            seed);
      });
  bench::emit(size_sweep,
              "E6a: normalized energy vs number of tasks "
              "(U = 0.9, uniform RET)",
              "bench_e6a_taskset_size.csv");

  // --- Part B: workload pattern table ------------------------------------
  struct Pattern {
    const char* name;
    task::ExecutionTimeModelPtr model;
  };
  const Pattern patterns[] = {
      {"constant 0.75", task::constant_ratio_model(0.75)},
      {"uniform", task::uniform_ratio_model(61, 0.5, 1.0)},
      {"sin", task::sin_pattern_model(62)},
      {"cos", task::cos_pattern_model(63)},
      {"bimodal", task::bimodal_model(64, 0.5, 0.5, 1.0)},
      {"phased", task::phased_model(65, 25, 0.5, 0.5, 1.0)},
  };

  util::TextTable table;
  {
    std::vector<std::string> header{"pattern"};
    for (const auto& g : cfg.governors) header.push_back(g);
    table.header(std::move(header));
  }

  std::int64_t misses = bench::total_misses(size_sweep);
  for (const auto& p : patterns) {
    util::Rng rng(606);
    const auto ts =
        task::generate_task_set(bench::base_generator(8, 0.85, 0.1), rng);
    exp::ExperimentConfig run_cfg = cfg;
    const auto outcome = exp::run_case({ts, p.model}, run_cfg);
    std::vector<double> row;
    for (const auto& name : cfg.governors) {
      const auto& g = outcome.by_name(name);
      row.push_back(g.normalized_energy);
      misses += g.result.deadline_misses;
    }
    table.row_numeric(p.name, row, 4);
  }
  std::cout << "== E6b: normalized energy by RET pattern "
               "(one 8-task set, U = 0.85; patterns share mean ~0.75 WCET) "
               "==\n";
  table.render(std::cout);
  std::cout << "  deadline misses across E6: " << misses
            << (misses == 0 ? "  [hard real-time invariant holds]\n"
                            : "  [VIOLATION]\n");
  return misses == 0 ? 0 : 1;
}
