// E11 — Partitioned multiprocessor DVS: normalized energy vs core count
// under the classic bin-packing heuristics (DESIGN.md §10).
//
// For every heuristic (first/best/worst-fit decreasing utilization) and
// M in {1, 2, 4, 8} cores, random task sets with a fixed per-core target
// utilization (total U = 0.68 * M, tasks scaled 4 per core) are
// partitioned and simulated under every governor; energy is normalized
// against the noDVS run of the same case and partition.  M = 1 goes
// through the partitioned backend too — it is bit-identical to the
// uniprocessor simulator, so the M = 1 column doubles as a cross-check
// against E1's setting.
//
// Expected shape: worst-fit spreads load evenly, leaving every core the
// most slack, so the DVS governors' normalized energy is lowest (or tied)
// under wf; first/best-fit concentrate load, starving the emptier cores'
// governors of tasks (a powered-down core costs nothing, so concentration
// is not free energy — the reclaiming governors just lose headroom on the
// packed cores).  Exit 0 iff every simulation completed, every partition
// was accepted, and no deadline was missed; with `--oracle` the exit
// additionally gates every governor's continuous optimality gap (vs the
// per-core-summed YDS bound) staying >= 1.
#include "common.hpp"

#include <cstdint>

#include "mp/partition.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace {

using namespace dvs;

/// Per-core target utilization: high enough that DVS headroom matters,
/// low enough that every heuristic partitions every sampled set.
constexpr double kPerCoreU = 0.68;
constexpr std::size_t kTasksPerCore = 4;

exp::CaseBuilder multicore_builder(std::size_t m) {
  return [m](double /*x*/, std::size_t /*rep*/, std::uint64_t seed) {
    task::GeneratorConfig gen = bench::base_generator(
        kTasksPerCore * m, kPerCoreU * static_cast<double>(m), 0.1);
    gen.allow_overload = m > 1;   // total U > 1 is the point of M cores
    gen.max_task_utilization = 0.9;  // keep every task packable
    util::Rng rng(seed);
    return exp::Case{task::generate_task_set(gen, rng),
                     task::uniform_model(seed)};
  };
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dvs;
  const bench::BenchOptions opts = bench::parse_bench_options(argc, argv);

  exp::ExperimentConfig cfg = exp::default_config();
  cfg.governors = {"staticEDF", "ccEDF", "DRA", "lpSEH"};
  cfg.seed = 11;
  cfg.replications = opts.smoke ? 2 : 5;
  cfg.sim_length = opts.smoke ? 0.4 : 1.0;
  cfg.n_threads = opts.jobs;
  cfg.fail_fast = opts.strict;
  // --oracle: per-core YDS bounds are summed per case (the partitioned
  // optimum decomposes over cores), the oracle governor runs per core,
  // and the combined CSV gains per-governor gap columns.
  cfg.oracle = opts.oracle;

  const std::vector<std::size_t> core_counts =
      opts.smoke ? std::vector<std::size_t>{1, 2}
                 : std::vector<std::size_t>{1, 2, 4, 8};

  std::error_code ec;
  std::filesystem::create_directories("bench_csv", ec);
  util::CsvFile combined("bench_csv/bench_e11_multicore.csv");
  // Gap columns are appended only in oracle mode, so the default CSV
  // stays byte-identical (CI compares it across thread counts).
  std::vector<std::string> header{"heuristic", "cores", "governor",
                                  "norm_energy_mean", "norm_energy_min",
                                  "norm_energy_max", "miss_ratio_mean",
                                  "misses", "failures"};
  if (opts.oracle) {
    header.insert(header.end(),
                  {"gapc_mean", "gapc_min", "gapc_max", "gapd_mean"});
  }
  combined.writer().row(header);

  std::size_t failures = 0;
  std::int64_t misses = 0;
  bool gap_ok = true;

  for (const auto h : mp::all_heuristics()) {
    cfg.partitioner = h;
    const std::string hname = mp::heuristic_name(h);
    for (const std::size_t m : core_counts) {
      cfg.n_cores = m;
      const auto sweep =
          exp::run_sweep(cfg, "cores", {static_cast<double>(m)},
                         multicore_builder(m));
      bench::emit(sweep,
                  "E11[" + hname + ", M=" + std::to_string(m) +
                      "]: partitioned DVS, per-core U = 0.68, " +
                      std::to_string(kTasksPerCore * m) + " tasks",
                  "bench_e11_" + hname + "_m" + std::to_string(m) + ".csv");
      failures += sweep.failures.size();
      misses += bench::total_misses(sweep);
      gap_ok = gap_ok && bench::oracle_gap_holds(sweep);
      const auto& p = sweep.points.front();
      for (std::size_t g = 0; g < sweep.governors.size(); ++g) {
        const auto& e = p.normalized_energy[g];
        const auto& mr = p.miss_ratio[g];
        std::vector<std::string> row{
            hname, std::to_string(m), sweep.governors[g],
            e.count() > 0 ? util::format_double(e.mean(), 6) : "",
            e.count() > 0 ? util::format_double(e.min(), 6) : "",
            e.count() > 0 ? util::format_double(e.max(), 6) : "",
            mr.count() > 0 ? util::format_double(mr.mean(), 6) : "",
            std::to_string(p.total_misses),
            std::to_string(sweep.failures.size())};
        if (opts.oracle) {
          const auto& gc = p.gap_continuous[g];
          const auto& gd = p.gap_discrete[g];
          row.push_back(
              gc.count() > 0 ? util::format_double(gc.mean(), 6) : "");
          row.push_back(
              gc.count() > 0 ? util::format_double(gc.min(), 6) : "");
          row.push_back(
              gc.count() > 0 ? util::format_double(gc.max(), 6) : "");
          row.push_back(
              gd.count() > 0 ? util::format_double(gd.mean(), 6) : "");
        }
        combined.writer().row(row);
      }
    }
  }

  const bool ok = failures == 0 && misses == 0 && gap_ok;
  std::cout << "  failed simulations / rejected partitions: " << failures
            << ", deadline misses: " << misses;
  if (opts.oracle) {
    std::cout << ", oracle gap floor >= 1: " << (gap_ok ? "yes" : "NO");
  }
  std::cout << (ok ? "  [hard real-time invariant holds]\n"
                   : "  [VIOLATION]\n");
  return ok ? 0 : 1;
}
