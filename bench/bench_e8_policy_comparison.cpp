// E8 — The price of fixed priorities (extension experiment).
//
// Runs the same task sets and workloads under both dispatch policies and
// compares the best static and dynamic DVS scheme available to each:
//   EDF:  staticEDF (speed = U, optimal) and lpSEH,
//   FP :  staticFP (speed from response-time analysis, > U in general)
//         and lppsFP.
//
// Expected shape: EDF saves more at equal workloads because fixed
// priorities need a higher static speed (the RM/DM feasibility penalty);
// the gap widens with non-harmonic period sets and narrows for light
// actual workloads where single-job stretching dominates.
#include "common.hpp"

#include "core/fp.hpp"
#include "sched/fixed_priority.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace dvs;

/// One case's contribution (skipped == true for FP-infeasible sets).
struct CaseResult {
  bool skipped = false;
  double speed_fp = 0.0;
  double static_edf = 0.0;
  double static_fp = 0.0;
  double lpseh = 0.0;
  double lppsfp = 0.0;
  std::int64_t misses = 0;
};

CaseResult run_one(double u, std::uint64_t seed) {
  const auto c = bench::uniform_case(bench::base_generator(5, u, 0.1), seed);
  CaseResult out;
  if (!sched::fp_schedulable(c.task_set)) {
    out.skipped = true;
    return out;
  }
  out.speed_fp = sched::minimum_constant_speed_fp(c.task_set);

  const cpu::Processor proc = cpu::ideal_processor();
  sim::SimOptions edf_opts;
  edf_opts.length = 1.2;
  sim::SimOptions fp_opts = edf_opts;
  fp_opts.policy = sim::SchedulingPolicy::kFixedPriority;

  auto nodvs = core::make_governor("noDVS");
  const auto base =
      sim::simulate(c.task_set, *c.workload, proc, *nodvs, edf_opts);
  const double ref = base.total_energy();

  auto run = [&](sim::Governor& g, const sim::SimOptions& opts,
                 double& slot) {
    const auto r = sim::simulate(c.task_set, *c.workload, proc, g, opts);
    out.misses += r.deadline_misses;
    slot = r.total_energy() / ref;
  };
  auto se = core::make_governor("staticEDF");
  run(*se, edf_opts, out.static_edf);
  core::StaticFpGovernor sf;
  run(sf, fp_opts, out.static_fp);
  auto seh = core::make_governor("lpSEH");
  run(*seh, edf_opts, out.lpseh);
  core::LppsFpGovernor lf;
  run(lf, fp_opts, out.lppsfp);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = bench::parse_jobs(argc, argv);
  const std::size_t kCases = 8;
  std::int64_t misses = 0;

  util::TextTable t;
  t.header({"U", "min speed EDF", "min speed FP", "staticEDF", "staticFP",
            "lpSEH (EDF)", "lppsFP (FP)"});

  for (double u : {0.3, 0.45, 0.6}) {  // <= Liu-Layland bound for n = 5
    util::RunningStats speed_fp;
    util::RunningStats static_edf;
    util::RunningStats static_fp;
    util::RunningStats lpseh;
    util::RunningStats lppsfp;

    const auto results = bench::parallel_index_map(
        jobs, kCases,
        [u](std::size_t i) { return run_one(u, 7000 + 13 * i); });
    for (const auto& r : results) {
      if (r.skipped) continue;
      speed_fp.add(r.speed_fp);
      static_edf.add(r.static_edf);
      static_fp.add(r.static_fp);
      lpseh.add(r.lpseh);
      lppsfp.add(r.lppsfp);
      misses += r.misses;
    }

    t.row({util::format_double(u, 2), util::format_double(u, 4),
           util::format_double(speed_fp.mean(), 4),
           util::format_double(static_edf.mean(), 4),
           util::format_double(static_fp.mean(), 4),
           util::format_double(lpseh.mean(), 4),
           util::format_double(lppsfp.mean(), 4)});
  }

  std::cout << "== E8: EDF vs fixed-priority dispatching "
               "(normalized energy, uniform RET, 5 tasks) ==\n";
  t.render(std::cout);
  std::cout << "  deadline misses: " << misses
            << (misses == 0 ? "  [hard real-time invariant holds]\n"
                            : "  [VIOLATION]\n");
  return misses == 0 ? 0 : 1;
}
