// E5 — Speed-switch (voltage transition) overhead sensitivity.
//
// Charges a per-switch stall and Burd-model transition energy on a
// StrongARM-like 6-level processor and compares:
//   * noDVS                — immune to overhead (never switches),
//   * lpSEH (oblivious)    — the free-transition algorithm run as-is;
//                            reported to show it is NOT safe here,
//   * lpSEH+sw+oh          — slack analysis charged with the stall
//                            (SlackTimeConfig::switch_overhead) wrapped in
//                            the energy-gating OverheadAwareGovernor.
//
// Expected shape: the overhead-aware variant keeps all deadlines at every
// stall length and retains most of the saving up to ~100 us stalls; the
// oblivious variant accumulates misses as stalls grow.  Savings decay as
// the stall approaches the job granularity (the paper-era observation that
// DVS efficiency improves as processors switch faster).
#include "common.hpp"

#include "core/overhead_aware.hpp"
#include "core/slack_time.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace dvs;

  const std::vector<Time> stalls{0.0, 10e-6, 100e-6, 1e-3};
  const std::size_t kCases = 6;

  util::TextTable table;
  table.header({"t_switch", "noDVS", "lpSEH(oblivious)", "misses(obl)",
                "lpSEH+sw+oh", "misses(aware)", "switches(aware)"});

  std::int64_t aware_misses_total = 0;
  for (Time t_sw : stalls) {
    util::RunningStats oblivious;
    util::RunningStats aware;
    util::RunningStats aware_switches;
    std::int64_t oblivious_misses = 0;
    std::int64_t aware_misses = 0;

    for (std::size_t i = 0; i < kCases; ++i) {
      const auto c =
          bench::uniform_case(bench::base_generator(6, 0.7, 0.1), 900 + i);
      cpu::Processor proc = cpu::strongarm_processor();
      proc.transition = cpu::TransitionModel::voltage_delta(
          t_sw, /*cdd=*/5e-6, /*k=*/0.9, /*pmax_watts=*/0.9);

      sim::SimOptions opts;
      opts.length = 1.2;

      auto nodvs = core::make_governor("noDVS");
      const auto base = sim::simulate(c.task_set, *c.workload, proc, *nodvs,
                                      opts);

      auto plain = core::make_governor("lpSEH");
      const auto obl =
          sim::simulate(c.task_set, *c.workload, proc, *plain, opts);
      oblivious.add(obl.total_energy() / base.total_energy());
      oblivious_misses += obl.deadline_misses;

      core::SlackTimeConfig st;
      st.switch_overhead = t_sw;
      auto wrapped = core::overhead_aware(
          std::make_unique<core::SlackTimeGovernor>(st), proc);
      const auto aw =
          sim::simulate(c.task_set, *c.workload, proc, *wrapped, opts);
      aware.add(aw.total_energy() / base.total_energy());
      aware_switches.add(static_cast<double>(aw.speed_switches));
      aware_misses += aw.deadline_misses;
    }
    aware_misses_total += aware_misses;
    table.row({util::format_si_time(t_sw),
               "1.0000",
               util::format_double(oblivious.mean(), 4),
               std::to_string(oblivious_misses),
               util::format_double(aware.mean(), 4),
               std::to_string(aware_misses),
               util::format_double(aware_switches.mean(), 0)});
  }

  std::cout << "== E5: transition-overhead sensitivity "
               "(StrongARM-like levels, Burd energy model, U = 0.7) ==\n";
  std::cout << "   (normalized energy vs noDVS; the aware variant must "
               "never miss)\n";
  table.render(std::cout);
  std::cout << '\n';
  return aware_misses_total == 0 ? 0 : 1;
}
