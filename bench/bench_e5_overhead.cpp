// E5 — Speed-switch (voltage transition) overhead sensitivity.
//
// Charges a per-switch stall and Burd-model transition energy on a
// StrongARM-like 6-level processor and compares:
//   * noDVS                — immune to overhead (never switches),
//   * lpSEH (oblivious)    — the free-transition algorithm run as-is;
//                            reported to show it is NOT safe here,
//   * lpSEH+sw+oh          — slack analysis charged with the stall
//                            (SlackTimeConfig::switch_overhead) wrapped in
//                            the energy-gating OverheadAwareGovernor.
//
// Expected shape: the overhead-aware variant keeps all deadlines at every
// stall length and retains most of the saving up to ~100 us stalls; the
// oblivious variant accumulates misses as stalls grow.  Savings decay as
// the stall approaches the job granularity (the paper-era observation that
// DVS efficiency improves as processors switch faster).
#include "common.hpp"

#include "core/overhead_aware.hpp"
#include "core/slack_time.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace dvs;

/// Everything one (stall, case) pair contributes to the table; computed in
/// parallel, aggregated serially in index order.
struct CaseResult {
  double oblivious_energy = 0.0;
  double aware_energy = 0.0;
  double aware_switches = 0.0;
  std::int64_t oblivious_misses = 0;
  std::int64_t aware_misses = 0;
};

CaseResult run_one(Time t_sw, std::uint64_t seed) {
  const auto c = bench::uniform_case(bench::base_generator(6, 0.7, 0.1), seed);
  cpu::Processor proc = cpu::strongarm_processor();
  proc.transition = cpu::TransitionModel::voltage_delta(
      t_sw, /*cdd=*/5e-6, /*k=*/0.9, /*pmax_watts=*/0.9);

  sim::SimOptions opts;
  opts.length = 1.2;

  auto nodvs = core::make_governor("noDVS");
  const auto base =
      sim::simulate(c.task_set, *c.workload, proc, *nodvs, opts);

  CaseResult out;
  auto plain = core::make_governor("lpSEH");
  const auto obl = sim::simulate(c.task_set, *c.workload, proc, *plain, opts);
  out.oblivious_energy = obl.total_energy() / base.total_energy();
  out.oblivious_misses = obl.deadline_misses;

  core::SlackTimeConfig st;
  st.switch_overhead = t_sw;
  auto wrapped = core::overhead_aware(
      std::make_unique<core::SlackTimeGovernor>(st), proc);
  const auto aw =
      sim::simulate(c.task_set, *c.workload, proc, *wrapped, opts);
  out.aware_energy = aw.total_energy() / base.total_energy();
  out.aware_switches = static_cast<double>(aw.speed_switches);
  out.aware_misses = aw.deadline_misses;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = bench::parse_jobs(argc, argv);

  const std::vector<Time> stalls{0.0, 10e-6, 100e-6, 1e-3};
  const std::size_t kCases = 6;

  util::TextTable table;
  table.header({"t_switch", "noDVS", "lpSEH(oblivious)", "misses(obl)",
                "lpSEH+sw+oh", "misses(aware)", "switches(aware)"});

  std::int64_t aware_misses_total = 0;
  for (Time t_sw : stalls) {
    const auto results = bench::parallel_index_map(
        jobs, kCases,
        [t_sw](std::size_t i) { return run_one(t_sw, 900 + i); });

    util::RunningStats oblivious;
    util::RunningStats aware;
    util::RunningStats aware_switches;
    std::int64_t oblivious_misses = 0;
    std::int64_t aware_misses = 0;
    for (const auto& r : results) {
      oblivious.add(r.oblivious_energy);
      oblivious_misses += r.oblivious_misses;
      aware.add(r.aware_energy);
      aware_switches.add(r.aware_switches);
      aware_misses += r.aware_misses;
    }
    aware_misses_total += aware_misses;
    table.row({util::format_si_time(t_sw),
               "1.0000",
               util::format_double(oblivious.mean(), 4),
               std::to_string(oblivious_misses),
               util::format_double(aware.mean(), 4),
               std::to_string(aware_misses),
               util::format_double(aware_switches.mean(), 0)});
  }

  std::cout << "== E5: transition-overhead sensitivity "
               "(StrongARM-like levels, Burd energy model, U = 0.7) ==\n";
  std::cout << "   (normalized energy vs noDVS; the aware variant must "
               "never miss)\n";
  table.render(std::cout);
  std::cout << '\n';
  return aware_misses_total == 0 ? 0 : 1;
}
