// planner_client — NDJSON client for the slackdvs planning daemon.
//
//   planner_client --port P [--host H] [--smoke] [--shutdown]
//
// Modes:
//   (default)   pipe: read request lines from stdin, print response lines
//               to stdout — `echo '{"op":"ping"}' | planner_client ...`
//   --smoke     run the CI smoke set against the daemon: ping, an
//               admission that must be accepted (cnc), one that must be
//               rejected (overloaded), a plan query, a batch whose
//               elements must be byte-identical to the same queries
//               issued one at a time, a malformed line that must produce
//               a structured error WITHOUT killing the connection, and a
//               stats read that must show nonzero request counts.  Exit 0
//               iff every check passed.
//   --shutdown  additionally send {"op":"shutdown"} at the end (smoke) or
//               as the only request (pipe mode with no stdin input).
//
// Exit status: 0 success, 1 failed checks or I/O errors, 2 usage.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "obs/json_mini.hpp"
#include "obs/json_writer.hpp"

namespace {

using dvs::obs::JsonValue;

/// Blocking line-oriented connection to the daemon.
class Connection {
 public:
  Connection(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) fail("socket");
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      fail("bad host address: " + host);
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      fail("connect to " + host + ":" + std::to_string(port));
    }
  }
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void send_line(const std::string& line) {
    std::string framed = line;
    framed.push_back('\n');
    const char* p = framed.data();
    std::size_t left = framed.size();
    while (left > 0) {
      const ssize_t n = ::send(fd_, p, left, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        fail("send");
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
  }

  /// One response line, newline stripped; empty on EOF.
  std::string recv_line() {
    std::string line;
    while (true) {
      const auto nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[16384];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return buf_;  // EOF: whatever is left (usually empty)
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string round_trip(const std::string& line) {
    send_line(line);
    return recv_line();
  }

 private:
  [[noreturn]] static void fail(const std::string& what) {
    std::cerr << "planner_client: " << what << ": " << std::strerror(errno)
              << '\n';
    std::exit(1);
  }
  int fd_ = -1;
  std::string buf_;
};

int g_failures = 0;

void check(bool ok, const std::string& what, const std::string& detail = "") {
  if (ok) {
    std::cout << "ok   " << what << '\n';
  } else {
    ++g_failures;
    std::cout << "FAIL " << what;
    if (!detail.empty()) std::cout << " — " << detail;
    std::cout << '\n';
  }
}

/// True when the response parses and "ok" has the expected value.
bool response_ok(const std::string& line, bool expect_ok) {
  try {
    const JsonValue v = dvs::obs::parse_json(line);
    const JsonValue* ok = v.find("ok");
    return ok != nullptr && ok->is_bool() && ok->boolean == expect_ok;
  } catch (const std::exception&) {
    return false;
  }
}

bool bool_field(const std::string& line, const char* key) {
  const JsonValue v = dvs::obs::parse_json(line);
  const JsonValue* f = v.find(key);
  return f != nullptr && f->is_bool() && f->boolean;
}

/// The CNC preset as an inline "tasks" array (admitted: U ~ 0.52).
const char* kCncTasks =
    R"("tasks":[{"name":"x_axis","period":0.0024,"wcet":0.00022},)"
    R"({"name":"y_axis","period":0.0024,"wcet":0.00022},)"
    R"({"name":"x_pos","period":0.0048,"wcet":0.00024},)"
    R"({"name":"y_pos","period":0.0048,"wcet":0.00024},)"
    R"({"name":"interp","period":0.0048,"wcet":0.0005},)"
    R"({"name":"status","period":0.0096,"wcet":0.00048},)"
    R"({"name":"parser","period":0.0096,"wcet":0.00048},)"
    R"({"name":"panel","period":0.0192,"wcet":0.0006}])";

/// Two tasks demanding 140% of the processor (rejected).
const char* kOverloadTasks =
    R"("tasks":[{"name":"hog0","period":0.01,"wcet":0.007},)"
    R"({"name":"hog1","period":0.01,"wcet":0.007}])";

int run_smoke(Connection& conn, bool send_shutdown) {
  // 1. ping
  check(response_ok(conn.round_trip(R"({"op":"ping","id":1})"), true),
        "ping");

  // 2. admission accept
  const std::string admit_yes =
      conn.round_trip(std::string(R"({"op":"admit","id":2,)") + kCncTasks +
                      "}");
  check(response_ok(admit_yes, true) && bool_field(admit_yes, "admitted"),
        "admit accepts a schedulable set", admit_yes);

  // 3. admission reject
  const std::string admit_no =
      conn.round_trip(std::string(R"({"op":"admit","id":3,)") +
                      kOverloadTasks + "}");
  check(response_ok(admit_no, true) && !bool_field(admit_no, "admitted"),
        "admit rejects an overloaded set", admit_no);

  // 4. plan with governors
  const std::string plan = conn.round_trip(
      std::string(R"({"op":"plan","id":4,)") + kCncTasks +
      R"(,"governors":["ccEDF","lpSEH"],"length":0.1})");
  check(response_ok(plan, true) &&
            plan.find("\"plans\":[") != std::string::npos,
        "plan returns governor predictions");

  // 5. batch == singles, byte for byte
  const std::vector<std::string> queries = {
      std::string(R"({"op":"admit","id":10,)") + kCncTasks + "}",
      std::string(R"({"op":"admit","id":11,)") + kOverloadTasks + "}",
      R"({"op":"ping","id":12})",
  };
  std::vector<std::string> singles;
  singles.reserve(queries.size());
  for (const std::string& q : queries) singles.push_back(conn.round_trip(q));
  std::string batch = R"({"op":"batch","id":13,"queries":[)";
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (i != 0) batch.push_back(',');
    batch += queries[i];
  }
  batch += "]}";
  const std::string batch_resp = conn.round_trip(batch);
  bool batch_ok = response_ok(batch_resp, true);
  if (batch_ok) {
    const JsonValue v = dvs::obs::parse_json(batch_resp);
    const JsonValue* results = v.find("results");
    batch_ok = results != nullptr && results->is_array() &&
               results->array.size() == singles.size();
    if (batch_ok) {
      for (std::size_t i = 0; i < singles.size(); ++i) {
        batch_ok = batch_ok &&
                   dvs::obs::write_json(results->array[i]) == singles[i];
      }
    }
  }
  check(batch_ok, "batch responses byte-identical to single queries");

  // 6. malformed input: structured error, connection survives
  check(response_ok(conn.round_trip("{this is not json"), false),
        "malformed request yields a structured error");
  check(response_ok(conn.round_trip(R"({"op":"ping"})"), true),
        "connection survives the malformed request");

  // 7. stats show traffic
  const std::string stats = conn.round_trip(R"({"op":"stats"})");
  check(response_ok(stats, true) &&
            stats.find("\"admit\":{\"requests\":") != std::string::npos,
        "stats report per-endpoint counters", stats);

  if (send_shutdown) {
    check(response_ok(conn.round_trip(R"({"op":"shutdown"})"), true),
          "shutdown acknowledged");
  }
  std::cout << (g_failures == 0 ? "SMOKE PASS" : "SMOKE FAIL") << '\n';
  return g_failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  bool smoke = false;
  bool shutdown = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (a == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (a == "--smoke") {
      smoke = true;
    } else if (a == "--shutdown") {
      shutdown = true;
    } else {
      std::cerr << "usage: planner_client --port P [--host H] [--smoke] "
                   "[--shutdown]\n";
      return 2;
    }
  }
  if (port <= 0 || port > 65535) {
    std::cerr << "planner_client: --port is required (1..65535)\n";
    return 2;
  }
  Connection conn(host, static_cast<std::uint16_t>(port));
  if (smoke) return run_smoke(conn, shutdown);

  // Pipe mode: forward stdin lines, print responses.
  std::string line;
  bool any = false;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    any = true;
    std::cout << conn.round_trip(line) << '\n';
  }
  if (shutdown) {
    std::cout << conn.round_trip(R"({"op":"shutdown"})") << '\n';
    any = true;
  }
  if (!any) {
    std::cerr << "planner_client: nothing to send (empty stdin; see "
                 "--smoke)\n";
    return 2;
  }
  return 0;
}
