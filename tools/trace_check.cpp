// trace_check — validate an exported Chrome trace-event JSON file.
//
//   trace_check <trace.json> [more.json ...]
//
// Round-trip guard for obs::write_chrome_trace: parses the document with
// the dependency-free obs JSON parser and verifies the structural
// invariants the exporter promises — well-formed JSON, complete duration
// events with finite timestamps, monotone non-overlapping events per
// (pid, tid) track, monotone counter samples, and per-pid busy + idle +
// transition durations summing to the simulated length.  CI pipes every
// exported trace through this tool, so a formatting regression fails the
// build instead of silently producing files Perfetto rejects.
//
// Exit status: 0 when every file validates, 1 on any check failure or
// unreadable file.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/trace_check.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <trace.json> [more.json ...]\n";
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      std::cerr << path << ": cannot open\n";
      all_ok = false;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const dvs::obs::TraceCheckReport report =
        dvs::obs::check_chrome_trace(buffer.str());
    if (report.ok()) {
      std::cout << path << ": OK (" << report.events << " events, "
                << report.duration_events << " duration events, "
                << report.flow_events << " flow events, " << report.tracks
                << " tracks, " << report.pids << " governors)\n";
    } else {
      all_ok = false;
      std::cerr << path << ": INVALID (" << report.errors.size()
                << " errors)\n";
      for (const auto& e : report.errors) std::cerr << "  " << e << "\n";
    }
  }
  return all_ok ? 0 : 1;
}
