// slackdvs — command-line front end for the SlackDVS library.
//
//   slackdvs analyze  <taskset>                      schedulability report
//   slackdvs run      <taskset> [options]            simulate + compare
//   slackdvs admit    <taskset> [options]            admission verdict
//   slackdvs serve    [options]                      planning daemon
//   slackdvs gen      <U> <n> <seed> [file]          random task set CSV
//
// <taskset> is either a CSV file (see task/io.hpp) or one of the presets
// ins / cnc / avionics.
//
// `admit` and `run` are thin clients of the svc Planner API (DESIGN.md
// §12): the same svc::Session that backs the daemon answers them, so a
// verdict printed here is bit-identical to the one `slackdvs serve`
// would return over the wire.
//
// admit options:
//   --cores M, --partition ff|bf|wf   partitioned admission (as in run)
//   exit status: 0 admitted, 2 rejected
//
// serve options:
//   --port P                    TCP port on 127.0.0.1 (default 0 =
//                               ephemeral; the bound port is printed as
//                               "listening on 127.0.0.1:PORT")
//   --jobs N                    batch fan-out workers (0 = hardware)
//   --max-request-bytes B       per-request size cap (default 1 MiB)
//   The daemon runs until it receives {"op":"shutdown"}.
//
// run options:
//   --governor NAME[,NAME...]   registry names; default: all
//   --processor NAME            ideal|xscale|strongarm|crusoe|four-level
//   --workload SPEC             uniform[:seed] | const:RATIO | sin[:seed] |
//                               cos[:seed] | bimodal[:seed]
//   --length SECONDS            simulated time (default: per-set)
//   --policy edf|fp             dispatch policy (fp limits the governors)
//   --gantt T0:T1               print an ASCII Gantt of the last governor
//   --jobs N                    worker threads for the governor comparison
//                               (0 = hardware concurrency, 1 = serial;
//                               results are identical for every N; the
//                               SLACKDVS_JOBS env var sets the default)
//   --overrun-prob P            inject WCET overruns with probability P
//                               per job (fault injection, DESIGN.md §7)
//   --overrun-mag M             overrun demand = wcet * (1 + M); default 0.5
//   --containment MODE          none | clamp_at_wcet | escalate_to_max_speed
//                               (what the simulator does about overruns)
//   --trace-out FILE.json       export every governor's schedule as Chrome
//                               trace-event JSON (chrome://tracing, Perfetto)
//   --metrics                   print per-governor metrics (speed residency,
//                               queue depth, preemptions) and the slack-
//                               estimate audit
//   --cores M                   multiprocessor run on M cores (EDF only;
//                               M=1 matches the uniprocessor simulator bit
//                               for bit, DESIGN.md §10/§14)
//   --mp partitioned|global     multiprocessor backend for --cores:
//                               partitioned (default) bin-packs tasks onto
//                               cores; global runs one deadline-ordered
//                               ready queue over all M cores with
//                               job-level migration (DESIGN.md §14)
//   --partition ff|bf|wf        bin-packing heuristic for --cores
//                               (first/best/worst-fit decreasing; default
//                               ff; partitioned backend only)
//   --migration-cost US         per-migration surcharge in microseconds of
//                               full-speed work, charged to the migrating
//                               job (global backend only; default 0)
//   --mk M:K                    set every task's weakly-hard firmness to
//                               (M,K): at least M of any K consecutive jobs
//                               must meet their deadlines (M=K means hard)
//   --degrade                   attach the graceful-degradation controller
//                               (DESIGN.md §11): under observed overload it
//                               sheds (m,k)-legal jobs and reports skips,
//                               mode changes and contract violations
//
// Malformed numeric flag values (garbage, NaN, out-of-range) exit 2 with a
// message naming the flag; runtime failures exit 1.
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fp.hpp"
#include "core/registry.hpp"
#include "degrade/degrade.hpp"
#include "fault/fault.hpp"
#include "cpu/processors.hpp"
#include "exp/experiment.hpp"
#include "mp/global_sim.hpp"
#include "mp/mp_sim.hpp"
#include "exp/report.hpp"
#include "obs/audit.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "sched/analysis.hpp"
#include "sched/fixed_priority.hpp"
#include "sim/simulator.hpp"
#include "task/benchmarks.hpp"
#include "task/generator.hpp"
#include "task/io.hpp"
#include "svc/daemon.hpp"
#include "svc/planner.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace dvs;

/// A malformed command line (as opposed to a failed run).  Caught in
/// main(), which prints the message plus a usage pointer and exits 2, so
/// scripts can tell "bad invocation" from "bad run" (exit 1).
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Checked replacement for the old std::atof calls: rejects garbage,
/// trailing junk, NaN/inf and out-of-range values with a UsageError that
/// names the offending flag.
double parse_double(const std::string& flag, const std::string& v,
                    double lo, double hi) {
  errno = 0;
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE ||
      !std::isfinite(x)) {
    throw UsageError(flag + ": expected a finite number, got '" + v + "'");
  }
  if (x < lo || x > hi) {
    throw UsageError(flag + ": value " + v + " out of range [" +
                     util::format_double(lo, 6) + ", " +
                     util::format_double(hi, 6) + "]");
  }
  return x;
}

/// Checked replacement for the old std::atoll calls; same contract as
/// parse_double but for integers.
long long parse_int(const std::string& flag, const std::string& v,
                    long long lo, long long hi) {
  errno = 0;
  char* end = nullptr;
  const long long x = std::strtoll(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE) {
    throw UsageError(flag + ": expected an integer, got '" + v + "'");
  }
  if (x < lo || x > hi) {
    throw UsageError(flag + ": value " + v + " out of range [" +
                     std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return x;
}

void usage() {
  std::cout <<
      R"(slackdvs — slack-time DVS for hard real-time systems (DATE 2002 repro)

  slackdvs analyze <taskset>
  slackdvs run     <taskset> [--governor A,B|all] [--processor NAME]
                   [--workload SPEC] [--length SECONDS] [--policy edf|fp]
                   [--gantt T0:T1] [--jobs N] [--overrun-prob P]
                   [--overrun-mag M] [--containment MODE]
                   [--trace-out FILE.json] [--metrics] [--oracle]
                   [--cores M] [--mp partitioned|global]
                   [--partition ff|bf|wf] [--migration-cost US]
                   [--mk M:K] [--degrade]
  slackdvs admit   <taskset> [--cores M] [--partition ff|bf|wf]
  slackdvs serve   [--port P] [--jobs N] [--max-request-bytes B]
  slackdvs gen     <utilization> <n_tasks> <seed> [out.csv]

<taskset>: a CSV file or a preset (ins | cnc | avionics).
)";
}

task::TaskSet resolve_task_set(const std::string& spec) {
  const std::string low = util::to_lower(spec);
  if (low == "ins") return task::ins_task_set();
  if (low == "cnc") return task::cnc_task_set();
  if (low == "avionics") return task::avionics_task_set();
  return task::load_task_set_csv_file(spec);
}

task::ExecutionTimeModelPtr resolve_workload(const std::string& spec) {
  // The spec grammar lives with the workload models now (the svc protocol
  // shares it); a bad spec is still a *usage* error here (exit 2).
  try {
    return task::workload_by_spec(spec);
  } catch (const util::ContractError& e) {
    throw UsageError(std::string("--workload: ") + e.what());
  }
}

int cmd_analyze(const std::string& spec) {
  const task::TaskSet ts = resolve_task_set(spec);
  std::cout << "task set '" << ts.name() << "': " << ts.size()
            << " tasks, U = " << util::format_double(ts.utilization(), 4)
            << ", density = " << util::format_double(ts.density(), 4) << '\n';
  for (const auto& t : ts) {
    std::cout << "  " << t.name << ": T=" << util::format_si_time(t.period)
              << " D=" << util::format_si_time(t.deadline)
              << " C=" << util::format_si_time(t.wcet)
              << " u=" << util::format_double(t.utilization(), 3) << '\n';
  }
  if (const auto h = ts.hyperperiod()) {
    std::cout << "hyperperiod: " << util::format_si_time(*h) << '\n';
  } else {
    std::cout << "hyperperiod: not expressible (incommensurate periods)\n";
  }
  const bool edf = sched::edf_schedulable(ts);
  std::cout << "EDF schedulable: " << (edf ? "yes" : "NO");
  if (edf) {
    std::cout << " (min constant speed "
              << util::format_double(sched::minimum_constant_speed(ts), 4)
              << ")";
  }
  std::cout << '\n';
  const bool fp = sched::fp_schedulable(ts);
  std::cout << "fixed-priority (DM) schedulable: " << (fp ? "yes" : "NO");
  if (fp) {
    std::cout << " (min constant speed "
              << util::format_double(sched::minimum_constant_speed_fp(ts), 4)
              << ")";
  }
  std::cout << '\n';
  return edf ? 0 : 2;
}

/// Per-task energy breakdown: one row per task, one column per governor.
/// (Satellite of the observability PR: SimResult::per_task_energy existed
/// but never reached the CLI.)
void print_per_task_energy(const task::TaskSet& ts,
                           const std::vector<std::string>& names,
                           const std::vector<const sim::SimResult*>& results) {
  util::TextTable table;
  std::vector<std::string> header{"task"};
  header.insert(header.end(), names.begin(), names.end());
  table.header(std::move(header));
  for (std::size_t i = 0; i < ts.size(); ++i) {
    std::vector<std::string> row{ts.tasks()[i].name};
    for (const sim::SimResult* r : results) {
      const double e = i < r->per_task_energy.size() ? r->per_task_energy[i]
                                                     : 0.0;
      row.push_back(util::format_double(e, 4));
    }
    table.row(std::move(row));
  }
  std::cout << "per-task busy energy (normalized units):\n";
  table.render(std::cout);
}

int cmd_run(const std::vector<std::string>& args) {
  DVS_EXPECT(!args.empty(), "run: missing <taskset>");
  task::TaskSet ts = resolve_task_set(args[0]);

  std::vector<std::string> governors = core::governor_names();
  cpu::Processor processor = cpu::ideal_processor();
  task::ExecutionTimeModelPtr workload = task::uniform_model(42);
  Time length = -1.0;
  sim::SchedulingPolicy policy = sim::SchedulingPolicy::kEdf;
  std::size_t jobs = 0;
  if (const char* env = std::getenv("SLACKDVS_JOBS")) {
    jobs = static_cast<std::size_t>(std::atoll(env));
  }
  bool want_gantt = false;
  Time gantt_t0 = 0.0;
  Time gantt_t1 = 0.0;
  std::string trace_out;
  bool want_metrics = false;
  bool want_oracle = false;
  fault::FaultSpec fspec;
  fspec.seed = 42;
  fspec.overrun_magnitude = 0.5;
  sim::OverrunPolicy containment = sim::OverrunPolicy::kNone;
  std::size_t n_cores = 0;  // 0 = uniprocessor
  mp::PartitionHeuristic partitioner = mp::PartitionHeuristic::kFirstFit;
  mp::MpBackend backend = mp::MpBackend::kPartitioned;
  Time migration_cost = 0.0;  // seconds; --migration-cost takes us
  bool migration_cost_set = false;
  bool want_degrade = false;
  degrade::DegradationConfig dcfg;  // used only when want_degrade
  std::int32_t mk_m = 0;            // 0 = leave the task set's firmness
  std::int32_t mk_k = 0;

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> std::string {
      DVS_EXPECT(i + 1 < args.size(), a + " needs a value");
      return args[++i];
    };
    if (a == "--governor") {
      const std::string v = value();
      if (util::to_lower(v) != "all") {
        governors.clear();
        std::istringstream in(v);
        std::string name;
        while (std::getline(in, name, ',')) governors.push_back(name);
      }
    } else if (a == "--processor") {
      processor = cpu::processor_by_name(value());
    } else if (a == "--workload") {
      workload = resolve_workload(value());
    } else if (a == "--length") {
      length = parse_double("--length", value(), 1e-6, 1e9);
    } else if (a == "--policy") {
      const std::string v = util::to_lower(value());
      DVS_EXPECT(v == "edf" || v == "fp", "--policy must be edf or fp");
      policy = v == "edf" ? sim::SchedulingPolicy::kEdf
                          : sim::SchedulingPolicy::kFixedPriority;
    } else if (a == "--jobs") {
      jobs = static_cast<std::size_t>(parse_int("--jobs", value(), 0, 4096));
    } else if (a == "--overrun-prob") {
      fspec.overrun_prob = parse_double("--overrun-prob", value(), 0.0, 1.0);
    } else if (a == "--overrun-mag") {
      fspec.overrun_magnitude =
          parse_double("--overrun-mag", value(), 0.0, 1e6);
    } else if (a == "--containment") {
      containment = fault::containment_by_name(value());
    } else if (a == "--cores") {
      n_cores = static_cast<std::size_t>(parse_int("--cores", value(), 1,
                                                   4096));
    } else if (a == "--partition") {
      partitioner = mp::heuristic_by_name(value());
    } else if (a == "--mp") {
      backend = mp::backend_by_name(value());
    } else if (a == "--migration-cost") {
      migration_cost =
          parse_double("--migration-cost", value(), 0.0, 1e9) * 1e-6;
      migration_cost_set = true;
    } else if (a == "--trace-out") {
      trace_out = value();
      DVS_EXPECT(!trace_out.empty(), "--trace-out needs a file name");
    } else if (a == "--metrics") {
      want_metrics = true;
    } else if (a == "--oracle") {
      want_oracle = true;
    } else if (a == "--gantt") {
      const std::string v = value();
      const auto colon = v.find(':');
      if (colon == std::string::npos) {
        throw UsageError("--gantt wants T0:T1, e.g. --gantt 0:0.5");
      }
      gantt_t0 = parse_double("--gantt T0", v.substr(0, colon), 0.0, 1e9);
      gantt_t1 = parse_double("--gantt T1", v.substr(colon + 1), 0.0, 1e9);
      if (gantt_t1 <= gantt_t0) {
        throw UsageError("--gantt wants T0 < T1, got " + v);
      }
      want_gantt = true;
    } else if (a == "--mk") {
      const std::string v = value();
      const auto colon = v.find(':');
      if (colon == std::string::npos) {
        throw UsageError("--mk wants M:K, e.g. --mk 1:2");
      }
      mk_m = static_cast<std::int32_t>(
          parse_int("--mk M", v.substr(0, colon), 1, 1000000000));
      mk_k = static_cast<std::int32_t>(
          parse_int("--mk K", v.substr(colon + 1), 1, 1000000000));
      if (mk_m > mk_k) {
        throw UsageError("--mk wants M <= K, got " + v);
      }
    } else if (a == "--degrade") {
      want_degrade = true;
    } else {
      DVS_EXPECT(false, "unknown option: " + a);
    }
  }

  fspec.validate();
  if (fspec.injects_workload_faults()) {
    workload = fault::faulty_workload(std::move(workload), fspec);
  }
  if (mk_m >= 1) ts = degrade::with_firmness(ts, mk_m, mk_k);
  DVS_EXPECT(n_cores == 0 || policy == sim::SchedulingPolicy::kEdf,
             "--cores requires --policy edf (partitioned EDF backend)");
  DVS_EXPECT(n_cores == 0 || !want_gantt,
             "--gantt is uniprocessor-only; drop --cores to render it");
  DVS_EXPECT(!want_oracle || policy == sim::SchedulingPolicy::kEdf,
             "--oracle requires --policy edf (YDS optimality is EDF-only)");
  const bool global = backend == mp::MpBackend::kGlobal;
  DVS_EXPECT(!global || n_cores >= 1,
             "--mp global requires --cores M (M >= 1)");
  DVS_EXPECT(!migration_cost_set || global,
             "--migration-cost applies to the global backend; add "
             "--mp global");
  DVS_EXPECT(!want_oracle || !global,
             "--oracle is incompatible with --mp global: the YDS bound "
             "decomposes over independent cores, which migration "
             "invalidates");
  DVS_EXPECT(!want_metrics || !global,
             "--metrics is not wired to the global backend; drop --mp "
             "global");
  DVS_EXPECT(!want_degrade || n_cores == 0 || global,
             "--degrade needs the uniprocessor simulator or --mp global "
             "(the partitioned backend has no platform-wide controller)");
  DVS_EXPECT(!(want_degrade && want_oracle),
             "--degrade and --oracle are incompatible: the clairvoyant "
             "bounds assume every released job executes");

  std::int64_t misses = 0;
  if (policy == sim::SchedulingPolicy::kEdf) {
    exp::ExperimentConfig cfg = exp::default_config();
    cfg.governors = governors;
    cfg.processor = processor;
    cfg.sim_length = length;
    cfg.containment = containment;
    cfg.oracle = want_oracle;
    if (want_degrade) cfg.degradation = dcfg;
    cfg.n_threads = jobs;  // parallel across governors; output identical
    if (n_cores >= 1 && global) {
      std::cout << "global EDF on " << n_cores << " cores (dispatch floor "
                << util::format_double(
                       mp::global_speed_floor(ts, n_cores), 4)
                << ", migration cost "
                << util::format_double(migration_cost * 1e6, 3) << " us)\n";
      cfg.n_cores = n_cores;
      cfg.mp_backend = mp::MpBackend::kGlobal;
      cfg.migration_cost = migration_cost;
    } else if (n_cores >= 1) {
      const mp::PartitionResult pr =
          mp::partition_task_set(ts, n_cores, partitioner);
      if (!pr.feasible) {
        std::cerr << "partition rejected: " << pr.error << '\n';
        return 2;
      }
      std::cout << "partition: " << pr.partition.describe(ts) << '\n';
      cfg.n_cores = n_cores;
      cfg.partitioner = partitioner;
    }
    // Through the Planner Session — the same engine the daemon serves;
    // forwards to exp::run_case, so the output bytes are unchanged.
    svc::Session session;
    const exp::CaseOutcome outcome = session.run_case({ts, workload}, cfg);
    exp::print_case(std::cout, outcome,
                    ts.name() + " on " + processor.name + " (" +
                        workload->name() + ", EDF)");
    for (const auto& g : outcome.outcomes) misses += g.result.deadline_misses;
    {
      std::vector<std::string> names;
      std::vector<const sim::SimResult*> results;
      for (const auto& g : outcome.outcomes) {
        names.push_back(g.governor);
        results.push_back(&g.result);
      }
      print_per_task_energy(ts, names, results);
    }
    if (n_cores >= 1) {
      std::cout << "per-core results:\n";
      for (const auto& g : outcome.outcomes) {
        if (!g.mp) continue;
        std::cout << "  " << g.governor << ":\n";
        for (std::size_t c = 0; c < g.mp->cores.size(); ++c) {
          // Under the global backend every core is powered (the single
          // ready queue can dispatch to any of them); the partition's
          // powered-down shortcut applies only to the bin-packed layout.
          if (!global && g.mp->partition.tasks_of_core[c].empty()) {
            std::cout << "    core" << c << ": powered down (no tasks)\n";
            continue;
          }
          std::cout << "    core" << c << ": " << g.mp->cores[c].summary()
                    << '\n';
        }
        if (global) {
          std::cout << "    migrations: " << g.result.migrations
                    << " (surcharge "
                    << util::format_double(g.result.migration_overhead_us, 1)
                    << " us folded into demands)\n";
        }
      }
    }
    if (fspec.injects_workload_faults() ||
        containment != sim::OverrunPolicy::kNone) {
      std::cout << "fault containment ("
                << fault::containment_name(containment) << "):\n";
      for (const auto& g : outcome.outcomes) {
        std::cout << "  " << g.governor << ": overruns "
                  << g.result.jobs_overrun << " (contained "
                  << g.result.overruns_contained << ")\n";
      }
    }
    if (want_degrade) {
      std::cout << "graceful degradation (DESIGN.md §11):\n";
      for (const auto& g : outcome.outcomes) {
        const sim::SimResult& r = g.result;
        std::cout << "  " << g.governor << ": " << r.jobs_skipped
                  << " skipped, " << r.mode_changes << " mode changes, "
                  << util::format_double(r.time_degraded, 4)
                  << " s degraded, " << r.mk_violations
                  << " (m,k) violations, " << r.hard_misses
                  << " hard misses\n";
      }
    }
  } else {
    // Fixed-priority: run the FP-safe family.
    sim::SimOptions opts;
    opts.length = length;
    opts.policy = policy;
    opts.containment = containment;
    if (want_degrade) opts.degradation = &dcfg;
    std::vector<sim::GovernorPtr> fp_governors;
    fp_governors.push_back(core::make_governor("noDVS"));
    fp_governors.push_back(std::make_unique<core::StaticFpGovernor>());
    fp_governors.push_back(std::make_unique<core::LppsFpGovernor>());
    double ref = -1.0;
    std::cout << "== " << ts.name() << " on " << processor.name
              << " (fixed priorities) ==\n";
    std::vector<sim::SimResult> fp_results;
    for (auto& g : fp_governors) {
      const auto r = sim::simulate(ts, *workload, processor, *g, opts);
      if (ref < 0.0) ref = r.total_energy();
      misses += r.deadline_misses;
      std::cout << "  " << r.summary() << "  normalized="
                << util::format_double(r.total_energy() / ref, 4) << '\n';
      fp_results.push_back(r);
    }
    {
      std::vector<std::string> names;
      std::vector<const sim::SimResult*> results;
      for (const auto& r : fp_results) {
        names.push_back(r.governor);
        results.push_back(&r);
      }
      print_per_task_energy(ts, names, results);
    }
  }

  if (!trace_out.empty() && n_cores >= 1 && global) {
    // Global observability pass: re-run every governor with per-core trace
    // sinks attached.  One pid per (governor, core) — every pid carries
    // the FULL task set (any task can run on any core) — plus one flow
    // arrow per migration, drawn from the source core's pid to the
    // destination's on the migrating task's row.  Determinism makes this
    // re-run reproduce the comparison above exactly.
    struct GlobalObsRun {
      std::string governor;
      std::vector<sim::VectorTrace> traces;
      mp::GlobalResult result;
    };
    std::deque<GlobalObsRun> runs;
    Time sim_len = 0.0;
    for (const auto& name : governors) {
      runs.emplace_back();
      GlobalObsRun& run = runs.back();
      mp::GlobalOptions o;
      o.length = length;
      o.n_cores = n_cores;
      o.migration_cost = migration_cost;
      o.containment = containment;
      if (want_degrade) o.degradation = &dcfg;
      o.traces = &run.traces;
      auto g = core::make_governor(name);
      run.result = mp::simulate_global(ts, *workload, processor, *g, o);
      run.governor = run.result.total.governor;
      sim_len = run.result.total.sim_length;
    }
    std::vector<obs::TraceProcess> procs;
    std::vector<obs::TraceFlowEvent> flows;
    procs.reserve(runs.size() * n_cores);
    for (const GlobalObsRun& run : runs) {
      const std::size_t base = procs.size();
      for (std::size_t c = 0; c < n_cores; ++c) {
        procs.push_back({run.governor + "/core" + std::to_string(c), &ts,
                         &run.traces[c]});
      }
      for (const auto& m : run.result.migrations) {
        flows.push_back({"migration", m.at,
                         base + static_cast<std::size_t>(m.from_core),
                         base + static_cast<std::size_t>(m.to_core),
                         m.task_id, m.job_index});
      }
    }
    std::ofstream out(trace_out);
    DVS_EXPECT(out.is_open(), "cannot open trace output: " + trace_out);
    obs::write_chrome_trace(out, ts.name(), procs, sim_len, flows);
    std::cout << "wrote Chrome trace (" << procs.size()
              << " governor/core pids, " << flows.size()
              << " migration flows) to " << trace_out
              << "  [chrome://tracing or ui.perfetto.dev]\n";
  } else if ((!trace_out.empty() || want_metrics) && n_cores >= 1) {
    // Partitioned observability pass: one pid per (governor, core), each
    // with its own core-local task set.  Determinism makes this re-run
    // reproduce the comparison above exactly.
    const mp::MpPlan plan =
        mp::plan_mp(ts, workload, n_cores, partitioner, length);
    DVS_EXPECT(plan.feasible(), plan.partition.error);  // checked above
    struct MpObsRun {
      std::string label;
      const task::TaskSet* set = nullptr;
      sim::VectorTrace trace;
    };
    std::deque<MpObsRun> runs;
    for (const auto& name : governors) {
      for (std::size_t c = 0; c < n_cores; ++c) {
        if (plan.core_sets[c].empty()) continue;  // powered down
        runs.emplace_back();
        MpObsRun& run = runs.back();
        run.set = &plan.core_sets[c];
        sim::SimOptions o;
        o.length = plan.length;
        o.containment = containment;
        o.trace = &run.trace;
        obs::MetricsRegistry reg;
        if (want_metrics) o.metrics = &reg;
        auto g = core::make_governor(name);
        const auto r = sim::simulate(plan.core_sets[c],
                                     *plan.core_workloads[c], processor, *g,
                                     o);
        run.label = r.governor + "/core" + std::to_string(c);
        if (want_metrics) {
          std::cout << "metrics of " << run.label << ":\n";
          reg.print(std::cout);
        }
      }
    }
    if (!trace_out.empty()) {
      std::vector<obs::TraceProcess> procs;
      procs.reserve(runs.size());
      for (const MpObsRun& run : runs) {
        procs.push_back({run.label, run.set, &run.trace});
      }
      std::ofstream out(trace_out);
      DVS_EXPECT(out.is_open(), "cannot open trace output: " + trace_out);
      obs::write_chrome_trace(out, ts.name(), procs, plan.length);
      std::cout << "wrote Chrome trace (" << procs.size()
                << " governor/core pids) to " << trace_out
                << "  [chrome://tracing or ui.perfetto.dev]\n";
    }
  } else if (!trace_out.empty() || want_metrics) {
    // Observability pass: re-run every governor of the comparison with a
    // trace recorder (and, with --metrics, a registry + decision audit)
    // attached.  Determinism makes the re-run reproduce the comparison
    // exactly; a deque keeps trace addresses stable for the exporter.
    struct ObsRun {
      std::string name;
      sim::VectorTrace trace;
    };
    std::deque<ObsRun> obs_runs;
    Time sim_len = 0.0;
    auto observe = [&](sim::GovernorPtr g) {
      obs_runs.emplace_back();
      ObsRun& run = obs_runs.back();
      sim::SimOptions o;
      o.length = length;
      o.policy = policy;
      o.containment = containment;
      if (want_degrade) o.degradation = &dcfg;
      o.trace = &run.trace;
      obs::MetricsRegistry reg;
      obs::DecisionAudit audit;
      if (want_metrics) {
        o.metrics = &reg;
        o.audit = &audit;
      }
      const auto r = sim::simulate(ts, *workload, processor, *g, o);
      run.name = r.governor;
      sim_len = r.sim_length;
      if (want_metrics) {
        std::cout << "metrics of " << r.governor << ":\n";
        reg.print(std::cout);
        const obs::SlackAccuracy acc = audit.accuracy();
        if (acc.audited > 0) {
          std::cout << "  slack estimate: bias "
                    << util::format_double(acc.bias(), 4) << " s, mae "
                    << util::format_double(acc.mae(), 4) << " s over "
                    << acc.audited << "/" << acc.decisions << " decisions\n";
        } else if (acc.decisions > 0) {
          std::cout << "  slack estimate: none exposed (" << acc.decisions
                    << " decisions recorded)\n";
        }
      }
    };
    if (policy == sim::SchedulingPolicy::kEdf) {
      for (const auto& name : governors) observe(core::make_governor(name));
    } else {
      observe(core::make_governor("noDVS"));
      observe(std::make_unique<core::StaticFpGovernor>());
      observe(std::make_unique<core::LppsFpGovernor>());
    }
    if (!trace_out.empty()) {
      std::vector<obs::GovernorTrace> traces;
      traces.reserve(obs_runs.size());
      for (const ObsRun& run : obs_runs) {
        traces.push_back({run.name, &run.trace});
      }
      std::ofstream out(trace_out);
      DVS_EXPECT(out.is_open(), "cannot open trace output: " + trace_out);
      obs::write_chrome_trace(out, ts, traces, sim_len);
      std::cout << "wrote Chrome trace (" << traces.size()
                << " governors) to " << trace_out
                << "  [chrome://tracing or ui.perfetto.dev]\n";
    }
  }

  if (want_gantt) {
    auto g = policy == sim::SchedulingPolicy::kEdf
                 ? core::make_governor(governors.back())
                 : sim::GovernorPtr(std::make_unique<core::LppsFpGovernor>());
    sim::VectorTrace trace;
    sim::SimOptions opts;
    opts.length = length;
    opts.policy = policy;
    if (want_degrade) opts.degradation = &dcfg;
    opts.trace = &trace;
    const auto r = sim::simulate(ts, *workload, processor, *g, opts);
    std::cout << "\nschedule of " << r.governor << ":\n";
    sim::render_gantt(trace, ts, gantt_t0, gantt_t1, std::cout, 110);
  }
  return misses == 0 ? 0 : 3;
}

/// `slackdvs admit` — the admission endpoint as a one-shot command: the
/// exact verdict (and rejection reason) the daemon would serve, exit 0
/// when admitted and 2 when rejected.
int cmd_admit(const std::vector<std::string>& args) {
  DVS_EXPECT(!args.empty(), "admit: missing <taskset>");
  const task::TaskSet ts = resolve_task_set(args[0]);
  std::size_t n_cores = 0;
  mp::PartitionHeuristic partitioner = mp::PartitionHeuristic::kFirstFit;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> std::string {
      DVS_EXPECT(i + 1 < args.size(), a + " needs a value");
      return args[++i];
    };
    if (a == "--cores") {
      n_cores = static_cast<std::size_t>(parse_int("--cores", value(), 1,
                                                   4096));
    } else if (a == "--partition") {
      partitioner = mp::heuristic_by_name(value());
    } else {
      DVS_EXPECT(false, "unknown option: " + a);
    }
  }
  svc::Session session;
  svc::PlacementReport placement;
  const svc::AdmissionVerdict v =
      n_cores >= 1 ? session.admit(ts, n_cores, partitioner, &placement)
                   : session.admit(ts);
  std::cout << "task set '" << ts.name() << "': U = "
            << util::format_double(v.utilization, 4) << ", density = "
            << util::format_double(v.density, 4) << '\n';
  if (n_cores >= 1) {
    std::cout << "partitioned admission (" << mp::heuristic_name(partitioner)
              << " on " << n_cores << " cores): ";
  } else {
    std::cout << "EDF admission (processor demand): ";
  }
  if (v.admitted) {
    std::cout << "ADMITTED (static speed "
              << util::format_double(v.static_speed, 4) << ")\n";
    if (n_cores >= 1) {
      for (std::size_t c = 0; c < placement.core_utilization.size(); ++c) {
        std::cout << "  core" << c << ": U = "
                  << util::format_double(placement.core_utilization[c], 4)
                  << '\n';
      }
    }
    return 0;
  }
  std::cout << "REJECTED: " << v.reason << '\n';
  return 2;
}

/// `slackdvs serve` — the planning daemon, foreground, until a client
/// sends {"op":"shutdown"}.
int cmd_serve(const std::vector<std::string>& args) {
  svc::DaemonOptions opts;
  opts.log = &std::cout;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> std::string {
      DVS_EXPECT(i + 1 < args.size(), a + " needs a value");
      return args[++i];
    };
    if (a == "--port") {
      opts.port = static_cast<std::uint16_t>(
          parse_int("--port", value(), 0, 65535));
    } else if (a == "--jobs") {
      opts.batch_threads =
          static_cast<std::size_t>(parse_int("--jobs", value(), 0, 4096));
    } else if (a == "--max-request-bytes") {
      opts.max_request_bytes = static_cast<std::size_t>(
          parse_int("--max-request-bytes", value(), 1024, 1 << 30));
    } else {
      DVS_EXPECT(false, "unknown option: " + a);
    }
  }
  svc::Daemon daemon(opts);
  daemon.start();
  daemon.wait();
  std::cout << "planner daemon stopped\n";
  return 0;
}

int cmd_gen(const std::vector<std::string>& args) {
  DVS_EXPECT(args.size() >= 3, "gen: need <utilization> <n_tasks> <seed>");
  task::GeneratorConfig cfg;
  cfg.total_utilization = parse_double("gen <utilization>", args[0],
                                       1e-6, 1.0);
  cfg.n_tasks = static_cast<std::size_t>(
      parse_int("gen <n_tasks>", args[1], 1, 100000));
  util::Rng rng(static_cast<std::uint64_t>(
      parse_int("gen <seed>", args[2], 0,
                std::numeric_limits<long long>::max())));
  const task::TaskSet ts = task::generate_task_set(cfg, rng, "generated");
  if (args.size() >= 4) {
    std::ofstream out(args[3]);
    DVS_EXPECT(out.is_open(), "cannot open output file: " + args[3]);
    task::save_task_set_csv(ts, out);
    std::cout << "wrote " << ts.size() << " tasks (U = "
              << util::format_double(ts.utilization(), 4) << ") to "
              << args[3] << '\n';
  } else {
    task::save_task_set_csv(ts, std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    usage();
    return args.empty() ? 1 : 0;
  }
  try {
    const std::string cmd = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (cmd == "analyze") {
      DVS_EXPECT(rest.size() == 1, "analyze: exactly one <taskset>");
      return cmd_analyze(rest[0]);
    }
    if (cmd == "run") return cmd_run(rest);
    if (cmd == "admit") return cmd_admit(rest);
    if (cmd == "serve") return cmd_serve(rest);
    if (cmd == "gen") return cmd_gen(rest);
    usage();
    std::cerr << "unknown command: " << cmd << '\n';
    return 1;
  } catch (const UsageError& e) {
    std::cerr << "usage error: " << e.what()
              << "\n(run `slackdvs --help` for the full synopsis)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
