// Avionics mission profile: 17-task Generic Avionics Platform workload on
// an XScale-class processor across three mission phases with different
// execution-time behaviour (cruise = light, engagement = heavy bursts,
// degraded = near-worst-case).
//
// Demonstrates per-task energy attribution and how the benefit of
// slack-time analysis shrinks as real execution times approach the WCET.
#include <iostream>

#include "core/registry.hpp"
#include "cpu/processors.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "task/benchmarks.hpp"
#include "task/workload.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace dvs;

  const task::TaskSet ts = task::avionics_task_set(/*bcet_ratio=*/0.1);
  const cpu::Processor proc = cpu::xscale_processor();
  std::cout << "Avionics task set: " << ts.size() << " tasks, U = "
            << util::format_double(ts.utilization(), 3) << ", processor "
            << proc.name << "\n\n";

  struct Phase {
    const char* name;
    task::ExecutionTimeModelPtr workload;
  };
  const Phase phases[] = {
      {"cruise (light, ~35% of WCET)",
       task::normal_model(3, /*mean_ratio=*/0.35, /*cv=*/0.08)},
      {"engagement (bursty bimodal)",
       task::bimodal_model(4, /*p_heavy=*/0.3, /*light=*/0.3, /*heavy=*/0.95)},
      {"degraded sensors (near worst case)",
       task::normal_model(5, /*mean_ratio=*/0.9, /*cv=*/0.05)},
  };

  exp::ExperimentConfig cfg = exp::default_config();
  cfg.processor = proc;
  cfg.sim_length = 10.0;

  for (const auto& phase : phases) {
    const exp::CaseOutcome outcome =
        exp::run_case({ts, phase.workload}, cfg);
    exp::print_case(std::cout, outcome, std::string("phase: ") + phase.name);
  }

  // Per-task energy breakdown for the paper's governor during cruise.
  const exp::CaseOutcome cruise = exp::run_case({ts, phases[0].workload}, cfg);
  const auto& lpseh = cruise.by_name("lpSEH").result;
  util::TextTable breakdown;
  breakdown.header({"task", "energy", "share"});
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const double e = lpseh.per_task_energy[i];
    breakdown.row({ts[i].name, util::format_double(e, 5),
                   util::format_double(100.0 * e / lpseh.busy_energy, 1) + "%"});
  }
  std::cout << "lpSEH per-task busy energy (cruise phase):\n";
  breakdown.render(std::cout);
  return lpseh.deadline_misses == 0 ? 0 : 1;
}
