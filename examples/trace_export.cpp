// Trace export: record three governors' schedules of one task set, export
// them as a single Chrome trace-event JSON file, and self-validate it.
//
//   $ ./trace_export [out.json]     (default: trace_export.json)
//
// Open the file in chrome://tracing or https://ui.perfetto.dev — each
// governor appears as its own process with one row per task, a shared
// idle/transition row, and a "speed" counter track showing the DVS
// staircase.  The example also demonstrates the metrics registry and the
// governor decision audit (DESIGN.md §8).
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/registry.hpp"
#include "cpu/processors.hpp"
#include "obs/audit.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_check.hpp"
#include "sim/simulator.hpp"
#include "task/benchmarks.hpp"
#include "task/workload.hpp"

int main(int argc, char** argv) {
  using namespace dvs;
  const std::string out_path = argc > 1 ? argv[1] : "trace_export.json";

  const task::TaskSet ts = task::cnc_task_set();
  const auto workload = task::uniform_model(/*seed=*/2002);
  const cpu::Processor processor = cpu::ideal_processor();

  // Record each governor with full observability attached: a trace for
  // the exporter, a metrics registry and a decision audit for the report.
  const std::vector<std::string> names{"noDVS", "DRA", "lpSEH"};
  std::vector<sim::VectorTrace> traces(names.size());
  Time sim_length = 0.0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    auto governor = core::make_governor(names[i]);
    obs::MetricsRegistry metrics;
    obs::DecisionAudit audit;
    sim::SimOptions opts;
    opts.length = 0.1;  // 100 ms is plenty to see the schedule shape
    opts.trace = &traces[i];
    opts.metrics = &metrics;
    opts.audit = &audit;
    const sim::SimResult r =
        sim::simulate(ts, *workload, processor, *governor, opts);
    sim_length = r.sim_length;
    std::cout << r.summary() << "\n";
    metrics.print(std::cout);
    const obs::SlackAccuracy acc = audit.accuracy();
    if (acc.audited > 0) {
      std::cout << "  slack estimate bias " << acc.bias() << " s, mae "
                << acc.mae() << " s over " << acc.audited << " decisions\n";
    }
    std::cout << "\n";
  }

  // One JSON document, one pid per governor.
  std::vector<obs::GovernorTrace> recorded;
  for (std::size_t i = 0; i < names.size(); ++i) {
    recorded.push_back({names[i], &traces[i]});
  }
  std::ofstream out(out_path);
  if (!out.is_open()) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  obs::write_chrome_trace(out, ts, recorded, sim_length);
  out.close();

  // Round-trip: re-read and validate what was just written.
  std::ifstream in(out_path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const obs::TraceCheckReport report = obs::check_chrome_trace(buffer.str());
  if (!report.ok()) {
    std::cerr << "exported trace failed validation:\n";
    for (const auto& e : report.errors) std::cerr << "  " << e << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << " (" << report.events << " events, "
            << report.pids << " governors) — open it in chrome://tracing "
            << "or ui.perfetto.dev\n";
  return 0;
}
