// CNC machine controller on a StrongARM-class processor.
//
// Scenario from the DVS literature: the 8-task computerized numerical
// control workload, running on discrete voltage levels with real (140 us)
// transition stalls.  Shows how to combine a benchmark task set, a table
// power model, the overhead-aware wrapper, and job-level statistics.
#include <iostream>

#include "core/overhead_aware.hpp"
#include "core/registry.hpp"
#include "core/slack_time.hpp"
#include "cpu/processors.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "sim/simulator.hpp"
#include "task/benchmarks.hpp"
#include "task/workload.hpp"
#include "util/strings.hpp"

int main() {
  using namespace dvs;

  const task::TaskSet ts = task::cnc_task_set(/*bcet_ratio=*/0.2);
  std::cout << "CNC task set (U = " << util::format_double(ts.utilization(), 3)
            << ", " << ts.size() << " tasks)\n";
  for (const auto& t : ts) {
    std::cout << "  " << t.name << ": T=" << util::format_si_time(t.period)
              << " C=" << util::format_si_time(t.wcet) << '\n';
  }
  std::cout << '\n';

  const cpu::Processor arm = cpu::strongarm_processor();
  std::cout << "Processor: " << arm.name << ", levels "
            << arm.scale.describe() << ", transitions "
            << arm.transition.describe() << "\n\n";

  // Machining workload: alternating rough/finish passes -> phased RET.
  const auto workload =
      task::phased_model(/*seed=*/11, /*block_len=*/40, /*p_heavy=*/0.35,
                         /*light_ratio=*/0.3, /*heavy_ratio=*/0.95);

  // Standard comparison under the usual free-transition assumption.
  cpu::Processor arm_free = arm;
  arm_free.transition = cpu::TransitionModel::none();
  exp::ExperimentConfig cfg = exp::default_config();
  cfg.processor = arm_free;
  cfg.sim_length = 4.0;
  const exp::CaseOutcome plain = exp::run_case({ts, workload}, cfg);
  exp::print_case(std::cout, plain,
                  "CNC on StrongARM levels (transitions assumed free)");

  // Now charge the real 140 us stalls.  Overhead-oblivious governors are
  // not safe here; the paper's governor absorbs the stalls inside its
  // slack analysis (switch_overhead) and the wrapper vetoes switches that
  // would cost more energy than they save.
  core::SlackTimeConfig st;
  st.switch_overhead = arm.transition.switch_time(0.5, 1.0);
  auto wrapped = core::overhead_aware(
      std::make_unique<core::SlackTimeGovernor>(st), arm);
  sim::SimOptions opts;
  opts.length = cfg.sim_length;
  const sim::SimResult oh = sim::simulate(ts, *workload, arm, *wrapped, opts);

  auto no_dvs = core::make_governor("noDVS");
  const sim::SimResult base_oh =
      sim::simulate(ts, *workload, arm, *no_dvs, opts);

  std::cout << "with 140 us transition stalls charged:\n";
  std::cout << "  " << base_oh.summary() << '\n';
  std::cout << "  " << oh.summary() << '\n';
  std::cout << "  normalized vs noDVS: "
            << util::format_double(oh.total_energy() / base_oh.total_energy(),
                                   4)
            << "\n";
  return oh.deadline_misses == 0 ? 0 : 1;
}
