// Governor explorer: a small command-line tool over the library.
//
//   governor_explorer [governor] [utilization] [bcet_ratio] [processor]
//
// Generates a random task set at the requested utilization, runs the
// chosen governor (default: all), and prints the comparison plus an ASCII
// Gantt chart of the chosen governor's schedule.  Handy for eyeballing how
// each policy shapes the schedule.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/registry.hpp"
#include "cpu/processors.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "sim/simulator.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace dvs;

  const std::string governor = argc > 1 ? argv[1] : "all";
  const double utilization = argc > 2 ? std::atof(argv[2]) : 0.7;
  const double bcet_ratio = argc > 3 ? std::atof(argv[3]) : 0.2;
  const std::string proc_name = argc > 4 ? argv[4] : "ideal";

  task::GeneratorConfig gen;
  gen.n_tasks = 5;
  gen.total_utilization = utilization;
  gen.period_min = 0.02;
  gen.period_max = 0.2;
  gen.bcet_ratio = bcet_ratio;
  util::Rng rng(2026);
  const task::TaskSet ts = task::generate_task_set(gen, rng, "explorer");
  const auto workload = task::uniform_model(99);
  const cpu::Processor proc = cpu::processor_by_name(proc_name);

  std::cout << "Random task set (U = "
            << util::format_double(ts.utilization(), 3) << "):\n";
  for (const auto& t : ts) {
    std::cout << "  " << t.name << ": T=" << util::format_si_time(t.period)
              << " C=" << util::format_si_time(t.wcet)
              << " (u=" << util::format_double(t.utilization(), 3) << ")\n";
  }
  std::cout << '\n';

  exp::ExperimentConfig cfg = exp::default_config();
  cfg.processor = proc;
  cfg.sim_length = 2.0;
  const exp::CaseOutcome outcome = exp::run_case({ts, workload}, cfg);
  exp::print_case(std::cout, outcome, "governor comparison on " + proc.name);

  const std::string shown = governor == "all" ? "lpSEH" : governor;
  auto g = core::make_governor(shown);
  sim::VectorTrace trace;
  sim::SimOptions opts;
  opts.length = 2.0;
  opts.trace = &trace;
  const sim::SimResult r = sim::simulate(ts, *workload, proc, *g, opts);
  std::cout << "schedule of " << r.governor << " (first 0.4 s):\n";
  sim::render_gantt(trace, ts, 0.0, 0.4, std::cout, 110);
  return r.deadline_misses == 0 ? 0 : 1;
}
