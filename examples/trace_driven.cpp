// Trace-driven workload: replay measured execution times.
//
// Scenario: a set-top-box decoder task set whose video task has
// MPEG-like frame decode times (I-frames heavy, B/P-frames light, scene
// cuts bursty).  Instead of a synthetic distribution, the actual
// execution times come from a measured trace — here embedded as the CSV
// text a profiler would have produced (task/trace_workload.hpp parses
// the same format from a file).
#include <iostream>
#include <sstream>

#include "core/registry.hpp"
#include "cpu/processors.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "task/io.hpp"
#include "task/trace_workload.hpp"
#include "util/strings.hpp"

namespace {

// What a profiler dump looks like: task id, ratio of WCET actually used.
// Task 0 (video): 12-frame GOP pattern, I-frames ~0.95, P ~0.55, B ~0.3.
// Task 1 (audio): nearly constant.  Task 2 (osd): bursty.
constexpr const char* kProfilerDump = R"(# task_id,ratio_of_wcet
0,0.95
0,0.30
0,0.32
0,0.55
0,0.29
0,0.31
0,0.58
0,0.30
0,0.33
0,0.54
0,0.28
0,0.35
1,0.62
1,0.60
1,0.61
1,0.63
2,0.15
2,0.12
2,0.90
2,0.14
)";

}  // namespace

int main() {
  using namespace dvs;

  // The task set, loaded through the same CSV interchange the CLI uses.
  std::istringstream taskset_csv(
      "name,period,deadline,wcet,bcet,phase\n"
      "video_decode,0.040,0.040,0.024,0.004,0\n"
      "audio_decode,0.010,0.010,0.0015,0.0008,0\n"
      "osd_render,0.100,0.100,0.015,0.002,0\n");
  const task::TaskSet ts = task::load_task_set_csv(taskset_csv, "settop");
  std::cout << "Set-top decoder task set: U = "
            << util::format_double(ts.utilization(), 3) << "\n\n";

  // The measured trace, parsed from the profiler dump.
  std::istringstream profiler(kProfilerDump);
  const auto samples = task::load_trace_csv(profiler, ts.size());
  const auto workload = task::trace_ratio_model(samples);

  exp::ExperimentConfig cfg = exp::default_config();
  cfg.processor = cpu::crusoe_processor();  // a set-top-class CPU
  cfg.sim_length = 4.0;
  const exp::CaseOutcome outcome = exp::run_case({ts, workload}, cfg);
  exp::print_case(std::cout, outcome,
                  "measured MPEG-like trace on " + cfg.processor.name);

  const auto& best = outcome.by_name("lpSEH");
  std::cout << "lpSEH saves "
            << util::format_double(100.0 * (1.0 - best.normalized_energy), 1)
            << "% vs running unscaled, with "
            << best.result.deadline_misses << " missed deadlines.\n";
  return best.result.deadline_misses == 0 ? 0 : 1;
}
