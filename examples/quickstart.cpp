// Quickstart: define a task set, run the slack-time DVS governor, and
// compare its energy against running at full speed.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~60 lines: tasks,
// workloads, processors, governors, the simulator, and the trace renderer.
#include <iostream>

#include "core/registry.hpp"
#include "cpu/processors.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "sim/simulator.hpp"
#include "task/task_set.hpp"
#include "task/workload.hpp"

int main() {
  using namespace dvs;

  // 1. A periodic task set (implicit deadlines, WCET utilization 0.76).
  task::TaskSet ts("quickstart");
  ts.add(task::make_task(0, "control", /*period=*/0.005, /*wcet=*/0.002,
                         /*bcet=*/0.0005));
  ts.add(task::make_task(1, "telemetry", 0.020, 0.004, 0.001));
  ts.add(task::make_task(2, "logging", 0.050, 0.008, 0.002));

  // 2. A workload: jobs consume a uniformly random fraction of their WCET.
  const auto workload = task::uniform_model(/*seed=*/7);

  // 3. A processor: ideal continuous DVS with cubic power.
  const cpu::Processor processor = cpu::ideal_processor();

  // 4. Run the paper's governor and print what happened.
  auto governor = core::make_governor("lpSEH");
  sim::VectorTrace trace;
  sim::SimOptions opts;
  opts.length = 0.2;  // 200 ms
  opts.trace = &trace;
  const sim::SimResult result =
      sim::simulate(ts, *workload, processor, *governor, opts);
  std::cout << result.summary() << "\n\n";

  std::cout << "First 50 ms of the schedule:\n";
  sim::render_gantt(trace, ts, 0.0, 0.05, std::cout, 100);
  std::cout << '\n';

  // 5. Compare all built-in governors on the same workload.
  exp::ExperimentConfig cfg = exp::default_config();
  cfg.processor = processor;
  cfg.sim_length = 0.5;
  const exp::CaseOutcome comparison = exp::run_case({ts, workload}, cfg);
  exp::print_case(std::cout, comparison, "quickstart: all governors, 0.5 s");

  return comparison.by_name("lpSEH").result.deadline_misses == 0 ? 0 : 1;
}
