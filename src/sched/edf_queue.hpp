// Earliest-Deadline-First ready queue.
//
// A binary min-heap keyed by (absolute deadline, task id, job sequence);
// the full key makes pop order fully deterministic even with equal
// deadlines, which keeps simulations reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace dvs::sched {

/// Handle stored in the queue; `slot` is an opaque owner-side index
/// (e.g. into the simulator's job array).
struct EdfEntry {
  Time deadline = 0.0;
  std::int32_t task_id = 0;
  std::int64_t seq = 0;
  std::size_t slot = 0;
};

/// Strict-weak ordering: earlier deadline first, ties by task id then seq.
[[nodiscard]] bool edf_before(const EdfEntry& a, const EdfEntry& b) noexcept;

class EdfReadyQueue {
 public:
  void push(EdfEntry e);
  /// Entry with the earliest deadline. Requires !empty().
  [[nodiscard]] const EdfEntry& top() const;
  /// Remove the top entry. Requires !empty().
  void pop();
  /// Remove the entry whose `slot` matches (O(n) scan + O(log n) repair).
  /// Removing the head performs exactly the same heap operations as pop(),
  /// so an engine that only ever removes the head stays bit-identical to
  /// one calling pop() — the global backend's M = 1 equivalence relies on
  /// this.  Returns false when no entry carries `slot`.
  bool remove_slot(std::size_t slot);
  void clear() noexcept { heap_.clear(); }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// All entries in EDF order (copies and sorts; O(n log n)).
  [[nodiscard]] std::vector<EdfEntry> sorted() const;

  /// Same EDF order, written into `out` (capacity reused across calls —
  /// the engine's allocation-free hot path; see docs/PERFORMANCE.md).
  void sorted_into(std::vector<EdfEntry>& out) const;

  /// Pre-allocate heap storage for `n` entries.
  void reserve(std::size_t n) { heap_.reserve(n); }

  /// Unordered view of the live entries (heap order).
  [[nodiscard]] const std::vector<EdfEntry>& raw() const noexcept {
    return heap_;
  }

 private:
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  std::vector<EdfEntry> heap_;
};

}  // namespace dvs::sched
