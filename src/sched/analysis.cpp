#include "sched/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dvs::sched {

namespace {

/// True when every task has an implicit deadline (D == T).
bool implicit_deadlines(const task::TaskSet& ts) {
  for (const auto& t : ts) {
    if (!time_eq(t.deadline, t.period)) return false;
  }
  return true;
}

}  // namespace

Work demand_bound(const task::TaskSet& ts, Time t) {
  DVS_EXPECT(t >= 0.0, "demand bound needs t >= 0");
  Work h = 0.0;
  for (const auto& task : ts) {
    if (t + kTimeEps < task.deadline) continue;
    const double k = std::floor((t - task.deadline) / task.period + kTimeEps);
    h += (k + 1.0) * task.wcet;
  }
  return h;
}

std::optional<Time> busy_period_bound(const task::TaskSet& ts) {
  const double u = ts.utilization();
  if (u >= 1.0 - 1e-12) return std::nullopt;
  Work c_sum = 0.0;
  for (const auto& t : ts) c_sum += t.wcet;
  return c_sum / (1.0 - u);
}

std::optional<Time> analysis_horizon(const task::TaskSet& ts) {
  const auto hyper = ts.hyperperiod();
  const auto busy = busy_period_bound(ts);

  // Baruah's L_a bound: max over the first deadline of each task and
  // sum((T_i - D_i) * U_i) / (1 - U).
  std::optional<Time> la;
  const double u = ts.utilization();
  if (u < 1.0 - 1e-12) {
    double acc = 0.0;
    Time max_first_deadline = 0.0;
    for (const auto& t : ts) {
      acc += (t.period - t.deadline) * t.utilization();
      max_first_deadline = std::max(max_first_deadline, t.deadline);
    }
    la = std::max(max_first_deadline, acc / (1.0 - u));
  }

  std::optional<Time> horizon;
  auto consider = [&horizon](const std::optional<Time>& h) {
    if (!h) return;
    if (!horizon || *h < *horizon) horizon = h;
  };
  consider(hyper);
  consider(busy);
  consider(la);
  return horizon;
}

std::vector<Time> deadline_checkpoints(const task::TaskSet& ts, Time horizon) {
  std::vector<Time> points;
  deadline_checkpoints_into(ts, horizon, points);
  return points;
}

void deadline_checkpoints_into(const task::TaskSet& ts, Time horizon,
                               std::vector<Time>& points) {
  DVS_EXPECT(horizon >= 0.0, "horizon must be non-negative");
  points.clear();
  for (const auto& t : ts) {
    for (Time d = t.deadline; time_leq(d, horizon); d += t.period) {
      points.push_back(d);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end(),
                           [](Time a, Time b) { return time_eq(a, b); }),
               points.end());
}

bool edf_schedulable(const task::TaskSet& ts) {
  if (ts.empty()) return true;
  const double u = ts.utilization();
  if (u > 1.0 + 1e-9) return false;
  if (implicit_deadlines(ts)) return true;  // U <= 1 is exact for EDF

  const auto horizon = analysis_horizon(ts);
  if (!horizon) {
    // U <= 1 with constrained deadlines but no finite horizon: fall back to
    // the (sufficient) density test.
    return ts.density() <= 1.0 + 1e-9;
  }
  for (Time d : deadline_checkpoints(ts, *horizon)) {
    if (demand_bound(ts, d) > d + kTimeEps) return false;
  }
  return true;
}

double minimum_constant_speed(const task::TaskSet& ts) {
  DVS_EXPECT(edf_schedulable(ts), "task set is not EDF-schedulable");
  if (ts.empty()) return 1e-9;
  if (implicit_deadlines(ts)) {
    return std::min(1.0, ts.utilization());
  }
  const auto horizon = analysis_horizon(ts);
  if (!horizon) return std::min(1.0, ts.density());
  double speed = ts.utilization();  // demand/t converges to U for large t
  for (Time d : deadline_checkpoints(ts, *horizon)) {
    if (d <= 0.0) continue;
    speed = std::max(speed, demand_bound(ts, d) / d);
  }
  return std::min(1.0, speed);
}

}  // namespace dvs::sched
