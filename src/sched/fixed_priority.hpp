// Fixed-priority (rate-/deadline-monotonic) scheduling analysis.
//
// The reproduced paper targets dynamic priorities (EDF); its companion
// work and half the DVS-comparison literature target fixed priorities.
// This module provides the analysis side of the repo's fixed-priority
// extension: deadline-monotonic priority assignment (optimal for
// constrained deadlines) and exact response-time analysis (Joseph &
// Pandya / Audsley), including the scaled-WCET variant used to derive the
// optimal static DVS speed under fixed priorities.
#pragma once

#include <optional>
#include <vector>

#include "task/task_set.hpp"

namespace dvs::sched {

/// Priority rank per task (index == task id): 0 is the highest priority.
/// Deadline-monotonic (== rate-monotonic for implicit deadlines); ties
/// break by period, then id, making the assignment total and deterministic.
[[nodiscard]] std::vector<int> deadline_monotonic_priorities(
    const task::TaskSet& ts);

/// Worst-case response times under the given priorities at constant
/// processor speed `speed` (WCETs are divided by it).  nullopt when any
/// response time exceeds its deadline (unschedulable) or the fixed-point
/// iteration diverges past the deadline.
[[nodiscard]] std::optional<std::vector<Time>> response_times(
    const task::TaskSet& ts, const std::vector<int>& priorities,
    double speed = 1.0);

/// True when the set is schedulable under deadline-monotonic fixed
/// priorities at full speed.
[[nodiscard]] bool fp_schedulable(const task::TaskSet& ts);

/// Minimum constant speed keeping the set fixed-priority schedulable
/// (binary search over response-time analysis).  Requires a set that is
/// schedulable at speed 1; the result is in (0, 1].
[[nodiscard]] double minimum_constant_speed_fp(const task::TaskSet& ts);

}  // namespace dvs::sched
