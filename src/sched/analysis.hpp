// Offline EDF schedulability analysis.
//
// Hard real-time DVS only makes sense for task sets that are schedulable at
// maximum speed; these tests gate every experiment.  Implicit-deadline sets
// use the Liu & Layland utilization bound (U <= 1 is exact for EDF);
// constrained-deadline sets use the processor-demand criterion with
// checkpoints up to the standard bound min(hyperperiod, busy period,
// Baruah's L_a).
#pragma once

#include <optional>
#include <vector>

#include "task/task_set.hpp"

namespace dvs::sched {

/// Processor demand h(t) of synchronous periodic tasks in [0, t]:
/// sum over tasks of max(0, floor((t - D_i) / T_i) + 1) * C_i.
[[nodiscard]] Work demand_bound(const task::TaskSet& ts, Time t);

/// Upper bound on the length of the longest busy period (synchronous
/// arrival), nullopt when U >= 1 (the classic bound diverges).
[[nodiscard]] std::optional<Time> busy_period_bound(const task::TaskSet& ts);

/// Absolute-deadline checkpoints in (0, horizon] for the demand test,
/// ascending and deduplicated.
[[nodiscard]] std::vector<Time> deadline_checkpoints(const task::TaskSet& ts,
                                                     Time horizon);

/// Scratch-buffer variant: fills `out` (cleared first, capacity kept) so a
/// long-lived caller — the svc Planner Session answering admission queries
/// at service rates — reuses one allocation across requests instead of
/// building a fresh vector per query.
void deadline_checkpoints_into(const task::TaskSet& ts, Time horizon,
                               std::vector<Time>& out);

/// The horizon the demand test must examine; nullopt when no finite bound
/// exists (U > 1 with unbounded hyperperiod).
[[nodiscard]] std::optional<Time> analysis_horizon(const task::TaskSet& ts);

/// Exact EDF schedulability on a unit-speed processor.
[[nodiscard]] bool edf_schedulable(const task::TaskSet& ts);

/// The minimum constant speed at which the set remains EDF-schedulable
/// (the optimal static DVS speed).  For implicit deadlines this equals the
/// utilization; for constrained deadlines it is max_t h(t)/t over the
/// checkpoints.  Requires a schedulable set; the result is in (0, 1].
[[nodiscard]] double minimum_constant_speed(const task::TaskSet& ts);

}  // namespace dvs::sched
