#include "sched/fixed_priority.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dvs::sched {

std::vector<int> deadline_monotonic_priorities(const task::TaskSet& ts) {
  std::vector<std::size_t> order(ts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&ts](std::size_t a, std::size_t b) {
    if (!time_eq(ts[a].deadline, ts[b].deadline)) {
      return ts[a].deadline < ts[b].deadline;
    }
    if (!time_eq(ts[a].period, ts[b].period)) {
      return ts[a].period < ts[b].period;
    }
    return a < b;
  });
  std::vector<int> rank(ts.size(), 0);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    rank[order[pos]] = static_cast<int>(pos);
  }
  return rank;
}

std::optional<std::vector<Time>> response_times(
    const task::TaskSet& ts, const std::vector<int>& priorities,
    double speed) {
  DVS_EXPECT(priorities.size() == ts.size(),
             "one priority per task required");
  DVS_EXPECT(speed > 0.0 && speed <= 1.0, "speed must be in (0, 1]");

  std::vector<Time> response(ts.size(), 0.0);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Work ci = ts[i].wcet / speed;
    // Fixed-point iteration R = C_i + sum_{j higher} ceil(R / T_j) C_j.
    Time r = ci;
    for (int iter = 0; iter < 10000; ++iter) {
      Time next = ci;
      for (std::size_t j = 0; j < ts.size(); ++j) {
        if (priorities[j] >= priorities[i]) continue;  // lower or self
        next += std::ceil(r / ts[j].period - kTimeEps) *
                (ts[j].wcet / speed);
      }
      if (time_eq(next, r)) break;
      r = next;
      if (time_less(ts[i].deadline, r)) return std::nullopt;
    }
    if (time_less(ts[i].deadline, r)) return std::nullopt;
    response[i] = r;
  }
  return response;
}

bool fp_schedulable(const task::TaskSet& ts) {
  if (ts.empty()) return true;
  return response_times(ts, deadline_monotonic_priorities(ts)).has_value();
}

double minimum_constant_speed_fp(const task::TaskSet& ts) {
  DVS_EXPECT(fp_schedulable(ts),
             "task set is not fixed-priority schedulable at full speed");
  if (ts.empty()) return 1e-9;
  const auto priorities = deadline_monotonic_priorities(ts);
  double lo = std::min(1.0, ts.utilization());  // never feasible below U
  double hi = 1.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (response_times(ts, priorities, mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace dvs::sched
