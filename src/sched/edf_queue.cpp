#include "sched/edf_queue.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dvs::sched {

bool edf_before(const EdfEntry& a, const EdfEntry& b) noexcept {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.task_id != b.task_id) return a.task_id < b.task_id;
  return a.seq < b.seq;
}

void EdfReadyQueue::push(EdfEntry e) {
  heap_.push_back(e);
  sift_up(heap_.size() - 1);
}

const EdfEntry& EdfReadyQueue::top() const {
  DVS_EXPECT(!heap_.empty(), "top() on empty EDF queue");
  return heap_.front();
}

void EdfReadyQueue::pop() {
  DVS_EXPECT(!heap_.empty(), "pop() on empty EDF queue");
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

bool EdfReadyQueue::remove_slot(std::size_t slot) {
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (heap_[i].slot != slot) continue;
    // Same move-the-tail-in repair as pop(); at i == 0 the sift_up is a
    // no-op and the operation sequence is exactly pop()'s.
    heap_[i] = heap_.back();
    heap_.pop_back();
    if (i < heap_.size()) {
      sift_down(i);
      sift_up(i);
    }
    return true;
  }
  return false;
}

std::vector<EdfEntry> EdfReadyQueue::sorted() const {
  std::vector<EdfEntry> out = heap_;
  std::sort(out.begin(), out.end(), edf_before);
  return out;
}

void EdfReadyQueue::sorted_into(std::vector<EdfEntry>& out) const {
  out.assign(heap_.begin(), heap_.end());
  std::sort(out.begin(), out.end(), edf_before);
}

void EdfReadyQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!edf_before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EdfReadyQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && edf_before(heap_[l], heap_[smallest])) smallest = l;
    if (r < n && edf_before(heap_[r], heap_[smallest])) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace dvs::sched
