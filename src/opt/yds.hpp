// The optimal continuous voltage schedule (YDS) and its discrete rounding
// — the absolute energy lower bound every governor is measured against.
//
// Yao, Demers & Shenker's critical-interval algorithm computes, for a
// concrete job set {(release, deadline, work)}, the minimum-energy
// feasible speed schedule under a convex power function: repeatedly find
// the interval [t1, t2] of maximum intensity
//
//   g(t1, t2) = sum{ work_i : t1 <= r_i, d_i <= t2 } / (t2 - t1),
//
// run every job contained in it at speed g (EDF-ordered inside), remove
// the interval from the timeline (collapsing later releases/deadlines),
// and recur on the rest.  Each job therefore receives ONE constant speed
// — the intensity of the critical interval that captured it — and
// preemptive EDF dispatch with these per-job speeds meets every deadline.
// We follow the O(n^2)-style event-grid formulation of Li, Yao & Yuan
// (PAPERS.md): per peel, intensities are maximized by one cumulative scan
// over deadline-sorted jobs for each candidate start, and the peeled
// interval is collapsed out of the remaining instance.
//
// Two energies are derived from the schedule (both *busy-only*: idle and
// transition draw are deliberately excluded so the figures stay lower
// bounds on ANY simulated schedule's total energy):
//  * continuous_energy — sum of work_i * P(s_i) / s_i over the real
//    speeds, the unconstrained optimum;
//  * discrete_energy — the Ishihara/Yasuura-Kwon/Kim rounding: each
//    continuous speed is realized by splitting the job's time budget
//    between the two adjacent hardware levels (one level below the
//    lowest level, the lowest level alone), which preserves the YDS
//    timing exactly and is the optimum over level-restricted schedules
//    for convex power curves.
//
// Feasibility: the peak intensity is the minimum maximum speed any
// feasible schedule needs; max_speed <= 1 means the instance fits the
// (normalized) processor.  All shipped power models are convex on the
// ranges the schedule evaluates; the bound is documented as assuming
// convexity (docs/ALGORITHMS.md).
#pragma once

#include <cstdint>
#include <vector>

#include "cpu/frequency.hpp"
#include "cpu/power_model.hpp"
#include "cpu/processors.hpp"
#include "task/task_set.hpp"
#include "task/workload.hpp"
#include "util/time.hpp"

namespace dvs::opt {

/// One concrete job of the oracle instance.  Unlike sim::Job, `work` is
/// the job's ACTUAL demand — the oracle is clairvoyant by design (the
/// whole point of a lower bound is to see what online governors cannot).
struct OracleJob {
  std::int32_t task_id = 0;
  std::int64_t index = 0;  ///< per-task activation number (0-based)
  Time release = 0.0;
  Time deadline = 0.0;  ///< absolute; > release
  Work work = 0.0;      ///< actual demand; > 0
};

/// One peeled critical interval, in peel order (speeds non-increasing).
/// start/end span the interval's original-time footprint; earlier
/// (faster) critical intervals collapsed out of a later one lie nested
/// inside that span and are excluded from it by construction.
struct YdsInterval {
  Time start = 0.0;
  Time end = 0.0;
  double speed = 0.0;     ///< intensity = contained work / length
  std::size_t n_jobs = 0; ///< jobs captured by this interval
};

/// The optimal continuous-speed schedule of a job set.
struct YdsSchedule {
  std::vector<OracleJob> jobs;   ///< the instance, input order preserved
  std::vector<double> speed;     ///< optimal per-job speed, parallel to jobs
  std::vector<YdsInterval> intervals;  ///< critical intervals, peel order
  double max_speed = 0.0;        ///< peak intensity over all intervals

  /// The instance fits a unit-speed processor (every deadline reachable).
  [[nodiscard]] bool feasible(double tol = 1e-9) const noexcept {
    return max_speed <= 1.0 + tol;
  }

  /// Busy-only energy of the continuous optimum: sum w_i * P(s_i) / s_i.
  /// Meaningful only when feasible() (speeds above 1 are evaluated at 1).
  [[nodiscard]] double continuous_energy(const cpu::PowerModel& power) const;

  /// Busy-only energy after rounding every per-job speed onto `scale`:
  /// two-level split for discrete scales (timing-preserving, optimal for
  /// convex power), clamp-to-alpha_min for continuous scales.  Always
  /// >= continuous_energy for convex power.
  [[nodiscard]] double discrete_energy(const cpu::FrequencyScale& scale,
                                       const cpu::PowerModel& power) const;
};

/// Compute the optimal continuous schedule by critical-interval peeling.
/// Throws ContractError on invalid jobs (non-positive work, deadline not
/// after release).  An empty input yields an empty schedule.
[[nodiscard]] YdsSchedule yds_schedule(std::vector<OracleJob> jobs);

/// Expand a periodic task set into the concrete jobs a simulation of
/// `horizon` seconds releases (release < horizon, mirroring the engine's
/// release loop), with each job's actual demand drawn from `workload` —
/// the common-random-numbers draw every governor replays.  `horizon` < 0
/// resolves to ts.default_sim_length().
[[nodiscard]] std::vector<OracleJob> expand_jobs(
    const task::TaskSet& ts, const task::ExecutionTimeModel& workload,
    Time horizon);

/// Analytic lower bounds for one (task set, workload, processor, horizon)
/// case.  Computed over the jobs whose deadlines lie within the horizon —
/// exactly the jobs EVERY zero-miss schedule must finish inside the
/// simulated window — so each bound is a true floor for any simulated
/// governor's total energy on the same case (jobs truncated at the
/// horizon only ever ADD governor energy).
struct OracleBounds {
  double continuous_energy = 0.0;  ///< unconstrained YDS optimum
  double discrete_energy = 0.0;    ///< optimum over the processor's levels
  double max_speed = 0.0;          ///< peak YDS intensity of the instance
  bool feasible = false;           ///< max_speed <= 1 (+tolerance)
  std::size_t n_jobs = 0;          ///< jobs in the bound instance

  /// Bounds usable as a gap denominator.
  [[nodiscard]] bool valid() const noexcept {
    return feasible && continuous_energy > 0.0;
  }
};

[[nodiscard]] OracleBounds oracle_bounds(const task::TaskSet& ts,
                                         const task::ExecutionTimeModel& workload,
                                         const cpu::Processor& processor,
                                         Time horizon);

}  // namespace dvs::opt
