#include "opt/oracle.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dvs::opt {

void OracleGovernor::prime(const task::TaskSet& ts,
                           const task::ExecutionTimeModel& workload,
                           const cpu::Processor& processor, Time horizon) {
  (void)processor;  // speeds depend only on the instance; energy does not
                    // feed back into the schedule.
  const Time length = horizon < 0.0 ? ts.default_sim_length() : horizon;
  schedule_ = yds_schedule(expand_jobs(ts, workload, length));

  speed_of_.assign(ts.size(), {});
  for (std::size_t i = 0; i < schedule_.jobs.size(); ++i) {
    const OracleJob& j = schedule_.jobs[i];
    auto& per_task = speed_of_[static_cast<std::size_t>(j.task_id)];
    if (per_task.size() <= static_cast<std::size_t>(j.index)) {
      per_task.resize(static_cast<std::size_t>(j.index) + 1, 1.0);
    }
    per_task[static_cast<std::size_t>(j.index)] = schedule_.speed[i];
  }
  primed_ = true;
}

void OracleGovernor::on_start(const sim::SimContext& ctx) {
  DVS_EXPECT(primed_,
             "OracleGovernor must be primed with the concrete case before "
             "simulation (use ExperimentConfig::oracle or prime())");
  // YDS optimality and feasibility are proven for EDF dispatch only.
  DVS_EXPECT(ctx.policy() == sim::SchedulingPolicy::kEdf,
             "the oracle governor requires EDF scheduling");
  DVS_EXPECT(speed_of_.size() == ctx.task_set().size(),
             "oracle was primed for a different task set");
}

double OracleGovernor::select_speed(const sim::Job& running,
                                    const sim::SimContext& /*ctx*/) {
  double s = 1.0;  // jobs beyond the primed window run at full speed
  const auto tid = static_cast<std::size_t>(running.task_id);
  if (tid < speed_of_.size()) {
    const auto& per_task = speed_of_[tid];
    const auto idx = static_cast<std::size_t>(running.index);
    if (idx < per_task.size()) s = per_task[idx];
  }
  s = std::clamp(s, 0.0, 1.0);
  if (s <= 0.0) s = 1.0;
  // Stretch this speed claims beyond the remaining WCET budget, for the
  // decision audit; clairvoyance routinely makes it exceed what online
  // slack analysis could prove.
  last_slack_ = running.remaining_wcet() * (1.0 / std::max(s, 1e-9) - 1.0);
  return s;
}

}  // namespace dvs::opt
