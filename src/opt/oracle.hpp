// The oracle governor: replays the YDS-optimal per-job speeds inside the
// ordinary simulator, so the optimal schedule flows through the exact same
// accounting (energy integration, audit, traces) as every online governor.
//
// Unlike every other governor, the oracle is CLAIRVOYANT: it must be
// primed with the concrete case — task set, execution-time model, and
// horizon — before the simulation starts, because the optimal schedule
// depends on actual demands no online policy may observe.  The exp layer
// primes it automatically (ExperimentConfig::oracle); using it through
// the plain registry factory without priming is a contract error at
// on_start().
#pragma once

#include <memory>
#include <vector>

#include "opt/yds.hpp"
#include "sim/governor.hpp"

namespace dvs::opt {

/// A governor that needs the concrete case revealed before simulation.
/// The exp layer detects this interface (dynamic_cast) and calls prime()
/// with the same (task set, workload, horizon) triple the simulator will
/// run, per case and per core.
class ClairvoyantGovernor : public sim::Governor {
 public:
  virtual void prime(const task::TaskSet& ts,
                     const task::ExecutionTimeModel& workload,
                     const cpu::Processor& processor, Time horizon) = 0;
  [[nodiscard]] virtual bool primed() const noexcept = 0;
};

/// Executes every job at its YDS-optimal constant speed under EDF.
/// With a zero-miss outcome its measured energy realizes the oracle lower
/// bound on the processor (up to quantization and idle/transition cost),
/// which the oracle-bound test tier asserts no governor can beat.
class OracleGovernor final : public ClairvoyantGovernor {
 public:
  void prime(const task::TaskSet& ts,
             const task::ExecutionTimeModel& workload,
             const cpu::Processor& processor, Time horizon) override;
  [[nodiscard]] bool primed() const noexcept override { return primed_; }

  /// The schedule computed by the last prime() (empty before priming).
  [[nodiscard]] const YdsSchedule& schedule() const noexcept {
    return schedule_;
  }

  void on_start(const sim::SimContext& ctx) override;
  [[nodiscard]] double select_speed(const sim::Job& running,
                                    const sim::SimContext& ctx) override;
  [[nodiscard]] Time last_slack_estimate() const override {
    return last_slack_;
  }
  [[nodiscard]] std::string name() const override { return "oracle"; }

 private:
  bool primed_ = false;
  YdsSchedule schedule_;
  /// speed_of_[task_id][job_index] — dense per-task lookup.
  std::vector<std::vector<double>> speed_of_;
  Time last_slack_ = 0.0;
};

[[nodiscard]] inline std::unique_ptr<OracleGovernor> make_oracle() {
  return std::make_unique<OracleGovernor>();
}

}  // namespace dvs::opt
