#include "opt/yds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace dvs::opt {
namespace {

// Relative tolerance for intensity comparisons during peeling.  Ties
// within this band are broken deterministically (earliest start, then
// longest interval) so the peel order — and hence the reported interval
// list — is stable across platforms.
constexpr double kDensityTol = 1e-12;

void validate_jobs(const std::vector<OracleJob>& jobs) {
  for (const OracleJob& j : jobs) {
    DVS_EXPECT(j.work > 0.0, "oracle job work must be positive");
    DVS_EXPECT(j.deadline > j.release + kTimeEps,
               "oracle job deadline must be after its release");
    DVS_EXPECT(std::isfinite(j.release) && std::isfinite(j.deadline) &&
                   std::isfinite(j.work),
               "oracle job fields must be finite");
  }
}

// Busy energy of running `work` units at constant speed `alpha`:
// time = work / alpha, power = P(alpha).
double run_energy(const cpu::PowerModel& power, Work work, double alpha) {
  return power.busy_power(alpha) * (work / alpha);
}

}  // namespace

double YdsSchedule::continuous_energy(const cpu::PowerModel& power) const {
  double e = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Infeasible instances still get a defined figure: speed capped at 1
    // (the fastest any real schedule can run).
    e += run_energy(power, jobs[i].work, std::min(speed[i], 1.0));
  }
  return e;
}

double YdsSchedule::discrete_energy(const cpu::FrequencyScale& scale,
                                    const cpu::PowerModel& power) const {
  double e = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double s = std::min(speed[i], 1.0);
    const Work w = jobs[i].work;
    if (!scale.is_discrete()) {
      // Continuous hardware: only the low end is restricted.
      e += run_energy(power, w, std::max(s, scale.alpha_min()));
      continue;
    }
    const std::vector<double>& lv = scale.levels();
    // First level >= s (levels end at 1.0, so this always exists).
    const auto up = std::lower_bound(lv.begin(), lv.end(), s - kDensityTol);
    const double hi = (up == lv.end()) ? lv.back() : *up;
    if (up == lv.begin() || hi <= s + kDensityTol) {
      // s at or below the lowest level, or exactly on a level: run the
      // whole job there (speeding up only shortens the busy window).
      e += run_energy(power, w, hi);
      continue;
    }
    // Two-level split (Ishihara/Yasuura): spend x of the job's YDS time
    // budget t = w/s at `hi` and the rest at `lo`, choosing x so total
    // work is preserved: hi*x + lo*(t-x) = w  =>  x = t*(s-lo)/(hi-lo).
    // Timing is identical to the continuous schedule, so feasibility is
    // inherited.
    const double lo = *(up - 1);
    const Time t = w / s;
    const Time x = t * (s - lo) / (hi - lo);
    e += power.busy_power(hi) * x + power.busy_power(lo) * (t - x);
  }
  return e;
}

YdsSchedule yds_schedule(std::vector<OracleJob> jobs) {
  validate_jobs(jobs);

  YdsSchedule out;
  out.jobs = std::move(jobs);
  const std::size_t n = out.jobs.size();
  out.speed.assign(n, 0.0);
  if (n == 0) return out;

  // Working copy on the collapsing timeline.  `orig` maps back to the
  // input slot so speeds land in input order.
  struct Live {
    Time r, d;
    Work w;
    std::size_t orig;
  };
  std::vector<Live> live;
  live.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    live.push_back({out.jobs[i].release, out.jobs[i].deadline,
                    out.jobs[i].work, i});
  }

  // Collapse cuts applied so far, in application order: each removed
  // [t1, t2) shifted later times down by (t2 - t1).  Used to map peeled
  // interval endpoints back onto the original timeline.
  struct Cut {
    Time at, len;
  };
  std::vector<Cut> cuts;

  const auto uncollapse = [&cuts](Time t) {
    // Replay the cuts in reverse: a point at collapsed-time t expands to
    // t + len for every cut at or before it.
    for (auto it = cuts.rbegin(); it != cuts.rend(); ++it) {
      if (t >= it->at - kTimeEps) t += it->len;
    }
    return t;
  };

  while (!live.empty()) {
    // Candidate interval starts are the distinct releases; for each, a
    // single deadline-ascending scan accumulates the work of jobs fully
    // inside [r, d] and tracks the densest prefix.
    std::vector<Live> by_deadline = live;
    std::sort(by_deadline.begin(), by_deadline.end(),
              [](const Live& a, const Live& b) { return a.d < b.d; });
    std::vector<Time> starts;
    starts.reserve(live.size());
    for (const Live& j : live) starts.push_back(j.r);
    std::sort(starts.begin(), starts.end());
    starts.erase(std::unique(starts.begin(), starts.end(),
                             [](Time a, Time b) { return time_eq(a, b); }),
                 starts.end());

    double best_g = -1.0;
    Time best_r = 0.0, best_d = 0.0;
    for (const Time r : starts) {
      Work acc = 0.0;
      for (const Live& j : by_deadline) {
        if (j.r < r - kTimeEps) continue;  // released before the window
        acc += j.w;
        const Time len = j.d - r;
        if (len <= kTimeEps) continue;  // degenerate; a wider d will catch it
        const double g = acc / len;
        // Deterministic tie-break: strictly denser wins; within tolerance
        // prefer the earlier start, then the longer interval, so one peel
        // swallows the widest critical window available.
        const bool better =
            g > best_g * (1.0 + kDensityTol) + kDensityTol ||
            (g >= best_g * (1.0 - kDensityTol) - kDensityTol &&
             (time_less(r, best_r) ||
              (time_eq(r, best_r) && time_less(best_d, j.d))));
        if (better) {
          best_g = g;
          best_r = r;
          best_d = j.d;
        }
      }
    }
    DVS_ENSURE(best_g > 0.0, "YDS peel found no critical interval");

    // Capture the contained jobs, assign the interval's intensity.
    std::size_t captured = 0;
    std::vector<Live> rest;
    rest.reserve(live.size());
    for (const Live& j : live) {
      const bool inside =
          j.r >= best_r - kTimeEps && j.d <= best_d + kTimeEps;
      if (inside) {
        out.speed[j.orig] = best_g;
        ++captured;
      } else {
        rest.push_back(j);
      }
    }
    DVS_ENSURE(captured > 0, "YDS critical interval captured no jobs");

    YdsInterval iv;
    iv.start = uncollapse(best_r);
    iv.end = uncollapse(best_d);
    iv.speed = best_g;
    iv.n_jobs = captured;
    out.intervals.push_back(iv);
    out.max_speed = std::max(out.max_speed, best_g);

    // Collapse [best_r, best_d) out of the timeline: times inside the
    // window clamp to best_r, later times shift down by its length.
    const Time len = best_d - best_r;
    for (Live& j : rest) {
      if (j.r >= best_d - kTimeEps) {
        j.r -= len;
      } else if (j.r > best_r) {
        j.r = best_r;
      }
      if (j.d >= best_d - kTimeEps) {
        j.d -= len;
      } else if (j.d > best_r) {
        j.d = best_r;
      }
      j.r = snap_nonnegative(j.r);
      j.d = snap_nonnegative(j.d);
    }
    cuts.push_back({best_r, len});
    live = std::move(rest);
  }

  return out;
}

std::vector<OracleJob> expand_jobs(const task::TaskSet& ts,
                                   const task::ExecutionTimeModel& workload,
                                   Time horizon) {
  DVS_EXPECT(!ts.empty(), "cannot expand an empty task set");
  const Time length = horizon < 0.0 ? ts.default_sim_length() : horizon;
  DVS_EXPECT(length > 0.0, "horizon must be positive");

  std::vector<OracleJob> jobs;
  for (const task::Task& t : ts) {
    for (std::int64_t k = 0;; ++k) {
      const Time release = t.release_of(k);
      // Mirror the engine's release loop: jobs released at (or a hair
      // before) the horizon are never activated.
      if (!(release < length - kTimeEps)) break;
      OracleJob j;
      j.task_id = t.id;
      j.index = k;
      j.release = release;
      j.deadline = t.deadline_of(k);
      // Clamp like the engine under OverrunPolicy::kNone: a model drawing
      // beyond WCET still executes, but the budget floors at > 0.
      j.work = std::max(workload.draw(t, k), 1e-12);
      jobs.push_back(j);
    }
  }
  return jobs;
}

OracleBounds oracle_bounds(const task::TaskSet& ts,
                           const task::ExecutionTimeModel& workload,
                           const cpu::Processor& processor, Time horizon) {
  const Time length = horizon < 0.0 ? ts.default_sim_length() : horizon;
  std::vector<OracleJob> jobs = expand_jobs(ts, workload, length);
  // Only jobs whose deadlines fall inside the window bind every zero-miss
  // schedule; horizon-truncated jobs would otherwise inflate the bound
  // above what a governor is charged for.
  std::erase_if(jobs, [length](const OracleJob& j) {
    return j.deadline > length + kTimeEps;
  });

  OracleBounds b;
  b.n_jobs = jobs.size();
  if (jobs.empty()) return b;

  const YdsSchedule sched = yds_schedule(std::move(jobs));
  b.max_speed = sched.max_speed;
  b.feasible = sched.feasible();
  b.continuous_energy = sched.continuous_energy(*processor.power);
  b.discrete_energy =
      sched.discrete_energy(processor.scale, *processor.power);
  return b;
}

}  // namespace dvs::opt
