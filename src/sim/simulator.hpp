// The discrete-event simulation engine.
//
// Model: a single DVS-capable processor runs a periodic task set under
// preemptive EDF.  At every scheduling point (job release, job completion,
// end of a speed-transition stall, return from idle) the governor is asked
// for the speed of the earliest-deadline job; the request is quantized
// upward to the processor's available speeds.  Execution then proceeds
// until the next event.  Jobs consume their *actual* execution demand
// (drawn from the workload model); governors only ever see worst-case
// remaining budgets, so slack materializes exactly as on real hardware —
// through early completions.
//
// Determinism: with the same task set, workload model, processor and
// governor, a run is bit-for-bit reproducible (no wall clocks, no global
// state, deterministic tie-breaking in the ready queue).
#pragma once

#include "cpu/processors.hpp"
#include "degrade/degrade.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "sim/governor.hpp"
#include "sim/result.hpp"
#include "sim/trace.hpp"
#include "task/task_set.hpp"
#include "task/workload.hpp"

namespace dvs::sim {

/// What the simulator does when a job's actual demand exceeds its WCET
/// budget (possible only with an overrun-injecting workload model, e.g.
/// fault::faulty_workload):
///  * kNone               — no enforcement: the job simply keeps executing
///                          past its budget at the governor-chosen speed
///                          (governors see remaining_wcet() == 0; the
///                          overrun is still counted);
///  * kClampAtWcet        — budget enforcement at release: the demand is
///                          clamped to the WCET, modeling an RTOS that
///                          aborts a job at budget exhaustion;
///  * kEscalateToMaxSpeed — a budget-exhaustion timer: the moment a job's
///                          executed work reaches its WCET, the remainder
///                          runs at maximum speed, bypassing the governor
///                          (best-effort damage limitation).
enum class OverrunPolicy { kNone, kClampAtWcet, kEscalateToMaxSpeed };

struct SimOptions {
  /// Simulated length in seconds; negative selects
  /// TaskSet::default_sim_length().
  Time length = -1.0;

  /// Dispatch order: EDF (the paper's setting) or deadline-monotonic
  /// fixed priorities (the repo's extension).
  SchedulingPolicy policy = SchedulingPolicy::kEdf;

  /// Keep a JobRecord for every job (memory proportional to job count).
  bool record_jobs = false;

  /// Abort the run at the first deadline miss (the miss is still counted).
  bool stop_on_miss = false;

  /// Optional trace sink; pass a VectorTrace to collect segments.
  TraceRecorder* trace = nullptr;

  /// Overrun containment (see OverrunPolicy).  With kNone and a workload
  /// model that never exceeds the WCET — every model in task/workload.hpp —
  /// behavior is exactly the pre-fault-injection simulator.
  OverrunPolicy containment = OverrunPolicy::kNone;

  /// Optional metrics sink (DESIGN.md §8).  When attached, the run fills
  /// speed-residency / ready-queue-depth histograms and dispatch /
  /// preemption counters; when null every metrics call is skipped (zero
  /// overhead when disabled).  Purely observational: attaching a registry
  /// never changes a single simulated value.
  obs::MetricsRegistry* metrics = nullptr;

  /// Optional governor decision audit: one obs::Decision per dispatch
  /// (time, job, slack estimate, requested/chosen alpha), realized slack
  /// backfilled at job completion.  Observational, like `metrics`.
  obs::DecisionAudit* audit = nullptr;

  /// Optional graceful-degradation controller configuration (DESIGN.md
  /// §11).  When attached, the engine runs a degrade::DegradationController
  /// that may shed (m,k)-window-legal jobs of weakly-hard tasks under
  /// observed overload; skip/mode counters land in SimResult.  When null
  /// (the default) no controller code runs and the simulation is
  /// bit-identical to the pre-degradation engine.  The config must
  /// outlive the run.
  const degrade::DegradationConfig* degradation = nullptr;
};

/// Run one simulation.  Throws ContractError for invalid inputs (empty or
/// non-validating task set, non-schedulable set is allowed but misses will
/// be recorded).  The governor is used in place and may keep state; create
/// a fresh instance per run.
[[nodiscard]] SimResult simulate(const task::TaskSet& ts,
                                 const task::ExecutionTimeModel& workload,
                                 const cpu::Processor& processor,
                                 Governor& governor,
                                 const SimOptions& options = {});

}  // namespace dvs::sim
