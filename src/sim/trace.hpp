// Execution traces: what ran, when, at which speed.
//
// Traces are optional (the simulator runs without one); they power the
// ASCII Gantt renderer used by examples and the CSV export used for
// offline plotting.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "task/task_set.hpp"
#include "util/time.hpp"

namespace dvs::sim {

enum class SegmentKind : std::uint8_t { kBusy, kIdle, kTransition };

struct TraceSegment {
  Time begin = 0.0;
  Time end = 0.0;
  SegmentKind kind = SegmentKind::kIdle;
  std::int32_t task_id = -1;  ///< valid for kBusy
  std::int64_t job_index = -1;
  double alpha = 0.0;         ///< valid for kBusy
};

struct TraceEvent {
  /// kSkip marks a job shed by the degradation controller; kModeChange
  /// marks a Normal/Degraded transition (task_id -1, job_index carries
  /// the new mode: 0 = Normal, 1 = Degraded).
  enum class Kind : std::uint8_t {
    kRelease,
    kCompletion,
    kMiss,
    kSkip,
    kModeChange
  };
  Kind kind = Kind::kRelease;
  Time at = 0.0;
  std::int32_t task_id = 0;
  std::int64_t job_index = 0;
};

/// Receives segments/events from the simulator.
class TraceRecorder {
 public:
  virtual ~TraceRecorder() = default;
  virtual void segment(const TraceSegment& s) = 0;
  virtual void event(const TraceEvent& e) = 0;
  /// Called once before the run with the engine's job-count estimate so
  /// recorders can pre-allocate (default: ignore the hint).
  virtual void reserve_hint(std::size_t /*expected_jobs*/) {}
};

/// Stores everything in vectors; adjacent busy segments of the same job at
/// the same speed are merged.
class VectorTrace final : public TraceRecorder {
 public:
  void segment(const TraceSegment& s) override;
  void event(const TraceEvent& e) override;
  void reserve_hint(std::size_t expected_jobs) override {
    // ~3 segments (dispatch fragments) and ~2.2 events per job is the
    // observed E1 average; over-reserving slightly is one-shot and cheap.
    segments_.reserve(expected_jobs * 3);
    events_.reserve(expected_jobs * 5 / 2);
  }

  [[nodiscard]] const std::vector<TraceSegment>& segments() const noexcept {
    return segments_;
  }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }

 private:
  std::vector<TraceSegment> segments_;
  std::vector<TraceEvent> events_;
};

/// Render a trace as an ASCII Gantt chart: one row per task plus an idle
/// row; `columns` characters span [t0, t1).  Speeds are shown as digits
/// 1..9 (alpha rounded to tenths) so speed changes are visible.
void render_gantt(const VectorTrace& trace, const task::TaskSet& ts, Time t0,
                  Time t1, std::ostream& out, int columns = 100);

/// Dump segments as CSV (begin,end,kind,task,job,alpha).
void write_trace_csv(const VectorTrace& trace, std::ostream& out);

}  // namespace dvs::sim
