// A job: one activation of a periodic task inside a simulation.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/time.hpp"

namespace dvs::sim {

struct Job {
  std::int32_t task_id = 0;
  std::int64_t index = 0;       ///< per-task activation number (0-based)
  Time release = 0.0;
  Time abs_deadline = 0.0;
  Work wcet = 0.0;              ///< worst-case budget (what governors see)
  Work actual = 0.0;            ///< true demand, hidden from governors
  Work executed = 0.0;          ///< work retired so far
  Time completion = -1.0;       ///< set when the job finishes
  bool missed = false;
  bool overrun = false;         ///< drawn demand exceeded the WCET budget
  bool escalated = false;       ///< overrun containment forced max speed
  bool skipped = false;         ///< shed by the degradation controller
                                ///< (never enqueued; actual stays 0)

  /// Remaining worst-case budget — the only remaining-work figure a
  /// governor is allowed to use.
  [[nodiscard]] Work remaining_wcet() const noexcept {
    return std::max(0.0, wcet - executed);
  }

  /// Remaining true demand (simulator-internal).
  [[nodiscard]] Work remaining_actual() const noexcept {
    return std::max(0.0, actual - executed);
  }

  [[nodiscard]] bool finished() const noexcept { return completion >= 0.0; }
};

}  // namespace dvs::sim
