// The DVS governor interface — the extension point of the library.
//
// A governor is consulted at every *scheduling point* (job release, job
// completion, return from idle) while a job is about to execute, and
// returns the ideal relative speed alpha for the earliest-deadline job.
// The simulator clamps/quantizes the request to the processor's available
// speeds, always rounding UP so a governor can never cause a deadline miss
// through quantization.
//
// Information contract (hard real-time): a governor sees only
//   * the static task set,
//   * released-but-unfinished jobs with their *worst-case* remaining
//     budgets, and
//   * the current time and future release times (periodic model).
// It never observes a job's actual execution time before that job
// completes.
#pragma once

#include <limits>
#include <memory>
#include <span>
#include <string>

#include "sim/job.hpp"
#include "task/task_set.hpp"

namespace dvs::sim {

/// Which priority order the dispatcher uses.
/// kEdf: absolute deadlines (dynamic priority, the paper's setting).
/// kFixedPriority: static deadline-monotonic ranks (the repo's
/// fixed-priority extension; see sched/fixed_priority.hpp).
enum class SchedulingPolicy { kEdf, kFixedPriority };

/// Read-only view of the simulation exposed to governors.
class SimContext {
 public:
  [[nodiscard]] virtual Time now() const = 0;
  [[nodiscard]] virtual const task::TaskSet& task_set() const = 0;
  [[nodiscard]] virtual SchedulingPolicy policy() const = 0;

  /// Lowest speed offered by the processor (after quantization).
  [[nodiscard]] virtual double alpha_min() const = 0;

  /// Earliest future release strictly after `t` across all tasks.
  [[nodiscard]] virtual Time next_release_after(Time t) const = 0;

  /// Released, unfinished jobs in dispatch order (earliest deadline first
  /// under EDF; priority order under fixed priorities).  The first
  /// element is the job about to run.  The span views engine-owned scratch
  /// storage: it stays valid (and its contents fixed) until the next
  /// scheduling event — i.e. for the whole of one governor callback —
  /// but must not be retained across callbacks.
  [[nodiscard]] virtual std::span<const Job* const> active_jobs() const = 0;

  /// Speed of the most recent execution segment (1.0 before any).
  [[nodiscard]] virtual double current_speed() const = 0;

 protected:
  ~SimContext() = default;
};

/// Base class for DVS policies.  Implementations live in src/core/.
class Governor {
 public:
  virtual ~Governor() = default;

  /// Called once before the simulation starts.
  virtual void on_start(const SimContext& /*ctx*/) {}

  /// Called when a job is released (after it joined the ready queue).
  virtual void on_release(const Job& /*job*/, const SimContext& /*ctx*/) {}

  /// Called when a job completes (its actual demand is now public).
  virtual void on_completion(const Job& /*job*/, const SimContext& /*ctx*/) {}

  /// Ideal relative speed for `running` (the highest-priority active
  /// job).  Must be > 0; values above 1 are clamped.  Called at every
  /// scheduling point, so stateless recomputation is fine.  Governors
  /// whose safety argument is policy-specific must check ctx.policy() in
  /// on_start (all EDF slack-analysis governors do).
  [[nodiscard]] virtual double select_speed(const Job& running,
                                            const SimContext& ctx) = 0;

  /// Decision reporting for the observability layer (obs/audit.hpp): the
  /// slack estimate — seconds of provable stretch beyond the running
  /// job's remaining worst-case budget — that backed the most recent
  /// select_speed() return value.  The simulator reads it immediately
  /// after each dispatch when a DecisionAudit is attached, pairing it
  /// later with the slack that actually materialized.  Policies without
  /// an explicit slack model return NaN (recorded but excluded from the
  /// accuracy statistics); wrappers forward or re-derive it.
  [[nodiscard]] virtual Time last_slack_estimate() const {
    return std::numeric_limits<Time>::quiet_NaN();
  }

  /// Identifier used in reports and the registry.
  [[nodiscard]] virtual std::string name() const = 0;
};

using GovernorPtr = std::unique_ptr<Governor>;

}  // namespace dvs::sim
