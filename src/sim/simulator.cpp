#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "cpu/energy_meter.hpp"
#include "degrade/degrade.hpp"
#include "sched/edf_queue.hpp"
#include "sched/fixed_priority.hpp"
#include "util/error.hpp"
#include "util/stable_vector.hpp"

namespace dvs::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Speeds closer than this are the same operating point (no switch).
constexpr double kAlphaTol = 1e-9;

class SimEngine final : public SimContext {
 public:
  SimEngine(const task::TaskSet& ts, const task::ExecutionTimeModel& workload,
            const cpu::Processor& proc, Governor& governor,
            const SimOptions& opts)
      : ts_(ts),
        workload_(workload),
        proc_(proc),
        governor_(governor),
        opts_(opts),
        meter_(proc.power, ts.size()) {
    DVS_EXPECT(!ts_.empty(), "cannot simulate an empty task set");
    ts_.validate();
    length_ = opts.length < 0.0 ? ts_.default_sim_length() : opts.length;
    DVS_EXPECT(length_ > 0.0, "simulation length must be positive");
    next_release_.reserve(ts_.size());
    next_index_.assign(ts_.size(), 0);
    worst_response_.assign(ts_.size(), 0.0);
    for (const auto& t : ts_) next_release_.push_back(t.phase);
    if (opts_.policy == SchedulingPolicy::kFixedPriority) {
      priorities_ = sched::deadline_monotonic_priorities(ts_);
    }
    // Pre-size every growth container from the release count the periodic
    // model fixes in advance, so the event loop never touches the
    // allocator (verified by tests/test_alloc_regression.cpp).
    std::size_t expected_jobs = 0;
    for (const auto& t : ts_) {
      if (t.phase < length_) {
        expected_jobs +=
            static_cast<std::size_t>((length_ - t.phase) / t.period) + 2;
      }
    }
    jobs_.reserve(expected_jobs);
    ready_.reserve(ts_.size() + 1);
    sorted_scratch_.reserve(ts_.size() + 1);
    active_scratch_.reserve(ts_.size() + 1);
    if (opts_.trace != nullptr) opts_.trace->reserve_hint(expected_jobs);
    if (opts_.audit != nullptr) opts_.audit->reserve(expected_jobs * 3);
    if (opts_.metrics != nullptr) {
      // Instruments are created once and cached; the hot path never
      // re-hashes a name.  Bucket layouts are derived from the task set,
      // so they are as deterministic as the simulation itself.
      auto& m = *opts_.metrics;
      speed_hist_ = &m.histogram("speed_residency_s", 0.0, 1.0, 20);
      depth_hist_ = &m.histogram("ready_queue_depth", 0.0,
                                 static_cast<double>(ts_.size()) + 1.0,
                                 ts_.size() + 1);
      depth_gauge_ = &m.gauge("ready_queue_depth_last");
      dispatch_counter_ = &m.counter("dispatches");
    }
    if (opts_.degradation != nullptr) {
      degrade_.emplace(ts_, *opts_.degradation);
      last_unfinalized_.assign(ts_.size(), kNoSlot);
      if (opts_.metrics != nullptr) {
        // Degradation instruments exist only on controller-bearing runs,
        // so plain runs' metrics dumps stay byte-identical.
        skip_counter_ = &opts_.metrics->counter("jobs_skipped");
        mode_counter_ = &opts_.metrics->counter("degradation_mode_changes");
      }
    }
  }

  SimResult run() {
    governor_.on_start(*this);
    while (true) {
      release_due_jobs();
      if (t_ >= length_ - kTimeEps) break;
      if (ready_.empty()) {
        if (!advance_idle()) break;
        continue;
      }
      Job& job = jobs_[ready_.top().slot];
      double alpha = decide_speed(job);
      if (!apply_transition(alpha)) continue;  // arrivals during stall
      if (t_ >= length_ - kTimeEps) break;
      execute(job, alpha);
      if (opts_.stop_on_miss && misses_ > 0) break;
    }
    return finish();
  }

  // --- SimContext -------------------------------------------------------
  [[nodiscard]] Time now() const override { return t_; }
  [[nodiscard]] const task::TaskSet& task_set() const override { return ts_; }
  [[nodiscard]] SchedulingPolicy policy() const override {
    return opts_.policy;
  }
  [[nodiscard]] double alpha_min() const override {
    return proc_.scale.alpha_min();
  }
  [[nodiscard]] Time next_release_after(Time t) const override {
    Time best = kInf;
    for (const auto& task : ts_) {
      std::int64_t k = task.first_job_at_or_after(t + 2.0 * kTimeEps);
      Time r = task.release_of(k);
      if (r <= t + kTimeEps) r = task.release_of(k + 1);
      best = std::min(best, r);
    }
    return best;
  }
  [[nodiscard]] std::span<const Job* const> active_jobs() const override {
    // Engine-owned scratch, rebuilt lazily: the ready queue only changes
    // at release/completion events (which set active_dirty_), so repeated
    // governor queries within one scheduling point reuse the same sort.
    if (active_dirty_) {
      ready_.sorted_into(sorted_scratch_);
      active_scratch_.clear();
      for (const auto& e : sorted_scratch_) {
        active_scratch_.push_back(&jobs_[e.slot]);
      }
      active_dirty_ = false;
    }
    return active_scratch_;
  }
  [[nodiscard]] double current_speed() const override {
    return last_alpha_ > 0.0 ? last_alpha_ : 1.0;
  }

 private:
  // --- degradation hooks (no-ops unless a controller is attached) -------

  /// Run a controller call and surface any Normal/Degraded transition it
  /// causes as a trace instant + metrics tick.
  template <typename Fn>
  void watch_mode(Time at, const Fn& fn) {
    const degrade::Mode before = degrade_->mode();
    fn();
    const degrade::Mode after = degrade_->mode();
    if (after == before) return;
    if (opts_.trace != nullptr) {
      opts_.trace->event(
          {TraceEvent::Kind::kModeChange, at, -1,
           after == degrade::Mode::kDegraded ? std::int64_t{1}
                                             : std::int64_t{0}});
    }
    if (mode_counter_ != nullptr) mode_counter_->inc();
  }

  /// Finalize the outcome of task i's previous released job, if any.
  /// Called at the task's next release (where the previous deadline has
  /// certainly passed, because D <= T) and from the end-of-run flush.
  void finalize_outcome(std::size_t i, Time now) {
    const std::size_t slot = last_unfinalized_[i];
    if (slot == kNoSlot) return;
    const Job& prev = jobs_[slot];
    const bool met = prev.finished() && !prev.missed;
    watch_mode(now, [&] { degrade_->on_job_outcome(prev.task_id, met, now); });
    last_unfinalized_[i] = kNoSlot;
  }

  /// Offered-demand density at a release instant: ready backlog plus the
  /// controller's shadow (skipped-but-unexpired) demand plus the job
  /// being released, each as remaining-WCET over time-to-deadline.  Uses
  /// only worst-case budgets — the same information governors see.
  [[nodiscard]] double offered_density(Time now, Work new_wcet,
                                       Time new_deadline) const {
    double d = new_wcet / std::max(new_deadline - now, kTimeEps);
    for (const auto& e : ready_.raw()) {
      const Job& j = jobs_[e.slot];
      d += j.remaining_wcet() / std::max(j.abs_deadline - now, kTimeEps);
    }
    return d + degrade_->shadow_density(now);
  }

  /// Release every job whose release time has been reached (and lies
  /// within the simulated window).
  void release_due_jobs() {
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      while (next_release_[i] <= t_ + kTimeEps &&
             next_release_[i] < length_ - kTimeEps) {
        const task::Task& task = ts_[i];
        Job job;
        job.task_id = task.id;
        job.index = next_index_[i];
        job.release = next_release_[i];
        job.abs_deadline = job.release + task.deadline;
        job.wcet = task.wcet;
        if (degrade_.has_value()) {
          // Order matters: settle the previous job's outcome, probe the
          // offered load (a pressure source), then decide the skip —
          // all before the demand draw, so the decision is structurally
          // non-clairvoyant.
          finalize_outcome(i, job.release);
          const double density =
              offered_density(job.release, job.wcet, job.abs_deadline);
          watch_mode(job.release,
                     [&] { degrade_->on_backlog(density, job.release); });
          if (degrade_->should_skip(task.id, task.wcet, job.abs_deadline,
                                    job.release)) {
            job.skipped = true;
            jobs_.push_back(job);
            ++released_;
            ++next_index_[i];
            next_release_[i] += task.period;
            if (opts_.trace != nullptr) {
              opts_.trace->event({TraceEvent::Kind::kSkip, job.release,
                                  job.task_id, job.index});
            }
            if (skip_counter_ != nullptr) skip_counter_->inc();
            continue;  // never enqueued: governors see no trace of it
          }
        }
        job.actual = workload_.draw(task, job.index);
        DVS_ENSURE(std::isfinite(job.actual) && job.actual > 0.0,
                   "workload model returned non-positive or non-finite work");
        if (job.actual > job.wcet + kTimeEps) {
          // WCET overrun (fault-injecting workloads only; every model in
          // task/workload.hpp stays within the budget).
          job.overrun = true;
          ++overruns_;
          if (opts_.containment == OverrunPolicy::kClampAtWcet) {
            job.actual = job.wcet;  // budget enforcement at release
            ++contained_;
          }
        } else {
          job.actual = std::min(job.actual, job.wcet);
        }
        const std::size_t slot = jobs_.size();
        jobs_.push_back(job);
        if (degrade_.has_value()) last_unfinalized_[i] = slot;
        // The queue key encodes dispatch priority: the absolute deadline
        // under EDF, the static rank under fixed priorities.
        const Time key =
            opts_.policy == SchedulingPolicy::kEdf
                ? job.abs_deadline
                : static_cast<Time>(
                      priorities_[static_cast<std::size_t>(job.task_id)]);
        ready_.push({key, job.task_id, job.index, slot});
        active_dirty_ = true;
        ++released_;
        ++next_index_[i];
        next_release_[i] += task.period;
        if (opts_.trace != nullptr) {
          opts_.trace->event({TraceEvent::Kind::kRelease, job.release,
                              job.task_id, job.index});
        }
        governor_.on_release(jobs_[slot], *this);
      }
    }
  }

  /// Idle until the next release (or the end of the run).
  /// Returns false when the run is over.
  bool advance_idle() {
    Time next = kInf;
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      if (next_release_[i] < length_ - kTimeEps) {
        next = std::min(next, next_release_[i]);
      }
    }
    const Time until = std::min(next, length_);
    if (until > t_) {
      meter_.add_idle(until - t_);
      if (opts_.trace != nullptr) {
        opts_.trace->segment(
            {t_, until, SegmentKind::kIdle, -1, -1, 0.0});
      }
      t_ = until;
    }
    return t_ < length_ - kTimeEps;
  }

  /// Ask the governor for a speed and quantize it to the hardware.  Under
  /// kEscalateToMaxSpeed containment, a job that has exhausted its WCET
  /// budget without completing (a detected overrun — real kernels see the
  /// enforcement timer fire) bypasses the governor and runs at max speed.
  double decide_speed(Job& job) {
    if (dispatch_counter_ != nullptr) {
      dispatch_counter_->inc();
      depth_hist_->add(static_cast<double>(ready_.size()) + 0.5);
      depth_gauge_->set(static_cast<double>(ready_.size()));
    }
    if (opts_.containment == OverrunPolicy::kEscalateToMaxSpeed &&
        job.executed >= job.wcet - kTimeEps &&
        job.remaining_actual() > kTimeEps) {
      if (!job.escalated) {
        job.escalated = true;
        ++contained_;
      }
      // Escalation bypasses the governor — audited with no slack estimate.
      record_decision(job, 1.0, 1.0, /*from_governor=*/false);
      return 1.0;
    }
    double req = governor_.select_speed(job, *this);
    DVS_ENSURE(std::isfinite(req) && req > 0.0,
               "governor '" + governor_.name() +
                   "' returned a non-positive or non-finite speed");
    req = std::min(req, 1.0);
    const double chosen = proc_.scale.quantize_up(req);
    record_decision(job, req, chosen, /*from_governor=*/true);
    return chosen;
  }

  void record_decision(const Job& job, double requested, double chosen,
                       bool from_governor) {
    if (opts_.audit == nullptr) return;
    obs::Decision d;
    d.at = t_;
    d.task_id = job.task_id;
    d.job_index = job.index;
    d.remaining_wcet = job.remaining_wcet();
    d.estimated_slack = from_governor
                            ? governor_.last_slack_estimate()
                            : std::numeric_limits<Time>::quiet_NaN();
    d.requested_alpha = requested;
    d.chosen_alpha = chosen;
    opts_.audit->decision(d);
  }

  /// Charge the speed-switch cost when the operating point changes.  With
  /// a ProcessorFaultModel attached, the request may be downgraded to the
  /// speed the (faulty) hardware actually honors — `alpha` is updated in
  /// place so the caller executes at the real speed.  Returns false when
  /// releases arrived during the stall (the caller must re-dispatch);
  /// otherwise the engine is committed to `alpha`.
  bool apply_transition(double& alpha) {
    if (last_alpha_ <= 0.0) {  // first execution segment: free setup
      last_alpha_ = alpha;
      return true;
    }
    if (std::fabs(alpha - last_alpha_) <= kAlphaTol) return true;

    Time fault_stall = 0.0;
    if (proc_.faults != nullptr) {
      const std::int64_t idx = switch_attempts_++;
      const double honored =
          proc_.faults->honored_speed(idx, last_alpha_, alpha);
      DVS_ENSURE(std::isfinite(honored) && honored > 0.0,
                 "processor fault model returned an invalid speed");
      if (std::fabs(honored - alpha) > kAlphaTol) {
        ++hw_faults_;  // stuck frequency: the request was ignored
        alpha = honored;
        if (std::fabs(alpha - last_alpha_) <= kAlphaTol) return true;
      }
      fault_stall = proc_.faults->extra_stall(idx, last_alpha_, alpha);
      DVS_ENSURE(fault_stall >= 0.0, "negative injected stall");
      if (fault_stall > 0.0) ++hw_faults_;
    }

    ++switches_;
    const double from = last_alpha_;
    last_alpha_ = alpha;
    if (proc_.transition.is_free() && fault_stall <= 0.0) return true;

    const Time base_stall =
        proc_.transition.is_free() ? 0.0
                                   : proc_.transition.switch_time(from, alpha);
    const Time dsw = std::min(base_stall + fault_stall, length_ - t_);
    const double esw =
        proc_.transition.is_free()
            ? 0.0
            : proc_.transition.switch_energy(*proc_.power, from, alpha);
    meter_.add_transition(dsw, esw);
    if (dsw <= 0.0) return true;
    if (opts_.trace != nullptr) {
      opts_.trace->segment(
          {t_, t_ + dsw, SegmentKind::kTransition, -1, -1, 0.0});
    }
    const Time stall_end = t_ + dsw;
    bool arrivals = false;
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      if (next_release_[i] <= stall_end + kTimeEps &&
          next_release_[i] < length_ - kTimeEps) {
        arrivals = true;
        break;
      }
    }
    t_ = stall_end;
    return !arrivals;
  }

  /// Execute the EDF-top job at `alpha` until it completes or the next
  /// release, whichever comes first.
  void execute(Job& job, double alpha) {
    if (job.remaining_actual() <= kTimeEps) {
      complete(job);  // guards against zero-length execution windows
      return;
    }
    const Time t_fin = t_ + job.remaining_actual() / alpha;
    Time t_rel = kInf;
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      if (next_release_[i] < length_ - kTimeEps) {
        t_rel = std::min(t_rel, next_release_[i]);
      }
    }
    // Budget-exhaustion timer: under kEscalateToMaxSpeed, a job that will
    // overrun must stop at the instant its executed work reaches the WCET
    // so the next dispatch escalates it (see decide_speed).
    Time t_budget = kInf;
    if (opts_.containment == OverrunPolicy::kEscalateToMaxSpeed &&
        !job.escalated && job.actual > job.wcet + kTimeEps &&
        job.executed < job.wcet - kTimeEps) {
      t_budget = t_ + (job.wcet - job.executed) / alpha;
    }
    const Time t_next = std::min({t_fin, t_rel, t_budget, length_});
    DVS_ENSURE(t_next > t_, "simulation failed to make progress");

    // Preemption accounting: dispatching a different job while the
    // previous one is unfinished means the previous one was interrupted.
    if (last_running_ != nullptr && last_running_ != &job &&
        !last_running_->finished()) {
      ++preemptions_;
    }
    last_running_ = &job;

    const Time dt = t_next - t_;
    meter_.add_busy(dt, alpha, job.task_id);
    retired_work_ += alpha * dt;
    job.executed += alpha * dt;
    if (speed_hist_ != nullptr) speed_hist_->add(alpha, dt);
    if (opts_.trace != nullptr) {
      opts_.trace->segment(
          {t_, t_next, SegmentKind::kBusy, job.task_id, job.index, alpha});
    }
    t_ = t_next;

    if (job.remaining_actual() <= kTimeEps ||
        time_leq(t_fin, t_next)) {
      complete(job);
    }
  }

  void complete(Job& job) {
    job.executed = job.actual;  // snap away rounding residue
    job.completion = t_;
    if (last_running_ == &job) last_running_ = nullptr;
    if (opts_.audit != nullptr) {
      opts_.audit->complete(job.task_id, job.index, job.abs_deadline - t_);
    }
    auto& worst = worst_response_[static_cast<std::size_t>(job.task_id)];
    worst = std::max(worst, job.completion - job.release);
    job.missed = time_less(job.abs_deadline, t_);
    DVS_ENSURE(&jobs_[ready_.top().slot] == &job,
               "completing job is not the EDF head");
    ready_.pop();
    active_dirty_ = true;
    ++completed_;
    if (job.missed) {
      ++misses_;
      if (opts_.trace != nullptr) {
        opts_.trace->event(
            {TraceEvent::Kind::kMiss, t_, job.task_id, job.index});
      }
    }
    if (opts_.trace != nullptr) {
      opts_.trace->event(
          {TraceEvent::Kind::kCompletion, t_, job.task_id, job.index});
    }
    if (degrade_.has_value() && job.overrun) {
      // The overrun becomes observable when the job retires past its
      // budget — a pressure event for the mode machine.
      watch_mode(t_, [&] { degrade_->on_overrun(t_); });
    }
    governor_.on_completion(job, *this);
  }

  SimResult finish() {
    // Jobs still active at the end either ran out of simulated time
    // (deadline beyond the end: truncated, not a miss) or genuinely missed.
    std::int64_t truncated = 0;
    for (const auto& e : ready_.raw()) {
      Job& job = jobs_[e.slot];
      if (time_leq(job.abs_deadline, length_)) {
        job.missed = true;
        ++misses_;
      } else {
        ++truncated;
      }
    }

    if (degrade_.has_value()) {
      // Flush the windows: outcomes whose deadline fell inside the
      // horizon are final now; truncated jobs stay out of the books.
      for (std::size_t i = 0; i < ts_.size(); ++i) {
        const std::size_t slot = last_unfinalized_[i];
        if (slot != kNoSlot && !time_leq(jobs_[slot].abs_deadline, length_)) {
          last_unfinalized_[i] = kNoSlot;  // truncated: no outcome
          continue;
        }
        finalize_outcome(i, length_);
      }
      degrade_->finish(length_);
    }

    SimResult r;
    r.governor = governor_.name();
    r.processor = proc_.name;
    r.workload = workload_.name();
    r.sim_length = length_;
    r.busy_energy = meter_.busy_energy();
    r.idle_energy = meter_.idle_energy();
    r.transition_energy = meter_.transition_energy();
    r.busy_time = meter_.busy_time();
    r.idle_time = meter_.idle_time();
    r.transition_time = meter_.transition_time();
    r.jobs_released = released_;
    r.jobs_completed = completed_;
    r.deadline_misses = misses_;
    r.jobs_truncated = truncated;
    r.speed_switches = switches_;
    r.preemptions = preemptions_;
    r.jobs_overrun = overruns_;
    r.overruns_contained = contained_;
    r.processor_faults = hw_faults_;
    r.average_speed =
        meter_.busy_time() > 0.0 ? retired_work_ / meter_.busy_time() : 1.0;
    r.per_task_energy = meter_.per_task_energy();
    r.worst_response = worst_response_;
    if (degrade_.has_value()) {
      r.degradation = true;
      r.jobs_skipped = degrade_->jobs_skipped();
      r.mode_changes = degrade_->mode_changes();
      r.time_degraded = degrade_->time_degraded();
      r.mk_violations = degrade_->mk_violations();
      r.hard_misses = degrade_->hard_misses();
      if (opts_.metrics != nullptr) {
        opts_.metrics->counter("mk_violations").inc(r.mk_violations);
      }
    }
    if (opts_.record_jobs) {
      r.jobs.reserve(jobs_.size());
      for (const auto& j : jobs_) {
        r.jobs.push_back({j.task_id, j.index, j.release, j.abs_deadline,
                          j.completion, j.wcet, j.actual, j.missed,
                          j.skipped});
      }
    }
    if (opts_.metrics != nullptr) {
      opts_.metrics->counter("preemptions").inc(preemptions_);
      opts_.metrics->counter("deadline_misses").inc(misses_);
      if (opts_.audit != nullptr && !opts_.audit->empty()) {
        // Prediction-error histogram spans ± the longest relative deadline:
        // no estimate can be off by more than one deadline in either
        // direction without the run being broken anyway.
        Time d_max = 0.0;
        for (const auto& task : ts_.tasks()) {
          d_max = std::max(d_max, task.deadline);
        }
        auto& h = opts_.metrics->histogram("slack_error_s", -d_max, d_max, 32);
        opts_.audit->fill_error_histogram(h);
      }
    }
    return r;
  }

  const task::TaskSet& ts_;
  const task::ExecutionTimeModel& workload_;
  const cpu::Processor& proc_;
  Governor& governor_;
  const SimOptions& opts_;
  cpu::EnergyMeter meter_;

  Time length_ = 0.0;
  Time t_ = 0.0;
  double last_alpha_ = -1.0;  ///< speed of the previous execution segment
  double retired_work_ = 0.0;

  util::StableVector<Job> jobs_;  ///< slab pool: stable refs, no per-job
                                  ///< allocation after the ctor's reserve
  sched::EdfReadyQueue ready_;  ///< min-heap over the policy's key
  /// active_jobs() scratch: rebuilt only when the ready queue changed.
  mutable std::vector<sched::EdfEntry> sorted_scratch_;
  mutable std::vector<const Job*> active_scratch_;
  mutable bool active_dirty_ = true;
  std::vector<Time> next_release_;
  std::vector<std::int64_t> next_index_;
  std::vector<int> priorities_;  ///< fixed-priority ranks (FP policy only)
  std::vector<Time> worst_response_;  ///< per-task max completion - release

  std::int64_t released_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t switches_ = 0;
  std::int64_t overruns_ = 0;        ///< jobs whose demand exceeded WCET
  std::int64_t contained_ = 0;       ///< clamp/escalate actions taken
  std::int64_t hw_faults_ = 0;       ///< injected processor faults observed
  std::int64_t switch_attempts_ = 0; ///< fault-model index (incl. ignored)
  std::int64_t preemptions_ = 0;     ///< interrupted-while-unfinished count
  const Job* last_running_ = nullptr;  ///< job of the previous exec segment

  // Cached metrics instruments (null unless SimOptions::metrics is set);
  // caching keeps the hot path to a single pointer test per sample.
  obs::Histogram* speed_hist_ = nullptr;
  obs::Histogram* depth_hist_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Counter* dispatch_counter_ = nullptr;

  // Graceful degradation (absent unless SimOptions::degradation is set;
  // every hook above is gated on has_value, so a plain run executes no
  // controller code at all).
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  std::optional<degrade::DegradationController> degrade_;
  /// Per task: slab slot of the last released job whose outcome has not
  /// been folded into its (m,k) window yet.
  std::vector<std::size_t> last_unfinalized_;
  obs::Counter* skip_counter_ = nullptr;
  obs::Counter* mode_counter_ = nullptr;
};

}  // namespace

SimResult simulate(const task::TaskSet& ts,
                   const task::ExecutionTimeModel& workload,
                   const cpu::Processor& processor, Governor& governor,
                   const SimOptions& options) {
  SimEngine engine(ts, workload, processor, governor, options);
  return engine.run();
}

}  // namespace dvs::sim
