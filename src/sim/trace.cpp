#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dvs::sim {

void VectorTrace::segment(const TraceSegment& s) {
  if (s.end <= s.begin) return;  // zero-length segments carry no information
  if (!segments_.empty()) {
    auto& last = segments_.back();
    const bool same_stream = last.kind == s.kind && last.task_id == s.task_id &&
                             last.job_index == s.job_index &&
                             last.alpha == s.alpha;
    if (same_stream && time_eq(last.end, s.begin)) {
      last.end = s.end;
      return;
    }
  }
  segments_.push_back(s);
}

void VectorTrace::event(const TraceEvent& e) { events_.push_back(e); }

void render_gantt(const VectorTrace& trace, const task::TaskSet& ts, Time t0,
                  Time t1, std::ostream& out, int columns) {
  DVS_EXPECT(t1 > t0, "gantt window must be non-empty");
  DVS_EXPECT(columns > 0, "gantt needs at least one column");
  const double dt = (t1 - t0) / columns;

  // rows 0..n-1: tasks; row n: idle/transition.
  const std::size_t rows = ts.size() + 1;
  std::vector<std::string> grid(rows,
                                std::string(static_cast<std::size_t>(columns), ' '));

  for (const auto& s : trace.segments()) {
    if (s.end <= t0 || s.begin >= t1) continue;
    const int c0 = std::max(
        0, static_cast<int>(std::floor((s.begin - t0) / dt)));
    const int c1 = std::min(
        columns, static_cast<int>(std::ceil((s.end - t0) / dt)));
    char mark = '.';
    std::size_t row = ts.size();
    if (s.kind == SegmentKind::kBusy) {
      row = static_cast<std::size_t>(s.task_id);
      const int tenth = std::clamp(
          static_cast<int>(std::lround(s.alpha * 10.0)), 1, 10);
      mark = tenth == 10 ? 'F' : static_cast<char>('0' + tenth);
    } else if (s.kind == SegmentKind::kTransition) {
      mark = 'x';
    }
    for (int c = c0; c < c1; ++c) {
      grid[row][static_cast<std::size_t>(c)] = mark;
    }
  }

  std::size_t label_w = 4;
  for (const auto& t : ts) label_w = std::max(label_w, t.name.size());
  for (std::size_t r = 0; r < rows; ++r) {
    const std::string label = r < ts.size() ? ts[r].name : "idle";
    out << label << std::string(label_w - label.size() + 1, ' ') << '|'
        << grid[r] << "|\n";
  }
  out << std::string(label_w + 1, ' ') << '^' << util::format_double(t0, 3)
      << "s ... " << util::format_double(t1, 3)
      << "s  (digits = alpha*10, F = full speed, x = transition)\n";
}

void write_trace_csv(const VectorTrace& trace, std::ostream& out) {
  util::CsvWriter csv(out);
  csv.row({"begin", "end", "kind", "task", "job", "alpha"});
  for (const auto& s : trace.segments()) {
    const char* kind = s.kind == SegmentKind::kBusy ? "busy"
                       : s.kind == SegmentKind::kIdle ? "idle"
                                                      : "transition";
    csv.row({util::format_double(s.begin, 9), util::format_double(s.end, 9),
             kind, std::to_string(s.task_id), std::to_string(s.job_index),
             util::format_double(s.alpha, 6)});
  }
}

}  // namespace dvs::sim
