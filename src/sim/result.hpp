// Outcome of one simulation run.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace dvs::sim {

/// Per-job record kept when SimOptions::record_jobs is set.
struct JobRecord {
  std::int32_t task_id = 0;
  std::int64_t index = 0;
  Time release = 0.0;
  Time abs_deadline = 0.0;
  Time completion = -1.0;  ///< < 0 when unfinished at simulation end
  Work wcet = 0.0;
  Work actual = 0.0;
  bool missed = false;
  bool skipped = false;  ///< shed by the degradation controller
};

struct SimResult {
  std::string governor;
  std::string processor;
  std::string workload;
  Time sim_length = 0.0;

  // Energy, normalized units (max power × seconds).
  double busy_energy = 0.0;
  double idle_energy = 0.0;
  double transition_energy = 0.0;
  [[nodiscard]] double total_energy() const noexcept {
    return busy_energy + idle_energy + transition_energy;
  }

  // Time breakdown; busy + idle + transition == sim_length.
  Time busy_time = 0.0;
  Time idle_time = 0.0;
  Time transition_time = 0.0;

  std::int64_t jobs_released = 0;
  std::int64_t jobs_completed = 0;
  std::int64_t deadline_misses = 0;
  /// Jobs whose deadline lies beyond the simulation end; not counted as
  /// misses even though they are unfinished.
  std::int64_t jobs_truncated = 0;

  /// Number of speed changes between consecutive execution segments.
  std::int64_t speed_switches = 0;

  /// Times a job's execution was interrupted by a higher-priority job
  /// (the previously running job was unfinished when another was
  /// dispatched).
  std::int64_t preemptions = 0;

  // Fault / containment accounting (all zero on fault-free runs).
  /// Jobs whose drawn demand exceeded their WCET budget.
  std::int64_t jobs_overrun = 0;
  /// Containment actions taken: demand clamps (kClampAtWcet) or
  /// max-speed escalations (kEscalateToMaxSpeed).
  std::int64_t overruns_contained = 0;
  /// Injected hardware faults observed: stuck-frequency events plus
  /// extra transition stalls (see cpu::ProcessorFaultModel).
  std::int64_t processor_faults = 0;

  // Graceful-degradation accounting (all zero — and `degradation` false —
  // unless SimOptions::degradation attached a controller; a disabled run
  // is bit-identical to the pre-degradation simulator).
  /// A DegradationController was attached to the run.
  bool degradation = false;
  /// Jobs shed by the controller (counted in jobs_released, never
  /// executed, never misses).
  std::int64_t jobs_skipped = 0;
  /// Normal <-> Degraded transitions.
  std::int64_t mode_changes = 0;
  /// Simulated seconds spent in Degraded mode.
  Time time_degraded = 0.0;
  /// (m,k) windows with fewer than m met outcomes — zero whenever skips
  /// are the only non-met outcomes (the skip-legality invariant).
  std::int64_t mk_violations = 0;
  /// Finalized deadline misses of hard (m == k) tasks.
  std::int64_t hard_misses = 0;

  // Migration accounting (all zero except under the global multiprocessor
  // backend, mp/global_sim.hpp; the uniprocessor engine never migrates).
  /// Times a partially executed job resumed on a different core.
  std::int64_t migrations = 0;
  /// Total migration surcharge folded into job demands, in microseconds
  /// of full-speed work (migrations × migration_cost × 1e6).
  double migration_overhead_us = 0.0;

  /// Work-weighted average executed speed in (0, 1].
  double average_speed = 1.0;

  std::vector<double> per_task_energy;

  /// Worst observed response time (completion - release) per task; 0 for
  /// tasks that completed no job.  Under fixed priorities this is the
  /// empirical counterpart of response-time analysis.
  std::vector<Time> worst_response;

  std::vector<JobRecord> jobs;  ///< only when record_jobs was requested

  /// One-line human-readable summary.
  [[nodiscard]] std::string summary() const;
};

std::ostream& operator<<(std::ostream& out, const SimResult& r);

}  // namespace dvs::sim
