#include "sim/result.hpp"

#include "util/strings.hpp"

namespace dvs::sim {

std::string SimResult::summary() const {
  std::string s = governor + ": E=" + util::format_double(total_energy(), 4) +
                  " (busy " + util::format_double(busy_energy, 4) + ", idle " +
                  util::format_double(idle_energy, 4) + ", switch " +
                  util::format_double(transition_energy, 4) + "), jobs " +
                  std::to_string(jobs_completed) + "/" +
                  std::to_string(jobs_released) + ", misses " +
                  std::to_string(deadline_misses) + ", switches " +
                  std::to_string(speed_switches) + ", preempts " +
                  std::to_string(preemptions) + ", avg speed " +
                  util::format_double(average_speed, 3);
  if (jobs_overrun > 0 || processor_faults > 0) {
    s += ", overruns " + std::to_string(jobs_overrun) + " (contained " +
         std::to_string(overruns_contained) + "), hw faults " +
         std::to_string(processor_faults);
  }
  if (migrations > 0) {
    s += ", migrations " + std::to_string(migrations) + " (overhead " +
         util::format_double(migration_overhead_us, 3) + " us)";
  }
  if (degradation) {
    s += ", degrade: " + std::to_string(jobs_skipped) + " skipped, " +
         std::to_string(mode_changes) + " mode changes, " +
         util::format_double(time_degraded, 3) + " s degraded, " +
         std::to_string(mk_violations) + " (m,k) violations, " +
         std::to_string(hard_misses) + " hard misses";
  }
  return s;
}

std::ostream& operator<<(std::ostream& out, const SimResult& r) {
  return out << r.summary();
}

}  // namespace dvs::sim
