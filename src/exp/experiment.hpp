// Experiment harness: governor comparisons and parameter sweeps.
//
// Protocol (matching the era's papers):
//  * every governor replays the identical workload (common random
//    numbers — guaranteed by the counter-based ExecutionTimeModel),
//  * energy is normalized against the noDVS run of the same case,
//  * each sweep point aggregates several independently generated cases
//    (task set + workload), reporting mean/min/max normalized energy.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cpu/processors.hpp"
#include "sim/simulator.hpp"
#include "task/task_set.hpp"
#include "task/workload.hpp"
#include "util/stats.hpp"

namespace dvs::exp {

/// One simulation case: a task set plus the workload it executes.
struct Case {
  task::TaskSet task_set;
  task::ExecutionTimeModelPtr workload;
};

/// Builds the case for sweep point `x`, replication `rep`; `seed` is
/// derived deterministically from the experiment seed, x and rep.
using CaseBuilder =
    std::function<Case(double x, std::size_t rep, std::uint64_t seed)>;

struct ExperimentConfig {
  /// Governors to compare (registry names); noDVS is always run as the
  /// normalization reference even when absent from this list.
  std::vector<std::string> governors;
  cpu::Processor processor;
  std::uint64_t seed = 42;
  std::size_t replications = 20;
  Time sim_length = -1.0;  ///< negative: per-task-set default
};

/// Result of one governor on one case.
struct GovernorOutcome {
  std::string governor;
  sim::SimResult result;
  double normalized_energy = 1.0;  ///< total energy / noDVS total energy
};

/// All governors on one case (the noDVS reference is outcomes.front()).
struct CaseOutcome {
  std::vector<GovernorOutcome> outcomes;
  [[nodiscard]] const GovernorOutcome& by_name(const std::string& name) const;
};

/// Aggregate of one sweep point.
struct PointResult {
  double x = 0.0;
  std::vector<util::RunningStats> normalized_energy;  ///< per governor
  std::vector<util::RunningStats> speed_switches;     ///< per governor
  std::int64_t total_misses = 0;  ///< across every governor and case
};

struct SweepOutcome {
  std::string x_label;
  std::vector<std::string> governors;
  std::vector<PointResult> points;
};

/// Run every configured governor (plus the noDVS reference) on one case.
[[nodiscard]] CaseOutcome run_case(const Case& c, const ExperimentConfig& cfg);

/// Full parameter sweep: for each x, `replications` cases, all governors.
[[nodiscard]] SweepOutcome run_sweep(const ExperimentConfig& cfg,
                                     const std::string& x_label,
                                     const std::vector<double>& xs,
                                     const CaseBuilder& builder);

/// Convenience: default experiment configuration (all registry governors,
/// ideal processor).
[[nodiscard]] ExperimentConfig default_config();

}  // namespace dvs::exp
