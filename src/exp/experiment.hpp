// Experiment harness: governor comparisons and parameter sweeps.
//
// Protocol (matching the era's papers):
//  * every governor replays the identical workload (common random
//    numbers — guaranteed by the counter-based ExecutionTimeModel),
//  * energy is normalized against the noDVS run of the same case,
//  * each sweep point aggregates several independently generated cases
//    (task set + workload), reporting mean/min/max normalized energy.
//
// Parallel execution (DESIGN.md §6): every (point, replication, governor)
// simulation is independent, so run_sweep fans them out over a fixed-size
// util::ThreadPool.  The result is nevertheless bit-for-bit identical to a
// serial run: case seeds are derived exactly as in the serial loop, cases
// are built in index order on the calling thread, every worker constructs
// its own fresh governor instance, and outcomes are reassembled and
// aggregated in deterministic index order.  `--jobs` therefore changes
// wall-clock time only, never a single output byte.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cpu/processors.hpp"
#include "degrade/degrade.hpp"
#include "mp/mp_sim.hpp"
#include "obs/audit.hpp"
#include "opt/yds.hpp"
#include "sim/simulator.hpp"
#include "task/task_set.hpp"
#include "task/workload.hpp"
#include "util/stats.hpp"

namespace dvs::exp {

/// One simulation case: a task set plus the workload it executes.
struct Case {
  task::TaskSet task_set;
  task::ExecutionTimeModelPtr workload;
};

/// Builds the case for sweep point `x`, replication `rep`; `seed` is
/// derived deterministically from the experiment seed, x and rep.
/// run_sweep invokes the builder once per case, in (point, replication)
/// index order, on the calling thread — it need not be thread-safe, but it
/// must be a pure function of its arguments for results to be independent
/// of the thread count.
using CaseBuilder =
    std::function<Case(double x, std::size_t rep, std::uint64_t seed)>;

struct ExperimentConfig {
  /// Governors to compare (registry names); noDVS is always run as the
  /// normalization reference even when absent from this list.
  std::vector<std::string> governors;
  cpu::Processor processor;
  std::uint64_t seed = 42;
  std::size_t replications = 20;
  Time sim_length = -1.0;  ///< negative: per-task-set default
  /// Worker threads for run_sweep / run_case: 0 = hardware_concurrency,
  /// 1 = legacy serial path.  Results are identical for every value.
  std::size_t n_threads = 1;
  /// Keep a JobRecord per job in every SimResult (memory per job).
  bool record_jobs = false;
  /// Retain every CaseOutcome in PointResult::cases (memory per case);
  /// used by the determinism tests to compare per-case results.
  bool keep_case_outcomes = false;

  /// Overrun containment applied to every simulation (fault experiments;
  /// see sim::OverrunPolicy).
  sim::OverrunPolicy containment = sim::OverrunPolicy::kNone;
  /// Wrap every governor in fault::CheckedGovernor, turning out-of-range
  /// speed requests into loud failures instead of silent clamps.
  bool check_governors = false;
  /// Rethrow the first simulation failure (deterministic: lowest
  /// (point, replication, governor) index) instead of recording it in
  /// SweepOutcome::failures.  Case-builder exceptions always propagate.
  bool fail_fast = false;
  /// Attach a fresh obs::DecisionAudit to every simulation and aggregate
  /// slack-estimate accuracy per governor (SweepOutcome::slack_accuracy,
  /// GovernorOutcome::slack).  Purely observational: the simulated results
  /// are bit-identical with and without auditing (DESIGN.md §8).
  bool audit_decisions = false;
  /// Override governor construction (null: core::make_governor).  Lets
  /// tests inject deliberately faulty governors; called concurrently, so
  /// the factory must be thread-safe.
  std::function<sim::GovernorPtr(const std::string&)> governor_factory;

  /// Multiprocessor axis (src/mp/, DESIGN.md §10).  0 (the default) is
  /// the uniprocessor simulator — the legacy path, byte-for-byte.  Any
  /// M >= 1 routes every simulation through the partitioned backend:
  /// each case is bin-packed onto M identical cores with `partitioner`,
  /// one fresh governor instance runs per core, and every core is one
  /// more independent unit of work for the thread pool (reassembled in
  /// core order, so output stays bit-identical for any n_threads).
  /// M = 1 is bit-identical to the uniprocessor path (the equivalence
  /// contract enforced by the differential tests).  A case whose
  /// partition is rejected becomes one SimFailure per governor naming
  /// the offending task.
  std::size_t n_cores = 0;
  mp::PartitionHeuristic partitioner = mp::PartitionHeuristic::kFirstFit;
  /// Which multiprocessor backend n_cores >= 1 routes through (ISSUE 10).
  /// kPartitioned is the bin-packing path above; kGlobal runs the single-
  /// queue global-EDF engine (mp/global_sim.hpp) instead — no partition
  /// to reject, ONE sequential engine run per (case, governor) as the
  /// thread-pool unit of work (the engine itself is deterministic and
  /// single-threaded, so sweeps stay bit-identical for every n_threads).
  /// Incompatible with `oracle`: the clairvoyant YDS bound decomposes
  /// over independent cores, which migration invalidates.  Ignored when
  /// n_cores == 0.
  mp::MpBackend mp_backend = mp::MpBackend::kPartitioned;
  /// Per-migration surcharge in seconds of full-speed work (global
  /// backend only; see mp::GlobalOptions::migration_cost).
  Time migration_cost = 0.0;

  /// Optimal-schedule oracle (src/opt/, ISSUE 6).  When set, every case
  /// additionally computes the clairvoyant YDS lower bounds
  /// (CaseOutcome::bounds) and every outcome carries its optimality gaps
  /// (GovernorOutcome::gap_continuous / gap_discrete, aggregated into
  /// PointResult and the CSV/report layers), and the "oracle" governor
  /// itself is appended to the roster — primed per case (per core in
  /// partitioned mode) before it simulates.  Off by default: the bound
  /// computation is O(jobs^2) per peel and default sweeps compare online
  /// policies only, so existing outputs stay byte-identical.
  bool oracle = false;

  /// Graceful degradation (src/degrade/, DESIGN.md §11).  When set, every
  /// simulation attaches a degrade::DegradationController with this
  /// configuration; skip/mode/violation counters flow into PointResult
  /// and the degradation-gated report/CSV columns.  Incompatible with
  /// `oracle` (the clairvoyant bounds assume every released job executes)
  /// — the combination throws.  Unset (the default) keeps every output
  /// byte-identical to pre-degradation builds.
  std::optional<degrade::DegradationConfig> degradation;
};

/// Result of one governor on one case.
struct GovernorOutcome {
  std::string governor;
  sim::SimResult result;
  double normalized_energy = 1.0;  ///< total energy / noDVS total energy
  /// Slack-estimate accuracy of this run; all-zero unless
  /// ExperimentConfig::audit_decisions was set.
  obs::SlackAccuracy slack;
  /// Non-empty when the simulation threw instead of completing; `result`
  /// and `normalized_energy` are then meaningless placeholders.
  std::string error;
  /// Per-core detail of a multiprocessor run (ExperimentConfig::n_cores
  /// >= 1): partition shape (a placeholder under the global backend) plus
  /// every core's SimResult and — under the global backend — the
  /// migration records.  `result` above is then mp->total.  Null on
  /// uniprocessor runs and on failures.
  std::shared_ptr<const mp::MpResult> mp;

  /// Optimality gaps: total energy divided by the case's oracle lower
  /// bounds (continuous YDS optimum / level-restricted optimum).  >= 1 up
  /// to idle- and transition-energy slack by construction; 0 when
  /// ExperimentConfig::oracle was off or the case's bound is unusable.
  double gap_continuous = 0.0;
  double gap_discrete = 0.0;

  [[nodiscard]] bool failed() const noexcept { return !error.empty(); }
};

/// All governors on one case (the noDVS reference is outcomes.front()).
struct CaseOutcome {
  std::vector<GovernorOutcome> outcomes;
  /// Clairvoyant YDS lower bounds of this case (summed over cores in
  /// partitioned mode); default-constructed (invalid) unless
  /// ExperimentConfig::oracle was set.
  opt::OracleBounds bounds;
  [[nodiscard]] const GovernorOutcome& by_name(const std::string& name) const;
};

/// Aggregate of one sweep point.
struct PointResult {
  double x = 0.0;
  std::vector<util::RunningStats> normalized_energy;  ///< per governor
  std::vector<util::RunningStats> speed_switches;     ///< per governor
  /// Per-governor deadline-miss ratio (misses / released) across cases.
  std::vector<util::RunningStats> miss_ratio;
  /// Per-governor optimality gaps across cases with a valid oracle bound;
  /// empty stats unless ExperimentConfig::oracle was set.
  std::vector<util::RunningStats> gap_continuous;
  std::vector<util::RunningStats> gap_discrete;
  /// Per-governor shed ratio (jobs_skipped / jobs_released) across cases;
  /// empty stats unless ExperimentConfig::degradation was set.
  std::vector<util::RunningStats> skip_ratio;
  /// Per-governor migration count across cases; empty stats unless the
  /// sweep ran the global backend (SweepOutcome::global_mp).
  std::vector<util::RunningStats> migrations;
  std::int64_t total_misses = 0;  ///< across every governor and case
  // Degradation aggregates across every governor and case (all zero
  // unless ExperimentConfig::degradation was set).
  std::int64_t total_skips = 0;
  std::int64_t total_mk_violations = 0;
  std::int64_t total_hard_misses = 0;
  // Migration aggregates across every governor and case (all zero unless
  // the sweep ran the global backend).
  std::int64_t total_migrations = 0;
  double total_migration_overhead_us = 0.0;
  /// Per-case outcomes, only when ExperimentConfig::keep_case_outcomes.
  std::vector<CaseOutcome> cases;
};

/// One simulation that threw instead of completing, attributed to its
/// exact (point, replication, governor) coordinates.  Failure isolation:
/// a failed non-reference simulation is excluded from its governor's
/// aggregates only; a failed noDVS reference excludes the whole case (no
/// normalization baseline).  The record list is deterministic — identical
/// for every thread count.
struct SimFailure {
  std::size_t point_index = 0;
  double x = 0.0;
  std::size_t replication = 0;
  std::string governor;
  std::string message;
};

struct SweepOutcome {
  std::string x_label;
  std::vector<std::string> governors;
  std::vector<PointResult> points;
  /// True when the sweep ran with ExperimentConfig::oracle: the roster
  /// ends with the oracle governor and the gap aggregates are populated.
  /// Gates the extra report tables and CSV columns, keeping non-oracle
  /// output byte-identical to pre-oracle builds.
  bool oracle = false;
  /// True when the sweep ran with ExperimentConfig::degradation: gates
  /// the degradation report/CSV columns the same way `oracle` gates the
  /// gap columns.
  bool degradation = false;
  /// True when the sweep ran the global multiprocessor backend
  /// (ExperimentConfig::mp_backend == kGlobal with n_cores >= 1): gates
  /// the migration report/CSV columns, keeping partitioned and
  /// uniprocessor output byte-identical to pre-global builds.
  bool global_mp = false;
  /// Failed simulations, in (point, replication, governor) order; empty on
  /// clean runs.  See ExperimentConfig::fail_fast for the throwing mode.
  std::vector<SimFailure> failures;

  /// Per-governor slack-estimate accuracy across the whole sweep (parallel
  /// to `governors`), merged in (point, replication, governor) index order
  /// so it is identical for every thread count.  All-zero unless
  /// ExperimentConfig::audit_decisions was set.
  std::vector<obs::SlackAccuracy> slack_accuracy;

  // Execution metadata (measured, NOT part of the deterministic result —
  // excluded from golden files and determinism comparisons).
  double wall_seconds = 0.0;     ///< host time spent inside run_sweep
  std::size_t simulations = 0;   ///< points x replications x governors
  std::size_t threads_used = 1;  ///< resolved worker count

  /// Simulations per second of host time (0 when unmeasured).
  [[nodiscard]] double throughput() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(simulations) / wall_seconds
               : 0.0;
  }
};

/// Run every configured governor (plus the noDVS reference) on one case.
/// With cfg.n_threads != 1 the governors run concurrently (each on its own
/// fresh instance); outcomes keep the configured order either way.
[[nodiscard]] CaseOutcome run_case(const Case& c, const ExperimentConfig& cfg);

/// Full parameter sweep: for each x, `replications` cases, all governors.
/// Dispatches one task per (point, replication, governor) onto a
/// util::ThreadPool when cfg.n_threads != 1; see the header comment for
/// why the outcome is independent of the thread count.
[[nodiscard]] SweepOutcome run_sweep(const ExperimentConfig& cfg,
                                     const std::string& x_label,
                                     const std::vector<double>& xs,
                                     const CaseBuilder& builder);

/// Convenience: default experiment configuration (all registry governors,
/// ideal processor).
[[nodiscard]] ExperimentConfig default_config();

}  // namespace dvs::exp
