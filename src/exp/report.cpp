#include "exp/report.hpp"

#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace dvs::exp {
namespace {

/// Any recorded governor decision at all?  (False on sweeps run without
/// ExperimentConfig::audit_decisions.)
bool sweep_was_audited(const SweepOutcome& sweep) {
  for (const auto& a : sweep.slack_accuracy) {
    if (a.decisions > 0) return true;
  }
  return false;
}

/// Sweep-wide audit totals (all governors merged).
obs::SlackAccuracy audit_totals(const SweepOutcome& sweep) {
  obs::SlackAccuracy total;
  for (const auto& a : sweep.slack_accuracy) total.merge(a);
  return total;
}

/// Empty-safe statistics accessors: gap stats can be empty for a point
/// whose cases all lacked a usable oracle bound.
double mean_or_zero(const util::RunningStats& s) {
  return s.empty() ? 0.0 : s.mean();
}
double min_or_zero(const util::RunningStats& s) {
  return s.empty() ? 0.0 : s.min();
}
double max_or_zero(const util::RunningStats& s) {
  return s.empty() ? 0.0 : s.max();
}

/// Per-governor gap statistics merged across every sweep point.
std::vector<util::RunningStats> sweep_gaps(
    const SweepOutcome& sweep,
    std::vector<util::RunningStats> PointResult::* member) {
  std::vector<util::RunningStats> merged(sweep.governors.size());
  for (const auto& p : sweep.points) {
    const auto& stats = p.*member;
    for (std::size_t g = 0; g < merged.size() && g < stats.size(); ++g) {
      merged[g].merge(stats[g]);
    }
  }
  return merged;
}

/// One mean-per-point table (the normalized-energy table and both gap
/// tables share this shape).
void print_point_table(std::ostream& out, const SweepOutcome& sweep,
                       std::vector<util::RunningStats> PointResult::* member) {
  util::TextTable table;
  std::vector<std::string> header{sweep.x_label};
  header.insert(header.end(), sweep.governors.begin(), sweep.governors.end());
  table.header(std::move(header));
  for (const auto& p : sweep.points) {
    std::vector<double> values;
    values.reserve((p.*member).size());
    for (const auto& s : p.*member) values.push_back(mean_or_zero(s));
    table.row_numeric(util::format_double(p.x, 3), values, 4);
  }
  table.render(out);
}

}  // namespace

void print_sweep(std::ostream& out, const SweepOutcome& sweep,
                 const std::string& title) {
  out << "== " << title << " ==\n";
  out << "   (normalized energy; 1.0 = noDVS; lower is better)\n";
  util::TextTable table;
  std::vector<std::string> header{sweep.x_label};
  header.insert(header.end(), sweep.governors.begin(), sweep.governors.end());
  table.header(std::move(header));
  std::int64_t misses = 0;
  for (const auto& p : sweep.points) {
    std::vector<double> values;
    values.reserve(p.normalized_energy.size());
    for (const auto& s : p.normalized_energy) values.push_back(s.mean());
    table.row_numeric(util::format_double(p.x, 3), values, 4);
    misses += p.total_misses;
  }
  table.render(out);
  out << "  deadline misses across all runs: " << misses
      << (misses == 0 ? "  [hard real-time invariant holds]" : "  [VIOLATION]")
      << "\n";
  if (sweep.oracle) {
    out << "  optimality gap vs the continuous YDS oracle "
           "(energy / bound; 1.0 = optimal):\n";
    print_point_table(out, sweep, &PointResult::gap_continuous);
    out << "  optimality gap vs the level-restricted (discrete) oracle:\n";
    print_point_table(out, sweep, &PointResult::gap_discrete);
  }
  if (sweep.degradation) {
    std::int64_t skips = 0;
    std::int64_t violations = 0;
    std::int64_t hard = 0;
    for (const auto& p : sweep.points) {
      skips += p.total_skips;
      violations += p.total_mk_violations;
      hard += p.total_hard_misses;
    }
    out << "  degradation: " << skips << " jobs shed | (m,k) violations "
        << violations
        << (violations == 0 ? "  [weakly-hard contract holds]"
                            : "  [VIOLATION]")
        << " | hard-task misses " << hard
        << (hard == 0 ? "  [hard tasks protected]" : "  [VIOLATION]") << "\n";
    out << "  shed ratio per governor (skipped / released):\n";
    print_point_table(out, sweep, &PointResult::skip_ratio);
  }
  if (sweep.global_mp) {
    std::int64_t migrations = 0;
    double overhead_us = 0.0;
    for (const auto& p : sweep.points) {
      migrations += p.total_migrations;
      overhead_us += p.total_migration_overhead_us;
    }
    out << "  global backend: " << migrations
        << " migrations | surcharge folded into demands "
        << util::format_double(overhead_us, 1) << " us\n";
    out << "  migrations per governor (mean per case):\n";
    print_point_table(out, sweep, &PointResult::migrations);
  }
  if (sweep_was_audited(sweep)) {
    out << "  slack-estimate audit (error = realized - estimated, seconds):\n";
    util::TextTable audit;
    audit.header({"governor", "decisions", "audited", "bias", "mae", "min",
                  "max"});
    for (std::size_t g = 0; g < sweep.governors.size(); ++g) {
      const obs::SlackAccuracy& a = sweep.slack_accuracy[g];
      const bool any = a.audited > 0;
      audit.row({sweep.governors[g], std::to_string(a.decisions),
                 std::to_string(a.audited), util::format_double(a.bias(), 4),
                 util::format_double(a.mae(), 4),
                 util::format_double(any ? a.min_error : 0.0, 4),
                 util::format_double(any ? a.max_error : 0.0, 4)});
    }
    audit.render(out);
  }
  if (!sweep.failures.empty()) {
    out << "  FAILED simulations: " << sweep.failures.size()
        << " (excluded from the aggregates above)\n";
    for (const auto& f : sweep.failures) {
      out << "    " << sweep.x_label << "=" << util::format_double(f.x, 3)
          << " rep=" << f.replication << " governor=" << f.governor << ": "
          << f.message << "\n";
    }
  }
  if (sweep.wall_seconds > 0.0 && sweep.simulations > 0) {
    out << "  wall-clock " << util::format_double(sweep.wall_seconds, 3)
        << " s | " << sweep.simulations << " simulations | "
        << util::format_double(sweep.throughput(), 1) << " sims/s | "
        << sweep.threads_used
        << (sweep.threads_used == 1 ? " thread" : " threads") << "\n";
  }
  out << "\n";
}

void print_case(std::ostream& out, const CaseOutcome& outcome,
                const std::string& title) {
  out << "== " << title << " ==\n";
  const bool bounded = outcome.bounds.valid();
  util::TextTable table;
  std::vector<std::string> header{"governor",  "energy",   "normalized",
                                  "avg speed", "switches", "misses"};
  if (bounded) {
    header.push_back("gap_c");
    header.push_back("gap_d");
  }
  table.header(std::move(header));
  for (const auto& g : outcome.outcomes) {
    std::vector<std::string> row{
        g.governor, util::format_double(g.result.total_energy(), 4),
        util::format_double(g.normalized_energy, 4),
        util::format_double(g.result.average_speed, 3),
        std::to_string(g.result.speed_switches),
        std::to_string(g.result.deadline_misses)};
    if (bounded) {
      row.push_back(util::format_double(g.gap_continuous, 4));
      row.push_back(util::format_double(g.gap_discrete, 4));
    }
    table.row(std::move(row));
  }
  table.render(out);
  if (bounded) {
    out << "  oracle bounds: continuous "
        << util::format_double(outcome.bounds.continuous_energy, 4)
        << " | discrete "
        << util::format_double(outcome.bounds.discrete_energy, 4)
        << " | peak YDS speed "
        << util::format_double(outcome.bounds.max_speed, 3) << " | "
        << outcome.bounds.n_jobs << " bound jobs\n";
  }
  out << '\n';
}

void write_sweep_csv(std::ostream& out, const SweepOutcome& sweep) {
  util::CsvWriter csv(out);
  std::vector<std::string> header{sweep.x_label};
  for (const auto& g : sweep.governors) header.push_back(g + "_mean");
  for (const auto& g : sweep.governors) header.push_back(g + "_min");
  for (const auto& g : sweep.governors) header.push_back(g + "_max");
  // Gap columns exist only on oracle sweeps, appended AFTER every
  // pre-existing column so non-oracle CSVs stay byte-identical and
  // oracle CSVs remain a superset existing parsers still read.
  if (sweep.oracle) {
    for (const auto& g : sweep.governors) header.push_back(g + "_gapc_mean");
    for (const auto& g : sweep.governors) header.push_back(g + "_gapc_min");
    for (const auto& g : sweep.governors) header.push_back(g + "_gapc_max");
    for (const auto& g : sweep.governors) header.push_back(g + "_gapd_mean");
  }
  // Degradation columns follow the same append-only contract as the gap
  // columns (non-degradation CSVs stay byte-identical).
  if (sweep.degradation) {
    for (const auto& g : sweep.governors) header.push_back(g + "_skip_mean");
    header.push_back("total_skips");
    header.push_back("mk_violations");
    header.push_back("hard_misses");
  }
  // Migration columns, gated on the global backend: the same append-only
  // contract again (partitioned / uniprocessor CSVs stay byte-identical).
  if (sweep.global_mp) {
    for (const auto& g : sweep.governors) {
      header.push_back(g + "_migrations_mean");
    }
    header.push_back("total_migrations");
    header.push_back("migration_overhead_us");
  }
  csv.row(header);
  for (const auto& p : sweep.points) {
    std::vector<double> row{p.x};
    for (const auto& s : p.normalized_energy) row.push_back(s.mean());
    for (const auto& s : p.normalized_energy) row.push_back(s.min());
    for (const auto& s : p.normalized_energy) row.push_back(s.max());
    if (sweep.oracle) {
      for (const auto& s : p.gap_continuous) row.push_back(mean_or_zero(s));
      for (const auto& s : p.gap_continuous) row.push_back(min_or_zero(s));
      for (const auto& s : p.gap_continuous) row.push_back(max_or_zero(s));
      for (const auto& s : p.gap_discrete) row.push_back(mean_or_zero(s));
    }
    if (sweep.degradation) {
      for (const auto& s : p.skip_ratio) row.push_back(mean_or_zero(s));
      row.push_back(static_cast<double>(p.total_skips));
      row.push_back(static_cast<double>(p.total_mk_violations));
      row.push_back(static_cast<double>(p.total_hard_misses));
    }
    if (sweep.global_mp) {
      for (const auto& s : p.migrations) row.push_back(mean_or_zero(s));
      row.push_back(static_cast<double>(p.total_migrations));
      row.push_back(p.total_migration_overhead_us);
    }
    csv.row_numeric(row, 6);
  }
}

void write_sweep_meta_csv(std::ostream& out, const SweepOutcome& sweep) {
  const obs::SlackAccuracy total = audit_totals(sweep);
  // Sweep-wide floor of the continuous gap: the single number the oracle
  // CI gate reads — it must never dip below 1 (minus idle/transition
  // slack) on an idle-free processor.
  util::RunningStats all_gaps;
  for (const auto& s : sweep_gaps(sweep, &PointResult::gap_continuous)) {
    all_gaps.merge(s);
  }
  util::CsvWriter csv(out);
  csv.row({"wall_seconds", "simulations", "sims_per_second", "threads",
           "failures", "audit_decisions", "audit_audited", "audit_bias_s",
           "audit_mae_s", "oracle", "min_gap_continuous"});
  csv.row({util::format_double(sweep.wall_seconds, 6),
           std::to_string(sweep.simulations),
           util::format_double(sweep.throughput(), 2),
           std::to_string(sweep.threads_used),
           std::to_string(sweep.failures.size()),
           std::to_string(total.decisions), std::to_string(total.audited),
           util::format_double(total.bias(), 6),
           util::format_double(total.mae(), 6),
           sweep.oracle ? "1" : "0",
           util::format_double(min_or_zero(all_gaps), 6)});
}

void write_sweep_metrics_csv(std::ostream& out, const SweepOutcome& sweep) {
  const auto gaps_c = sweep_gaps(sweep, &PointResult::gap_continuous);
  const auto gaps_d = sweep_gaps(sweep, &PointResult::gap_discrete);
  util::CsvWriter csv(out);
  csv.row({"governor", "decisions", "audited", "bias_s", "mae_s",
           "min_error_s", "max_error_s", "gapc_mean", "gapc_min", "gapc_max",
           "gapd_mean"});
  for (std::size_t g = 0; g < sweep.governors.size(); ++g) {
    const obs::SlackAccuracy a =
        g < sweep.slack_accuracy.size() ? sweep.slack_accuracy[g]
                                        : obs::SlackAccuracy{};
    const bool any = a.audited > 0;
    csv.row({sweep.governors[g], std::to_string(a.decisions),
             std::to_string(a.audited), util::format_double(a.bias(), 6),
             util::format_double(a.mae(), 6),
             util::format_double(any ? a.min_error : 0.0, 6),
             util::format_double(any ? a.max_error : 0.0, 6),
             util::format_double(mean_or_zero(gaps_c[g]), 6),
             util::format_double(min_or_zero(gaps_c[g]), 6),
             util::format_double(max_or_zero(gaps_c[g]), 6),
             util::format_double(mean_or_zero(gaps_d[g]), 6)});
  }
}

}  // namespace dvs::exp
