#include "exp/report.hpp"

#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace dvs::exp {
namespace {

/// Any recorded governor decision at all?  (False on sweeps run without
/// ExperimentConfig::audit_decisions.)
bool sweep_was_audited(const SweepOutcome& sweep) {
  for (const auto& a : sweep.slack_accuracy) {
    if (a.decisions > 0) return true;
  }
  return false;
}

/// Sweep-wide audit totals (all governors merged).
obs::SlackAccuracy audit_totals(const SweepOutcome& sweep) {
  obs::SlackAccuracy total;
  for (const auto& a : sweep.slack_accuracy) total.merge(a);
  return total;
}

}  // namespace

void print_sweep(std::ostream& out, const SweepOutcome& sweep,
                 const std::string& title) {
  out << "== " << title << " ==\n";
  out << "   (normalized energy; 1.0 = noDVS; lower is better)\n";
  util::TextTable table;
  std::vector<std::string> header{sweep.x_label};
  header.insert(header.end(), sweep.governors.begin(), sweep.governors.end());
  table.header(std::move(header));
  std::int64_t misses = 0;
  for (const auto& p : sweep.points) {
    std::vector<double> values;
    values.reserve(p.normalized_energy.size());
    for (const auto& s : p.normalized_energy) values.push_back(s.mean());
    table.row_numeric(util::format_double(p.x, 3), values, 4);
    misses += p.total_misses;
  }
  table.render(out);
  out << "  deadline misses across all runs: " << misses
      << (misses == 0 ? "  [hard real-time invariant holds]" : "  [VIOLATION]")
      << "\n";
  if (sweep_was_audited(sweep)) {
    out << "  slack-estimate audit (error = realized - estimated, seconds):\n";
    util::TextTable audit;
    audit.header({"governor", "decisions", "audited", "bias", "mae", "min",
                  "max"});
    for (std::size_t g = 0; g < sweep.governors.size(); ++g) {
      const obs::SlackAccuracy& a = sweep.slack_accuracy[g];
      const bool any = a.audited > 0;
      audit.row({sweep.governors[g], std::to_string(a.decisions),
                 std::to_string(a.audited), util::format_double(a.bias(), 4),
                 util::format_double(a.mae(), 4),
                 util::format_double(any ? a.min_error : 0.0, 4),
                 util::format_double(any ? a.max_error : 0.0, 4)});
    }
    audit.render(out);
  }
  if (!sweep.failures.empty()) {
    out << "  FAILED simulations: " << sweep.failures.size()
        << " (excluded from the aggregates above)\n";
    for (const auto& f : sweep.failures) {
      out << "    " << sweep.x_label << "=" << util::format_double(f.x, 3)
          << " rep=" << f.replication << " governor=" << f.governor << ": "
          << f.message << "\n";
    }
  }
  if (sweep.wall_seconds > 0.0 && sweep.simulations > 0) {
    out << "  wall-clock " << util::format_double(sweep.wall_seconds, 3)
        << " s | " << sweep.simulations << " simulations | "
        << util::format_double(sweep.throughput(), 1) << " sims/s | "
        << sweep.threads_used
        << (sweep.threads_used == 1 ? " thread" : " threads") << "\n";
  }
  out << "\n";
}

void print_case(std::ostream& out, const CaseOutcome& outcome,
                const std::string& title) {
  out << "== " << title << " ==\n";
  util::TextTable table;
  table.header({"governor", "energy", "normalized", "avg speed", "switches",
                "misses"});
  for (const auto& g : outcome.outcomes) {
    table.row({g.governor, util::format_double(g.result.total_energy(), 4),
               util::format_double(g.normalized_energy, 4),
               util::format_double(g.result.average_speed, 3),
               std::to_string(g.result.speed_switches),
               std::to_string(g.result.deadline_misses)});
  }
  table.render(out);
  out << '\n';
}

void write_sweep_csv(std::ostream& out, const SweepOutcome& sweep) {
  util::CsvWriter csv(out);
  std::vector<std::string> header{sweep.x_label};
  for (const auto& g : sweep.governors) header.push_back(g + "_mean");
  for (const auto& g : sweep.governors) header.push_back(g + "_min");
  for (const auto& g : sweep.governors) header.push_back(g + "_max");
  csv.row(header);
  for (const auto& p : sweep.points) {
    std::vector<double> row{p.x};
    for (const auto& s : p.normalized_energy) row.push_back(s.mean());
    for (const auto& s : p.normalized_energy) row.push_back(s.min());
    for (const auto& s : p.normalized_energy) row.push_back(s.max());
    csv.row_numeric(row, 6);
  }
}

void write_sweep_meta_csv(std::ostream& out, const SweepOutcome& sweep) {
  const obs::SlackAccuracy total = audit_totals(sweep);
  util::CsvWriter csv(out);
  csv.row({"wall_seconds", "simulations", "sims_per_second", "threads",
           "failures", "audit_decisions", "audit_audited", "audit_bias_s",
           "audit_mae_s"});
  csv.row({util::format_double(sweep.wall_seconds, 6),
           std::to_string(sweep.simulations),
           util::format_double(sweep.throughput(), 2),
           std::to_string(sweep.threads_used),
           std::to_string(sweep.failures.size()),
           std::to_string(total.decisions), std::to_string(total.audited),
           util::format_double(total.bias(), 6),
           util::format_double(total.mae(), 6)});
}

void write_sweep_metrics_csv(std::ostream& out, const SweepOutcome& sweep) {
  util::CsvWriter csv(out);
  csv.row({"governor", "decisions", "audited", "bias_s", "mae_s",
           "min_error_s", "max_error_s"});
  for (std::size_t g = 0; g < sweep.governors.size(); ++g) {
    const obs::SlackAccuracy a =
        g < sweep.slack_accuracy.size() ? sweep.slack_accuracy[g]
                                        : obs::SlackAccuracy{};
    const bool any = a.audited > 0;
    csv.row({sweep.governors[g], std::to_string(a.decisions),
             std::to_string(a.audited), util::format_double(a.bias(), 6),
             util::format_double(a.mae(), 6),
             util::format_double(any ? a.min_error : 0.0, 6),
             util::format_double(any ? a.max_error : 0.0, 6)});
  }
}

}  // namespace dvs::exp
