// Paper-style report emission for sweeps and case comparisons.
#pragma once

#include <ostream>
#include <string>

#include "exp/experiment.hpp"

namespace dvs::exp {

/// Print a sweep as an aligned table: one row per x, one column per
/// governor (mean normalized energy), plus a trailing miss-count line.
void print_sweep(std::ostream& out, const SweepOutcome& sweep,
                 const std::string& title);

/// Print one case comparison: per governor energy, normalized energy,
/// switches, misses, average speed.
void print_case(std::ostream& out, const CaseOutcome& outcome,
                const std::string& title);

/// Write the sweep to CSV: x, then one column per governor (mean), then
/// one stddev column per governor.
void write_sweep_csv(std::ostream& out, const SweepOutcome& sweep);

}  // namespace dvs::exp
