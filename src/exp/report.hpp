// Paper-style report emission for sweeps and case comparisons.
#pragma once

#include <ostream>
#include <string>

#include "exp/experiment.hpp"

namespace dvs::exp {

/// Print a sweep as an aligned table: one row per x, one column per
/// governor (mean normalized energy), plus a trailing miss-count line.
void print_sweep(std::ostream& out, const SweepOutcome& sweep,
                 const std::string& title);

/// Print one case comparison: per governor energy, normalized energy,
/// switches, misses, average speed.
void print_case(std::ostream& out, const CaseOutcome& outcome,
                const std::string& title);

/// Write the sweep to CSV: x, then one column per governor (mean), then
/// one stddev column per governor.  Contains only deterministic data — the
/// output is byte-identical for every thread count.
void write_sweep_csv(std::ostream& out, const SweepOutcome& sweep);

/// Write the sweep's execution metadata (wall-clock seconds, simulation
/// count, simulations/s, worker threads) as a one-row CSV, followed by the
/// sweep-wide slack-audit totals (decisions, audited, bias, MAE — all zero
/// when auditing was off).  Kept separate from write_sweep_csv so the data
/// CSV stays reproducible while the timing stays measurable.
void write_sweep_meta_csv(std::ostream& out, const SweepOutcome& sweep);

/// Write per-governor slack-estimate accuracy (one row per governor:
/// decisions, audited, bias, MAE, min/max error) — the observability
/// companion of the data CSV.  Deterministic for every thread count; rows
/// are all-zero when the sweep ran without ExperimentConfig::
/// audit_decisions.
void write_sweep_metrics_csv(std::ostream& out, const SweepOutcome& sweep);

}  // namespace dvs::exp
