#include "exp/experiment.hpp"

#include "core/registry.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace dvs::exp {

const GovernorOutcome& CaseOutcome::by_name(const std::string& name) const {
  for (const auto& o : outcomes) {
    if (util::to_lower(o.governor) == util::to_lower(name)) return o;
  }
  DVS_EXPECT(false, "governor not part of this case: " + name);
  return outcomes.front();  // unreachable
}

CaseOutcome run_case(const Case& c, const ExperimentConfig& cfg) {
  DVS_EXPECT(c.workload != nullptr, "case has no workload model");
  sim::SimOptions opts;
  opts.length = cfg.sim_length;

  CaseOutcome out;

  // The normalization reference always runs first.
  {
    auto ref = core::make_governor("noDVS");
    GovernorOutcome g;
    g.governor = ref->name();
    g.result = sim::simulate(c.task_set, *c.workload, cfg.processor, *ref,
                             opts);
    g.normalized_energy = 1.0;
    out.outcomes.push_back(std::move(g));
  }
  const double ref_energy = out.outcomes.front().result.total_energy();

  for (const auto& name : cfg.governors) {
    if (util::to_lower(name) == "nodvs") continue;  // already ran
    auto governor = core::make_governor(name);
    GovernorOutcome g;
    g.governor = governor->name();
    g.result = sim::simulate(c.task_set, *c.workload, cfg.processor,
                             *governor, opts);
    g.normalized_energy =
        ref_energy > 0.0 ? g.result.total_energy() / ref_energy : 1.0;
    out.outcomes.push_back(std::move(g));
  }
  return out;
}

SweepOutcome run_sweep(const ExperimentConfig& cfg, const std::string& x_label,
                       const std::vector<double>& xs,
                       const CaseBuilder& builder) {
  DVS_EXPECT(!xs.empty(), "sweep needs at least one point");
  DVS_EXPECT(cfg.replications >= 1, "sweep needs at least one replication");

  SweepOutcome sweep;
  sweep.x_label = x_label;
  sweep.governors.push_back("noDVS");
  for (const auto& name : cfg.governors) {
    if (util::to_lower(name) != "nodvs") sweep.governors.push_back(name);
  }

  for (std::size_t xi = 0; xi < xs.size(); ++xi) {
    PointResult point;
    point.x = xs[xi];
    point.normalized_energy.assign(sweep.governors.size(), {});
    point.speed_switches.assign(sweep.governors.size(), {});

    for (std::size_t rep = 0; rep < cfg.replications; ++rep) {
      const std::uint64_t case_seed =
          util::hash_u64(cfg.seed, static_cast<std::uint64_t>(xi) + 1,
                         static_cast<std::uint64_t>(rep) + 1);
      const Case c = builder(xs[xi], rep, case_seed);
      const CaseOutcome outcome = run_case(c, cfg);
      DVS_ENSURE(outcome.outcomes.size() == sweep.governors.size(),
                 "sweep governor list mismatch");
      for (std::size_t g = 0; g < outcome.outcomes.size(); ++g) {
        point.normalized_energy[g].add(
            outcome.outcomes[g].normalized_energy);
        point.speed_switches[g].add(static_cast<double>(
            outcome.outcomes[g].result.speed_switches));
        point.total_misses += outcome.outcomes[g].result.deadline_misses;
      }
    }
    sweep.points.push_back(std::move(point));
  }
  return sweep;
}

ExperimentConfig default_config() {
  ExperimentConfig cfg;
  cfg.governors = core::governor_names();
  cfg.processor = cpu::ideal_processor();
  return cfg;
}

}  // namespace dvs::exp
