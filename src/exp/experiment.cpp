#include "exp/experiment.hpp"

#include <chrono>
#include <future>
#include <utility>

#include "core/registry.hpp"
#include "fault/checked_governor.hpp"
#include "opt/oracle.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace dvs::exp {
namespace {

sim::SimOptions sim_options(const ExperimentConfig& cfg) {
  sim::SimOptions opts;
  opts.length = cfg.sim_length;
  opts.record_jobs = cfg.record_jobs;
  opts.containment = cfg.containment;
  if (cfg.degradation.has_value()) opts.degradation = &*cfg.degradation;
  return opts;
}

/// The clairvoyant oracle plans a full schedule of every released job up
/// front; a controller shedding jobs underneath it would invalidate both
/// the primed schedule and the bound denominators, so the combination is
/// rejected loudly instead of reporting meaningless gaps.
void reject_oracle_degradation(const ExperimentConfig& cfg) {
  DVS_EXPECT(!(cfg.oracle && cfg.degradation.has_value()),
             "oracle mode is incompatible with degradation: the clairvoyant "
             "bounds assume every released job executes");
}

[[nodiscard]] bool global_mode(const ExperimentConfig& cfg) {
  return cfg.n_cores >= 1 && cfg.mp_backend == mp::MpBackend::kGlobal;
}

/// The clairvoyant YDS bound decomposes over independent cores; job-level
/// migration breaks that decomposition, so no valid lower bound exists
/// for the global backend and the combination is rejected loudly.
void reject_oracle_global(const ExperimentConfig& cfg) {
  DVS_EXPECT(!(cfg.oracle && global_mode(cfg)),
             "oracle mode is incompatible with the global backend: the YDS "
             "bound decomposes over independent cores, which migration "
             "invalidates");
}

/// The governor roster of a run: the noDVS reference first, then the
/// configured governors (minus any duplicate noDVS entry), then — with
/// ExperimentConfig::oracle — the clairvoyant oracle as the closing
/// column.
std::vector<std::string> governor_roster(const ExperimentConfig& cfg) {
  std::vector<std::string> roster{"noDVS"};
  for (const auto& name : cfg.governors) {
    const std::string key = util::to_lower(name);
    if (key != "nodvs" && !(cfg.oracle && key == "oracle")) {
      roster.push_back(name);
    }
  }
  if (cfg.oracle) roster.push_back("oracle");
  return roster;
}

/// Fresh governor instance for one simulation (constructed on the calling
/// worker — governors are stateful, sharing one across cases would leak
/// state between simulations).  Clairvoyant governors (the oracle) are
/// primed with exactly the (task set, workload, horizon) triple the
/// simulator is about to run, before any wrapping.
sim::GovernorPtr fresh_governor(const std::string& name,
                                const ExperimentConfig& cfg,
                                const task::TaskSet& ts,
                                const task::ExecutionTimeModel& workload,
                                Time horizon) {
  auto governor =
      cfg.governor_factory ? cfg.governor_factory(name)
                           : core::make_governor(name);
  DVS_EXPECT(governor != nullptr,
             "governor factory returned null for '" + name + "'");
  if (auto* clairvoyant = dynamic_cast<opt::ClairvoyantGovernor*>(
          governor.get())) {
    clairvoyant->prime(ts, workload, cfg.processor, horizon);
  }
  if (cfg.check_governors) governor = fault::checked(std::move(governor));
  return governor;
}

/// One uniprocessor simulation of `name` on `c`.  Normalization happens
/// later, once the noDVS reference of the same case is available.
GovernorOutcome simulate_governor(const std::string& name, const Case& c,
                                  const ExperimentConfig& cfg) {
  auto governor =
      fresh_governor(name, cfg, c.task_set, *c.workload, cfg.sim_length);
  GovernorOutcome g;
  g.governor = governor->name();
  sim::SimOptions opts = sim_options(cfg);
  // Per-simulation audit, summarized before the worker returns: workers
  // never share observability state, so auditing cannot perturb the
  // deterministic fan-out.
  obs::DecisionAudit audit;
  if (cfg.audit_decisions) opts.audit = &audit;
  g.result =
      sim::simulate(c.task_set, *c.workload, cfg.processor, *governor, opts);
  if (cfg.audit_decisions) g.slack = audit.accuracy();
  return g;
}

/// One global-EDF platform simulation of `name` on `c` (ExperimentConfig
/// ::mp_backend == kGlobal): the whole M-core engine run is ONE unit of
/// work — the engine is sequential and deterministic by contract
/// (mp/global_sim.hpp), so sweep outputs cannot depend on n_threads.
GovernorOutcome simulate_governor_global(const std::string& name,
                                         const Case& c,
                                         const ExperimentConfig& cfg) {
  auto governor =
      fresh_governor(name, cfg, c.task_set, *c.workload, cfg.sim_length);
  GovernorOutcome g;
  g.governor = governor->name();
  mp::GlobalOptions opts;
  opts.length = cfg.sim_length;
  opts.n_cores = cfg.n_cores;
  opts.migration_cost = cfg.migration_cost;
  opts.record_jobs = cfg.record_jobs;
  opts.containment = cfg.containment;
  if (cfg.degradation.has_value()) opts.degradation = &*cfg.degradation;
  obs::DecisionAudit audit;
  if (cfg.audit_decisions) opts.audit = &audit;
  mp::GlobalResult r = mp::simulate_global(c.task_set, *c.workload,
                                           cfg.processor, *governor, opts);
  auto detail = std::make_shared<dvs::mp::MpResult>();
  detail->backend = mp::MpBackend::kGlobal;
  detail->partition.n_cores = cfg.n_cores;
  detail->partition.core_of.assign(c.task_set.size(), -1);
  detail->partition.tasks_of_core.resize(cfg.n_cores);
  detail->partition.core_utilization.assign(cfg.n_cores, 0.0);
  detail->total = std::move(r.total);
  detail->cores = std::move(r.cores);
  detail->migrations = std::move(r.migrations);
  g.result = detail->total;
  g.governor = g.result.governor.empty() ? name : g.result.governor;
  g.mp = std::move(detail);
  if (cfg.audit_decisions) g.slack = audit.accuracy();
  return g;
}

// --- Partitioned multiprocessor mode (ExperimentConfig::n_cores >= 1) ---

/// One core's share of one (case, governor) simulation: the independent
/// unit of work of the mp fan-out (DESIGN.md §10).
struct CoreSlot {
  sim::SimResult result;
  obs::SlackAccuracy slack;
  std::string error;
  [[nodiscard]] bool failed() const noexcept { return !error.empty(); }
};

/// Simulate governor `name` on core `c` of an already-planned case.
/// Empty (powered-down) cores return a zeroed slot without instantiating
/// a governor.
CoreSlot simulate_core(const std::string& name, const mp::MpPlan& plan,
                       std::size_t c, const ExperimentConfig& cfg) {
  CoreSlot slot;
  if (plan.core_sets[c].empty()) return slot;
  auto governor = fresh_governor(name, cfg, plan.core_sets[c],
                                 *plan.core_workloads[c], plan.length);
  sim::SimOptions opts = sim_options(cfg);
  opts.length = plan.length;  // uniform across cores (full-set default)
  obs::DecisionAudit audit;
  if (cfg.audit_decisions) opts.audit = &audit;
  slot.result = sim::simulate(plan.core_sets[c], *plan.core_workloads[c],
                              cfg.processor, *governor, opts);
  if (cfg.audit_decisions) slot.slack = audit.accuracy();
  return slot;
}

/// Reassemble one (case, governor) outcome from its per-core slots, in
/// core order.  A rejected partition or any failed core marks the whole
/// outcome failed (failure isolation at the (case, governor) grain).
GovernorOutcome assemble_governor_mp(const std::string& name,
                                     const task::TaskSet& ts,
                                     const mp::MpPlan& plan,
                                     std::vector<CoreSlot> slots) {
  GovernorOutcome g;
  g.governor = name;
  if (!plan.feasible()) {
    g.error = plan.partition.error;
    return g;
  }
  std::vector<sim::SimResult> cores;
  cores.reserve(slots.size());
  for (std::size_t c = 0; c < slots.size(); ++c) {
    if (slots[c].failed()) {
      g.error = "core " + std::to_string(c) + ": " + slots[c].error;
      return g;
    }
    g.slack.merge(slots[c].slack);
    cores.push_back(std::move(slots[c].result));
  }
  auto detail = std::make_shared<dvs::mp::MpResult>(
      dvs::mp::assemble_mp(ts, plan, std::move(cores)));
  g.result = detail->total;
  g.governor = g.result.governor.empty() ? name : g.result.governor;
  g.mp = std::move(detail);
  return g;
}

/// Clairvoyant lower bounds of one uniprocessor case.
opt::OracleBounds case_bounds(const Case& c, const ExperimentConfig& cfg) {
  return opt::oracle_bounds(c.task_set, *c.workload, cfg.processor,
                            cfg.sim_length);
}

/// Clairvoyant lower bounds of one partitioned case: per-core bounds
/// summed over the populated cores (cores are independent uniprocessors,
/// so the sum is a valid whole-system floor), feasible only when every
/// populated core is.  A rejected partition yields an invalid bound.
opt::OracleBounds mp_case_bounds(const mp::MpPlan& plan,
                                 const ExperimentConfig& cfg) {
  opt::OracleBounds total;
  if (!plan.feasible()) return total;
  total.feasible = true;
  for (std::size_t c = 0; c < plan.core_sets.size(); ++c) {
    if (plan.core_sets[c].empty()) continue;
    const opt::OracleBounds b = opt::oracle_bounds(
        plan.core_sets[c], *plan.core_workloads[c], cfg.processor,
        plan.length);
    total.continuous_energy += b.continuous_energy;
    total.discrete_energy += b.discrete_energy;
    total.max_speed = std::max(total.max_speed, b.max_speed);
    total.n_jobs += b.n_jobs;
    total.feasible = total.feasible && b.feasible;
  }
  return total;
}

/// Fill in normalized_energy against outcomes.front() (the noDVS run),
/// exactly as the legacy serial loop did, plus — when the case carries a
/// usable oracle bound — each outcome's optimality gaps.  Failed outcomes
/// keep their placeholder values; a failed reference leaves the whole
/// case unnormalized (there is no baseline to divide by).
void normalize_case(CaseOutcome& out) {
  DVS_ENSURE(!out.outcomes.empty(), "case without outcomes");
  const bool bounded = out.bounds.valid();
  for (auto& g : out.outcomes) {
    if (g.failed() || !bounded) continue;
    const double e = g.result.total_energy();
    g.gap_continuous = e / out.bounds.continuous_energy;
    g.gap_discrete =
        out.bounds.discrete_energy > 0.0 ? e / out.bounds.discrete_energy
                                         : 0.0;
  }
  if (out.outcomes.front().failed()) return;
  out.outcomes.front().normalized_energy = 1.0;
  const double ref_energy = out.outcomes.front().result.total_energy();
  for (std::size_t i = 1; i < out.outcomes.size(); ++i) {
    auto& g = out.outcomes[i];
    if (g.failed()) continue;
    g.normalized_energy =
        ref_energy > 0.0 ? g.result.total_energy() / ref_energy : 1.0;
  }
}

/// Per-case deadline-miss ratio of one outcome.
double miss_ratio_of(const sim::SimResult& r) {
  return r.jobs_released > 0
             ? static_cast<double>(r.deadline_misses) /
                   static_cast<double>(r.jobs_released)
             : 0.0;
}

/// Run `jobs(i)` for i in [0, n): serially when `workers` <= 1, otherwise
/// fanned out over a pool.  Futures are drained in index order, so the
/// first failing index's exception propagates deterministically.
template <typename Fn>
void dispatch_indexed(std::size_t workers, std::size_t n, const Fn& job) {
  if (workers <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) job(i);
    return;
  }
  util::ThreadPool pool(std::min(workers, n));
  std::vector<std::future<void>> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pending.push_back(pool.submit([&job, i] { job(i); }));
  }
  for (auto& f : pending) f.get();
}

}  // namespace

const GovernorOutcome& CaseOutcome::by_name(const std::string& name) const {
  for (const auto& o : outcomes) {
    if (util::to_lower(o.governor) == util::to_lower(name)) return o;
  }
  DVS_EXPECT(false, "governor not part of this case: " + name);
  return outcomes.front();  // unreachable
}

CaseOutcome run_case(const Case& c, const ExperimentConfig& cfg) {
  DVS_EXPECT(c.workload != nullptr, "case has no workload model");
  reject_oracle_degradation(cfg);
  reject_oracle_global(cfg);
  const std::vector<std::string> roster = governor_roster(cfg);

  CaseOutcome out;
  out.outcomes.resize(roster.size());
  const std::size_t workers = util::ThreadPool::resolve_threads(cfg.n_threads);
  if (global_mode(cfg)) {
    // Global backend: one whole-platform engine run per governor is the
    // unit of work (never split across threads; the engine is sequential
    // by determinism contract).
    dispatch_indexed(workers, roster.size(), [&](std::size_t g) {
      out.outcomes[g] = simulate_governor_global(roster[g], c, cfg);
    });
  } else if (cfg.n_cores >= 1) {
    // Partitioned mode: every (governor, core) pair is one unit of work.
    // run_case keeps its legacy loud-failure semantics — an infeasible
    // partition (or a throwing core simulation) propagates to the caller.
    const mp::MpPlan plan = mp::plan_mp(c.task_set, c.workload, cfg.n_cores,
                                        cfg.partitioner, cfg.sim_length);
    DVS_EXPECT(plan.feasible(), plan.partition.error);
    const std::size_t n_units = cfg.n_cores;
    std::vector<CoreSlot> slots(roster.size() * n_units);
    dispatch_indexed(workers, slots.size(), [&](std::size_t i) {
      slots[i] = simulate_core(roster[i / n_units], plan, i % n_units, cfg);
    });
    for (std::size_t g = 0; g < roster.size(); ++g) {
      std::vector<CoreSlot> unit(
          std::make_move_iterator(slots.begin() +
                                  static_cast<std::ptrdiff_t>(g * n_units)),
          std::make_move_iterator(
              slots.begin() + static_cast<std::ptrdiff_t>((g + 1) * n_units)));
      out.outcomes[g] =
          assemble_governor_mp(roster[g], c.task_set, plan, std::move(unit));
    }
    if (cfg.oracle) out.bounds = mp_case_bounds(plan, cfg);
  } else {
    dispatch_indexed(workers, roster.size(), [&](std::size_t g) {
      out.outcomes[g] = simulate_governor(roster[g], c, cfg);
    });
    if (cfg.oracle) out.bounds = case_bounds(c, cfg);
  }
  normalize_case(out);
  return out;
}

SweepOutcome run_sweep(const ExperimentConfig& cfg, const std::string& x_label,
                       const std::vector<double>& xs,
                       const CaseBuilder& builder) {
  DVS_EXPECT(!xs.empty(), "sweep needs at least one point");
  DVS_EXPECT(cfg.replications >= 1, "sweep needs at least one replication");
  reject_oracle_degradation(cfg);
  reject_oracle_global(cfg);
  const auto started = std::chrono::steady_clock::now();

  SweepOutcome sweep;
  sweep.x_label = x_label;
  sweep.oracle = cfg.oracle;
  sweep.degradation = cfg.degradation.has_value();
  sweep.global_mp = global_mode(cfg);
  sweep.governors = governor_roster(cfg);
  const std::size_t n_govs = sweep.governors.size();
  sweep.slack_accuracy.assign(n_govs, {});
  const std::size_t n_cases = xs.size() * cfg.replications;

  // Build every case up front, in (point, replication) index order, on the
  // calling thread: seeds are derived exactly as in the legacy serial loop
  // and the builder is never invoked concurrently.
  std::vector<Case> cases;
  cases.reserve(n_cases);
  for (std::size_t xi = 0; xi < xs.size(); ++xi) {
    for (std::size_t rep = 0; rep < cfg.replications; ++rep) {
      const std::uint64_t case_seed =
          util::hash_u64(cfg.seed, static_cast<std::uint64_t>(xi) + 1,
                         static_cast<std::uint64_t>(rep) + 1);
      cases.push_back(builder(xs[xi], rep, case_seed));
    }
  }

  // Partitioned mode: bin-pack every case up front (still serial, still
  // on the calling thread — partitioning is part of case construction).
  // An infeasible partition is not an error here; it is attributed as one
  // SimFailure per governor during reassembly, unless fail_fast asks for
  // the legacy loud behaviour.
  // The global backend bypasses partitioning entirely: there is no plan
  // to reject, and the unit of work is the whole platform engine run —
  // n_units stays 1 (the engine is sequential by determinism contract).
  const bool mp_mode = cfg.n_cores >= 1 && !sweep.global_mp;
  const std::size_t n_units = mp_mode ? cfg.n_cores : 1;
  std::vector<mp::MpPlan> plans;
  if (mp_mode) {
    plans.reserve(n_cases);
    for (const Case& c : cases) {
      plans.push_back(mp::plan_mp(c.task_set, c.workload, cfg.n_cores,
                                  cfg.partitioner, cfg.sim_length));
      if (cfg.fail_fast) {
        DVS_EXPECT(plans.back().feasible(), plans.back().partition.error);
      }
    }
  }

  // Clairvoyant lower bounds, one per case (ExperimentConfig::oracle).
  // The YDS peeling is O(jobs^2) per peel, so the bounds are fanned out
  // over the pool exactly like the simulations; the per-case slot array
  // keeps the result independent of the execution order.
  std::vector<opt::OracleBounds> bounds(cfg.oracle ? n_cases : 0);
  if (cfg.oracle) {
    const std::size_t workers =
        util::ThreadPool::resolve_threads(cfg.n_threads);
    dispatch_indexed(workers, bounds.size(), [&](std::size_t ci) {
      bounds[ci] = mp_mode ? mp_case_bounds(plans[ci], cfg)
                           : case_bounds(cases[ci], cfg);
    });
  }

  // One independent simulation per (case, governor) — or, in partitioned
  // mode, per (case, governor, core); results land in a flat slot array,
  // so execution order is irrelevant to the outcome.
  const std::size_t n_sims = n_cases * n_govs * n_units;
  std::vector<GovernorOutcome> sims(n_cases * n_govs);
  const std::size_t workers = util::ThreadPool::resolve_threads(cfg.n_threads);
  if (mp_mode) {
    std::vector<CoreSlot> slots(n_sims);
    dispatch_indexed(workers, n_sims, [&](std::size_t i) {
      const std::size_t ci = i / (n_govs * n_units);
      if (!plans[ci].feasible()) return;  // attributed at reassembly
      const std::size_t g = (i / n_units) % n_govs;
      try {
        slots[i] = simulate_core(sweep.governors[g], plans[ci], i % n_units,
                                 cfg);
      } catch (const std::exception& e) {
        // Failure isolation at the core grain: the error is parked in its
        // slot and surfaces as a (case, governor) failure at reassembly.
        if (cfg.fail_fast) throw;
        slots[i].error = e.what();
      }
    });
    // Deterministic per-(case, governor) reassembly, cores in core order.
    for (std::size_t ci = 0; ci < n_cases; ++ci) {
      for (std::size_t g = 0; g < n_govs; ++g) {
        const std::size_t base = (ci * n_govs + g) * n_units;
        std::vector<CoreSlot> unit(
            std::make_move_iterator(slots.begin() +
                                    static_cast<std::ptrdiff_t>(base)),
            std::make_move_iterator(
                slots.begin() + static_cast<std::ptrdiff_t>(base + n_units)));
        sims[ci * n_govs + g] = assemble_governor_mp(
            sweep.governors[g], cases[ci].task_set, plans[ci],
            std::move(unit));
      }
    }
  } else {
    dispatch_indexed(workers, n_sims, [&](std::size_t i) {
      const std::string& gov = sweep.governors[i % n_govs];
      try {
        sims[i] = sweep.global_mp
                      ? simulate_governor_global(gov, cases[i / n_govs], cfg)
                      : simulate_governor(gov, cases[i / n_govs], cfg);
      } catch (const std::exception& e) {
        // Failure isolation: one crashing simulation must not take down the
        // other (n_sims - 1) jobs.  The error is parked in its slot and
        // attributed during the deterministic reassembly below.
        if (cfg.fail_fast) throw;
        sims[i].governor = gov;
        sims[i].error = e.what();
      }
    });
  }

  // Deterministic reassembly: normalize and aggregate in the same
  // (point, replication, governor) order as the legacy serial loop, so
  // every RunningStats receives identical values in identical order.
  for (std::size_t xi = 0; xi < xs.size(); ++xi) {
    PointResult point;
    point.x = xs[xi];
    point.normalized_energy.assign(n_govs, {});
    point.speed_switches.assign(n_govs, {});
    point.miss_ratio.assign(n_govs, {});
    point.gap_continuous.assign(n_govs, {});
    point.gap_discrete.assign(n_govs, {});
    point.skip_ratio.assign(n_govs, {});
    point.migrations.assign(n_govs, {});

    for (std::size_t rep = 0; rep < cfg.replications; ++rep) {
      const std::size_t ci = xi * cfg.replications + rep;
      CaseOutcome outcome;
      if (cfg.oracle) outcome.bounds = bounds[ci];
      outcome.outcomes.reserve(n_govs);
      for (std::size_t g = 0; g < n_govs; ++g) {
        outcome.outcomes.push_back(std::move(sims[ci * n_govs + g]));
      }
      normalize_case(outcome);
      DVS_ENSURE(outcome.outcomes.size() == n_govs,
                 "sweep governor list mismatch");
      const bool ref_failed = outcome.outcomes.front().failed();
      for (std::size_t g = 0; g < n_govs; ++g) {
        const GovernorOutcome& o = outcome.outcomes[g];
        if (o.failed()) {
          sweep.failures.push_back(
              {xi, xs[xi], rep, sweep.governors[g], o.error});
          continue;
        }
        // A failed noDVS reference leaves no normalization baseline: the
        // whole case is excluded from the aggregates (failures above are
        // still recorded), matching what a statistician would drop.
        if (ref_failed) continue;
        sweep.slack_accuracy[g].merge(o.slack);
        point.normalized_energy[g].add(o.normalized_energy);
        point.speed_switches[g].add(
            static_cast<double>(o.result.speed_switches));
        point.miss_ratio[g].add(miss_ratio_of(o.result));
        if (outcome.bounds.valid()) {
          point.gap_continuous[g].add(o.gap_continuous);
          point.gap_discrete[g].add(o.gap_discrete);
        }
        if (sweep.degradation) {
          point.skip_ratio[g].add(
              o.result.jobs_released > 0
                  ? static_cast<double>(o.result.jobs_skipped) /
                        static_cast<double>(o.result.jobs_released)
                  : 0.0);
          point.total_skips += o.result.jobs_skipped;
          point.total_mk_violations += o.result.mk_violations;
          point.total_hard_misses += o.result.hard_misses;
        }
        if (sweep.global_mp) {
          point.migrations[g].add(static_cast<double>(o.result.migrations));
          point.total_migrations += o.result.migrations;
          point.total_migration_overhead_us += o.result.migration_overhead_us;
        }
        point.total_misses += o.result.deadline_misses;
      }
      if (cfg.keep_case_outcomes) point.cases.push_back(std::move(outcome));
    }
    sweep.points.push_back(std::move(point));
  }

  sweep.simulations = n_sims;
  sweep.threads_used = workers < 1 ? 1 : workers;
  sweep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return sweep;
}

ExperimentConfig default_config() {
  ExperimentConfig cfg;
  cfg.governors = core::governor_names();
  cfg.processor = cpu::ideal_processor();
  return cfg;
}

}  // namespace dvs::exp
