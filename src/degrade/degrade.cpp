#include "degrade/degrade.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dvs::degrade {

const char* mode_name(Mode m) noexcept {
  return m == Mode::kNormal ? "normal" : "degraded";
}

void DegradationConfig::validate() const {
  DVS_EXPECT(backlog_threshold > 0.0,
             "degradation: backlog_threshold must be positive");
  DVS_EXPECT(enter_pressure >= 1,
             "degradation: enter_pressure must be at least 1");
  DVS_EXPECT(pressure_window > 0.0,
             "degradation: pressure_window must be positive");
  DVS_EXPECT(recovery_clean_jobs >= 1,
             "degradation: recovery_clean_jobs must be at least 1");
  DVS_EXPECT(recovery_quiet >= 0.0,
             "degradation: recovery_quiet must be non-negative");
  DVS_EXPECT(min_degraded_dwell >= 0.0,
             "degradation: min_degraded_dwell must be non-negative");
}

DegradationController::DegradationController(const task::TaskSet& ts,
                                             const DegradationConfig& cfg)
    : cfg_(cfg) {
  cfg_.validate();
  DVS_EXPECT(!ts.empty(), "degradation: empty task set");
  ts.validate();
  tasks_.reserve(ts.size());
  for (const auto& t : ts) {
    TaskState st;
    st.m = t.mk_m;
    st.k = t.mk_k;
    st.hard = t.is_hard();
    st.ring.assign(static_cast<std::size_t>(st.k), 0);
    tasks_.push_back(std::move(st));
  }
  pressure_times_.assign(static_cast<std::size_t>(cfg_.enter_pressure), 0.0);
}

DegradationController::TaskState& DegradationController::state_of(
    std::int32_t task_id) {
  DVS_EXPECT(task_id >= 0 &&
                 static_cast<std::size_t>(task_id) < tasks_.size(),
             "degradation: unknown task id");
  return tasks_[static_cast<std::size_t>(task_id)];
}

void DegradationController::note_outcome(TaskState& st, bool met) {
  // Slide the k-window: evict the oldest entry once full, admit the new
  // outcome, then check the freshly completed window position.
  const auto h = static_cast<std::size_t>(st.head);
  if (st.filled == st.k) {
    st.met_in_ring -= st.ring[h];
  } else {
    ++st.filled;
  }
  st.ring[h] = met ? 1 : 0;
  st.met_in_ring += st.ring[h];
  st.head = (st.head + 1) % st.k;
  if (st.filled == st.k && st.met_in_ring < st.m) ++mk_violations_;
}

bool DegradationController::skip_legal(const TaskState& st) const {
  if (st.hard) return false;
  // The window ending at the candidate skip holds the last k-1 finalized
  // outcomes plus the skip itself (a non-met).  Legal iff that window
  // still carries >= m met outcomes; jobs older than the task's history
  // count as met so cold starts are permissive.
  std::int32_t met_recent = st.met_in_ring;
  std::int32_t absent = 0;
  if (st.filled == st.k) {
    // Ring is full: the entry at head is the k-th most recent — outside
    // the k-1 window.
    met_recent -= st.ring[static_cast<std::size_t>(st.head)];
  } else {
    absent = (st.k - 1) - st.filled;
  }
  return met_recent + absent >= st.m;
}

void DegradationController::pressure(Time now) {
  last_pressure_ = now;
  clean_streak_ = 0;
  if (mode_ != Mode::kNormal) return;
  const auto n = static_cast<std::int32_t>(pressure_times_.size());
  pressure_times_[static_cast<std::size_t>(pressure_head_)] = now;
  pressure_head_ = (pressure_head_ + 1) % n;
  if (pressure_filled_ < n) ++pressure_filled_;
  if (pressure_filled_ < n) return;
  // With the ring full, head points at the oldest of the last
  // enter_pressure events; trip when they all fit the window.
  const Time oldest = pressure_times_[static_cast<std::size_t>(pressure_head_)];
  if (now - oldest <= cfg_.pressure_window + kTimeEps) {
    mode_ = Mode::kDegraded;
    degraded_since_ = now;
    ++mode_changes_;
  }
}

void DegradationController::maybe_recover(Time now) {
  if (mode_ != Mode::kDegraded) return;
  if (clean_streak_ < cfg_.recovery_clean_jobs) return;
  if (last_pressure_ >= 0.0 && now - last_pressure_ < cfg_.recovery_quiet - kTimeEps) {
    return;
  }
  if (now - degraded_since_ < cfg_.min_degraded_dwell - kTimeEps) return;
  mode_ = Mode::kNormal;
  time_degraded_ += now - degraded_since_;
  ++mode_changes_;
  clean_streak_ = 0;
  pressure_filled_ = 0;  // a fresh burst is needed to degrade again
}

void DegradationController::on_job_outcome(std::int32_t task_id, bool met,
                                           Time now) {
  TaskState& st = state_of(task_id);
  note_outcome(st, met);
  if (met) {
    ++clean_streak_;
    maybe_recover(now);
  } else {
    if (st.hard) ++hard_misses_;
    pressure(now);
  }
}

void DegradationController::on_overrun(Time now) { pressure(now); }

void DegradationController::on_backlog(double density, Time now) {
  if (density > cfg_.backlog_threshold) pressure(now);
}

bool DegradationController::should_skip(std::int32_t task_id, Work wcet,
                                        Time abs_deadline, Time /*now*/) {
  if (!cfg_.skipping || mode_ != Mode::kDegraded) return false;
  TaskState& st = state_of(task_id);
  if (!skip_legal(st)) return false;
  // The skip is a (legal) non-met outcome, final immediately; its demand
  // stays visible to the pressure probe until the deadline passes.
  note_outcome(st, /*met=*/false);
  st.shadow_deadline = abs_deadline;
  st.shadow_wcet = wcet;
  ++jobs_skipped_;
  return true;
}

double DegradationController::shadow_density(Time now) const {
  double d = 0.0;
  for (const auto& st : tasks_) {
    if (st.shadow_deadline > now + kTimeEps) {
      d += st.shadow_wcet / (st.shadow_deadline - now);
    }
  }
  return d;
}

void DegradationController::finish(Time end) {
  if (mode_ == Mode::kDegraded) {
    time_degraded_ += std::max(0.0, end - degraded_since_);
    degraded_since_ = end;  // idempotent under repeated finish()
  }
}

task::TaskSet with_firmness(const task::TaskSet& ts, std::int32_t m,
                            std::int32_t k) {
  task::TaskSet out(ts.name());
  for (auto t : ts) {
    t.mk_m = m;
    t.mk_k = k;
    out.add(std::move(t));
  }
  return out;
}

task::TaskSet with_task_firmness(const task::TaskSet& ts, std::size_t index,
                                 std::int32_t m, std::int32_t k) {
  DVS_EXPECT(index < ts.size(), "with_task_firmness: index out of range");
  task::TaskSet out(ts.name());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    auto t = ts[i];
    if (i == index) {
      t.mk_m = m;
      t.mk_k = k;
    }
    out.add(std::move(t));
  }
  return out;
}

}  // namespace dvs::degrade
