// Graceful degradation: (m,k)-firm skip-aware overload management.
//
// The DATE 2002 slack-stealing argument assumes every released job runs to
// completion; sustained overload (WCET overrun storms, U > 1 task sets)
// breaks that assumption and the only containment answers so far — clamp
// or escalate-to-max — burn energy and still cannot save an infeasible
// set.  This layer adds the weakly-hard alternative (Hamdaoui &
// Ramanathan's (m,k)-firm model; Koren & Shasha's skippable periodic
// tasks): tasks may declare that only m of any k consecutive jobs must
// meet their deadlines, and a DegradationController sheds the permitted
// jobs — and only those — while the system is under observed pressure.
//
// Mode machine (DESIGN.md §11):
//
//   Normal --[>= enter_pressure events within pressure_window]--> Degraded
//   Degraded --[clean streak + quiet time + minimum dwell]-------> Normal
//
// Pressure events are observability-honest: a finalized deadline miss, a
// WCET overrun observed at job completion, or an offered-demand density
// above backlog_threshold at a release instant.  The controller never
// sees a job's actual demand before it completes (the same information
// contract governors live under).
//
// Skip-by-construction: a job is skipped only when its task's sliding
// (m,k) window proves the skip legal — at least m of the k-job window
// ending at the skipped job are already met (absent history counts as
// met, so cold-start windows are permissive).  Hard tasks (m == k) and
// exhausted windows are never skipped, so the controller cannot cause an
// (m,k) violation; violations it reports were caused by genuine misses.
//
// Skipped jobs never enter the ready queue, so every slack kernel
// (lpSEH/DRA/lppsEDF/...) sees the reclaimed demand removed from its
// demand bound automatically — no governor changes, no new information
// channel.  While a skipped job's deadline has not yet passed, the
// controller charges its WCET density to a *shadow* term included in the
// release-time pressure probe: sustained overload keeps generating
// pressure even while skips mask the symptom, which is what prevents
// premature recovery and mode flapping.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "task/task_set.hpp"
#include "util/time.hpp"

namespace dvs::degrade {

enum class Mode : std::uint8_t { kNormal, kDegraded };

[[nodiscard]] const char* mode_name(Mode m) noexcept;

/// Tuning knobs of the degradation controller.  The defaults are sized
/// for the repo's canonical 10–160 ms period range; all thresholds are
/// validated at controller construction.
struct DegradationConfig {
  /// When false the controller runs in monitor-only mode: it observes
  /// pressure, tracks (m,k) windows and counts violations, but never
  /// skips a job — the simulation is provably unperturbed.  This is the
  /// honest "degradation off" arm for A/B comparisons.
  bool skipping = true;

  /// Offered-demand density (ready backlog + shadow skipped demand + the
  /// releasing job, each as remaining-WCET / time-to-deadline) above
  /// which a release instant counts as a pressure event.  1.0 is the
  /// uniprocessor capacity line.
  double backlog_threshold = 1.0;

  /// Number of pressure events within pressure_window needed to enter
  /// Degraded mode.  1 reacts on the first sign of trouble.
  std::int32_t enter_pressure = 2;

  /// Sliding window (seconds) over which pressure events accumulate.
  Time pressure_window = 0.25;

  /// Hysteresis: consecutive finalized deadline-met outcomes required
  /// before recovery is considered.
  std::int32_t recovery_clean_jobs = 8;

  /// Hysteresis: no pressure event for this long before recovery.
  Time recovery_quiet = 0.2;

  /// Hysteresis: minimum stay in Degraded mode.
  Time min_degraded_dwell = 0.05;

  /// Throws ContractError naming the offending field.
  void validate() const;
};

/// The Normal/Degraded mode machine plus per-task (m,k) window
/// bookkeeping.  Driven entirely by the simulation engine; every input is
/// a deterministic function of the simulated run, so a controller-bearing
/// simulation is as reproducible as a plain one.  All storage is
/// allocated at construction — the per-event paths never allocate.
class DegradationController {
 public:
  DegradationController(const task::TaskSet& ts, const DegradationConfig& cfg);

  // --- engine-driven signals (chronological order per task id) ---------

  /// Finalized outcome of a released (non-skipped) job: `met` is true iff
  /// the job completed by its deadline.  Called at the next release of
  /// the same task (the outcome is final there because D <= T) or at the
  /// end-of-run flush.  A miss is a pressure event; a met outcome feeds
  /// the recovery streak.
  void on_job_outcome(std::int32_t task_id, bool met, Time now);

  /// A WCET overrun observed at job completion (pressure event).
  void on_overrun(Time now);

  /// Offered-demand density probe at a release instant; above
  /// backlog_threshold it is a pressure event.
  void on_backlog(double density, Time now);

  /// Decide whether the job about to be released may be shed.  True only
  /// in Degraded mode with skipping enabled and a window-proven-legal
  /// skip; the skip is then recorded (window entry + shadow demand) and
  /// the caller must not enqueue the job.
  [[nodiscard]] bool should_skip(std::int32_t task_id, Work wcet,
                                 Time abs_deadline, Time now);

  /// Shadow demand density: sum of wcet / (deadline - now) over skipped
  /// jobs whose deadline has not yet passed (at most one per task since
  /// D <= T).  Include this in the release-time density probe.
  [[nodiscard]] double shadow_density(Time now) const;

  /// Close the books at the end of the run (accrues the tail of an open
  /// Degraded interval into time_degraded()).
  void finish(Time end);

  // --- observers --------------------------------------------------------
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] std::int64_t jobs_skipped() const noexcept {
    return jobs_skipped_;
  }
  [[nodiscard]] std::int64_t mode_changes() const noexcept {
    return mode_changes_;
  }
  [[nodiscard]] Time time_degraded() const noexcept { return time_degraded_; }
  /// Full (m,k) windows with fewer than m met outcomes, counted per
  /// sliding window position.  Zero whenever skips are the only non-met
  /// outcomes (the skip-legality invariant).
  [[nodiscard]] std::int64_t mk_violations() const noexcept {
    return mk_violations_;
  }
  /// Finalized deadline misses of hard (m == k) tasks.
  [[nodiscard]] std::int64_t hard_misses() const noexcept {
    return hard_misses_;
  }

 private:
  struct TaskState {
    std::int32_t m = 1;
    std::int32_t k = 1;
    bool hard = true;
    // Ring of the task's last k finalized outcomes (1 = met).
    std::vector<std::uint8_t> ring;
    std::int32_t head = 0;      ///< next write position == oldest when full
    std::int32_t filled = 0;    ///< entries recorded, saturates at k
    std::int32_t met_in_ring = 0;
    // Shadow demand of the task's most recent skipped job.
    Time shadow_deadline = -1.0;
    Work shadow_wcet = 0.0;
  };

  void note_outcome(TaskState& st, bool met);
  [[nodiscard]] bool skip_legal(const TaskState& st) const;
  void pressure(Time now);
  void maybe_recover(Time now);
  [[nodiscard]] TaskState& state_of(std::int32_t task_id);

  DegradationConfig cfg_;
  std::vector<TaskState> tasks_;
  Mode mode_ = Mode::kNormal;
  Time degraded_since_ = 0.0;
  Time last_pressure_ = -1.0;
  std::int32_t clean_streak_ = 0;
  // Ring of the timestamps of the last enter_pressure pressure events.
  std::vector<Time> pressure_times_;
  std::int32_t pressure_head_ = 0;
  std::int32_t pressure_filled_ = 0;

  std::int64_t jobs_skipped_ = 0;
  std::int64_t mode_changes_ = 0;
  Time time_degraded_ = 0.0;
  std::int64_t mk_violations_ = 0;
  std::int64_t hard_misses_ = 0;
};

/// Copy of `ts` with every task's firmness set to (m, k).
[[nodiscard]] task::TaskSet with_firmness(const task::TaskSet& ts,
                                          std::int32_t m, std::int32_t k);

/// Copy of `ts` with task `index`'s firmness set to (m, k).
[[nodiscard]] task::TaskSet with_task_firmness(const task::TaskSet& ts,
                                               std::size_t index,
                                               std::int32_t m, std::int32_t k);

}  // namespace dvs::degrade
