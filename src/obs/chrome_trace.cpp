#include "obs/chrome_trace.hpp"

#include <cstdio>

#include "obs/json_writer.hpp"
#include "util/error.hpp"

namespace dvs::obs {
namespace {

/// Microsecond timestamp with sub-μs residue preserved (trace viewers
/// accept fractional ts); %.3f keeps nanosecond resolution.
std::string us(Time seconds) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e6);
  return buf;
}

std::string num(double v, int precision = 6) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& out) : out_(out) {}

  /// Emit one already-JSON-formatted event object body.
  void event(const std::string& body) {
    out_ << (first_ ? "\n  {" : ",\n  {") << body << "}";
    first_ = false;
  }

  /// Emit one complete event object (already braced) — the form the
  /// JsonWriter-built metadata events use.
  void object(const std::string& obj) {
    out_ << (first_ ? "\n  " : ",\n  ") << obj;
    first_ = false;
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

/// Metadata events go through the escape-correct streaming JsonWriter
/// (obs/json_writer.hpp); only the per-segment hot path below keeps its
/// hand-tuned string building.
void write_metadata(EventWriter& w, const task::TaskSet& ts, int pid,
                    const std::string& governor) {
  std::string buf;
  JsonWriter j(buf);
  auto emit = [&] {
    w.object(buf);
    buf.clear();
    j.reset();
  };
  j.begin_object().kv("ph", "M").kv("name", "process_name").kv("pid", pid);
  j.key("args").begin_object().kv("name", governor).end_object().end_object();
  emit();
  j.begin_object().kv("ph", "M").kv("name", "process_sort_index");
  j.kv("pid", pid);
  j.key("args").begin_object().kv("sort_index", pid).end_object();
  j.end_object();
  emit();
  for (const auto& t : ts) {
    j.begin_object().kv("ph", "M").kv("name", "thread_name").kv("pid", pid);
    j.kv("tid", t.id);
    j.key("args").begin_object().kv("name", t.name).end_object().end_object();
    emit();
  }
  j.begin_object().kv("ph", "M").kv("name", "thread_name").kv("pid", pid);
  j.kv("tid", ts.size());
  j.key("args").begin_object().kv("name", "cpu (idle / transition)");
  j.end_object().end_object();
  emit();
}

void write_segments(EventWriter& w, const task::TaskSet& ts, int pid,
                    const sim::VectorTrace& trace) {
  const std::string cpu_tid = std::to_string(ts.size());
  for (const auto& s : trace.segments()) {
    const std::string common =
        ",\"pid\":" + std::to_string(pid) + ",\"ts\":" + us(s.begin) +
        ",\"dur\":" + us(s.end - s.begin);
    switch (s.kind) {
      case sim::SegmentKind::kBusy: {
        DVS_EXPECT(s.task_id >= 0 &&
                       static_cast<std::size_t>(s.task_id) < ts.size(),
                   "trace segment references a task outside the task set");
        const auto& t = ts[static_cast<std::size_t>(s.task_id)];
        w.event("\"ph\":\"X\",\"cat\":\"busy\",\"name\":\"" +
                json_escape(t.name) + " #" + std::to_string(s.job_index) +
                "\",\"tid\":" + std::to_string(s.task_id) + common +
                ",\"args\":{\"alpha\":" + num(s.alpha) +
                ",\"job\":" + std::to_string(s.job_index) + "}");
        break;
      }
      case sim::SegmentKind::kIdle:
        w.event("\"ph\":\"X\",\"cat\":\"idle\",\"name\":\"idle\",\"tid\":" +
                cpu_tid + common + ",\"args\":{}");
        break;
      case sim::SegmentKind::kTransition:
        w.event(
            "\"ph\":\"X\",\"cat\":\"transition\",\"name\":\"transition\","
            "\"tid\":" +
            cpu_tid + common + ",\"args\":{}");
        break;
    }
  }
}

/// The staircase speed profile: one counter sample at every segment
/// boundary (busy -> its alpha, idle/transition -> 0), plus a closing
/// zero so the track spans the whole run.
void write_speed_counter(EventWriter& w, int pid,
                         const sim::VectorTrace& trace, Time sim_length) {
  for (const auto& s : trace.segments()) {
    const double alpha = s.kind == sim::SegmentKind::kBusy ? s.alpha : 0.0;
    w.event("\"ph\":\"C\",\"name\":\"speed\",\"pid\":" + std::to_string(pid) +
            ",\"ts\":" + us(s.begin) + ",\"args\":{\"alpha\":" + num(alpha) +
            "}");
  }
  if (!trace.segments().empty()) {
    w.event("\"ph\":\"C\",\"name\":\"speed\",\"pid\":" + std::to_string(pid) +
            ",\"ts\":" + us(sim_length) + ",\"args\":{\"alpha\":0}");
  }
}

void write_miss_instants(EventWriter& w, int pid,
                         const sim::VectorTrace& trace) {
  for (const auto& e : trace.events()) {
    if (e.kind != sim::TraceEvent::Kind::kMiss) continue;
    w.event("\"ph\":\"i\",\"s\":\"t\",\"name\":\"deadline miss\",\"pid\":" +
            std::to_string(pid) + ",\"tid\":" + std::to_string(e.task_id) +
            ",\"ts\":" + us(e.at) + ",\"args\":{\"job\":" +
            std::to_string(e.job_index) + "}");
  }
}

/// Degradation markers: skipped jobs on their task row, Normal/Degraded
/// transitions on the cpu row (process-scoped so they stand out).
void write_degradation_instants(EventWriter& w, const task::TaskSet& ts,
                                int pid, const sim::VectorTrace& trace) {
  const std::string cpu_tid = std::to_string(ts.size());
  for (const auto& e : trace.events()) {
    if (e.kind == sim::TraceEvent::Kind::kSkip) {
      w.event("\"ph\":\"i\",\"s\":\"t\",\"name\":\"skip\",\"pid\":" +
              std::to_string(pid) + ",\"tid\":" + std::to_string(e.task_id) +
              ",\"ts\":" + us(e.at) + ",\"args\":{\"job\":" +
              std::to_string(e.job_index) + "}");
    } else if (e.kind == sim::TraceEvent::Kind::kModeChange) {
      const char* mode = e.job_index == 1 ? "degraded" : "normal";
      w.event("\"ph\":\"i\",\"s\":\"p\",\"name\":\"mode: " +
              std::string(mode) + "\",\"pid\":" + std::to_string(pid) +
              ",\"tid\":" + cpu_tid + ",\"ts\":" + us(e.at) +
              ",\"args\":{\"mode\":\"" + mode + "\"}");
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& out, const task::TaskSet& ts,
                        const std::vector<GovernorTrace>& traces,
                        Time sim_length) {
  std::vector<TraceProcess> processes;
  processes.reserve(traces.size());
  for (const auto& g : traces) {
    processes.push_back({g.governor, &ts, g.trace});
  }
  write_chrome_trace(out, ts.name(), processes, sim_length);
}

void write_chrome_trace(std::ostream& out, const std::string& set_name,
                        const std::vector<TraceProcess>& processes,
                        Time sim_length,
                        const std::vector<TraceFlowEvent>& flows) {
  DVS_EXPECT(!processes.empty(),
             "chrome trace export needs at least one trace");
  DVS_EXPECT(sim_length > 0.0, "chrome trace export needs a positive length");
  for (const auto& p : processes) {
    DVS_EXPECT(p.task_set != nullptr,
               "chrome trace export: null task set for '" + p.label + "'");
    DVS_EXPECT(p.trace != nullptr,
               "chrome trace export: null trace for '" + p.label + "'");
  }
  for (const auto& f : flows) {
    DVS_EXPECT(f.from_process < processes.size() &&
                   f.to_process < processes.size(),
               "chrome trace export: flow references a process out of range");
  }

  out << "{\n\"traceEvents\": [";
  EventWriter w(out);
  for (std::size_t i = 0; i < processes.size(); ++i) {
    const int pid = static_cast<int>(i) + 1;
    write_metadata(w, *processes[i].task_set, pid, processes[i].label);
    write_segments(w, *processes[i].task_set, pid, *processes[i].trace);
    write_speed_counter(w, pid, *processes[i].trace, sim_length);
    write_miss_instants(w, pid, *processes[i].trace);
    write_degradation_instants(w, *processes[i].task_set, pid,
                               *processes[i].trace);
  }
  // Flow arrows last, with sequential ids: one 's' on the source pid and
  // one binding-point-enclosing 'f' on the destination pid, both at the
  // flow instant, on the migrating task's row.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const TraceFlowEvent& f = flows[i];
    const std::string common =
        "\"cat\":\"" + json_escape(f.name) + "\",\"name\":\"" +
        json_escape(f.name) + "\",\"id\":" + std::to_string(i + 1) +
        ",\"tid\":" + std::to_string(f.task_id) + ",\"ts\":" + us(f.at) +
        ",\"args\":{\"job\":" + std::to_string(f.job_index) + "}";
    w.event("\"ph\":\"s\",\"pid\":" +
            std::to_string(static_cast<int>(f.from_process) + 1) + "," +
            common);
    w.event("\"ph\":\"f\",\"bp\":\"e\",\"pid\":" +
            std::to_string(static_cast<int>(f.to_process) + 1) + "," +
            common);
  }
  out << "\n],\n";
  out << "\"displayTimeUnit\": \"ms\",\n";
  std::string footer;
  JsonWriter j(footer);
  j.begin_object().kv("exporter", "slackdvs").kv("task_set", set_name);
  j.kv("sim_length_us", sim_length * 1e6).kv("governors", processes.size());
  j.end_object();
  out << "\"otherData\": " << footer << "\n}\n";
}

}  // namespace dvs::obs
