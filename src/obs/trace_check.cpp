#include "obs/trace_check.hpp"

#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "obs/json_mini.hpp"

namespace dvs::obs {
namespace {

/// Timestamp slop in μs.  The simulator's event epsilon is 1e-9 s = 1e-3
/// μs; segments are emitted back to back, so one event-level epsilon (plus
/// the exporter's fixed-point rounding at 1e-3 μs) bounds any seam.
constexpr double kSeamTolUs = 2e-3;

double get_number(const JsonValue& e, const char* key, double fallback) {
  const JsonValue* v = e.find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

struct TrackState {
  double last_end = -1.0;   ///< end of the previous X event on this row
  double last_ts = -1.0;    ///< ts of the previous event on this row
  std::size_t events = 0;
};

}  // namespace

TraceCheckReport check_chrome_trace(const std::string& json) {
  TraceCheckReport report;
  auto err = [&report](const std::string& msg) {
    if (report.errors.size() < 50) report.errors.push_back(msg);
  };

  JsonValue doc;
  try {
    doc = parse_json(json);
  } catch (const std::exception& e) {
    err(e.what());
    return report;
  }

  if (!doc.is_object()) {
    err("top-level JSON value is not an object");
    return report;
  }
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    err("missing or non-array \"traceEvents\"");
    return report;
  }
  if (const JsonValue* other = doc.find("otherData")) {
    report.sim_length_us = get_number(*other, "sim_length_us", 0.0);
  }

  std::map<std::pair<double, double>, TrackState> x_tracks;   // (pid, tid)
  std::map<std::pair<double, std::string>, double> counters;  // (pid, name)
  std::map<double, double> pid_duration;                      // pid -> Σ dur
  std::set<double> pids;
  std::map<double, std::pair<int, int>> flow_ids;  // id -> (starts, ends)

  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string at = "event[" + std::to_string(i) + "]";
    if (!e.is_object()) {
      err(at + ": not an object");
      continue;
    }
    ++report.events;

    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->string.size() != 1) {
      err(at + ": missing or invalid \"ph\"");
      continue;
    }
    const JsonValue* pid = e.find("pid");
    if (pid == nullptr || !pid->is_number()) {
      err(at + ": missing or non-numeric \"pid\"");
      continue;
    }
    pids.insert(pid->number);

    const char kind = ph->string[0];
    if (kind == 'M') continue;  // metadata carries no timestamp

    const double ts = get_number(e, "ts", std::nan(""));
    if (!std::isfinite(ts)) {
      err(at + ": missing or non-finite \"ts\"");
      continue;
    }

    if (kind == 'X') {
      ++report.duration_events;
      const JsonValue* name = e.find("name");
      if (name == nullptr || !name->is_string()) {
        err(at + ": duration event without a string \"name\"");
      }
      const double tid = get_number(e, "tid", std::nan(""));
      if (!std::isfinite(tid)) {
        err(at + ": duration event without a numeric \"tid\"");
        continue;
      }
      const double dur = get_number(e, "dur", std::nan(""));
      if (!std::isfinite(dur) || dur < 0.0) {
        err(at + ": missing, non-finite or negative \"dur\"");
        continue;
      }
      TrackState& track = x_tracks[{pid->number, tid}];
      if (track.events > 0 && ts < track.last_ts - kSeamTolUs) {
        err(at + ": timestamps not monotone on (pid " +
            std::to_string(pid->number) + ", tid " + std::to_string(tid) +
            "): ts " + std::to_string(ts) + " after ts " +
            std::to_string(track.last_ts));
      }
      if (track.events > 0 && ts < track.last_end - kSeamTolUs) {
        err(at + ": overlapping duration events on (pid " +
            std::to_string(pid->number) + ", tid " + std::to_string(tid) +
            "): ts " + std::to_string(ts) + " before previous end " +
            std::to_string(track.last_end));
      }
      track.last_ts = ts;
      track.last_end = ts + dur;
      ++track.events;
      pid_duration[pid->number] += dur;
    } else if (kind == 'C') {
      const JsonValue* name = e.find("name");
      if (name == nullptr || !name->is_string()) {
        err(at + ": counter event without a string \"name\"");
        continue;
      }
      auto [it, fresh] =
          counters.try_emplace({pid->number, name->string}, ts);
      if (!fresh) {
        if (ts < it->second - kSeamTolUs) {
          err(at + ": counter \"" + name->string +
              "\" timestamps not monotone (ts " + std::to_string(ts) +
              " after " + std::to_string(it->second) + ")");
        }
        it->second = ts;
      }
    } else if (kind == 'i') {
      // Instant events need only the (already checked) ts and pid.
    } else if (kind == 's' || kind == 'f') {
      // Flow events (the global backend's migration arrows): each needs a
      // numeric id, and ids must pair up one 's' with one 'f' (checked
      // after the loop).
      ++report.flow_events;
      const double id = get_number(e, "id", std::nan(""));
      if (!std::isfinite(id)) {
        err(at + ": flow event without a numeric \"id\"");
        continue;
      }
      auto& [starts, ends] = flow_ids[id];
      if (kind == 's') {
        ++starts;
      } else {
        ++ends;
      }
    } else {
      err(at + ": unexpected event phase '" + ph->string + "'");
    }
  }

  for (const auto& [id, counts] : flow_ids) {
    if (counts.first != 1 || counts.second != 1) {
      err("flow id " + std::to_string(id) + ": expected exactly one start "
          "and one finish event, got " + std::to_string(counts.first) +
          " / " + std::to_string(counts.second));
    }
  }

  report.tracks = x_tracks.size();
  report.pids = pids.size();

  if (report.duration_events == 0) {
    err("trace contains no duration events");
  }

  // Duration conservation per pid: busy + idle + transition == sim length.
  if (report.sim_length_us > 0.0) {
    for (const auto& [pid, total] : pid_duration) {
      // Tolerance: one seam per event is the worst accumulation case.
      const double tol =
          kSeamTolUs * static_cast<double>(report.duration_events + 1) +
          1e-9 * report.sim_length_us;
      if (std::fabs(total - report.sim_length_us) > tol) {
        err("pid " + std::to_string(pid) +
            ": busy/idle/transition durations sum to " +
            std::to_string(total) + " us, expected sim length " +
            std::to_string(report.sim_length_us) + " us");
      }
    }
  } else {
    err("otherData.sim_length_us missing — cannot check duration "
        "conservation");
  }

  return report;
}

}  // namespace dvs::obs
