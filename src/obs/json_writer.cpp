#include "obs/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace dvs::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  DVS_EXPECT(std::isfinite(v), "JSON cannot represent a non-finite number");
  // Shortest round-trip: try increasing precision until strtod maps the
  // digits back to the identical double.  %.17g always does; most values
  // stop at %.15g, keeping the wire format short and stable.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

namespace {

void append_value(std::string& out, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += v.boolean ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      out += json_number(v.number);
      return;
    case JsonValue::Kind::kString:
      out.push_back('"');
      out += json_escape(v.string);
      out.push_back('"');
      return;
    case JsonValue::Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& e : v.array) {
        if (!first) out.push_back(',');
        first = false;
        append_value(out, e);
      }
      out.push_back(']');
      return;
    }
    case JsonValue::Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, e] : v.object) {
        if (!first) out.push_back(',');
        first = false;
        out.push_back('"');
        out += json_escape(k);
        out += "\":";
        append_value(out, e);
      }
      out.push_back('}');
      return;
    }
  }
  DVS_ENSURE(false, "unreachable JSON kind");
}

}  // namespace

std::string write_json(const JsonValue& v) {
  std::string out;
  append_value(out, v);
  return out;
}

void JsonWriter::pre_value() {
  if (stack_.empty()) {
    DVS_EXPECT(!wrote_top_, "JSON document already complete");
    return;
  }
  const Scope s = stack_.back();
  DVS_EXPECT(s != Scope::kObjectKey,
             "object member needs a key before its value");
  if (s == Scope::kArray && counts_.back() > 0) out_->push_back(',');
}

void JsonWriter::post_value() {
  if (stack_.empty()) {
    wrote_top_ = true;
    return;
  }
  ++counts_.back();
  if (stack_.back() == Scope::kObjectValue) stack_.back() = Scope::kObjectKey;
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_->push_back('{');
  stack_.push_back(Scope::kObjectKey);
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  DVS_EXPECT(!stack_.empty() && stack_.back() == Scope::kObjectKey,
             "end_object outside an object (or after a dangling key)");
  out_->push_back('}');
  stack_.pop_back();
  counts_.pop_back();
  post_value();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_->push_back('[');
  stack_.push_back(Scope::kArray);
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  DVS_EXPECT(!stack_.empty() && stack_.back() == Scope::kArray,
             "end_array outside an array");
  out_->push_back(']');
  stack_.pop_back();
  counts_.pop_back();
  post_value();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  DVS_EXPECT(!stack_.empty() && stack_.back() == Scope::kObjectKey,
             "key() is only valid directly inside an object");
  if (counts_.back() > 0) out_->push_back(',');
  out_->push_back('"');
  *out_ += json_escape(std::string(k));
  *out_ += "\":";
  stack_.back() = Scope::kObjectValue;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  pre_value();
  out_->push_back('"');
  *out_ += json_escape(std::string(s));
  out_->push_back('"');
  post_value();
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  *out_ += json_number(v);
  post_value();
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  *out_ += std::to_string(v);
  post_value();
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  *out_ += std::to_string(v);
  post_value();
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  *out_ += v ? "true" : "false";
  post_value();
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  *out_ += "null";
  post_value();
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  DVS_EXPECT(!json.empty(), "raw() needs a non-empty JSON value");
  pre_value();
  *out_ += json;
  post_value();
  return *this;
}

}  // namespace dvs::obs
