// Chrome trace-event JSON export for simulation traces.
//
// Converts sim::VectorTrace recordings into the Trace Event Format that
// chrome://tracing, Perfetto (ui.perfetto.dev) and speedscope load
// natively — replacing squinting at the ASCII Gantt with a zoomable
// timeline.  Layout convention (the tentpole's contract):
//
//   * one *process* (pid) per governor, named after it, so several
//     governors' schedules of the same task set sit side by side;
//   * one *thread* (tid) per task, named after the task — busy segments
//     become complete ("X") duration events on their task's row, with
//     the executed speed and job index in args;
//   * idle and speed-transition segments share a final "cpu" row, so per
//     pid the X events partition [0, sim_length] exactly — the property
//     tools/trace_check verifies;
//   * the executed speed is additionally emitted as a counter ("C") track
//     named "speed", one sample per segment boundary, giving the
//     staircase speed profile the DVS papers plot;
//   * deadline misses appear as instant ("i") events on the task's row.
//
// Timestamps are microseconds (the format's unit).  Output is fully
// deterministic: segment order is the recording order of the (single
// threaded, deterministic) simulation.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json_writer.hpp"  // json_escape (historically declared here)
#include "sim/trace.hpp"
#include "task/task_set.hpp"
#include "util/time.hpp"

namespace dvs::obs {

/// One governor's recorded schedule, to be exported as one pid.
struct GovernorTrace {
  std::string governor;
  const sim::VectorTrace* trace = nullptr;
};

/// One exported pid with its own task set: the general form, used by the
/// partitioned multiprocessor backend to lay out one pid per
/// (governor, core) — e.g. "lpSEH/core2" showing only that core's tasks.
struct TraceProcess {
  std::string label;  ///< process name, e.g. "lpSEH" or "lpSEH/core2"
  const task::TaskSet* task_set = nullptr;
  const sim::VectorTrace* trace = nullptr;
};

/// One cross-process flow arrow: a start ('s') / finish ('f') event pair
/// at the same instant, drawn from one process's task row to another's.
/// The global multiprocessor backend renders each mp::MigrationRecord as
/// one flow named "migration" between the source and destination core
/// pids, so the migration shows up as an arrow in Perfetto.
struct TraceFlowEvent {
  std::string name;           ///< flow name, e.g. "migration"
  Time at = 0.0;              ///< instant (seconds)
  std::size_t from_process = 0;  ///< index into `processes`
  std::size_t to_process = 0;    ///< index into `processes`
  std::int32_t task_id = 0;      ///< tid on both rows
  std::int64_t job_index = 0;
};

/// Write a complete Chrome trace-event JSON document.  `sim_length` is the
/// simulated duration every trace covers (recorded into otherData and used
/// by the validator's duration-conservation check).
void write_chrome_trace(std::ostream& out, const task::TaskSet& ts,
                        const std::vector<GovernorTrace>& traces,
                        Time sim_length);

/// General form: every pid brings its own task set (tids are that set's
/// task ids).  `set_name` labels the export in otherData.  The overload
/// above is exactly this with the same task set for every pid — the two
/// produce byte-identical output for that layout.  `flows` (optional)
/// adds cross-pid flow arrows with sequential ids, each one 's'/'f' pair.
void write_chrome_trace(std::ostream& out, const std::string& set_name,
                        const std::vector<TraceProcess>& processes,
                        Time sim_length,
                        const std::vector<TraceFlowEvent>& flows = {});

}  // namespace dvs::obs
