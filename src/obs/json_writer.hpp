// Escape-correct JSON emission — the writer half of obs::json_mini.
//
// Two layers, both emitting the same compact wire format (no whitespace,
// insertion-ordered object keys) that parse_json accepts back:
//  * write_json(JsonValue)   — serialize a value model; the round-trip
//    parse_json(write_json(v)) reproduces v exactly (numbers are printed
//    with the shortest digit string strtod maps back to the same double);
//  * JsonWriter              — a streaming state-machine writer for code
//    that builds documents piecewise (the svc protocol encoder, the
//    Chrome-trace exporter's metadata events) without materializing a
//    JsonValue tree.  Misuse (a key outside an object, a bare value where
//    a key is required, unbalanced end_*) throws ContractError instead of
//    emitting malformed output.
//
// Non-finite numbers have no JSON representation; both layers reject them
// (ContractError) rather than emit "nan" the parser would choke on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json_mini.hpp"

namespace dvs::obs {

/// `s` with every character JSON requires escaped (quotes, backslash,
/// control characters) replaced by its escape sequence.  Bytes >= 0x20
/// pass through untouched, so UTF-8 payloads survive verbatim.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Shortest decimal form of `v` that strtod parses back to exactly `v`
/// ("1", "0.25", "9.419999999999999e+21").  Throws ContractError for
/// NaN/infinity.
[[nodiscard]] std::string json_number(double v);

/// Compact serialization of a JsonValue; round-trips through parse_json.
[[nodiscard]] std::string write_json(const JsonValue& v);

/// Streaming writer appending compact JSON to a caller-owned string.
/// The buffer may be reused across documents: clear() both the string and
/// the writer (reset()) between documents, so a long-lived Session emits
/// responses with zero steady-state allocation once the buffer has grown
/// to its high-water mark.
class JsonWriter {
 public:
  /// Appends to `out`; the reference must outlive the writer.
  explicit JsonWriter(std::string& out) : out_(&out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be directly inside an object, once per value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Convenience: key(k) followed by value(v).
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// Splice an already-serialized JSON document as the next value (used
  /// by the batch encoder to embed per-query responses verbatim).  The
  /// caller guarantees `json` is a complete well-formed value.
  JsonWriter& raw(std::string_view json);

  /// True once the document is complete (one top-level value, all scopes
  /// closed); the writer then accepts no further output.
  [[nodiscard]] bool complete() const noexcept {
    return stack_.empty() && wrote_top_;
  }

  /// Forget all state so the writer can start a new document (the output
  /// string is the caller's to clear).
  void reset() noexcept {
    stack_.clear();
    wrote_top_ = false;
  }

 private:
  enum class Scope : std::uint8_t {
    kObjectKey,    ///< inside an object, a key is expected next
    kObjectValue,  ///< inside an object, the key was written
    kArray,
  };

  void pre_value();   ///< comma/placement bookkeeping before any value
  void post_value();  ///< scope transition after any value

  std::string* out_;
  std::vector<Scope> stack_;
  /// Elements written in the innermost scope, parallel to stack_.
  std::vector<std::size_t> counts_;
  bool wrote_top_ = false;
};

}  // namespace dvs::obs
