// Metrics registry: counters, gauges, fixed-bucket histograms.
//
// The observability layer's data plane.  A MetricsRegistry is attached to
// a simulation through sim::SimOptions::metrics; when the pointer is null
// the simulator skips every metrics call (zero overhead when disabled —
// the contract DESIGN.md §8 documents and bench_e1 guards).
//
// Design constraints:
//  * header-only, so the simulator can update metrics without a link-time
//    dependency on the obs library (which itself depends on sim for the
//    trace exporters);
//  * deterministic: instruments are stored and exported in insertion
//    order, values are plain sums — a registry filled by a deterministic
//    simulation is itself deterministic, for any thread count (registries
//    are per-simulation, never shared);
//  * instruments are owned by the registry and handed out as stable
//    references (deque storage), so hot paths can cache the pointer once
//    instead of re-hashing the name per event.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace dvs::obs {

/// Monotone event count.
class Counter {
 public:
  void inc(std::int64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Last-write-wins sample with optional max/min tracking.
class Gauge {
 public:
  void set(double v) noexcept {
    value_ = v;
    if (!seen_) {
      min_ = max_ = v;
      seen_ = true;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
  }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] double min() const noexcept { return seen_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return seen_ ? max_ : 0.0; }
  [[nodiscard]] bool seen() const noexcept { return seen_; }

 private:
  double value_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool seen_ = false;
};

/// Fixed-bucket histogram over [lo, hi) with explicit under-/overflow
/// buckets.  Samples may carry a weight (e.g. seconds of residency);
/// non-finite samples are dropped (and counted).
class Histogram {
 public:
  Histogram() : Histogram(0.0, 1.0, 1) {}
  Histogram(double lo, double hi, std::size_t n_buckets)
      : lo_(lo), hi_(hi), weights_(n_buckets, 0.0) {
    DVS_EXPECT(n_buckets >= 1, "histogram needs at least one bucket");
    DVS_EXPECT(hi > lo, "histogram needs a non-empty value range");
  }

  void add(double x, double weight = 1.0) noexcept {
    if (!std::isfinite(x) || !std::isfinite(weight)) {
      ++dropped_;
      return;
    }
    ++samples_;
    weight_sum_ += weight;
    if (samples_ == 1) {
      min_seen_ = max_seen_ = x;
    } else {
      min_seen_ = std::min(min_seen_, x);
      max_seen_ = std::max(max_seen_, x);
    }
    if (x < lo_) {
      underflow_ += weight;
      return;
    }
    if (x >= hi_) {
      overflow_ += weight;
      return;
    }
    const auto n = static_cast<double>(weights_.size());
    auto i = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) * n);
    if (i >= weights_.size()) i = weights_.size() - 1;  // rounding edge
    weights_[i] += weight;
  }

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return weights_.size();
  }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(weights_.size());
  }
  [[nodiscard]] double bucket_hi(std::size_t i) const noexcept {
    return bucket_lo(i + 1);
  }
  [[nodiscard]] double bucket_weight(std::size_t i) const noexcept {
    return weights_[i];
  }
  [[nodiscard]] double underflow() const noexcept { return underflow_; }
  [[nodiscard]] double overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::int64_t samples() const noexcept { return samples_; }
  [[nodiscard]] std::int64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] double weight_sum() const noexcept { return weight_sum_; }
  [[nodiscard]] double min_seen() const noexcept {
    return samples_ > 0 ? min_seen_ : 0.0;
  }
  [[nodiscard]] double max_seen() const noexcept {
    return samples_ > 0 ? max_seen_ : 0.0;
  }

  /// Weight-interpolated quantile estimate: the value below which a `q`
  /// fraction of the recorded weight lies, linearly interpolated inside
  /// the containing bucket.  Underflow clamps to lo(), overflow to the
  /// maximum seen sample (a tail estimate must not understate the tail).
  /// Used by the svc daemon's per-endpoint latency reporting.  0 when the
  /// histogram is empty; q outside [0, 1] is clamped.
  [[nodiscard]] double quantile(double q) const noexcept {
    if (weight_sum_ <= 0.0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * weight_sum_;
    double cum = underflow_;
    if (cum >= target) return lo_;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      if (cum + weights_[i] >= target && weights_[i] > 0.0) {
        const double frac = (target - cum) / weights_[i];
        return bucket_lo(i) + frac * (bucket_hi(i) - bucket_lo(i));
      }
      cum += weights_[i];
    }
    return max_seen();
  }

  /// Buckets (incl. under-/overflow) holding weight: a distribution is
  /// "degenerate" when everything landed in a single bucket.
  [[nodiscard]] std::size_t nonzero_buckets() const noexcept {
    std::size_t n = (underflow_ > 0.0 ? 1u : 0u) + (overflow_ > 0.0 ? 1u : 0u);
    for (double w : weights_) n += w > 0.0 ? 1u : 0u;
    return n;
  }

 private:
  double lo_;
  double hi_;
  std::vector<double> weights_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
  double weight_sum_ = 0.0;
  std::int64_t samples_ = 0;
  std::int64_t dropped_ = 0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

/// Insertion-ordered collection of named instruments.  Lookups create on
/// first use; repeated lookups return the same instrument (a histogram
/// re-request must agree on the bucket layout).  Not thread-safe by
/// design: one registry observes exactly one simulation.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) {
    if (Counter* c = find_counter(name)) return *c;
    order_.push_back({Kind::kCounter, name, counters_.size()});
    counters_.emplace_back();
    return counters_.back();
  }

  Gauge& gauge(const std::string& name) {
    if (Gauge* g = find_gauge(name)) return *g;
    order_.push_back({Kind::kGauge, name, gauges_.size()});
    gauges_.emplace_back();
    return gauges_.back();
  }

  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t n_buckets) {
    if (Histogram* h = find_histogram(name)) {
      DVS_EXPECT(h->lo() == lo && h->hi() == hi &&
                     h->bucket_count() == n_buckets,
                 "histogram '" + name + "' re-registered with a different "
                 "bucket layout");
      return *h;
    }
    order_.push_back({Kind::kHistogram, name, histograms_.size()});
    histograms_.emplace_back(lo, hi, n_buckets);
    return histograms_.back();
  }

  [[nodiscard]] Counter* find_counter(const std::string& name) noexcept {
    const Entry* e = find(Kind::kCounter, name);
    return e != nullptr ? &counters_[e->index] : nullptr;
  }
  [[nodiscard]] Gauge* find_gauge(const std::string& name) noexcept {
    const Entry* e = find(Kind::kGauge, name);
    return e != nullptr ? &gauges_[e->index] : nullptr;
  }
  [[nodiscard]] Histogram* find_histogram(const std::string& name) noexcept {
    const Entry* e = find(Kind::kHistogram, name);
    return e != nullptr ? &histograms_[e->index] : nullptr;
  }
  [[nodiscard]] const Counter* find_counter(
      const std::string& name) const noexcept {
    const Entry* e = find(Kind::kCounter, name);
    return e != nullptr ? &counters_[e->index] : nullptr;
  }
  [[nodiscard]] const Gauge* find_gauge(
      const std::string& name) const noexcept {
    const Entry* e = find(Kind::kGauge, name);
    return e != nullptr ? &gauges_[e->index] : nullptr;
  }
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name) const noexcept {
    const Entry* e = find(Kind::kHistogram, name);
    return e != nullptr ? &histograms_[e->index] : nullptr;
  }

  [[nodiscard]] bool empty() const noexcept { return order_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }

  /// Long-format CSV: kind,name,field,value — one row per scalar, one row
  /// per histogram bucket.  Deterministic (insertion order).
  void write_csv(std::ostream& out) const {
    out << "kind,name,field,value\n";
    for (const Entry& e : order_) {
      switch (e.kind) {
        case Kind::kCounter:
          out << "counter," << e.name << ",value,"
              << counters_[e.index].value() << "\n";
          break;
        case Kind::kGauge: {
          const Gauge& g = gauges_[e.index];
          out << "gauge," << e.name << ",value," << fmt(g.value()) << "\n";
          out << "gauge," << e.name << ",min," << fmt(g.min()) << "\n";
          out << "gauge," << e.name << ",max," << fmt(g.max()) << "\n";
          break;
        }
        case Kind::kHistogram: {
          const Histogram& h = histograms_[e.index];
          out << "histogram," << e.name << ",samples," << h.samples() << "\n";
          out << "histogram," << e.name << ",weight_sum,"
              << fmt(h.weight_sum()) << "\n";
          out << "histogram," << e.name << ",underflow," << fmt(h.underflow())
              << "\n";
          for (std::size_t i = 0; i < h.bucket_count(); ++i) {
            out << "histogram," << e.name << ",bucket[" << fmt(h.bucket_lo(i))
                << ";" << fmt(h.bucket_hi(i)) << ")," << fmt(h.bucket_weight(i))
                << "\n";
          }
          out << "histogram," << e.name << ",overflow," << fmt(h.overflow())
              << "\n";
          break;
        }
      }
    }
  }

  /// Compact human-readable dump (the CLI's --metrics output).
  void print(std::ostream& out, const std::string& indent = "  ") const {
    for (const Entry& e : order_) {
      switch (e.kind) {
        case Kind::kCounter:
          out << indent << e.name << " = " << counters_[e.index].value()
              << "\n";
          break;
        case Kind::kGauge: {
          const Gauge& g = gauges_[e.index];
          out << indent << e.name << " = " << fmt(g.value()) << " (min "
              << fmt(g.min()) << ", max " << fmt(g.max()) << ")\n";
          break;
        }
        case Kind::kHistogram: {
          const Histogram& h = histograms_[e.index];
          out << indent << e.name << ": " << h.samples() << " samples in ["
              << fmt(h.min_seen()) << ", " << fmt(h.max_seen()) << "], "
              << h.nonzero_buckets() << "/" << h.bucket_count() + 2
              << " buckets occupied\n";
          break;
        }
      }
    }
  }

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    std::size_t index;  ///< into the per-kind deque
  };

  [[nodiscard]] const Entry* find(Kind kind,
                                  const std::string& name) const noexcept {
    for (const Entry& e : order_) {
      if (e.kind == kind && e.name == name) return &e;
    }
    return nullptr;
  }

  static std::string fmt(double v) {
    // Shortest exact-enough form: %.6g keeps the CSV readable while the
    // deterministic source values make byte-identity hold regardless.
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
  }

  std::vector<Entry> order_;
  // deques: instrument references stay valid as the registry grows.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace dvs::obs
