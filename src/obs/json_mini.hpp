// Minimal JSON value model + parser.
//
// Two consumers: tools/trace_check, which re-parses the Chrome trace-event
// JSON this library emits and verifies it structurally
// (obs/trace_check.hpp), and the scheduling service protocol (src/svc/),
// which decodes untrusted client queries with it.  The container ships no
// JSON dependency, so this is a small, strict RFC-8259-subset
// recursive-descent parser: objects, arrays, strings (with escapes incl.
// \uXXXX), numbers, booleans, null.  It is a validator's parser — unknown
// escapes, trailing garbage, unterminated structures, numbers outside the
// double range, nesting beyond 200 levels, and duplicate object keys all
// throw rather than recover (hardening the daemon against hostile input).
// The writer half lives in obs/json_writer.hpp.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace dvs::obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;

  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Key order preserved as parsed; the parser rejects duplicate keys.
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }

  /// Object member lookup; null when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const noexcept;
};

/// Parse a complete JSON document.  Throws util::ContractError (with a
/// byte offset) on malformed input, including trailing non-whitespace.
[[nodiscard]] JsonValue parse_json(const std::string& text);

}  // namespace dvs::obs
