// Governor decision audit: every speed decision, with the slack estimate
// behind it and the slack that actually materialized.
//
// The DATE 2002 algorithm's whole value proposition is the quality of its
// slack-time analysis — an audit turns "lpSEH saved 12% more energy" into
// "lpSEH's slack estimates were 38 ms conservative on average, here is the
// error distribution".  The simulator records one Decision per governor
// dispatch (sim::SimOptions::audit); when the decided job later completes,
// the realized slack (absolute deadline minus completion time) is
// backfilled into every decision made for that job, so
//
//     error = realized_slack - estimated_slack
//
// compares the stretch the analysis proved against the margin that was
// still unused at the deadline.  Positive error is slack the governor saw
// too late or not at all (conservatism, early completions, quantization);
// error near zero means the estimate was fully converted into slowdown; a
// wide spread marks a noisy estimator.  Governors
// expose their estimate through sim::Governor::last_slack_estimate();
// policies without an explicit slack model report NaN and are counted but
// excluded from the accuracy statistics.
//
// Header-only for the same reason as metrics.hpp: the simulator writes
// into the audit without linking the obs library.  One audit observes one
// simulation; sweeps aggregate per-sim SlackAccuracy values in
// deterministic index order (see exp::run_sweep).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/time.hpp"

namespace dvs::obs {

/// One governor speed decision at a scheduling point.
struct Decision {
  Time at = 0.0;                  ///< decision time
  std::int32_t task_id = 0;
  std::int64_t job_index = 0;
  Work remaining_wcet = 0.0;      ///< budget the governor saw
  /// Governor's slack estimate (seconds of provable stretch beyond the
  /// remaining budget); NaN when the policy exposes none.
  Time estimated_slack = std::numeric_limits<Time>::quiet_NaN();
  double requested_alpha = 1.0;   ///< governor request, pre-quantization
  double chosen_alpha = 1.0;      ///< what actually ran (post-quantization)
  /// abs_deadline - completion of the decided job, backfilled when it
  /// completes; NaN while pending / for jobs truncated at simulation end.
  Time realized_slack = std::numeric_limits<Time>::quiet_NaN();
};

/// Mergeable accuracy summary of (realized - estimated) slack errors.
/// merge() is exact (sum/min/max), so aggregating per-simulation values in
/// a fixed order yields thread-count-independent sweep statistics.
struct SlackAccuracy {
  std::int64_t decisions = 0;  ///< all recorded decisions
  std::int64_t audited = 0;    ///< decisions with estimate AND realized
  double sum_error = 0.0;
  double sum_abs_error = 0.0;
  double min_error = std::numeric_limits<double>::infinity();
  double max_error = -std::numeric_limits<double>::infinity();

  void add_error(double e) noexcept {
    ++audited;
    sum_error += e;
    sum_abs_error += std::fabs(e);
    min_error = std::min(min_error, e);
    max_error = std::max(max_error, e);
  }

  void merge(const SlackAccuracy& o) noexcept {
    decisions += o.decisions;
    audited += o.audited;
    sum_error += o.sum_error;
    sum_abs_error += o.sum_abs_error;
    min_error = std::min(min_error, o.min_error);
    max_error = std::max(max_error, o.max_error);
  }

  /// Mean signed error: positive = estimates were conservative.
  [[nodiscard]] double bias() const noexcept {
    return audited > 0 ? sum_error / static_cast<double>(audited) : 0.0;
  }
  /// Mean absolute error.
  [[nodiscard]] double mae() const noexcept {
    return audited > 0 ? sum_abs_error / static_cast<double>(audited) : 0.0;
  }
};

/// Records decisions and backfills realized slack at job completion.
///
/// Pending decisions are tracked without per-decision allocation: records
/// of the same still-open job form an intrusive chain through `next_`
/// (parallel to `records_`), and the open-job table is a flat vector
/// scanned linearly — the number of concurrently open jobs is bounded by
/// the number of released-unfinished jobs, a handful in practice.
class DecisionAudit {
 public:
  /// Pre-allocate for ~`expected_decisions` records (engine hint).
  void reserve(std::size_t expected_decisions) {
    records_.reserve(expected_decisions);
    next_.reserve(expected_decisions);
  }

  /// Called by the simulator right after a governor dispatch.
  void decision(const Decision& d) {
    const std::size_t idx = records_.size();
    records_.push_back(d);
    next_.push_back(kNone);
    for (auto& o : open_) {
      if (o.task_id == d.task_id && o.job_index == d.job_index) {
        next_[o.tail] = idx;
        o.tail = idx;
        return;
      }
    }
    open_.push_back({d.task_id, d.job_index, idx, idx});
  }

  /// Called by the simulator when the job completes; `realized_slack` is
  /// abs_deadline - completion (negative on a deadline miss).
  void complete(std::int32_t task_id, std::int64_t job_index,
                Time realized_slack) {
    for (std::size_t k = 0; k < open_.size(); ++k) {
      if (open_[k].task_id != task_id || open_[k].job_index != job_index) {
        continue;
      }
      for (std::size_t i = open_[k].head; i != kNone; i = next_[i]) {
        records_[i].realized_slack = realized_slack;
      }
      open_[k] = open_.back();
      open_.pop_back();
      return;
    }
    // No match: the job ran without a recorded decision.
  }

  [[nodiscard]] const std::vector<Decision>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  /// Accuracy over every record with both an estimate and a realization.
  [[nodiscard]] SlackAccuracy accuracy() const {
    SlackAccuracy acc;
    acc.decisions = static_cast<std::int64_t>(records_.size());
    for (const Decision& d : records_) {
      if (std::isfinite(d.estimated_slack) &&
          std::isfinite(d.realized_slack)) {
        acc.add_error(d.realized_slack - d.estimated_slack);
      }
    }
    return acc;
  }

  /// Add every (realized - estimated) error to `h` — the registry's
  /// slack-prediction-error histogram.
  void fill_error_histogram(Histogram& h) const {
    for (const Decision& d : records_) {
      if (std::isfinite(d.estimated_slack) &&
          std::isfinite(d.realized_slack)) {
        h.add(d.realized_slack - d.estimated_slack);
      }
    }
  }

  /// Full decision log as CSV (offline analysis / plotting).
  void write_csv(std::ostream& out) const {
    out << "at,task,job,remaining_wcet,estimated_slack,requested_alpha,"
           "chosen_alpha,realized_slack,error\n";
    for (const Decision& d : records_) {
      const bool audited = std::isfinite(d.estimated_slack) &&
                           std::isfinite(d.realized_slack);
      out << fmt(d.at) << ',' << d.task_id << ',' << d.job_index << ','
          << fmt(d.remaining_wcet) << ',' << fmt_or_empty(d.estimated_slack)
          << ',' << fmt(d.requested_alpha) << ',' << fmt(d.chosen_alpha)
          << ',' << fmt_or_empty(d.realized_slack) << ','
          << (audited ? fmt(d.realized_slack - d.estimated_slack)
                      : std::string())
          << '\n';
    }
  }

 private:
  static std::string fmt(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
  }
  static std::string fmt_or_empty(double v) {
    return std::isfinite(v) ? fmt(v) : std::string();
  }

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// A job with decisions still awaiting their realized slack; head/tail
  /// index the first/last record of its chain in `next_`.
  struct OpenJob {
    std::int32_t task_id = 0;
    std::int64_t job_index = 0;
    std::size_t head = kNone;
    std::size_t tail = kNone;
  };

  std::vector<Decision> records_;
  std::vector<std::size_t> next_;  ///< same-job chain, parallel to records_
  std::vector<OpenJob> open_;
};

}  // namespace dvs::obs
