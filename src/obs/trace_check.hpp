// Structural validator for exported Chrome trace-event JSON.
//
// Round-trips what obs/chrome_trace.hpp writes: parses the document with
// the minimal JSON parser and checks the invariants any consumer
// (chrome://tracing, Perfetto) relies on, plus the physics this
// simulator guarantees:
//
//   1. well-formed JSON with a top-level "traceEvents" array of objects,
//      each carrying a string "ph" and numeric "pid" (duration events
//      additionally name, tid, finite ts and dur >= 0);
//   2. monotone per-track timestamps — on every (pid, tid) row the "X"
//      events are ordered and non-overlapping, and every counter track's
//      samples are in non-decreasing ts order;
//   3. duration conservation — per pid, busy + idle + transition "X"
//      durations sum to otherData.sim_length_us: the single processor is
//      in exactly one state at every instant, so the rows of one governor
//      partition the simulated interval;
//   4. flow pairing — every flow id carries exactly one start ('s') and
//      one finish ('f') event (the migration arrows of the global
//      multiprocessor backend), each with a finite ts and numeric id.
//
// Used by tools/trace_check (CI round-trip smoke) and the test suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dvs::obs {

struct TraceCheckReport {
  std::vector<std::string> errors;  ///< empty iff the trace validates

  // Statistics for the tool's summary line.
  std::size_t events = 0;          ///< total entries in traceEvents
  std::size_t duration_events = 0; ///< "X" events checked
  std::size_t flow_events = 0;     ///< "s"/"f" flow events checked
  std::size_t tracks = 0;          ///< distinct (pid, tid) rows
  std::size_t pids = 0;            ///< distinct processes (governors)
  double sim_length_us = 0.0;      ///< from otherData (0 when absent)

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Validate a Chrome trace-event JSON document (the full file contents).
/// Never throws on bad input — parse failures become report errors.
[[nodiscard]] TraceCheckReport check_chrome_trace(const std::string& json);

}  // namespace dvs::obs
