#include "obs/json_mini.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "util/error.hpp"

namespace dvs::obs {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 200;

  [[noreturn]] void fail(const std::string& why) const {
    throw util::ContractError("malformed JSON at byte " +
                              std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.kind = JsonValue::Kind::kNull;
        return v;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      for (const auto& [k, existing] : v.object) {
        if (k == key) fail("duplicate object key '" + key + "'");
      }
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("unknown escape sequence");
      }
    }
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail("non-hex digit in \\u escape");
      }
    }
    // UTF-8 encode the BMP code point; surrogate pairs (absent from our
    // own exporter output) are passed through as two 3-byte sequences,
    // which round-trips the bits even if it is not canonical UTF-8.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
      digits = true;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (!digits) fail("invalid number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    if (!std::isfinite(v.number)) fail("number out of range");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace dvs::obs
