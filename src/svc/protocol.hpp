// The svc wire protocol: newline-delimited JSON over a byte stream
// (DESIGN.md §12).
//
// One request line -> one response line.  Requests are JSON objects with
// an "op" field:
//
//   {"op":"ping","id":1}
//   {"op":"admit","id":2,"tasks":[{"name":"ctl","period":0.005,
//        "wcet":0.002}],"cores":2,"partition":"wf"}
//   {"op":"plan","tasks_csv":"name,period,...","governors":["ccEDF"],
//        "processor":"ideal","workload":"uniform:42","length":0.5,
//        "yds":true}
//   {"op":"batch","queries":[{...},{...}]}
//   {"op":"stats"}      {"op":"shutdown"}
//
// Task sets arrive either as a "tasks" array of objects (period and wcet
// required; deadline/bcet/phase/name defaulted like the CSV loader) or as
// a "tasks_csv" string in the task/io.hpp format.  Every response is one
// compact JSON object starting with "ok": {"ok":true,...} on success,
// {"ok":false,"error":"..."} on failure — malformed input is an answer,
// never a crash or a dropped connection.  A numeric "id" in the request
// is echoed back so pipelining clients can match responses.
//
// Batch queries fan out over a util::ThreadPool (one thread-local Session
// per worker) and are reassembled in query index order; each element of
// "results" is BYTE-IDENTICAL to the response the same query would get on
// its own — the contract that makes batching a pure transport
// optimization (pinned by test_svc_daemon and the E13 bench).
#pragma once

#include <functional>
#include <string>

#include "obs/json_writer.hpp"
#include "svc/planner.hpp"
#include "util/thread_pool.hpp"

namespace dvs::svc {

/// Handler wiring a daemon (or a test) provides.
struct HandlerHooks {
  /// Fan-out pool for batch queries; null = run them inline (still in
  /// index order, still byte-identical).
  util::ThreadPool* batch_pool = nullptr;
  /// Appends daemon-level fields (request counters, latency) to the
  /// "stats" response object; null = session counters only.
  std::function<void(obs::JsonWriter&)> stats_fields;
};

/// One protocol endpoint: a Session plus the encode/decode machinery.
/// NOT thread-safe — one handler per connection, like the Session it
/// owns.  Response buffers are reused across requests (zero steady-state
/// allocation on the admission path once warmed up).
class ProtocolHandler {
 public:
  explicit ProtocolHandler(HandlerHooks hooks = {});

  /// Process one request line (without the trailing newline); returns the
  /// response line (without a trailing newline).  Never throws on
  /// malformed input.  Sets *shutdown_requested (when non-null) on a
  /// well-formed {"op":"shutdown"} request.  When op_out is non-null it
  /// receives the request's op ("?" when the line didn't parse that far)
  /// — the daemon keys its per-endpoint metrics on it.
  [[nodiscard]] std::string handle(const std::string& line,
                                   bool* shutdown_requested = nullptr,
                                   std::string* op_out = nullptr);

  [[nodiscard]] Session& session() noexcept { return session_; }

 private:
  HandlerHooks hooks_;
  Session session_;
};

/// The canonical error response: {"ok":false,"error":<message>}.  Used by
/// the handler and by the daemon's request-size guard so every failure
/// mode speaks the same shape.
[[nodiscard]] std::string error_response(const std::string& message);

}  // namespace dvs::svc
