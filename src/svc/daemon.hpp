// The planning daemon: `slackdvs serve` (DESIGN.md §12).
//
// A blocking-socket TCP server on 127.0.0.1 speaking the NDJSON protocol
// of svc/protocol.hpp.  Thread-per-connection — each connection owns its
// ProtocolHandler (and therefore its Session arenas); batch queries from
// any connection fan out over one shared util::ThreadPool.  Loopback
// only by design: the daemon is a local planning sidecar, not an
// internet-facing service.
//
// Hardening contract: nothing a client sends kills the daemon.  Malformed
// JSON, unknown ops, invalid task sets and oversized requests (the
// request-size cap skips to the next newline) each produce one structured
// {"ok":false,...} response on the offending connection and leave every
// other connection untouched.
//
// Observability: a shared obs::MetricsRegistry (mutex-guarded — the
// registry itself is single-threaded by design) keeps per-endpoint
// request/error counters and latency histograms; the "stats" op reports
// them, including p50/p99 from Histogram::quantile.
//
// Shutdown: the {"op":"shutdown"} request (or Daemon::stop()) closes the
// listener, unblocks every connection, drains the batch pool and joins
// all threads — `wait()` returns only when the last byte was written.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace dvs::svc {

struct DaemonOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back via
  /// port() — the CLI prints "listening on 127.0.0.1:<port>").
  std::uint16_t port = 0;
  /// Batch fan-out workers; 0 = one per hardware thread.
  std::size_t batch_threads = 0;
  /// Requests larger than this (one NDJSON line) are rejected with a
  /// structured error; the connection survives and resynchronizes at the
  /// next newline.
  std::size_t max_request_bytes = 1u << 20;
  /// Where to announce the listening address (null: silent).
  std::ostream* log = nullptr;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions opts = {});
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind + listen + spawn the accept thread.  Throws ContractError when
  /// the socket cannot be bound.
  void start();

  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Begin a graceful stop without blocking: close the listener and
  /// unblock every connection.  Safe to call from a connection thread
  /// (the shutdown op does) and idempotent.
  void request_stop();

  /// Block until the daemon has fully stopped (accept thread and every
  /// connection joined).  Returns immediately if start() was never
  /// called.
  void wait();

  /// request_stop() + wait().  The destructor calls it.
  void stop();

  [[nodiscard]] bool stopping() const noexcept { return stopping_.load(); }

 private:
  void accept_loop();
  void serve_connection(int fd);
  /// Record one handled request into the shared registry.
  void observe(const std::string& op, bool ok, double micros);
  /// Write the daemon section of the "stats" response (locked).
  void write_stats(obs::JsonWriter& j);

  DaemonOptions opts_;
  util::ThreadPool pool_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread accept_thread_;

  std::mutex conn_mutex_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;  ///< live connection sockets (for unblock)

  std::mutex metrics_mutex_;
  obs::MetricsRegistry metrics_;
};

}  // namespace dvs::svc
