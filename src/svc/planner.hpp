// Scheduling-as-a-service: the session-oriented Planner API (DESIGN.md
// §12).
//
// A Session is a long-lived planning context answering four kinds of
// question about a task set it has never seen before:
//
//   * admission  — the exact processor-demand EDF fit test (uniprocessor)
//                  or partitioned feasibility (cores >= 1), with a reason
//                  string naming the first violated checkpoint / the
//                  rejected task instead of a bare boolean;
//   * placement  — the ff/bf/wf bin-packing assignment, per-core
//                  utilizations included;
//   * speed plan — the optimal static speed plus, per requested governor,
//                  the predicted energy/miss statistics from a
//                  bounded-horizon simulation (exp::run_case underneath,
//                  so the numbers are bit-identical to `slackdvs run`);
//   * bounds     — optionally the clairvoyant YDS lower bounds (src/opt/).
//
// Sessions exist so the admission hot path allocates nothing in steady
// state: the demand-test checkpoint buffer, the per-core scratch sets and
// the response strings all live in the Session and are reused across
// queries (capacity ratchets up to the high-water mark, like the
// simulator's arenas).  One Session per thread — a Session is NOT
// thread-safe; the daemon keeps one per connection and one per batch
// worker.
//
// Everything here is deterministic: a query's answer is a pure function
// of (task set, options), never of session history, thread count, or
// which endpoint (single vs. batch) delivered it — the property the
// batch-vs-single byte-identity test pins down.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "mp/partition.hpp"
#include "opt/yds.hpp"
#include "task/task_set.hpp"
#include "task/workload.hpp"
#include "util/time.hpp"

namespace dvs::svc {

/// What a plan/admit query should compute beyond the admission test.
struct QueryOptions {
  /// 0 = uniprocessor demand test; M >= 1 = partitioned feasibility.
  std::size_t cores = 0;
  mp::PartitionHeuristic heuristic = mp::PartitionHeuristic::kFirstFit;
  /// Governors to simulate (registry names).  Empty: admission/placement
  /// only, no simulation.  noDVS is prepended as the normalization
  /// reference exactly as in exp::run_case.
  std::vector<std::string> governors;
  std::string processor = "ideal";
  /// Workload spec (task::workload_by_spec grammar).
  std::string workload = "uniform";
  /// Simulated horizon; negative = the task set's default length.
  Time length = -1.0;
  /// Also compute the clairvoyant YDS lower bounds and optimality gaps.
  bool yds_bound = false;
};

/// Outcome of the exact admission test.
struct AdmissionVerdict {
  bool admitted = false;
  double utilization = 0.0;
  double density = 0.0;
  /// Minimum constant EDF speed (the optimal static plan); on a
  /// partitioned query, the max over cores.  0 when rejected.
  double static_speed = 0.0;
  /// Empty when admitted; otherwise why not (the first violated demand
  /// checkpoint, or the bin-packing rejection naming the task).
  std::string reason;
};

/// The bin-packing assignment of a partitioned query.
struct PlacementReport {
  bool feasible = false;
  std::size_t cores = 0;
  mp::PartitionHeuristic heuristic = mp::PartitionHeuristic::kFirstFit;
  std::vector<std::int32_t> core_of;        ///< task index -> core
  std::vector<double> core_utilization;     ///< per core
  std::int32_t rejected_task = -1;          ///< task id; -1 when feasible
  std::string error;                        ///< non-empty iff !feasible
};

/// Predicted statistics of one governor on the queried case.
struct GovernorPlan {
  std::string governor;
  double total_energy = 0.0;
  double normalized_energy = 1.0;  ///< vs. the noDVS reference
  double average_speed = 1.0;
  std::int64_t jobs_released = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t speed_switches = 0;
  std::int64_t preemptions = 0;
  /// Optimality gaps vs. the YDS bounds; 0 unless yds_bound was set.
  double gap_continuous = 0.0;
  double gap_discrete = 0.0;
};

/// Full answer to a plan query.
struct PlanReport {
  AdmissionVerdict admission;
  /// Present on partitioned queries (cores >= 1), admitted or not.
  std::optional<PlacementReport> placement;
  /// Valid when QueryOptions::yds_bound was set and the set was admitted.
  opt::OracleBounds bounds;
  bool have_bounds = false;
  /// The horizon the simulation covered (resolved default included).
  Time sim_length = 0.0;
  /// One entry per simulated governor, noDVS reference first; empty when
  /// the set was rejected or no governors were requested.
  std::vector<GovernorPlan> plans;
};

/// Monotone counters a Session keeps about itself (exported by the
/// daemon's stats endpoint).
struct SessionStats {
  std::int64_t admit_queries = 0;
  std::int64_t plan_queries = 0;
  std::int64_t run_cases = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
};

class Session {
 public:
  Session();

  /// Exact uniprocessor admission (processor-demand criterion).  Agrees
  /// with sched::edf_schedulable on every set; additionally reports the
  /// static speed and a rejection reason.  Zero steady-state allocation:
  /// the checkpoint buffer is session-owned.
  [[nodiscard]] AdmissionVerdict admit(const task::TaskSet& ts);

  /// Partitioned admission: bin-pack onto `cores` with `heuristic`; the
  /// verdict is the packing feasibility, `static_speed` the max per-core
  /// minimum constant speed.  With placement != nullptr the assignment is
  /// reported even on rejection (as far as packing got).
  [[nodiscard]] AdmissionVerdict admit(const task::TaskSet& ts,
                                       std::size_t cores,
                                       mp::PartitionHeuristic heuristic,
                                       PlacementReport* placement);

  /// The full query: admission (+placement), then — when admitted and
  /// governors were requested — the bounded-horizon simulation and
  /// optional YDS bounds.
  [[nodiscard]] PlanReport plan(const task::TaskSet& ts,
                                const QueryOptions& opts);

  /// The CLI `run` path: a full experiment case through this session.
  /// Exactly exp::run_case — same bytes, same determinism contract — with
  /// the session accounting for it.
  [[nodiscard]] exp::CaseOutcome run_case(const exp::Case& c,
                                          const exp::ExperimentConfig& cfg);

  [[nodiscard]] const SessionStats& stats() const noexcept { return stats_; }

 private:
  /// The admission test proper, shared by admit() and plan() (which do
  /// their own stats accounting).
  [[nodiscard]] AdmissionVerdict check(const task::TaskSet& ts,
                                       std::size_t cores,
                                       mp::PartitionHeuristic heuristic,
                                       PlacementReport* placement);
  [[nodiscard]] AdmissionVerdict check_uniprocessor(const task::TaskSet& ts);

  /// Reusable demand-test checkpoint buffer (the admission hot path).
  std::vector<Time> checkpoints_;
  SessionStats stats_;
};

}  // namespace dvs::svc
