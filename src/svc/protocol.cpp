#include "svc/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <sstream>
#include <utility>
#include <vector>

#include "core/registry.hpp"
#include "obs/json_mini.hpp"
#include "task/io.hpp"
#include "util/error.hpp"

namespace dvs::svc {
namespace {

using obs::JsonValue;
using obs::JsonWriter;
using util::ContractError;

// ---------------------------------------------------------------------------
// Request decoding
// ---------------------------------------------------------------------------

const JsonValue& require(const JsonValue& q, const char* key) {
  const JsonValue* v = q.find(key);
  DVS_EXPECT(v != nullptr, std::string("missing required field '") + key +
                               "'");
  return *v;
}

double require_number(const JsonValue& q, const char* key) {
  const JsonValue& v = require(q, key);
  DVS_EXPECT(v.is_number(), std::string("field '") + key +
                                "' must be a number");
  return v.number;
}

double optional_number(const JsonValue& q, const char* key, double fallback) {
  const JsonValue* v = q.find(key);
  if (v == nullptr) return fallback;
  DVS_EXPECT(v->is_number(), std::string("field '") + key +
                                 "' must be a number");
  return v->number;
}

std::string optional_string(const JsonValue& q, const char* key,
                            const std::string& fallback) {
  const JsonValue* v = q.find(key);
  if (v == nullptr) return fallback;
  DVS_EXPECT(v->is_string(), std::string("field '") + key +
                                 "' must be a string");
  return v->string;
}

std::size_t optional_count(const JsonValue& q, const char* key,
                           std::size_t fallback, std::size_t max) {
  const double raw = optional_number(q, key, static_cast<double>(fallback));
  DVS_EXPECT(raw >= 0.0 && raw <= static_cast<double>(max) &&
                 raw == std::floor(raw),
             std::string("field '") + key + "' must be an integer in [0, " +
                 std::to_string(max) + "]");
  return static_cast<std::size_t>(raw);
}

std::int32_t optional_window(const JsonValue& t, const char* key,
                             std::int32_t fallback) {
  const double raw =
      optional_number(t, key, static_cast<double>(fallback));
  DVS_EXPECT(raw >= 1.0 && raw <= 1e9 && raw == std::floor(raw),
             std::string("field '") + key +
                 "' must be a positive integer window");
  return static_cast<std::int32_t>(raw);
}

/// Task set from the "tasks" array or the "tasks_csv" string; the same
/// defaulting rules as the CSV loader (deadline = period, bcet = wcet,
/// phase = 0, hard firmness).
task::TaskSet parse_task_set(const JsonValue& q) {
  const std::string set_name = optional_string(q, "name", "query");
  if (const JsonValue* csv = q.find("tasks_csv")) {
    DVS_EXPECT(csv->is_string(), "field 'tasks_csv' must be a string");
    std::istringstream in(csv->string);
    return task::load_task_set_csv(in, set_name);
  }
  const JsonValue& tasks = require(q, "tasks");
  DVS_EXPECT(tasks.is_array(), "field 'tasks' must be an array");
  DVS_EXPECT(!tasks.array.empty(), "field 'tasks' must not be empty");
  task::TaskSet ts(set_name);
  for (std::size_t i = 0; i < tasks.array.size(); ++i) {
    const JsonValue& jt = tasks.array[i];
    DVS_EXPECT(jt.is_object(),
               "tasks[" + std::to_string(i) + "] must be an object");
    task::Task t;
    t.id = static_cast<std::int32_t>(i);
    t.name = optional_string(jt, "name", "t" + std::to_string(i));
    t.period = require_number(jt, "period");
    t.wcet = require_number(jt, "wcet");
    t.deadline = optional_number(jt, "deadline", t.period);
    t.bcet = optional_number(jt, "bcet", t.wcet);
    t.phase = optional_number(jt, "phase", 0.0);
    t.mk_m = optional_window(jt, "mk_m", 1);
    t.mk_k = optional_window(jt, "mk_k", t.mk_m);
    ts.add(std::move(t));
  }
  ts.validate();
  return ts;
}

QueryOptions parse_options(const JsonValue& q) {
  QueryOptions o;
  o.cores = optional_count(q, "cores", 0, 4096);
  o.heuristic = mp::heuristic_by_name(optional_string(q, "partition", "ff"));
  o.processor = optional_string(q, "processor", "ideal");
  o.workload = optional_string(q, "workload", "uniform");
  o.length = optional_number(q, "length", -1.0);
  if (const JsonValue* yds = q.find("yds")) {
    DVS_EXPECT(yds->is_bool(), "field 'yds' must be a boolean");
    o.yds_bound = yds->boolean;
  }
  if (const JsonValue* g = q.find("governors")) {
    if (g->is_string()) {
      DVS_EXPECT(g->string == "all",
                 "field 'governors' must be an array of names or \"all\"");
      o.governors = core::governor_names();
    } else {
      DVS_EXPECT(g->is_array(),
                 "field 'governors' must be an array of names or \"all\"");
      for (const JsonValue& name : g->array) {
        DVS_EXPECT(name.is_string(), "governor names must be strings");
        o.governors.push_back(name.string);
      }
    }
  }
  return o;
}

// ---------------------------------------------------------------------------
// Response encoding
// ---------------------------------------------------------------------------

/// Echo a numeric request id, directly after "op" so pipelined clients
/// can match responses.  Non-numeric ids are a request error upstream.
void echo_id(JsonWriter& j, const JsonValue& q) {
  if (const JsonValue* id = q.find("id"); id != nullptr && id->is_number()) {
    j.kv("id", id->number);
  }
}

void encode_admission(JsonWriter& j, const AdmissionVerdict& v) {
  j.kv("admitted", v.admitted)
      .kv("utilization", v.utilization)
      .kv("density", v.density)
      .kv("static_speed", v.static_speed);
  if (!v.reason.empty()) j.kv("reason", v.reason);
}

void encode_placement(JsonWriter& j, const PlacementReport& p) {
  j.key("placement").begin_object();
  j.kv("feasible", p.feasible)
      .kv("cores", static_cast<std::int64_t>(p.cores))
      .kv("heuristic", mp::heuristic_name(p.heuristic));
  j.key("core_of").begin_array();
  for (const std::int32_t c : p.core_of) j.value(c);
  j.end_array();
  j.key("core_utilization").begin_array();
  for (const double u : p.core_utilization) j.value(u);
  j.end_array();
  if (!p.feasible) {
    j.kv("rejected_task", p.rejected_task).kv("error", p.error);
  }
  j.end_object();
}

void encode_plans(JsonWriter& j, const PlanReport& r) {
  j.kv("length", r.sim_length);
  if (r.have_bounds) {
    j.key("bounds").begin_object();
    j.kv("continuous_energy", r.bounds.continuous_energy)
        .kv("discrete_energy", r.bounds.discrete_energy)
        .kv("max_speed", r.bounds.max_speed)
        .kv("feasible", r.bounds.feasible)
        .kv("jobs", static_cast<std::int64_t>(r.bounds.n_jobs));
    j.end_object();
  }
  j.key("plans").begin_array();
  for (const GovernorPlan& p : r.plans) {
    j.begin_object();
    j.kv("governor", p.governor)
        .kv("energy", p.total_energy)
        .kv("normalized", p.normalized_energy)
        .kv("average_speed", p.average_speed)
        .kv("jobs", p.jobs_released)
        .kv("misses", p.deadline_misses)
        .kv("switches", p.speed_switches)
        .kv("preemptions", p.preemptions);
    if (p.gap_continuous > 0.0) {
      j.kv("gap_continuous", p.gap_continuous)
          .kv("gap_discrete", p.gap_discrete);
    }
    j.end_object();
  }
  j.end_array();
}

/// Answer one ping/admit/plan query.  Pure: the bytes depend only on the
/// query (plus the session's reusable arenas, never its history), which
/// is what makes batch elements byte-identical to single responses.
std::string respond_query(Session& session, const JsonValue& q) {
  std::string out;
  JsonWriter j(out);
  const JsonValue& op_v = require(q, "op");
  DVS_EXPECT(op_v.is_string(), "field 'op' must be a string");
  const std::string& op = op_v.string;
  if (op == "ping") {
    j.begin_object().kv("ok", true).kv("op", "ping");
    echo_id(j, q);
    j.end_object();
    return out;
  }
  if (op == "admit") {
    const task::TaskSet ts = parse_task_set(q);
    const QueryOptions o = parse_options(q);
    PlacementReport placement;
    const AdmissionVerdict v =
        o.cores >= 1 ? session.admit(ts, o.cores, o.heuristic, &placement)
                     : session.admit(ts);
    j.begin_object().kv("ok", true).kv("op", "admit");
    echo_id(j, q);
    encode_admission(j, v);
    if (o.cores >= 1) encode_placement(j, placement);
    j.end_object();
    return out;
  }
  if (op == "plan") {
    const task::TaskSet ts = parse_task_set(q);
    const QueryOptions o = parse_options(q);
    const PlanReport r = session.plan(ts, o);
    j.begin_object().kv("ok", true).kv("op", "plan");
    echo_id(j, q);
    encode_admission(j, r.admission);
    if (r.placement) encode_placement(j, *r.placement);
    encode_plans(j, r);
    j.end_object();
    return out;
  }
  throw ContractError("unknown op '" + op + "'");
}

}  // namespace

std::string error_response(const std::string& message) {
  std::string out;
  JsonWriter j(out);
  j.begin_object().kv("ok", false).kv("error", message).end_object();
  return out;
}

ProtocolHandler::ProtocolHandler(HandlerHooks hooks)
    : hooks_(std::move(hooks)) {}

std::string ProtocolHandler::handle(const std::string& line,
                                    bool* shutdown_requested,
                                    std::string* op_out) {
  if (op_out != nullptr) *op_out = "?";
  try {
    const JsonValue q = obs::parse_json(line);
    DVS_EXPECT(q.is_object(), "request must be a JSON object");
    const JsonValue& op_v = require(q, "op");
    DVS_EXPECT(op_v.is_string(), "field 'op' must be a string");
    const std::string& op = op_v.string;
    if (op_out != nullptr) *op_out = op;

    if (op == "shutdown") {
      if (shutdown_requested != nullptr) *shutdown_requested = true;
      std::string out;
      JsonWriter j(out);
      j.begin_object().kv("ok", true).kv("op", "shutdown");
      echo_id(j, q);
      j.end_object();
      return out;
    }
    if (op == "stats") {
      std::string out;
      JsonWriter j(out);
      j.begin_object().kv("ok", true).kv("op", "stats");
      echo_id(j, q);
      const SessionStats& s = session_.stats();
      j.key("session").begin_object();
      j.kv("admit_queries", s.admit_queries)
          .kv("plan_queries", s.plan_queries)
          .kv("run_cases", s.run_cases)
          .kv("admitted", s.admitted)
          .kv("rejected", s.rejected);
      j.end_object();
      if (hooks_.stats_fields) hooks_.stats_fields(j);
      j.end_object();
      return out;
    }
    if (op == "batch") {
      const JsonValue& queries = require(q, "queries");
      DVS_EXPECT(queries.is_array(), "field 'queries' must be an array");
      // Fan out over the pool when one is wired in; either way results
      // are assembled in query index order and each element's bytes are
      // exactly the single-query response (respond_query is pure).
      // Queries are sharded into one contiguous slab per worker so a
      // large batch of cheap admissions pays a handful of submit/future
      // round trips rather than one per query.
      const std::size_t n = queries.array.size();
      std::vector<std::string> results(n);
      if (hooks_.batch_pool != nullptr && n > 1) {
        // At least one slab even when the pool reports zero workers
        // (already shut down) — its failed future routes the whole batch
        // through the inline fallback below.
        const std::size_t slabs =
            std::max<std::size_t>(1, std::min(n, hooks_.batch_pool->size() * 4));
        std::vector<std::future<void>> futures;
        futures.reserve(slabs);
        for (std::size_t s = 0; s < slabs; ++s) {
          const std::size_t lo = n * s / slabs;
          const std::size_t hi = n * (s + 1) / slabs;
          futures.push_back(
              hooks_.batch_pool->submit([&queries, &results, lo, hi] {
                thread_local Session worker_session;
                for (std::size_t i = lo; i < hi; ++i) {
                  try {
                    results[i] =
                        respond_query(worker_session, queries.array[i]);
                  } catch (const std::exception& e) {
                    results[i] = error_response(e.what());
                  }
                }
              }));
        }
        for (std::size_t s = 0; s < slabs; ++s) {
          try {
            futures[s].get();
          } catch (const std::exception&) {
            // Pool already shut down: answer this slab inline instead.
            const std::size_t lo = n * s / slabs;
            const std::size_t hi = n * (s + 1) / slabs;
            for (std::size_t i = lo; i < hi; ++i) {
              try {
                results[i] = respond_query(session_, queries.array[i]);
              } catch (const std::exception& inner) {
                results[i] = error_response(inner.what());
              }
            }
          }
        }
      } else {
        for (std::size_t i = 0; i < queries.array.size(); ++i) {
          try {
            results[i] = respond_query(session_, queries.array[i]);
          } catch (const std::exception& e) {
            results[i] = error_response(e.what());
          }
        }
      }
      std::string out;
      JsonWriter j(out);
      j.begin_object().kv("ok", true).kv("op", "batch");
      echo_id(j, q);
      j.kv("n", static_cast<std::int64_t>(results.size()));
      j.key("results").begin_array();
      for (const std::string& r : results) j.raw(r);
      j.end_array();
      j.end_object();
      return out;
    }
    return respond_query(session_, q);
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

}  // namespace dvs::svc
