#include "svc/planner.hpp"

#include <algorithm>
#include <cmath>

#include "cpu/processors.hpp"
#include "sched/analysis.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dvs::svc {
namespace {

/// True when every task has an implicit deadline (D == T) — the case the
/// utilization bound answers exactly, no checkpoint walk needed.
bool implicit_deadlines(const task::TaskSet& ts) {
  for (const auto& t : ts) {
    if (!time_eq(t.deadline, t.period)) return false;
  }
  return true;
}

}  // namespace

Session::Session() {
  // Pre-size the checkpoint arena so typical embedded-scale queries
  // (tens of tasks, hyperperiods of a few hundred deadlines) never grow
  // it: the admission hot path then allocates nothing at all.
  checkpoints_.reserve(1024);
}

AdmissionVerdict Session::check_uniprocessor(const task::TaskSet& ts) {
  // The same decision procedure as sched::edf_schedulable /
  // sched::minimum_constant_speed (same bounds, same epsilons — the
  // equivalence is pinned by test_svc), fused into one checkpoint walk
  // that also explains rejections and reuses the session's buffer.
  AdmissionVerdict v;
  v.utilization = ts.utilization();
  v.density = ts.density();
  if (ts.empty()) {
    v.admitted = true;
    v.static_speed = 1e-9;  // matches sched::minimum_constant_speed
    return v;
  }
  if (v.utilization > 1.0 + 1e-9) {
    v.reason = "utilization " + util::format_double(v.utilization, 4) +
               " exceeds 1";
    return v;
  }
  if (implicit_deadlines(ts)) {
    v.admitted = true;
    v.static_speed = std::min(1.0, v.utilization);
    return v;
  }
  const auto horizon = sched::analysis_horizon(ts);
  if (!horizon) {
    // No finite demand horizon: the (sufficient) density test decides.
    if (ts.density() <= 1.0 + 1e-9) {
      v.admitted = true;
      v.static_speed = std::min(1.0, ts.density());
    } else {
      v.reason = "density " + util::format_double(ts.density(), 4) +
                 " exceeds 1 with no finite analysis horizon";
    }
    return v;
  }
  sched::deadline_checkpoints_into(ts, *horizon, checkpoints_);
  double speed = v.utilization;  // h(t)/t converges to U for large t
  for (const Time d : checkpoints_) {
    const Work h = sched::demand_bound(ts, d);
    if (h > d + kTimeEps) {
      v.reason = "processor demand " + util::format_double(h, 6) +
                 " exceeds the interval at t = " + util::format_double(d, 6);
      return v;
    }
    if (d > 0.0) speed = std::max(speed, h / d);
  }
  v.admitted = true;
  v.static_speed = std::min(1.0, speed);
  return v;
}

AdmissionVerdict Session::check(const task::TaskSet& ts, std::size_t cores,
                                mp::PartitionHeuristic heuristic,
                                PlacementReport* placement) {
  if (cores == 0) {
    DVS_EXPECT(placement == nullptr,
               "placement is a partitioned concept; pass cores >= 1");
    return check_uniprocessor(ts);
  }
  AdmissionVerdict v;
  v.utilization = ts.utilization();
  v.density = ts.density();
  const mp::PartitionResult pr =
      mp::partition_task_set(ts, cores, heuristic);
  if (placement != nullptr) {
    placement->feasible = pr.feasible;
    placement->cores = cores;
    placement->heuristic = heuristic;
    placement->core_of = pr.partition.core_of;
    placement->core_utilization = pr.partition.core_utilization;
    placement->rejected_task = pr.rejected_task;
    placement->error = pr.error;
  }
  if (!pr.feasible) {
    v.reason = pr.error;
    return v;
  }
  v.admitted = true;
  // The partitioned static plan: each core runs at its own minimum
  // constant speed; report the binding (maximum) one.
  double speed = 0.0;
  for (std::size_t c = 0; c < cores; ++c) {
    if (pr.partition.tasks_of_core[c].empty()) continue;
    const task::TaskSet core_set = mp::core_task_set(ts, pr.partition, c);
    speed = std::max(speed, sched::minimum_constant_speed(core_set));
  }
  v.static_speed = speed;
  return v;
}

AdmissionVerdict Session::admit(const task::TaskSet& ts) {
  AdmissionVerdict v = check(ts, 0, mp::PartitionHeuristic::kFirstFit,
                             nullptr);
  ++stats_.admit_queries;
  ++(v.admitted ? stats_.admitted : stats_.rejected);
  return v;
}

AdmissionVerdict Session::admit(const task::TaskSet& ts, std::size_t cores,
                                mp::PartitionHeuristic heuristic,
                                PlacementReport* placement) {
  AdmissionVerdict v = check(ts, cores, heuristic, placement);
  ++stats_.admit_queries;
  ++(v.admitted ? stats_.admitted : stats_.rejected);
  return v;
}

PlanReport Session::plan(const task::TaskSet& ts, const QueryOptions& opts) {
  PlanReport r;
  if (opts.cores >= 1) {
    r.placement.emplace();
    r.admission = check(ts, opts.cores, opts.heuristic, &*r.placement);
  } else {
    r.admission = check(ts, 0, opts.heuristic, nullptr);
  }
  ++stats_.plan_queries;
  ++(r.admission.admitted ? stats_.admitted : stats_.rejected);
  r.sim_length = opts.length < 0.0 ? ts.default_sim_length() : opts.length;
  if (!r.admission.admitted || opts.governors.empty()) return r;

  exp::ExperimentConfig cfg;
  cfg.governors = opts.governors;
  cfg.processor = cpu::processor_by_name(opts.processor);
  cfg.sim_length = opts.length;
  cfg.n_threads = 1;  // sessions are per-thread; the daemon parallelizes
  cfg.oracle = opts.yds_bound;
  if (opts.cores >= 1) {
    cfg.n_cores = opts.cores;
    cfg.partitioner = opts.heuristic;
  }
  const exp::Case c{ts, task::workload_by_spec(opts.workload)};
  const exp::CaseOutcome outcome = exp::run_case(c, cfg);
  r.bounds = outcome.bounds;
  r.have_bounds = cfg.oracle;
  r.plans.reserve(outcome.outcomes.size());
  for (const auto& g : outcome.outcomes) {
    DVS_ENSURE(!g.failed(), "plan simulation failed for governor '" +
                                g.governor + "': " + g.error);
    GovernorPlan p;
    p.governor = g.governor;
    p.total_energy = g.result.total_energy();
    p.normalized_energy = g.normalized_energy;
    p.average_speed = g.result.average_speed;
    p.jobs_released = g.result.jobs_released;
    p.deadline_misses = g.result.deadline_misses;
    p.speed_switches = g.result.speed_switches;
    p.preemptions = g.result.preemptions;
    p.gap_continuous = g.gap_continuous;
    p.gap_discrete = g.gap_discrete;
    r.plans.push_back(std::move(p));
  }
  if (!outcome.outcomes.empty()) {
    r.sim_length = outcome.outcomes.front().result.sim_length;
  }
  return r;
}

exp::CaseOutcome Session::run_case(const exp::Case& c,
                                   const exp::ExperimentConfig& cfg) {
  ++stats_.run_cases;
  return exp::run_case(c, cfg);
}

}  // namespace dvs::svc
