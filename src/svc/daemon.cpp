#include "svc/daemon.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "svc/protocol.hpp"
#include "util/error.hpp"

namespace dvs::svc {
namespace {

/// Ops the stats endpoint enumerates (a fixed list keeps the stats JSON
/// deterministic even before an op was ever requested).
constexpr const char* kOps[] = {"ping", "admit", "plan",     "batch",
                                "stats", "?",    "shutdown"};

/// Write the whole buffer, looping over partial sends.  Returns false on
/// a connection error (the caller then drops the connection).
bool send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Daemon::Daemon(DaemonOptions opts)
    : opts_(opts),
      pool_(util::ThreadPool::resolve_threads(opts.batch_threads)) {}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  DVS_EXPECT(!started_, "Daemon::start called twice");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  DVS_EXPECT(listen_fd_ >= 0,
             std::string("socket(): ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    DVS_EXPECT(false, "bind(127.0.0.1:" + std::to_string(opts_.port) +
                          "): " + why);
  }
  DVS_EXPECT(::listen(listen_fd_, 64) == 0,
             std::string("listen(): ") + std::strerror(errno));
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);
  started_ = true;
  if (opts_.log != nullptr) {
    (*opts_.log) << "slackdvs-planner listening on 127.0.0.1:" << port_
                 << std::endl;
  }
  accept_thread_ = std::thread(&Daemon::accept_loop, this);
}

void Daemon::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (stop) or fatal — either way we are done
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(&Daemon::serve_connection, this, fd);
  }
}

void Daemon::serve_connection(int fd) {
  ProtocolHandler handler(
      {&pool_, [this](obs::JsonWriter& j) { write_stats(j); }});
  std::string buf;
  buf.reserve(4096);
  std::string response;
  char chunk[16384];
  bool overflowing = false;  // discarding an oversized request
  bool shutdown_requested = false;
  bool alive = true;
  while (alive && !shutdown_requested) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // client closed, or request_stop() shut the socket down
    }
    std::size_t start = 0;
    for (ssize_t i = 0; i < n && alive && !shutdown_requested; ++i) {
      if (chunk[i] != '\n') continue;
      buf.append(chunk + start, static_cast<std::size_t>(i) -
                                    start);
      start = static_cast<std::size_t>(i) + 1;
      if (!buf.empty() && buf.back() == '\r') buf.pop_back();
      if (overflowing) {
        // The newline ends the oversized request; resynchronize.
        overflowing = false;
        buf.clear();
        continue;
      }
      if (buf.size() > opts_.max_request_bytes) {
        // A complete line can exceed the cap without ever tripping the
        // partial-line check below (the whole request arrived in one
        // recv); it gets the same size error, never the parser.
        observe("?", false, 0.0);
        response = error_response(
            "request exceeds " + std::to_string(opts_.max_request_bytes) +
            " bytes");
        response.push_back('\n');
        alive = send_all(fd, response.data(), response.size());
        buf.clear();
        continue;
      }
      const auto t0 = std::chrono::steady_clock::now();
      std::string op;
      response = handler.handle(buf, &shutdown_requested, &op);
      response.push_back('\n');
      const double micros =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count();
      const bool ok = response.rfind("{\"ok\":true", 0) == 0;
      observe(op, ok, micros);
      alive = send_all(fd, response.data(), response.size());
      buf.clear();
    }
    if (alive && !shutdown_requested) {
      buf.append(chunk + start, static_cast<std::size_t>(n) - start);
      if (!overflowing && buf.size() > opts_.max_request_bytes) {
        // Reject now, then skip bytes until the request's newline.
        observe("?", false, 0.0);
        response = error_response(
            "request exceeds " + std::to_string(opts_.max_request_bytes) +
            " bytes");
        response.push_back('\n');
        alive = send_all(fd, response.data(), response.size());
        overflowing = true;
        buf.clear();
      }
    }
  }
  ::close(fd);
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
      if (*it == fd) {
        conn_fds_.erase(it);
        break;
      }
    }
  }
  if (shutdown_requested) request_stop();
}

void Daemon::observe(const std::string& op, bool ok, double micros) {
  const std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_.counter("svc." + op + ".requests").inc();
  if (!ok) metrics_.counter("svc." + op + ".errors").inc();
  // 0..5 ms in 100 buckets (50 us each); slower requests land in the
  // overflow bucket and the quantile falls back to max_seen.
  metrics_.histogram("svc." + op + ".latency_us", 0.0, 5000.0, 100)
      .add(micros);
}

void Daemon::write_stats(obs::JsonWriter& j) {
  const std::lock_guard<std::mutex> lock(metrics_mutex_);
  j.key("daemon").begin_object();
  j.key("endpoints").begin_object();
  for (const char* op : kOps) {
    const obs::Counter* requests =
        metrics_.find_counter("svc." + std::string(op) + ".requests");
    if (requests == nullptr || requests->value() == 0) continue;
    const obs::Counter* errors =
        metrics_.find_counter("svc." + std::string(op) + ".errors");
    const obs::Histogram* lat =
        metrics_.find_histogram("svc." + std::string(op) + ".latency_us");
    j.key(op).begin_object();
    j.kv("requests", requests->value());
    j.kv("errors", errors != nullptr ? errors->value() : 0);
    if (lat != nullptr && lat->samples() > 0) {
      j.kv("p50_us", lat->quantile(0.5)).kv("p99_us", lat->quantile(0.99));
    }
    j.end_object();
  }
  j.end_object();
  j.end_object();
}

void Daemon::request_stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    // shutdown() unblocks accept(); the fd itself is closed in wait() so
    // a concurrent accept never sees a recycled descriptor.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  const std::lock_guard<std::mutex> lock(conn_mutex_);
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void Daemon::wait() {
  if (!started_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop has exited, so conn_threads_ can no longer grow.
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  pool_.shutdown();
}

void Daemon::stop() {
  if (!started_) return;
  request_stop();
  wait();
}

}  // namespace dvs::svc
