// Fault injection for robustness experiments (DESIGN.md §7).
//
// The DATE 2002 argument — and every governor in src/core/ — assumes two
// things reality routinely violates: actual execution time never exceeds
// the WCET budget, and the processor always honors a speed request.  This
// module makes both assumptions breakable on purpose, through two
// decorators that slot into the existing simulation interfaces:
//
//  * faulty_workload() wraps an ExecutionTimeModel and injects
//      - WCET overruns: with probability `overrun_prob` per job, the job's
//        demand becomes wcet * (1 + overrun_magnitude);
//      - release jitter: with probability `jitter_prob` per job, up to
//        `jitter_time` seconds of extra demand.  A job released J seconds
//        late with an unchanged absolute deadline loses exactly J seconds
//        of window, which in demand-bound terms equals J extra units of
//        work at full speed — so jitter is folded into the execution-time
//        channel (the standard transformation; recorded in DESIGN.md §7).
//  * faulty_processor() wraps a cpu::Processor and injects
//      - stuck-frequency faults: with probability `stuck_prob` per switch
//        attempt, the hardware ignores the request and stays at the
//        current operating point;
//      - transition stalls: with probability `stall_prob` per switch, an
//        extra `stall_time` seconds of stall on top of the transition
//        model's own cost.
//
// Determinism contract: every draw is a stateless counter hash —
// (seed, task id, job index) for the workload channel, (seed, switch
// index) for the processor channel — so fault patterns replay identically
// for every governor and every thread count, exactly like the
// common-random-numbers protocol of the workload models (util/rng.hpp).
//
// What happens when an injected overrun meets the simulator is governed by
// sim::OverrunPolicy (SimOptions::containment); see sim/simulator.hpp.
#pragma once

#include <cstdint>
#include <string>

#include "cpu/processors.hpp"
#include "sim/simulator.hpp"
#include "task/workload.hpp"

namespace dvs::fault {

/// Knobs of one fault scenario.  All probabilities are per-event
/// (per job for the workload channel, per switch attempt for the
/// processor channel) and must lie in [0, 1]; magnitudes must be >= 0.
struct FaultSpec {
  std::uint64_t seed = 0;  ///< fault stream seed (independent of workload)

  // --- execution-time channel (faulty_workload) -------------------------
  double overrun_prob = 0.0;       ///< P(job demand exceeds its WCET)
  double overrun_magnitude = 0.0;  ///< overrun demand = wcet * (1 + this)
  double jitter_prob = 0.0;        ///< P(release jitter hits a job)
  Time jitter_time = 0.0;          ///< max jitter, folded as extra demand

  // --- processor channel (faulty_processor) -----------------------------
  double stuck_prob = 0.0;  ///< P(speed request is ignored per switch)
  double stall_prob = 0.0;  ///< P(extra stall per honored switch)
  Time stall_time = 0.0;    ///< extra stall seconds when injected

  [[nodiscard]] bool injects_workload_faults() const noexcept {
    return overrun_prob > 0.0 || jitter_prob > 0.0;
  }
  [[nodiscard]] bool injects_processor_faults() const noexcept {
    return stuck_prob > 0.0 || stall_prob > 0.0;
  }

  /// Throws ContractError when any knob is outside its documented range.
  void validate() const;
};

/// Decorate `base` with the spec's execution-time faults.  The result
/// keeps base's determinism contract; with a spec that injects nothing it
/// is a pure pass-through.  Overrunning draws exceed task.wcet — pick a
/// sim::OverrunPolicy to decide what the simulator does about it.
[[nodiscard]] task::ExecutionTimeModelPtr faulty_workload(
    task::ExecutionTimeModelPtr base, const FaultSpec& spec);

/// Copy of `base` whose `faults` hook injects the spec's stuck-frequency
/// and transition-stall faults (consulted by the simulator at every speed
/// switch attempt; see cpu::ProcessorFaultModel).
[[nodiscard]] cpu::Processor faulty_processor(const cpu::Processor& base,
                                              const FaultSpec& spec);

/// Parse a containment policy name: "none" | "clamp_at_wcet" |
/// "escalate_to_max_speed" (case-insensitive); throws ContractError on
/// unknown names.
[[nodiscard]] sim::OverrunPolicy containment_by_name(const std::string& name);

/// Canonical name of a containment policy (inverse of containment_by_name).
[[nodiscard]] std::string containment_name(sim::OverrunPolicy policy);

}  // namespace dvs::fault
