#include "fault/fault.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace dvs::fault {
namespace {

// Distinct salts keep the four fault channels statistically independent
// even though they share one FaultSpec::seed.
constexpr std::uint64_t kOverrunSalt = 0x6f76657272756e21ULL;   // "overrun!"
constexpr std::uint64_t kJitterSalt = 0x6a69747465722121ULL;    // "jitter!!"
constexpr std::uint64_t kJitterAmtSalt = 0x6a69747465724d41ULL; // "jitterMA"
constexpr std::uint64_t kStuckSalt = 0x737475636b212121ULL;     // "stuck!!!"
constexpr std::uint64_t kStallSalt = 0x7374616c6c212121ULL;     // "stall!!!"

void expect_prob(double p, const char* what) {
  DVS_EXPECT(std::isfinite(p) && p >= 0.0 && p <= 1.0,
             std::string(what) + " must lie in [0, 1]");
}

void expect_nonneg(double v, const char* what) {
  DVS_EXPECT(std::isfinite(v) && v >= 0.0,
             std::string(what) + " must be finite and >= 0");
}

/// ExecutionTimeModel decorator injecting WCET overruns and (demand-folded)
/// release jitter on top of a base model's draws.  Stateless counter
/// hashing on (seed, task id, job index) preserves the common-random-
/// numbers protocol: every governor and every thread count sees the same
/// fault pattern.
class FaultyExecutionTimeModel final : public task::ExecutionTimeModel {
 public:
  FaultyExecutionTimeModel(task::ExecutionTimeModelPtr base, FaultSpec spec)
      : base_(std::move(base)), spec_(spec) {}

  [[nodiscard]] Work draw(const task::Task& task,
                          std::int64_t job_index) const override {
    Work w = base_->draw(task, job_index);
    const auto tid = static_cast<std::uint64_t>(task.id);
    const auto jix = static_cast<std::uint64_t>(job_index);
    if (spec_.overrun_prob > 0.0 &&
        util::hash_unit(spec_.seed ^ kOverrunSalt, tid, jix) <
            spec_.overrun_prob) {
      // The documented overrun shape: demand = wcet * (1 + magnitude).
      w = task.wcet * (1.0 + spec_.overrun_magnitude);
    }
    if (spec_.jitter_prob > 0.0 &&
        util::hash_unit(spec_.seed ^ kJitterSalt, tid, jix) <
            spec_.jitter_prob) {
      // Release jitter J with a fixed absolute deadline is, in demand-bound
      // terms, J extra work at unit speed (fault.hpp header comment).
      w += spec_.jitter_time *
           util::hash_unit(spec_.seed ^ kJitterAmtSalt, tid, jix);
    }
    return w;
  }

  [[nodiscard]] std::string name() const override {
    return base_->name() + "+faults";
  }

 private:
  task::ExecutionTimeModelPtr base_;
  FaultSpec spec_;
};

/// ProcessorFaultModel drawing stuck-frequency and extra-stall events from
/// (seed, switch index) — one independent decision per switch attempt.
class SpecProcessorFaults final : public cpu::ProcessorFaultModel {
 public:
  explicit SpecProcessorFaults(FaultSpec spec) : spec_(spec) {}

  [[nodiscard]] double honored_speed(std::int64_t switch_index, double from,
                                     double requested) const override {
    const auto idx = static_cast<std::uint64_t>(switch_index);
    if (spec_.stuck_prob > 0.0 &&
        util::hash_unit(spec_.seed ^ kStuckSalt, idx) < spec_.stuck_prob) {
      return from;  // stuck frequency: the request is silently ignored
    }
    return requested;
  }

  [[nodiscard]] Time extra_stall(std::int64_t switch_index, double /*from*/,
                                 double /*requested*/) const override {
    const auto idx = static_cast<std::uint64_t>(switch_index);
    if (spec_.stall_prob > 0.0 &&
        util::hash_unit(spec_.seed ^ kStallSalt, idx) < spec_.stall_prob) {
      return spec_.stall_time;
    }
    return 0.0;
  }

  [[nodiscard]] std::string name() const override { return "spec-faults"; }

 private:
  FaultSpec spec_;
};

}  // namespace

void FaultSpec::validate() const {
  expect_prob(overrun_prob, "overrun_prob");
  expect_prob(jitter_prob, "jitter_prob");
  expect_prob(stuck_prob, "stuck_prob");
  expect_prob(stall_prob, "stall_prob");
  expect_nonneg(overrun_magnitude, "overrun_magnitude");
  expect_nonneg(jitter_time, "jitter_time");
  expect_nonneg(stall_time, "stall_time");
}

task::ExecutionTimeModelPtr faulty_workload(task::ExecutionTimeModelPtr base,
                                            const FaultSpec& spec) {
  DVS_EXPECT(base != nullptr, "faulty_workload requires a base model");
  spec.validate();
  if (!spec.injects_workload_faults()) return base;  // pure pass-through
  return std::make_shared<FaultyExecutionTimeModel>(std::move(base), spec);
}

cpu::Processor faulty_processor(const cpu::Processor& base,
                                const FaultSpec& spec) {
  spec.validate();
  cpu::Processor out = base;
  if (spec.injects_processor_faults()) {
    out.name += "+faults";
    out.faults = std::make_shared<SpecProcessorFaults>(spec);
  }
  return out;
}

sim::OverrunPolicy containment_by_name(const std::string& name) {
  const std::string n = util::to_lower(name);
  if (n == "none") return sim::OverrunPolicy::kNone;
  if (n == "clamp_at_wcet") return sim::OverrunPolicy::kClampAtWcet;
  if (n == "escalate_to_max_speed") {
    return sim::OverrunPolicy::kEscalateToMaxSpeed;
  }
  throw util::ContractError(
      "unknown containment policy '" + name +
      "' (expected none | clamp_at_wcet | escalate_to_max_speed)");
}

std::string containment_name(sim::OverrunPolicy policy) {
  switch (policy) {
    case sim::OverrunPolicy::kNone:
      return "none";
    case sim::OverrunPolicy::kClampAtWcet:
      return "clamp_at_wcet";
    case sim::OverrunPolicy::kEscalateToMaxSpeed:
      return "escalate_to_max_speed";
  }
  throw util::InternalError("unhandled OverrunPolicy value");
}

}  // namespace dvs::fault
