#include "fault/checked_governor.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dvs::fault {
namespace {
/// Slightly above 1 so honest governors whose arithmetic lands at
/// 1 + a few ulps are not flagged; real range bugs overshoot by far more.
constexpr double kSpeedTol = 1e-9;
}  // namespace

CheckedGovernor::CheckedGovernor(sim::GovernorPtr inner)
    : inner_(std::move(inner)) {
  DVS_EXPECT(inner_ != nullptr, "CheckedGovernor requires a governor");
}

void CheckedGovernor::on_start(const sim::SimContext& ctx) {
  inner_->on_start(ctx);
}

void CheckedGovernor::on_release(const sim::Job& job,
                                 const sim::SimContext& ctx) {
  inner_->on_release(job, ctx);
}

void CheckedGovernor::on_completion(const sim::Job& job,
                                    const sim::SimContext& ctx) {
  inner_->on_completion(job, ctx);
}

double CheckedGovernor::select_speed(const sim::Job& running,
                                     const sim::SimContext& ctx) {
  const double alpha = inner_->select_speed(running, ctx);
  DVS_ENSURE(std::isfinite(alpha),
             "governor '" + inner_->name() + "' returned a non-finite speed");
  DVS_ENSURE(alpha > 0.0, "governor '" + inner_->name() +
                              "' returned a non-positive speed " +
                              util::format_double(alpha, 6));
  DVS_ENSURE(alpha <= 1.0 + kSpeedTol,
             "governor '" + inner_->name() + "' returned out-of-range speed " +
                 util::format_double(alpha, 6));
  return alpha;
}

std::string CheckedGovernor::name() const { return inner_->name(); }

sim::GovernorPtr checked(sim::GovernorPtr inner) {
  return std::make_unique<CheckedGovernor>(std::move(inner));
}

}  // namespace dvs::fault
