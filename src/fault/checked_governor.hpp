// Invariant-checking governor decorator.
//
// Wraps any Governor and verifies, at every scheduling point, that the
// wrapped policy's speed request is finite, strictly positive and at most
// 1 (+ a tiny tolerance for accumulated rounding).  The simulator itself
// tolerates out-of-range requests by clamping (see Governor::select_speed);
// this wrapper exists so tests and fault-injection benches can turn a
// silent clamp into a loud InternalError — any governor whose slack math
// goes negative or unbounded under overrun is a bug we want to see, not
// paper over.
//
// name() forwards to the wrapped governor so reports, CSV columns and
// registry lookups are unaffected by the wrapping.
#pragma once

#include "sim/governor.hpp"

namespace dvs::fault {

class CheckedGovernor final : public sim::Governor {
 public:
  explicit CheckedGovernor(sim::GovernorPtr inner);

  void on_start(const sim::SimContext& ctx) override;
  void on_release(const sim::Job& job, const sim::SimContext& ctx) override;
  void on_completion(const sim::Job& job, const sim::SimContext& ctx) override;
  [[nodiscard]] double select_speed(const sim::Job& running,
                                    const sim::SimContext& ctx) override;
  [[nodiscard]] std::string name() const override;

  /// Transparent for the decision audit, like name().
  [[nodiscard]] Time last_slack_estimate() const override {
    return inner_->last_slack_estimate();
  }

 private:
  sim::GovernorPtr inner_;
};

/// Convenience factory: wrap `inner` in a CheckedGovernor.
[[nodiscard]] sim::GovernorPtr checked(sim::GovernorPtr inner);

}  // namespace dvs::fault
