#include "cpu/frequency.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dvs::cpu {

FrequencyScale FrequencyScale::continuous(double alpha_min) {
  DVS_EXPECT(alpha_min > 0.0 && alpha_min <= 1.0,
             "alpha_min must be in (0, 1]");
  FrequencyScale s;
  s.alpha_min_ = alpha_min;
  return s;
}

FrequencyScale FrequencyScale::discrete(std::vector<double> levels) {
  DVS_EXPECT(!levels.empty(), "discrete scale needs at least one level");
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  for (double a : levels) {
    DVS_EXPECT(a > 0.0 && a <= 1.0, "levels must be in (0, 1]");
  }
  DVS_EXPECT(std::fabs(levels.back() - 1.0) < 1e-12,
             "the maximum speed (alpha = 1) must be an available level");
  FrequencyScale s;
  s.alpha_min_ = levels.front();
  s.levels_ = std::move(levels);
  return s;
}

FrequencyScale FrequencyScale::uniform_levels(int n, double alpha_min) {
  DVS_EXPECT(n >= 1, "need at least one level");
  DVS_EXPECT(alpha_min > 0.0 && alpha_min < 1.0, "alpha_min must be in (0, 1)");
  std::vector<double> levels;
  levels.reserve(static_cast<std::size_t>(n));
  if (n == 1) {
    levels.push_back(1.0);
  } else {
    for (int i = 0; i < n; ++i) {
      levels.push_back(alpha_min + (1.0 - alpha_min) * static_cast<double>(i) /
                                       static_cast<double>(n - 1));
    }
  }
  return discrete(std::move(levels));
}

double FrequencyScale::quantize_up(double alpha) const noexcept {
  if (levels_.empty()) {
    return std::clamp(alpha, alpha_min_, 1.0);
  }
  // First level >= alpha (within tolerance so exact levels map to
  // themselves).  Counting the strictly-smaller levels instead of
  // branching out at the first match keeps the loop branchless — each
  // comparison compiles to a flagless setcc/add — which matters because
  // quantize_up runs once per scheduling decision and the target level
  // varies decision to decision, so an early-exit branch is unpredictable.
  const double cut = alpha - 1e-12;
  std::size_t below = 0;
  for (const double level : levels_) {
    below += level < cut ? 1u : 0u;
  }
  return levels_[std::min(below, levels_.size() - 1)];
}

std::string FrequencyScale::describe() const {
  if (levels_.empty()) {
    return "continuous[" + util::format_double(alpha_min_, 3) + ", 1]";
  }
  std::vector<std::string> parts;
  parts.reserve(levels_.size());
  for (double a : levels_) parts.push_back(util::format_double(a, 3));
  return "discrete{" + util::join(parts, ", ") + "}";
}

}  // namespace dvs::cpu
