#include "cpu/energy_meter.hpp"

#include "util/error.hpp"

namespace dvs::cpu {

EnergyMeter::EnergyMeter(PowerModelPtr power, std::size_t task_count)
    : power_(std::move(power)), per_task_energy_(task_count, 0.0) {
  DVS_EXPECT(power_ != nullptr, "EnergyMeter needs a power model");
}

void EnergyMeter::add_busy(Time dt, double alpha, std::int32_t task_id) {
  DVS_EXPECT(dt >= 0.0, "negative busy interval");
  DVS_EXPECT(task_id >= 0 &&
                 static_cast<std::size_t>(task_id) < per_task_energy_.size(),
             "task id out of range");
  if (dt == 0.0) return;
  const double e = power_->busy_power(alpha) * dt;
  busy_energy_ += e;
  busy_time_ += dt;
  per_task_energy_[static_cast<std::size_t>(task_id)] += e;
}

void EnergyMeter::add_idle(Time dt) {
  DVS_EXPECT(dt >= 0.0, "negative idle interval");
  if (dt == 0.0) return;
  idle_energy_ += power_->idle_power() * dt;
  idle_time_ += dt;
}

void EnergyMeter::add_transition(Time dt, double energy) {
  DVS_EXPECT(dt >= 0.0 && energy >= 0.0, "negative transition cost");
  transition_energy_ += energy;
  transition_time_ += dt;
  ++transition_count_;
}

}  // namespace dvs::cpu
