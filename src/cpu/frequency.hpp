// Available operating points of a DVS processor.
//
// Speeds are expressed as the relative frequency alpha = f / f_max in
// (0, 1].  A scale is either continuous over [alpha_min, 1] or a discrete
// set of levels; governors always emit an *ideal* alpha and the simulator
// quantizes it **upward** (never down — a lower-than-requested speed could
// miss deadlines).
#pragma once

#include <string>
#include <vector>

namespace dvs::cpu {

class FrequencyScale {
 public:
  /// Continuous range [alpha_min, 1].  Requires 0 < alpha_min <= 1.
  [[nodiscard]] static FrequencyScale continuous(double alpha_min = 0.05);

  /// Discrete levels; they are sorted, deduplicated, and must end at 1.0
  /// (the maximum speed must be available).  Each level must be in (0, 1].
  [[nodiscard]] static FrequencyScale discrete(std::vector<double> levels);

  /// n evenly spaced levels alpha_min, ..., 1.0 (n >= 1).
  [[nodiscard]] static FrequencyScale uniform_levels(int n,
                                                     double alpha_min = 0.1);

  [[nodiscard]] bool is_discrete() const noexcept { return !levels_.empty(); }
  [[nodiscard]] double alpha_min() const noexcept { return alpha_min_; }
  /// Discrete levels, ascending; empty for a continuous scale.
  [[nodiscard]] const std::vector<double>& levels() const noexcept {
    return levels_;
  }

  /// The smallest available speed >= alpha; alpha above 1 clamps to 1,
  /// alpha below the minimum clamps to the minimum available speed.
  [[nodiscard]] double quantize_up(double alpha) const noexcept;

  [[nodiscard]] std::string describe() const;

 private:
  FrequencyScale() = default;
  double alpha_min_ = 0.05;
  std::vector<double> levels_;  // empty == continuous
};

}  // namespace dvs::cpu
