// Ready-made processor configurations.
//
// A Processor bundles the three hardware-facing policies the simulator
// needs: which speeds exist (FrequencyScale), what they cost (PowerModel),
// and what changing them costs (TransitionModel).
#pragma once

#include <string>

#include "cpu/frequency.hpp"
#include "cpu/power_model.hpp"
#include "cpu/transition.hpp"

namespace dvs::cpu {

struct Processor {
  std::string name = "ideal";
  FrequencyScale scale = FrequencyScale::continuous();
  PowerModelPtr power = cubic_power_model();
  TransitionModel transition = TransitionModel::none();
};

/// Idealized continuously scalable CPU with P = alpha^3 and free
/// transitions — the model under which DVS papers derive their headline
/// numbers.
[[nodiscard]] Processor ideal_processor(double alpha_min = 0.05);

/// Ideal power curve but only n evenly spaced speed levels.
[[nodiscard]] Processor quantized_ideal_processor(int levels,
                                                  double alpha_min = 0.1);

/// Intel XScale-like: 5 operating points (150..1000 MHz, 0.75..1.8 V) with
/// measured-power table from the DVS literature.
[[nodiscard]] Processor xscale_processor();

/// StrongARM SA-1100-like: 6 operating points (59..206 MHz,
/// 0.96..1.65 V); voltage transitions take <= 140 us.
[[nodiscard]] Processor strongarm_processor();

/// Transmeta Crusoe TM5400-like: 5 operating points (300..667 MHz,
/// 1.2..1.6 V).
[[nodiscard]] Processor crusoe_processor();

/// Generic 4-level model (25/50/75/100 % frequency at 2/3/4/5 V), the
/// didactic table that appears across the era's papers.
[[nodiscard]] Processor four_level_processor();

/// Look up a preset by name ("ideal", "xscale", "strongarm", "crusoe",
/// "four-level"); throws ContractError for unknown names.
[[nodiscard]] Processor processor_by_name(const std::string& name);

}  // namespace dvs::cpu
