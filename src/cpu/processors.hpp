// Ready-made processor configurations.
//
// A Processor bundles the three hardware-facing policies the simulator
// needs: which speeds exist (FrequencyScale), what they cost (PowerModel),
// and what changing them costs (TransitionModel).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cpu/frequency.hpp"
#include "cpu/power_model.hpp"
#include "cpu/transition.hpp"

namespace dvs::cpu {

/// Hardware-fault hook consulted by the simulator at every speed-switch
/// attempt (fault/fault.hpp provides the stochastic implementation).
/// `switch_index` counts switch attempts within one run, so deterministic
/// (counter-hashed) implementations replay identically across thread
/// counts.  Implementations must be stateless/const: one instance may be
/// shared by concurrent simulations.
class ProcessorFaultModel {
 public:
  virtual ~ProcessorFaultModel() = default;

  /// The speed the hardware actually honors when switch attempt
  /// `switch_index` requests `requested` while running at `from`.  Must
  /// return a speed the processor offers; returning `from` models a
  /// stuck-frequency fault (the request is silently ignored).
  [[nodiscard]] virtual double honored_speed(std::int64_t switch_index,
                                             double from,
                                             double requested) const = 0;

  /// Extra stall seconds injected on switch attempt `switch_index`
  /// (on top of the TransitionModel's own cost); must be >= 0.
  [[nodiscard]] virtual Time extra_stall(std::int64_t switch_index,
                                         double from,
                                         double requested) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

using ProcessorFaultModelPtr = std::shared_ptr<const ProcessorFaultModel>;

struct Processor {
  std::string name = "ideal";
  FrequencyScale scale = FrequencyScale::continuous();
  PowerModelPtr power = cubic_power_model();
  TransitionModel transition = TransitionModel::none();
  /// Optional hardware-fault hook; null (the default) means fault-free
  /// hardware and keeps every fault-free code path byte-identical.
  ProcessorFaultModelPtr faults;
};

/// Idealized continuously scalable CPU with P = alpha^3 and free
/// transitions — the model under which DVS papers derive their headline
/// numbers.
[[nodiscard]] Processor ideal_processor(double alpha_min = 0.05);

/// Ideal power curve but only n evenly spaced speed levels.
[[nodiscard]] Processor quantized_ideal_processor(int levels,
                                                  double alpha_min = 0.1);

/// Intel XScale-like: 5 operating points (150..1000 MHz, 0.75..1.8 V) with
/// measured-power table from the DVS literature.
[[nodiscard]] Processor xscale_processor();

/// StrongARM SA-1100-like: 6 operating points (59..206 MHz,
/// 0.96..1.65 V); voltage transitions take <= 140 us.
[[nodiscard]] Processor strongarm_processor();

/// Transmeta Crusoe TM5400-like: 5 operating points (300..667 MHz,
/// 1.2..1.6 V).
[[nodiscard]] Processor crusoe_processor();

/// Generic 4-level model (25/50/75/100 % frequency at 2/3/4/5 V), the
/// didactic table that appears across the era's papers.
[[nodiscard]] Processor four_level_processor();

/// Look up a preset by name ("ideal", "xscale", "strongarm", "crusoe",
/// "four-level"); throws ContractError for unknown names.
[[nodiscard]] Processor processor_by_name(const std::string& name);

}  // namespace dvs::cpu
