// Speed/voltage transition overhead models.
//
// Most inter-task DVS papers first assume free transitions, then study the
// impact of a nonzero switch cost.  Three models are provided:
//   * none      — free and instantaneous (the default assumption),
//   * constant  — fixed time and energy per switch (e.g. StrongARM
//                 SA-1100: <= 140 us per voltage change),
//   * voltage-delta — Burd's model: E = k * Cdd * |V1^2 - V2^2| with a
//                 fixed switch latency; energy scales with the actual
//                 voltage swing of the transition.
//
// Transition energy is expressed in the same normalized units as
// PowerModel (1 unit == max power for one second); the voltage-delta model
// converts joules via a reference max power in watts.
#pragma once

#include <string>

#include "cpu/power_model.hpp"
#include "util/time.hpp"

namespace dvs::cpu {

class TransitionModel {
 public:
  /// Free transitions (zero time, zero energy).
  [[nodiscard]] static TransitionModel none() noexcept;

  /// Fixed `t_switch` seconds and `e_switch` normalized energy per change.
  [[nodiscard]] static TransitionModel constant(Time t_switch, double e_switch);

  /// Burd's voltage-swing model.
  /// @param t_switch   switch latency in seconds (processor stalls)
  /// @param cdd_farads effective DC-DC converter capacitance (e.g. 5e-6)
  /// @param k          inefficiency factor (literature uses ~0.9)
  /// @param pmax_watts absolute max power used to normalize joules
  [[nodiscard]] static TransitionModel voltage_delta(Time t_switch,
                                                     double cdd_farads = 5e-6,
                                                     double k = 0.9,
                                                     double pmax_watts = 1.0);

  /// True when switching costs nothing (fast path for the simulator).
  [[nodiscard]] bool is_free() const noexcept;

  /// Stall time for a speed change; 0 when from == to.
  [[nodiscard]] Time switch_time(double alpha_from, double alpha_to) const;

  /// Normalized energy for a speed change; 0 when from == to.
  /// The power model supplies the physical voltages.
  [[nodiscard]] double switch_energy(const PowerModel& pm, double alpha_from,
                                     double alpha_to) const;

  [[nodiscard]] std::string describe() const;

 private:
  enum class Kind { kNone, kConstant, kVoltageDelta };
  TransitionModel() = default;
  Kind kind_ = Kind::kNone;
  Time t_switch_ = 0.0;
  double e_switch_ = 0.0;    // constant model
  double cdd_ = 0.0;         // voltage-delta model
  double k_ = 0.9;
  double pmax_watts_ = 1.0;
};

}  // namespace dvs::cpu
