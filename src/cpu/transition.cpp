#include "cpu/transition.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dvs::cpu {

TransitionModel TransitionModel::none() noexcept { return TransitionModel{}; }

TransitionModel TransitionModel::constant(Time t_switch, double e_switch) {
  DVS_EXPECT(t_switch >= 0.0 && e_switch >= 0.0,
             "transition costs must be non-negative");
  TransitionModel m;
  m.kind_ = Kind::kConstant;
  m.t_switch_ = t_switch;
  m.e_switch_ = e_switch;
  return m;
}

TransitionModel TransitionModel::voltage_delta(Time t_switch,
                                               double cdd_farads, double k,
                                               double pmax_watts) {
  DVS_EXPECT(t_switch >= 0.0, "switch time must be non-negative");
  DVS_EXPECT(cdd_farads > 0.0, "Cdd must be positive");
  DVS_EXPECT(k > 0.0, "inefficiency factor must be positive");
  DVS_EXPECT(pmax_watts > 0.0, "reference max power must be positive");
  TransitionModel m;
  m.kind_ = Kind::kVoltageDelta;
  m.t_switch_ = t_switch;
  m.cdd_ = cdd_farads;
  m.k_ = k;
  m.pmax_watts_ = pmax_watts;
  return m;
}

bool TransitionModel::is_free() const noexcept {
  return kind_ == Kind::kNone;
}

Time TransitionModel::switch_time(double alpha_from, double alpha_to) const {
  if (kind_ == Kind::kNone || alpha_from == alpha_to) return 0.0;
  return t_switch_;
}

double TransitionModel::switch_energy(const PowerModel& pm, double alpha_from,
                                      double alpha_to) const {
  if (kind_ == Kind::kNone || alpha_from == alpha_to) return 0.0;
  if (kind_ == Kind::kConstant) return e_switch_;
  const double v1 = pm.voltage(alpha_from);
  const double v2 = pm.voltage(alpha_to);
  const double joules = k_ * cdd_ * std::fabs(v1 * v1 - v2 * v2);
  return joules / pmax_watts_;  // -> normalized (max-power-seconds)
}

std::string TransitionModel::describe() const {
  switch (kind_) {
    case Kind::kNone:
      return "free";
    case Kind::kConstant:
      return "constant(t=" + util::format_si_time(t_switch_) +
             ", e=" + util::format_double(e_switch_, 6) + ")";
    case Kind::kVoltageDelta:
      return "voltage-delta(t=" + util::format_si_time(t_switch_) +
             ", Cdd=" + util::format_double(cdd_ * 1e6, 2) + "uF)";
  }
  return "unknown";
}

}  // namespace dvs::cpu
