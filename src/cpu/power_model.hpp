// Processor power models.
//
// Power is reported in normalized units with busy_power(1.0) == 1: all
// experiment outputs are energy *ratios*, so absolute watts cancel out.
// voltage(alpha) is still reported in real volts because the transition
// energy model (Burd) depends on the physical voltage swing.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace dvs::cpu {

class PowerModel {
 public:
  virtual ~PowerModel() = default;

  /// Power while executing at relative speed alpha in (0, 1].
  /// Normalized: busy_power(1.0) == 1.
  [[nodiscard]] virtual double busy_power(double alpha) const = 0;

  /// Power while idle (clock gated / lowest operating point), same units.
  [[nodiscard]] virtual double idle_power() const = 0;

  /// Supply voltage at relative speed alpha, in volts.
  [[nodiscard]] virtual double voltage(double alpha) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

using PowerModelPtr = std::shared_ptr<const PowerModel>;

/// Ideal CMOS scaling with V proportional to f: P(alpha) = alpha^3.
/// The textbook model used by most DVS-algorithm papers.
[[nodiscard]] PowerModelPtr cubic_power_model(double idle_fraction = 0.0,
                                              double vmax = 1.8);

/// Alpha-power-law MOSFET model: f ∝ (V - Vt)^a / V.  Given alpha, the
/// voltage is recovered numerically and P = (V/Vmax)^2 * alpha.
/// More realistic near-threshold behaviour than the cubic model.
[[nodiscard]] PowerModelPtr alpha_power_law_model(double vmax, double vt,
                                                  double exponent = 1.5,
                                                  double idle_fraction = 0.02);

/// One operating point of a measured table.
struct OperatingPoint {
  double alpha = 1.0;    ///< relative frequency, in (0, 1]
  double voltage = 1.0;  ///< volts
  double power = -1.0;   ///< measured power; negative -> derive as k*V^2*f
};

/// Power model from measured operating points (voltage and optionally
/// power per point).  Between points, voltage is interpolated linearly and
/// power follows V^2*f; everything is normalized so the alpha = 1 point has
/// power 1.  Points must include alpha = 1.
[[nodiscard]] PowerModelPtr table_power_model(std::string name,
                                              std::vector<OperatingPoint> points,
                                              double idle_fraction = 0.02);

}  // namespace dvs::cpu
