// Energy accounting for a simulation run.
//
// The meter integrates the power model over busy, idle, and transition
// intervals and keeps a per-task breakdown.  Energies are in normalized
// units (max power × seconds); see cpu/power_model.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "cpu/power_model.hpp"
#include "util/time.hpp"

namespace dvs::cpu {

class EnergyMeter {
 public:
  EnergyMeter(PowerModelPtr power, std::size_t task_count);

  /// Account `dt` seconds of execution at speed `alpha` for `task_id`.
  void add_busy(Time dt, double alpha, std::int32_t task_id);

  /// Account `dt` seconds of idling.
  void add_idle(Time dt);

  /// Account one speed transition lasting `dt` with the given energy.
  void add_transition(Time dt, double energy);

  [[nodiscard]] double busy_energy() const noexcept { return busy_energy_; }
  [[nodiscard]] double idle_energy() const noexcept { return idle_energy_; }
  [[nodiscard]] double transition_energy() const noexcept {
    return transition_energy_;
  }
  [[nodiscard]] double total_energy() const noexcept {
    return busy_energy_ + idle_energy_ + transition_energy_;
  }

  [[nodiscard]] Time busy_time() const noexcept { return busy_time_; }
  [[nodiscard]] Time idle_time() const noexcept { return idle_time_; }
  [[nodiscard]] Time transition_time() const noexcept {
    return transition_time_;
  }

  [[nodiscard]] std::int64_t transition_count() const noexcept {
    return transition_count_;
  }

  /// Busy energy attributed to each task (index == task id).
  [[nodiscard]] const std::vector<double>& per_task_energy() const noexcept {
    return per_task_energy_;
  }

  [[nodiscard]] const PowerModel& power_model() const noexcept {
    return *power_;
  }

 private:
  PowerModelPtr power_;
  double busy_energy_ = 0.0;
  double idle_energy_ = 0.0;
  double transition_energy_ = 0.0;
  Time busy_time_ = 0.0;
  Time idle_time_ = 0.0;
  Time transition_time_ = 0.0;
  std::int64_t transition_count_ = 0;
  std::vector<double> per_task_energy_;
};

}  // namespace dvs::cpu
