#include "cpu/processors.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dvs::cpu {

Processor ideal_processor(double alpha_min) {
  Processor p;
  p.name = "ideal";
  p.scale = FrequencyScale::continuous(alpha_min);
  p.power = cubic_power_model(/*idle_fraction=*/0.0);
  p.transition = TransitionModel::none();
  return p;
}

Processor quantized_ideal_processor(int levels, double alpha_min) {
  Processor p;
  p.name = "ideal-" + std::to_string(levels) + "lv";
  p.scale = FrequencyScale::uniform_levels(levels, alpha_min);
  p.power = cubic_power_model(/*idle_fraction=*/0.0);
  p.transition = TransitionModel::none();
  return p;
}

Processor xscale_processor() {
  // Frequencies 150/400/600/800/1000 MHz, voltages and measured powers
  // (mW) as cited across the DVS literature (Xu et al., Aydin et al.).
  Processor p;
  p.name = "xscale";
  p.scale = FrequencyScale::discrete({0.15, 0.40, 0.60, 0.80, 1.00});
  p.power = table_power_model(
      "xscale",
      {
          {0.15, 0.75, 80.0},
          {0.40, 1.00, 170.0},
          {0.60, 1.30, 400.0},
          {0.80, 1.60, 900.0},
          {1.00, 1.80, 1600.0},
      },
      /*idle_fraction=*/0.025);  // ~40 mW idle
  p.transition = TransitionModel::voltage_delta(/*t_switch=*/20e-6,
                                                /*cdd_farads=*/5e-6,
                                                /*k=*/0.9,
                                                /*pmax_watts=*/1.6);
  return p;
}

Processor strongarm_processor() {
  // StrongARM SA-1100: 59..206 MHz; voltage change takes <= 140 us
  // (Pouwelse, Langendoen, Sips 2001).
  Processor p;
  p.name = "strongarm";
  const double fmax = 206.0;
  p.scale = FrequencyScale::discrete({59.0 / fmax, 89.0 / fmax, 118.0 / fmax,
                                      148.0 / fmax, 177.0 / fmax, 1.0});
  p.power = table_power_model(
      "strongarm",
      {
          {59.0 / fmax, 0.96, -1.0},
          {89.0 / fmax, 1.05, -1.0},
          {118.0 / fmax, 1.18, -1.0},
          {148.0 / fmax, 1.32, -1.0},
          {177.0 / fmax, 1.47, -1.0},
          {1.0, 1.65, -1.0},
      },
      /*idle_fraction=*/0.05);
  p.transition = TransitionModel::voltage_delta(/*t_switch=*/140e-6,
                                                /*cdd_farads=*/5e-6,
                                                /*k=*/0.9,
                                                /*pmax_watts=*/0.9);
  return p;
}

Processor crusoe_processor() {
  // Transmeta Crusoe TM5400 LongRun operating points.
  Processor p;
  p.name = "crusoe";
  const double fmax = 667.0;
  p.scale = FrequencyScale::discrete({300.0 / fmax, 400.0 / fmax,
                                      500.0 / fmax, 600.0 / fmax, 1.0});
  p.power = table_power_model(
      "crusoe",
      {
          {300.0 / fmax, 1.20, -1.0},
          {400.0 / fmax, 1.23, -1.0},
          {500.0 / fmax, 1.35, -1.0},
          {600.0 / fmax, 1.50, -1.0},
          {1.0, 1.60, -1.0},
      },
      /*idle_fraction=*/0.03);
  p.transition = TransitionModel::voltage_delta(/*t_switch=*/30e-6,
                                                /*cdd_farads=*/5e-6,
                                                /*k=*/0.9,
                                                /*pmax_watts=*/5.5);
  return p;
}

Processor four_level_processor() {
  Processor p;
  p.name = "four-level";
  p.scale = FrequencyScale::discrete({0.25, 0.50, 0.75, 1.00});
  p.power = table_power_model("four-level",
                              {
                                  {0.25, 2.0, -1.0},
                                  {0.50, 3.0, -1.0},
                                  {0.75, 4.0, -1.0},
                                  {1.00, 5.0, -1.0},
                              },
                              /*idle_fraction=*/0.02);
  p.transition = TransitionModel::none();
  return p;
}

Processor processor_by_name(const std::string& name) {
  const std::string n = util::to_lower(name);
  if (n == "ideal") return ideal_processor();
  if (n == "xscale") return xscale_processor();
  if (n == "strongarm") return strongarm_processor();
  if (n == "crusoe") return crusoe_processor();
  if (n == "four-level" || n == "four_level") return four_level_processor();
  DVS_EXPECT(false, "unknown processor preset: " + name);
  return {};
}

}  // namespace dvs::cpu
