#include "cpu/power_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dvs::cpu {
namespace {

void check_alpha(double alpha) {
  DVS_EXPECT(alpha > 0.0 && alpha <= 1.0 + 1e-12,
             "alpha must be in (0, 1]");
}

class CubicPowerModel final : public PowerModel {
 public:
  CubicPowerModel(double idle_fraction, double vmax)
      : idle_(idle_fraction), vmax_(vmax) {
    DVS_EXPECT(idle_fraction >= 0.0 && idle_fraction < 1.0,
               "idle fraction must be in [0, 1)");
    DVS_EXPECT(vmax > 0.0, "vmax must be positive");
  }
  double busy_power(double alpha) const override {
    check_alpha(alpha);
    return alpha * alpha * alpha;
  }
  double idle_power() const override { return idle_; }
  double voltage(double alpha) const override {
    check_alpha(alpha);
    return vmax_ * alpha;
  }
  std::string name() const override { return "cubic"; }

 private:
  double idle_;
  double vmax_;
};

class AlphaPowerLawModel final : public PowerModel {
 public:
  AlphaPowerLawModel(double vmax, double vt, double exponent,
                     double idle_fraction)
      : vmax_(vmax), vt_(vt), a_(exponent), idle_(idle_fraction) {
    DVS_EXPECT(vmax > vt && vt >= 0.0, "need vmax > vt >= 0");
    DVS_EXPECT(exponent >= 1.0 && exponent <= 3.0,
               "alpha-power exponent outside the physical range [1, 3]");
    DVS_EXPECT(idle_fraction >= 0.0 && idle_fraction < 1.0,
               "idle fraction must be in [0, 1)");
    fmax_rel_ = speed_of(vmax_);
  }
  double busy_power(double alpha) const override {
    const double v = voltage(alpha);
    // P = Ceff * V^2 * f, normalized so that (vmax, alpha = 1) -> 1.
    return (v * v * alpha) / (vmax_ * vmax_);
  }
  double idle_power() const override { return idle_; }
  double voltage(double alpha) const override {
    check_alpha(alpha);
    // Invert alpha = speed_of(V)/speed_of(vmax) by bisection; speed_of is
    // strictly increasing in V on (vt, vmax].
    const double target = alpha * fmax_rel_;
    double lo = vt_ + 1e-9;
    double hi = vmax_;
    for (int i = 0; i < 80; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (speed_of(mid) < target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return 0.5 * (lo + hi);
  }
  std::string name() const override { return "alpha-power-law"; }

 private:
  [[nodiscard]] double speed_of(double v) const {
    return std::pow(v - vt_, a_) / v;
  }
  double vmax_, vt_, a_, idle_;
  double fmax_rel_ = 1.0;
};

class TablePowerModel final : public PowerModel {
 public:
  TablePowerModel(std::string model_name, std::vector<OperatingPoint> points,
                  double idle_fraction)
      : name_(std::move(model_name)), points_(std::move(points)),
        idle_(idle_fraction) {
    DVS_EXPECT(!points_.empty(), "table power model needs points");
    DVS_EXPECT(idle_fraction >= 0.0 && idle_fraction < 1.0,
               "idle fraction must be in [0, 1)");
    std::sort(points_.begin(), points_.end(),
              [](const OperatingPoint& a, const OperatingPoint& b) {
                return a.alpha < b.alpha;
              });
    for (auto& p : points_) {
      DVS_EXPECT(p.alpha > 0.0 && p.alpha <= 1.0 + 1e-12,
                 "operating point alpha must be in (0, 1]");
      DVS_EXPECT(p.voltage > 0.0, "operating point voltage must be positive");
      if (p.power < 0.0) p.power = p.voltage * p.voltage * p.alpha;
    }
    DVS_EXPECT(std::fabs(points_.back().alpha - 1.0) < 1e-9,
               "the table must contain the alpha = 1 point");
    const double pmax = points_.back().power;
    DVS_EXPECT(pmax > 0.0, "maximum power must be positive");
    for (auto& p : points_) p.power /= pmax;
  }
  double busy_power(double alpha) const override {
    check_alpha(alpha);
    // Below the lowest point, extrapolate with V^2*f using its voltage.
    if (alpha <= points_.front().alpha) {
      const auto& p = points_.front();
      return p.power * alpha / p.alpha;
    }
    for (std::size_t i = 1; i < points_.size(); ++i) {
      if (alpha <= points_[i].alpha + 1e-12) {
        const auto& a = points_[i - 1];
        const auto& b = points_[i];
        const double t = (alpha - a.alpha) / (b.alpha - a.alpha);
        const double v = a.voltage + t * (b.voltage - a.voltage);
        // Power follows V^2 * f between measured points, renormalized to
        // pass through both endpoints at their measured values.
        const double raw = v * v * alpha;
        const double raw_a = a.voltage * a.voltage * a.alpha;
        const double raw_b = b.voltage * b.voltage * b.alpha;
        const double meas = a.power + t * (b.power - a.power);
        // Blend: follow the physical curve, scaled so endpoints match.
        const double scale =
            raw_b > raw_a ? (a.power + (raw - raw_a) / (raw_b - raw_a) *
                                            (b.power - a.power))
                          : meas;
        return scale;
      }
    }
    return 1.0;
  }
  double idle_power() const override { return idle_; }
  double voltage(double alpha) const override {
    check_alpha(alpha);
    if (alpha <= points_.front().alpha) return points_.front().voltage;
    for (std::size_t i = 1; i < points_.size(); ++i) {
      if (alpha <= points_[i].alpha + 1e-12) {
        const auto& a = points_[i - 1];
        const auto& b = points_[i];
        const double t = (alpha - a.alpha) / (b.alpha - a.alpha);
        return a.voltage + t * (b.voltage - a.voltage);
      }
    }
    return points_.back().voltage;
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<OperatingPoint> points_;
  double idle_;
};

}  // namespace

PowerModelPtr cubic_power_model(double idle_fraction, double vmax) {
  return std::make_shared<CubicPowerModel>(idle_fraction, vmax);
}

PowerModelPtr alpha_power_law_model(double vmax, double vt, double exponent,
                                    double idle_fraction) {
  return std::make_shared<AlphaPowerLawModel>(vmax, vt, exponent,
                                              idle_fraction);
}

PowerModelPtr table_power_model(std::string name,
                                std::vector<OperatingPoint> points,
                                double idle_fraction) {
  return std::make_shared<TablePowerModel>(std::move(name), std::move(points),
                                           idle_fraction);
}

}  // namespace dvs::cpu
