// Partitioned multiprocessor scheduling: bin-packing a task set onto M
// identical cores.
//
// Partitioned EDF (the canonical multiprocessor extension of the paper's
// setting, cf. Nélis et al., "Power-Aware Real-Time Scheduling upon
// Identical Multiprocessor Platforms") statically assigns every task to
// one core; each core then runs the plain uniprocessor EDF simulator with
// its own governor and EnergyMeter.  The assignment is produced by the
// classic decreasing-utilization bin-packing heuristics:
//
//   * first-fit  (FFD): the lowest-numbered core that accepts the task;
//   * best-fit   (BFD): the accepting core with the LEAST remaining
//                       utilization capacity (tightest fit);
//   * worst-fit  (WFD): the accepting core with the MOST remaining
//                       capacity (spreads load — the heuristic that leaves
//                       each core the most slack for DVS to exploit).
//
// "Accepts" is exact per-core EDF schedulability at full speed
// (sched::edf_schedulable on the candidate subset), not a utilization
// bound, so constrained-deadline sets partition correctly too.  A task
// that no core accepts makes the whole partition infeasible; the result
// reports the offending task so callers (and the property harness) can
// show WHY a set was rejected.
//
// Determinism contract: the assignment is a pure function of (task set,
// n_cores, heuristic).  Ties (equal utilization, equal capacity) break
// toward the lower task index / lower core index.  Within each core,
// tasks keep their ORIGINAL task-set order (ascending global index);
// with M = 1 the single core therefore holds an exact copy of the input
// set, which is what makes the M = 1 backend bit-identical to the
// uniprocessor simulator (DESIGN.md §10).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "task/task_set.hpp"

namespace dvs::mp {

/// Bin-packing heuristic, all in decreasing-utilization task order.
enum class PartitionHeuristic { kFirstFit, kBestFit, kWorstFit };

/// Canonical short name: "ff" | "bf" | "wf".
[[nodiscard]] std::string heuristic_name(PartitionHeuristic h);

/// Parse "ff"/"bf"/"wf" (also accepts "first-fit" etc., case-insensitive);
/// throws ContractError for unknown names.
[[nodiscard]] PartitionHeuristic heuristic_by_name(const std::string& name);

/// All heuristics in canonical (ff, bf, wf) order.
[[nodiscard]] const std::vector<PartitionHeuristic>& all_heuristics();

/// A feasible assignment of every task to one of `n_cores` cores.
struct Partition {
  std::size_t n_cores = 1;
  PartitionHeuristic heuristic = PartitionHeuristic::kFirstFit;
  /// Task index -> core index.
  std::vector<std::int32_t> core_of;
  /// Core -> task indices on that core, ascending (original set order).
  /// Cores may be empty when the set has fewer tasks than cores.
  std::vector<std::vector<std::size_t>> tasks_of_core;
  /// WCET utilization per core.
  std::vector<double> core_utilization;

  /// Human-readable description, e.g.
  /// "ff on 2 cores: core0{tau0,tau2|U=0.61} core1{tau1|U=0.34}".
  [[nodiscard]] std::string describe(const task::TaskSet& ts) const;
};

/// Outcome of partitioning: a feasible partition, or a rejection naming
/// the first task (in decreasing-utilization packing order) that no core
/// accepted.
struct PartitionResult {
  bool feasible = false;
  Partition partition;
  std::int32_t rejected_task = -1;  ///< task id; -1 when feasible
  std::string error;                ///< non-empty iff !feasible
};

/// Bin-pack `ts` onto `n_cores` identical unit-speed cores with `h`.
/// Pure and deterministic; throws ContractError only for invalid inputs
/// (empty set, n_cores == 0) — an unschedulable set is a *rejection*, not
/// an error.
[[nodiscard]] PartitionResult partition_task_set(const task::TaskSet& ts,
                                                 std::size_t n_cores,
                                                 PartitionHeuristic h);

/// The per-core task set of `core`: the assigned tasks in ascending
/// global-index order (ids rewritten to local indices by TaskSet::add).
/// When the core holds every task (always true for M = 1) the set keeps
/// the original name, otherwise it is suffixed "#c<core>".
[[nodiscard]] task::TaskSet core_task_set(const task::TaskSet& ts,
                                          const Partition& p,
                                          std::size_t core);

}  // namespace dvs::mp
