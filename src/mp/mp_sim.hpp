// Partitioned multiprocessor DVS simulation (DESIGN.md §10).
//
// A multiprocessor run is M independent uniprocessor runs: the partitioner
// (mp/partition.hpp) statically assigns every task to one of M identical
// cores; each core then gets a FRESH governor instance and its own
// EnergyMeter (inside sim::simulate) and replays the shared workload
// model.  Because the workload draw() is a pure function of (seed, task
// id, job index) and per-core draws are remapped back to GLOBAL task ids,
// every task consumes the identical actual-execution-time sequence no
// matter which core it landed on or how many cores exist — the
// common-random-numbers protocol extends across partitionings.
//
// Determinism: cores are independent units of work; simulate_mp fans them
// out over a util::ThreadPool (options.n_threads) and reassembles in core
// order, so the MpResult is bit-identical for every thread count.  With
// M = 1 the single core holds the original task set in original order and
// the run is bit-identical to sim::simulate on the same inputs — the
// equivalence contract the differential tests enforce.
//
// Empty cores (fewer tasks than cores): no governor is instantiated; the
// core is modeled as powered down (zero energy, zero time accounted) —
// the convention of the partitioned-DVS literature, where an unused core
// sleeps.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cpu/processors.hpp"
#include "mp/global_sim.hpp"
#include "mp/partition.hpp"
#include "sim/simulator.hpp"
#include "task/task_set.hpp"
#include "task/workload.hpp"

namespace dvs::mp {

/// Which multiprocessor backend a run uses: partitioned EDF (M
/// independent uniprocessor runs over a static bin-packing) or global
/// EDF (one shared ready queue, job-level migration; global_sim.hpp).
enum class MpBackend { kPartitioned, kGlobal };

/// Canonical name: "partitioned" | "global".
[[nodiscard]] std::string backend_name(MpBackend b);

/// Parse "partitioned"/"global" (also "part"/"g", case-insensitive);
/// throws ContractError for unknown names.
[[nodiscard]] MpBackend backend_by_name(const std::string& name);

/// Fresh-governor factory: called once per core (and per run).
using GovernorFactory = std::function<sim::GovernorPtr()>;

/// Everything derived from (task set, workload, M, heuristic) that the
/// per-core simulations need, computed once on the calling thread so the
/// parallel fan-out only ever reads it.
struct MpPlan {
  PartitionResult partition;
  /// Resolved simulation length, uniform across cores (negative request
  /// resolves against the FULL set's default, not per-core defaults).
  Time length = 0.0;
  /// Per-core task sets (ascending global order; empty for empty cores).
  std::vector<task::TaskSet> core_sets;
  /// Per-core workloads: the shared model with local ids remapped to
  /// global ids (identity — and pass-through — when the core holds every
  /// task, e.g. M = 1).
  std::vector<task::ExecutionTimeModelPtr> core_workloads;

  [[nodiscard]] bool feasible() const noexcept { return partition.feasible; }
};

/// Partition `ts` and build the per-core inputs.  An infeasible partition
/// is NOT an error: the plan comes back with feasible() == false and the
/// rejection details in plan.partition (core_sets stays empty).
[[nodiscard]] MpPlan plan_mp(const task::TaskSet& ts,
                             const task::ExecutionTimeModelPtr& workload,
                             std::size_t n_cores, PartitionHeuristic h,
                             Time length = -1.0);

/// Workload adapter substituting global task ids for a core's local ids
/// before delegating to `inner` (transparent name()).  Exposed for tests.
[[nodiscard]] task::ExecutionTimeModelPtr remap_workload(
    task::ExecutionTimeModelPtr inner, std::vector<std::int32_t> global_ids);

/// Result of one multiprocessor run (either backend).
struct MpResult {
  /// Backend that produced this result.  Under kGlobal the partition is
  /// a placeholder (no static assignment exists): n_cores set, every
  /// tasks_of_core empty, core_of all -1.
  MpBackend backend = MpBackend::kPartitioned;
  Partition partition;
  /// Job-level migrations in time order (kGlobal only; empty otherwise).
  std::vector<MigrationRecord> migrations;
  /// Per-core uniprocessor results, in core order.  Empty cores carry a
  /// zeroed placeholder (sim_length set, all counters zero).
  std::vector<sim::SimResult> cores;
  /// Whole-platform aggregate: energies / times / counters summed over
  /// cores, per_task_energy / worst_response scattered back to GLOBAL
  /// task indices, job records concatenated in core order with global
  /// task ids, average_speed busy-time-weighted across cores.  Note
  /// busy + idle + transition time sums to M_used * sim_length here (one
  /// processor per core), unlike the uniprocessor invariant.
  sim::SimResult total;

  [[nodiscard]] std::size_t n_cores() const noexcept {
    return partition.n_cores;
  }
  /// One-line summary: partition shape plus the aggregate counters.
  [[nodiscard]] std::string summary() const;
};

/// Aggregate per-core results (core order) into an MpResult; `ts` is the
/// original full set (for the global-index scatter).  Exposed so the
/// sweep engine can reassemble cores it simulated itself.
[[nodiscard]] MpResult assemble_mp(const task::TaskSet& ts, const MpPlan& plan,
                                   std::vector<sim::SimResult> cores);

/// Per-simulation options of the multiprocessor backend.
struct MpOptions {
  Time length = -1.0;  ///< negative: the FULL set's default_sim_length()
  std::size_t n_cores = 1;
  /// Backend selector.  kGlobal ignores `heuristic` and `n_threads` (one
  /// sequential engine IS the unit of work) and never rejects a set.
  MpBackend backend = MpBackend::kPartitioned;
  PartitionHeuristic heuristic = PartitionHeuristic::kFirstFit;
  /// kGlobal only: per-migration surcharge in seconds of full-speed work
  /// (see GlobalOptions::migration_cost).
  Time migration_cost = 0.0;
  bool record_jobs = false;
  sim::OverrunPolicy containment = sim::OverrunPolicy::kNone;
  /// Worker threads for the per-core fan-out (0 = hardware concurrency,
  /// 1 = serial).  Results are bit-identical for every value.
  std::size_t n_threads = 1;
  /// Optional per-core trace sinks; resized to n_cores when non-null
  /// (empty cores leave an empty trace).
  std::vector<sim::VectorTrace>* traces = nullptr;
};

/// Run one partitioned simulation: partition, then one fresh governor
/// (from `make_governor`) per non-empty core.  Throws ContractError when
/// the partitioner rejects the set (the message names the offending
/// task); callers that want a soft failure should call plan_mp first.
[[nodiscard]] MpResult simulate_mp(const task::TaskSet& ts,
                                   const task::ExecutionTimeModelPtr& workload,
                                   const cpu::Processor& processor,
                                   const GovernorFactory& make_governor,
                                   const MpOptions& options = {});

}  // namespace dvs::mp
