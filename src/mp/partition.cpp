#include "mp/partition.hpp"

#include <algorithm>
#include <limits>

#include "sched/analysis.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dvs::mp {
namespace {

/// Candidate fit test: is `core_tasks` plus `extra` EDF-schedulable on one
/// unit-speed core?  Exact (processor-demand criterion via
/// sched::edf_schedulable), evaluated on the subset in ascending index
/// order — the same order the final per-core sets use.
bool fits(const task::TaskSet& ts, const std::vector<std::size_t>& core_tasks,
          std::size_t extra) {
  std::vector<std::size_t> candidate = core_tasks;
  candidate.insert(
      std::lower_bound(candidate.begin(), candidate.end(), extra), extra);
  task::TaskSet subset("fit-probe");
  for (const std::size_t i : candidate) subset.add(ts[i]);
  return sched::edf_schedulable(subset);
}

}  // namespace

std::string heuristic_name(PartitionHeuristic h) {
  switch (h) {
    case PartitionHeuristic::kFirstFit: return "ff";
    case PartitionHeuristic::kBestFit: return "bf";
    case PartitionHeuristic::kWorstFit: return "wf";
  }
  DVS_ENSURE(false, "unhandled PartitionHeuristic");
  return "ff";  // unreachable
}

PartitionHeuristic heuristic_by_name(const std::string& name) {
  const std::string low = util::to_lower(name);
  if (low == "ff" || low == "first-fit" || low == "firstfit") {
    return PartitionHeuristic::kFirstFit;
  }
  if (low == "bf" || low == "best-fit" || low == "bestfit") {
    return PartitionHeuristic::kBestFit;
  }
  if (low == "wf" || low == "worst-fit" || low == "worstfit") {
    return PartitionHeuristic::kWorstFit;
  }
  DVS_EXPECT(false, "unknown partition heuristic: '" + name +
                        "' (expected ff | bf | wf)");
  return PartitionHeuristic::kFirstFit;  // unreachable
}

const std::vector<PartitionHeuristic>& all_heuristics() {
  static const std::vector<PartitionHeuristic> all{
      PartitionHeuristic::kFirstFit, PartitionHeuristic::kBestFit,
      PartitionHeuristic::kWorstFit};
  return all;
}

std::string Partition::describe(const task::TaskSet& ts) const {
  std::string out = heuristic_name(heuristic) + " on " +
                    std::to_string(n_cores) + " core" +
                    (n_cores == 1 ? "" : "s") + ":";
  for (std::size_t c = 0; c < tasks_of_core.size(); ++c) {
    out += " core" + std::to_string(c) + "{";
    for (std::size_t i = 0; i < tasks_of_core[c].size(); ++i) {
      if (i > 0) out += ",";
      out += ts[tasks_of_core[c][i]].name;
    }
    out += "|U=" + util::format_double(core_utilization[c], 3) + "}";
  }
  return out;
}

PartitionResult partition_task_set(const task::TaskSet& ts,
                                   std::size_t n_cores, PartitionHeuristic h) {
  DVS_EXPECT(!ts.empty(), "cannot partition an empty task set");
  DVS_EXPECT(n_cores >= 1, "need at least one core");

  // Decreasing-utilization packing order; ties break toward the lower
  // task index (stable), keeping the assignment deterministic.
  std::vector<std::size_t> order(ts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&ts](std::size_t a, std::size_t b) {
                     return ts[a].utilization() > ts[b].utilization();
                   });

  PartitionResult res;
  Partition& p = res.partition;
  p.n_cores = n_cores;
  p.heuristic = h;
  p.core_of.assign(ts.size(), -1);
  p.tasks_of_core.assign(n_cores, {});
  p.core_utilization.assign(n_cores, 0.0);

  for (const std::size_t ti : order) {
    std::int64_t chosen = -1;
    double chosen_capacity = 0.0;
    for (std::size_t c = 0; c < n_cores; ++c) {
      if (!fits(ts, p.tasks_of_core[c], ti)) continue;
      if (h == PartitionHeuristic::kFirstFit) {
        chosen = static_cast<std::int64_t>(c);
        break;
      }
      const double capacity = 1.0 - p.core_utilization[c];
      const bool better =
          chosen < 0 || (h == PartitionHeuristic::kBestFit
                             ? capacity < chosen_capacity
                             : capacity > chosen_capacity);
      if (better) {
        chosen = static_cast<std::int64_t>(c);
        chosen_capacity = capacity;
      }
    }
    if (chosen < 0) {
      res.rejected_task = ts[ti].id;
      res.error = "partition (" + heuristic_name(h) + ", " +
                  std::to_string(n_cores) + " cores) rejected task '" +
                  ts[ti].name + "' (id " + std::to_string(ts[ti].id) +
                  ", u=" + util::format_double(ts[ti].utilization(), 4) +
                  "): no core can schedule it alongside its assignment";
      return res;
    }
    const auto c = static_cast<std::size_t>(chosen);
    p.core_of[ti] = static_cast<std::int32_t>(c);
    p.tasks_of_core[c].insert(
        std::lower_bound(p.tasks_of_core[c].begin(), p.tasks_of_core[c].end(),
                         ti),
        ti);
    p.core_utilization[c] += ts[ti].utilization();
  }
  res.feasible = true;
  return res;
}

task::TaskSet core_task_set(const task::TaskSet& ts, const Partition& p,
                            std::size_t core) {
  DVS_EXPECT(core < p.tasks_of_core.size(), "core index out of range");
  const std::vector<std::size_t>& members = p.tasks_of_core[core];
  const std::string name = members.size() == ts.size()
                               ? ts.name()
                               : ts.name() + "#c" + std::to_string(core);
  task::TaskSet out(name);
  for (const std::size_t i : members) out.add(ts[i]);
  return out;
}

}  // namespace dvs::mp
