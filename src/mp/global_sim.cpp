#include "mp/global_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "cpu/energy_meter.hpp"
#include "sched/edf_queue.hpp"
#include "util/error.hpp"
#include "util/stable_vector.hpp"

namespace dvs::mp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Speeds closer than this are the same operating point (no switch).
/// Identical to the uniprocessor engine's tolerance (sim/simulator.cpp).
constexpr double kAlphaTol = 1e-9;
constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

/// The global engine mirrors sim/simulator.cpp's SimEngine operation for
/// operation wherever the M = 1 bit-identity contract reaches: the
/// release path, the governor call protocol, the transition/stall
/// charging, the per-segment busy accounting and the completion path are
/// copies with the engine-wide state generalized to per-core state.
/// Comments below mark where (and why) the generalization is allowed to
/// differ at M >= 2.
class GlobalSimEngine final : public sim::SimContext {
 public:
  GlobalSimEngine(const task::TaskSet& ts,
                  const task::ExecutionTimeModel& workload,
                  const cpu::Processor& proc, sim::Governor& governor,
                  const GlobalOptions& opts)
      : ts_(ts),
        workload_(workload),
        proc_(proc),
        governor_(governor),
        opts_(opts) {
    DVS_EXPECT(!ts_.empty(), "cannot simulate an empty task set");
    ts_.validate();
    DVS_EXPECT(opts_.n_cores >= 1, "global simulation needs >= 1 core");
    DVS_EXPECT(std::isfinite(opts_.migration_cost) &&
                   opts_.migration_cost >= 0.0,
               "migration cost must be finite and non-negative");
    length_ = opts.length < 0.0 ? ts_.default_sim_length() : opts.length;
    DVS_EXPECT(length_ > 0.0, "simulation length must be positive");
    next_release_.reserve(ts_.size());
    next_index_.assign(ts_.size(), 0);
    worst_response_.assign(ts_.size(), 0.0);
    for (const auto& t : ts_) next_release_.push_back(t.phase);
    floor_ = global_speed_floor(ts_, opts_.n_cores);

    std::size_t expected_jobs = 0;
    for (const auto& t : ts_) {
      if (t.phase < length_) {
        expected_jobs +=
            static_cast<std::size_t>((length_ - t.phase) / t.period) + 2;
      }
    }
    jobs_.reserve(expected_jobs);
    job_core_.reserve(expected_jobs);
    ready_.reserve(2 * ts_.size() + 2);
    sorted_scratch_.reserve(2 * ts_.size() + 2);
    active_scratch_.reserve(2 * ts_.size() + 2);
    assign_scratch_.reserve(2 * ts_.size() + 2);
    if (opts_.traces != nullptr) {
      opts_.traces->clear();
      opts_.traces->resize(opts_.n_cores);
    }
    cores_.reserve(opts_.n_cores);
    for (std::size_t c = 0; c < opts_.n_cores; ++c) {
      cores_.emplace_back(proc_.power, ts_.size());
      if (opts_.traces != nullptr) {
        cores_[c].trace = &(*opts_.traces)[c];
        cores_[c].trace->reserve_hint(expected_jobs);
      }
    }
    if (opts_.audit != nullptr) opts_.audit->reserve(expected_jobs * 3);
    if (opts_.degradation != nullptr) {
      degrade_.emplace(ts_, *opts_.degradation);
      last_unfinalized_.assign(ts_.size(), kNoSlot);
    }
  }

  GlobalResult run() {
    governor_.on_start(*this);
    while (true) {
      release_due_jobs();
      if (t_ >= length_ - kTimeEps) break;
      if (!dispatch()) {
        // A guard-complete inside dispatch() may have recorded the
        // stopping miss even though nothing is left running.
        if (opts_.stop_on_miss && misses_ > 0) break;
        if (!advance_idle_all()) break;
        continue;
      }
      if (opts_.stop_on_miss && misses_ > 0) break;

      // Next platform event: any executing core's completion or budget
      // timer, any stall end, the next release, or the horizon.  Releases
      // are deferred while every core is stalling (no execution, no idle
      // capacity) — exactly the uniprocessor engine's behavior of
      // processing stall-window arrivals at the stall end.
      bool any_exec = false;
      bool any_idle = false;
      Time t_next = length_;
      for (const CoreState& c : cores_) {
        if (c.stall_until > t_) {
          t_next = std::min(t_next, c.stall_until);
        } else if (c.running != kNoSlot) {
          any_exec = true;
          t_next = std::min(t_next, std::min(c.t_fin, c.t_budget));
        } else {
          any_idle = true;
        }
      }
      if (any_exec || any_idle) {
        Time t_rel = kInf;
        for (std::size_t i = 0; i < ts_.size(); ++i) {
          if (next_release_[i] < length_ - kTimeEps) {
            t_rel = std::min(t_rel, next_release_[i]);
          }
        }
        t_next = std::min(t_next, t_rel);
      }
      DVS_ENSURE(t_next > t_, "simulation failed to make progress");

      charge(t_next);
      t_ = t_next;
      process_completions();
      if (opts_.stop_on_miss && misses_ > 0) break;
    }
    return finish();
  }

  // --- SimContext -------------------------------------------------------
  [[nodiscard]] Time now() const override { return t_; }
  [[nodiscard]] const task::TaskSet& task_set() const override { return ts_; }
  [[nodiscard]] sim::SchedulingPolicy policy() const override {
    return sim::SchedulingPolicy::kEdf;
  }
  [[nodiscard]] double alpha_min() const override {
    return proc_.scale.alpha_min();
  }
  [[nodiscard]] Time next_release_after(Time t) const override {
    Time best = kInf;
    for (const auto& task : ts_) {
      std::int64_t k = task.first_job_at_or_after(t + 2.0 * kTimeEps);
      Time r = task.release_of(k);
      if (r <= t + kTimeEps) r = task.release_of(k + 1);
      best = std::min(best, r);
    }
    return best;
  }
  [[nodiscard]] std::span<const sim::Job* const> active_jobs()
      const override {
    if (active_dirty_) {
      ready_.sorted_into(sorted_scratch_);
      active_scratch_.clear();
      for (const auto& e : sorted_scratch_) {
        active_scratch_.push_back(&jobs_[e.slot]);
      }
      active_dirty_ = false;
    }
    return active_scratch_;
  }
  [[nodiscard]] double current_speed() const override {
    const double a = cores_[cur_core_].last_alpha;
    return a > 0.0 ? a : 1.0;
  }

 private:
  struct CoreState {
    CoreState(const cpu::PowerModelPtr& power, std::size_t n_tasks)
        : meter(power, n_tasks) {}

    cpu::EnergyMeter meter;
    sim::VectorTrace* trace = nullptr;
    double last_alpha = -1.0;  ///< speed of the previous execution segment
    double retired_work = 0.0;
    std::int64_t switches = 0;
    std::int64_t hw_faults = 0;
    std::int64_t switch_attempts = 0;  ///< per-core fault-model index
    std::int64_t preemptions = 0;
    std::int64_t completions = 0;
    std::int64_t misses = 0;  ///< misses detected at completion here
    std::size_t last_running = kNoSlot;

    // Per-event dispatch state.
    std::size_t running = kNoSlot;  ///< job executing this interval
    double alpha = 1.0;             ///< its speed
    Time t_fin = kInf;
    Time t_budget = kInf;

    // Transition-stall commitment: while stall_until > now the core is
    // switching and owns `committed`; the commitment survives the stall
    // only if no release/completion happened meanwhile (version check) —
    // the uniprocessor engine's arrivals-during-stall re-dispatch rule.
    Time stall_until = -1.0;
    std::size_t committed = kNoSlot;
    std::uint64_t committed_version = 0;
  };

  // --- degradation hooks (copies of the uniprocessor engine's) ----------
  template <typename Fn>
  void watch_mode(Time at, const Fn& fn) {
    const degrade::Mode before = degrade_->mode();
    fn();
    const degrade::Mode after = degrade_->mode();
    if (after == before) return;
    if (cores_[0].trace != nullptr) {
      cores_[0].trace->event(
          {sim::TraceEvent::Kind::kModeChange, at, -1,
           after == degrade::Mode::kDegraded ? std::int64_t{1}
                                             : std::int64_t{0}});
    }
  }

  void finalize_outcome(std::size_t i, Time now) {
    const std::size_t slot = last_unfinalized_[i];
    if (slot == kNoSlot) return;
    const sim::Job& prev = jobs_[slot];
    const bool met = prev.finished() && !prev.missed;
    watch_mode(now, [&] { degrade_->on_job_outcome(prev.task_id, met, now); });
    last_unfinalized_[i] = kNoSlot;
  }

  [[nodiscard]] double offered_density(Time now, Work new_wcet,
                                       Time new_deadline) const {
    double d = new_wcet / std::max(new_deadline - now, kTimeEps);
    for (const auto& e : ready_.raw()) {
      const sim::Job& j = jobs_[e.slot];
      d += j.remaining_wcet() / std::max(j.abs_deadline - now, kTimeEps);
    }
    return d + degrade_->shadow_density(now);
  }

  /// Release every due job — a verbatim copy of the uniprocessor path
  /// (EDF key only; the global backend has no fixed-priority mode).
  /// Every processed release bumps version_, dissolving stall
  /// commitments exactly where the uniprocessor engine re-dispatches.
  void release_due_jobs() {
    cur_core_ = 0;  // platform events answer current_speed() for core 0
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      while (next_release_[i] <= t_ + kTimeEps &&
             next_release_[i] < length_ - kTimeEps) {
        const task::Task& task = ts_[i];
        sim::Job job;
        job.task_id = task.id;
        job.index = next_index_[i];
        job.release = next_release_[i];
        job.abs_deadline = job.release + task.deadline;
        job.wcet = task.wcet;
        if (degrade_.has_value()) {
          finalize_outcome(i, job.release);
          const double density =
              offered_density(job.release, job.wcet, job.abs_deadline);
          watch_mode(job.release,
                     [&] { degrade_->on_backlog(density, job.release); });
          if (degrade_->should_skip(task.id, task.wcet, job.abs_deadline,
                                    job.release)) {
            job.skipped = true;
            jobs_.push_back(job);
            job_core_.push_back(-1);
            ++version_;
            ++released_;
            ++next_index_[i];
            next_release_[i] += task.period;
            if (cores_[0].trace != nullptr) {
              cores_[0].trace->event({sim::TraceEvent::Kind::kSkip,
                                      job.release, job.task_id, job.index});
            }
            continue;  // never enqueued: governors see no trace of it
          }
        }
        job.actual = workload_.draw(task, job.index);
        DVS_ENSURE(std::isfinite(job.actual) && job.actual > 0.0,
                   "workload model returned non-positive or non-finite work");
        if (job.actual > job.wcet + kTimeEps) {
          job.overrun = true;
          ++overruns_;
          if (opts_.containment == sim::OverrunPolicy::kClampAtWcet) {
            job.actual = job.wcet;  // budget enforcement at release
            ++contained_;
          }
        } else {
          job.actual = std::min(job.actual, job.wcet);
        }
        const std::size_t slot = jobs_.size();
        jobs_.push_back(job);
        job_core_.push_back(-1);
        if (degrade_.has_value()) last_unfinalized_[i] = slot;
        ready_.push({job.abs_deadline, job.task_id, job.index, slot});
        active_dirty_ = true;
        ++version_;
        ++released_;
        ++next_index_[i];
        next_release_[i] += task.period;
        if (cores_[0].trace != nullptr) {
          cores_[0].trace->event({sim::TraceEvent::Kind::kRelease,
                                  job.release, job.task_id, job.index});
        }
        governor_.on_release(jobs_[slot], *this);
      }
    }
  }

  /// All cores idle until the next release (or the end of the run).
  bool advance_idle_all() {
    Time next = kInf;
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      if (next_release_[i] < length_ - kTimeEps) {
        next = std::min(next, next_release_[i]);
      }
    }
    const Time until = std::min(next, length_);
    if (until > t_) {
      for (CoreState& c : cores_) {
        c.meter.add_idle(until - t_);
        if (c.trace != nullptr) {
          c.trace->segment(
              {t_, until, sim::SegmentKind::kIdle, -1, -1, 0.0});
        }
      }
      t_ = until;
    }
    return t_ < length_ - kTimeEps;
  }

  [[nodiscard]] bool slot_taken(std::size_t slot) const {
    for (const CoreState& c : cores_) {
      if (c.running == slot || c.committed == slot) return true;
    }
    return false;
  }

  /// Map ready jobs onto cores and query the governor per core.  Returns
  /// false when the platform is fully idle (nothing ready, no stalls).
  bool dispatch() {
    // Phase A: reset non-stalled cores and resolve ended stalls.  A
    // commitment whose stall passed without a version change resumes
    // WITHOUT a fresh governor query (the uniprocessor engine executes
    // straight after an arrival-free stall); otherwise the job returns
    // to the pool and the core re-dispatches below.
    for (std::size_t ci = 0; ci < cores_.size(); ++ci) {
      CoreState& c = cores_[ci];
      if (c.stall_until > t_) continue;  // mid-stall: keep the commitment
      c.running = kNoSlot;
      c.t_fin = kInf;
      c.t_budget = kInf;
      if (c.committed == kNoSlot) continue;
      const std::size_t slot = c.committed;
      const bool hold = c.committed_version == version_;
      c.committed = kNoSlot;
      c.stall_until = -1.0;
      if (!hold) continue;
      if (jobs_[slot].remaining_actual() <= kTimeEps) {
        complete(slot, ci);  // zero-length execution window
        continue;
      }
      c.running = slot;  // c.alpha still holds the committed speed
    }

    // Phase B: assign free cores from the EDF-sorted pool, sticky to the
    // core a job last executed on.  Guard-completed assignments free the
    // core again, so loop until the assignment settles.
    while (!(opts_.stop_on_miss && misses_ > 0)) {
      free_scratch_.clear();
      for (std::size_t ci = 0; ci < cores_.size(); ++ci) {
        const CoreState& c = cores_[ci];
        if (c.stall_until <= t_ && c.running == kNoSlot &&
            c.committed == kNoSlot) {
          free_scratch_.push_back(ci);
        }
      }
      if (free_scratch_.empty()) break;
      ready_.sorted_into(assign_scratch_);
      selected_scratch_.clear();
      for (const auto& e : assign_scratch_) {
        if (selected_scratch_.size() >= free_scratch_.size()) break;
        if (!slot_taken(e.slot)) selected_scratch_.push_back(e.slot);
      }
      if (selected_scratch_.empty()) break;

      // Pass 1 (EDF order): keep a job on its previous core when free.
      claim_scratch_.assign(free_scratch_.size(), kNoSlot);
      placed_scratch_.assign(selected_scratch_.size(), false);
      for (std::size_t s = 0; s < selected_scratch_.size(); ++s) {
        const std::int32_t prev = job_core_[selected_scratch_[s]];
        if (prev < 0) continue;
        for (std::size_t f = 0; f < free_scratch_.size(); ++f) {
          if (free_scratch_[f] == static_cast<std::size_t>(prev) &&
              claim_scratch_[f] == kNoSlot) {
            claim_scratch_[f] = selected_scratch_[s];
            placed_scratch_[s] = true;
            break;
          }
        }
      }
      // Pass 2 (EDF order): fill the lowest-index unclaimed free cores.
      for (std::size_t s = 0; s < selected_scratch_.size(); ++s) {
        if (placed_scratch_[s]) continue;
        for (std::size_t f = 0; f < free_scratch_.size(); ++f) {
          if (claim_scratch_[f] == kNoSlot) {
            claim_scratch_[f] = selected_scratch_[s];
            break;
          }
        }
      }

      // Query the governor per claimed core, ascending core order.
      for (std::size_t f = 0; f < free_scratch_.size(); ++f) {
        if (claim_scratch_[f] == kNoSlot) continue;
        const std::size_t ci = free_scratch_[f];
        const std::size_t slot = claim_scratch_[f];
        CoreState& c = cores_[ci];
        cur_core_ = ci;
        sim::Job& job = jobs_[slot];
        double alpha = decide_speed(job);
        if (apply_transition(c, alpha)) {
          c.committed = slot;
          c.alpha = alpha;
          c.committed_version = version_;
          continue;
        }
        if (job.remaining_actual() <= kTimeEps) {
          complete(slot, ci);  // zero-length execution window
          continue;            // the settle loop re-fills this core
        }
        c.running = slot;
        c.alpha = alpha;
      }
    }

    // Finalize executing cores: migration accounting, preemption
    // accounting, execution horizons.  Mirrors the head of the
    // uniprocessor engine's execute().
    bool any = false;
    for (std::size_t ci = 0; ci < cores_.size(); ++ci) {
      CoreState& c = cores_[ci];
      if (c.stall_until > t_) {
        any = true;
        continue;
      }
      if (c.running == kNoSlot) continue;
      any = true;
      sim::Job& job = jobs_[c.running];
      if (job_core_[c.running] != static_cast<std::int32_t>(ci)) {
        if (job.executed > 0.0) {
          // Resuming on a new core: one migration, surcharge folded into
          // the remaining demand and the WCET budget alike (so overrun
          // detection and budget timers stay consistent).
          ++migrations_;
          job.actual += opts_.migration_cost;
          job.wcet += opts_.migration_cost;
          migration_overhead_ += opts_.migration_cost;
          migration_records_.push_back({t_, job.task_id, job.index,
                                        job_core_[c.running],
                                        static_cast<std::int32_t>(ci)});
        }
        job_core_[c.running] = static_cast<std::int32_t>(ci);
      }
      if (c.last_running != kNoSlot && c.last_running != c.running &&
          !jobs_[c.last_running].finished()) {
        ++c.preemptions;
      }
      c.last_running = c.running;
      c.t_fin = t_ + job.remaining_actual() / c.alpha;
      c.t_budget = kInf;
      if (opts_.containment == sim::OverrunPolicy::kEscalateToMaxSpeed &&
          !job.escalated && job.actual > job.wcet + kTimeEps &&
          job.executed < job.wcet - kTimeEps) {
        c.t_budget = t_ + (job.wcet - job.executed) / c.alpha;
      }
    }
    return any;
  }

  /// Copy of the uniprocessor decide_speed with the M >= 2 GFB floor
  /// added; floor_ is 0 at M == 1, where max(req, 0) preserves req
  /// bit-for-bit.
  double decide_speed(sim::Job& job) {
    if (opts_.containment == sim::OverrunPolicy::kEscalateToMaxSpeed &&
        job.executed >= job.wcet - kTimeEps &&
        job.remaining_actual() > kTimeEps) {
      if (!job.escalated) {
        job.escalated = true;
        ++contained_;
      }
      record_decision(job, 1.0, 1.0, /*from_governor=*/false);
      return 1.0;
    }
    double req = governor_.select_speed(job, *this);
    DVS_ENSURE(std::isfinite(req) && req > 0.0,
               "governor '" + governor_.name() +
                   "' returned a non-positive or non-finite speed");
    req = std::min(req, 1.0);
    req = std::max(req, floor_);
    const double chosen = proc_.scale.quantize_up(req);
    record_decision(job, req, chosen, /*from_governor=*/true);
    return chosen;
  }

  void record_decision(const sim::Job& job, double requested, double chosen,
                       bool from_governor) {
    if (opts_.audit == nullptr) return;
    obs::Decision d;
    d.at = t_;
    d.task_id = job.task_id;
    d.job_index = job.index;
    d.remaining_wcet = job.remaining_wcet();
    d.estimated_slack = from_governor
                            ? governor_.last_slack_estimate()
                            : std::numeric_limits<Time>::quiet_NaN();
    d.requested_alpha = requested;
    d.chosen_alpha = chosen;
    opts_.audit->decision(d);
  }

  /// Per-core copy of the uniprocessor apply_transition.  Instead of
  /// jumping the global clock through the stall, the stall becomes the
  /// core's `stall_until` horizon (charged upfront, like the
  /// uniprocessor engine); returns true when a stall was incurred.
  bool apply_transition(CoreState& core, double& alpha) {
    if (core.last_alpha <= 0.0) {  // first execution segment: free setup
      core.last_alpha = alpha;
      return false;
    }
    if (std::fabs(alpha - core.last_alpha) <= kAlphaTol) return false;

    Time fault_stall = 0.0;
    if (proc_.faults != nullptr) {
      const std::int64_t idx = core.switch_attempts++;
      const double honored =
          proc_.faults->honored_speed(idx, core.last_alpha, alpha);
      DVS_ENSURE(std::isfinite(honored) && honored > 0.0,
                 "processor fault model returned an invalid speed");
      if (std::fabs(honored - alpha) > kAlphaTol) {
        ++core.hw_faults;  // stuck frequency: the request was ignored
        alpha = honored;
        if (std::fabs(alpha - core.last_alpha) <= kAlphaTol) return false;
      }
      fault_stall = proc_.faults->extra_stall(idx, core.last_alpha, alpha);
      DVS_ENSURE(fault_stall >= 0.0, "negative injected stall");
      if (fault_stall > 0.0) ++core.hw_faults;
    }

    ++core.switches;
    const double from = core.last_alpha;
    core.last_alpha = alpha;
    if (proc_.transition.is_free() && fault_stall <= 0.0) return false;

    const Time base_stall =
        proc_.transition.is_free() ? 0.0
                                   : proc_.transition.switch_time(from, alpha);
    const Time dsw = std::min(base_stall + fault_stall, length_ - t_);
    const double esw =
        proc_.transition.is_free()
            ? 0.0
            : proc_.transition.switch_energy(*proc_.power, from, alpha);
    core.meter.add_transition(dsw, esw);
    if (dsw <= 0.0) return false;
    if (core.trace != nullptr) {
      core.trace->segment(
          {t_, t_ + dsw, sim::SegmentKind::kTransition, -1, -1, 0.0});
    }
    core.stall_until = t_ + dsw;
    return true;
  }

  /// Charge the interval [t_, t_next] per core: busy for executing cores
  /// (the uniprocessor execute()'s accounting), idle for free cores,
  /// nothing for stalling cores (their stall was charged upfront).
  void charge(Time t_next) {
    const Time dt = t_next - t_;
    for (CoreState& c : cores_) {
      if (c.stall_until > t_) continue;
      if (c.running != kNoSlot) {
        sim::Job& job = jobs_[c.running];
        c.meter.add_busy(dt, c.alpha, job.task_id);
        c.retired_work += c.alpha * dt;
        job.executed += c.alpha * dt;
        if (c.trace != nullptr) {
          c.trace->segment({t_, t_next, sim::SegmentKind::kBusy, job.task_id,
                            job.index, c.alpha});
        }
      } else {
        c.meter.add_idle(dt);
        if (c.trace != nullptr) {
          c.trace->segment(
              {t_, t_next, sim::SegmentKind::kIdle, -1, -1, 0.0});
        }
      }
    }
  }

  void process_completions() {
    for (std::size_t ci = 0; ci < cores_.size(); ++ci) {
      CoreState& c = cores_[ci];
      if (c.running == kNoSlot) continue;
      sim::Job& job = jobs_[c.running];
      if (job.remaining_actual() <= kTimeEps || time_leq(c.t_fin, t_)) {
        const std::size_t slot = c.running;
        c.running = kNoSlot;
        complete(slot, ci);
      }
    }
  }

  /// Copy of the uniprocessor complete(); removal generalizes from "must
  /// be the EDF head" to remove-by-slot (another core may hold an
  /// earlier deadline).  The head fast path IS pop(), so at M == 1 —
  /// where the completing job is always the head — the heap operation
  /// sequence matches the uniprocessor engine exactly.
  void complete(std::size_t slot, std::size_t ci) {
    CoreState& core = cores_[ci];
    cur_core_ = ci;
    sim::Job& job = jobs_[slot];
    job.executed = job.actual;  // snap away rounding residue
    job.completion = t_;
    if (core.last_running == slot) core.last_running = kNoSlot;
    if (opts_.audit != nullptr) {
      opts_.audit->complete(job.task_id, job.index, job.abs_deadline - t_);
    }
    auto& worst = worst_response_[static_cast<std::size_t>(job.task_id)];
    worst = std::max(worst, job.completion - job.release);
    job.missed = time_less(job.abs_deadline, t_);
    if (!ready_.empty() && ready_.top().slot == slot) {
      ready_.pop();
    } else {
      DVS_ENSURE(ready_.remove_slot(slot),
                 "completing job is not in the ready queue");
    }
    active_dirty_ = true;
    ++version_;
    ++completed_;
    ++core.completions;
    if (job.missed) {
      ++misses_;
      ++core.misses;
      if (core.trace != nullptr) {
        core.trace->event(
            {sim::TraceEvent::Kind::kMiss, t_, job.task_id, job.index});
      }
    }
    if (core.trace != nullptr) {
      core.trace->event(
          {sim::TraceEvent::Kind::kCompletion, t_, job.task_id, job.index});
    }
    if (degrade_.has_value() && job.overrun) {
      watch_mode(t_, [&] { degrade_->on_overrun(t_); });
    }
    governor_.on_completion(job, *this);
  }

  GlobalResult finish() {
    std::int64_t truncated = 0;
    for (const auto& e : ready_.raw()) {
      sim::Job& job = jobs_[e.slot];
      if (time_leq(job.abs_deadline, length_)) {
        job.missed = true;
        ++misses_;
      } else {
        ++truncated;
      }
    }

    if (degrade_.has_value()) {
      for (std::size_t i = 0; i < ts_.size(); ++i) {
        const std::size_t slot = last_unfinalized_[i];
        if (slot != kNoSlot && !time_leq(jobs_[slot].abs_deadline, length_)) {
          last_unfinalized_[i] = kNoSlot;  // truncated: no outcome
          continue;
        }
        finalize_outcome(i, length_);
      }
      degrade_->finish(length_);
    }

    GlobalResult out;
    sim::SimResult& r = out.total;
    r.governor = governor_.name();
    r.processor = proc_.name;
    r.workload = workload_.name();
    r.sim_length = length_;
    r.per_task_energy.assign(ts_.size(), 0.0);
    double retired_total = 0.0;
    for (const CoreState& c : cores_) {
      r.busy_energy += c.meter.busy_energy();
      r.idle_energy += c.meter.idle_energy();
      r.transition_energy += c.meter.transition_energy();
      r.busy_time += c.meter.busy_time();
      r.idle_time += c.meter.idle_time();
      r.transition_time += c.meter.transition_time();
      r.speed_switches += c.switches;
      r.preemptions += c.preemptions;
      r.processor_faults += c.hw_faults;
      retired_total += c.retired_work;
      const auto& per_task = c.meter.per_task_energy();
      for (std::size_t i = 0; i < per_task.size(); ++i) {
        r.per_task_energy[i] += per_task[i];
      }
    }
    r.jobs_released = released_;
    r.jobs_completed = completed_;
    r.deadline_misses = misses_;
    r.jobs_truncated = truncated;
    r.jobs_overrun = overruns_;
    r.overruns_contained = contained_;
    r.migrations = migrations_;
    r.migration_overhead_us = migration_overhead_ * 1e6;
    r.average_speed =
        r.busy_time > 0.0 ? retired_total / r.busy_time : 1.0;
    r.worst_response = worst_response_;
    if (degrade_.has_value()) {
      r.degradation = true;
      r.jobs_skipped = degrade_->jobs_skipped();
      r.mode_changes = degrade_->mode_changes();
      r.time_degraded = degrade_->time_degraded();
      r.mk_violations = degrade_->mk_violations();
      r.hard_misses = degrade_->hard_misses();
    }
    if (opts_.record_jobs) {
      r.jobs.reserve(jobs_.size());
      for (const auto& j : jobs_) {
        r.jobs.push_back({j.task_id, j.index, j.release, j.abs_deadline,
                          j.completion, j.wcet, j.actual, j.missed,
                          j.skipped});
      }
    }

    // Per-core detail.  At M == 1 the platform IS a uniprocessor: the
    // core view is the aggregate verbatim (the bit-identity contract's
    // cores.front() == sim::simulate result).
    if (cores_.size() == 1) {
      out.cores.push_back(r);
    } else {
      out.cores.reserve(cores_.size());
      for (const CoreState& c : cores_) {
        sim::SimResult cr;
        cr.governor = r.governor;
        cr.processor = r.processor;
        cr.workload = r.workload;
        cr.sim_length = length_;
        cr.busy_energy = c.meter.busy_energy();
        cr.idle_energy = c.meter.idle_energy();
        cr.transition_energy = c.meter.transition_energy();
        cr.busy_time = c.meter.busy_time();
        cr.idle_time = c.meter.idle_time();
        cr.transition_time = c.meter.transition_time();
        cr.jobs_completed = c.completions;
        cr.deadline_misses = c.misses;
        cr.speed_switches = c.switches;
        cr.preemptions = c.preemptions;
        cr.processor_faults = c.hw_faults;
        cr.average_speed = c.meter.busy_time() > 0.0
                               ? c.retired_work / c.meter.busy_time()
                               : 1.0;
        cr.per_task_energy = c.meter.per_task_energy();
        out.cores.push_back(std::move(cr));
      }
    }
    out.migrations = std::move(migration_records_);
    return out;
  }

  const task::TaskSet& ts_;
  const task::ExecutionTimeModel& workload_;
  const cpu::Processor& proc_;
  sim::Governor& governor_;
  const GlobalOptions& opts_;

  Time length_ = 0.0;
  Time t_ = 0.0;
  double floor_ = 0.0;  ///< GFB dispatch floor; 0 at M == 1

  std::vector<CoreState> cores_;
  std::size_t cur_core_ = 0;  ///< core the current governor query is for

  util::StableVector<sim::Job> jobs_;
  std::vector<std::int32_t> job_core_;  ///< last core a job executed on
  sched::EdfReadyQueue ready_;          ///< ALL released unfinished jobs
  mutable std::vector<sched::EdfEntry> sorted_scratch_;
  mutable std::vector<const sim::Job*> active_scratch_;
  mutable bool active_dirty_ = true;
  std::vector<sched::EdfEntry> assign_scratch_;
  std::vector<std::size_t> free_scratch_;
  std::vector<std::size_t> selected_scratch_;
  std::vector<std::size_t> claim_scratch_;
  std::vector<char> placed_scratch_;
  std::vector<Time> next_release_;
  std::vector<std::int64_t> next_index_;
  std::vector<Time> worst_response_;

  /// Bumped on every release (skips included — they are "arrivals" for
  /// the stall-commitment rule) and every completion.
  std::uint64_t version_ = 0;

  std::int64_t released_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t overruns_ = 0;
  std::int64_t contained_ = 0;
  std::int64_t migrations_ = 0;
  Work migration_overhead_ = 0.0;  ///< seconds of full-speed work
  std::vector<MigrationRecord> migration_records_;

  std::optional<degrade::DegradationController> degrade_;
  std::vector<std::size_t> last_unfinalized_;
};

}  // namespace

double global_speed_floor(const task::TaskSet& ts, std::size_t n_cores) {
  if (n_cores <= 1) return 0.0;
  double u_max = 0.0;
  for (const auto& t : ts) u_max = std::max(u_max, t.utilization());
  const double m = static_cast<double>(n_cores);
  const double floor = (ts.utilization() + (m - 1.0) * u_max) / m;
  return std::min(floor, 1.0);
}

GlobalResult simulate_global(const task::TaskSet& ts,
                             const task::ExecutionTimeModel& workload,
                             const cpu::Processor& processor,
                             sim::Governor& governor,
                             const GlobalOptions& options) {
  GlobalSimEngine engine(ts, workload, processor, governor, options);
  return engine.run();
}

}  // namespace dvs::mp
