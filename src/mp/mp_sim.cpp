#include "mp/mp_sim.hpp"

#include <future>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace dvs::mp {
namespace {

/// Pass-through ExecutionTimeModel that substitutes the core's GLOBAL
/// task ids for the local ids of a per-core task set, so draw() returns
/// the same value the task would see in the uniprocessor run.  name() is
/// transparent: reports (SimResult::workload) show the inner model.
class RemappedWorkload final : public task::ExecutionTimeModel {
 public:
  RemappedWorkload(task::ExecutionTimeModelPtr inner,
                   std::vector<std::int32_t> global_ids)
      : inner_(std::move(inner)), global_ids_(std::move(global_ids)) {}

  [[nodiscard]] Work draw(const task::Task& task,
                          std::int64_t job_index) const override {
    const auto local = static_cast<std::size_t>(task.id);
    DVS_EXPECT(task.id >= 0 && local < global_ids_.size(),
               "remapped workload: task id outside the core's set");
    if (global_ids_[local] == task.id) return inner_->draw(task, job_index);
    task::Task global = task;
    global.id = global_ids_[local];
    return inner_->draw(global, job_index);
  }

  [[nodiscard]] std::string name() const override { return inner_->name(); }

 private:
  task::ExecutionTimeModelPtr inner_;
  std::vector<std::int32_t> global_ids_;
};

/// Run `job(i)` for i in [0, n), serially or over a pool; futures drain in
/// index order so the first failing index's exception propagates
/// deterministically (same discipline as the sweep engine, DESIGN.md §6).
template <typename Fn>
void dispatch_cores(std::size_t workers, std::size_t n, const Fn& job) {
  if (workers <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) job(i);
    return;
  }
  util::ThreadPool pool(std::min(workers, n));
  std::vector<std::future<void>> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pending.push_back(pool.submit([&job, i] { job(i); }));
  }
  for (auto& f : pending) f.get();
}

}  // namespace

std::string backend_name(MpBackend b) {
  return b == MpBackend::kGlobal ? "global" : "partitioned";
}

MpBackend backend_by_name(const std::string& name) {
  const std::string low = util::to_lower(name);
  if (low == "partitioned" || low == "part" || low == "p") {
    return MpBackend::kPartitioned;
  }
  if (low == "global" || low == "g") return MpBackend::kGlobal;
  DVS_EXPECT(false, "unknown multiprocessor backend: '" + name +
                        "' (expected partitioned | global)");
  return MpBackend::kPartitioned;  // unreachable
}

task::ExecutionTimeModelPtr remap_workload(task::ExecutionTimeModelPtr inner,
                                           std::vector<std::int32_t> ids) {
  DVS_EXPECT(inner != nullptr, "remap_workload: null inner model");
  return std::make_shared<RemappedWorkload>(std::move(inner), std::move(ids));
}

MpPlan plan_mp(const task::TaskSet& ts,
               const task::ExecutionTimeModelPtr& workload,
               std::size_t n_cores, PartitionHeuristic h, Time length) {
  DVS_EXPECT(workload != nullptr, "plan_mp: null workload model");
  MpPlan plan;
  plan.partition = partition_task_set(ts, n_cores, h);
  plan.length = length < 0.0 ? ts.default_sim_length() : length;
  if (!plan.partition.feasible) return plan;

  const Partition& p = plan.partition.partition;
  plan.core_sets.reserve(n_cores);
  plan.core_workloads.reserve(n_cores);
  for (std::size_t c = 0; c < n_cores; ++c) {
    plan.core_sets.push_back(core_task_set(ts, p, c));
    std::vector<std::int32_t> global_ids;
    global_ids.reserve(p.tasks_of_core[c].size());
    for (const std::size_t gi : p.tasks_of_core[c]) {
      global_ids.push_back(ts[gi].id);
    }
    plan.core_workloads.push_back(
        remap_workload(workload, std::move(global_ids)));
  }
  return plan;
}

std::string MpResult::summary() const {
  if (backend == MpBackend::kGlobal) {
    return total.governor + " [global " + std::to_string(partition.n_cores) +
           " cores]: E=" + util::format_double(total.total_energy(), 4) +
           " misses=" + std::to_string(total.deadline_misses) +
           " migrations=" + std::to_string(total.migrations) +
           " switches=" + std::to_string(total.speed_switches) +
           " avg_speed=" + util::format_double(total.average_speed, 3);
  }
  std::size_t used = 0;
  for (const auto& c : partition.tasks_of_core) used += c.empty() ? 0 : 1;
  return total.governor + " [" + heuristic_name(partition.heuristic) + " " +
         std::to_string(used) + "/" + std::to_string(partition.n_cores) +
         " cores]: E=" + util::format_double(total.total_energy(), 4) +
         " misses=" + std::to_string(total.deadline_misses) +
         " switches=" + std::to_string(total.speed_switches) +
         " avg_speed=" + util::format_double(total.average_speed, 3);
}

MpResult assemble_mp(const task::TaskSet& ts, const MpPlan& plan,
                     std::vector<sim::SimResult> cores) {
  DVS_EXPECT(plan.feasible(), "assemble_mp: infeasible plan");
  const Partition& p = plan.partition.partition;
  DVS_EXPECT(cores.size() == p.n_cores,
             "assemble_mp: one SimResult per core required");

  MpResult mp;
  mp.partition = p;

  // The M = 1 equivalence contract: a single all-tasks core IS the
  // uniprocessor run (ids and order already global), so the aggregate is
  // that result verbatim — no re-derivation that could perturb a bit.
  if (p.n_cores == 1) {
    mp.total = cores.front();
    mp.cores = std::move(cores);
    return mp;
  }

  // Names and placeholder metadata from the first populated core.
  sim::SimResult& total = mp.total;
  for (std::size_t c = 0; c < cores.size(); ++c) {
    if (p.tasks_of_core[c].empty()) continue;
    total.governor = cores[c].governor;
    total.processor = cores[c].processor;
    total.workload = cores[c].workload;
    total.sim_length = cores[c].sim_length;
    break;
  }
  for (std::size_t c = 0; c < cores.size(); ++c) {
    if (!p.tasks_of_core[c].empty()) continue;
    cores[c] = sim::SimResult{};  // powered-down core
    cores[c].governor = total.governor;
    cores[c].processor = total.processor;
    cores[c].workload = total.workload;
    cores[c].sim_length = plan.length;
  }

  total.per_task_energy.assign(ts.size(), 0.0);
  total.worst_response.assign(ts.size(), 0.0);
  double speed_dot_busy = 0.0;
  for (std::size_t c = 0; c < cores.size(); ++c) {
    const sim::SimResult& r = cores[c];
    const std::vector<std::size_t>& members = p.tasks_of_core[c];
    total.busy_energy += r.busy_energy;
    total.idle_energy += r.idle_energy;
    total.transition_energy += r.transition_energy;
    total.busy_time += r.busy_time;
    total.idle_time += r.idle_time;
    total.transition_time += r.transition_time;
    total.jobs_released += r.jobs_released;
    total.jobs_completed += r.jobs_completed;
    total.deadline_misses += r.deadline_misses;
    total.jobs_truncated += r.jobs_truncated;
    total.speed_switches += r.speed_switches;
    total.preemptions += r.preemptions;
    total.jobs_overrun += r.jobs_overrun;
    total.overruns_contained += r.overruns_contained;
    total.processor_faults += r.processor_faults;
    speed_dot_busy += r.average_speed * r.busy_time;
    for (std::size_t i = 0; i < members.size(); ++i) {
      const std::size_t gi = members[i];
      if (i < r.per_task_energy.size()) {
        total.per_task_energy[gi] = r.per_task_energy[i];
      }
      if (i < r.worst_response.size()) {
        total.worst_response[gi] = r.worst_response[i];
      }
    }
    for (const sim::JobRecord& j : r.jobs) {
      sim::JobRecord g = j;
      DVS_ENSURE(j.task_id >= 0 &&
                     static_cast<std::size_t>(j.task_id) < members.size(),
                 "job record outside its core's task set");
      g.task_id =
          static_cast<std::int32_t>(members[static_cast<std::size_t>(
              j.task_id)]);
      total.jobs.push_back(g);
    }
  }
  total.average_speed =
      total.busy_time > 0.0 ? speed_dot_busy / total.busy_time : 1.0;
  mp.cores = std::move(cores);
  return mp;
}

MpResult simulate_mp(const task::TaskSet& ts,
                     const task::ExecutionTimeModelPtr& workload,
                     const cpu::Processor& processor,
                     const GovernorFactory& make_governor,
                     const MpOptions& options) {
  DVS_EXPECT(make_governor != nullptr, "simulate_mp: null governor factory");
  if (options.backend == MpBackend::kGlobal) {
    DVS_EXPECT(workload != nullptr, "simulate_mp: null workload model");
    auto governor = make_governor();  // ONE shared platform governor
    DVS_EXPECT(governor != nullptr, "governor factory returned null");
    GlobalOptions gopts;
    gopts.length = options.length;
    gopts.n_cores = options.n_cores;
    gopts.migration_cost = options.migration_cost;
    gopts.record_jobs = options.record_jobs;
    gopts.containment = options.containment;
    gopts.traces = options.traces;
    GlobalResult g =
        simulate_global(ts, *workload, processor, *governor, gopts);
    MpResult mp;
    mp.backend = MpBackend::kGlobal;
    mp.partition.n_cores = options.n_cores;
    mp.partition.core_of.assign(ts.size(), -1);
    mp.partition.tasks_of_core.resize(options.n_cores);
    mp.partition.core_utilization.assign(options.n_cores, 0.0);
    mp.total = std::move(g.total);
    mp.cores = std::move(g.cores);
    mp.migrations = std::move(g.migrations);
    return mp;
  }
  const MpPlan plan = plan_mp(ts, workload, options.n_cores,
                              options.heuristic, options.length);
  DVS_EXPECT(plan.feasible(), plan.partition.error);
  const std::size_t n = options.n_cores;
  if (options.traces != nullptr) {
    options.traces->clear();
    options.traces->resize(n);
  }

  std::vector<sim::SimResult> cores(n);
  const std::size_t workers =
      util::ThreadPool::resolve_threads(options.n_threads);
  dispatch_cores(workers, n, [&](std::size_t c) {
    if (plan.core_sets[c].empty()) return;  // powered-down core
    auto governor = make_governor();
    DVS_EXPECT(governor != nullptr, "governor factory returned null");
    sim::SimOptions opts;
    opts.length = plan.length;
    opts.record_jobs = options.record_jobs;
    opts.containment = options.containment;
    if (options.traces != nullptr) opts.trace = &(*options.traces)[c];
    cores[c] = sim::simulate(plan.core_sets[c], *plan.core_workloads[c],
                             processor, *governor, opts);
  });
  return assemble_mp(ts, plan, std::move(cores));
}

}  // namespace dvs::mp
