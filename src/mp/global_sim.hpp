// Global-EDF multiprocessor DVS simulation (DESIGN.md §14).
//
// The second `mp` backend, next to the partitioned one (mp_sim.hpp): a
// SINGLE deadline-ordered ready queue feeds M identical DVS cores, and a
// preempted job may resume on any core (job-level migration).  Where the
// partitioned backend is M independent uniprocessor runs, the global
// backend is ONE discrete-event engine whose events (releases,
// completions, budget timers, stall ends) are platform-wide scheduling
// points: at every event the M earliest-deadline ready jobs are mapped
// onto the M cores (sticky to the core a job last executed on, so
// migrations happen only when EDF forces them) and the shared governor is
// asked for each core's speed.
//
// Migration-cost model: resuming a partially executed job on a different
// core counts one migration and folds a surcharge of
// `GlobalOptions::migration_cost` seconds of full-speed work into BOTH
// the job's remaining demand and its WCET budget (governors must budget
// for the overhead they cause).  Totals land in the new SimResult fields
// `migrations` / `migration_overhead_us`.
//
// Speed floor: with M >= 2 every governor request is clamped up to the
// GFB bound (U_sum + (M-1)·U_max) / M.  Goossens–Funk–Baruah showed a
// set is global-EDF schedulable on M unit-speed cores when
// U_sum <= M·(1 - U_max) + U_max; running every core at least at the
// floor scales that test back to a pass, and global EDF's predictability
// under execution-time reduction makes any faster-than-floor schedule
// finish no later.  Sets inside the bound therefore never miss at
// migration_cost == 0 on free-transition processors — the property the
// zero-miss fuzz enforces.  The floor is DISABLED at M == 1, where the
// engine instead promises bit-identity with sim::simulate.
//
// Determinism contract (the reason this engine is sequential): results
// are a pure function of the inputs — there is no thread pool here, and
// the exp-layer fan-out treats one global run as one unit of work, so
// SweepOutcomes are bit-identical for every thread count.  With M == 1
// the event sequence, governor call sequence, heap operations and FP
// operation order all reduce to exactly sim::simulate's, and the result
// is bit-identical to the uniprocessor engine (tests/test_global_sim.cpp
// enforces both).
//
// Governor model: ONE shared governor instance observes the whole
// platform — on_start once, every release/completion once, and one
// select_speed per (core, scheduling event).  SimContext::active_jobs()
// exposes the full EDF-ordered ready set (a conservative virtual-
// uniprocessor view), and current_speed() answers for the core being
// dispatched.  At M == 1 this is verbatim the uniprocessor protocol.
#pragma once

#include <cstdint>
#include <vector>

#include "cpu/processors.hpp"
#include "degrade/degrade.hpp"
#include "obs/audit.hpp"
#include "sim/result.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "task/task_set.hpp"
#include "task/workload.hpp"

namespace dvs::mp {

/// One job-level migration: job (task_id, job_index) resumed on
/// `to_core` after last executing on `from_core` at time `at`.
struct MigrationRecord {
  Time at = 0.0;
  std::int32_t task_id = 0;
  std::int64_t job_index = 0;
  std::int32_t from_core = 0;
  std::int32_t to_core = 0;
};

struct GlobalOptions {
  Time length = -1.0;  ///< negative: TaskSet::default_sim_length()
  std::size_t n_cores = 1;
  /// Per-migration surcharge in seconds of full-speed work, folded into
  /// the migrating job's remaining demand AND its WCET budget.
  Time migration_cost = 0.0;
  bool record_jobs = false;
  bool stop_on_miss = false;
  sim::OverrunPolicy containment = sim::OverrunPolicy::kNone;
  /// Optional graceful-degradation controller config (platform-wide, one
  /// controller; same semantics as SimOptions::degradation).
  const degrade::DegradationConfig* degradation = nullptr;
  /// Optional decision audit (one obs::Decision per per-core dispatch).
  obs::DecisionAudit* audit = nullptr;
  /// Optional per-core trace sinks; resized to n_cores when non-null.
  /// Release/skip/mode events land on core 0's trace; busy/idle/
  /// transition segments and completion/miss events on the owning core's.
  std::vector<sim::VectorTrace>* traces = nullptr;
};

/// Result of one global-EDF run.
struct GlobalResult {
  /// Whole-platform aggregate.  Job accounting (released / completed /
  /// misses / truncated / overruns / degradation) is platform-wide;
  /// busy + idle + transition time sums to M × sim_length (all M cores
  /// are powered — a global scheduler cannot power a core down).
  sim::SimResult total;
  /// Per-core detail: energy/time breakdown, switches, preemptions,
  /// processor faults, completions and completion-detected misses of the
  /// jobs that finished there.  At M == 1 this is a verbatim copy of
  /// `total` (the uniprocessor-identical result).
  std::vector<sim::SimResult> cores;
  /// Every migration instant in time order (drives the Chrome-trace flow
  /// events).
  std::vector<MigrationRecord> migrations;
};

/// Run one global-EDF simulation.  EDF only (the global backend has no
/// fixed-priority mode).  The governor is shared and stateful: pass a
/// fresh instance per run.  Throws ContractError on invalid inputs.
[[nodiscard]] GlobalResult simulate_global(
    const task::TaskSet& ts, const task::ExecutionTimeModel& workload,
    const cpu::Processor& processor, sim::Governor& governor,
    const GlobalOptions& options = {});

/// The M >= 2 dispatch speed floor (GFB bound clamped to [0, 1]):
/// (U_sum + (M-1)·U_max) / M.  Exposed for tests; returns 0 for M <= 1.
[[nodiscard]] double global_speed_floor(const task::TaskSet& ts,
                                        std::size_t n_cores);

}  // namespace dvs::mp
