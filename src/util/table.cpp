#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace dvs::util {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::row_numeric(const std::string& label,
                            const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  rows_.push_back(std::move(cells));
}

void TextTable::render(std::ostream& out, int indent) const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  const std::string pad(static_cast<std::size_t>(indent), ' ');
  auto emit = [&](const std::vector<std::string>& cells) {
    out << pad;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out << "  ";
      // Left-align the first column (labels), right-align numeric columns.
      const auto w = static_cast<long>(widths[i]);
      if (i == 0) {
        out << cells[i];
        for (long k = static_cast<long>(cells[i].size()); k < w; ++k) out << ' ';
      } else {
        for (long k = static_cast<long>(cells[i].size()); k < w; ++k) out << ' ';
        out << cells[i];
      }
    }
    out << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i > 0 ? 2 : 0);
    }
    out << pad << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

std::string TextTable::str() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

}  // namespace dvs::util
