#include "util/thread_pool.hpp"

#include "util/error.hpp"

namespace dvs::util {

ThreadPool::ThreadPool(std::size_t n_threads) {
  DVS_EXPECT(n_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;  // already shut down
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

bool ThreadPool::stopped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stopping_;
}

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task: exceptions land in the task's future
  }
}

}  // namespace dvs::util
