// Aligned plain-text tables for experiment reports.
//
// The benchmark harness prints paper-style tables on stdout; this class
// handles column sizing and alignment so every bench binary reports in a
// uniform format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dvs::util {

/// Builds a table row by row, then renders with aligned columns.
class TextTable {
 public:
  /// Set the header row (optional; rendered with a separator line).
  void header(std::vector<std::string> cells);

  /// Append a data row. Rows may have differing cell counts.
  void row(std::vector<std::string> cells);

  /// Append a row of numbers formatted at the given precision, with an
  /// optional leading label cell.
  void row_numeric(const std::string& label, const std::vector<double>& values,
                   int precision = 4);

  /// Render to a stream with `indent` leading spaces per line.
  void render(std::ostream& out, int indent = 2) const;

  /// Render to a string (convenience for tests).
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dvs::util
