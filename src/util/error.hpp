// Error handling for SlackDVS.
//
// The library distinguishes two failure classes:
//  * contract violations (caller bugs) -> dvs::util::ContractError via
//    DVS_EXPECT, mirroring the Core Guidelines' Expects();
//  * internal invariant breakage       -> dvs::util::InternalError via
//    DVS_ENSURE, mirroring Ensures().
//
// Both throw rather than abort so that tests can exercise failure paths.
#pragma once

#include <stdexcept>
#include <string>

namespace dvs::util {

/// Thrown when a caller violates a documented precondition.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an internal invariant is found broken (a library bug).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_contract(const char* cond, const char* file,
                                        int line, const std::string& msg) {
  throw ContractError(std::string("precondition failed: ") + cond + " at " +
                      file + ":" + std::to_string(line) +
                      (msg.empty() ? "" : (" — " + msg)));
}
[[noreturn]] inline void throw_internal(const char* cond, const char* file,
                                        int line, const std::string& msg) {
  throw InternalError(std::string("invariant failed: ") + cond + " at " +
                      file + ":" + std::to_string(line) +
                      (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

}  // namespace dvs::util

/// Precondition check: document and enforce what callers must guarantee.
#define DVS_EXPECT(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::dvs::util::detail::throw_contract(#cond, __FILE__, __LINE__, msg); \
    }                                                                      \
  } while (false)

/// Postcondition / invariant check: guards against internal bugs.
#define DVS_ENSURE(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::dvs::util::detail::throw_internal(#cond, __FILE__, __LINE__, msg); \
    }                                                                      \
  } while (false)
