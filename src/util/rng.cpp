#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace dvs::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_u64(std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept {
  // Feed the coordinates through successive SplitMix64 rounds; each round
  // fully avalanches, so (a,b,c) and (a',b,c) with a != a' decorrelate.
  std::uint64_t state = a ^ 0x2545f4914f6cdd1dULL;
  std::uint64_t h = splitmix64(state);
  state ^= b + 0x9e3779b97f4a7c15ULL;
  h ^= splitmix64(state);
  state ^= c + 0xd1b54a32d192ed03ULL;
  h ^= splitmix64(state);
  return h;
}

double hash_unit(std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept {
  // Top 53 bits -> [0, 1) with full double precision.
  return static_cast<double>(hash_u64(a, b, c) >> 11) * 0x1.0p-53;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Xoshiro256StarStar::result_type Xoshiro256StarStar::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256StarStar::unit() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256StarStar::uniform(double lo, double hi) {
  DVS_EXPECT(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * unit();
}

std::int64_t Xoshiro256StarStar::uniform_int(std::int64_t lo, std::int64_t hi) {
  DVS_EXPECT(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling removes modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = 0;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Xoshiro256StarStar::normal() {
  // Box–Muller; regenerate u1 until nonzero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = unit();
  } while (u1 <= 0.0);
  const double u2 = unit();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Xoshiro256StarStar::normal(double mean, double stddev) {
  DVS_EXPECT(stddev >= 0.0, "normal() requires stddev >= 0");
  return mean + stddev * normal();
}

}  // namespace dvs::util
