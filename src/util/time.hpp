// Fundamental quantities of the simulation.
//
// * Time is model seconds (double).
// * Work is "normalized cycles": the wall-clock time a computation needs at
//   the processor's maximum speed.  Executing for wall time dt at relative
//   speed alpha in (0, 1] retires alpha * dt units of Work.
//
// Floating-point time requires an explicit comparison tolerance; all
// deadline / ordering comparisons in the library go through the helpers
// below so the tolerance lives in exactly one place.
#pragma once

#include <cmath>

namespace dvs {

using Time = double;
using Work = double;

/// Absolute tolerance for time comparisons.  Simulations run for at most
/// ~1e6 model seconds with events no denser than microseconds, so 1e-9
/// distinguishes every meaningful instant while absorbing rounding noise.
inline constexpr Time kTimeEps = 1e-9;

/// a < b beyond tolerance.
[[nodiscard]] inline bool time_less(Time a, Time b) noexcept {
  return a < b - kTimeEps;
}

/// a == b within tolerance.
[[nodiscard]] inline bool time_eq(Time a, Time b) noexcept {
  return std::fabs(a - b) <= kTimeEps;
}

/// a <= b within tolerance.
[[nodiscard]] inline bool time_leq(Time a, Time b) noexcept {
  return a <= b + kTimeEps;
}

/// Clamp tiny negative values (rounding residue) to exactly zero.
[[nodiscard]] inline double snap_nonnegative(double x) noexcept {
  return (x < 0.0 && x > -kTimeEps) ? 0.0 : x;
}

}  // namespace dvs
