#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dvs::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  DVS_EXPECT(n_ > 0, "mean of empty RunningStats");
  return mean_;
}

double RunningStats::variance() const {
  DVS_EXPECT(n_ > 1, "variance needs at least two samples");
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  DVS_EXPECT(n_ > 0, "min of empty RunningStats");
  return min_;
}

double RunningStats::max() const {
  DVS_EXPECT(n_ > 0, "max of empty RunningStats");
  return max_;
}

double percentile(std::vector<double> samples, double p) {
  DVS_EXPECT(!samples.empty(), "percentile of empty sample set");
  DVS_EXPECT(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

}  // namespace dvs::util
