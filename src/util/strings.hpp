// Small string formatting helpers (no external dependencies).
#pragma once

#include <string>
#include <vector>

namespace dvs::util {

/// Fixed-precision formatting, e.g. format_double(0.12345, 3) == "0.123".
[[nodiscard]] std::string format_double(double value, int precision = 4);

/// Human-oriented SI time formatting (e.g. "1.50 ms", "20.0 us").
[[nodiscard]] std::string format_si_time(double seconds);

/// Join strings with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               const std::string& sep);

/// True when `s` starts with `prefix`.
[[nodiscard]] bool starts_with(const std::string& s, const std::string& prefix);

/// Lower-case ASCII copy.
[[nodiscard]] std::string to_lower(std::string s);

}  // namespace dvs::util
