// Minimal RFC-4180-ish CSV emission for experiment results and traces.
#pragma once

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

namespace dvs::util {

/// Streams rows to a std::ostream, quoting fields when needed.
/// The writer does not own the stream; keep it alive while writing.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Write a full row; fields are quoted iff they contain , " or newline.
  void row(const std::vector<std::string>& fields);

  /// Convenience: write a row of doubles with the given precision.
  void row_numeric(const std::vector<double>& values, int precision = 6);

 private:
  std::ostream* out_;
};

/// Owns an output file and a CsvWriter over it.
class CsvFile {
 public:
  /// Opens (truncates) `path`. Throws ContractError when it cannot.
  explicit CsvFile(const std::string& path);

  [[nodiscard]] CsvWriter& writer() { return writer_; }

 private:
  std::ofstream stream_;
  CsvWriter writer_;
};

/// Escape a single CSV field (exposed for tests).
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace dvs::util
