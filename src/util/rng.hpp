// Deterministic random number generation.
//
// Two generators are provided:
//  * Xoshiro256StarStar — a fast, high-quality sequential PRNG used for
//    task-set generation and experiment replication;
//  * stateless counter-based hashing (hash_u64 / hash_unit) used to draw a
//    job's actual execution time from (seed, task, job_index).  Because the
//    draw depends only on those coordinates, every governor replays a
//    byte-identical workload — the common-random-numbers protocol the
//    experiment harness relies on (see DESIGN.md §4).
//
// <random> distributions are avoided on purpose: their outputs are not
// reproducible across standard-library implementations.
#pragma once

#include <cstdint>

namespace dvs::util {

/// SplitMix64 step; used for seeding and as the mixing core of hash_u64.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mix of up to three 64-bit coordinates into one 64-bit hash.
[[nodiscard]] std::uint64_t hash_u64(std::uint64_t a, std::uint64_t b = 0,
                                     std::uint64_t c = 0) noexcept;

/// Stateless uniform draw in [0, 1) from three coordinates.
[[nodiscard]] double hash_unit(std::uint64_t a, std::uint64_t b = 0,
                               std::uint64_t c = 0) noexcept;

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~static_cast<result_type>(0);
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double unit();
  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller (deterministic, no cached spare).
  [[nodiscard]] double normal();
  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev);

 private:
  std::uint64_t s_[4];
};

/// Default generator type for the library.
using Rng = Xoshiro256StarStar;

}  // namespace dvs::util
