// A minimal fixed-size thread pool for deterministic experiment fan-out.
//
// Design notes (see DESIGN.md §6):
//  * No work stealing, no dynamic sizing: a fixed worker count plus one
//    FIFO queue keeps scheduling trivial to reason about.  Determinism of
//    experiment results never depends on execution order anyway — callers
//    collect futures in submission (index) order, so results are assembled
//    identically no matter which worker ran which task.
//  * submit() returns a std::future; exceptions thrown by a task are
//    captured by its packaged_task and rethrown from future::get() on the
//    caller's thread.
//  * The destructor DRAINS the queue: every task submitted before
//    destruction runs to completion, then the workers join.  A future
//    obtained from submit() therefore never observes a broken promise.
//  * Service hardening (ISSUE 8): shutdown() is exposed for long-lived
//    daemons; submitting after shutdown is not UB but returns a future
//    already holding a ContractError, and a task that throws is contained
//    in its own future — one poisoned request can neither take down a
//    worker nor leak into a neighbor's result.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace dvs::util {

class ThreadPool {
 public:
  /// Spawns exactly `n_threads` workers; throws ContractError for 0.
  explicit ThreadPool(std::size_t n_threads);

  /// Drains every pending task, then joins the workers.
  ~ThreadPool();

  /// Initiate and complete an orderly shutdown: every task already queued
  /// runs to completion, the workers join, and any later submit() returns
  /// a failed future.  Idempotent; the destructor calls it.  Must not be
  /// called from inside a pool task (a worker cannot join itself).
  void shutdown();

  /// True once shutdown() has begun; submissions are rejected from then on.
  [[nodiscard]] bool stopped() const;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Maps a user-facing thread request onto a concrete worker count:
  /// 0 selects std::thread::hardware_concurrency() (at least 1),
  /// any other value is taken literally.
  [[nodiscard]] static std::size_t resolve_threads(std::size_t requested);

  /// Enqueue a nullary callable; its result (or exception) is delivered
  /// through the returned future.  An exception thrown by the task is
  /// captured by its packaged_task and rethrown from future::get() only —
  /// the worker survives.  After shutdown() the task is NOT enqueued; the
  /// returned future holds a ContractError instead (checkable without
  /// crashing a daemon that raced a request against its own stop).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return rejected_future<R>();
      queue_.push([task] { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

 private:
  void worker_loop();

  /// A ready future carrying the submit-after-shutdown ContractError.
  template <typename R>
  static std::future<R> rejected_future() {
    std::promise<R> p;
    p.set_exception(std::make_exception_ptr(
        ContractError("ThreadPool::submit after shutdown")));
    return p.get_future();
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace dvs::util
