// Streaming statistics used by the experiment harness and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace dvs::util {

/// Welford-style running mean/variance with min/max tracking.
/// Numerically stable for long experiment runs.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  /// Mean of the samples. Requires count() > 0.
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance. Requires count() > 1.
  [[nodiscard]] double variance() const;
  /// sqrt(variance()). Requires count() > 1.
  [[nodiscard]] double stddev() const;
  /// Smallest sample. Requires count() > 0.
  [[nodiscard]] double min() const;
  /// Largest sample. Requires count() > 0.
  [[nodiscard]] double max() const;
  /// Sum of all samples (0 when empty).
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolation percentile of a sample vector (copies and sorts).
/// `p` in [0, 100]. Requires a non-empty vector.
[[nodiscard]] double percentile(std::vector<double> samples, double p);

}  // namespace dvs::util
