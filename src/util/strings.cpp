#include "util/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace dvs::util {

std::string format_double(double value, int precision) {
  DVS_EXPECT(precision >= 0 && precision <= 17, "unreasonable precision");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string format_si_time(double seconds) {
  const double a = std::fabs(seconds);
  char buf[64];
  if (a >= 1.0 || a == 0.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", seconds);
  } else if (a >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3f ms", seconds * 1e3);
  } else if (a >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.3f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f ns", seconds * 1e9);
  }
  return buf;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string to_lower(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace dvs::util
