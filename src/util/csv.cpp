#include "util/csv.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dvs::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << csv_escape(fields[i]);
  }
  *out_ << '\n';
}

void CsvWriter::row_numeric(const std::vector<double>& values, int precision) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(format_double(v, precision));
  row(fields);
}

CsvFile::CsvFile(const std::string& path)
    : stream_(path), writer_(stream_) {
  DVS_EXPECT(stream_.is_open(), "cannot open CSV output file: " + path);
}

}  // namespace dvs::util
