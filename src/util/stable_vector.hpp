// Pooled, reference-stable storage for hot-path event records.
//
// The simulation engine appends one Job record per release and hands out
// references that must stay valid for the rest of the run.  std::deque
// delivers the stability but allocates a fresh block every ~5 elements
// (512-byte chunks in libstdc++), which puts an allocator call inside the
// event loop.  StableVector keeps the stability guarantee while pooling
// elements into large fixed-size slabs (256 elements each), and reserve()
// pre-allocates every slab up front — after that, push_back never touches
// the allocator.  See docs/PERFORMANCE.md for the measurement that
// motivated it.
#pragma once

#include <cstddef>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

namespace dvs::util {

/// Append-only sequence with reference stability: elements never move,
/// so a `T&` returned by push_back/operator[] is valid until clear() or
/// destruction.  Elements live in heap slabs of `SlabSize` elements;
/// allocation happens at most once per slab (or never after a sufficient
/// reserve()).  T must be default-constructible.
template <typename T, std::size_t SlabSize = 256>
class StableVector {
  static_assert(SlabSize > 0, "slab must hold at least one element");

 public:
  StableVector() = default;
  StableVector(StableVector&&) noexcept = default;
  StableVector& operator=(StableVector&&) noexcept = default;
  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;

  /// Pre-allocate slabs for at least `n` elements.
  void reserve(std::size_t n) {
    const std::size_t slabs = (n + SlabSize - 1) / SlabSize;
    slabs_.reserve(slabs);
    while (slabs_.size() < slabs) {
      slabs_.push_back(std::make_unique<T[]>(SlabSize));
    }
  }

  /// Append a copy of `v`; returns a stable reference to the element.
  T& push_back(const T& v) {
    T& slot = next_slot();
    slot = v;
    ++size_;
    return slot;
  }

  T& push_back(T&& v) {
    T& slot = next_slot();
    slot = std::move(v);
    ++size_;
    return slot;
  }

  [[nodiscard]] T& operator[](std::size_t i) noexcept {
    return slabs_[i / SlabSize][i % SlabSize];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return slabs_[i / SlabSize][i % SlabSize];
  }

  [[nodiscard]] T& back() noexcept { return (*this)[size_ - 1]; }
  [[nodiscard]] const T& back() const noexcept { return (*this)[size_ - 1]; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Number of elements the current slabs can hold without allocating.
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slabs_.size() * SlabSize;
  }

  /// Drop all elements; slabs are kept for reuse.
  void clear() noexcept { size_ = 0; }

  template <typename V, typename Owner>
  class Iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = V;
    using difference_type = std::ptrdiff_t;
    using pointer = V*;
    using reference = V&;

    Iterator() = default;
    Iterator(Owner* owner, std::size_t i) : owner_(owner), i_(i) {}

    reference operator*() const { return (*owner_)[i_]; }
    pointer operator->() const { return &(*owner_)[i_]; }
    Iterator& operator++() {
      ++i_;
      return *this;
    }
    Iterator operator++(int) {
      Iterator tmp = *this;
      ++i_;
      return tmp;
    }
    bool operator==(const Iterator& o) const { return i_ == o.i_; }
    bool operator!=(const Iterator& o) const { return i_ != o.i_; }

   private:
    Owner* owner_ = nullptr;
    std::size_t i_ = 0;
  };

  using iterator = Iterator<T, StableVector>;
  using const_iterator = Iterator<const T, const StableVector>;

  [[nodiscard]] iterator begin() noexcept { return {this, 0}; }
  [[nodiscard]] iterator end() noexcept { return {this, size_}; }
  [[nodiscard]] const_iterator begin() const noexcept { return {this, 0}; }
  [[nodiscard]] const_iterator end() const noexcept { return {this, size_}; }

 private:
  T& next_slot() {
    if (size_ == capacity()) slabs_.push_back(std::make_unique<T[]>(SlabSize));
    return (*this)[size_];
  }

  std::vector<std::unique_ptr<T[]>> slabs_;
  std::size_t size_ = 0;
};

}  // namespace dvs::util
