// AGR — AGgressive speed Reduction (after Aydin, Melhem, Mossé,
// Mejía-Alvarez, RTSS 2001; the speculative companion of DRA).
//
// DRA never runs the dispatched job slower than `rem / budget` even when
// history suggests the job will finish far below its WCET.  AGR
// speculates: it lowers the speed *below* the DRA point, betting on early
// completion, but only within the provably recoverable window — the span
// until the next task arrival (the next guaranteed scheduling point),
// capped by the DRA budget itself:
//
//     delta       = min(next_arrival, t + budget) - t
//     alpha_floor = (rem - (budget - delta)) / delta
//     alpha       = alpha_dra + (alpha_floor - alpha_dra) * aggressiveness
//
// alpha_floor is the slowest speed from which the job can still consume
// its *entire* worst-case budget: whatever is not executed inside the
// speculation window still fits into the rest of the budget at full
// speed.  Because the governor is re-consulted at the window's end (a
// release is always a scheduling point), the bet is re-settled before any
// deadline can be endangered — the schedule never leaves DRA's feasible
// envelope.  aggressiveness = 0 degenerates to DRA exactly; 1 is maximal
// speculation.
#pragma once

#include "core/dra.hpp"

namespace dvs::core {

class AgrGovernor final : public sim::Governor {
 public:
  explicit AgrGovernor(double aggressiveness = 1.0);

  void on_start(const sim::SimContext& ctx) override;
  void on_release(const sim::Job& job, const sim::SimContext& ctx) override;
  void on_completion(const sim::Job& job, const sim::SimContext& ctx) override;
  [[nodiscard]] double select_speed(const sim::Job& running,
                                    const sim::SimContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "AGR"; }

  /// Audit hook: the *proven* slack behind the last decision — the DRA
  /// core's reclaimed budget beyond the remaining work.  The speculative
  /// discount below the DRA speed is a bet, not an estimate, and is
  /// deliberately excluded (see select_speed).
  [[nodiscard]] Time last_slack_estimate() const override {
    return last_slack_;
  }

 private:
  /// The speculative speed choice itself (select_speed minus bookkeeping);
  /// `budget` is the DRA core's reclaimed budget at ctx.now().
  [[nodiscard]] double decide(const sim::Job& running,
                              const sim::SimContext& ctx, Time budget);

  DraGovernor dra_;
  double aggressiveness_;
  Time last_slack_ = 0.0;
};

}  // namespace dvs::core
