// SlackTimeGovernor — the reproduced contribution of the paper
// "A Dynamic Voltage Scaling Algorithm for Dynamic-Priority Hard Real-Time
// Systems Using Slack Time Analysis" (Kim, Kim, Min — DATE 2002), known in
// the comparison literature as lpSEH.
//
// The full text of the paper was unavailable (see the mismatch note at the
// top of DESIGN.md); the algorithm below is the standard formulation of
// EDF slack-time analysis reconstructed from the title-level description
// and the surrounding literature.
//
// ## Idea
//
// At a scheduling point t the EDF-earliest job J (remaining worst-case
// budget rem, absolute deadline d0) may be slowed down by exactly the
// *slack* the future worst-case schedule provably contains:
//
//     demand(t, d) = sum of remaining WCETs of active jobs with
//                    deadline <= d
//                  + sum of WCETs of future releases in (t, d] whose
//                    deadline <= d
//     slack(t, d)  = (d - t) - demand(t, d)
//     S(t)         = min over deadline checkpoints d in [d0, H] of slack(t, d)
//     speed        = rem / (rem + max(0, S(t)))
//
// Slowing J is equivalent to inflating its remaining work by S; since the
// inflated workload still satisfies the processor-demand criterion at
// every checkpoint, EDF (optimal) meets all deadlines.  Checkpoints below
// d0 need not be examined: jobs due before d0 preempt J and are untouched
// by J's speed.  Early completions are reclaimed automatically because
// demand uses the *remaining* budgets of active jobs.
//
// ## Analysis horizon H (what makes the min finite)
//
//   * hyperperiod available: H = t + D_max + hyperperiod.  Beyond the
//     pre-periodic zone the release pattern repeats and
//     slack(d + hyper) = slack(d) + (1 - U) * hyper >= slack(d), so the
//     window contains the global minimum (also for U == 1).
//   * else U < 1: H = t + (backlog + sum C + D_max) / (1 - U).  Beyond H,
//     slack(d) >= (1-U)(d-t) - backlog - sum C >= D_max >= any candidate S
//     (S <= d0 - t <= D_max), so no far checkpoint can bind.
//   * else (U == 1 with incommensurate periods): H = t +
//     fallback_horizon_periods * max period — a documented approximation.
//
// ## Heuristic mode (ablation)
//
// lpSEH is described as a cheap heuristic; Mode::kHeuristic examines only
// the first `heuristic_checkpoints` checkpoints and then applies the safe
// closure  min(S_window, max(0, slack(d_last) - sum C)) , using the bound
// demand(t,d) - demand(t,d') <= U (d - d') + sum C.  It is therefore still
// deadline-safe, only (slightly) more conservative than the exact sweep.
#pragma once

#include "core/demand.hpp"
#include "core/slack_kernel.hpp"
#include "sim/governor.hpp"

namespace dvs::core {

struct SlackTimeConfig {
  enum class Mode { kExact, kHeuristic };
  Mode mode = Mode::kExact;

  /// kHeuristic: number of deadline checkpoints examined beyond d0.
  int heuristic_checkpoints = 8;

  /// Horizon cap (in max-periods) when neither a finite hyperperiod nor a
  /// finite busy bound exists (U == 1 and incommensurate periods).
  double fallback_horizon_periods = 64.0;

  /// Worst-case stall of one speed change on the target processor.  When
  /// nonzero, the demand sweep charges every job in the analysis window
  /// two stalls (its release-time dispatch and its completion-time
  /// dispatch — the only scheduling points it can add) and the current
  /// decision two more, so the computed slack already absorbs every stall
  /// the schedule can incur.  Combine with OverheadAwareGovernor to also
  /// veto energy-negative switches.
  Time switch_overhead = 0.0;

  /// Which demand-sweep backend executes the checkpoint enumeration (see
  /// core/demand.hpp — all three are bit-identical, only cost differs).
  using Engine = SweepEngine;
  Engine engine = Engine::kKernel;

  /// Back-compat switch predating `engine`: when false, the governor
  /// sweeps from scratch every decision regardless of `engine` (the
  /// historical oracle behaviour relied on by differential tests).
  bool incremental = true;

  /// Paranoia mode for tests: run the kernel, the cached and the
  /// from-scratch sweep at every decision and assert the slack values are
  /// bit-equal.
  bool verify_with_oracle = false;
};

class SlackTimeGovernor final : public sim::Governor {
 public:
  SlackTimeGovernor() = default;
  explicit SlackTimeGovernor(const SlackTimeConfig& config);

  void on_start(const sim::SimContext& ctx) override;
  [[nodiscard]] double select_speed(const sim::Job& running,
                                    const sim::SimContext& ctx) override;
  [[nodiscard]] std::string name() const override;

  /// The slack S(t) that backed the most recent speed decision (tests).
  [[nodiscard]] Time last_slack() const noexcept { return last_slack_; }

  /// Audit hook (obs/audit.hpp): same value as last_slack(), NaN for the
  /// degenerate exhausted-budget dispatch where no sweep runs.
  [[nodiscard]] Time last_slack_estimate() const override {
    return last_slack_;
  }

 private:
  /// Slack available to `running` at time t (the S(t) of the header).
  [[nodiscard]] Time compute_slack(const sim::Job& running,
                                   const sim::SimContext& ctx);

  /// The checkpoint sweep itself, over an already-constructed sweeper —
  /// one template shared verbatim by the kernel, the cached and the
  /// from-scratch backends, so the oracle comparison exercises identical
  /// arithmetic (instantiated in slack_time.cpp only).
  template <typename Sweeper>
  [[nodiscard]] Time sweep_slack(Sweeper& sweeper, Time t, Time d0,
                                 Work per_job_stall, Work tail_work,
                                 bool truncated_horizon) const;

  SlackTimeConfig config_;
  TaskSetStats stats_;
  DemandCache cache_;
  SlackKernel kernel_;
  Time last_slack_ = 0.0;
};

}  // namespace dvs::core
