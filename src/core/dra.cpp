#include "core/dra.hpp"

#include <algorithm>

#include "sched/analysis.hpp"
#include "util/error.hpp"

namespace dvs::core {

bool DraGovernor::before(const Entry& a, const Entry& b) noexcept {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.task_id != b.task_id) return a.task_id < b.task_id;
  return a.seq < b.seq;
}

void DraGovernor::on_start(const sim::SimContext& ctx) {
  DVS_EXPECT(ctx.policy() == sim::SchedulingPolicy::kEdf,
             "DRA's canonical-schedule argument requires EDF dispatching");
  // Best-effort degradation: an overloaded set has no feasible canonical
  // speed (and minimum_constant_speed requires schedulability) — pin the
  // canonical schedule to full speed and let misses be recorded.
  eta_ = sched::edf_schedulable(ctx.task_set())
             ? std::max(sched::minimum_constant_speed(ctx.task_set()), 1e-9)
             : 1.0;
  queue_.clear();
  last_advance_ = ctx.now();
}

void DraGovernor::advance(Time t) {
  Time elapsed = t - last_advance_;
  last_advance_ = t;
  while (elapsed > kTimeEps && !queue_.empty()) {
    Entry& head = queue_.front();
    const Time take = std::min(head.remaining, elapsed);
    head.remaining -= take;
    elapsed -= take;
    if (head.remaining <= kTimeEps) queue_.pop_front();
  }
}

void DraGovernor::on_release(const sim::Job& job, const sim::SimContext& ctx) {
  advance(ctx.now());
  Entry e;
  e.deadline = job.abs_deadline;
  e.task_id = job.task_id;
  e.seq = job.index;
  e.remaining = job.wcet / eta_;
  const auto pos = std::lower_bound(queue_.begin(), queue_.end(), e, before);
  queue_.insert(pos, e);
}

void DraGovernor::on_completion(const sim::Job& job,
                                const sim::SimContext& ctx) {
  advance(ctx.now());
  for (auto& e : queue_) {
    if (e.task_id == job.task_id && e.seq == job.index) {
      e.real_completed = true;
      return;
    }
  }
  // The canonical schedule may already have consumed the job's allotment;
  // nothing to mark then.
}

Time DraGovernor::reclaim_budget(const sim::Job& running,
                                 const sim::SimContext& ctx) {
  advance(ctx.now());
  Entry key;
  key.deadline = running.abs_deadline;
  key.task_id = running.task_id;
  key.seq = running.index;

  Time budget = 0.0;
  for (const auto& e : queue_) {
    if (before(key, e)) break;  // queue is sorted; past the running job
    const bool own = e.task_id == running.task_id && e.seq == running.index;
    if (own) {
      budget += e.remaining;
      break;
    }
    // Earlier-deadline entries with leftover canonical time: usable only
    // when their real job has finished (under EDF it always has; the guard
    // protects the invariant regardless).
    if (e.real_completed) budget += e.remaining;
  }
  return budget;
}

double DraGovernor::select_speed(const sim::Job& running,
                                 const sim::SimContext& ctx) {
  const Time budget = reclaim_budget(running, ctx);
  const Work rem = running.remaining_wcet();
  last_slack_ = std::max(0.0, budget - rem);
  if (budget <= kTimeEps || rem <= 0.0) return 1.0;
  return std::clamp(rem / budget, 1e-9, 1.0);
}

}  // namespace dvs::core
