#include "core/la_edf.hpp"

#include <algorithm>

#include "core/demand.hpp"
#include "util/error.hpp"

namespace dvs::core {

void LaEdfGovernor::on_start(const sim::SimContext& ctx) {
  DVS_EXPECT(ctx.policy() == sim::SchedulingPolicy::kEdf,
             "laEDF's deferral analysis requires EDF dispatching");
  const auto& ts = ctx.task_set();
  current_deadline_.assign(ts.size(), 0.0);
  static_u_ = 0.0;
  for (const auto& t : ts) {
    current_deadline_[static_cast<std::size_t>(t.id)] = t.deadline_of(0);
    static_u_ += t.utilization();
  }
  stats_ = TaskSetStats::of(ts);
  cache_.invalidate();
  kernel_.reset(ts, ctx.now());
  c_left_.reserve(ts.size());
  order_.reserve(ts.size());
}

void LaEdfGovernor::on_release(const sim::Job& job,
                               const sim::SimContext& /*ctx*/) {
  current_deadline_[static_cast<std::size_t>(job.task_id)] = job.abs_deadline;
}

double LaEdfGovernor::select_speed(const sim::Job& running,
                                   const sim::SimContext& ctx) {
  const auto& ts = ctx.task_set();
  const Time now = ctx.now();
  const Time d_next = running.abs_deadline;
  const Time window = d_next - now;
  if (window <= kTimeEps) return 1.0;

  // Remaining worst-case budget per task (0 when its job completed).
  std::vector<Work>& c_left = c_left_;
  c_left.assign(ts.size(), 0.0);
  for (const sim::Job* j : ctx.active_jobs()) {
    c_left[static_cast<std::size_t>(j->task_id)] += j->remaining_wcet();
  }

  // Tasks sorted by current deadline, latest first (reverse EDF).  The
  // comparator is a strict total order (indices are unique), so every
  // correct sort yields the same permutation; insertion sort beats the
  // introsort dispatch at these sizes (n is a task count, not a job
  // count) and keeps the result bit-for-bit what std::sort produced.
  std::vector<std::size_t>& order = order_;
  order.resize(ts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto later = [this](std::size_t a, std::size_t b) {
    if (current_deadline_[a] != current_deadline_[b]) {
      return current_deadline_[a] > current_deadline_[b];
    }
    return a > b;
  };
  for (std::size_t i = 1; i < order.size(); ++i) {
    const std::size_t v = order[i];
    std::size_t j = i;
    while (j > 0 && later(v, order[j - 1])) {
      order[j] = order[j - 1];
      --j;
    }
    order[j] = v;
  }

  // Deferral pass (Pillai & Shin, Fig. 6): U tracks how much utilization
  // the later-deadline tasks will consume inside (d_next, d_i]; x_i is the
  // part of task i's budget that cannot be deferred past d_next.
  //
  // Deviation from the published pseudo-code: a task with no remaining
  // work keeps its static reservation (the U -= C/T step is skipped).
  // Releasing it lets other tasks defer into capacity the completed
  // task's *next* job will need — the as-published pass misses deadlines
  // on pure-WCET workloads exactly this way (caught by this repo's
  // property tests).  Keeping the reservation is conservative and safe.
  double u = static_u_;
  double s = 0.0;
  for (std::size_t i : order) {
    if (c_left[i] <= kTimeEps) continue;
    const auto& t = ts[i];
    u -= t.utilization();
    const double span = current_deadline_[i] - d_next;
    double x = 0.0;
    if (span <= kTimeEps) {
      // The task's deadline coincides with (or precedes) d_next: nothing
      // can be deferred.
      x = c_left[i];
    } else {
      // Overload guard: with U > 1 (overrun experiments) the available
      // utilization 1 - u goes negative and the unclamped formula would
      // inflate x beyond the remaining budget.  No capacity means nothing
      // defers — x = c_left[i] — which is the U <= 1 formula's limit.
      const double avail = std::max(0.0, 1.0 - u);
      x = std::max(0.0, c_left[i] - avail * span);
      u += (c_left[i] - x) / span;
    }
    s += x;
  }
  double alpha = s / window;

  // Safety net: even with the reservation fix, utilization-based deferral
  // can under-provision near deadline boundaries (demand is not uniform).
  // Never drop below the processor-demand floor, which keeps every future
  // checkpoint feasible by construction (see core/demand.hpp).
  double floor = 0.0;
  switch (config_.engine) {
    case SweepEngine::kKernel:
      floor = demand_speed_floor(ctx, stats_, d_next, 64.0, kernel_);
      break;
    case SweepEngine::kLegacyCached:
      floor = demand_speed_floor(ctx, stats_, d_next, 64.0, &cache_);
      break;
    case SweepEngine::kLegacyScan:
      floor = demand_speed_floor(ctx, stats_, d_next, 64.0);
      break;
  }
  alpha = std::max(alpha, floor);
  return std::clamp(alpha, 1e-9, 1.0);
}

}  // namespace dvs::core
