// uniformSlack — an extension governor built on the same slack-time
// analysis as lpSEH (not part of the reproduced paper; the paper's
// conclusion lists "more aggressive slack reclaiming strategies" as future
// work, and this is the natural next step).
//
// lpSEH assigns ALL provable slack to the earliest-deadline job, which
// produces uneven speeds (very slow now, fast later).  Under a convex
// power curve an uneven speed profile wastes energy; this governor instead
// runs at the processor-demand *speed floor* of core/demand.hpp: the
// minimum speed until the next deadline d0 such that — even if everything
// afterwards had to run at full speed — every future checkpoint stays
// feasible.  Because it is re-derived at every scheduling point, the
// "full speed afterwards" phase never actually materializes; successive
// floors stay low as early completions keep lowering future demand, so the
// reclaimed capacity is spread over the whole backlog instead of being
// granted to one job.
//
// Safety: the floor's plan is feasible by construction and re-validated at
// each decision, so deadlines are always met (property-tested across the
// whole experiment grid).
#pragma once

#include "core/demand.hpp"
#include "core/slack_kernel.hpp"
#include "sim/governor.hpp"

namespace dvs::core {

struct UniformSlackConfig {
  /// Backend of the floor sweep (bit-identical across engines; see
  /// core/demand.hpp).  kLegacyScan/kLegacyCached stay compiled in as the
  /// differential-testing reference.
  SweepEngine engine = SweepEngine::kKernel;
};

class UniformSlackGovernor final : public sim::Governor {
 public:
  UniformSlackGovernor() = default;
  explicit UniformSlackGovernor(const UniformSlackConfig& config)
      : config_(config) {}

  void on_start(const sim::SimContext& ctx) override;
  [[nodiscard]] double select_speed(const sim::Job& running,
                                    const sim::SimContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "uniformSlack"; }

  /// Audit hook: the stretch the last speed floor grants the running job,
  /// rem / floor - rem.  Unlike lpSEH the floor deliberately leaves slack
  /// for later jobs, so its estimates are intentionally conservative.
  [[nodiscard]] Time last_slack_estimate() const override {
    return last_slack_;
  }

 private:
  UniformSlackConfig config_;
  TaskSetStats stats_;
  DemandCache cache_;   ///< legacy-cached floor enumeration
  SlackKernel kernel_;  ///< incremental floor enumeration (the default)
  Time last_slack_ = 0.0;
};

}  // namespace dvs::core
