// Look-ahead EDF (Pillai & Shin, SOSP 2001).
//
// The most aggressive of the RT-DVS schemes: instead of scaling by current
// utilization it *defers* as much work as feasibly possible beyond the
// next deadline D_next and runs only the work that must complete before
// D_next.  The deferral pass walks tasks from the latest current deadline
// to the earliest, packing each task's remaining budget into the interval
// (D_next, d_i] as densely as feasibility allows; whatever does not fit
// (`x`) must execute before D_next.  The selected speed is
// sum(x) / (D_next - now).
//
// Deadlines are tracked per task: the deadline of the task's most recently
// released job (its first absolute deadline before any release).
//
// Two documented deviations from the published pseudo-code, both needed to
// make the scheme hard-real-time safe (this repo's property tests caught
// pure-WCET deadline misses in the as-published version):
//   1. tasks with no remaining work keep their static utilization
//      reservation (their future jobs still need that capacity), and
//   2. the final speed never drops below the processor-demand floor of
//      core/demand.hpp.
#pragma once

#include <vector>

#include "core/demand.hpp"
#include "core/slack_kernel.hpp"
#include "sim/governor.hpp"

namespace dvs::core {

struct LaEdfConfig {
  /// Backend of the safety-floor sweep (bit-identical across engines; see
  /// core/demand.hpp).  kLegacyScan/kLegacyCached stay compiled in as the
  /// differential-testing reference.
  SweepEngine engine = SweepEngine::kKernel;
};

class LaEdfGovernor final : public sim::Governor {
 public:
  LaEdfGovernor() = default;
  explicit LaEdfGovernor(const LaEdfConfig& config) : config_(config) {}

  void on_start(const sim::SimContext& ctx) override;
  void on_release(const sim::Job& job, const sim::SimContext& ctx) override;
  [[nodiscard]] double select_speed(const sim::Job& running,
                                    const sim::SimContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "laEDF"; }

 private:
  LaEdfConfig config_;
  std::vector<Time> current_deadline_;  ///< per task
  double static_u_ = 0.0;
  TaskSetStats stats_;
  DemandCache cache_;    ///< legacy-cached floor enumeration
  SlackKernel kernel_;   ///< incremental floor enumeration (the default)
  // Per-decision scratch (capacity reused; the hot path never allocates).
  std::vector<Work> c_left_;
  std::vector<std::size_t> order_;
};

}  // namespace dvs::core
