// Static EDF DVS (Pillai & Shin 2001, "statically-scaled EDF").
//
// The entire schedule runs at the minimum constant speed that keeps the
// task set EDF-schedulable — the utilization for implicit deadlines, the
// processor-demand bound for constrained deadlines.  This is the optimal
// *static* policy; every dynamic scheme tries to beat it by reclaiming
// run-time slack.
#pragma once

#include "sim/governor.hpp"

namespace dvs::core {

class StaticEdfGovernor final : public sim::Governor {
 public:
  void on_start(const sim::SimContext& ctx) override;
  [[nodiscard]] double select_speed(const sim::Job& running,
                                    const sim::SimContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "staticEDF"; }

 private:
  double alpha_ = 1.0;
};

}  // namespace dvs::core
