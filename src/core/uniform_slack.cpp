#include "core/uniform_slack.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace dvs::core {

void UniformSlackGovernor::on_start(const sim::SimContext& ctx) {
  DVS_EXPECT(ctx.policy() == sim::SchedulingPolicy::kEdf,
             "the demand speed floor requires EDF dispatching");
  stats_ = TaskSetStats::of(ctx.task_set());
  cache_.invalidate();
  kernel_.reset(ctx.task_set(), ctx.now());
}

double UniformSlackGovernor::select_speed(const sim::Job& running,
                                          const sim::SimContext& ctx) {
  const Time d0 = running.abs_deadline;
  double floor = 0.0;
  switch (config_.engine) {
    case SweepEngine::kKernel:
      floor = demand_speed_floor(ctx, stats_, d0, 64.0, kernel_);
      break;
    case SweepEngine::kLegacyCached:
      floor = demand_speed_floor(ctx, stats_, d0, 64.0, &cache_);
      break;
    case SweepEngine::kLegacyScan:
      floor = demand_speed_floor(ctx, stats_, d0, 64.0);
      break;
  }
  const double alpha = std::clamp(floor, 1e-9, 1.0);
  const Work rem = running.remaining_wcet();
  last_slack_ = rem > 0.0 ? rem / alpha - rem
                          : std::numeric_limits<Time>::quiet_NaN();
  return alpha;
}

}  // namespace dvs::core
