#include "core/critical_speed.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dvs::core {

double critical_speed(const cpu::PowerModel& power) {
  const double idle = power.idle_power();
  // Effective marginal energy per unit of work at speed alpha: executing
  // work w takes w/alpha seconds at busy power, *displacing* w/alpha
  // seconds of idle draw.
  const auto cost = [&](double alpha) {
    return (power.busy_power(alpha) - idle) / alpha;
  };
  // Ternary search on (0, 1]; all shipped models yield unimodal cost.
  double lo = 1e-3;
  double hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (cost(m1) < cost(m2)) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  return std::clamp(0.5 * (lo + hi), 1e-3, 1.0);
}

CriticalSpeedGovernor::CriticalSpeedGovernor(sim::GovernorPtr inner,
                                             cpu::PowerModelPtr power)
    : inner_(std::move(inner)), power_(std::move(power)) {
  DVS_EXPECT(inner_ != nullptr, "critical-speed wrapper needs a governor");
  DVS_EXPECT(power_ != nullptr, "critical-speed wrapper needs a power model");
}

void CriticalSpeedGovernor::on_start(const sim::SimContext& ctx) {
  inner_->on_start(ctx);
  floor_ = critical_speed(*power_);
}

void CriticalSpeedGovernor::on_release(const sim::Job& job,
                                       const sim::SimContext& ctx) {
  inner_->on_release(job, ctx);
}

void CriticalSpeedGovernor::on_completion(const sim::Job& job,
                                          const sim::SimContext& ctx) {
  inner_->on_completion(job, ctx);
}

double CriticalSpeedGovernor::select_speed(const sim::Job& running,
                                           const sim::SimContext& ctx) {
  // Raising a speed can only make the job finish earlier: deadline-safe.
  return std::max(inner_->select_speed(running, ctx), floor_);
}

std::string CriticalSpeedGovernor::name() const {
  return inner_->name() + "+crit";
}

sim::GovernorPtr critical_speed_clamp(sim::GovernorPtr inner,
                                      cpu::PowerModelPtr power) {
  return std::make_unique<CriticalSpeedGovernor>(std::move(inner),
                                                 std::move(power));
}

}  // namespace dvs::core
