#include "core/lpps_edf.hpp"

#include <algorithm>

namespace dvs::core {

double LppsEdfGovernor::select_speed(const sim::Job& running,
                                     const sim::SimContext& ctx) {
  last_slack_ = 0.0;  // "no slack detected" — the scheme's default claim
  if (ctx.active_jobs().size() != 1) return 1.0;
  const Time now = ctx.now();
  const Time horizon =
      std::min(ctx.next_release_after(now), running.abs_deadline);
  const Time window = horizon - now;
  if (window <= kTimeEps) return 1.0;
  last_slack_ = std::max(0.0, window - running.remaining_wcet());
  return std::clamp(running.remaining_wcet() / window, 1e-9, 1.0);
}

}  // namespace dvs::core
