#include "core/registry.hpp"

#include "core/agr.hpp"
#include "core/cc_edf.hpp"
#include "core/dra.hpp"
#include "core/la_edf.hpp"
#include "core/lpps_edf.hpp"
#include "core/no_dvs.hpp"
#include "core/slack_time.hpp"
#include "opt/oracle.hpp"
#include "core/static_edf.hpp"
#include "core/uniform_slack.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dvs::core {

const std::vector<GovernorSpec>& standard_governors() {
  static const std::vector<GovernorSpec> kSpecs = [] {
    std::vector<GovernorSpec> specs;
    specs.push_back({"noDVS", "always run at maximum speed (baseline)",
                     [] { return std::make_unique<NoDvsGovernor>(); }});
    specs.push_back({"staticEDF",
                     "optimal constant speed (Pillai & Shin static)",
                     [] { return std::make_unique<StaticEdfGovernor>(); }});
    specs.push_back({"lppsEDF",
                     "stretch a lone job to the next arrival (Shin/Choi)",
                     [] { return std::make_unique<LppsEdfGovernor>(); }});
    specs.push_back({"ccEDF", "cycle-conserving EDF (Pillai & Shin)",
                     [] { return std::make_unique<CcEdfGovernor>(); }});
    specs.push_back({"laEDF", "look-ahead EDF (Pillai & Shin)",
                     [] { return std::make_unique<LaEdfGovernor>(); }});
    specs.push_back({"DRA", "dynamic reclaiming (Aydin et al.)",
                     [] { return std::make_unique<DraGovernor>(); }});
    specs.push_back({"AGR",
                     "aggressive speculative reduction (Aydin et al.)",
                     [] { return std::make_unique<AgrGovernor>(); }});
    specs.push_back({"lpSEH-h",
                     "slack-time analysis, bounded-checkpoint heuristic "
                     "(this paper, ablation)",
                     [] {
                       SlackTimeConfig cfg;
                       cfg.mode = SlackTimeConfig::Mode::kHeuristic;
                       return std::make_unique<SlackTimeGovernor>(cfg);
                     }});
    specs.push_back({"lpSEH",
                     "slack-time analysis, exact sweep (this paper)",
                     [] { return std::make_unique<SlackTimeGovernor>(); }});
    specs.push_back({"uniformSlack",
                     "slack spread uniformly over the backlog (extension)",
                     [] { return std::make_unique<UniformSlackGovernor>(); }});
    return specs;
  }();
  return kSpecs;
}

const std::vector<GovernorSpec>& auxiliary_governors() {
  static const std::vector<GovernorSpec> kSpecs = {
      {"oracle",
       "clairvoyant YDS-optimal schedule (lower bound; needs priming)",
       [] { return opt::make_oracle(); }},
  };
  return kSpecs;
}

GovernorFactory governor_factory(const std::string& name) {
  const std::string key = util::to_lower(name);
  for (const auto& spec : standard_governors()) {
    if (util::to_lower(spec.name) == key) return spec.make;
  }
  for (const auto& spec : auxiliary_governors()) {
    if (util::to_lower(spec.name) == key) return spec.make;
  }
  DVS_EXPECT(false, "unknown governor: " + name);
  return {};
}

sim::GovernorPtr make_governor(const std::string& name) {
  return governor_factory(name)();
}

std::vector<std::string> governor_names() {
  std::vector<std::string> names;
  names.reserve(standard_governors().size());
  for (const auto& spec : standard_governors()) names.push_back(spec.name);
  return names;
}

}  // namespace dvs::core
