#include "core/fp.hpp"

#include <algorithm>

#include "sched/fixed_priority.hpp"
#include "util/error.hpp"

namespace dvs::core {

void StaticFpGovernor::on_start(const sim::SimContext& ctx) {
  DVS_EXPECT(ctx.policy() == sim::SchedulingPolicy::kFixedPriority,
             "staticFP requires a fixed-priority simulation");
  // Best-effort degradation: with an overloaded (non-schedulable) set
  // there is no feasible constant speed — run flat out instead of
  // aborting mid-mission.
  alpha_ = sched::fp_schedulable(ctx.task_set())
               ? sched::minimum_constant_speed_fp(ctx.task_set())
               : 1.0;
}

double StaticFpGovernor::select_speed(const sim::Job& /*running*/,
                                      const sim::SimContext& /*ctx*/) {
  return alpha_;
}

void LppsFpGovernor::on_start(const sim::SimContext& ctx) {
  DVS_EXPECT(ctx.policy() == sim::SchedulingPolicy::kFixedPriority,
             "lppsFP requires a fixed-priority simulation");
  DVS_EXPECT(sched::fp_schedulable(ctx.task_set()),
             "task set is not fixed-priority schedulable");
}

double LppsFpGovernor::select_speed(const sim::Job& running,
                                    const sim::SimContext& ctx) {
  if (ctx.active_jobs().size() != 1) return 1.0;
  const Time now = ctx.now();
  const Time horizon =
      std::min(ctx.next_release_after(now), running.abs_deadline);
  const Time window = horizon - now;
  if (window <= kTimeEps) return 1.0;
  return std::clamp(running.remaining_wcet() / window, 1e-9, 1.0);
}

}  // namespace dvs::core
