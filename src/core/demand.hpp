// Shared worst-case processor-demand machinery for governors.
//
// Both the slack-time analysis (lpSEH) and the safety floor inside laEDF
// reason about the same quantity: the cumulative worst-case demand
//
//   demand(t, d) = remaining WCETs of active jobs with deadline <= d
//                + WCETs of future releases in (t, d] with deadline <= d
//
// evaluated at every absolute-deadline checkpoint within a finite analysis
// horizon.  This header centralizes the horizon rules (see
// core/slack_time.hpp for their justification) and the checkpoint
// enumeration so every governor reasons from identical premises.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/governor.hpp"
#include "task/task_set.hpp"

namespace dvs::core {

/// Which demand-sweep backend a slack-analysis governor runs on.  All
/// three produce bit-identical results (pinned by verify modes and the
/// kernel-differential fuzz suite); they differ only in per-decision cost
/// — see the complexity table in docs/ALGORITHMS.md.
///   kKernel       — the incremental SlackKernel job store (the default):
///                   O(1) sweep setup, ~O(1) per checkpoint.
///   kLegacyCached — PR 4's DemandCache cursors: allocation-free, but one
///                   O(n) cursor pass per checkpoint.
///   kLegacyScan   — from-scratch cursor derivation per decision: the
///                   differential-testing reference (allocates).
enum class SweepEngine { kKernel, kLegacyCached, kLegacyScan };

/// Static task-set facts cached once per simulation (compute in on_start).
struct TaskSetStats {
  std::optional<Time> hyperperiod;
  double utilization = 0.0;
  Work wcet_sum = 0.0;
  Time max_deadline = 0.0;
  Time max_period = 0.0;
  /// sum_i C_i * min(D_i, P_i) / P_i.  Task i's future demand in (t, x] is
  /// at most C_i * ((x - t)/P_i + 1 - min(D_i, P_i)/P_i) — nonnegative
  /// for every x >= t — so total demand is at most
  /// U * (x - t) + wcet_sum - dbf_credit, a strictly tighter slop than
  /// wcet_sum alone (for implicit deadlines the slop vanishes).  The
  /// kernel skip-ahead's rate-bound crossover (docs/ALGORITHMS.md) uses
  /// it to keep the materialized window short.
  Work dbf_credit = 0.0;

  [[nodiscard]] static TaskSetStats of(const task::TaskSet& ts);
};

/// One (deadline, work) contribution to the demand sweep.
struct DemandContribution {
  Time deadline = 0.0;
  Work work = 0.0;
};

/// Index of the first job of `task` released strictly after `t` (with the
/// kTimeEps tolerance): the minimal k with release_of(k) > t + kTimeEps.
/// The closed-form division is only a starting guess — it can land one off
/// inside a ±1 ulp window — so the result is corrected by direct
/// comparison.  Every demand path (from-scratch and cached) derives its
/// future-release cursors through this one function, which is what makes
/// the incremental path bit-identical to the oracle (see
/// docs/ALGORITHMS.md, "Cache-invalidation invariants").
[[nodiscard]] std::int64_t first_strict_future_release(const task::Task& task,
                                                       Time t);

/// Per-task future-release cursor of the demand sweep (one per task;
/// `next_deadline` is +inf once past the sweep horizon).
struct TaskCursor {
  Time next_deadline = 0.0;
  Time period = 0.0;
  Time phase = 0.0;
  Time rel_deadline = 0.0;
  std::int64_t k = 0;
  Work work = 0.0;
};

/// Memoizes the per-task checkpoint enumeration between decisions.
///
/// The future-release part of demand(t, d) depends only on the current
/// time t, and simulated time is monotone — so instead of re-deriving
/// every task's next-release index by division at each decision, the
/// cache stores the index from the previous decision and advances it by
/// comparison (usually zero or one step).  Active-job contributions are
/// NOT cached here: they change on release/completion events and are
/// re-read from the engine's active-set scratch, which the engine
/// invalidates exactly on those events.  The cache also owns the cursor
/// scratch vector, so a cached sweep performs no allocation.
///
/// Invariant (asserted by the oracle-equivalence tests): for every task i,
/// the cached index equals first_strict_future_release(task_i, now) —
/// advancing monotonically by comparison and recomputing from scratch
/// agree exactly, because release times are strictly increasing in k and
/// both paths use the same `> t + kTimeEps` predicate.
class DemandCache {
 public:
  /// Forget everything.  Call when a new simulation starts (on_start);
  /// time moving backwards is also detected and handled automatically.
  void invalidate() noexcept { valid_ = false; }

 private:
  friend class DemandSweeper;

  /// Bring next_k_ up to date for time `t` over `ts`.
  void advance_to(const task::TaskSet& ts, Time t);

  std::vector<std::int64_t> next_k_;  ///< per-task strict-future index
  std::vector<TaskCursor> cursors_;   ///< reusable sweep scratch
  Time last_now_ = 0.0;
  bool valid_ = false;
};

/// Lazy, ascending-deadline stream of demand contributions: every active
/// job's remaining budget plus every future release whose deadline falls
/// inside (now, horizon].  Laziness matters — sweeps usually terminate via
/// a sound early-exit long before the horizon, and materializing a
/// 1000-second window per decision would dominate simulation cost.
/// `extra_per_job` is added to each contribution (used to charge
/// speed-switch stalls per job).
class DemandSweeper {
 public:
  /// From-scratch sweep: derives every cursor by division (the oracle
  /// path; allocates its own cursor storage).
  DemandSweeper(const sim::SimContext& ctx, Time horizon,
                Work extra_per_job = 0.0);

  /// Cached sweep: cursor indices memoized in `cache` from the previous
  /// decision and advanced incrementally; cursor storage reused from the
  /// cache, so construction is allocation-free.  Bit-identical to the
  /// from-scratch path (test oracle: tests/test_hotpath_oracle.cpp).
  DemandSweeper(const sim::SimContext& ctx, Time horizon, Work extra_per_job,
                DemandCache& cache);

  /// Advance to the next checkpoint: folds every contribution sharing the
  /// (numerically) same deadline.  Returns false when the window is
  /// exhausted.
  [[nodiscard]] bool next(Time& deadline, Work& work_at_deadline);

 private:
  /// Fill `*cur_` with one cursor per task, task i's first deadline taken
  /// from release index `next_k(i)`.
  template <typename NextK>
  void init_cursors(const sim::SimContext& ctx, NextK next_k);

  /// Smallest pending deadline across active jobs and per-task cursors,
  /// or +infinity when none remain.  Full scan; used once at construction
  /// — afterwards consume() maintains the value in next_peek_, fused into
  /// its advancing pass (same min over the same set, half the scans).
  [[nodiscard]] Time peek() const;
  /// Consume every contribution at `deadline`, update next_peek_, and
  /// return their sum.
  [[nodiscard]] Work consume(Time deadline);

  Time horizon_;
  Work extra_per_job_;
  std::span<const sim::Job* const> active_;  ///< EDF order
  std::size_t active_pos_ = 0;
  Time next_peek_ = 0.0;  ///< smallest pending deadline (maintained)
  std::vector<TaskCursor> own_cursors_;  ///< from-scratch path only
  std::vector<TaskCursor>* cur_ = nullptr;  ///< own_cursors_ or the cache's
};

/// Analysis horizon for the checkpoint sweep.
struct Horizon {
  Time end = 0.0;        ///< absolute time the sweep may stop at
  bool truncated = false;  ///< true when `end` is the cost cap, not a
                           ///< provably sufficient bound — the caller must
                           ///< then close the tail conservatively
};

/// The horizon is the cheapest of the *sound* rules (hyperperiod rule,
/// busy-bound rule; see core/slack_time.hpp), hard-capped at
/// `fallback_horizon_periods * max_period` so pathological hyperperiods
/// (grid-snapped random periods easily exceed 1000 s) cannot blow up the
/// per-decision cost.  When the cap bites, `truncated` is set and sweeps
/// must apply their sound tail closure:
///   for any d' beyond the last checkpoint D,
///   demand(t, d') <= demand(t, D) + U (d' - D) + sum-of-WCETs,
/// i.e. slack can drop at most sum-of-WCETs below slack(D).
/// `backlog` is the remaining WCET of all active jobs; `d0` the deadline
/// the caller must at least reach.
[[nodiscard]] Horizon demand_horizon(const TaskSetStats& stats, Time now,
                                     Work backlog, Time d0,
                                     double fallback_horizon_periods);

/// Sorted (ascending deadline) demand contributions within (now, horizon]:
/// every active job's remaining budget plus every future release whose
/// deadline falls inside the window.  `extra_per_job` is added to each
/// contribution (used to charge speed-switch stalls per job).
[[nodiscard]] std::vector<DemandContribution> demand_contributions(
    const sim::SimContext& ctx, Time horizon, Work extra_per_job = 0.0);

/// Minimum speed floor that keeps every checkpoint feasible under the plan
/// "run at alpha until d0, full speed afterwards":
///   d <= d0:  alpha >= demand(t, d) / (d - t)
///   d >  d0:  alpha >= (demand(t, d) - (d - d0)) / (d0 - t)
/// Any governor may raise its request to this floor to stay hard-safe.
/// With a non-null `cache` the checkpoint enumeration is memoized across
/// decisions (same result, no per-decision allocation).
[[nodiscard]] double demand_speed_floor(const sim::SimContext& ctx,
                                        const TaskSetStats& stats, Time d0,
                                        double fallback_horizon_periods,
                                        DemandCache* cache = nullptr);

class SlackKernel;

/// Same floor, swept through the incremental SlackKernel job store
/// (core/slack_kernel.hpp) instead of per-task cursors: bit-identical
/// result, O(1) sweep setup per decision.  `kernel` must have been reset()
/// for the simulation's task set (governors do this in on_start).
[[nodiscard]] double demand_speed_floor(const sim::SimContext& ctx,
                                        const TaskSetStats& stats, Time d0,
                                        double fallback_horizon_periods,
                                        SlackKernel& kernel);

}  // namespace dvs::core
