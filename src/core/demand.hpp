// Shared worst-case processor-demand machinery for governors.
//
// Both the slack-time analysis (lpSEH) and the safety floor inside laEDF
// reason about the same quantity: the cumulative worst-case demand
//
//   demand(t, d) = remaining WCETs of active jobs with deadline <= d
//                + WCETs of future releases in (t, d] with deadline <= d
//
// evaluated at every absolute-deadline checkpoint within a finite analysis
// horizon.  This header centralizes the horizon rules (see
// core/slack_time.hpp for their justification) and the checkpoint
// enumeration so every governor reasons from identical premises.
#pragma once

#include <optional>
#include <vector>

#include "sim/governor.hpp"
#include "task/task_set.hpp"

namespace dvs::core {

/// Static task-set facts cached once per simulation (compute in on_start).
struct TaskSetStats {
  std::optional<Time> hyperperiod;
  double utilization = 0.0;
  Work wcet_sum = 0.0;
  Time max_deadline = 0.0;
  Time max_period = 0.0;

  [[nodiscard]] static TaskSetStats of(const task::TaskSet& ts);
};

/// One (deadline, work) contribution to the demand sweep.
struct DemandContribution {
  Time deadline = 0.0;
  Work work = 0.0;
};

/// Lazy, ascending-deadline stream of demand contributions: every active
/// job's remaining budget plus every future release whose deadline falls
/// inside (now, horizon].  Laziness matters — sweeps usually terminate via
/// a sound early-exit long before the horizon, and materializing a
/// 1000-second window per decision would dominate simulation cost.
/// `extra_per_job` is added to each contribution (used to charge
/// speed-switch stalls per job).
class DemandSweeper {
 public:
  DemandSweeper(const sim::SimContext& ctx, Time horizon,
                Work extra_per_job = 0.0);

  /// Advance to the next checkpoint: folds every contribution sharing the
  /// (numerically) same deadline.  Returns false when the window is
  /// exhausted.
  [[nodiscard]] bool next(Time& deadline, Work& work_at_deadline);

 private:
  /// Smallest pending deadline across active jobs and per-task cursors,
  /// or +infinity when none remain.
  [[nodiscard]] Time peek() const;
  /// Consume every contribution at `deadline` and return their sum.
  [[nodiscard]] Work consume(Time deadline);

  struct TaskCursor {
    Time next_deadline = 0.0;  ///< +inf once past the horizon
    Time period = 0.0;
    Work work = 0.0;
  };

  Time horizon_;
  Work extra_per_job_;
  std::vector<const sim::Job*> active_;  ///< EDF order
  std::size_t active_pos_ = 0;
  std::vector<TaskCursor> cursors_;
};

/// Analysis horizon for the checkpoint sweep.
struct Horizon {
  Time end = 0.0;        ///< absolute time the sweep may stop at
  bool truncated = false;  ///< true when `end` is the cost cap, not a
                           ///< provably sufficient bound — the caller must
                           ///< then close the tail conservatively
};

/// The horizon is the cheapest of the *sound* rules (hyperperiod rule,
/// busy-bound rule; see core/slack_time.hpp), hard-capped at
/// `fallback_horizon_periods * max_period` so pathological hyperperiods
/// (grid-snapped random periods easily exceed 1000 s) cannot blow up the
/// per-decision cost.  When the cap bites, `truncated` is set and sweeps
/// must apply their sound tail closure:
///   for any d' beyond the last checkpoint D,
///   demand(t, d') <= demand(t, D) + U (d' - D) + sum-of-WCETs,
/// i.e. slack can drop at most sum-of-WCETs below slack(D).
/// `backlog` is the remaining WCET of all active jobs; `d0` the deadline
/// the caller must at least reach.
[[nodiscard]] Horizon demand_horizon(const TaskSetStats& stats, Time now,
                                     Work backlog, Time d0,
                                     double fallback_horizon_periods);

/// Sorted (ascending deadline) demand contributions within (now, horizon]:
/// every active job's remaining budget plus every future release whose
/// deadline falls inside the window.  `extra_per_job` is added to each
/// contribution (used to charge speed-switch stalls per job).
[[nodiscard]] std::vector<DemandContribution> demand_contributions(
    const sim::SimContext& ctx, Time horizon, Work extra_per_job = 0.0);

/// Minimum speed floor that keeps every checkpoint feasible under the plan
/// "run at alpha until d0, full speed afterwards":
///   d <= d0:  alpha >= demand(t, d) / (d - t)
///   d >  d0:  alpha >= (demand(t, d) - (d - d0)) / (d0 - t)
/// Any governor may raise its request to this floor to stay hard-safe.
[[nodiscard]] double demand_speed_floor(const sim::SimContext& ctx,
                                        const TaskSetStats& stats, Time d0,
                                        double fallback_horizon_periods);

}  // namespace dvs::core
