// Fixed-priority DVS governors (the repo's extension family).
//
// The reproduced paper is EDF-only; its companion literature covers fixed
// priorities.  Two safe fixed-priority policies are provided:
//
//  * StaticFpGovernor — the optimal constant speed under deadline-
//    monotonic fixed priorities, derived by binary search over exact
//    response-time analysis (sched/fixed_priority.hpp).  The FP analogue
//    of staticEDF (note: it is generally *higher* than the utilization,
//    because fixed priorities are not utilization-optimal).
//
//  * LppsFpGovernor — Shin & Choi's LPFPS idea: when exactly one job is
//    ready, stretch its *worst-case remaining budget* to min(next task
//    arrival, its deadline).  Safe because the stretched schedule stays
//    inside the worst-case envelope: by the next arrival the job has
//    consumed no more budget than the all-WCET schedule the offline
//    analysis admitted.
//
// Both verify at on_start that the simulation actually runs under fixed
// priorities (and the EDF governors check the converse), so a
// mis-configured experiment fails loudly instead of measuring nonsense.
#pragma once

#include "sim/governor.hpp"

namespace dvs::core {

class StaticFpGovernor final : public sim::Governor {
 public:
  void on_start(const sim::SimContext& ctx) override;
  [[nodiscard]] double select_speed(const sim::Job& running,
                                    const sim::SimContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "staticFP"; }

 private:
  double alpha_ = 1.0;
};

class LppsFpGovernor final : public sim::Governor {
 public:
  void on_start(const sim::SimContext& ctx) override;
  [[nodiscard]] double select_speed(const sim::Job& running,
                                    const sim::SimContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "lppsFP"; }
};

}  // namespace dvs::core
