#include "core/demand.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "core/slack_kernel.hpp"

namespace dvs::core {

TaskSetStats TaskSetStats::of(const task::TaskSet& ts) {
  TaskSetStats s;
  s.hyperperiod = ts.hyperperiod();
  s.utilization = ts.utilization();
  for (const auto& t : ts) {
    s.wcet_sum += t.wcet;
    s.max_deadline = std::max(s.max_deadline, t.deadline);
    s.max_period = std::max(s.max_period, t.period);
    s.dbf_credit += t.wcet * (std::min(t.deadline, t.period) / t.period);
  }
  return s;
}

Horizon demand_horizon(const TaskSetStats& stats, Time now, Work backlog,
                       Time d0, double fallback_horizon_periods) {
  Time sound = std::numeric_limits<double>::infinity();
  if (stats.hyperperiod) {
    sound = now + stats.max_deadline + *stats.hyperperiod;
  }
  if (stats.utilization < 1.0 - 1e-12) {
    sound = std::min(sound,
                     now + (backlog + stats.wcet_sum + stats.max_deadline) /
                               (1.0 - stats.utilization));
  }
  const Time cap = now + fallback_horizon_periods * stats.max_period;
  Horizon h;
  h.truncated = cap < sound;
  h.end = std::max(h.truncated ? cap : sound, d0);
  return h;
}

std::vector<DemandContribution> demand_contributions(
    const sim::SimContext& ctx, Time horizon, Work extra_per_job) {
  std::vector<DemandContribution> contrib;
  DemandSweeper sweeper(ctx, horizon, extra_per_job);
  Time d = 0.0;
  Work w = 0.0;
  while (sweeper.next(d, w)) contrib.push_back({d, w});
  return contrib;
}

std::int64_t first_strict_future_release(const task::Task& task, Time t) {
  // Division-based starting guess; the ceil can land one off either way
  // within a ±1 ulp window, so correct by direct comparison.  Both loops
  // run at most once in practice.
  std::int64_t k = task.first_job_at_or_after(t + 2.0 * kTimeEps);
  while (k > 0 && task.release_of(k - 1) > t + kTimeEps) --k;
  while (task.release_of(k) <= t + kTimeEps) ++k;
  return k;
}

void DemandCache::advance_to(const task::TaskSet& ts, Time t) {
  if (!valid_ || next_k_.size() != ts.size() || t < last_now_) {
    // Cold start (or time moved backwards — test doubles do): derive
    // every index from scratch through the canonical helper.
    next_k_.resize(ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i) {
      next_k_[i] = first_strict_future_release(ts[i], t);
    }
    valid_ = true;
  } else {
    // Warm path: release times are strictly increasing in k, so advancing
    // the previous minimal index by the same `> t + kTimeEps` predicate
    // lands on exactly the index the from-scratch derivation would.
    for (std::size_t i = 0; i < ts.size(); ++i) {
      std::int64_t k = next_k_[i];
      while (ts[i].release_of(k) <= t + kTimeEps) ++k;
      next_k_[i] = k;
    }
  }
  last_now_ = t;
}

template <typename NextK>
void DemandSweeper::init_cursors(const sim::SimContext& ctx, NextK next_k) {
  cur_->clear();
  cur_->reserve(ctx.task_set().size());
  std::size_t i = 0;
  for (const auto& task : ctx.task_set()) {
    TaskCursor c;
    c.k = next_k(i++);
    c.next_deadline = task.deadline_of(c.k);
    c.period = task.period;
    c.phase = task.phase;
    c.rel_deadline = task.deadline;
    c.work = task.wcet;
    if (!time_leq(c.next_deadline, horizon_)) {
      c.next_deadline = std::numeric_limits<double>::infinity();
    }
    cur_->push_back(c);
  }
}

DemandSweeper::DemandSweeper(const sim::SimContext& ctx, Time horizon,
                             Work extra_per_job)
    : horizon_(horizon),
      extra_per_job_(extra_per_job),
      active_(ctx.active_jobs()),  // already in EDF (deadline) order
      cur_(&own_cursors_) {
  const Time t = ctx.now();
  const auto& ts = ctx.task_set();
  init_cursors(ctx, [&](std::size_t i) {
    return first_strict_future_release(ts[i], t);
  });
  next_peek_ = peek();
}

DemandSweeper::DemandSweeper(const sim::SimContext& ctx, Time horizon,
                             Work extra_per_job, DemandCache& cache)
    : horizon_(horizon),
      extra_per_job_(extra_per_job),
      active_(ctx.active_jobs()),
      cur_(&cache.cursors_) {
  cache.advance_to(ctx.task_set(), ctx.now());
  init_cursors(ctx, [&](std::size_t i) { return cache.next_k_[i]; });
  next_peek_ = peek();
}

Time DemandSweeper::peek() const {
  Time best = std::numeric_limits<double>::infinity();
  if (active_pos_ < active_.size()) {
    best = active_[active_pos_]->abs_deadline;
  }
  for (const auto& c : *cur_) best = std::min(best, c.next_deadline);
  return best;
}

Work DemandSweeper::consume(Time deadline) {
  Work sum = 0.0;
  while (active_pos_ < active_.size() &&
         time_leq(active_[active_pos_]->abs_deadline, deadline)) {
    sum += active_[active_pos_]->remaining_wcet() + extra_per_job_;
    ++active_pos_;
  }
  // Advancing every cursor past `deadline` visits exactly the scan peek()
  // would repeat — so fold the min of the advanced deadlines into
  // next_peek_ on the way (bit-identical: same min over the same values).
  Time best = std::numeric_limits<double>::infinity();
  if (active_pos_ < active_.size()) {
    best = active_[active_pos_]->abs_deadline;
  }
  for (auto& c : *cur_) {
    while (time_leq(c.next_deadline, deadline)) {
      sum += c.work + extra_per_job_;
      ++c.k;
      c.next_deadline =
          (c.phase + static_cast<double>(c.k) * c.period) + c.rel_deadline;
      if (!time_leq(c.next_deadline, horizon_)) {
        c.next_deadline = std::numeric_limits<double>::infinity();
        break;
      }
    }
    best = std::min(best, c.next_deadline);
  }
  next_peek_ = best;
  return sum;
}

bool DemandSweeper::next(Time& deadline, Work& work_at_deadline) {
  const Time d = next_peek_;
  if (!time_leq(d, horizon_)) return false;
  deadline = d;
  work_at_deadline = consume(d);
  return true;
}

namespace {

// The floor sweep itself, shared verbatim by every sweeper backend
// (from-scratch cursors, the DemandCache, the SlackKernel) so the
// bit-identity contract between them reduces to their next() streams
// agreeing.  `make_sweeper(horizon_end, backlog)` constructs the backend
// (the kernel seeds its skip-ahead active_total from the backlog sum the
// horizon rule needed anyway).
template <typename MakeSweeper>
double floor_over(const sim::SimContext& ctx, const TaskSetStats& stats,
                  Time d0, double fallback_horizon_periods,
                  MakeSweeper make_sweeper) {
  const Time t = ctx.now();
  const Time window = d0 - t;
  if (window <= kTimeEps) return 1.0;

  Work backlog = 0.0;
  for (const sim::Job* j : ctx.active_jobs()) backlog += j->remaining_wcet();
  const Horizon horizon =
      demand_horizon(stats, t, backlog, d0, fallback_horizon_periods);

  // Upper bound on the requirement any checkpoint beyond `d` can impose
  // (demand grows at most at rate U <= 1 plus one boundary job per task):
  //   required(d') <= (demand(t, d) + sum C - (d - d0)) / window.
  auto tail_bound = [&](Work demand, Time d) {
    return (demand + stats.wcet_sum - (d - d0)) / window;
  };

  double floor = 0.0;
  Work demand = 0.0;
  Time last_d = d0;
  bool exhausted = true;
  auto sweeper = make_sweeper(horizon.end, backlog);
  Time d = 0.0;
  Work at_d = 0.0;
  while (sweeper.next(d, at_d)) {
    demand += at_d;
    last_d = d;
    if (time_leq(d, d0)) {
      if (d - t > kTimeEps) {
        floor = std::max(floor, demand / (d - t));
      } else {
        floor = 1.0;
      }
    } else {
      floor = std::max(floor, (demand - (d - d0)) / window);
      // Sound early exit: no later checkpoint can require more.
      if (tail_bound(demand, d) <= floor) {
        exhausted = false;
        break;
      }
      if constexpr (requires { sweeper.suffix_min_c(); }) {
        // Kernel skip-ahead, mirror image of the slack sweep's
        // (docs/ALGORITHMS.md): upper-bound the requirement any unvisited
        // checkpoint can impose via the unfolded active budgets (gap),
        // the C(j) suffix min (suffix), and — past the rate-bound
        // crossover F* — the U < 1 demand rate alone.  The store must
        // reach F* for the suffix and rate bounds to meet; the sweep
        // extends it once and it slides with t from then on.  When every
        // bound sits below `floor` minus an FP margin, the floor is
        // final.  Gated off for truncated horizons — the truncation
        // closure below could otherwise *raise* the floor past what the
        // skipped sweep would have returned.
        if (!horizon.truncated && sweeper.skip_exact() &&
            stats.utilization < 1.0 - 1e-12) {
          const double margin = 1e-8 + 1e-9 / window;
          const double lim = floor - margin;
          if ((demand + sweeper.active_remaining() - (d - d0)) / window <=
                  lim &&
              (sweeper.active_total() + d0 - sweeper.suffix_min_c()) /
                      window <=
                  lim) {
            const double fstar =
                t + (sweeper.active_total() + stats.wcet_sum -
                     stats.dbf_credit + window * (1.0 - lim)) /
                        (1.0 - stats.utilization);
            if (sweeper.frontier() >= fstar) {
              exhausted = false;
              break;
            }
            (void)sweeper.ensure_frontier(fstar);
          }
        }
      }
    }
    if (floor >= 1.0) return 1.0;
  }
  if (horizon.truncated && exhausted) {
    // The cap cut the sweep short of a provably sufficient horizon:
    // close the tail with the same bound (conservative, never unsafe).
    floor = std::max(floor, tail_bound(demand, std::max(last_d, d0)));
  }
  return std::clamp(floor, 0.0, 1.0);
}

}  // namespace

double demand_speed_floor(const sim::SimContext& ctx,
                          const TaskSetStats& stats, Time d0,
                          double fallback_horizon_periods,
                          DemandCache* cache) {
  if (cache != nullptr) {
    return floor_over(ctx, stats, d0, fallback_horizon_periods,
                      [&](Time horizon_end, Work) {
                        return DemandSweeper(ctx, horizon_end, 0.0, *cache);
                      });
  }
  return floor_over(ctx, stats, d0, fallback_horizon_periods,
                    [&](Time horizon_end, Work) {
                      return DemandSweeper(ctx, horizon_end, 0.0);
                    });
}

double demand_speed_floor(const sim::SimContext& ctx,
                          const TaskSetStats& stats, Time d0,
                          double fallback_horizon_periods,
                          SlackKernel& kernel) {
  return floor_over(ctx, stats, d0, fallback_horizon_periods,
                    [&](Time horizon_end, Work backlog) {
                      return SlackKernel::Sweep(kernel, ctx, horizon_end, 0.0,
                                                backlog);
                    });
}

}  // namespace dvs::core
