#include "core/demand.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

namespace dvs::core {

TaskSetStats TaskSetStats::of(const task::TaskSet& ts) {
  TaskSetStats s;
  s.hyperperiod = ts.hyperperiod();
  s.utilization = ts.utilization();
  for (const auto& t : ts) {
    s.wcet_sum += t.wcet;
    s.max_deadline = std::max(s.max_deadline, t.deadline);
    s.max_period = std::max(s.max_period, t.period);
  }
  return s;
}

Horizon demand_horizon(const TaskSetStats& stats, Time now, Work backlog,
                       Time d0, double fallback_horizon_periods) {
  Time sound = std::numeric_limits<double>::infinity();
  if (stats.hyperperiod) {
    sound = now + stats.max_deadline + *stats.hyperperiod;
  }
  if (stats.utilization < 1.0 - 1e-12) {
    sound = std::min(sound,
                     now + (backlog + stats.wcet_sum + stats.max_deadline) /
                               (1.0 - stats.utilization));
  }
  const Time cap = now + fallback_horizon_periods * stats.max_period;
  Horizon h;
  h.truncated = cap < sound;
  h.end = std::max(h.truncated ? cap : sound, d0);
  return h;
}

std::vector<DemandContribution> demand_contributions(
    const sim::SimContext& ctx, Time horizon, Work extra_per_job) {
  std::vector<DemandContribution> contrib;
  DemandSweeper sweeper(ctx, horizon, extra_per_job);
  Time d = 0.0;
  Work w = 0.0;
  while (sweeper.next(d, w)) contrib.push_back({d, w});
  return contrib;
}

DemandSweeper::DemandSweeper(const sim::SimContext& ctx, Time horizon,
                             Work extra_per_job)
    : horizon_(horizon), extra_per_job_(extra_per_job) {
  const Time t = ctx.now();
  active_ = ctx.active_jobs();  // already in EDF (deadline) order
  cursors_.reserve(ctx.task_set().size());
  for (const auto& task : ctx.task_set()) {
    // First future release strictly after t.
    std::int64_t k = task.first_job_at_or_after(t + 2.0 * kTimeEps);
    if (task.release_of(k) <= t + kTimeEps) ++k;
    TaskCursor c;
    c.next_deadline = task.deadline_of(k);
    c.period = task.period;
    c.work = task.wcet;
    if (!time_leq(c.next_deadline, horizon_)) {
      c.next_deadline = std::numeric_limits<double>::infinity();
    }
    cursors_.push_back(c);
  }
}

Time DemandSweeper::peek() const {
  Time best = std::numeric_limits<double>::infinity();
  if (active_pos_ < active_.size()) {
    best = active_[active_pos_]->abs_deadline;
  }
  for (const auto& c : cursors_) best = std::min(best, c.next_deadline);
  return best;
}

Work DemandSweeper::consume(Time deadline) {
  Work sum = 0.0;
  while (active_pos_ < active_.size() &&
         time_leq(active_[active_pos_]->abs_deadline, deadline)) {
    sum += active_[active_pos_]->remaining_wcet() + extra_per_job_;
    ++active_pos_;
  }
  for (auto& c : cursors_) {
    while (time_leq(c.next_deadline, deadline)) {
      sum += c.work + extra_per_job_;
      c.next_deadline += c.period;
      if (!time_leq(c.next_deadline, horizon_)) {
        c.next_deadline = std::numeric_limits<double>::infinity();
        break;
      }
    }
  }
  return sum;
}

bool DemandSweeper::next(Time& deadline, Work& work_at_deadline) {
  const Time d = peek();
  if (!time_leq(d, horizon_)) return false;
  deadline = d;
  work_at_deadline = consume(d);
  return true;
}

double demand_speed_floor(const sim::SimContext& ctx,
                          const TaskSetStats& stats, Time d0,
                          double fallback_horizon_periods) {
  const Time t = ctx.now();
  const Time window = d0 - t;
  if (window <= kTimeEps) return 1.0;

  Work backlog = 0.0;
  for (const sim::Job* j : ctx.active_jobs()) backlog += j->remaining_wcet();
  const Horizon horizon =
      demand_horizon(stats, t, backlog, d0, fallback_horizon_periods);

  // Upper bound on the requirement any checkpoint beyond `d` can impose
  // (demand grows at most at rate U <= 1 plus one boundary job per task):
  //   required(d') <= (demand(t, d) + sum C - (d - d0)) / window.
  auto tail_bound = [&](Work demand, Time d) {
    return (demand + stats.wcet_sum - (d - d0)) / window;
  };

  double floor = 0.0;
  Work demand = 0.0;
  Time last_d = d0;
  bool exhausted = true;
  DemandSweeper sweeper(ctx, horizon.end);
  Time d = 0.0;
  Work at_d = 0.0;
  while (sweeper.next(d, at_d)) {
    demand += at_d;
    last_d = d;
    if (time_leq(d, d0)) {
      if (d - t > kTimeEps) {
        floor = std::max(floor, demand / (d - t));
      } else {
        floor = 1.0;
      }
    } else {
      floor = std::max(floor, (demand - (d - d0)) / window);
      // Sound early exit: no later checkpoint can require more.
      if (tail_bound(demand, d) <= floor) {
        exhausted = false;
        break;
      }
    }
    if (floor >= 1.0) return 1.0;
  }
  if (horizon.truncated && exhausted) {
    // The cap cut the sweep short of a provably sufficient horizon:
    // close the tail with the same bound (conservative, never unsafe).
    floor = std::max(floor, tail_bound(demand, std::max(last_d, d0)));
  }
  return std::clamp(floor, 0.0, 1.0);
}

}  // namespace dvs::core
