// Critical-speed clamping — the "account for processor idle power"
// extension the reproduced paper's conclusion lists as future work.
//
// With a nonzero idle draw, total energy for a job of work w executed at
// speed alpha over a window is not monotone in alpha:
//
//   E(alpha) = P(alpha) * w / alpha + P_idle * (window - w / alpha)
//
// Below the *critical speed* alpha* = argmin [P(alpha) - P_idle] / alpha,
// running slower costs more total energy than finishing early and idling.
// (For the cubic model with idle fraction i, alpha* solves
// 2 alpha^3 = ... numerically; alpha* grows with i.)
//
// `critical_speed()` computes alpha* for any PowerModel numerically, and
// `CriticalSpeedGovernor` clamps an inner governor's requests from below
// at alpha* — raising a speed is always deadline-safe, so the wrapper
// preserves every hard guarantee of the inner policy.
#pragma once

#include "cpu/power_model.hpp"
#include "sim/governor.hpp"

namespace dvs::core {

/// argmin over alpha in (0, 1] of (busy_power(alpha) - idle_power())/alpha
/// — the speed below which slowing down no longer saves energy.  Ternary
/// search over the (unimodal for all shipped models) objective.
[[nodiscard]] double critical_speed(const cpu::PowerModel& power);

class CriticalSpeedGovernor final : public sim::Governor {
 public:
  CriticalSpeedGovernor(sim::GovernorPtr inner, cpu::PowerModelPtr power);

  void on_start(const sim::SimContext& ctx) override;
  void on_release(const sim::Job& job, const sim::SimContext& ctx) override;
  void on_completion(const sim::Job& job, const sim::SimContext& ctx) override;
  [[nodiscard]] double select_speed(const sim::Job& running,
                                    const sim::SimContext& ctx) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double floor() const noexcept { return floor_; }

 private:
  sim::GovernorPtr inner_;
  cpu::PowerModelPtr power_;
  double floor_ = 0.0;
};

/// Convenience factory.
[[nodiscard]] sim::GovernorPtr critical_speed_clamp(sim::GovernorPtr inner,
                                                    cpu::PowerModelPtr power);

}  // namespace dvs::core
