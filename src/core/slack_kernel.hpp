// SlackKernel — the incremental slack kernel (DESIGN.md §13).
//
// Every slack-analysis governor (lpSEH, laEDF's safety floor,
// uniformSlack) consumes the same stream: the worst-case demand
// contributions inside (t, horizon], ordered by ascending absolute
// deadline.  The legacy DemandSweeper (core/demand.hpp) re-derives that
// stream per decision from one cursor per task and advances all n cursors
// at every checkpoint — O(n) comparisons with data-dependent branches per
// checkpoint, which BENCH_hotpath.json showed is a 10x per-decision
// penalty over the O(1) governors.
//
// The kernel replaces the per-decision rescan with a *persistent*,
// deadline-sorted structure-of-arrays job store:
//
//   deadline_[j] <= deadline_[j+1]          (ascending, ties by task then
//                                            job index)
//   entry j = job k of task i  =>  deadline_[j] = task_i.deadline_of(k),
//                                  release_[j]  = task_i.release_of(k),
//                                  work_[j]     = task_i.wcet
//
// The store is a pure function of the static task set, so simulated
// events never rewrite it.  What changes over time is *membership*: a job
// contributes to future demand at time t iff it has not been released yet
// (release > t + kTimeEps) — the identical predicate the legacy path
// feeds through first_strict_future_release().  Releases are monotone in
// time, so membership only ever flips future -> released, and the kernel
// tracks the flip with a single monotone start cursor plus a per-entry
// release comparison inside the sweep window.  A release event therefore
// costs O(1) amortized (advance the start cursor past it) and a
// completion event costs nothing at all — the active-job side of demand
// is read from the engine's EDF-ordered scratch exactly like the legacy
// path.  Jobs shed by the (m,k) degradation controller are never
// released, never active, and fail the membership predicate from their
// release instant on — skipped demand vanishes without any kernel hook.
//
// The store is materialized lazily: entries exist only up to mat_end_,
// and a sweep that probes past it extends the store by at least one
// max-period chunk (amortized O(log) vector growths per simulation, none
// in steady state — tests/test_alloc_regression.cpp).
//
// Bit-identity contract: a kernel sweep visits exactly the checkpoints
// the legacy DemandSweeper visits, with bit-equal deadline values (both
// sides regenerate them as Task::deadline_of(k)) and folds contributions
// in the identical order — active jobs in EDF order first, then future
// releases in task-index order (ties inside one kTimeEps checkpoint
// group).  The oracle tests and the kernel-differential fuzz suite
// (tests/test_slack_kernel.cpp) assert SimResult equality to the ulp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "sim/governor.hpp"
#include "task/task_set.hpp"
#include "util/time.hpp"

namespace dvs::core {

/// Lazy "suffix add / suffix min" segment tree over the per-entry keys
///
///   C(j) = deadline_j - G(j),   G(j) = sum of still-future work over
///                                      entries 0..j (inclusive)
///
/// C(j) - t - A_total is a sound lower bound on the slack any sweep can
/// observe at checkpoint j (every accumulated-demand term cancels; see
/// docs/ALGORITHMS.md for the derivation), so a single suffix-min query
/// lets a sweep prove "no later checkpoint can undercut the running
/// minimum" and stop — the skip-ahead that makes the kernel's amortized
/// per-decision cost independent of the analysis window.  A release
/// event removes the job's work from every later G, i.e. adds +w to the
/// C suffix: one O(log n) range update per event.
class SuffMinTree {
 public:
  /// Rebuild from scratch over `values` (reuses storage).
  void assign(const std::vector<double>& values);
  /// True iff append(values) fits without growing the leaf capacity.
  [[nodiscard]] bool can_append(std::size_t count) const noexcept {
    return n_ + count <= cap_;
  }
  /// Append `values` as new trailing leaves without a full rebuild.
  /// Suffix adds issued before an entry existed must not apply to it, but
  /// pending lazies are range-wide and may already cover the unoccupied
  /// slots — so each new leaf is written compensated by the sum of its
  /// ancestors' lazies, and only the ancestors of the appended suffix are
  /// recomputed — O(count · log cap).  Requires can_append().
  void append(const std::vector<double>& values);
  /// values[j] += v for all j >= i.
  void suffix_add(std::size_t i, double v);
  /// min over values[j], j >= i (+inf when the range is empty).
  [[nodiscard]] double suffix_min(std::size_t i) const;
  /// Append the current effective values to `out` (for rebuilds).
  void flatten(std::vector<double>& out) const;
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

 private:
  void flatten_node(std::size_t node, std::size_t lo, std::size_t hi,
                    double acc, std::vector<double>& out) const;

  std::size_t n_ = 0;
  std::size_t cap_ = 1;           ///< leaf capacity, power of two
  std::vector<double> minv_;      ///< effective subtree min (2 * cap_)
  std::vector<double> lazy_;      ///< pending add for the children (cap_)
};

class SlackKernel {
 public:
  /// Bind to a task set at simulation start (call from on_start).  Drops
  /// all previous state; entries materialize lazily from the first job of
  /// each task whose deadline lies beyond `now`.
  void reset(const task::TaskSet& ts, Time now);

  /// Number of materialized timeline entries (tests/benchmarks).
  [[nodiscard]] std::size_t materialized() const noexcept {
    return deadline_.size();
  }

  /// One per-decision pass over the demand checkpoints, mirroring
  /// DemandSweeper's interface: next() yields ascending checkpoint
  /// deadlines with the folded contribution at each (active jobs'
  /// remaining budgets plus future-release WCETs, `extra_per_job` charged
  /// per contribution).  Construction is allocation-free and O(1): no
  /// per-task cursor setup.
  ///
  /// next() is defined here so the per-checkpoint fast path inlines into
  /// the governor sweep loops — with ~40 checkpoints per decision at high
  /// utilization, an out-of-line call per checkpoint is itself a multiple
  /// of the target decision budget.  The fast path folds a whole
  /// checkpoint tie group inline (period-grid workloads tie constantly):
  /// entries materialized by one extend() batch are stored in
  /// (deadline, task-index, job-index) order, which IS the legacy fold
  /// order, so the run can be summed as stored.  Everything else —
  /// pending active-job folds, cross-batch tie disorder, lazy extension,
  /// the horizon edge, sweep end — takes the out-of-line fallback.
  class Sweep {
   public:
    /// `active_total` is the sum of remaining_wcet() over the active jobs
    /// — every caller has just computed it for demand_horizon(), so the
    /// ctor takes it instead of re-chasing the Job pointers.  It seeds the
    /// skip-ahead bounds only (active_total() / active_remaining()), which
    /// are gated on skip_exact(), so an extra_per_job surcharge never
    /// reaches them.
    Sweep(SlackKernel& kernel, const sim::SimContext& ctx, Time horizon,
          Work extra_per_job, Work active_total);

    /// Advance to the next checkpoint; false when the window is done.
    [[nodiscard]] bool next(Time& deadline, Work& work_at_deadline) {
      const Time* const dls = k_.deadline_.data();
      const Time* const rel = k_.release_.data();
      const std::size_t n = k_.deadline_.size();
      std::size_t p = pos_;
      for (;;) {
        if (p >= n) {  // frontier (or store exhausted): may need extend()
          pos_ = p;
          return next_fallback(deadline, work_at_deadline);
        }
        if (rel[p] > strict_after_) break;  // future entry: a checkpoint
        ++p;  // released/shed entry: contributes nothing, skip
      }
      // The checkpoint is the smaller of the next future-entry deadline
      // and the next active-job deadline (same doubles the legacy peek
      // takes its min over).
      Time d = dls[p];
      if (active_dl_ < d) d = active_dl_;
      // Horizon edge and frontier go out of line: d <= horizon_
      // guarantees every tie member within d + kTimeEps also passes
      // time_leq(member, horizon_), so no per-member horizon check is
      // needed below; mat_end_ > d + 2*kTimeEps guarantees no
      // unmaterialized entry can join this group (every unstored deadline
      // is > mat_end_, so the comparison is exact).  The edge case d in
      // (horizon_, horizon_ + kTimeEps] and the sweep end are both
      // detected by the fallback's time_leq.
      if (d > horizon_ || k_.mat_end_ <= d + 2.0 * kTimeEps) {
        pos_ = p;
        return next_fallback(deadline, work_at_deadline);
      }
      // Fold order is part of the bit-identity contract: active jobs in
      // EDF span order first, then future releases in (task-index,
      // job-index) order.
      const std::size_t active_entry = active_pos_;
      const Work rem_entry = rem_act_;
      Work sum = 0.0;
      while (active_dl_ <= d + kTimeEps) {
        const Work c = active_[active_pos_]->remaining_wcet() + extra_per_job_;
        sum += c;
        rem_act_ -= c;
        ++active_pos_;
        active_dl_ = active_pos_ < active_.size()
                         ? active_[active_pos_]->abs_deadline
                         : std::numeric_limits<double>::infinity();
      }
      // Future members of the group: the contiguous run within kTimeEps
      // of d (empty when d came from an active job alone).  Released/shed
      // entries inside the run contribute nothing.  The store is sorted
      // by raw deadline doubles, but the legacy fold order within a tie
      // group is (task-index, job-index) — and FP-near ties (3*T vs the
      // literal 3T, one ulp apart) make the two orders disagree all the
      // time on period-grid workloads, so gather the members first and
      // re-sort the (rare-in-size, common-in-kind) disordered group on a
      // stack buffer before summing.
      const Time tie_hi = d + kTimeEps;
      constexpr std::size_t kMaxGroup = 16;
      std::uint32_t buf[kMaxGroup];
      std::size_t m = 0;
      bool ordered = true;
      std::uint64_t prev_key = 0;
      const std::uint64_t* const keys = k_.okey_.data();
      std::size_t j = p;
      for (; j < n && dls[j] <= tie_hi; ++j) {
        if (rel[j] > strict_after_) {
          if (m == kMaxGroup) {  // oversized group: undo, go out of line
            active_pos_ = active_entry;
            rem_act_ = rem_entry;
            refresh_active_deadline();
            pos_ = p;
            return next_fallback(deadline, work_at_deadline);
          }
          const std::uint64_t kj = keys[j];
          ordered &= kj >= prev_key;
          prev_key = kj;
          buf[m++] = static_cast<std::uint32_t>(j);
        }
      }
      if (!ordered) {  // insertion sort: groups are at most a few entries
        for (std::size_t a = 1; a < m; ++a) {
          const std::uint32_t v = buf[a];
          const std::uint64_t vk = keys[v];
          std::size_t b = a;
          while (b > 0 && keys[buf[b - 1]] > vk) {
            buf[b] = buf[b - 1];
            --b;
          }
          buf[b] = v;
        }
      }
      for (std::size_t i = 0; i < m; ++i) {
        sum += k_.work_[buf[i]] + extra_per_job_;
      }
      pos_ = j;
      deadline = d;
      work_at_deadline = sum;
      return true;
    }

    // --- Skip-ahead support (sound early exit; see docs/ALGORITHMS.md).
    // A caller that has already observed a running extremum can combine
    // these O(1)/O(log n) bounds to prove that no not-yet-visited
    // checkpoint can change it, and stop the sweep early.  All bounds are
    // valid only when extra_per_job == 0 (the C(j) keys account for bare
    // WCETs) — callers must gate on skip_exact().

    /// True iff the per-contribution surcharge is zero, i.e. the C(j)
    /// bounds below exactly cover every folded term.
    [[nodiscard]] bool skip_exact() const noexcept {
      return extra_per_job_ == 0.0;
    }
    /// Sum of remaining_wcet() over ALL active jobs, taken at sweep
    /// construction.
    [[nodiscard]] Work active_total() const noexcept { return act_total_; }
    /// Portion of active_total() not yet folded into a checkpoint.
    [[nodiscard]] Work active_remaining() const noexcept { return rem_act_; }
    /// Materialization frontier: every job with deadline <= frontier() is
    /// in the store (and hence covered by suffix_min_c()).
    [[nodiscard]] Time frontier() const noexcept { return k_.mat_end_; }
    /// Total still-future work over the materialized store.
    [[nodiscard]] Work future_work_total() const noexcept {
      return k_.future_work_;
    }
    /// min over the unvisited entries j >= pos of C(j) = deadline_j - G(j)
    /// (+inf when the sweep has passed the last stored entry).  Every
    /// unvisited checkpoint d at or past an unvisited store entry has
    /// slack(d) >= suffix_min_c() - t - active_total() up to FP rounding
    /// (callers add a margin); active-only checkpoints before the next
    /// store entry are the gap bound's job (active_remaining()).
    [[nodiscard]] double suffix_min_c() const {
      return pos_ < k_.ctree_.size()
                 ? k_.ctree_.suffix_min(pos_)
                 : std::numeric_limits<double>::infinity();
    }
    /// Materialize the store through `target` so the suffix bound covers
    /// everything up to the caller's rate-bound crossover point.  Refuses
    /// pathological jumps (a U -> 1 crossover can sit arbitrarily far
    /// out): targets beyond 64 max-period chunks past now — the same
    /// notion of "sane window" as the demand sweep's fallback horizon —
    /// are left alone.  Returns frontier() >= target.
    bool ensure_frontier(Time target) {
      if (k_.mat_end_ >= target) return true;
      const Time cap = k_.last_now_ + 64.0 * k_.chunk_;
      if (target > cap) return false;
      // Overshoot: the crossover point slides forward with t, so land
      // the frontier well past it and pay the O(n) extend rebuild once
      // per many chunks of simulated time instead of once per chunk.
      k_.extend(std::min(target + 16.0 * k_.chunk_, cap));
      return true;
    }

   private:
    /// The general case, out of line (slack_kernel.cpp): extends the
    /// store, folds active jobs and kTimeEps tie groups in the legacy
    /// order, detects the end of the window.
    [[nodiscard]] bool next_fallback(Time& deadline, Work& work_at_deadline);

    /// Memoize the pending active deadline so the fast path branches on a
    /// member instead of chasing the Job pointer every checkpoint.
    void refresh_active_deadline() noexcept {
      active_dl_ = active_pos_ < active_.size()
                       ? active_[active_pos_]->abs_deadline
                       : std::numeric_limits<double>::infinity();
    }

    SlackKernel& k_;
    std::span<const sim::Job* const> active_;  ///< EDF order
    std::size_t active_pos_ = 0;
    Time active_dl_ = 0.0;  ///< active_[active_pos_] deadline or +inf
    std::size_t pos_;       ///< next candidate entry in the job store
    Time strict_after_;     ///< t + kTimeEps: future iff release > this
    Time horizon_;
    Work extra_per_job_;
    Work act_total_ = 0.0;  ///< sum of active remaining budgets at start
    Work rem_act_ = 0.0;    ///< act_total_ minus folded active budgets
  };

 private:
  friend class Sweep;

  /// Packed legacy fold-order key: (task-index, job-index) lexicographic
  /// order as one unsigned compare.  Job indices are biased so any
  /// negative k (phases can put the first strictly-future job below
  /// zero on backwards-driven test clocks) still orders correctly; 2^39
  /// jobs per task is unreachable within any simulated window.
  [[nodiscard]] static constexpr std::uint64_t order_key(
      std::uint32_t tindex, std::int64_t k) noexcept {
    return (static_cast<std::uint64_t>(tindex) << 40) |
           (static_cast<std::uint64_t>(k + (std::int64_t{1} << 39)) &
            ((std::uint64_t{1} << 40) - 1));
  }

  /// Materialize the job store through at least `need` (plus margin), one
  /// max-period chunk minimum, keeping the deadline sort invariant.
  void extend(Time need);

  /// Monotonically skip the already-released prefix for time `t`,
  /// applying the pending release events (suffix adds to the C(j) tree)
  /// first so the tree never counts a released job as future work.
  void advance_start(Time t);

  const task::TaskSet* ts_ = nullptr;
  // Deadline-sorted structure-of-arrays job store.
  std::vector<Time> deadline_;
  std::vector<Time> release_;
  std::vector<Work> work_;
  std::vector<std::uint64_t> okey_;    ///< order_key() per entry
  std::vector<std::int64_t> mat_k_;    ///< per task: next job to materialize
  std::vector<std::uint32_t> group_;   ///< checkpoint tie-group scratch
  std::vector<Time> head_dl_;          ///< extend()'s k-way merge heads
  // Skip-ahead state: the C(j) keys live in the lazy tree, the per-task
  // pending lists schedule the release-event suffix updates (a task's
  // entries release in job order, so each list is drain-sorted by
  // construction), future_work_ tracks G over the whole store (= G(last
  // entry)).
  SuffMinTree ctree_;
  std::vector<double> cvals_;   ///< full-rebuild scratch for ctree_
  std::vector<double> cbatch_;  ///< extend()'s per-batch C(j) scratch
  std::vector<std::vector<std::uint32_t>> pending_;  ///< per task: indices
                                                     ///< of unapplied
                                                     ///< future entries
  std::vector<std::size_t> pend_pos_;  ///< per task: drain cursor
  Work future_work_ = 0.0;  ///< total still-future work in the store
  /// Earliest unapplied pending release, or +inf: advance_start() skips
  /// the per-task drain scan entirely until time actually crosses it.
  Time next_due_ = std::numeric_limits<double>::infinity();
  Time mat_end_ = 0.0;   ///< every job with deadline <= mat_end_ is stored
  Time chunk_ = 0.0;     ///< minimum extension span (max period)
  std::size_t start_ = 0;  ///< entries before start_ are released forever
  Time last_now_ = 0.0;    ///< monotonicity guard for start_
};

}  // namespace dvs::core
