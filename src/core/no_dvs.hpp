// The no-DVS baseline: always run at maximum speed.
//
// Every experiment normalizes energy against this governor, exactly as the
// papers of the era report "normalized energy consumption".
#pragma once

#include "sim/governor.hpp"

namespace dvs::core {

class NoDvsGovernor final : public sim::Governor {
 public:
  [[nodiscard]] double select_speed(const sim::Job& running,
                                    const sim::SimContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "noDVS"; }
};

}  // namespace dvs::core
