#include "core/no_dvs.hpp"

namespace dvs::core {

double NoDvsGovernor::select_speed(const sim::Job& /*running*/,
                                   const sim::SimContext& /*ctx*/) {
  return 1.0;
}

}  // namespace dvs::core
