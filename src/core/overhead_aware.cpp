#include "core/overhead_aware.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dvs::core {

OverheadAwareGovernor::OverheadAwareGovernor(sim::GovernorPtr inner,
                                             cpu::Processor processor)
    : inner_(std::move(inner)), proc_(std::move(processor)) {
  DVS_EXPECT(inner_ != nullptr, "overhead wrapper needs an inner governor");
}

void OverheadAwareGovernor::on_start(const sim::SimContext& ctx) {
  inner_->on_start(ctx);
  vetoes_ = 0;
}

void OverheadAwareGovernor::on_release(const sim::Job& job,
                                       const sim::SimContext& ctx) {
  inner_->on_release(job, ctx);
}

void OverheadAwareGovernor::on_completion(const sim::Job& job,
                                          const sim::SimContext& ctx) {
  inner_->on_completion(job, ctx);
}

double OverheadAwareGovernor::select_speed(const sim::Job& running,
                                           const sim::SimContext& ctx) {
  const double a_cur = ctx.current_speed();
  double a_req = std::clamp(inner_->select_speed(running, ctx), 1e-9, 1.0);
  const Work rem = running.remaining_wcet();
  if (rem <= kTimeEps) return a_cur;

  const double a_req_q = proc_.scale.quantize_up(a_req);
  const double a_cur_q = proc_.scale.quantize_up(a_cur);
  if (std::fabs(a_req_q - a_cur_q) <= 1e-9) return a_cur_q;  // no change

  const Time t_sw = proc_.transition.switch_time(a_cur_q, a_req_q);
  const double budget = rem / a_req;  // time the inner governor proved safe

  if (a_req_q > a_cur_q) {
    // Must speed up (deadline pressure): pay one stall out of the budget.
    const Time usable = budget - t_sw;
    if (usable <= rem) return 1.0;  // not even full speed fits; best effort
    return std::clamp(rem / usable, a_req, 1.0);
  }

  // Slowdown opportunity: reserve two stalls (down now, possibly up later).
  const Time usable = budget - 2.0 * t_sw;
  if (usable <= rem) {
    ++vetoes_;  // stretching would not survive the stalls
    return a_cur_q;
  }
  double a_new = rem / usable;
  a_new = std::max(a_new, a_req);  // never slower than the proven request
  const double a_new_q = proc_.scale.quantize_up(a_new);
  if (a_new_q >= a_cur_q - 1e-9) {
    ++vetoes_;  // quantization ate the gain
    return a_cur_q;
  }

  // Energy worthiness at quantized speeds: run `rem` at the new speed plus
  // two transitions versus staying put.
  const auto& pm = *proc_.power;
  const double e_switch = proc_.transition.switch_energy(pm, a_cur_q, a_new_q) +
                          proc_.transition.switch_energy(pm, a_new_q, a_cur_q);
  const double e_new = pm.busy_power(a_new_q) * (rem / a_new_q) + e_switch;
  const double e_stay = pm.busy_power(a_cur_q) * (rem / a_cur_q);
  if (e_new >= e_stay) {
    ++vetoes_;
    return a_cur_q;
  }
  return a_new;
}

std::string OverheadAwareGovernor::name() const {
  return inner_->name() + "+oh";
}

sim::GovernorPtr overhead_aware(sim::GovernorPtr inner,
                                const cpu::Processor& processor) {
  return std::make_unique<OverheadAwareGovernor>(std::move(inner), processor);
}

}  // namespace dvs::core
