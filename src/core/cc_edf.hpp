// Cycle-conserving EDF (Pillai & Shin, SOSP 2001).
//
// Each task contributes a utilization share: its worst-case share
// wcet / deadline while a job of it is pending, and its *actual* share
// actual / deadline between the completion of a job and the release of the
// next.  The processor runs at the sum of the shares.  Early completions
// therefore lower the speed until the task is re-released at its worst
// case — cycles that the WCET reserved but the job did not use are
// "conserved".
//
// The original formulation uses periods (implicit deadlines); this
// implementation divides by min(deadline, period), which coincides for
// implicit deadlines and is conservative (denser, hence faster) for
// constrained ones.
#pragma once

#include <vector>

#include "sim/governor.hpp"

namespace dvs::core {

class CcEdfGovernor final : public sim::Governor {
 public:
  void on_start(const sim::SimContext& ctx) override;
  void on_release(const sim::Job& job, const sim::SimContext& ctx) override;
  void on_completion(const sim::Job& job, const sim::SimContext& ctx) override;
  [[nodiscard]] double select_speed(const sim::Job& running,
                                    const sim::SimContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "ccEDF"; }

 private:
  std::vector<double> share_;  ///< current utilization share per task
  double total_ = 0.0;
};

}  // namespace dvs::core
