// lppsEDF — low-power priority-based scheduling for EDF
// (after Shin, Choi & Sakurai, "Power-conscious fixed priority scheduling",
// adapted to EDF in the DVS-comparison literature).
//
// The scheme exploits only the cheapest-to-detect slack source: when
// exactly one job is ready and no other job arrives before it could
// finish, the job is stretched to min(next task arrival, its deadline).
// With more than one ready job it falls back to full speed.  Simple,
// provably safe, and the weakest of the dynamic baselines — a useful
// lower anchor for the comparison figures.
#pragma once

#include "sim/governor.hpp"

namespace dvs::core {

class LppsEdfGovernor final : public sim::Governor {
 public:
  [[nodiscard]] double select_speed(const sim::Job& running,
                                    const sim::SimContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "lppsEDF"; }
};

}  // namespace dvs::core
