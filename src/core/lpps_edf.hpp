// lppsEDF — low-power priority-based scheduling for EDF
// (after Shin, Choi & Sakurai, "Power-conscious fixed priority scheduling",
// adapted to EDF in the DVS-comparison literature).
//
// The scheme exploits only the cheapest-to-detect slack source: when
// exactly one job is ready and no other job arrives before it could
// finish, the job is stretched to min(next task arrival, its deadline).
// With more than one ready job it falls back to full speed.  Simple,
// provably safe, and the weakest of the dynamic baselines — a useful
// lower anchor for the comparison figures.
#pragma once

#include "sim/governor.hpp"

namespace dvs::core {

class LppsEdfGovernor final : public sim::Governor {
 public:
  [[nodiscard]] double select_speed(const sim::Job& running,
                                    const sim::SimContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "lppsEDF"; }

  /// Audit hook: the lone-job stretch window minus the remaining budget;
  /// 0 whenever the scheme detects no slack (multiple ready jobs).  The
  /// audit therefore shows exactly how much slack the cheap detector
  /// misses — the reason it anchors the comparison from below.
  [[nodiscard]] Time last_slack_estimate() const override {
    return last_slack_;
  }

 private:
  Time last_slack_ = 0.0;
};

}  // namespace dvs::core
