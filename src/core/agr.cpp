#include "core/agr.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace dvs::core {

AgrGovernor::AgrGovernor(double aggressiveness)
    : aggressiveness_(aggressiveness) {
  DVS_EXPECT(aggressiveness >= 0.0 && aggressiveness <= 1.0,
             "aggressiveness must be in [0, 1]");
}

void AgrGovernor::on_start(const sim::SimContext& ctx) {
  dra_.on_start(ctx);
}

void AgrGovernor::on_release(const sim::Job& job, const sim::SimContext& ctx) {
  dra_.on_release(job, ctx);
}

void AgrGovernor::on_completion(const sim::Job& job,
                                const sim::SimContext& ctx) {
  dra_.on_completion(job, ctx);
}

double AgrGovernor::select_speed(const sim::Job& running,
                                 const sim::SimContext& ctx) {
  const Time budget = dra_.reclaim_budget(running, ctx);
  const Work rem = running.remaining_wcet();
  // The *proven* slack is the DRA core's reclaimed budget beyond the
  // remaining work; the speculative discount below the DRA speed is a bet
  // on future early completions, not a slack estimate, so it is excluded
  // (an implied-stretch reading of the speculative alpha would report
  // astronomical pseudo-slack whenever the bet drives alpha toward the
  // 1e-9 floor).
  last_slack_ = rem > 0.0 ? std::max(0.0, budget - rem)
                          : std::numeric_limits<Time>::quiet_NaN();
  return decide(running, ctx, budget);
}

double AgrGovernor::decide(const sim::Job& running,
                           const sim::SimContext& ctx, Time budget) {
  const Work rem = running.remaining_wcet();
  if (budget <= kTimeEps || rem <= 0.0) return 1.0;
  const double alpha_dra = std::clamp(rem / budget, 1e-9, 1.0);
  if (aggressiveness_ <= 0.0) return alpha_dra;

  const Time now = ctx.now();
  const Time delta =
      std::min(ctx.next_release_after(now), now + budget) - now;
  if (delta <= kTimeEps) return alpha_dra;

  // Slowest recoverable speed inside the speculation window (can be
  // negative when the window is small relative to the budget — then any
  // speed recovers and the hardware floor applies).
  const double alpha_floor =
      std::max((rem - (budget - delta)) / delta, 1e-9);
  if (alpha_floor >= alpha_dra) return alpha_dra;
  return alpha_dra + (alpha_floor - alpha_dra) * aggressiveness_;
}

}  // namespace dvs::core
