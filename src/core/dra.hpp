// DRA — Dynamic Reclaiming Algorithm
// (Aydin, Melhem, Mossé, Mejía-Alvarez, RTSS 2001).
//
// DRA shadows the *canonical* schedule: the EDF schedule in which every
// job presents its full WCET and the processor runs at the constant
// optimal speed eta (the minimum feasible static speed).  The shadow is
// maintained as the "alpha queue": one entry per released job holding the
// execution *time* the canonical schedule still owes that job, consumed
// earliest-deadline-first as simulated time advances.
//
// When the real schedule dispatches job J, any earlier-deadline entries
// that still hold time belong to jobs the real schedule has already
// finished (EDF would otherwise be running them).  That leftover canonical
// time is exactly the earliness of the real schedule, and J may use it in
// addition to its own canonical allotment:
//
//     speed = remaining_wcet(J) / (own allotment + earliness)
//
// Aydin et al. prove the resulting schedule never misses a deadline when
// the task set is feasible at speed eta.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/governor.hpp"

namespace dvs::core {

class DraGovernor final : public sim::Governor {
 public:
  void on_start(const sim::SimContext& ctx) override;
  void on_release(const sim::Job& job, const sim::SimContext& ctx) override;
  void on_completion(const sim::Job& job, const sim::SimContext& ctx) override;
  [[nodiscard]] double select_speed(const sim::Job& running,
                                    const sim::SimContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "DRA"; }

  /// Nominal (canonical) speed; exposed for tests.
  [[nodiscard]] double eta() const noexcept { return eta_; }

  /// Audit hook: the stretch beyond the remaining budget the last
  /// reclaim allowed, max(0, budget - rem).
  [[nodiscard]] Time last_slack_estimate() const override {
    return last_slack_;
  }

  /// The time budget available to `running` right now: its own canonical
  /// allotment plus the earliness of completed earlier-deadline jobs.
  /// Advances the alpha queue to ctx.now().  Exposed for the AGR
  /// extension and for tests.
  [[nodiscard]] Time reclaim_budget(const sim::Job& running,
                                    const sim::SimContext& ctx);

 private:
  struct Entry {
    Time deadline = 0.0;
    std::int32_t task_id = 0;
    std::int64_t seq = 0;
    Time remaining = 0.0;  ///< canonical execution time still owed
    bool real_completed = false;
  };

  /// Strict ordering identical to the simulator's EDF tie-break.
  [[nodiscard]] static bool before(const Entry& a, const Entry& b) noexcept;

  /// Consume canonical execution time up to `t`.
  void advance(Time t);

  std::deque<Entry> queue_;  ///< sorted by `before`
  double eta_ = 1.0;
  Time last_advance_ = 0.0;
  Time last_slack_ = 0.0;
};

}  // namespace dvs::core
