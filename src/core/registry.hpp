// Governor registry: name -> factory, for benches, examples and tests.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/governor.hpp"

namespace dvs::core {

using GovernorFactory = std::function<sim::GovernorPtr()>;

struct GovernorSpec {
  std::string name;         ///< registry key, e.g. "lpSEH"
  std::string description;  ///< one-line summary for --help style output
  GovernorFactory make;
};

/// All built-in governors in canonical report order:
/// noDVS, staticEDF, lppsEDF, ccEDF, laEDF, DRA, lpSEH-h, lpSEH.
[[nodiscard]] const std::vector<GovernorSpec>& standard_governors();

/// Auxiliary governors that are resolvable by name but excluded from the
/// standard roster: currently only "oracle", the clairvoyant YDS-optimal
/// schedule (opt/oracle.hpp).  Kept out of standard_governors() because
/// it must be primed with the concrete case before simulation — the exp
/// layer does that via ExperimentConfig::oracle — and because default
/// sweeps compare ONLINE policies.
[[nodiscard]] const std::vector<GovernorSpec>& auxiliary_governors();

/// Factory for one governor by (case-insensitive) name — standard first,
/// then auxiliary; throws ContractError for unknown names.
[[nodiscard]] GovernorFactory governor_factory(const std::string& name);

/// Fresh instance by name.
[[nodiscard]] sim::GovernorPtr make_governor(const std::string& name);

/// Registry keys in canonical order.
[[nodiscard]] std::vector<std::string> governor_names();

}  // namespace dvs::core
