// Overhead-aware decorator for any governor.
//
// Real processors stall for t_switch during a voltage change and dissipate
// transition energy.  This wrapper applies the "pessimistic judgment"
// policy of the DATE-era literature (Mochocki/Hu/Quan; also described in
// follow-ups to the reproduced paper):
//
//   * time safety — the inner governor's speed request implies a time
//     budget rem / alpha_req.  Before slowing down, the budget is shrunk
//     by 2 * t_switch (the switch now plus a possible emergency switch
//     back up); before speeding up, by 1 * t_switch.  The corrected speed
//     is re-derived from the shrunk budget, so every stall the decision
//     can cause is already paid for inside slack the inner governor
//     proved.
//   * energy worthiness — a slowdown is vetoed when the predicted saving
//     (at quantized speeds) does not exceed the two transition energies it
//     may cost.
//
// The wrapper needs the processor description to price transitions; pass
// the same Processor the simulation runs on.
#pragma once

#include <cstdint>

#include "cpu/processors.hpp"
#include "sim/governor.hpp"

namespace dvs::core {

class OverheadAwareGovernor final : public sim::Governor {
 public:
  OverheadAwareGovernor(sim::GovernorPtr inner, cpu::Processor processor);

  void on_start(const sim::SimContext& ctx) override;
  void on_release(const sim::Job& job, const sim::SimContext& ctx) override;
  void on_completion(const sim::Job& job, const sim::SimContext& ctx) override;
  [[nodiscard]] double select_speed(const sim::Job& running,
                                    const sim::SimContext& ctx) override;
  [[nodiscard]] std::string name() const override;

  /// Number of slowdown requests vetoed on energy grounds (tests/reports).
  [[nodiscard]] std::int64_t vetoes() const noexcept { return vetoes_; }

  /// Audit hook: forwards the inner analysis' estimate.  A veto or
  /// overhead correction changes the chosen speed, not the slack the
  /// analysis proved, so the inner figure stays the meaningful one.
  [[nodiscard]] Time last_slack_estimate() const override {
    return inner_->last_slack_estimate();
  }

 private:
  sim::GovernorPtr inner_;
  cpu::Processor proc_;
  std::int64_t vetoes_ = 0;
};

/// Convenience factory.
[[nodiscard]] sim::GovernorPtr overhead_aware(sim::GovernorPtr inner,
                                              const cpu::Processor& processor);

}  // namespace dvs::core
