#include "core/cc_edf.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dvs::core {

void CcEdfGovernor::on_start(const sim::SimContext& ctx) {
  DVS_EXPECT(ctx.policy() == sim::SchedulingPolicy::kEdf,
             "ccEDF's safety argument requires EDF dispatching");
  const auto& ts = ctx.task_set();
  share_.assign(ts.size(), 0.0);
  total_ = 0.0;
  for (const auto& t : ts) {
    // Until the first release the task reserves its worst-case share: the
    // conservative choice for nonzero phases.
    share_[static_cast<std::size_t>(t.id)] = t.wcet / t.deadline;
    total_ += share_[static_cast<std::size_t>(t.id)];
  }
}

void CcEdfGovernor::on_release(const sim::Job& job,
                               const sim::SimContext& ctx) {
  const auto& t = ctx.task_set()[static_cast<std::size_t>(job.task_id)];
  auto& s = share_[static_cast<std::size_t>(job.task_id)];
  total_ -= s;
  s = t.wcet / t.deadline;
  total_ += s;
}

void CcEdfGovernor::on_completion(const sim::Job& job,
                                  const sim::SimContext& ctx) {
  const auto& t = ctx.task_set()[static_cast<std::size_t>(job.task_id)];
  auto& s = share_[static_cast<std::size_t>(job.task_id)];
  total_ -= s;
  s = job.actual / t.deadline;
  total_ += s;
}

double CcEdfGovernor::select_speed(const sim::Job& /*running*/,
                                   const sim::SimContext& /*ctx*/) {
  return std::clamp(total_, 1e-9, 1.0);
}

}  // namespace dvs::core
