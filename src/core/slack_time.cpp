#include "core/slack_time.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/demand.hpp"
#include "util/error.hpp"

namespace dvs::core {

SlackTimeGovernor::SlackTimeGovernor(const SlackTimeConfig& config)
    : config_(config) {
  DVS_EXPECT(config.heuristic_checkpoints >= 1,
             "need at least one heuristic checkpoint");
  DVS_EXPECT(config.fallback_horizon_periods >= 1.0,
             "fallback horizon must span at least one max period");
  DVS_EXPECT(config.switch_overhead >= 0.0,
             "switch overhead must be non-negative");
}

void SlackTimeGovernor::on_start(const sim::SimContext& ctx) {
  DVS_EXPECT(ctx.policy() == sim::SchedulingPolicy::kEdf,
             "slack-time analysis (processor demand) requires EDF "
             "dispatching");
  stats_ = TaskSetStats::of(ctx.task_set());
  cache_.invalidate();  // a reused governor must not see the previous run
  kernel_.reset(ctx.task_set(), ctx.now());
}

double SlackTimeGovernor::select_speed(const sim::Job& running,
                                       const sim::SimContext& ctx) {
  const Work rem = running.remaining_wcet();
  if (rem <= kTimeEps) {
    // No budget left, nothing to stretch: keep the current speed and
    // report no estimate (excluded from audit accuracy).
    last_slack_ = std::numeric_limits<Time>::quiet_NaN();
    return ctx.current_speed();
  }
  const Time slack = compute_slack(running, ctx);
  last_slack_ = slack;
  if (slack <= 0.0) return 1.0;
  return std::clamp(rem / (rem + slack), 1e-9, 1.0);
}

Time SlackTimeGovernor::compute_slack(const sim::Job& running,
                                      const sim::SimContext& ctx) {
  const Time t = ctx.now();
  const Time d0 = running.abs_deadline;
  if (d0 - t <= kTimeEps) return 0.0;

  Work backlog = 0.0;
  for (const sim::Job* j : ctx.active_jobs()) backlog += j->remaining_wcet();
  const Horizon horizon = demand_horizon(stats_, t, backlog, d0,
                                         config_.fallback_horizon_periods);

  // With a nonzero switch overhead each job is charged two worst-case
  // stalls (see SlackTimeConfig::switch_overhead), and the decision being
  // made right now two more (switch down + possible emergency switch up).
  const Work per_job_stall = 2.0 * config_.switch_overhead;

  // Beyond any checkpoint d, demand can exceed the utilization rate only
  // by one boundary job per task:  slack(d') >= slack(d) - tail_work for
  // every d' > d.  Used both for the sound early exit and for closing a
  // truncated or checkpoint-limited sweep.
  const Work tail_work =
      stats_.wcet_sum +
      static_cast<double>(ctx.task_set().size()) * per_job_stall;

  if (config_.verify_with_oracle) {
    DemandSweeper oracle(ctx, horizon.end, per_job_stall);
    const Time s_oracle = sweep_slack(oracle, t, d0, per_job_stall,
                                      tail_work, horizon.truncated);
    DemandSweeper cached(ctx, horizon.end, per_job_stall, cache_);
    const Time s_cached = sweep_slack(cached, t, d0, per_job_stall,
                                      tail_work, horizon.truncated);
    DVS_ENSURE(s_cached == s_oracle,
               "incremental slack sweep diverged from the from-scratch "
               "oracle");
    SlackKernel::Sweep kernel(kernel_, ctx, horizon.end, per_job_stall,
                              backlog);
    const Time s_kernel = sweep_slack(kernel, t, d0, per_job_stall,
                                      tail_work, horizon.truncated);
    DVS_ENSURE(s_kernel == s_oracle,
               "slack kernel sweep diverged from the from-scratch oracle");
    return s_kernel;
  }
  // The pre-engine `incremental = false` switch keeps meaning "sweep from
  // scratch" so historical differential tests still exercise the oracle.
  const auto engine = config_.incremental ? config_.engine
                                          : SlackTimeConfig::Engine::kLegacyScan;
  switch (engine) {
    case SlackTimeConfig::Engine::kKernel: {
      SlackKernel::Sweep sweeper(kernel_, ctx, horizon.end, per_job_stall,
                                 backlog);
      return sweep_slack(sweeper, t, d0, per_job_stall, tail_work,
                         horizon.truncated);
    }
    case SlackTimeConfig::Engine::kLegacyCached: {
      DemandSweeper sweeper(ctx, horizon.end, per_job_stall, cache_);
      return sweep_slack(sweeper, t, d0, per_job_stall, tail_work,
                         horizon.truncated);
    }
    case SlackTimeConfig::Engine::kLegacyScan:
      break;
  }
  DemandSweeper sweeper(ctx, horizon.end, per_job_stall);
  return sweep_slack(sweeper, t, d0, per_job_stall, tail_work,
                     horizon.truncated);
}

template <typename Sweeper>
Time SlackTimeGovernor::sweep_slack(Sweeper& sweeper, Time t, Time d0,
                                    Work per_job_stall, Work tail_work,
                                    bool truncated_horizon) const {
  const bool heuristic = config_.mode == SlackTimeConfig::Mode::kHeuristic;
  const int max_checked = heuristic ? config_.heuristic_checkpoints
                                    : std::numeric_limits<int>::max();

  Work demand = per_job_stall;
  Time best = d0 - t;  // slack can never exceed the window itself
  int checked = 0;
  Time last_slack_seen = best;

  enum class SweepEnd { kExhausted, kProvenCovered, kCutShort };
  SweepEnd end_state = SweepEnd::kExhausted;

  Time d = 0.0;
  Work at_d = 0.0;
  while (sweeper.next(d, at_d)) {
    demand += at_d;
    if (time_leq(d0, d)) {
      const Time s = d - t - demand;
      best = std::min(best, s);
      last_slack_seen = s;
      ++checked;
      if (best <= 0.0) return 0.0;
      if (s - tail_work >= best) {
        // Sound early exit: slack(d') >= s - tail_work >= best for every
        // d' > d, so no later checkpoint (even beyond the horizon) can
        // undercut `best`.
        end_state = SweepEnd::kProvenCovered;
        break;
      }
      if constexpr (requires { sweeper.suffix_min_c(); }) {
        // Kernel skip-ahead (docs/ALGORITHMS.md): three lower bounds on
        // every unvisited checkpoint's slack —
        //   gap:    active-only checkpoints before the next store entry
        //           cost at most the unfolded active budgets,
        //   suffix: any checkpoint at or past a store entry j satisfies
        //           slack >= C(j) - t - active_total  (demand through j
        //           is at most active_total + G(j)),
        //   rate:   beyond the crossover point T* the U < 1 demand-rate
        //           bound alone gives slack >= (1-U)(x-t) - active_total
        //           - wcet_sum >= best + margin, no materialization
        //           needed.
        // The suffix bound covers the store; the rate bound covers
        // x > T*; the store must reach T* for the two to meet, so the
        // sweep extends it once (it then slides with t, amortized).
        // When all bounds clear `best` (with an FP margin), the rest of
        // the window is proven covered — identical result, sweep over.
        // Gated off when a closure rule could *lower* the result below
        // `best` (heuristic budget, truncated horizon) and when per-job
        // stalls make the C(j) keys undercount (skip_exact()).
        if (!heuristic && !truncated_horizon && sweeper.skip_exact() &&
            stats_.utilization < 1.0 - 1e-12) {
          constexpr double kSkipMargin = 1e-8;
          const double lim = best + kSkipMargin;
          if (s - sweeper.active_remaining() >= lim &&
              sweeper.suffix_min_c() - t - sweeper.active_total() >= lim) {
            const double tstar =
                t + (sweeper.active_total() + stats_.wcet_sum -
                     stats_.dbf_credit + lim) /
                        (1.0 - stats_.utilization);
            if (sweeper.frontier() >= tstar) {
              end_state = SweepEnd::kProvenCovered;
              break;
            }
            // Not enough store: extend toward T* and re-test at the next
            // checkpoint (the appended entries join the suffix bound).
            (void)sweeper.ensure_frontier(tstar);
          }
        }
      }
      if (checked >= max_checked) {  // heuristic checkpoint budget spent
        end_state = SweepEnd::kCutShort;
        break;
      }
    }
  }

  const bool tail_unexamined =
      end_state == SweepEnd::kCutShort ||
      (end_state == SweepEnd::kExhausted && truncated_horizon);
  if (tail_unexamined) {
    // Close the unexamined tail conservatively (never unsafe).
    best = std::min(best, std::max(0.0, last_slack_seen - tail_work));
  }
  return std::max(0.0, best);
}

std::string SlackTimeGovernor::name() const {
  return config_.mode == SlackTimeConfig::Mode::kExact ? "lpSEH"
                                                       : "lpSEH-h";
}

}  // namespace dvs::core
