#include "core/static_edf.hpp"

#include "sched/analysis.hpp"
#include "util/error.hpp"

namespace dvs::core {

void StaticEdfGovernor::on_start(const sim::SimContext& ctx) {
  DVS_EXPECT(ctx.policy() == sim::SchedulingPolicy::kEdf,
             "staticEDF requires an EDF simulation (use staticFP instead)");
  // Best-effort degradation: a non-schedulable (overloaded) set has no
  // feasible constant speed, and minimum_constant_speed requires
  // schedulability — run flat out instead of aborting mid-mission.
  alpha_ = sched::edf_schedulable(ctx.task_set())
               ? sched::minimum_constant_speed(ctx.task_set())
               : 1.0;
}

double StaticEdfGovernor::select_speed(const sim::Job& /*running*/,
                                       const sim::SimContext& /*ctx*/) {
  return alpha_;
}

}  // namespace dvs::core
