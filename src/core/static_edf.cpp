#include "core/static_edf.hpp"

#include "sched/analysis.hpp"
#include "util/error.hpp"

namespace dvs::core {

void StaticEdfGovernor::on_start(const sim::SimContext& ctx) {
  DVS_EXPECT(ctx.policy() == sim::SchedulingPolicy::kEdf,
             "staticEDF requires an EDF simulation (use staticFP instead)");
  alpha_ = sched::minimum_constant_speed(ctx.task_set());
}

double StaticEdfGovernor::select_speed(const sim::Job& /*running*/,
                                       const sim::SimContext& /*ctx*/) {
  return alpha_;
}

}  // namespace dvs::core
