#include "core/slack_kernel.hpp"

#include <algorithm>
#include <limits>

#include "core/demand.hpp"

namespace dvs::core {

namespace {

// Materialization safety margin: the job store must extend far enough
// past any probed time that the kTimeEps checkpoint grouping can never
// straddle the materialized frontier.  1e-6 >> 2 * kTimeEps.
constexpr Time kMatMargin = 1e-6;

}  // namespace

// ---------------------------------------------------------------------
// SuffMinTree
//
// Representation: minv_[node] is the *effective* min of the node's
// subtree — it includes the node's own pending add (lazy_) and all adds
// below it, but not its ancestors'.  Queries and partial updates descend
// and account for each partially-covered node's lazy on the way, so no
// pushdown (and no mutation) is ever needed on the query path.

namespace {

std::size_t tree_cap_for(std::size_t n) {
  std::size_t cap = 1;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

void SuffMinTree::assign(const std::vector<double>& values) {
  n_ = values.size();
  cap_ = tree_cap_for(std::max<std::size_t>(n_, 1));
  minv_.assign(2 * cap_, std::numeric_limits<double>::infinity());
  lazy_.assign(cap_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) minv_[cap_ + i] = values[i];
  for (std::size_t i = cap_ - 1; i >= 1; --i) {
    minv_[i] = std::min(minv_[2 * i], minv_[2 * i + 1]);
  }
}

void SuffMinTree::append(const std::vector<double>& values) {
  const std::size_t base = n_;
  const std::size_t m = values.size();
  if (m == 0) return;
  n_ = base + m;
  // A suffix add issued before an entry existed must not apply to it —
  // but lazies are range-wide and cannot exclude future leaf slots (a
  // full-cover add on a right sibling also covers every unoccupied slot
  // under it).  So write each appended leaf *compensated* by the pending
  // adds its ancestors already carry: the effective value (leaf plus
  // ancestor lazies) then comes out as exactly the raw key.  The descent
  // re-walks shared ancestors per leaf — O(m log cap), and append runs a
  // handful of times per simulation.
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t leaf = base + i;
    double acc = 0.0;
    std::size_t node = 1, lo = 0, hi = cap_;
    while (node < cap_) {
      acc += lazy_[node];
      const std::size_t mid = lo + (hi - lo) / 2;
      if (leaf < mid) {
        node = 2 * node;
        hi = mid;
      } else {
        node = 2 * node + 1;
        lo = mid;
      }
    }
    minv_[cap_ + leaf] = values[i] - acc;
  }
  // Recompute only the ancestors of the touched suffix, level by level.
  std::size_t lo = cap_ + base, hi = cap_ + n_ - 1;
  while (lo > 1) {
    lo >>= 1;
    hi >>= 1;
    for (std::size_t i = lo; i <= hi; ++i) {
      minv_[i] = std::min(minv_[2 * i], minv_[2 * i + 1]) + lazy_[i];
    }
  }
}

void SuffMinTree::suffix_add(std::size_t i, double v) {
  if (n_ == 0 || i >= n_) return;
  // Iterative descent: every right sibling strictly inside the suffix
  // takes a full-cover add; path nodes are recomputed on the way back up.
  std::size_t node = 1, lo = 0, hi = cap_;
  while (node < cap_) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (i < mid) {
      const std::size_t r = 2 * node + 1;
      minv_[r] += v;
      if (r < cap_) lazy_[r] += v;
      node = 2 * node;
      hi = mid;
    } else {
      node = 2 * node + 1;
      lo = mid;
    }
  }
  minv_[node] += v;  // leaf i
  for (node >>= 1; node >= 1; node >>= 1) {
    minv_[node] =
        std::min(minv_[2 * node], minv_[2 * node + 1]) + lazy_[node];
  }
}

double SuffMinTree::suffix_min(std::size_t i) const {
  if (n_ == 0 || i >= n_) return std::numeric_limits<double>::infinity();
  // Iterative descent accumulating partially-covering nodes' lazies; each
  // fully-covered right sibling contributes its effective min directly.
  double acc = 0.0;
  double res = std::numeric_limits<double>::infinity();
  std::size_t node = 1, lo = 0, hi = cap_;
  while (node < cap_) {
    acc += lazy_[node];
    const std::size_t mid = lo + (hi - lo) / 2;
    if (i < mid) {
      res = std::min(res, minv_[2 * node + 1] + acc);
      node = 2 * node;
      hi = mid;
    } else {
      node = 2 * node + 1;
      lo = mid;
    }
  }
  return std::min(res, minv_[node] + acc);
}

void SuffMinTree::flatten_node(std::size_t node, std::size_t lo,
                               std::size_t hi, double acc,
                               std::vector<double>& out) const {
  if (lo >= n_) return;
  if (node >= cap_) {
    out.push_back(minv_[node] + acc);
    return;
  }
  acc += lazy_[node];
  const std::size_t mid = lo + (hi - lo) / 2;
  flatten_node(2 * node, lo, mid, acc, out);
  flatten_node(2 * node + 1, mid, hi, acc, out);
}

void SuffMinTree::flatten(std::vector<double>& out) const {
  if (n_ != 0) flatten_node(1, 0, cap_, 0.0, out);
}

// ---------------------------------------------------------------------
// SlackKernel

void SlackKernel::reset(const task::TaskSet& ts, Time now) {
  ts_ = &ts;
  deadline_.clear();
  release_.clear();
  work_.clear();
  okey_.clear();
  mat_k_.resize(ts.size());
  // Jobs released at or before `now` (with the kTimeEps tolerance) can
  // never satisfy the strict-future membership predicate at any later
  // decision time, so materialization starts at the same index the legacy
  // cursors would — the one canonical helper keeps the two paths agreeing
  // on the boundary ulp for ulp.
  for (std::size_t i = 0; i < ts.size(); ++i) {
    mat_k_[i] = first_strict_future_release(ts[i], now);
  }
  chunk_ = 0.0;
  for (const auto& t : ts) chunk_ = std::max(chunk_, t.period);
  // An empty set releases nothing, ever: an infinite frontier keeps the
  // sweep from chasing the horizon in margin-sized steps.
  mat_end_ = ts.empty() ? std::numeric_limits<double>::infinity() : now;
  start_ = 0;
  last_now_ = now;
  group_.reserve(16);
  cvals_.clear();
  ctree_.assign(cvals_);
  pending_.resize(ts.size());
  for (auto& p : pending_) p.clear();
  pend_pos_.assign(ts.size(), 0);
  future_work_ = 0.0;
  next_due_ = std::numeric_limits<double>::infinity();
}

void SlackKernel::extend(Time need) {
  const Time target =
      std::max(need + kMatMargin, mat_end_ + std::max(chunk_, kMatMargin));
  // One k-way merge over the per-task job streams appends the batch in
  // (deadline, task-index, job-index) order directly — each stream is
  // already deadline-ascending, so picking the smallest head (first task
  // wins exact-double ties) reproduces the comparator a sort would use
  // without staging or moving anything twice.  The same pass threads the
  // membership-aware prefix G through the new C(j) keys and files each
  // still-future entry with its task's pending-release list (per-task
  // release order IS job order, so the lists stay drain-sorted for free).
  // The linear head scan is O(#tasks) per entry — fine for the task-set
  // sizes this repo simulates.  extend() must not allocate beyond
  // amortized scratch growth — steady-state allocation-freedom is a
  // tested contract (tests/test_alloc_regression.cpp).
  const std::size_t ntasks = ts_->size();
  head_dl_.resize(ntasks);
  for (std::size_t i = 0; i < ntasks; ++i) {
    head_dl_[i] = (*ts_)[i].deadline_of(mat_k_[i]);
  }
  const Time born_cut = last_now_ + kTimeEps;
  double g = future_work_;
  cbatch_.clear();
  for (;;) {
    Time best = std::numeric_limits<double>::infinity();
    std::size_t bi = ntasks;
    for (std::size_t i = 0; i < ntasks; ++i) {
      if (head_dl_[i] <= target && head_dl_[i] < best) {
        best = head_dl_[i];
        bi = i;
      }
    }
    if (bi == ntasks) break;
    const task::Task& task = (*ts_)[bi];
    const std::int64_t k = mat_k_[bi];
    const Time rel = task.release_of(k);
    const auto idx = static_cast<std::uint32_t>(deadline_.size());
    deadline_.push_back(best);
    release_.push_back(rel);
    work_.push_back(task.wcet);
    okey_.push_back(order_key(static_cast<std::uint32_t>(bi), k));
    // Jobs already released at last_now_ ("born released") never count
    // toward G and never need a release event applied later.
    if (rel > born_cut) {
      g += task.wcet;
      pending_[bi].push_back(idx);
      next_due_ = std::min(next_due_, rel);
    }
    cbatch_.push_back(best - g);
    mat_k_[bi] = k + 1;
    head_dl_[bi] = task.deadline_of(k + 1);
  }
  future_work_ = g;
  mat_end_ = target;
  // Appending the C(j) batch reuses the tree in place (O(batch + log));
  // only a capacity overflow pays the flatten + full rebuild.
  if (ctree_.can_append(cbatch_.size())) {
    ctree_.append(cbatch_);
  } else {
    cvals_.clear();
    ctree_.flatten(cvals_);
    cvals_.insert(cvals_.end(), cbatch_.begin(), cbatch_.end());
    ctree_.assign(cvals_);
  }
}

void SlackKernel::advance_start(Time t) {
  if (t < last_now_) {
    // Time moved backwards (test doubles drive governors that way).  The
    // released prefix — possibly already compacted away — is no longer
    // provably released, so rebuild from scratch.
    reset(*ts_, t);
    return;
  }
  last_now_ = t;
  const Time cut = t + kTimeEps;
  // Apply release events first: each removes its work from every later
  // G(j), i.e. adds +w to the C(j) suffix — one O(log n) tree update per
  // release.  Released entries keep their (now larger) C value until the
  // next rebuild; that only raises the suffix min, which is the sound
  // direction for a lower bound on slack.  next_due_ (the earliest
  // unapplied release) makes the no-event case — most decisions — one
  // comparison instead of a per-task scan.
  if (next_due_ <= cut) {
    const std::size_t ntasks = pending_.size();
    Time due = std::numeric_limits<double>::infinity();
    for (std::size_t ti = 0; ti < ntasks; ++ti) {
      const std::vector<std::uint32_t>& pend = pending_[ti];
      std::size_t& pp = pend_pos_[ti];
      while (pp < pend.size() && release_[pend[pp]] <= cut) {
        const std::uint32_t i = pend[pp];
        ctree_.suffix_add(i, work_[i]);
        future_work_ -= work_[i];
        ++pp;
      }
      if (pp < pend.size()) due = std::min(due, release_[pend[pp]]);
    }
    next_due_ = due;
  }
  while (start_ < release_.size() && release_[start_] <= cut) ++start_;
  // Entries before start_ stay released forever (time is monotone within
  // a run); recycle their storage once they dominate the store so the
  // capacity — and with it steady-state allocation — stays bounded by the
  // analysis window instead of growing with simulated time.
  if (start_ >= 64 && start_ * 2 >= deadline_.size()) {
    const auto cutoff = static_cast<std::ptrdiff_t>(start_);
    deadline_.erase(deadline_.begin(), deadline_.begin() + cutoff);
    release_.erase(release_.begin(), release_.begin() + cutoff);
    work_.erase(work_.begin(), work_.begin() + cutoff);
    okey_.erase(okey_.begin(), okey_.begin() + cutoff);
    // Every unapplied pending entry has release > cut, so it sits at or
    // past start_ — reindexing by the cutoff is always in range.  The
    // tree is rebuilt over the surviving effective suffix.
    for (std::size_t ti = 0; ti < pending_.size(); ++ti) {
      std::vector<std::uint32_t>& pend = pending_[ti];
      pend.erase(pend.begin(),
                 pend.begin() + static_cast<std::ptrdiff_t>(pend_pos_[ti]));
      pend_pos_[ti] = 0;
      for (std::uint32_t& e : pend) e -= static_cast<std::uint32_t>(cutoff);
    }
    cvals_.clear();
    ctree_.flatten(cvals_);
    cvals_.erase(cvals_.begin(), cvals_.begin() + cutoff);
    ctree_.assign(cvals_);
    start_ = 0;
  }
}

SlackKernel::Sweep::Sweep(SlackKernel& kernel, const sim::SimContext& ctx,
                          Time horizon, Work extra_per_job, Work active_total)
    : k_(kernel),
      active_(ctx.active_jobs()),
      strict_after_(ctx.now() + kTimeEps),
      horizon_(horizon),
      extra_per_job_(extra_per_job),
      act_total_(active_total),
      rem_act_(active_total) {
  if (k_.ts_ != &ctx.task_set()) k_.reset(ctx.task_set(), ctx.now());
  k_.advance_start(ctx.now());
  pos_ = k_.start_;
  refresh_active_deadline();
}

bool SlackKernel::Sweep::next_fallback(Time& deadline,
                                       Work& work_at_deadline) {
  const std::vector<Time>& dls = k_.deadline_;
  const std::vector<Time>& rel = k_.release_;

  // Find the next *future* entry — released (or (m,k)-shed, which is just
  // "never released") entries contribute nothing and are not checkpoints.
  // Extend the store chunk-wise when the sweep outruns the materialized
  // frontier before the frontier provably covers the horizon.
  for (;;) {
    if (pos_ == dls.size()) {
      if (k_.mat_end_ > horizon_ + 2.0 * kTimeEps) break;
      k_.extend(k_.mat_end_);
      continue;
    }
    if (rel[pos_] > strict_after_) break;
    ++pos_;
  }

  // The checkpoint is the smallest pending deadline — exactly the min the
  // legacy sweeper's peek() takes over the same doubles.
  Time d = std::numeric_limits<double>::infinity();
  if (pos_ < dls.size()) d = dls[pos_];
  if (active_pos_ < active_.size()) {
    d = std::min(d, active_[active_pos_]->abs_deadline);
  }
  if (!time_leq(d, horizon_)) return false;
  deadline = d;

  // Fold order is part of the bit-identity contract: active jobs in EDF
  // span order first, then future releases in task-index (then job-index)
  // order — the order the legacy cursor loop visits them.
  Work sum = 0.0;
  while (active_pos_ < active_.size() &&
         time_leq(active_[active_pos_]->abs_deadline, d)) {
    const Work c = active_[active_pos_]->remaining_wcet() + extra_per_job_;
    sum += c;
    rem_act_ -= c;
    ++active_pos_;
  }
  refresh_active_deadline();  // keep the fast path's memoized copy coherent

  // Gather the checkpoint group: the contiguous run of entries within
  // kTimeEps of d.  The grouping itself can probe past the frontier when
  // d came from an active job near mat_end_, so extend first.
  while (k_.mat_end_ <= d + 2.0 * kTimeEps) k_.extend(d);
  std::size_t g = pos_;
  while (g < dls.size() && time_leq(dls[g], d)) ++g;

  auto eligible = [&](std::size_t j) {
    // Strictly-future release, and inside the horizon: the legacy cursors
    // go +inf at the first beyond-horizon job, so a beyond-horizon entry
    // inside an eps-tie group must not be folded.
    return rel[j] > strict_after_ && time_leq(dls[j], horizon_);
  };

  if (g - pos_ == 1) {
    // Common case: one entry at this checkpoint (it is the future entry
    // the candidate scan stopped on, so it is eligible by construction
    // unless d came from an earlier active deadline).
    if (eligible(pos_)) sum += k_.work_[pos_] + extra_per_job_;
  } else {
    // Ties within one kTimeEps group may be stored in any relative order
    // (suffix sorts never see cross-extension ties), so re-establish the
    // legacy fold order explicitly.
    std::vector<std::uint32_t>& grp = k_.group_;
    grp.clear();
    for (std::size_t j = pos_; j < g; ++j) {
      if (eligible(j)) grp.push_back(static_cast<std::uint32_t>(j));
    }
    for (std::size_t a = 1; a < grp.size(); ++a) {  // insertion sort: tiny
      const std::uint32_t v = grp[a];
      const std::uint64_t vk = k_.okey_[v];
      std::size_t b = a;
      while (b > 0 && k_.okey_[grp[b - 1]] > vk) {
        grp[b] = grp[b - 1];
        --b;
      }
      grp[b] = v;
    }
    for (const std::uint32_t j : grp) sum += k_.work_[j] + extra_per_job_;
  }
  pos_ = g;
  work_at_deadline = sum;
  return true;
}

}  // namespace dvs::core
