#include "task/benchmarks.hpp"

#include "util/error.hpp"

namespace dvs::task {
namespace {

struct Row {
  const char* name;
  double period_ms;
  double wcet_ms;
};

TaskSet build(const std::string& set_name, const Row* rows, std::size_t n,
              double bcet_ratio) {
  DVS_EXPECT(bcet_ratio > 0.0 && bcet_ratio <= 1.0,
             "bcet_ratio must be in (0, 1]");
  TaskSet set(set_name);
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.name = rows[i].name;
    t.period = rows[i].period_ms * 1e-3;
    t.deadline = t.period;
    t.wcet = rows[i].wcet_ms * 1e-3;
    t.bcet = bcet_ratio * t.wcet;
    set.add(std::move(t));
  }
  set.validate();
  return set;
}

}  // namespace

TaskSet ins_task_set(double bcet_ratio) {
  // Approximation of the Inertial Navigation System workload
  // (Burns/Wellings et al.); U ≈ 0.89.
  static constexpr Row kRows[] = {
      {"attitude_update", 2.5, 1.18},
      {"velocity_update", 40.0, 4.28},
      {"attitude_send", 62.5, 10.28},
      {"navigation_send", 1000.0, 100.28},
      {"status_display", 1000.0, 25.28},
      {"position_update", 1250.0, 29.28},
  };
  return build("INS", kRows, std::size(kRows), bcet_ratio);
}

TaskSet cnc_task_set(double bcet_ratio) {
  // Approximation of the CNC machine-controller workload
  // (Kim et al. 1996); U ≈ 0.52.
  static constexpr Row kRows[] = {
      {"x_axis_control", 2.4, 0.22},
      {"y_axis_control", 2.4, 0.22},
      {"x_position_read", 4.8, 0.24},
      {"y_position_read", 4.8, 0.24},
      {"interpolator", 4.8, 0.50},
      {"status_monitor", 9.6, 0.48},
      {"command_parser", 9.6, 0.48},
      {"panel_update", 19.2, 0.60},
  };
  return build("CNC", kRows, std::size(kRows), bcet_ratio);
}

TaskSet avionics_task_set(double bcet_ratio) {
  // Approximation of the Generic Avionics Platform workload
  // (Locke, Vogel, Mesler 1991); 17 tasks, U ≈ 0.84.
  static constexpr Row kRows[] = {
      {"weapon_release", 10.0, 0.8},
      {"radar_tracking", 25.0, 2.0},
      {"target_tracking", 25.0, 3.0},
      {"aircraft_flight_data", 25.0, 1.0},
      {"display_graphic", 40.0, 3.0},
      {"hook_update", 40.0, 2.0},
      {"steering_cmds", 50.0, 3.0},
      {"display_hook_update", 50.0, 3.0},
      {"tracking_filter", 50.0, 2.0},
      {"nav_update", 59.0, 6.0},
      {"display_stores_update", 200.0, 1.0},
      {"display_keyset", 200.0, 1.0},
      {"display_stat_update", 200.0, 3.0},
      {"bet_e_status_update", 1000.0, 1.0},
      {"nav_status", 1000.0, 1.0},
      {"weapon_protocol", 200.0, 10.0},
      {"weapon_aim", 50.0, 3.0},
  };
  return build("Avionics", kRows, std::size(kRows), bcet_ratio);
}

std::vector<TaskSet> embedded_task_sets(double bcet_ratio) {
  return {ins_task_set(bcet_ratio), cnc_task_set(bcet_ratio),
          avionics_task_set(bcet_ratio)};
}

}  // namespace dvs::task
