// Classic embedded real-time task sets used throughout the DVS literature.
//
// The DATE 2002 evaluation protocol (and the follow-up SimDVS comparison)
// exercises DVS algorithms on three well-known applications:
//   * INS      — Inertial Navigation System (Burns et al.),
//   * CNC      — Computerized Numerical Control machine controller
//                (Kim, Shin et al. 1996),
//   * Avionics — Generic Avionics Platform (Locke, Vogel, Mesler 1991).
//
// The parameter tables below are *approximations* reconstructed from the
// secondary literature (see DESIGN.md §2.3): periods and WCETs are of the
// right order and the total utilizations land near the commonly cited
// regimes (≈0.89 INS, ≈0.52 CNC, ≈0.84 avionics).  BCET defaults to 10% of
// WCET and can be overridden to sweep execution-time variability.
#pragma once

#include "task/task_set.hpp"

namespace dvs::task {

/// 6-task Inertial Navigation System workload (U ≈ 0.89).
[[nodiscard]] TaskSet ins_task_set(double bcet_ratio = 0.1);

/// 8-task CNC machine-controller workload (U ≈ 0.52).
[[nodiscard]] TaskSet cnc_task_set(double bcet_ratio = 0.1);

/// 17-task Generic Avionics Platform workload (U ≈ 0.84).
[[nodiscard]] TaskSet avionics_task_set(double bcet_ratio = 0.1);

/// All three, for table-style experiments.
[[nodiscard]] std::vector<TaskSet> embedded_task_sets(double bcet_ratio = 0.1);

}  // namespace dvs::task
