#include "task/task_set.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace dvs::task {

TaskSet::TaskSet(std::string name, std::vector<Task> tasks)
    : name_(std::move(name)) {
  for (auto& t : tasks) add(std::move(t));
}

void TaskSet::add(Task t) {
  t.id = static_cast<std::int32_t>(tasks_.size());
  t.validate();
  tasks_.push_back(std::move(t));
}

double TaskSet::utilization() const noexcept {
  double u = 0.0;
  for (const auto& t : tasks_) u += t.utilization();
  return u;
}

double TaskSet::density() const noexcept {
  double d = 0.0;
  for (const auto& t : tasks_) d += t.density();
  return d;
}

Time TaskSet::max_period() const {
  DVS_EXPECT(!tasks_.empty(), "max_period of empty task set");
  Time m = tasks_.front().period;
  for (const auto& t : tasks_) m = std::max(m, t.period);
  return m;
}

Time TaskSet::min_period() const {
  DVS_EXPECT(!tasks_.empty(), "min_period of empty task set");
  Time m = tasks_.front().period;
  for (const auto& t : tasks_) m = std::min(m, t.period);
  return m;
}

Work TaskSet::max_wcet() const {
  DVS_EXPECT(!tasks_.empty(), "max_wcet of empty task set");
  Work m = tasks_.front().wcet;
  for (const auto& t : tasks_) m = std::max(m, t.wcet);
  return m;
}

std::optional<Time> TaskSet::hyperperiod() const {
  if (tasks_.empty()) return std::nullopt;
  // Find a decimal scale that turns every period into an integer, then take
  // the 64-bit LCM.  Periods in this domain are human-chosen values such as
  // 2.4 ms or 62.5 ms, so a scale of at most 1e6 covers them.
  for (double scale : {1.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6}) {
    bool all_integral = true;
    std::vector<std::int64_t> scaled;
    scaled.reserve(tasks_.size());
    for (const auto& t : tasks_) {
      const double v = t.period * scale;
      const double r = std::round(v);
      if (v > 9e15 || std::fabs(v - r) > 1e-6) {
        all_integral = false;
        break;
      }
      scaled.push_back(static_cast<std::int64_t>(r));
    }
    if (!all_integral) continue;
    std::int64_t l = 1;
    bool overflow = false;
    for (std::int64_t p : scaled) {
      const std::int64_t g = std::gcd(l, p);
      // l / g * p may overflow; detect before multiplying.
      if (p != 0 && (l / g) > (9'000'000'000'000'000'000LL / p)) {
        overflow = true;
        break;
      }
      l = l / g * p;
    }
    if (!overflow) return static_cast<Time>(l) / scale;
  }
  return std::nullopt;
}

Time TaskSet::default_sim_length() const {
  DVS_EXPECT(!tasks_.empty(), "default_sim_length of empty task set");
  const Time max_p = max_period();
  Time length = 64.0 * max_p;
  if (const auto h = hyperperiod()) {
    length = std::min(length, 4.0 * *h);
  }
  return std::max(length, max_p);
}

void TaskSet::validate() const {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    DVS_EXPECT(tasks_[i].id == static_cast<std::int32_t>(i),
               "task ids must equal their index");
    tasks_[i].validate();
  }
}

}  // namespace dvs::task
