#include "task/io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dvs::task {
namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

std::vector<std::string> split_csv_row(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) fields.push_back(trim(field));
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

double parse_time(const std::string& field, double fallback,
                  std::size_t line_no, const char* what) {
  if (field.empty()) return fallback;
  double v = 0.0;
  try {
    std::size_t pos = 0;
    v = std::stod(field, &pos);
    DVS_EXPECT(pos == field.size(), "trailing junk");
  } catch (const std::exception&) {
    DVS_EXPECT(false, "task CSV line " + std::to_string(line_no) +
                          ": malformed " + what + " '" + field + "'");
  }
  // "nan"/"inf" parse fine but poison every downstream time comparison;
  // reject them here with the line number instead of deep in validate().
  DVS_EXPECT(std::isfinite(v), "task CSV line " + std::to_string(line_no) +
                                   ": non-finite " + what + " '" + field +
                                   "'");
  return v;
}

std::int32_t parse_mk(const std::string& field, std::int32_t fallback,
                      std::size_t line_no, const char* what) {
  if (field.empty()) return fallback;
  const double v = parse_time(field, static_cast<double>(fallback), line_no,
                              what);
  DVS_EXPECT(v == std::floor(v) && v >= 1.0 && v <= 1e9,
             "task CSV line " + std::to_string(line_no) + ": " + what +
                 " must be a positive integer, got '" + field + "'");
  return static_cast<std::int32_t>(v);
}

}  // namespace

TaskSet load_task_set_csv(std::istream& in, const std::string& name) {
  TaskSet ts(name);
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  std::unordered_set<std::string> seen_names;
  // Daemon clients (svc/, ISSUE 8) send CSV from every OS and editor:
  // CRLF line endings, a missing final newline (std::getline already
  // yields that last row), a UTF-8 byte-order mark, and whitespace-only
  // lines all parse as if the file were plain POSIX text.
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line_no == 1 && line.size() >= 3 && line[0] == '\xEF' &&
        line[1] == '\xBB' && line[2] == '\xBF') {
      line.erase(0, 3);
    }
    line = trim(line);
    if (line.empty() || line.front() == '#') continue;
    if (!header_seen) {
      DVS_EXPECT(util::starts_with(util::to_lower(line), "name,"),
                 "task CSV line " + std::to_string(line_no) +
                     ": expected header 'name,period,deadline,wcet,"
                     "bcet,phase'");
      header_seen = true;
      continue;
    }
    const auto fields = split_csv_row(line);
    // 6 classic columns, or 8 with the optional (m,k)-firmness pair.
    DVS_EXPECT(fields.size() == 6 || fields.size() == 8,
               "task CSV line " + std::to_string(line_no) +
                   ": expected 6 or 8 fields, got " +
                   std::to_string(fields.size()));
    Task t;
    t.name = fields[0];
    DVS_EXPECT(!t.name.empty(), "task CSV line " + std::to_string(line_no) +
                                    ": empty task name");
    DVS_EXPECT(seen_names.insert(t.name).second,
               "task CSV line " + std::to_string(line_no) +
                   ": duplicate task name '" + t.name + "'");
    t.period = parse_time(fields[1], -1.0, line_no, "period");
    t.deadline = parse_time(fields[2], t.period, line_no, "deadline");
    t.wcet = parse_time(fields[3], -1.0, line_no, "wcet");
    t.bcet = parse_time(fields[4], t.wcet, line_no, "bcet");
    t.phase = parse_time(fields[5], 0.0, line_no, "phase");
    if (fields.size() == 8) {
      t.mk_m = parse_mk(fields[6], 1, line_no, "mk_m");
      t.mk_k = parse_mk(fields[7], t.mk_m, line_no, "mk_k");
    }
    try {
      ts.add(std::move(t));
    } catch (const util::ContractError& e) {
      DVS_EXPECT(false, "task CSV line " + std::to_string(line_no) + ": " +
                            e.what());
    }
  }
  DVS_EXPECT(header_seen, "task CSV: missing header row");
  DVS_EXPECT(!ts.empty(), "task CSV: no tasks");
  return ts;
}

TaskSet load_task_set_csv_file(const std::string& path) {
  std::ifstream in(path);
  DVS_EXPECT(in.is_open(), "cannot open task set file: " + path);
  // Use the file's basename as the set name.
  const auto slash = path.find_last_of('/');
  return load_task_set_csv(
      in, slash == std::string::npos ? path : path.substr(slash + 1));
}

void save_task_set_csv(const TaskSet& ts, std::ostream& out) {
  // Emit the (m,k) columns only when some task is weakly-hard, so files
  // produced from plain hard sets stay byte-identical to earlier releases.
  bool any_firm = false;
  for (const auto& t : ts) any_firm |= !t.is_hard();
  out << "name,period,deadline,wcet,bcet,phase";
  if (any_firm) out << ",mk_m,mk_k";
  out << '\n';
  for (const auto& t : ts) {
    out << t.name << ',' << util::format_double(t.period, 9) << ','
        << util::format_double(t.deadline, 9) << ','
        << util::format_double(t.wcet, 9) << ','
        << util::format_double(t.bcet, 9) << ','
        << util::format_double(t.phase, 9);
    if (any_firm) out << ',' << t.mk_m << ',' << t.mk_k;
    out << '\n';
  }
}

}  // namespace dvs::task
