#include "task/task.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dvs::task {

std::int64_t Task::first_job_at_or_after(Time t) const noexcept {
  if (t <= phase) return 0;
  // ceil with tolerance: a release exactly at t counts as "at t".
  const double k = (t - phase) / period;
  auto idx = static_cast<std::int64_t>(std::ceil(k - kTimeEps));
  if (idx < 0) idx = 0;
  return idx;
}

void Task::validate() const {
  DVS_EXPECT(period > 0.0, "task '" + name + "': period must be positive");
  DVS_EXPECT(deadline > 0.0, "task '" + name + "': deadline must be positive");
  DVS_EXPECT(time_leq(deadline, period),
             "task '" + name + "': constrained deadlines only (D <= T)");
  DVS_EXPECT(wcet > 0.0, "task '" + name + "': WCET must be positive");
  DVS_EXPECT(time_leq(wcet, deadline),
             "task '" + name + "': WCET must fit within the deadline");
  DVS_EXPECT(bcet > 0.0 && time_leq(bcet, wcet),
             "task '" + name + "': BCET must be in (0, WCET]");
  DVS_EXPECT(phase >= 0.0, "task '" + name + "': phase must be non-negative");
  DVS_EXPECT(mk_m >= 1, "task '" + name + "': (m,k) firmness needs m >= 1");
  DVS_EXPECT(mk_m <= mk_k,
             "task '" + name + "': (m,k) firmness needs m <= k");
}

Task make_task(std::int32_t id, std::string name, Time period, Work wcet,
               Work bcet) {
  Task t;
  t.id = id;
  t.name = std::move(name);
  t.period = period;
  t.deadline = period;
  t.wcet = wcet;
  t.bcet = bcet < 0.0 ? wcet : bcet;
  t.phase = 0.0;
  t.validate();
  return t;
}

}  // namespace dvs::task
