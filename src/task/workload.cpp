#include "task/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numbers>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace dvs::task {
namespace {

using util::hash_unit;

/// Clamp a candidate work value into the task's legal [bcet, wcet] band.
Work clamp_work(const Task& t, double w) {
  return std::clamp(w, t.bcet, t.wcet);
}

/// Per-(task, job) uniform deviate in [0,1), decorrelated by a salt so a
/// model drawing several deviates per job stays independent.
double deviate(std::uint64_t seed, const Task& t, std::int64_t job,
               std::uint64_t salt) {
  return hash_unit(seed ^ (0x51ACDB5ULL + salt),
                   static_cast<std::uint64_t>(t.id) + 1,
                   static_cast<std::uint64_t>(job));
}

class ConstantRatioModel final : public ExecutionTimeModel {
 public:
  explicit ConstantRatioModel(double ratio) : ratio_(ratio) {
    DVS_EXPECT(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
  }
  Work draw(const Task& t, std::int64_t) const override {
    return clamp_work(t, ratio_ * t.wcet);
  }
  std::string name() const override {
    return "const(" + util::format_double(ratio_, 2) + ")";
  }

 private:
  double ratio_;
};

class UniformRatioModel final : public ExecutionTimeModel {
 public:
  UniformRatioModel(std::uint64_t seed, double lo, double hi)
      : seed_(seed), lo_(lo), hi_(hi) {
    DVS_EXPECT(lo > 0.0 && lo <= hi && hi <= 1.0,
               "need 0 < lo_ratio <= hi_ratio <= 1");
  }
  Work draw(const Task& t, std::int64_t job) const override {
    const double r = lo_ + (hi_ - lo_) * deviate(seed_, t, job, 1);
    return clamp_work(t, r * t.wcet);
  }
  std::string name() const override {
    return "uniform[" + util::format_double(lo_, 2) + "," +
           util::format_double(hi_, 2) + "]";
  }

 private:
  std::uint64_t seed_;
  double lo_, hi_;
};

class UniformBcetWcetModel final : public ExecutionTimeModel {
 public:
  explicit UniformBcetWcetModel(std::uint64_t seed) : seed_(seed) {}
  Work draw(const Task& t, std::int64_t job) const override {
    return t.bcet + (t.wcet - t.bcet) * deviate(seed_, t, job, 2);
  }
  std::string name() const override { return "uniform"; }

 private:
  std::uint64_t seed_;
};

class NormalModel final : public ExecutionTimeModel {
 public:
  NormalModel(std::uint64_t seed, double mean_ratio, double cv)
      : seed_(seed), mean_ratio_(mean_ratio), cv_(cv) {
    DVS_EXPECT(mean_ratio > 0.0 && mean_ratio <= 1.0,
               "mean_ratio must be in (0, 1]");
    DVS_EXPECT(cv >= 0.0, "coefficient of variation must be >= 0");
  }
  Work draw(const Task& t, std::int64_t job) const override {
    // Deterministic Box–Muller from two counter-based deviates.
    double u1 = deviate(seed_, t, job, 3);
    if (u1 <= 0.0) u1 = 0.5;
    const double u2 = deviate(seed_, t, job, 4);
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * std::numbers::pi * u2);
    return clamp_work(t, (mean_ratio_ + cv_ * z) * t.wcet);
  }
  std::string name() const override {
    return "normal(" + util::format_double(mean_ratio_, 2) + "," +
           util::format_double(cv_, 2) + ")";
  }

 private:
  std::uint64_t seed_;
  double mean_ratio_, cv_;
};

class BimodalModel final : public ExecutionTimeModel {
 public:
  BimodalModel(std::uint64_t seed, double p_heavy, double light, double heavy)
      : seed_(seed), p_heavy_(p_heavy), light_(light), heavy_(heavy) {
    DVS_EXPECT(p_heavy >= 0.0 && p_heavy <= 1.0, "p_heavy must be in [0, 1]");
    DVS_EXPECT(light > 0.0 && light <= heavy && heavy <= 1.0,
               "need 0 < light_ratio <= heavy_ratio <= 1");
  }
  Work draw(const Task& t, std::int64_t job) const override {
    const bool heavy = deviate(seed_, t, job, 5) < p_heavy_;
    return clamp_work(t, (heavy ? heavy_ : light_) * t.wcet);
  }
  std::string name() const override {
    return "bimodal(p=" + util::format_double(p_heavy_, 2) + ")";
  }

 private:
  std::uint64_t seed_;
  double p_heavy_, light_, heavy_;
};

class SinusoidalModel final : public ExecutionTimeModel {
 public:
  SinusoidalModel(std::uint64_t seed, double mean, double amplitude,
                  double period_jobs, double phase, double jitter)
      : seed_(seed),
        mean_(mean),
        amplitude_(amplitude),
        period_jobs_(period_jobs),
        phase_(phase),
        jitter_(jitter) {
    DVS_EXPECT(period_jobs > 0.0, "sinusoid period must be positive");
    DVS_EXPECT(mean > 0.0 && mean <= 1.0, "mean ratio must be in (0, 1]");
    DVS_EXPECT(amplitude >= 0.0 && jitter >= 0.0,
               "amplitude and jitter must be >= 0");
  }
  Work draw(const Task& t, std::int64_t job) const override {
    const double angle =
        2.0 * std::numbers::pi * static_cast<double>(job) / period_jobs_ +
        phase_;
    double r = mean_ + amplitude_ * std::sin(angle);
    if (jitter_ > 0.0) {
      r += jitter_ * (deviate(seed_, t, job, 6) - 0.5);
    }
    return clamp_work(t, r * t.wcet);
  }
  std::string name() const override {
    return phase_ == 0.0 ? "sin" : "sin(phase)";
  }

 private:
  std::uint64_t seed_;
  double mean_, amplitude_, period_jobs_, phase_, jitter_;
};

class PhasedModel final : public ExecutionTimeModel {
 public:
  PhasedModel(std::uint64_t seed, std::int64_t block_len, double p_heavy,
              double light, double heavy)
      : seed_(seed),
        block_len_(block_len),
        p_heavy_(p_heavy),
        light_(light),
        heavy_(heavy) {
    DVS_EXPECT(block_len > 0, "block length must be positive");
    DVS_EXPECT(p_heavy >= 0.0 && p_heavy <= 1.0, "p_heavy must be in [0, 1]");
    DVS_EXPECT(light > 0.0 && light <= heavy && heavy <= 1.0,
               "need 0 < light_ratio <= heavy_ratio <= 1");
  }
  Work draw(const Task& t, std::int64_t job) const override {
    const std::int64_t block = job / block_len_;
    const bool heavy =
        util::hash_unit(seed_ ^ 0xB10CULL,
                        static_cast<std::uint64_t>(t.id) + 1,
                        static_cast<std::uint64_t>(block)) < p_heavy_;
    // Small within-block variation keeps jobs from being byte-identical.
    const double wiggle = 0.05 * (deviate(seed_, t, job, 7) - 0.5);
    return clamp_work(t, ((heavy ? heavy_ : light_) + wiggle) * t.wcet);
  }
  std::string name() const override {
    return "phased(L=" + std::to_string(block_len_) + ")";
  }

 private:
  std::uint64_t seed_;
  std::int64_t block_len_;
  double p_heavy_, light_, heavy_;
};

class ExponentialModel final : public ExecutionTimeModel {
 public:
  ExponentialModel(std::uint64_t seed, double mean_ratio)
      : seed_(seed), mean_ratio_(mean_ratio) {
    DVS_EXPECT(mean_ratio > 0.0 && mean_ratio <= 1.0,
               "mean_ratio must be in (0, 1]");
  }
  Work draw(const Task& t, std::int64_t job) const override {
    double u = deviate(seed_, t, job, 8);
    if (u >= 1.0) u = 0.5;
    const double mean = mean_ratio_ * (t.wcet - t.bcet);
    const double overshoot = mean > 0.0 ? -mean * std::log1p(-u) : 0.0;
    return clamp_work(t, t.bcet + overshoot);
  }
  std::string name() const override { return "exponential"; }

 private:
  std::uint64_t seed_;
  double mean_ratio_;
};

}  // namespace

ExecutionTimeModelPtr constant_ratio_model(double ratio) {
  return std::make_shared<ConstantRatioModel>(ratio);
}

ExecutionTimeModelPtr uniform_model(std::uint64_t seed) {
  return std::make_shared<UniformBcetWcetModel>(seed);
}

ExecutionTimeModelPtr uniform_ratio_model(std::uint64_t seed, double lo_ratio,
                                          double hi_ratio) {
  return std::make_shared<UniformRatioModel>(seed, lo_ratio, hi_ratio);
}

ExecutionTimeModelPtr normal_model(std::uint64_t seed, double mean_ratio,
                                   double cv) {
  return std::make_shared<NormalModel>(seed, mean_ratio, cv);
}

ExecutionTimeModelPtr bimodal_model(std::uint64_t seed, double p_heavy,
                                    double light_ratio, double heavy_ratio) {
  return std::make_shared<BimodalModel>(seed, p_heavy, light_ratio,
                                        heavy_ratio);
}

ExecutionTimeModelPtr sinusoidal_model(std::uint64_t seed, double mean,
                                       double amplitude, double period_jobs,
                                       double phase, double jitter) {
  return std::make_shared<SinusoidalModel>(seed, mean, amplitude, period_jobs,
                                           phase, jitter);
}

ExecutionTimeModelPtr sin_pattern_model(std::uint64_t seed) {
  // Ratio oscillates across [0.5, 1.0] over ~16 jobs with mild jitter,
  // mirroring the "Sin Pattern" RET workloads of the era's experiments.
  return std::make_shared<SinusoidalModel>(seed, 0.75, 0.25, 16.0, 0.0, 0.1);
}

ExecutionTimeModelPtr cos_pattern_model(std::uint64_t seed) {
  return std::make_shared<SinusoidalModel>(seed, 0.75, 0.25, 16.0,
                                           std::numbers::pi / 2.0, 0.1);
}

ExecutionTimeModelPtr phased_model(std::uint64_t seed, std::int64_t block_len,
                                   double p_heavy, double light_ratio,
                                   double heavy_ratio) {
  return std::make_shared<PhasedModel>(seed, block_len, p_heavy, light_ratio,
                                       heavy_ratio);
}

ExecutionTimeModelPtr exponential_model(std::uint64_t seed,
                                        double mean_ratio) {
  return std::make_shared<ExponentialModel>(seed, mean_ratio);
}

ExecutionTimeModelPtr workload_by_spec(const std::string& spec) {
  std::string kind = spec;
  std::string arg;
  if (const auto colon = spec.find(':'); colon != std::string::npos) {
    kind = spec.substr(0, colon);
    arg = spec.substr(colon + 1);
  }
  kind = util::to_lower(kind);
  if (kind == "const") {
    DVS_EXPECT(!arg.empty(),
               "workload 'const' needs a ratio, e.g. const:0.5");
    char* end = nullptr;
    const double ratio = std::strtod(arg.c_str(), &end);
    DVS_EXPECT(end == arg.c_str() + arg.size() && std::isfinite(ratio) &&
                   ratio > 0.0 && ratio <= 1.0,
               "workload const ratio must be in (0, 1], got '" + arg + "'");
    return constant_ratio_model(ratio);
  }
  std::uint64_t seed = 42;  // the CLI's historical default
  if (!arg.empty()) {
    char* end = nullptr;
    const unsigned long long s = std::strtoull(arg.c_str(), &end, 10);
    DVS_EXPECT(end == arg.c_str() + arg.size() && arg[0] != '-',
               "workload seed must be a non-negative integer, got '" + arg +
                   "'");
    seed = s;
  }
  if (kind == "uniform") return uniform_model(seed);
  if (kind == "sin") return sin_pattern_model(seed);
  if (kind == "cos") return cos_pattern_model(seed);
  if (kind == "bimodal") return bimodal_model(seed, 0.3, 0.2, 0.95);
  DVS_EXPECT(false, "unknown workload spec: " + spec);
  return nullptr;
}

}  // namespace dvs::task
