// Periodic hard real-time task model.
#pragma once

#include <cstdint>
#include <string>

#include "util/time.hpp"

namespace dvs::task {

/// One periodic task.  All work quantities are expressed at maximum
/// processor speed (see util/time.hpp).  Deadlines are relative and
/// constrained (deadline <= period); the common implicit-deadline case is
/// deadline == period.
struct Task {
  std::int32_t id = 0;     ///< unique within a TaskSet
  std::string name;        ///< human-readable label
  Time period = 0.0;       ///< > 0
  Time deadline = 0.0;     ///< relative; 0 < deadline <= period
  Work wcet = 0.0;         ///< worst-case execution time at max speed; <= deadline
  Work bcet = 0.0;         ///< best-case execution time; 0 < bcet <= wcet
  Time phase = 0.0;        ///< release offset of the first job; >= 0

  /// Weakly-hard (m, k)-firm constraint (Hamdaoui & Ramanathan; skippable
  /// periodic tasks per Koren & Shasha): at least `mk_m` of any `mk_k`
  /// consecutive jobs must meet their deadlines.  `m == k` is the hard
  /// real-time case and the default — plain task sets stay hard unless a
  /// firmness is assigned explicitly.  1 <= mk_m <= mk_k.
  std::int32_t mk_m = 1;   ///< required deadline-met jobs per window
  std::int32_t mk_k = 1;   ///< window length, in consecutive jobs

  /// True when every job of this task must meet its deadline (m == k).
  [[nodiscard]] bool is_hard() const noexcept { return mk_m == mk_k; }

  /// WCET utilization wcet / period.
  [[nodiscard]] double utilization() const noexcept { return wcet / period; }

  /// WCET density wcet / min(deadline, period).
  [[nodiscard]] double density() const noexcept { return wcet / deadline; }

  /// Release time of job `k` (k >= 0).
  [[nodiscard]] Time release_of(std::int64_t k) const noexcept {
    return phase + static_cast<double>(k) * period;
  }

  /// Absolute deadline of job `k`.
  [[nodiscard]] Time deadline_of(std::int64_t k) const noexcept {
    return release_of(k) + deadline;
  }

  /// Index of the first job released at or after time `t`.
  [[nodiscard]] std::int64_t first_job_at_or_after(Time t) const noexcept;

  /// Throws ContractError when any field violates the model constraints.
  void validate() const;
};

/// Convenience factory for the common implicit-deadline case
/// (deadline = period, phase = 0).  A negative `bcet` means bcet = wcet.
[[nodiscard]] Task make_task(std::int32_t id, std::string name, Time period,
                             Work wcet, Work bcet = -1.0);

}  // namespace dvs::task
