// A set of periodic tasks plus whole-set derived quantities.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "task/task.hpp"

namespace dvs::task {

/// Immutable-after-construction collection of tasks.
/// Invariants (enforced by the constructor / add()):
///  * task ids are unique and equal to their index,
///  * every task individually validates.
class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(std::string name) : name_(std::move(name)) {}
  TaskSet(std::string name, std::vector<Task> tasks);

  /// Append a task; its id is rewritten to its index in the set.
  void add(Task t);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }
  [[nodiscard]] const Task& operator[](std::size_t i) const { return tasks_[i]; }
  [[nodiscard]] const std::vector<Task>& tasks() const noexcept { return tasks_; }
  [[nodiscard]] std::vector<Task>::const_iterator begin() const noexcept {
    return tasks_.begin();
  }
  [[nodiscard]] std::vector<Task>::const_iterator end() const noexcept {
    return tasks_.end();
  }

  /// Sum of WCET utilizations.
  [[nodiscard]] double utilization() const noexcept;

  /// Sum of WCET densities (wcet / deadline).
  [[nodiscard]] double density() const noexcept;

  [[nodiscard]] Time max_period() const;
  [[nodiscard]] Time min_period() const;
  [[nodiscard]] Work max_wcet() const;

  /// Least common multiple of the periods when they are commensurate
  /// (expressible on a decimal grid without 64-bit overflow); nullopt
  /// otherwise.  Phases are ignored.
  [[nodiscard]] std::optional<Time> hyperperiod() const;

  /// A sensible default simulation length: min(4 hyperperiods, 64 max
  /// periods), at least one max period.
  [[nodiscard]] Time default_sim_length() const;

  /// Validates every task and whole-set invariants; throws on violation.
  void validate() const;

 private:
  std::string name_ = "taskset";
  std::vector<Task> tasks_;
};

}  // namespace dvs::task
