// Actual-execution-time (RET) models.
//
// A hard real-time DVS scheme never *knows* a job's actual execution time;
// slack appears only because jobs finish under their WCET budget.  These
// models decide, per job, how much work the job really performs.
//
// Determinism contract: draw() depends only on (model seed, task id,
// job_index).  The simulator may call it in any order and any number of
// times; every governor therefore replays the identical workload — the
// common-random-numbers protocol used throughout the experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "task/task.hpp"

namespace dvs::task {

/// Interface for actual-execution-time generation.
class ExecutionTimeModel {
 public:
  virtual ~ExecutionTimeModel() = default;

  /// Actual work of job `job_index` of `task`; always in [bcet, wcet].
  [[nodiscard]] virtual Work draw(const Task& task,
                                  std::int64_t job_index) const = 0;

  /// Short identifier used in reports ("uniform", "sin", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

using ExecutionTimeModelPtr = std::shared_ptr<const ExecutionTimeModel>;

/// Every job consumes ratio * WCET (clamped to [bcet, wcet]).
/// ratio = 1 reproduces the pure worst-case workload.
[[nodiscard]] ExecutionTimeModelPtr constant_ratio_model(double ratio);

/// Uniform in [bcet, wcet].
[[nodiscard]] ExecutionTimeModelPtr uniform_model(std::uint64_t seed);

/// Uniform in [lo_ratio, hi_ratio] * wcet (clamped to [bcet, wcet]).
[[nodiscard]] ExecutionTimeModelPtr uniform_ratio_model(std::uint64_t seed,
                                                        double lo_ratio,
                                                        double hi_ratio);

/// Normal(mean_ratio * wcet, cv * wcet) truncated to [bcet, wcet].
[[nodiscard]] ExecutionTimeModelPtr normal_model(std::uint64_t seed,
                                                 double mean_ratio, double cv);

/// With probability p_heavy the job takes heavy_ratio * wcet, otherwise
/// light_ratio * wcet (both clamped).  Models bursty workloads.
[[nodiscard]] ExecutionTimeModelPtr bimodal_model(std::uint64_t seed,
                                                  double p_heavy,
                                                  double light_ratio,
                                                  double heavy_ratio);

/// ratio(job) = mean + amplitude * sin(2*pi*job/period_jobs + phase),
/// clamped to [bcet, wcet].  With phase = pi/2 this is the "Cos" pattern of
/// the DVS literature; random per-job jitter can be added on top.
[[nodiscard]] ExecutionTimeModelPtr sinusoidal_model(std::uint64_t seed,
                                                     double mean,
                                                     double amplitude,
                                                     double period_jobs,
                                                     double phase = 0.0,
                                                     double jitter = 0.0);

/// Convenience: the classic "Sin pattern" — C_random * |sin|-like modulation
/// with ratios spanning [0.5, 1.0].
[[nodiscard]] ExecutionTimeModelPtr sin_pattern_model(std::uint64_t seed);

/// Convenience: the classic "Cos pattern" (sin shifted by pi/2).
[[nodiscard]] ExecutionTimeModelPtr cos_pattern_model(std::uint64_t seed);

/// Workload phases: jobs are grouped into blocks of `block_len`; each block
/// is independently either light or heavy.  Models mode changes
/// (e.g. an MPEG stream alternating between simple and complex scenes).
[[nodiscard]] ExecutionTimeModelPtr phased_model(std::uint64_t seed,
                                                 std::int64_t block_len,
                                                 double p_heavy,
                                                 double light_ratio,
                                                 double heavy_ratio);

/// Exponentially distributed overshoot above BCET, truncated at WCET:
/// actual = bcet + Exp(mean = mean_ratio * (wcet - bcet)).
[[nodiscard]] ExecutionTimeModelPtr exponential_model(std::uint64_t seed,
                                                      double mean_ratio);

/// Resolve a textual workload spec — the grammar the CLI and the svc
/// protocol share:
///   uniform[:seed] | const:RATIO | sin[:seed] | cos[:seed] |
///   bimodal[:seed]
/// The default seed is 42 (the CLI's historical default).  Throws
/// util::ContractError on unknown kinds, malformed or out-of-range
/// arguments — service callers turn that into a structured error.
[[nodiscard]] ExecutionTimeModelPtr workload_by_spec(const std::string& spec);

}  // namespace dvs::task
