// Random task-set generation for the experiment suite.
//
// Utilizations come from UUniFast (Bini & Buttazzo), the standard unbiased
// sampler of task utilizations summing to a target U; periods are
// log-uniform over a configurable range (the usual choice, so that short
// and long periods are equally represented per decade).
#pragma once

#include <cstdint>
#include <vector>

#include "task/task_set.hpp"
#include "util/rng.hpp"

namespace dvs::task {

/// UUniFast: n utilizations summing (exactly, up to FP) to total_u.
/// Requires n >= 1 and total_u > 0.
[[nodiscard]] std::vector<double> uunifast(std::size_t n, double total_u,
                                           util::Rng& rng);

/// Knobs for random task-set generation.
struct GeneratorConfig {
  std::size_t n_tasks = 8;
  double total_utilization = 0.7;   ///< target WCET utilization, in (0, 1]
  Time period_min = 0.01;           ///< seconds
  Time period_max = 1.0;            ///< seconds
  double bcet_ratio = 0.1;          ///< bcet = bcet_ratio * wcet, in (0, 1]
  bool log_uniform_periods = true;  ///< false -> linear-uniform periods
  /// Snap periods to a decimal grid so hyperperiods stay finite.  The grid
  /// is period_min * grid_fraction; 0 disables snapping.
  double grid_fraction = 0.05;
  /// Reject tasks whose utilization exceeds this (UUniFast can emit large
  /// individual shares at high total U).
  double max_task_utilization = 1.0;
  /// Permit total_utilization > 1 (overloaded sets for robustness tests;
  /// deadline misses are then expected).  Off by default: accidentally
  /// requesting an infeasible set should stay an error.  Individual tasks
  /// are still capped at utilization 1 (WCET must fit the deadline).
  bool allow_overload = false;
};

/// Generate one random task set.  Throws ContractError on bad config.
/// The resulting set always has utilization within 1e-6 of the target
/// (WCETs are derived as u_i * T_i) and validates.
[[nodiscard]] TaskSet generate_task_set(const GeneratorConfig& config,
                                        util::Rng& rng,
                                        const std::string& name = "random");

/// Generate `count` independent task sets (convenience for sweeps).
[[nodiscard]] std::vector<TaskSet> generate_task_sets(
    const GeneratorConfig& config, std::size_t count, std::uint64_t seed);

}  // namespace dvs::task
