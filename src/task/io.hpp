// Task-set serialization: load and save the CSV interchange format used
// by the CLI tool and the examples.
//
// Format (header required, '#' comments and blank lines ignored):
//
//   name,period,deadline,wcet,bcet,phase
//   control,0.005,0.005,0.002,0.0005,0
//   telemetry,0.020,0.020,0.004,0.001,0
//
// All times are seconds.  `deadline`, `bcet`, and `phase` may be left
// empty ("") to default to period, wcet, and 0 respectively.
//
// Robustness (service clients send all of these): CRLF line endings, a
// final row without a trailing newline, a UTF-8 byte-order mark, and
// whitespace-only lines are all accepted and normalized away.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "task/task_set.hpp"

namespace dvs::task {

/// Parse a task set; throws ContractError with the offending line number
/// on malformed input.  `name` labels the resulting set.
[[nodiscard]] TaskSet load_task_set_csv(std::istream& in,
                                        const std::string& name = "loaded");

/// Load from a file path (convenience).
[[nodiscard]] TaskSet load_task_set_csv_file(const std::string& path);

/// Write the interchange format (full precision).
void save_task_set_csv(const TaskSet& ts, std::ostream& out);

}  // namespace dvs::task
