// Trace-driven actual-execution-time model.
//
// Real deployments rarely have closed-form RET distributions; they have
// measurements.  This model replays per-task execution-time traces
// (vectors of work values, or ratios of WCET), cycling when a trace is
// shorter than the simulation.  Values are clamped to [bcet, wcet] like
// every other model, so a sloppy trace can never break the hard
// real-time contract.
//
// A small CSV loader is included: one row per sample,
//   task_id,work_seconds
// or, with `ratios = true`, task_id,ratio-of-wcet.
#pragma once

#include <cstdint>
#include <istream>
#include <vector>

#include "task/workload.hpp"

namespace dvs::task {

/// Per-task traces indexed by task id; missing/empty traces fall back to
/// the task's WCET (the conservative choice).
[[nodiscard]] ExecutionTimeModelPtr trace_model(
    std::vector<std::vector<Work>> per_task_work);

/// Same, with samples given as fractions of each task's WCET.
[[nodiscard]] ExecutionTimeModelPtr trace_ratio_model(
    std::vector<std::vector<double>> per_task_ratios);

/// Parse "task_id,value" rows into per-task sample vectors.  Lines that
/// are empty or start with '#' are skipped.  Throws ContractError on
/// malformed rows or negative ids/values.  `n_tasks` sizes the result;
/// ids outside [0, n_tasks) are rejected.
[[nodiscard]] std::vector<std::vector<double>> load_trace_csv(
    std::istream& in, std::size_t n_tasks);

}  // namespace dvs::task
