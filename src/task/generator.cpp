#include "task/generator.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dvs::task {

std::vector<double> uunifast(std::size_t n, double total_u, util::Rng& rng) {
  DVS_EXPECT(n >= 1, "uunifast requires at least one task");
  DVS_EXPECT(total_u > 0.0, "uunifast requires positive total utilization");
  std::vector<double> u(n);
  double sum = total_u;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double next =
        sum * std::pow(rng.unit(), 1.0 / static_cast<double>(n - 1 - i));
    u[i] = sum - next;
    sum = next;
  }
  u[n - 1] = sum;
  return u;
}

TaskSet generate_task_set(const GeneratorConfig& cfg, util::Rng& rng,
                          const std::string& name) {
  DVS_EXPECT(cfg.n_tasks >= 1, "need at least one task");
  DVS_EXPECT(cfg.total_utilization > 0.0,
             "total utilization must be positive");
  DVS_EXPECT(cfg.allow_overload || cfg.total_utilization <= 1.0,
             "total utilization must be in (0, 1] for EDF feasibility "
             "(set allow_overload for deliberate overload experiments)");
  DVS_EXPECT(cfg.total_utilization <=
                 static_cast<double>(cfg.n_tasks) * cfg.max_task_utilization,
             "total utilization exceeds n_tasks * max_task_utilization");
  DVS_EXPECT(cfg.period_min > 0.0 && cfg.period_min <= cfg.period_max,
             "need 0 < period_min <= period_max");
  DVS_EXPECT(cfg.bcet_ratio > 0.0 && cfg.bcet_ratio <= 1.0,
             "bcet_ratio must be in (0, 1]");
  DVS_EXPECT(cfg.max_task_utilization > 0.0 && cfg.max_task_utilization <= 1.0,
             "max_task_utilization must be in (0, 1]");

  // Resample until no individual task exceeds the per-task utilization cap.
  // UUniFast is uniform over the simplex, so acceptance is fast except in
  // adversarial configs; bound the retries regardless.
  std::vector<double> shares;
  for (int attempt = 0;; ++attempt) {
    DVS_EXPECT(attempt < 1000,
               "cannot satisfy max_task_utilization; relax the cap");
    shares = uunifast(cfg.n_tasks, cfg.total_utilization, rng);
    bool ok = true;
    for (double s : shares) {
      if (s > cfg.max_task_utilization) {
        ok = false;
        break;
      }
    }
    if (ok) break;
  }

  TaskSet set(name);
  for (std::size_t i = 0; i < cfg.n_tasks; ++i) {
    Time period = 0.0;
    if (cfg.log_uniform_periods) {
      period = std::exp(
          rng.uniform(std::log(cfg.period_min), std::log(cfg.period_max)));
    } else {
      period = rng.uniform(cfg.period_min, cfg.period_max);
    }
    if (cfg.grid_fraction > 0.0) {
      const Time grid = cfg.period_min * cfg.grid_fraction;
      period = std::max(cfg.period_min, std::round(period / grid) * grid);
    }
    Task t;
    t.name = "tau" + std::to_string(i);
    t.period = period;
    t.deadline = period;
    t.wcet = shares[i] * period;
    t.bcet = cfg.bcet_ratio * t.wcet;
    t.phase = 0.0;
    set.add(std::move(t));
  }
  set.validate();
  return set;
}

std::vector<TaskSet> generate_task_sets(const GeneratorConfig& cfg,
                                        std::size_t count,
                                        std::uint64_t seed) {
  std::vector<TaskSet> sets;
  sets.reserve(count);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    sets.push_back(
        generate_task_set(cfg, rng, "random" + std::to_string(i)));
  }
  return sets;
}

}  // namespace dvs::task
