#include "task/trace_workload.hpp"

#include <algorithm>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace dvs::task {
namespace {

class TraceModel final : public ExecutionTimeModel {
 public:
  TraceModel(std::vector<std::vector<double>> samples, bool ratios)
      : samples_(std::move(samples)), ratios_(ratios) {
    for (const auto& trace : samples_) {
      for (double v : trace) {
        DVS_EXPECT(v >= 0.0, "trace samples must be non-negative");
      }
    }
  }

  Work draw(const Task& t, std::int64_t job) const override {
    const auto id = static_cast<std::size_t>(t.id);
    if (id >= samples_.size() || samples_[id].empty()) {
      return t.wcet;  // no data: conservative worst case
    }
    const auto& trace = samples_[id];
    const double raw =
        trace[static_cast<std::size_t>(job) % trace.size()];
    const double work = ratios_ ? raw * t.wcet : raw;
    return std::clamp(work, t.bcet, t.wcet);
  }

  std::string name() const override {
    return ratios_ ? "trace(ratios)" : "trace";
  }

 private:
  std::vector<std::vector<double>> samples_;
  bool ratios_;
};

}  // namespace

ExecutionTimeModelPtr trace_model(
    std::vector<std::vector<Work>> per_task_work) {
  return std::make_shared<TraceModel>(std::move(per_task_work),
                                      /*ratios=*/false);
}

ExecutionTimeModelPtr trace_ratio_model(
    std::vector<std::vector<double>> per_task_ratios) {
  return std::make_shared<TraceModel>(std::move(per_task_ratios),
                                      /*ratios=*/true);
}

std::vector<std::vector<double>> load_trace_csv(std::istream& in,
                                                std::size_t n_tasks) {
  std::vector<std::vector<double>> out(n_tasks);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    std::istringstream row(line);
    std::string id_field;
    std::string value_field;
    const bool ok = static_cast<bool>(std::getline(row, id_field, ',')) &&
                    static_cast<bool>(std::getline(row, value_field));
    DVS_EXPECT(ok, "trace CSV line " + std::to_string(line_no) +
                       ": expected 'task_id,value'");
    std::size_t pos = 0;
    long id = -1;
    double value = -1.0;
    try {
      id = std::stol(id_field, &pos);
      DVS_EXPECT(pos == id_field.size(), "trailing junk in task id");
      value = std::stod(value_field, &pos);
    } catch (const std::exception&) {
      DVS_EXPECT(false, "trace CSV line " + std::to_string(line_no) +
                            ": malformed number");
    }
    DVS_EXPECT(id >= 0 && static_cast<std::size_t>(id) < n_tasks,
               "trace CSV line " + std::to_string(line_no) +
                   ": task id out of range");
    DVS_EXPECT(value >= 0.0, "trace CSV line " + std::to_string(line_no) +
                                 ": negative value");
    out[static_cast<std::size_t>(id)].push_back(value);
  }
  return out;
}

}  // namespace dvs::task
