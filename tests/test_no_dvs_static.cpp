#include <gtest/gtest.h>

#include "core/no_dvs.hpp"
#include "core/static_edf.hpp"
#include "fake_context.hpp"
#include "sim/simulator.hpp"
#include "task/workload.hpp"

namespace dvs::core {
namespace {

using task::make_task;
using task::TaskSet;
using testing_ctx = dvs::testing::FakeContext;

TaskSet simple_set(double u) {
  TaskSet ts("s");
  ts.add(make_task(0, "a", 10.0, u * 5.0));
  ts.add(make_task(1, "b", 20.0, u * 10.0));
  return ts;  // utilization = u
}

TEST(NoDvs, AlwaysFullSpeed) {
  testing_ctx ctx(simple_set(0.5));
  auto& job = ctx.add_job(0, 0, 0.0);
  NoDvsGovernor g;
  g.on_start(ctx);
  EXPECT_DOUBLE_EQ(g.select_speed(job, ctx), 1.0);
  ctx.now_ = 3.0;
  EXPECT_DOUBLE_EQ(g.select_speed(job, ctx), 1.0);
}

TEST(StaticEdf, SpeedEqualsUtilizationForImplicitDeadlines) {
  testing_ctx ctx(simple_set(0.6));
  auto& job = ctx.add_job(0, 0, 0.0);
  StaticEdfGovernor g;
  g.on_start(ctx);
  EXPECT_NEAR(g.select_speed(job, ctx), 0.6, 1e-12);
}

TEST(StaticEdf, SpeedConstantOverTime) {
  testing_ctx ctx(simple_set(0.4));
  auto& job = ctx.add_job(1, 0, 0.0);
  StaticEdfGovernor g;
  g.on_start(ctx);
  const double first = g.select_speed(job, ctx);
  ctx.now_ = 7.5;
  EXPECT_DOUBLE_EQ(g.select_speed(job, ctx), first);
}

TEST(StaticEdf, ConstrainedDeadlinesRaiseTheSpeed) {
  TaskSet ts("c");
  auto t = make_task(0, "a", 10.0, 2.0);
  t.deadline = 2.5;  // needs speed 0.8 at its first deadline
  ts.add(t);
  testing_ctx ctx(std::move(ts));
  auto& job = ctx.add_job(0, 0, 0.0);
  StaticEdfGovernor g;
  g.on_start(ctx);
  EXPECT_NEAR(g.select_speed(job, ctx), 0.8, 1e-9);
}

TEST(StaticEdf, FullUtilizationMeansFullSpeed) {
  testing_ctx ctx(simple_set(1.0));
  auto& job = ctx.add_job(0, 0, 0.0);
  StaticEdfGovernor g;
  g.on_start(ctx);
  EXPECT_NEAR(g.select_speed(job, ctx), 1.0, 1e-12);
}

TEST(StaticEdf, EndToEndBeatsNoDvsOnEnergy) {
  const TaskSet ts = simple_set(0.5);
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  sim::SimOptions opts;
  opts.length = 100.0;

  NoDvsGovernor fast;
  StaticEdfGovernor scaled;
  const auto a = sim::simulate(ts, *workload, proc, fast, opts);
  const auto b = sim::simulate(ts, *workload, proc, scaled, opts);
  EXPECT_EQ(a.deadline_misses, 0);
  EXPECT_EQ(b.deadline_misses, 0);
  // With P = alpha^3 and full-WCET workloads, running at U = 0.5 uses
  // 0.5^2 = 25% of the no-DVS busy energy.
  EXPECT_NEAR(b.busy_energy / a.busy_energy, 0.25, 1e-6);
}

}  // namespace
}  // namespace dvs::core
