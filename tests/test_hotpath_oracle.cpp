// Oracle equivalence of the incremental slack sweep (ISSUE 4 tentpole).
//
// Two layers of evidence that the DemandCache path is bit-identical to the
// from-scratch enumeration:
//   1. verify_with_oracle mode — every compute_slack() runs BOTH sweeps
//      and DVS_ENSUREs exact equality; with fail_fast any divergence
//      anywhere in a sweep aborts the test.  Exercised across the E1
//      utilization grid, the E6 task-set-size grid, and the fault arms
//      (overrun + jitter under each containment policy), serially and
//      with 8 worker threads.
//   2. A full-sweep comparison: SweepOutcomes produced with
//      incremental = true vs incremental = false must agree on every
//      energy, switch and miss number, exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/registry.hpp"
#include "core/slack_time.hpp"
#include "exp/experiment.hpp"
#include "fault/fault.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"

namespace dvs {
namespace {

task::GeneratorConfig grid_generator(std::size_t n_tasks, double u) {
  task::GeneratorConfig cfg;  // the benches' 5-ms grid (common.hpp)
  cfg.n_tasks = n_tasks;
  cfg.total_utilization = u;
  cfg.period_min = 0.01;
  cfg.period_max = 0.16;
  cfg.bcet_ratio = 0.1;
  cfg.grid_fraction = 0.5;
  return cfg;
}

exp::Case uniform_case(const task::GeneratorConfig& gen, std::uint64_t seed) {
  util::Rng rng(seed);
  return {task::generate_task_set(gen, rng), task::uniform_model(seed)};
}

/// Factory: lpSEH / lpSEH-h built straight from `cfg`; every other name
/// (the noDVS reference, laEDF, ...) from the registry.
exp::ExperimentConfig verify_config(core::SlackTimeConfig slack_cfg) {
  exp::ExperimentConfig cfg = exp::default_config();
  cfg.governors = {"lpSEH", "lpSEH-h"};
  cfg.seed = 20020304;
  cfg.replications = 2;
  cfg.sim_length = 0.5;
  cfg.fail_fast = true;  // a sweep divergence must abort, not be isolated
  cfg.governor_factory = [slack_cfg](const std::string& name) {
    core::SlackTimeConfig c = slack_cfg;
    if (name == "lpSEH") {
      c.mode = core::SlackTimeConfig::Mode::kExact;
      return sim::GovernorPtr(std::make_unique<core::SlackTimeGovernor>(c));
    }
    if (name == "lpSEH-h") {
      c.mode = core::SlackTimeConfig::Mode::kHeuristic;
      return sim::GovernorPtr(std::make_unique<core::SlackTimeGovernor>(c));
    }
    return core::make_governor(name);
  };
  return cfg;
}

const std::vector<double> kUtilGrid{0.1, 0.2, 0.3, 0.4, 0.5,
                                    0.6, 0.7, 0.8, 0.9, 1.0};
const std::vector<double> kSizeGrid{3, 5, 8, 12, 16};

exp::SweepOutcome run_util_grid(exp::ExperimentConfig cfg) {
  return exp::run_sweep(cfg, "U", kUtilGrid,
                        [](double u, std::size_t, std::uint64_t seed) {
                          return uniform_case(grid_generator(6, u), seed);
                        });
}

exp::SweepOutcome run_size_grid(exp::ExperimentConfig cfg) {
  return exp::run_sweep(
      cfg, "tasks", kSizeGrid, [](double n, std::size_t, std::uint64_t seed) {
        return uniform_case(grid_generator(static_cast<std::size_t>(n), 0.9),
                            seed);
      });
}

TEST(OracleEquivalence, E1UtilizationGridSerial) {
  core::SlackTimeConfig sc;
  sc.verify_with_oracle = true;
  auto cfg = verify_config(sc);
  const auto sweep = run_util_grid(cfg);  // divergence throws (fail_fast)
  EXPECT_TRUE(sweep.failures.empty());
  EXPECT_EQ(sweep.simulations, kUtilGrid.size() * 2 * 3);  // + noDVS ref
}

TEST(OracleEquivalence, E1UtilizationGridEightThreads) {
  core::SlackTimeConfig sc;
  sc.verify_with_oracle = true;
  auto cfg = verify_config(sc);
  cfg.n_threads = 8;
  const auto sweep = run_util_grid(cfg);
  EXPECT_TRUE(sweep.failures.empty());
}

TEST(OracleEquivalence, E6TaskSetSizeGridSerial) {
  core::SlackTimeConfig sc;
  sc.verify_with_oracle = true;
  const auto sweep = run_size_grid(verify_config(sc));
  EXPECT_TRUE(sweep.failures.empty());
}

TEST(OracleEquivalence, E6TaskSetSizeGridEightThreads) {
  core::SlackTimeConfig sc;
  sc.verify_with_oracle = true;
  auto cfg = verify_config(sc);
  cfg.n_threads = 8;
  const auto sweep = run_size_grid(cfg);
  EXPECT_TRUE(sweep.failures.empty());
}

TEST(OracleEquivalence, WithSwitchOverheadCharged) {
  core::SlackTimeConfig sc;
  sc.verify_with_oracle = true;
  sc.switch_overhead = 1e-4;  // nonzero per-job stall in the sweep
  const auto sweep = run_util_grid(verify_config(sc));
  EXPECT_TRUE(sweep.failures.empty());
}

TEST(OracleEquivalence, FaultArmsUnderEveryContainmentPolicy) {
  constexpr std::uint64_t kFaultSalt = 0x9e3779b97f4a7c15ull;
  const sim::OverrunPolicy policies[] = {
      sim::OverrunPolicy::kNone,
      sim::OverrunPolicy::kClampAtWcet,
      sim::OverrunPolicy::kEscalateToMaxSpeed,
  };
  for (const auto policy : policies) {
    core::SlackTimeConfig sc;
    sc.verify_with_oracle = true;
    auto cfg = verify_config(sc);
    cfg.replications = 3;
    cfg.containment = policy;
    const std::vector<double> probs{0.1, 0.3};
    const auto sweep = exp::run_sweep(
        cfg, "overrun_prob", probs,
        [](double prob, std::size_t, std::uint64_t seed) {
          exp::Case c = uniform_case(grid_generator(6, 0.85), seed);
          fault::FaultSpec spec;
          spec.seed = seed ^ kFaultSalt;
          spec.overrun_prob = prob;
          spec.overrun_magnitude = 0.5;
          spec.jitter_prob = 0.2;
          spec.jitter_time = 0.001;
          c.workload = fault::faulty_workload(std::move(c.workload), spec);
          return c;
        });
    EXPECT_TRUE(sweep.failures.empty())
        << "policy " << fault::containment_name(policy);
  }
}

// Layer 2: whole-sweep equality between incremental and from-scratch runs.

void expect_identical_sweeps(const exp::SweepOutcome& a,
                             const exp::SweepOutcome& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  ASSERT_EQ(a.governors, b.governors);
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    const auto& pa = a.points[p];
    const auto& pb = b.points[p];
    EXPECT_EQ(pa.total_misses, pb.total_misses);
    ASSERT_EQ(pa.cases.size(), pb.cases.size());
    for (std::size_t c = 0; c < pa.cases.size(); ++c) {
      ASSERT_EQ(pa.cases[c].outcomes.size(), pb.cases[c].outcomes.size());
      for (std::size_t g = 0; g < pa.cases[c].outcomes.size(); ++g) {
        const auto& ra = pa.cases[c].outcomes[g];
        const auto& rb = pb.cases[c].outcomes[g];
        EXPECT_EQ(ra.governor, rb.governor);
        // Exact (bitwise) equality — the incremental path must not move a
        // single ulp anywhere in the simulation.
        EXPECT_EQ(ra.normalized_energy, rb.normalized_energy);
        EXPECT_EQ(ra.result.busy_energy, rb.result.busy_energy);
        EXPECT_EQ(ra.result.idle_energy, rb.result.idle_energy);
        EXPECT_EQ(ra.result.transition_energy, rb.result.transition_energy);
        EXPECT_EQ(ra.result.average_speed, rb.result.average_speed);
        EXPECT_EQ(ra.result.speed_switches, rb.result.speed_switches);
        EXPECT_EQ(ra.result.deadline_misses, rb.result.deadline_misses);
        EXPECT_EQ(ra.result.preemptions, rb.result.preemptions);
        EXPECT_EQ(ra.result.worst_response, rb.result.worst_response);
      }
    }
  }
}

TEST(OracleEquivalence, IncrementalSweepOutcomeEqualsFromScratch) {
  core::SlackTimeConfig inc;
  inc.incremental = true;
  core::SlackTimeConfig scratch;
  scratch.incremental = false;

  auto cfg_inc = verify_config(inc);
  auto cfg_scratch = verify_config(scratch);
  cfg_inc.keep_case_outcomes = true;
  cfg_scratch.keep_case_outcomes = true;

  expect_identical_sweeps(run_util_grid(cfg_inc), run_util_grid(cfg_scratch));
  expect_identical_sweeps(run_size_grid(cfg_inc), run_size_grid(cfg_scratch));
}

}  // namespace
}  // namespace dvs
