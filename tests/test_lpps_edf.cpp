#include "core/lpps_edf.hpp"

#include <gtest/gtest.h>

#include "fake_context.hpp"
#include "sim/simulator.hpp"
#include "task/workload.hpp"

namespace dvs::core {
namespace {

using task::make_task;
using task::TaskSet;
using dvs::testing::FakeContext;

TEST(LppsEdf, LoneJobStretchesToNextArrival) {
  TaskSet ts("two");
  ts.add(make_task(0, "a", 10.0, 2.0));
  ts.add(make_task(1, "b", 6.0, 1.0));
  FakeContext ctx(std::move(ts));
  // Only task 0's job is active at t = 1; task 1's next arrival is t = 6.
  auto& job = ctx.add_job(0, 0, 0.0);
  ctx.now_ = 1.0;
  LppsEdfGovernor g;
  // Stretch 2 units of work across min(NTA, deadline) - now = 5.
  EXPECT_NEAR(g.select_speed(job, ctx), 0.4, 1e-12);
}

TEST(LppsEdf, StretchCappedByOwnDeadline) {
  TaskSet ts("two");
  ts.add(make_task(0, "a", 5.0, 2.0));
  ts.add(make_task(1, "b", 100.0, 1.0));
  FakeContext ctx(std::move(ts));
  auto& job = ctx.add_job(0, 0, 0.0);
  // NTA (t = 5, task a's own next release) equals the deadline here;
  // the stretch window is the deadline, not the distant task-b arrival.
  LppsEdfGovernor g;
  EXPECT_NEAR(g.select_speed(job, ctx), 2.0 / 5.0, 1e-12);
}

TEST(LppsEdf, FullSpeedWithMultipleActiveJobs) {
  TaskSet ts("two");
  ts.add(make_task(0, "a", 10.0, 2.0));
  ts.add(make_task(1, "b", 12.0, 2.0));
  FakeContext ctx(std::move(ts));
  auto& j0 = ctx.add_job(0, 0, 0.0);
  ctx.add_job(1, 0, 0.0);
  LppsEdfGovernor g;
  EXPECT_DOUBLE_EQ(g.select_speed(j0, ctx), 1.0);
}

TEST(LppsEdf, NeverBelowWhatTheWindowRequires) {
  TaskSet ts("one");
  ts.add(make_task(0, "a", 10.0, 8.0));
  FakeContext ctx(std::move(ts));
  auto& job = ctx.add_job(0, 0, 0.0);
  LppsEdfGovernor g;
  // 8 units across 10 -> 0.8; running any slower would miss the deadline.
  EXPECT_NEAR(g.select_speed(job, ctx), 0.8, 1e-12);
}

TEST(LppsEdf, EndToEndSafeAndSavesSomething) {
  TaskSet ts("mix");
  ts.add(make_task(0, "a", 0.1, 0.02, 0.004));
  ts.add(make_task(1, "b", 0.4, 0.1, 0.02));
  const auto workload = task::uniform_model(23);
  const cpu::Processor proc = cpu::ideal_processor();

  LppsEdfGovernor lpps;
  sim::SimOptions opts;
  opts.length = 8.0;
  const auto r = sim::simulate(ts, *workload, proc, lpps, opts);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_LT(r.average_speed, 1.0);  // it did scale down sometimes
}

}  // namespace
}  // namespace dvs::core
