// The parallel-execution contract (DESIGN.md §8): exp::run_sweep and
// exp::run_case produce EXACTLY the same outcome — every aggregate, every
// per-case result, every per-job record — for every thread count.  These
// tests run identical sweeps at n_threads = 1 (legacy serial path), 2 and
// 8 (more workers than this suite assumes cores, which also exercises
// worker starvation) and compare the full SweepOutcome with exact
// (bitwise) floating-point equality, not tolerances.
#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "sweep_equality.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace dvs::exp {
namespace {

Case e1_style_case(double u, std::uint64_t seed,
                   const std::string& name = "random") {
  task::GeneratorConfig gen;
  gen.n_tasks = 4;
  gen.total_utilization = u;
  gen.period_min = 0.02;
  gen.period_max = 0.1;
  gen.bcet_ratio = 0.1;
  util::Rng rng(seed);
  return {task::generate_task_set(gen, rng, name), task::uniform_model(seed)};
}

ExperimentConfig base_config() {
  ExperimentConfig cfg = default_config();
  cfg.governors = {"staticEDF", "ccEDF", "DRA", "lpSEH"};
  cfg.seed = 777;
  cfg.replications = 3;
  cfg.sim_length = 0.3;
  cfg.keep_case_outcomes = true;
  return cfg;
}

SweepOutcome sweep_with_threads(ExperimentConfig cfg, std::size_t n_threads) {
  cfg.n_threads = n_threads;
  return run_sweep(cfg, "U", {0.5, 0.8},
                   [](double u, std::size_t, std::uint64_t seed) {
                     return e1_style_case(u, seed);
                   });
}

// expect_same_result / expect_same_stats / expect_same_sweep — the exact
// (bitwise) comparisons — live in sweep_equality.hpp, shared with the
// multiprocessor differential and golden tests.

TEST(ParallelDeterminism, SweepIsIdenticalAcrossThreadCounts) {
  const ExperimentConfig cfg = base_config();
  const SweepOutcome serial = sweep_with_threads(cfg, 1);
  const SweepOutcome two = sweep_with_threads(cfg, 2);
  const SweepOutcome eight = sweep_with_threads(cfg, 8);
  expect_same_sweep(serial, two);
  expect_same_sweep(serial, eight);
  EXPECT_EQ(two.threads_used, 2u);
  EXPECT_EQ(eight.threads_used, 8u);
}

TEST(ParallelDeterminism, HoldsWithPerJobRecordsAndNoTrace) {
  // The trace-free configuration with record_jobs = true: every JobRecord
  // of every simulation must also be independent of the thread count.
  ExperimentConfig cfg = base_config();
  cfg.record_jobs = true;
  const SweepOutcome serial = sweep_with_threads(cfg, 1);
  const SweepOutcome eight = sweep_with_threads(cfg, 8);
  // Sanity: records were actually kept, so the comparison below bites.
  ASSERT_FALSE(serial.points.front().cases.front().outcomes.front()
                   .result.jobs.empty());
  expect_same_sweep(serial, eight);
}

TEST(ParallelDeterminism, AutoThreadCountMatchesSerial) {
  const ExperimentConfig cfg = base_config();
  const SweepOutcome serial = sweep_with_threads(cfg, 1);
  const SweepOutcome auto_threads = sweep_with_threads(cfg, 0);
  EXPECT_GE(auto_threads.threads_used, 1u);
  expect_same_sweep(serial, auto_threads);
}

TEST(ParallelDeterminism, RunCaseIsIdenticalAcrossThreadCounts) {
  ExperimentConfig cfg = base_config();
  const Case c = e1_style_case(0.7, 99);
  cfg.n_threads = 1;
  const CaseOutcome serial = run_case(c, cfg);
  cfg.n_threads = 8;
  const CaseOutcome parallel = run_case(c, cfg);
  ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
  for (std::size_t g = 0; g < serial.outcomes.size(); ++g) {
    EXPECT_EQ(serial.outcomes[g].governor, parallel.outcomes[g].governor);
    EXPECT_EQ(serial.outcomes[g].normalized_energy,
              parallel.outcomes[g].normalized_energy);
    expect_same_result(serial.outcomes[g].result, parallel.outcomes[g].result);
  }
}

TEST(ParallelDeterminism, BuilderExceptionPropagates) {
  ExperimentConfig cfg = base_config();
  cfg.n_threads = 4;
  EXPECT_THROW(
      (void)run_sweep(cfg, "U", {0.5},
                      [](double, std::size_t, std::uint64_t) -> Case {
                        throw std::runtime_error("builder failed");
                      }),
      std::runtime_error);
}

// --- Failure isolation (DESIGN.md §7) ----------------------------------

/// Deliberately broken governor: delegates to a real one, but throws in
/// on_start for the case named "poison".
class BoomGovernor final : public sim::Governor {
 public:
  explicit BoomGovernor(sim::GovernorPtr inner) : inner_(std::move(inner)) {}
  void on_start(const sim::SimContext& ctx) override {
    if (ctx.task_set().name() == "poison") {
      throw std::runtime_error("boom: injected governor failure");
    }
    inner_->on_start(ctx);
  }
  void on_release(const sim::Job& j, const sim::SimContext& c) override {
    inner_->on_release(j, c);
  }
  void on_completion(const sim::Job& j, const sim::SimContext& c) override {
    inner_->on_completion(j, c);
  }
  double select_speed(const sim::Job& j, const sim::SimContext& c) override {
    return inner_->select_speed(j, c);
  }
  std::string name() const override { return inner_->name(); }

 private:
  sim::GovernorPtr inner_;
};

/// Poison exactly one (point, replication) case: x = 0.8, rep = 1.
CaseBuilder poisoned_builder() {
  return [](double u, std::size_t rep, std::uint64_t seed) {
    const bool poison = u == 0.8 && rep == 1;
    return e1_style_case(u, seed, poison ? "poison" : "random");
  };
}

/// Make `victim` (a registry name) explode on the poisoned case; every
/// other governor is the stock registry instance.
std::function<sim::GovernorPtr(const std::string&)> booby_trap(
    const std::string& victim) {
  return [victim](const std::string& name) -> sim::GovernorPtr {
    auto g = core::make_governor(name);
    if (util::to_lower(name) == util::to_lower(victim)) {
      return std::make_unique<BoomGovernor>(std::move(g));
    }
    return g;
  };
}

TEST(FailureIsolation, OneFailureIsAttributedAndOthersStayIdentical) {
  ExperimentConfig cfg = base_config();
  cfg.governor_factory = booby_trap("ccEDF");

  SweepOutcome faulty = run_sweep(cfg, "U", {0.5, 0.8}, poisoned_builder());

  // Exactly one failure, attributed to its exact coordinates.
  ASSERT_EQ(faulty.failures.size(), 1u);
  const SimFailure& f = faulty.failures.front();
  EXPECT_EQ(f.point_index, 1u);
  EXPECT_EQ(f.x, 0.8);
  EXPECT_EQ(f.replication, 1u);
  EXPECT_EQ(f.governor, "ccEDF");
  EXPECT_NE(f.message.find("boom"), std::string::npos);

  // The failed slot is excluded from ccEDF's aggregates only; every other
  // governor keeps all replications.
  const std::size_t n_govs = faulty.governors.size();
  for (std::size_t g = 0; g < n_govs; ++g) {
    const std::size_t expect_pt1 =
        faulty.governors[g] == "ccEDF" ? cfg.replications - 1
                                       : cfg.replications;
    EXPECT_EQ(faulty.points[0].normalized_energy[g].count(), cfg.replications);
    EXPECT_EQ(faulty.points[1].normalized_energy[g].count(), expect_pt1);
  }

  // Every simulation outside the poisoned slot is byte-identical to a
  // clean sweep without the booby trap (same builder, benign case names).
  ExperimentConfig clean_cfg = base_config();
  SweepOutcome clean =
      run_sweep(clean_cfg, "U", {0.5, 0.8}, poisoned_builder());
  EXPECT_TRUE(clean.failures.empty());
  for (std::size_t p = 0; p < clean.points.size(); ++p) {
    for (std::size_t c = 0; c < clean.points[p].cases.size(); ++c) {
      for (std::size_t g = 0; g < n_govs; ++g) {
        const GovernorOutcome& fo = faulty.points[p].cases[c].outcomes[g];
        if (p == 1 && c == 1 && faulty.governors[g] == "ccEDF") {
          EXPECT_TRUE(fo.failed());
          continue;
        }
        EXPECT_FALSE(fo.failed());
        expect_same_result(clean.points[p].cases[c].outcomes[g].result,
                           fo.result);
      }
    }
  }
}

TEST(FailureIsolation, IsDeterministicAcrossThreadCounts) {
  ExperimentConfig cfg = base_config();
  cfg.governor_factory = booby_trap("ccEDF");

  cfg.n_threads = 1;
  const SweepOutcome serial =
      run_sweep(cfg, "U", {0.5, 0.8}, poisoned_builder());
  cfg.n_threads = 8;
  const SweepOutcome parallel =
      run_sweep(cfg, "U", {0.5, 0.8}, poisoned_builder());
  ASSERT_EQ(serial.failures.size(), 1u);
  expect_same_sweep(serial, parallel);
}

TEST(FailureIsolation, FailedReferenceExcludesTheWholeCase) {
  ExperimentConfig cfg = base_config();
  cfg.governor_factory = booby_trap("noDVS");

  const SweepOutcome sweep =
      run_sweep(cfg, "U", {0.5, 0.8}, poisoned_builder());
  // Only the reference failure is recorded...
  ASSERT_EQ(sweep.failures.size(), 1u);
  EXPECT_EQ(sweep.failures.front().governor, "noDVS");
  // ...but without a normalization baseline the whole case drops out of
  // every governor's aggregate at that point.
  for (std::size_t g = 0; g < sweep.governors.size(); ++g) {
    EXPECT_EQ(sweep.points[0].normalized_energy[g].count(), cfg.replications);
    EXPECT_EQ(sweep.points[1].normalized_energy[g].count(),
              cfg.replications - 1);
  }
}

TEST(FailureIsolation, StrictModeRethrowsTheFailure) {
  ExperimentConfig cfg = base_config();
  cfg.governor_factory = booby_trap("ccEDF");
  cfg.fail_fast = true;
  cfg.n_threads = 4;
  EXPECT_THROW((void)run_sweep(cfg, "U", {0.5, 0.8}, poisoned_builder()),
               std::runtime_error);
}

}  // namespace
}  // namespace dvs::exp
