// Weakly-hard fuzz (DESIGN.md §11): seeded overloaded task sets, every
// registered governor, three arms per case —
//   skipping:  the degradation controller sheds window-legal jobs and must
//              keep the weakly-hard contract (zero (m,k) violations, zero
//              hard-task misses) while the overload forces it to shed;
//   monitor:   same controller, skipping disabled — it must record the
//              misses the skipping arm avoided, and must not perturb the
//              simulation at all;
//   disabled:  no controller attached — bit-identical across replays and
//              identical to the monitor arm on every simulated quantity.
// Each case is replayable from (seed, governor) alone: the generator, the
// workload and the fault layer all derive from the printed seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/registry.hpp"
#include "degrade/degrade.hpp"
#include "fault/checked_governor.hpp"
#include "mp/global_sim.hpp"
#include "sim/simulator.hpp"
#include "sweep_equality.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"

namespace dvs {
namespace {

/// Overloaded weakly-hard set: 8 tasks at total utilization `u` (> 1),
/// every task (1,2)-firm except the minimum-utilization one, which stays
/// hard — the same shape bench_e12_degradation sweeps.
task::TaskSet overload_set(double u, std::uint64_t seed) {
  task::GeneratorConfig gen;
  gen.n_tasks = 8;
  gen.total_utilization = u;
  gen.period_min = 0.01;
  gen.period_max = 0.16;
  gen.bcet_ratio = 1.0;
  gen.grid_fraction = 0.5;
  gen.allow_overload = true;
  util::Rng rng(seed);
  task::TaskSet ts =
      task::generate_task_set(gen, rng, "wh" + std::to_string(seed));
  std::size_t hard = 0;
  for (std::size_t i = 1; i < ts.size(); ++i) {
    if (ts[i].utilization() < ts[hard].utilization()) hard = i;
  }
  ts = degrade::with_firmness(ts, 1, 2);
  return degrade::with_task_firmness(ts, hard, 1, 1);
}

sim::SimResult run_arm(const task::TaskSet& ts, const std::string& governor,
                       const degrade::DegradationConfig* dcfg) {
  // Every job at full WCET: the overload is sustained, so the monitor arm
  // is guaranteed misses and the skipping arm is guaranteed pressure.
  const auto workload = task::constant_ratio_model(1.0);
  auto g = fault::checked(core::make_governor(governor));
  sim::SimOptions opts;
  opts.length = 1.0;
  opts.record_jobs = true;
  opts.degradation = dcfg;
  return sim::simulate(ts, *workload, cpu::ideal_processor(), *g, opts);
}

TEST(WeaklyHardFuzz, SkippingKeepsTheContractWhereMonitoringMisses) {
  const auto names = core::governor_names();
  ASSERT_FALSE(names.empty());

  degrade::DegradationConfig skipping;
  skipping.enter_pressure = 1;  // shed from the first pressure event
  degrade::DegradationConfig monitor = skipping;
  monitor.skipping = false;

  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    // U in [1.05, 1.30]: sustained overload at every point.
    const double u = 1.0 + 0.05 * static_cast<double>(seed);
    const task::TaskSet ts = overload_set(u, seed);

    for (const auto& name : names) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " U=" + std::to_string(u) +
                   " governor=" + name);

      const sim::SimResult on = run_arm(ts, name, &skipping);
      const sim::SimResult off = run_arm(ts, name, &monitor);
      const sim::SimResult none = run_arm(ts, name, nullptr);

      // The contract: shedding never breaks a window and never touches a
      // hard task, and the overload really did force it to shed.
      EXPECT_TRUE(on.degradation);
      EXPECT_EQ(on.mk_violations, 0);
      EXPECT_EQ(on.hard_misses, 0);
      EXPECT_GT(on.jobs_skipped, 0);
      EXPECT_GT(on.mode_changes, 0);
      EXPECT_LE(on.jobs_completed + on.jobs_skipped, on.jobs_released);
      for (const auto& j : on.jobs) {
        if (j.skipped) {
          EXPECT_FALSE(ts[static_cast<std::size_t>(j.task_id)].is_hard());
          EXPECT_EQ(j.actual, 0.0);
        }
      }

      // The comparison is not vacuous: without shedding the same case
      // misses deadlines (and those misses land in the (m,k) windows).
      EXPECT_EQ(off.jobs_skipped, 0);
      EXPECT_GT(off.deadline_misses, 0);
      EXPECT_GT(off.mk_violations + off.hard_misses, 0);

      // Monitoring perturbs nothing: every simulated quantity matches the
      // detached run.
      EXPECT_EQ(off.jobs_released, none.jobs_released);
      EXPECT_EQ(off.jobs_completed, none.jobs_completed);
      EXPECT_EQ(off.deadline_misses, none.deadline_misses);
      EXPECT_EQ(off.busy_energy, none.busy_energy);
      EXPECT_EQ(off.idle_energy, none.idle_energy);
      EXPECT_EQ(off.busy_time, none.busy_time);
      EXPECT_EQ(off.idle_time, none.idle_time);
      EXPECT_EQ(off.speed_switches, none.speed_switches);
      EXPECT_EQ(off.preemptions, none.preemptions);
      EXPECT_EQ(off.average_speed, none.average_speed);
      EXPECT_EQ(off.per_task_energy, none.per_task_energy);
      ASSERT_EQ(off.jobs.size(), none.jobs.size());
      for (std::size_t j = 0; j < off.jobs.size(); ++j) {
        EXPECT_EQ(off.jobs[j].completion, none.jobs[j].completion);
        EXPECT_EQ(off.jobs[j].actual, none.jobs[j].actual);
        EXPECT_EQ(off.jobs[j].missed, none.jobs[j].missed);
        EXPECT_EQ(off.jobs[j].skipped, none.jobs[j].skipped);
      }

      // Replayability: the disabled arm is bit-identical run to run (and
      // carries no degradation counters at all).
      EXPECT_FALSE(none.degradation);
      EXPECT_EQ(none.jobs_skipped, 0);
      const sim::SimResult replay = run_arm(ts, name, nullptr);
      exp::expect_same_result(none, replay);
      if (::testing::Test::HasFailure()) return;  // one replayable case
    }
  }
}

TEST(WeaklyHardFuzz, SkippingArmIsItselfReplayable) {
  degrade::DegradationConfig skipping;
  skipping.enter_pressure = 1;
  const task::TaskSet ts = overload_set(1.2, 42);
  const auto names = core::governor_names();
  for (const auto& name : names) {
    SCOPED_TRACE("governor=" + name);
    const sim::SimResult a = run_arm(ts, name, &skipping);
    const sim::SimResult b = run_arm(ts, name, &skipping);
    exp::expect_same_result(a, b);
  }
}

// ---- global-backend arms (DESIGN.md §14) --------------------------------

/// The same three arms through mp::simulate_global on two cores: the
/// platform-wide controller must uphold the identical contract when the
/// overload spans the whole platform and jobs migrate.
mp::GlobalResult run_global_arm(const task::TaskSet& ts,
                                const std::string& governor,
                                const degrade::DegradationConfig* dcfg) {
  const auto workload = task::constant_ratio_model(1.0);
  auto g = fault::checked(core::make_governor(governor));
  mp::GlobalOptions opts;
  opts.length = 1.0;
  opts.n_cores = 2;
  opts.migration_cost = 1e-5;
  opts.record_jobs = true;
  opts.degradation = dcfg;
  return mp::simulate_global(ts, *workload, cpu::ideal_processor(), *g,
                             opts);
}

TEST(WeaklyHardFuzz, GlobalBackendKeepsTheContractUnderPlatformOverload) {
  degrade::DegradationConfig skipping;
  skipping.enter_pressure = 1;
  degrade::DegradationConfig monitor = skipping;
  monitor.skipping = false;

  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    // U in [2.15, 2.45]: sustained overload even for the two-core
    // platform, recoverable by (1,2) shedding (effective U <= 1.23 < 2).
    const double u = 2.0 + 0.15 * static_cast<double>(seed - 10);
    const task::TaskSet ts = overload_set(u, seed);

    for (const auto& name : core::governor_names()) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " U=" + std::to_string(u) +
                   " governor=" + name + " backend=global M=2");

      const mp::GlobalResult on = run_global_arm(ts, name, &skipping);
      const mp::GlobalResult off = run_global_arm(ts, name, &monitor);
      const mp::GlobalResult none = run_global_arm(ts, name, nullptr);

      // The shedding contract holds platform-wide.
      EXPECT_TRUE(on.total.degradation);
      EXPECT_EQ(on.total.mk_violations, 0);
      EXPECT_EQ(on.total.hard_misses, 0);
      EXPECT_GT(on.total.jobs_skipped, 0);
      EXPECT_LE(on.total.jobs_completed + on.total.jobs_skipped,
                on.total.jobs_released);
      for (const auto& j : on.total.jobs) {
        if (j.skipped) {
          EXPECT_FALSE(ts[static_cast<std::size_t>(j.task_id)].is_hard());
          EXPECT_EQ(j.actual, 0.0);
        }
      }

      // Not vacuous: monitoring alone misses inside the windows.
      EXPECT_EQ(off.total.jobs_skipped, 0);
      EXPECT_GT(off.total.deadline_misses, 0);
      EXPECT_GT(off.total.mk_violations + off.total.hard_misses, 0);

      // Monitoring perturbs nothing — platform-wide, per core, and in the
      // migration stream.
      EXPECT_EQ(off.total.jobs_released, none.total.jobs_released);
      EXPECT_EQ(off.total.jobs_completed, none.total.jobs_completed);
      EXPECT_EQ(off.total.deadline_misses, none.total.deadline_misses);
      EXPECT_EQ(off.total.busy_energy, none.total.busy_energy);
      EXPECT_EQ(off.total.busy_time, none.total.busy_time);
      EXPECT_EQ(off.total.speed_switches, none.total.speed_switches);
      EXPECT_EQ(off.total.preemptions, none.total.preemptions);
      EXPECT_EQ(off.total.migrations, none.total.migrations);
      EXPECT_EQ(off.migrations.size(), none.migrations.size());
      ASSERT_EQ(off.cores.size(), none.cores.size());
      for (std::size_t c = 0; c < off.cores.size(); ++c) {
        EXPECT_EQ(off.cores[c].busy_energy, none.cores[c].busy_energy);
        EXPECT_EQ(off.cores[c].busy_time, none.cores[c].busy_time);
        EXPECT_EQ(off.cores[c].jobs_completed, none.cores[c].jobs_completed);
      }

      // Replayability of the skipping arm, bit for bit.
      const mp::GlobalResult replay = run_global_arm(ts, name, &skipping);
      exp::expect_same_result(on.total, replay.total);
      if (::testing::Test::HasFailure()) return;  // one replayable case
    }
  }
}

}  // namespace
}  // namespace dvs
