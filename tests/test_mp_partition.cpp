// Partitioned-scheduling bin packing (mp/partition.hpp): heuristic
// behaviour on hand-built sets, exact-schedulability fit tests, rejection
// reporting, and the determinism / ordering contracts the M = 1
// equivalence relies on.
#include "mp/partition.hpp"

#include <gtest/gtest.h>

#include "sched/analysis.hpp"
#include "task/benchmarks.hpp"
#include "task/task_set.hpp"
#include "util/error.hpp"

namespace dvs::mp {
namespace {

/// Implicit-deadline set with the given utilizations, all on period 10 ms.
task::TaskSet util_set(const std::vector<double>& utils) {
  task::TaskSet ts("util-set");
  for (std::size_t i = 0; i < utils.size(); ++i) {
    ts.add(task::make_task(0, "t" + std::to_string(i), 0.01, 0.01 * utils[i]));
  }
  return ts;
}

TEST(PartitionHeuristics, NamesRoundTrip) {
  for (const auto h : all_heuristics()) {
    EXPECT_EQ(heuristic_by_name(heuristic_name(h)), h);
  }
  EXPECT_EQ(heuristic_by_name("first-fit"), PartitionHeuristic::kFirstFit);
  EXPECT_EQ(heuristic_by_name("BestFit"), PartitionHeuristic::kBestFit);
  EXPECT_EQ(heuristic_by_name("WF"), PartitionHeuristic::kWorstFit);
  EXPECT_THROW((void)heuristic_by_name("round-robin"), util::ContractError);
}

TEST(PartitionHeuristics, CanonicalOrder) {
  const auto& all = all_heuristics();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], PartitionHeuristic::kFirstFit);
  EXPECT_EQ(all[1], PartitionHeuristic::kBestFit);
  EXPECT_EQ(all[2], PartitionHeuristic::kWorstFit);
}

TEST(Partition, SingleCoreHoldsEverythingInOriginalOrder) {
  const task::TaskSet ts = task::cnc_task_set();
  for (const auto h : all_heuristics()) {
    const PartitionResult res = partition_task_set(ts, 1, h);
    ASSERT_TRUE(res.feasible);
    EXPECT_EQ(res.rejected_task, -1);
    ASSERT_EQ(res.partition.tasks_of_core.size(), 1u);
    // Ascending original order — the property that makes the M = 1 core
    // set an exact copy of the input (DESIGN.md §10).
    const auto& core0 = res.partition.tasks_of_core[0];
    ASSERT_EQ(core0.size(), ts.size());
    for (std::size_t i = 0; i < core0.size(); ++i) EXPECT_EQ(core0[i], i);
    EXPECT_NEAR(res.partition.core_utilization[0], ts.utilization(), 1e-12);
  }
}

TEST(Partition, FirstFitConcentratesOnLowCores) {
  const task::TaskSet ts = util_set({0.4, 0.4, 0.3, 0.3});
  const auto res =
      partition_task_set(ts, 2, PartitionHeuristic::kFirstFit);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.partition.tasks_of_core[0],
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(res.partition.tasks_of_core[1],
            (std::vector<std::size_t>{2, 3}));
}

TEST(Partition, WorstFitSpreadsAcrossCores) {
  const task::TaskSet ts = util_set({0.4, 0.4, 0.3, 0.3});
  const auto res =
      partition_task_set(ts, 2, PartitionHeuristic::kWorstFit);
  ASSERT_TRUE(res.feasible);
  // t0 -> core0 (tie toward the lower core), t1 -> the emptier core1,
  // t2 -> tie again -> core0, t3 -> core1.
  EXPECT_EQ(res.partition.tasks_of_core[0],
            (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(res.partition.tasks_of_core[1],
            (std::vector<std::size_t>{1, 3}));
  EXPECT_NEAR(res.partition.core_utilization[0], 0.7, 1e-12);
  EXPECT_NEAR(res.partition.core_utilization[1], 0.7, 1e-12);
}

TEST(Partition, BestFitPrefersTheTightestCore) {
  const task::TaskSet ts = util_set({0.6, 0.3, 0.25});
  const auto res = partition_task_set(ts, 2, PartitionHeuristic::kBestFit);
  ASSERT_TRUE(res.feasible);
  // t1 (u=0.3) fits both cores; best-fit picks the fuller core0.
  EXPECT_EQ(res.partition.tasks_of_core[0],
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(res.partition.tasks_of_core[1], (std::vector<std::size_t>{2}));
}

TEST(Partition, RejectionNamesTheOffendingTask) {
  // Three u = 0.7 tasks cannot share 2 unit-speed cores.
  const task::TaskSet ts = util_set({0.7, 0.7, 0.7});
  for (const auto h : all_heuristics()) {
    const auto res = partition_task_set(ts, 2, h);
    EXPECT_FALSE(res.feasible);
    EXPECT_EQ(res.rejected_task, 2);  // ties pack in index order
    EXPECT_NE(res.error.find("t2"), std::string::npos) << res.error;
    EXPECT_NE(res.error.find("rejected task"), std::string::npos);
  }
}

TEST(Partition, FitTestIsExactNotUtilizationBased) {
  // Two constrained-deadline tasks: U = 0.8 but demand in [0, 5 ms) is
  // 8 ms > 5 ms, so one core must reject what a utilization bound would
  // accept; two cores take one task each.
  task::TaskSet ts("constrained");
  task::Task a = task::make_task(0, "a", 0.010, 0.004);
  a.deadline = 0.005;
  task::Task b = task::make_task(1, "b", 0.010, 0.004);
  b.deadline = 0.005;
  ts.add(a);
  ts.add(b);
  ASSERT_FALSE(sched::edf_schedulable(ts));
  const auto one = partition_task_set(ts, 1, PartitionHeuristic::kFirstFit);
  EXPECT_FALSE(one.feasible);
  const auto two = partition_task_set(ts, 2, PartitionHeuristic::kFirstFit);
  ASSERT_TRUE(two.feasible);
  EXPECT_EQ(two.partition.tasks_of_core[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(two.partition.tasks_of_core[1], (std::vector<std::size_t>{1}));
}

TEST(Partition, AssignmentIsDeterministic) {
  const task::TaskSet ts = task::avionics_task_set();
  for (const auto h : all_heuristics()) {
    const auto a = partition_task_set(ts, 3, h);
    const auto b = partition_task_set(ts, 3, h);
    ASSERT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.partition.core_of, b.partition.core_of);
    EXPECT_EQ(a.partition.tasks_of_core, b.partition.tasks_of_core);
    EXPECT_EQ(a.partition.core_utilization, b.partition.core_utilization);
  }
}

TEST(Partition, MoreCoresThanTasksLeavesEmptyCores) {
  const task::TaskSet ts = util_set({0.5, 0.5});
  const auto res = partition_task_set(ts, 4, PartitionHeuristic::kWorstFit);
  ASSERT_TRUE(res.feasible);
  std::size_t used = 0;
  for (const auto& core : res.partition.tasks_of_core) {
    used += core.empty() ? 0 : 1;
  }
  EXPECT_EQ(used, 2u);  // one task per core, two cores powered down
}

TEST(Partition, CoreTaskSetKeepsOrderAndRewritesIds) {
  const task::TaskSet ts = util_set({0.4, 0.4, 0.3, 0.3});
  const auto res =
      partition_task_set(ts, 2, PartitionHeuristic::kWorstFit);
  ASSERT_TRUE(res.feasible);
  const task::TaskSet c0 = core_task_set(ts, res.partition, 0);
  ASSERT_EQ(c0.size(), 2u);
  EXPECT_EQ(c0.name(), "util-set#c0");  // partial set gets a core suffix
  EXPECT_EQ(c0[0].name, "t0");
  EXPECT_EQ(c0[1].name, "t2");
  EXPECT_EQ(c0[0].id, 0);  // ids are set-local
  EXPECT_EQ(c0[1].id, 1);

  // A core holding every task keeps the original name (M = 1 contract).
  const task::TaskSet light = util_set({0.3, 0.2});
  const auto all =
      partition_task_set(light, 1, PartitionHeuristic::kFirstFit);
  ASSERT_TRUE(all.feasible);
  EXPECT_EQ(core_task_set(light, all.partition, 0).name(), light.name());
}

TEST(Partition, DescribeMentionsHeuristicAndCores) {
  const task::TaskSet ts = util_set({0.4, 0.3});
  const auto res = partition_task_set(ts, 2, PartitionHeuristic::kWorstFit);
  ASSERT_TRUE(res.feasible);
  const std::string d = res.partition.describe(ts);
  EXPECT_NE(d.find("wf on 2 cores"), std::string::npos) << d;
  EXPECT_NE(d.find("core0{"), std::string::npos) << d;
  EXPECT_NE(d.find("t0"), std::string::npos) << d;
}

TEST(Partition, InvalidInputsThrow) {
  const task::TaskSet empty("empty");
  EXPECT_THROW(
      (void)partition_task_set(empty, 2, PartitionHeuristic::kFirstFit),
      util::ContractError);
  const task::TaskSet ts = util_set({0.5});
  EXPECT_THROW((void)partition_task_set(ts, 0, PartitionHeuristic::kFirstFit),
               util::ContractError);
}

}  // namespace
}  // namespace dvs::mp
