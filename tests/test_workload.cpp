#include "task/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "task/task.hpp"
#include "util/error.hpp"

namespace dvs::task {
namespace {

using util::ContractError;

Task probe_task() { return make_task(3, "probe", 0.1, 0.04, 0.008); }

/// Every model must stay within [bcet, wcet] for every job index.
class AllModelsBounds : public ::testing::TestWithParam<ExecutionTimeModelPtr> {};

TEST_P(AllModelsBounds, DrawsStayWithinBand) {
  const Task t = probe_task();
  const auto& model = *GetParam();
  for (std::int64_t job = 0; job < 500; ++job) {
    const Work w = model.draw(t, job);
    EXPECT_GE(w, t.bcet) << model.name() << " job " << job;
    EXPECT_LE(w, t.wcet) << model.name() << " job " << job;
  }
}

TEST_P(AllModelsBounds, DrawIsAPureFunctionOfCoordinates) {
  const Task t = probe_task();
  const auto& model = *GetParam();
  for (std::int64_t job = 0; job < 50; ++job) {
    EXPECT_DOUBLE_EQ(model.draw(t, job), model.draw(t, job)) << model.name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workload, AllModelsBounds,
    ::testing::Values(constant_ratio_model(0.5), uniform_model(1),
                      uniform_ratio_model(2, 0.2, 0.9), normal_model(3, 0.5, 0.2),
                      bimodal_model(4, 0.3, 0.2, 0.9),
                      sinusoidal_model(5, 0.7, 0.25, 16.0),
                      sin_pattern_model(6), cos_pattern_model(7),
                      phased_model(8, 10, 0.4, 0.3, 0.9),
                      exponential_model(9, 0.4)));

TEST(ConstantRatio, ExactValueWhenAboveBcet) {
  const Task t = probe_task();
  const auto m = constant_ratio_model(0.5);
  EXPECT_DOUBLE_EQ(m->draw(t, 0), 0.02);
  EXPECT_DOUBLE_EQ(m->draw(t, 123), 0.02);
}

TEST(ConstantRatio, ClampsToBcet) {
  const Task t = probe_task();  // bcet = 0.008 = 20% of wcet
  const auto m = constant_ratio_model(0.05);
  EXPECT_DOUBLE_EQ(m->draw(t, 0), t.bcet);
}

TEST(ConstantRatio, RatioOneIsWorstCase) {
  const Task t = probe_task();
  EXPECT_DOUBLE_EQ(constant_ratio_model(1.0)->draw(t, 9), t.wcet);
}

TEST(ConstantRatio, RejectsBadRatio) {
  EXPECT_THROW((void)constant_ratio_model(0.0), ContractError);
  EXPECT_THROW((void)constant_ratio_model(1.5), ContractError);
}

TEST(UniformModel, DifferentSeedsGiveDifferentStreams) {
  const Task t = probe_task();
  const auto a = uniform_model(1);
  const auto b = uniform_model(2);
  int equal = 0;
  for (std::int64_t j = 0; j < 100; ++j) {
    if (a->draw(t, j) == b->draw(t, j)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(UniformModel, MeanNearMidpoint) {
  const Task t = probe_task();
  const auto m = uniform_model(11);
  double sum = 0.0;
  const int n = 20000;
  for (int j = 0; j < n; ++j) sum += m->draw(t, j);
  EXPECT_NEAR(sum / n, 0.5 * (t.bcet + t.wcet), 0.001);
}

TEST(UniformModel, TasksAreDecorrelated) {
  const Task a = make_task(0, "a", 0.1, 0.04, 0.004);
  const Task b = make_task(1, "b", 0.1, 0.04, 0.004);
  const auto m = uniform_model(5);
  int equal = 0;
  for (std::int64_t j = 0; j < 100; ++j) {
    if (m->draw(a, j) == m->draw(b, j)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(BimodalModel, HeavyFractionMatchesProbability) {
  const Task t = probe_task();
  const auto m = bimodal_model(21, 0.3, 0.25, 1.0);
  int heavy = 0;
  const int n = 20000;
  for (int j = 0; j < n; ++j) {
    if (m->draw(t, j) > 0.9 * t.wcet) ++heavy;
  }
  EXPECT_NEAR(static_cast<double>(heavy) / n, 0.3, 0.02);
}

TEST(SinusoidalModel, OscillatesWithConfiguredPeriod) {
  const Task t = probe_task();
  const auto m = sinusoidal_model(0, 0.7, 0.25, 16.0, 0.0, 0.0);
  // job 4 is the crest (sin(pi/2)), job 12 the trough.
  EXPECT_NEAR(m->draw(t, 4), 0.95 * t.wcet, 1e-12);
  EXPECT_NEAR(m->draw(t, 12), 0.45 * t.wcet, 1e-12);
}

TEST(SinusoidalModel, CosPatternIsQuarterPhaseShifted) {
  const Task t = probe_task();
  const auto sinm = sinusoidal_model(3, 0.75, 0.25, 16.0, 0.0, 0.0);
  const auto cosm =
      sinusoidal_model(3, 0.75, 0.25, 16.0, std::numbers::pi / 2.0, 0.0);
  // cos pattern at job 0 equals sin pattern at its crest (job 4).
  EXPECT_NEAR(cosm->draw(t, 0), sinm->draw(t, 4), 1e-12);
}

TEST(PhasedModel, ConstantWithinBlockModulo) {
  const Task t = probe_task();
  const auto m = phased_model(31, 20, 0.5, 0.3, 0.9);
  // Jobs in the same block share the mode: their draws cluster within the
  // 5% wiggle band around either the light or the heavy ratio.
  for (int block = 0; block < 10; ++block) {
    const Work first = m->draw(t, block * 20);
    for (int k = 1; k < 20; ++k) {
      const Work w = m->draw(t, block * 20 + k);
      EXPECT_NEAR(w, first, 0.06 * t.wcet);
    }
  }
}

TEST(ExponentialModel, SkewsTowardBcet) {
  const Task t = probe_task();
  const auto m = exponential_model(41, 0.3);
  int low = 0;
  const int n = 10000;
  const Work mid = 0.5 * (t.bcet + t.wcet);
  for (int j = 0; j < n; ++j) {
    if (m->draw(t, j) < mid) ++low;
  }
  EXPECT_GT(low, n / 2);  // more than half the mass below the midpoint
}

TEST(WorkloadFactories, RejectInvalidParameters) {
  EXPECT_THROW((void)uniform_ratio_model(0, 0.0, 0.5), ContractError);
  EXPECT_THROW((void)uniform_ratio_model(0, 0.9, 0.5), ContractError);
  EXPECT_THROW((void)normal_model(0, 0.0, 0.1), ContractError);
  EXPECT_THROW((void)normal_model(0, 0.5, -0.1), ContractError);
  EXPECT_THROW((void)bimodal_model(0, 1.5, 0.2, 0.9), ContractError);
  EXPECT_THROW((void)bimodal_model(0, 0.5, 0.9, 0.2), ContractError);
  EXPECT_THROW((void)sinusoidal_model(0, 0.5, 0.2, 0.0), ContractError);
  EXPECT_THROW((void)phased_model(0, 0, 0.5, 0.3, 0.9), ContractError);
  EXPECT_THROW((void)exponential_model(0, 0.0), ContractError);
}

}  // namespace
}  // namespace dvs::task
