#include "sched/analysis.hpp"

#include <gtest/gtest.h>

#include "task/generator.hpp"
#include "util/error.hpp"

namespace dvs::sched {
namespace {

using task::make_task;
using task::Task;
using task::TaskSet;

TaskSet implicit_set(double u1, double u2) {
  TaskSet ts("implicit");
  ts.add(make_task(0, "a", 0.1, u1 * 0.1));
  ts.add(make_task(1, "b", 0.25, u2 * 0.25));
  return ts;
}

TEST(DemandBound, ImplicitDeadlines) {
  TaskSet ts("s");
  ts.add(make_task(0, "a", 10.0, 2.0));
  ts.add(make_task(1, "b", 15.0, 3.0));
  EXPECT_DOUBLE_EQ(demand_bound(ts, 5.0), 0.0);    // nothing due yet
  EXPECT_DOUBLE_EQ(demand_bound(ts, 10.0), 2.0);   // first deadline of a
  EXPECT_DOUBLE_EQ(demand_bound(ts, 15.0), 5.0);   // plus first of b
  EXPECT_DOUBLE_EQ(demand_bound(ts, 30.0), 2.0 * 3 + 3.0 * 2);
}

TEST(DemandBound, ConstrainedDeadlines) {
  TaskSet ts("s");
  Task t = make_task(0, "a", 10.0, 2.0);
  t.deadline = 4.0;
  ts.add(t);
  EXPECT_DOUBLE_EQ(demand_bound(ts, 3.9), 0.0);
  EXPECT_DOUBLE_EQ(demand_bound(ts, 4.0), 2.0);
  EXPECT_DOUBLE_EQ(demand_bound(ts, 14.0), 4.0);
}

TEST(BusyPeriodBound, FiniteBelowFullUtilization) {
  const auto ts = implicit_set(0.25, 0.25);  // U = 0.5, sum C = 0.0875
  const auto l = busy_period_bound(ts);
  ASSERT_TRUE(l.has_value());
  EXPECT_NEAR(*l, 0.0875 / 0.5, 1e-12);
}

TEST(BusyPeriodBound, DivergesAtFullUtilization) {
  EXPECT_FALSE(busy_period_bound(implicit_set(0.5, 0.5)).has_value());
}

TEST(Checkpoints, EnumeratesDeadlines) {
  TaskSet ts("s");
  ts.add(make_task(0, "a", 10.0, 1.0));
  const auto pts = deadline_checkpoints(ts, 35.0);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0], 10.0);
  EXPECT_DOUBLE_EQ(pts[2], 30.0);
}

TEST(Checkpoints, DeduplicatesSharedDeadlines) {
  TaskSet ts("s");
  ts.add(make_task(0, "a", 10.0, 1.0));
  ts.add(make_task(1, "b", 10.0, 1.0));
  EXPECT_EQ(deadline_checkpoints(ts, 10.0).size(), 1u);
}

TEST(EdfSchedulable, ImplicitMatchesUtilizationBound) {
  EXPECT_TRUE(edf_schedulable(implicit_set(0.5, 0.5)));     // U = 1
  EXPECT_TRUE(edf_schedulable(implicit_set(0.2, 0.3)));     // U = 0.5
  EXPECT_FALSE(edf_schedulable(implicit_set(0.6, 0.55)));   // U > 1
}

TEST(EdfSchedulable, ConstrainedUsesDemandTest) {
  // U = 0.6 but both tasks must finish within half their periods:
  // density = 1.2, yet the demand criterion still passes this set.
  TaskSet ts("s");
  Task a = make_task(0, "a", 10.0, 3.0);
  a.deadline = 5.0;
  Task b = make_task(1, "b", 10.0, 3.0);
  b.deadline = 10.0;
  ts.add(a);
  ts.add(b);
  EXPECT_TRUE(edf_schedulable(ts));

  // Tightening a's deadline to 3.5 with b due at 7 overloads [0, 7]:
  // demand(7) = 3 + 5 > 7? -> craft a genuine failure:
  TaskSet bad("bad");
  Task c = make_task(0, "c", 10.0, 4.0);
  c.deadline = 4.0;
  Task d = make_task(1, "d", 10.0, 4.0);
  d.deadline = 7.0;
  bad.add(c);
  bad.add(d);
  // demand(7) = 4 + 4 = 8 > 7: infeasible on a unit-speed processor.
  EXPECT_FALSE(edf_schedulable(bad));
}

TEST(EdfSchedulable, EmptySetTriviallySchedulable) {
  EXPECT_TRUE(edf_schedulable(TaskSet{}));
}

TEST(MinimumConstantSpeed, ImplicitEqualsUtilization) {
  EXPECT_NEAR(minimum_constant_speed(implicit_set(0.3, 0.4)), 0.7, 1e-12);
}

TEST(MinimumConstantSpeed, ConstrainedExceedsUtilization) {
  TaskSet ts("s");
  Task a = make_task(0, "a", 10.0, 2.0);
  a.deadline = 2.5;  // demand(2.5) = 2 -> needs speed >= 0.8
  ts.add(a);
  EXPECT_NEAR(minimum_constant_speed(ts), 0.8, 1e-9);
}

TEST(MinimumConstantSpeed, RejectsInfeasibleSets) {
  EXPECT_THROW((void)minimum_constant_speed(implicit_set(0.6, 0.55)),
               util::ContractError);
}

TEST(MinimumConstantSpeed, RandomSetsConsistentWithSchedulability) {
  // For random implicit-deadline sets, speed == utilization.
  task::GeneratorConfig cfg;
  cfg.n_tasks = 6;
  util::Rng rng(33);
  for (double u : {0.3, 0.6, 0.95}) {
    cfg.total_utilization = u;
    const auto ts = task::generate_task_set(cfg, rng);
    EXPECT_NEAR(minimum_constant_speed(ts), u, 1e-9);
  }
}

}  // namespace
}  // namespace dvs::sched
