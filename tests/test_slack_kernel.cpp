// SlackKernel — the incremental slack kernel (DESIGN.md §13,
// docs/ALGORITHMS.md "The incremental slack kernel").  Three layers of
// pinning, all with exact double equality:
//
//   1. SuffMinTree unit differentials: the lazy suffix-add/suffix-min
//      tree (including the iterative query/update paths and append())
//      against a naive vector model, on integer-valued doubles so every
//      operation is FP-exact and EXPECT_EQ is meaningful.
//   2. Sweep-stream differentials: SlackKernel::Sweep must emit exactly
//      the (deadline, work) checkpoint stream of the from-scratch
//      DemandSweeper at every decision time — across monotone time,
//      rewinds, eps-tie groups (including oversized ones that overflow
//      the inline fast path), compaction, and nonzero per-job stalls.
//   3. Whole-simulation differentials: the kernel engine vs the legacy
//      cached and from-scratch engines, bit-identical SimResults on
//      seeded sets straddling U = 1, sustained overloads, (m,k)
//      shedding, partitioned multiprocessor runs and thread counts
//      1/2/8.
//
// The binary also overrides ::operator new to prove the kernel performs
// no allocation in steady state (warm store, monotone time).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "core/demand.hpp"
#include "core/la_edf.hpp"
#include "core/slack_kernel.hpp"
#include "core/slack_time.hpp"
#include "core/uniform_slack.hpp"
#include "cpu/processors.hpp"
#include "degrade/degrade.hpp"
#include "exp/experiment.hpp"
#include "fake_context.hpp"
#include "mp/mp_sim.hpp"
#include "sim/simulator.hpp"
#include "sweep_equality.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::uint64_t> g_new_calls{0};
}  // namespace

void* operator new(std::size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace dvs::core {
namespace {

using dvs::testing::FakeContext;
using task::make_task;
using task::TaskSet;

// ---------------------------------------------------------------------
// 1. SuffMinTree vs a naive model.  Integer values keep every add and
//    min FP-exact, so the differential can demand equality to the bit.

struct NaiveSuffix {
  std::vector<double> v;
  void suffix_add(std::size_t i, double x) {
    for (std::size_t j = i; j < v.size(); ++j) v[j] += x;
  }
  [[nodiscard]] double suffix_min(std::size_t i) const {
    double m = std::numeric_limits<double>::infinity();
    for (std::size_t j = i; j < v.size(); ++j) m = std::min(m, v[j]);
    return m;
  }
};

TEST(SuffMinTree, RandomizedDifferentialAgainstNaiveModel) {
  util::Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 70));
    NaiveSuffix naive;
    for (std::size_t i = 0; i < n; ++i) {
      naive.v.push_back(static_cast<double>(rng.uniform_int(-1000, 999)));
    }
    SuffMinTree tree;
    tree.assign(naive.v);
    ASSERT_EQ(tree.size(), n);
    for (int op = 0; op < 200; ++op) {
      const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (rng.uniform_int(0, 1) == 0) {
        const double x = static_cast<double>(rng.uniform_int(-50, 49));
        naive.suffix_add(i, x);
        tree.suffix_add(i, x);
      } else {
        EXPECT_EQ(tree.suffix_min(i), naive.suffix_min(i))
            << "round " << round << " op " << op << " i=" << i;
      }
    }
    std::vector<double> flat;
    tree.flatten(flat);
    EXPECT_EQ(flat, naive.v) << "round " << round;
  }
}

TEST(SuffMinTree, AppendMatchesNaiveModelWithInterleavedUpdates) {
  util::Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    // Start below a power-of-two capacity so append() has room.
    NaiveSuffix naive;
    const std::size_t n0 = static_cast<std::size_t>(rng.uniform_int(5, 12));
    for (std::size_t i = 0; i < n0; ++i) {
      naive.v.push_back(static_cast<double>(rng.uniform_int(0, 999)));
    }
    SuffMinTree tree;
    tree.assign(naive.v);
    std::vector<double> batch;
    for (int op = 0; op < 60; ++op) {
      const std::size_t n = naive.v.size();
      switch (rng.uniform_int(0, 2)) {
        case 0: {  // suffix add (builds up lazies along the right spine)
          const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
          const double x = static_cast<double>(rng.uniform_int(-32, 31));
          naive.suffix_add(i, x);
          tree.suffix_add(i, x);
          break;
        }
        case 1: {  // append a small batch when capacity allows
          batch.clear();
          const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 4));
          for (std::size_t i = 0; i < m; ++i) {
            batch.push_back(static_cast<double>(rng.uniform_int(0, 999)));
          }
          if (tree.can_append(batch.size())) {
            tree.append(batch);
            naive.v.insert(naive.v.end(), batch.begin(), batch.end());
          }
          break;
        }
        default: {
          const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
          EXPECT_EQ(tree.suffix_min(i), naive.suffix_min(i))
              << "round " << round << " op " << op << " i=" << i;
          break;
        }
      }
    }
    std::vector<double> flat;
    tree.flatten(flat);
    EXPECT_EQ(flat, naive.v) << "round " << round;
  }
}

// ---------------------------------------------------------------------
// 2. Sweep-stream differentials against the from-scratch DemandSweeper.

TaskSet trio_set() {
  TaskSet ts("trio");
  ts.add(make_task(0, "a", 10.0, 2.0));
  ts.add(make_task(1, "b", 25.0, 5.0));
  ts.add(make_task(2, "c", 40.0, 4.0));
  return ts;
}

/// Every task shares one period: every checkpoint is one big eps-tie
/// group.  With more than 16 tasks the group overflows the inline fast
/// path's stack buffer and must take the fallback's undo path.
TaskSet grid_set(std::size_t n_tasks) {
  TaskSet ts("grid");
  for (std::size_t i = 0; i < n_tasks; ++i) {
    ts.add(make_task(static_cast<std::int32_t>(i),
                     "g" + std::to_string(i), 0.5, 0.01));
  }
  return ts;
}

Work backlog_of(const FakeContext& ctx) {
  Work b = 0.0;
  for (const sim::Job* j : ctx.active_jobs()) b += j->remaining_wcet();
  return b;
}

/// Drain a kernel sweep and the from-scratch oracle and require identical
/// (deadline, work) streams — the bit-identity contract.
void expect_kernel_matches_oracle(SlackKernel& kernel, FakeContext& ctx,
                                  Time horizon, Work extra = 0.0) {
  DemandSweeper oracle(ctx, horizon, extra);
  SlackKernel::Sweep sweep(kernel, ctx, horizon, extra, backlog_of(ctx));
  Time d1 = 0.0, d2 = 0.0;
  Work w1 = 0.0, w2 = 0.0;
  for (;;) {
    const bool more1 = oracle.next(d1, w1);
    const bool more2 = sweep.next(d2, w2);
    ASSERT_EQ(more1, more2) << "t=" << ctx.now_ << " horizon=" << horizon;
    if (!more1) return;
    EXPECT_EQ(d1, d2) << "t=" << ctx.now_;
    EXPECT_EQ(w1, w2) << "t=" << ctx.now_ << " d=" << d1;
  }
}

TEST(SlackKernelSweep, StreamMatchesOracleOverMonotoneTime) {
  FakeContext ctx(trio_set());
  SlackKernel kernel;
  kernel.reset(ctx.task_set(), 0.0);
  for (const Time t : {0.0, 1.0, 9.0, 10.0, 12.5, 20.0, 25.0, 26.0, 40.0,
                       55.0, 79.9, 80.0, 123.4}) {
    ctx.now_ = t;
    ctx.clear_jobs();
    ctx.add_job(1, 0, 0.0);
    expect_kernel_matches_oracle(kernel, ctx, t + 70.0);
  }
}

TEST(SlackKernelSweep, LazyMaterializationOnlyGrowsOnDemand) {
  FakeContext ctx(trio_set());
  SlackKernel kernel;
  kernel.reset(ctx.task_set(), 0.0);
  EXPECT_EQ(kernel.materialized(), 0u);
  expect_kernel_matches_oracle(kernel, ctx, 20.0);
  const std::size_t small = kernel.materialized();
  EXPECT_GT(small, 0u);
  expect_kernel_matches_oracle(kernel, ctx, 300.0);
  EXPECT_GT(kernel.materialized(), small);
}

TEST(SlackKernelSweep, PerJobStallSurchargeMatchesOracle) {
  FakeContext ctx(trio_set());
  SlackKernel kernel;
  kernel.reset(ctx.task_set(), 0.0);
  for (const Time t : {0.0, 7.0, 31.0}) {
    ctx.now_ = t;
    ctx.clear_jobs();
    ctx.add_job(0, 0, 0.0, 0.5);
    expect_kernel_matches_oracle(kernel, ctx, t + 60.0, 0.01);
  }
}

TEST(SlackKernelSweep, EpsTieGroupsMatchOracle) {
  // 8 identical periods: every checkpoint folds an 8-entry tie group.
  FakeContext ctx(grid_set(8));
  SlackKernel kernel;
  kernel.reset(ctx.task_set(), 0.0);
  for (const Time t : {0.0, 0.2, 0.5, 0.9, 1.0, 3.7}) {
    ctx.now_ = t;
    expect_kernel_matches_oracle(kernel, ctx, t + 4.0);
  }
}

TEST(SlackKernelSweep, OversizedTieGroupTakesTheFallbackAndStaysExact) {
  // 20 > kMaxGroup = 16 entries per checkpoint: the inline gather must
  // undo its partial active folds and defer to the out-of-line path.
  FakeContext ctx(grid_set(20));
  SlackKernel kernel;
  kernel.reset(ctx.task_set(), 0.0);
  for (const Time t : {0.0, 0.3, 0.5, 1.2, 2.0}) {
    ctx.now_ = t;
    ctx.clear_jobs();
    ctx.add_job(3, 0, 0.0);
    ctx.add_job(11, 0, 0.0, 0.004);
    expect_kernel_matches_oracle(kernel, ctx, t + 3.0);
  }
}

TEST(SlackKernelSweep, CompactionKeepsTheStreamExact) {
  // Ride one kernel far enough that the released prefix dominates and the
  // store compacts (start_ >= 64 needs > 64 releases); the stream must
  // stay exact before, across and after the compaction points.
  FakeContext ctx(grid_set(4));
  SlackKernel kernel;
  kernel.reset(ctx.task_set(), 0.0);
  for (Time t = 0.0; t < 30.0; t += 0.7) {
    ctx.now_ = t;
    expect_kernel_matches_oracle(kernel, ctx, t + 5.0);
  }
}

TEST(SlackKernelSweep, BackwardsTimeResetsAndStaysExact) {
  FakeContext ctx(trio_set());
  SlackKernel kernel;
  kernel.reset(ctx.task_set(), 0.0);
  for (const Time t : {0.0, 30.0, 5.0, 60.0, 2.0, 90.0}) {  // rewinds
    ctx.now_ = t;
    expect_kernel_matches_oracle(kernel, ctx, t + 50.0);
  }
}

TEST(SlackKernelSweep, SkipAheadBoundsAreSoundLowerBounds) {
  // The combined invariant sweep_slack() leans on (docs/ALGORITHMS.md):
  // after folding checkpoint k, every later checkpoint d' satisfies
  //   slack(d') >= min(slack_k - active_remaining_k,
  //                    suffix_min_c_k - t - active_total)
  // — the gap bound covers active-only checkpoints before the next store
  // entry, the suffix bound everything at or past one.  Fold the stream
  // by hand, record the advertised bounds after every checkpoint, and
  // check each later checkpoint within the frontier against all of them.
  FakeContext ctx(trio_set());
  SlackKernel kernel;
  kernel.reset(ctx.task_set(), 0.0);
  ctx.now_ = 3.0;
  ctx.add_job(0, 0, 0.0, 1.0);
  const Work backlog = backlog_of(ctx);
  SlackKernel::Sweep sweep(kernel, ctx, 120.0, 0.0, backlog);
  EXPECT_TRUE(sweep.skip_exact());
  EXPECT_EQ(sweep.active_total(), backlog);

  struct Point {
    Time d;
    Time slack;
    double gap_bound;
    double suffix_bound;
    Time frontier;
  };
  std::vector<Point> stream;
  Time d = 0.0;
  Work w = 0.0;
  Work demand = 0.0;
  while (sweep.next(d, w)) {
    demand += w;
    const Time slack = d - ctx.now_ - demand;
    stream.push_back({d, slack, slack - sweep.active_remaining(),
                      sweep.suffix_min_c() - ctx.now_ - backlog,
                      sweep.frontier()});
  }
  ASSERT_GT(stream.size(), 4u);
  for (std::size_t k = 0; k + 1 < stream.size(); ++k) {
    const double bound = std::min(stream[k].gap_bound, stream[k].suffix_bound);
    for (std::size_t j = k + 1; j < stream.size(); ++j) {
      if (stream[j].d > stream[k].frontier) break;  // bound's coverage ends
      EXPECT_GE(stream[j].slack, bound - 1e-9)
          << "k=" << k << " d_k=" << stream[k].d << " d'=" << stream[j].d;
    }
  }
}

TEST(SlackKernelSweep, EnsureFrontierExtendsWithinTheSaneWindowOnly) {
  // ensure_frontier() must materialize up to reachable targets (and
  // report coverage) but refuse pathological jumps past 64 max-period
  // chunks — the U -> 1 crossover can sit arbitrarily far out and must
  // not trigger an unbounded store build.
  FakeContext ctx(trio_set());
  SlackKernel kernel;
  kernel.reset(ctx.task_set(), 0.0);
  ctx.now_ = 1.0;
  SlackKernel::Sweep sweep(kernel, ctx, 40.0, 0.0, 0.0);
  const Time near = ctx.now_ + 25.0;
  EXPECT_TRUE(sweep.ensure_frontier(near));
  EXPECT_GE(sweep.frontier(), near);
  // Max period in trio_set() bounds the chunk; anything past now + 64
  // chunks is out of the sane window regardless of the exact chunk value.
  Time max_period = 0.0;
  for (const auto& task : ctx.task_set()) {
    max_period = std::max(max_period, task.period);
  }
  const Time far = ctx.now_ + 65.0 * max_period + 1.0;
  EXPECT_FALSE(sweep.ensure_frontier(far));
  EXPECT_LT(sweep.frontier(), far);
  // The refusal must not have wedged the sweep: the stream still drains.
  Time d = 0.0;
  Work w = 0.0;
  int folds = 0;
  while (sweep.next(d, w)) ++folds;
  EXPECT_GT(folds, 0);
}

// ---------------------------------------------------------------------
// 3. Whole-simulation differentials: kernel vs legacy engines.

task::TaskSet random_set(double u, std::uint64_t seed, std::size_t n,
                         bool overload = false) {
  task::GeneratorConfig gen;
  gen.n_tasks = n;
  gen.total_utilization = u;
  gen.period_min = 0.01;
  gen.period_max = 0.12;
  gen.bcet_ratio = 0.2;
  gen.grid_fraction = 0.5;
  gen.allow_overload = overload;
  util::Rng rng(seed);
  return task::generate_task_set(gen, rng, "k" + std::to_string(seed));
}

sim::SimResult run_engine(const task::TaskSet& ts, const std::string& gov,
                          SweepEngine engine, std::uint64_t seed,
                          const degrade::DegradationConfig* dcfg = nullptr) {
  const auto workload = task::uniform_model(seed);
  sim::SimOptions opts;
  opts.length = 0.5;
  opts.record_jobs = true;
  opts.degradation = dcfg;
  const cpu::Processor proc = cpu::ideal_processor();
  if (gov == "lpSEH") {
    SlackTimeConfig cfg;
    cfg.engine = engine;
    SlackTimeGovernor g(cfg);
    return sim::simulate(ts, *workload, proc, g, opts);
  }
  if (gov == "laEDF") {
    LaEdfConfig cfg;
    cfg.engine = engine;
    LaEdfGovernor g(cfg);
    return sim::simulate(ts, *workload, proc, g, opts);
  }
  UniformSlackConfig cfg;
  cfg.engine = engine;
  UniformSlackGovernor g(cfg);
  return sim::simulate(ts, *workload, proc, g, opts);
}

TEST(SlackKernelDifferential, EnginesBitIdenticalStraddlingFullUtilization) {
  // U from comfortably feasible through exactly 1 into overload: the
  // skip-ahead's U < 1 gate, the truncated-horizon closure and the
  // overloaded zero-slack paths all get exercised.
  const double us[] = {0.85, 0.95, 1.0, 1.08};
  const char* govs[] = {"lpSEH", "laEDF", "uniformSlack"};
  for (const double u : us) {
    for (std::uint64_t i = 0; i < 3; ++i) {
      const std::uint64_t seed = util::hash_u64(0x51ac, i,
                                                static_cast<int>(u * 100));
      const task::TaskSet ts = random_set(u, seed, 6, u > 0.999);
      for (const char* gov : govs) {
        SCOPED_TRACE(std::string(gov) + " U=" + std::to_string(u) +
                     " seed=" + std::to_string(seed));
        const sim::SimResult kernel =
            run_engine(ts, gov, SweepEngine::kKernel, seed);
        const sim::SimResult cached =
            run_engine(ts, gov, SweepEngine::kLegacyCached, seed);
        const sim::SimResult scan =
            run_engine(ts, gov, SweepEngine::kLegacyScan, seed);
        exp::expect_same_result(kernel, scan);
        exp::expect_same_result(cached, scan);
      }
    }
  }
}

TEST(SlackKernelDifferential, MkSheddingStaysBitIdentical) {
  // Sustained overload with (m,k)-firm tasks and shedding on: skipped
  // jobs are never released, which the kernel's membership predicate must
  // treat exactly like the legacy cursors do.
  degrade::DegradationConfig dcfg;
  dcfg.enter_pressure = 1;
  for (std::uint64_t i = 0; i < 3; ++i) {
    const std::uint64_t seed = util::hash_u64(0xdeadf, i);
    task::TaskSet ts = random_set(1.15, seed, 6, true);
    ts = degrade::with_firmness(ts, 1, 2);
    for (const char* gov : {"lpSEH", "laEDF", "uniformSlack"}) {
      SCOPED_TRACE(std::string(gov) + " seed=" + std::to_string(seed));
      const sim::SimResult kernel =
          run_engine(ts, gov, SweepEngine::kKernel, seed, &dcfg);
      const sim::SimResult scan =
          run_engine(ts, gov, SweepEngine::kLegacyScan, seed, &dcfg);
      EXPECT_GT(kernel.jobs_skipped, 0);
      exp::expect_same_result(kernel, scan);
    }
  }
}

TEST(SlackKernelDifferential, PartitionedCoresKeepPerCoreKernelsExact) {
  // Each core owns its own governor instance — and hence its own kernel,
  // reset against the per-core subset in on_start.  The partitioned run
  // must be bit-identical across engines, core by core.
  const cpu::Processor proc = cpu::ideal_processor();
  for (const std::size_t m : {std::size_t{1}, std::size_t{2}}) {
    const std::uint64_t seed = util::hash_u64(0xc07e5, m);
    const task::TaskSet ts = random_set(0.8, seed, 6);
    mp::MpOptions mo;
    mo.n_cores = m;
    mo.heuristic = mp::PartitionHeuristic::kWorstFit;
    mo.length = 0.4;
    auto factory_for = [](SweepEngine engine) {
      return [engine] {
        SlackTimeConfig cfg;
        cfg.engine = engine;
        return sim::GovernorPtr(std::make_unique<SlackTimeGovernor>(cfg));
      };
    };
    const mp::MpResult kernel = mp::simulate_mp(
        ts, task::uniform_model(seed), proc,
        factory_for(SweepEngine::kKernel), mo);
    const mp::MpResult scan = mp::simulate_mp(
        ts, task::uniform_model(seed), proc,
        factory_for(SweepEngine::kLegacyScan), mo);
    exp::expect_same_mp(kernel, scan);
  }
}

TEST(SlackKernelDifferential, ThreadCountsDoNotPerturbKernelResults) {
  // The kernel is per-governor state and sweeps run inside one
  // simulation's thread; a parallel sweep must not change anything.
  exp::ExperimentConfig cfg = exp::default_config();
  cfg.governors = {"lpSEH", "laEDF", "uniformSlack"};
  cfg.seed = 99;
  cfg.replications = 2;
  cfg.sim_length = 0.25;
  cfg.keep_case_outcomes = true;
  auto sweep_with = [&](std::size_t n_threads) {
    exp::ExperimentConfig c = cfg;
    c.n_threads = n_threads;
    return exp::run_sweep(c, "U", {0.7, 0.95},
                          [](double u, std::size_t, std::uint64_t seed) {
                            return exp::Case{random_set(u, seed, 5),
                                             task::uniform_model(seed)};
                          });
  };
  const exp::SweepOutcome one = sweep_with(1);
  const exp::SweepOutcome two = sweep_with(2);
  const exp::SweepOutcome eight = sweep_with(8);
  exp::expect_same_sweep(one, two);
  exp::expect_same_sweep(one, eight);
}

// ---------------------------------------------------------------------
// 4. Steady-state allocation freedom.

TEST(SlackKernelAllocation, WarmKernelSweepsAllocateNothing) {
  // Pass 1 warms every buffer (store, tree, pending lists, scratch).
  // reset() drops the contents but keeps the capacity, so replaying the
  // identical monotone decision sequence must not allocate at all.
  FakeContext ctx(trio_set());
  SlackKernel kernel;
  auto pass = [&] {
    kernel.reset(ctx.task_set(), 0.0);
    for (Time t = 0.0; t < 60.0; t += 1.3) {
      ctx.now_ = t;
      ctx.clear_jobs();
      ctx.add_job(0, 0, 0.0);
      const Work backlog = backlog_of(ctx);
      SlackKernel::Sweep sweep(kernel, ctx, t + 80.0, 0.0, backlog);
      Time d = 0.0;
      Work w = 0.0;
      while (sweep.next(d, w)) {
      }
    }
  };
  pass();  // warm
  // FakeContext::active_jobs reallocates its own scratch lazily; warm it
  // too, then measure the kernel-only replay.
  const std::uint64_t before = g_new_calls.load(std::memory_order_relaxed);
  pass();  // steady state
  const std::uint64_t after = g_new_calls.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " allocations in a warm kernel replay";
}

}  // namespace
}  // namespace dvs::core
