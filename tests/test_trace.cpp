#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/no_dvs.hpp"
#include "sim/simulator.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"

namespace dvs::sim {
namespace {

TEST(VectorTrace, MergesAdjacentSegmentsOfSameStream) {
  VectorTrace t;
  t.segment({0.0, 1.0, SegmentKind::kBusy, 0, 0, 0.5});
  t.segment({1.0, 2.0, SegmentKind::kBusy, 0, 0, 0.5});
  ASSERT_EQ(t.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(t.segments().front().end, 2.0);
}

TEST(VectorTrace, KeepsDistinctStreamsApart) {
  VectorTrace t;
  t.segment({0.0, 1.0, SegmentKind::kBusy, 0, 0, 0.5});
  t.segment({1.0, 2.0, SegmentKind::kBusy, 0, 0, 1.0});  // speed change
  t.segment({2.0, 3.0, SegmentKind::kBusy, 1, 0, 1.0});  // task change
  t.segment({3.0, 4.0, SegmentKind::kIdle, -1, -1, 0.0});
  EXPECT_EQ(t.segments().size(), 4u);
}

TEST(VectorTrace, DropsZeroLengthSegments) {
  VectorTrace t;
  t.segment({1.0, 1.0, SegmentKind::kIdle, -1, -1, 0.0});
  EXPECT_TRUE(t.segments().empty());
}

TEST(VectorTrace, RecordsEvents) {
  VectorTrace t;
  t.event({TraceEvent::Kind::kRelease, 0.5, 2, 3});
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_EQ(t.events().front().task_id, 2);
}

TEST(Gantt, RendersOneRowPerTaskPlusIdle) {
  task::TaskSet ts("two");
  ts.add(task::make_task(0, "alpha", 10.0, 2.0));
  ts.add(task::make_task(1, "beta", 20.0, 4.0));
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  core::NoDvsGovernor g;
  VectorTrace trace;
  SimOptions opts;
  opts.length = 20.0;
  opts.trace = &trace;
  (void)simulate(ts, *workload, proc, g, opts);

  std::ostringstream os;
  render_gantt(trace, ts, 0.0, 20.0, os, 80);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("idle"), std::string::npos);
  EXPECT_NE(out.find('F'), std::string::npos);  // full-speed marker
}

TEST(Gantt, RejectsEmptyWindow) {
  VectorTrace trace;
  task::TaskSet ts("one");
  ts.add(task::make_task(0, "a", 1.0, 0.1));
  std::ostringstream os;
  EXPECT_THROW(render_gantt(trace, ts, 1.0, 1.0, os), util::ContractError);
}

TEST(TraceCsv, HeaderAndRows) {
  VectorTrace t;
  t.segment({0.0, 1.0, SegmentKind::kBusy, 0, 0, 0.5});
  t.segment({1.0, 2.0, SegmentKind::kIdle, -1, -1, 0.0});
  std::ostringstream os;
  write_trace_csv(t, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("begin,end,kind,task,job,alpha"), std::string::npos);
  EXPECT_NE(out.find("busy"), std::string::npos);
  EXPECT_NE(out.find("idle"), std::string::npos);
}

TEST(Gantt, BusySegmentsLandOnTheRightRow) {
  task::TaskSet ts("two");
  ts.add(task::make_task(0, "first", 10.0, 2.0));
  ts.add(task::make_task(1, "second", 10.0, 2.0));
  VectorTrace trace;
  trace.segment({0.0, 5.0, SegmentKind::kBusy, 1, 0, 1.0});
  std::ostringstream os;
  render_gantt(trace, ts, 0.0, 10.0, os, 20);
  std::string line;
  std::istringstream is(os.str());
  std::getline(is, line);  // row of task 0
  EXPECT_EQ(line.find('F'), std::string::npos);
  std::getline(is, line);  // row of task 1
  EXPECT_NE(line.find('F'), std::string::npos);
}

}  // namespace
}  // namespace dvs::sim
