// Golden-text tests for the trace renderers: the exact ASCII Gantt and
// CSV bytes for a hand-built trace, pinning column mapping, speed marks,
// label padding and number formatting.  A deliberate change to either
// format should update these strings consciously.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.hpp"
#include "task/task.hpp"
#include "task/task_set.hpp"

namespace dvs::sim {
namespace {

/// Two tasks, five segments; the transition at [1, 1.25) splits task a's
/// job 0 into two half-speed chunks that must NOT merge across it even
/// though stream identity (task, job, alpha) matches.
VectorTrace golden_trace() {
  VectorTrace t;
  t.segment({0.0, 1.0, SegmentKind::kBusy, 0, 0, 0.5});
  t.segment({1.0, 1.25, SegmentKind::kTransition, -1, -1, 0.0});
  t.segment({1.25, 2.0, SegmentKind::kBusy, 0, 0, 0.5});
  t.segment({2.0, 3.0, SegmentKind::kBusy, 1, 0, 1.0});
  t.segment({3.0, 4.0, SegmentKind::kIdle, -1, -1, 0.0});
  return t;
}

task::TaskSet golden_task_set() {
  task::TaskSet ts("golden");
  ts.add(task::make_task(0, "a", 10.0, 2.0));
  ts.add(task::make_task(1, "b", 10.0, 2.0));
  return ts;
}

TEST(VectorTrace, NeverMergesAcrossATransition) {
  const VectorTrace t = golden_trace();
  ASSERT_EQ(t.segments().size(), 5u);
  EXPECT_EQ(t.segments()[1].kind, SegmentKind::kTransition);
  // The two busy chunks of (task 0, job 0, alpha 0.5) stayed separate.
  EXPECT_DOUBLE_EQ(t.segments()[0].end, 1.0);
  EXPECT_DOUBLE_EQ(t.segments()[2].begin, 1.25);
}

TEST(GanttGolden, RendersExactly) {
  std::ostringstream os;
  render_gantt(golden_trace(), golden_task_set(), 0.0, 4.0, os, 16);
  // 16 columns over [0, 4): one column per 0.25 s.  '5' = alpha 0.5,
  // 'F' = full speed, 'x' = transition, '.' = idle.
  const std::string expected =
      "a    |5555 555        |\n"
      "b    |        FFFF    |\n"
      "idle |    x       ....|\n"
      "     ^0.000s ... 4.000s"
      "  (digits = alpha*10, F = full speed, x = transition)\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(TraceCsvGolden, WritesExactly) {
  std::ostringstream os;
  write_trace_csv(golden_trace(), os);
  const std::string expected =
      "begin,end,kind,task,job,alpha\n"
      "0.000000000,1.000000000,busy,0,0,0.500000\n"
      "1.000000000,1.250000000,transition,-1,-1,0.000000\n"
      "1.250000000,2.000000000,busy,0,0,0.500000\n"
      "2.000000000,3.000000000,busy,1,0,1.000000\n"
      "3.000000000,4.000000000,idle,-1,-1,0.000000\n";
  EXPECT_EQ(os.str(), expected);
}

}  // namespace
}  // namespace dvs::sim
