// The writer half of the JSON layer (obs/json_writer.hpp): escaping,
// shortest round-trip number printing, JsonValue serialization, and the
// streaming JsonWriter state machine — including its misuse contracts.
// The load-bearing property is the fuzz round-trip: any JsonValue the
// model can represent must survive write_json -> parse_json unchanged,
// because the svc daemon answers queries with exactly this writer and
// clients re-parse the bytes with exactly this parser.
#include "obs/json_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "obs/json_mini.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dvs::obs {
namespace {

using util::ContractError;

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\0b", 3)), "a\\u0000b");
  EXPECT_EQ(json_escape("\x01\x1f"), "\\u0001\\u001f");
}

TEST(JsonEscape, PassesUtf8Through) {
  // Multi-byte sequences are >= 0x80 per byte; they must survive verbatim.
  const std::string utf8 = "τé";
  EXPECT_EQ(json_escape(utf8), utf8);
}

TEST(JsonNumber, IntegersPrintWithoutNoise) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.0), "1");
  EXPECT_EQ(json_number(-3.0), "-3");
  EXPECT_EQ(json_number(1048576.0), "1048576");
}

TEST(JsonNumber, RoundTripsAwkwardDoubles) {
  const double cases[] = {0.1,
                          1.0 / 3.0,
                          0.005,
                          1e-9,
                          6.62607015e-34,
                          1.7976931348623157e308,  // DBL_MAX
                          5e-324,                  // smallest denormal
                          -0.0,
                          9.419999999999999e21};
  for (const double v : cases) {
    const std::string s = json_number(v);
    const double back = std::strtod(s.c_str(), nullptr);
    EXPECT_EQ(back, v) << "printed as " << s;
    // And through the real parser, not just strtod.
    EXPECT_EQ(parse_json(s).number, v) << s;
  }
}

TEST(JsonNumber, RejectsNonFinite) {
  EXPECT_THROW((void)json_number(std::numeric_limits<double>::quiet_NaN()),
               ContractError);
  EXPECT_THROW((void)json_number(std::numeric_limits<double>::infinity()),
               ContractError);
  EXPECT_THROW((void)json_number(-std::numeric_limits<double>::infinity()),
               ContractError);
}

// ---------------------------------------------------------------------------
// write_json round-trip
// ---------------------------------------------------------------------------

/// Structural equality; JsonValue has no operator== on purpose (the
/// production code never compares trees), so the test defines the notion.
bool deep_equal(const JsonValue& a, const JsonValue& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case JsonValue::Kind::kNull:
      return true;
    case JsonValue::Kind::kBool:
      return a.boolean == b.boolean;
    case JsonValue::Kind::kNumber:
      // Bit equality, not ==: -0.0 must round-trip as -0.0.
      return std::signbit(a.number) == std::signbit(b.number) &&
             a.number == b.number;
    case JsonValue::Kind::kString:
      return a.string == b.string;
    case JsonValue::Kind::kArray: {
      if (a.array.size() != b.array.size()) return false;
      for (std::size_t i = 0; i < a.array.size(); ++i) {
        if (!deep_equal(a.array[i], b.array[i])) return false;
      }
      return true;
    }
    case JsonValue::Kind::kObject: {
      if (a.object.size() != b.object.size()) return false;
      for (std::size_t i = 0; i < a.object.size(); ++i) {
        if (a.object[i].first != b.object[i].first) return false;
        if (!deep_equal(a.object[i].second, b.object[i].second)) return false;
      }
      return true;
    }
  }
  return false;
}

JsonValue random_value(util::Rng& rng, int depth) {
  JsonValue v;
  // Leaves only once deep enough; containers are likelier near the root.
  const std::int64_t pick = rng.uniform_int(0, depth >= 4 ? 3 : 5);
  switch (pick) {
    case 0:
      v.kind = JsonValue::Kind::kNull;
      break;
    case 1:
      v.kind = JsonValue::Kind::kBool;
      v.boolean = rng.unit() < 0.5;
      break;
    case 2: {
      v.kind = JsonValue::Kind::kNumber;
      // Mix exact integers with wide-magnitude continuous draws.
      if (rng.unit() < 0.4) {
        v.number = static_cast<double>(rng.uniform_int(-1000000, 1000000));
      } else {
        v.number = rng.uniform(-1.0, 1.0) *
                   std::pow(10.0, static_cast<double>(rng.uniform_int(-300, 300)));
      }
      break;
    }
    case 3: {
      v.kind = JsonValue::Kind::kString;
      const std::int64_t len = rng.uniform_int(0, 24);
      for (std::int64_t i = 0; i < len; ++i) {
        // Full byte range below 0x80, including controls, quotes, slashes.
        v.string.push_back(static_cast<char>(rng.uniform_int(0, 127)));
      }
      break;
    }
    case 4: {
      v.kind = JsonValue::Kind::kArray;
      const std::int64_t n = rng.uniform_int(0, 6);
      for (std::int64_t i = 0; i < n; ++i) {
        v.array.push_back(random_value(rng, depth + 1));
      }
      break;
    }
    default: {
      v.kind = JsonValue::Kind::kObject;
      const std::int64_t n = rng.uniform_int(0, 6);
      for (std::int64_t i = 0; i < n; ++i) {
        // Distinct keys by construction: the parser rejects duplicates.
        v.object.emplace_back("k" + std::to_string(i) +
                                  std::string(1, static_cast<char>(
                                                     rng.uniform_int(97, 122))),
                              random_value(rng, depth + 1));
      }
      break;
    }
  }
  return v;
}

TEST(WriteJson, SerializesTheKitchenSink) {
  JsonValue doc;
  doc.kind = JsonValue::Kind::kObject;
  JsonValue arr;
  arr.kind = JsonValue::Kind::kArray;
  JsonValue num;
  num.kind = JsonValue::Kind::kNumber;
  num.number = 0.25;
  JsonValue str;
  str.kind = JsonValue::Kind::kString;
  str.string = "a\"b\n";
  arr.array = {num, str, JsonValue{}};
  JsonValue t;
  t.kind = JsonValue::Kind::kBool;
  t.boolean = true;
  doc.object.emplace_back("items", arr);
  doc.object.emplace_back("ok", t);
  EXPECT_EQ(write_json(doc), "{\"items\":[0.25,\"a\\\"b\\n\",null],\"ok\":true}");
}

TEST(WriteJson, FuzzRoundTripIsExact) {
  // Seeded, deterministic "fuzz": 300 random trees, each must reparse to a
  // structurally identical tree (numbers bit-exact, key order preserved).
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    util::Rng rng(seed);
    const JsonValue original = random_value(rng, 0);
    const std::string text = write_json(original);
    JsonValue back;
    ASSERT_NO_THROW(back = parse_json(text)) << "seed " << seed << ": " << text;
    EXPECT_TRUE(deep_equal(original, back)) << "seed " << seed << ": " << text;
    // Serializing the reparsed tree reproduces the bytes — the format is a
    // fixed point, which is what makes batch-vs-single byte comparisons in
    // the service meaningful.
    EXPECT_EQ(write_json(back), text) << "seed " << seed;
  }
}

TEST(WriteJson, RejectsNonFiniteNumbers) {
  JsonValue v;
  v.kind = JsonValue::Kind::kNumber;
  v.number = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)write_json(v), ContractError);
}

// ---------------------------------------------------------------------------
// JsonWriter streaming state machine
// ---------------------------------------------------------------------------

TEST(JsonWriterStream, BuildsCompactDocuments) {
  std::string out;
  JsonWriter w(out);
  w.begin_object()
      .kv("op", "admit")
      .kv("cores", 4)
      .key("utilization")
      .value(0.875)
      .key("tags")
      .begin_array()
      .value("edf")
      .value(true)
      .null()
      .end_array()
      .end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(out,
            "{\"op\":\"admit\",\"cores\":4,\"utilization\":0.875,"
            "\"tags\":[\"edf\",true,null]}");
  // And the parser takes it back.
  EXPECT_NO_THROW((void)parse_json(out));
}

TEST(JsonWriterStream, TopLevelScalarIsADocument) {
  std::string out;
  JsonWriter w(out);
  w.value(42);
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(out, "42");
}

TEST(JsonWriterStream, RawSplicesVerbatim) {
  std::string inner;
  JsonWriter wi(inner);
  wi.begin_object().kv("ok", true).end_object();
  std::string out;
  JsonWriter w(out);
  w.begin_array().raw(inner).value(1).end_array();
  EXPECT_EQ(out, "[{\"ok\":true},1]");
}

TEST(JsonWriterStream, ResetReusesTheBuffer) {
  std::string out;
  JsonWriter w(out);
  w.begin_object().kv("n", 1).end_object();
  EXPECT_TRUE(w.complete());
  out.clear();
  w.reset();
  EXPECT_FALSE(w.complete());
  w.begin_array().end_array();
  EXPECT_EQ(out, "[]");
  EXPECT_TRUE(w.complete());
}

TEST(JsonWriterStream, MisuseThrowsInsteadOfEmittingGarbage) {
  {  // key at top level
    std::string out;
    JsonWriter w(out);
    EXPECT_THROW(w.key("k"), ContractError);
  }
  {  // key inside an array
    std::string out;
    JsonWriter w(out);
    w.begin_array();
    EXPECT_THROW(w.key("k"), ContractError);
  }
  {  // bare value where a key is required
    std::string out;
    JsonWriter w(out);
    w.begin_object();
    EXPECT_THROW(w.value(1), ContractError);
  }
  {  // two keys in a row
    std::string out;
    JsonWriter w(out);
    w.begin_object().key("a");
    EXPECT_THROW(w.key("b"), ContractError);
  }
  {  // end_array closing an object
    std::string out;
    JsonWriter w(out);
    w.begin_object();
    EXPECT_THROW(w.end_array(), ContractError);
  }
  {  // end_object with a dangling key
    std::string out;
    JsonWriter w(out);
    w.begin_object().key("a");
    EXPECT_THROW(w.end_object(), ContractError);
  }
  {  // unbalanced end at top level
    std::string out;
    JsonWriter w(out);
    EXPECT_THROW(w.end_object(), ContractError);
  }
  {  // second top-level value
    std::string out;
    JsonWriter w(out);
    w.value(1);
    EXPECT_THROW(w.value(2), ContractError);
  }
  {  // non-finite number
    std::string out;
    JsonWriter w(out);
    EXPECT_THROW(w.value(std::numeric_limits<double>::quiet_NaN()),
                 ContractError);
  }
}

}  // namespace
}  // namespace dvs::obs
