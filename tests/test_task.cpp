#include "task/task.hpp"

#include <gtest/gtest.h>

#include "task/task_set.hpp"
#include "util/error.hpp"

namespace dvs::task {
namespace {

using util::ContractError;

TEST(Task, MakeTaskDefaults) {
  const Task t = make_task(0, "t", 0.1, 0.02);
  EXPECT_DOUBLE_EQ(t.period, 0.1);
  EXPECT_DOUBLE_EQ(t.deadline, 0.1);  // implicit deadline
  EXPECT_DOUBLE_EQ(t.wcet, 0.02);
  EXPECT_DOUBLE_EQ(t.bcet, 0.02);  // bcet defaults to wcet
  EXPECT_DOUBLE_EQ(t.phase, 0.0);
  EXPECT_DOUBLE_EQ(t.utilization(), 0.2);
  EXPECT_DOUBLE_EQ(t.density(), 0.2);
}

TEST(Task, ReleaseAndDeadlineArithmetic) {
  Task t = make_task(0, "t", 0.25, 0.05);
  t.phase = 1.0;
  EXPECT_DOUBLE_EQ(t.release_of(0), 1.0);
  EXPECT_DOUBLE_EQ(t.release_of(4), 2.0);
  EXPECT_DOUBLE_EQ(t.deadline_of(0), 1.25);
}

TEST(Task, FirstJobAtOrAfter) {
  const Task t = make_task(0, "t", 0.5, 0.1);
  EXPECT_EQ(t.first_job_at_or_after(0.0), 0);
  EXPECT_EQ(t.first_job_at_or_after(0.49), 1);
  EXPECT_EQ(t.first_job_at_or_after(0.5), 1);  // release at exactly 0.5
  EXPECT_EQ(t.first_job_at_or_after(0.5 + 1e-6), 2);
  EXPECT_EQ(t.first_job_at_or_after(-3.0), 0);
}

TEST(Task, ValidateRejectsBadFields) {
  Task t = make_task(0, "t", 0.1, 0.02);
  t.period = 0.0;
  EXPECT_THROW(t.validate(), ContractError);
  t = make_task(0, "t", 0.1, 0.02);
  t.deadline = 0.2;  // D > T
  EXPECT_THROW(t.validate(), ContractError);
  t = make_task(0, "t", 0.1, 0.02);
  t.wcet = 0.2;  // C > D
  EXPECT_THROW(t.validate(), ContractError);
  t = make_task(0, "t", 0.1, 0.02);
  t.bcet = 0.05;  // B > C
  EXPECT_THROW(t.validate(), ContractError);
  t = make_task(0, "t", 0.1, 0.02);
  t.phase = -1.0;
  EXPECT_THROW(t.validate(), ContractError);
}

TEST(Task, FirmnessDefaultsHardAndValidates) {
  Task t = make_task(0, "t", 0.1, 0.02);
  EXPECT_EQ(t.mk_m, 1);
  EXPECT_EQ(t.mk_k, 1);
  EXPECT_TRUE(t.is_hard());

  t.mk_m = 2;
  t.mk_k = 5;  // (2,5)-firm
  EXPECT_FALSE(t.is_hard());
  EXPECT_NO_THROW(t.validate());

  t.mk_m = 0;  // m < 1
  EXPECT_THROW(t.validate(), ContractError);
  t.mk_m = 6;  // m > k
  t.mk_k = 5;
  EXPECT_THROW(t.validate(), ContractError);
}

TEST(TaskSet, AddRewritesIds) {
  TaskSet ts("s");
  ts.add(make_task(99, "a", 0.1, 0.01));
  ts.add(make_task(-5, "b", 0.2, 0.02));
  EXPECT_EQ(ts[0].id, 0);
  EXPECT_EQ(ts[1].id, 1);
  EXPECT_NO_THROW(ts.validate());
}

TEST(TaskSet, UtilizationSumsShares) {
  TaskSet ts("s");
  ts.add(make_task(0, "a", 0.1, 0.02));   // 0.2
  ts.add(make_task(1, "b", 0.2, 0.05));   // 0.25
  EXPECT_NEAR(ts.utilization(), 0.45, 1e-12);
  EXPECT_NEAR(ts.density(), 0.45, 1e-12);
}

TEST(TaskSet, MinMaxHelpers) {
  TaskSet ts("s");
  ts.add(make_task(0, "a", 0.1, 0.02));
  ts.add(make_task(1, "b", 0.4, 0.05));
  EXPECT_DOUBLE_EQ(ts.min_period(), 0.1);
  EXPECT_DOUBLE_EQ(ts.max_period(), 0.4);
  EXPECT_DOUBLE_EQ(ts.max_wcet(), 0.05);
}

TEST(TaskSet, HyperperiodOfCommensuratePeriods) {
  TaskSet ts("s");
  ts.add(make_task(0, "a", 0.0025, 0.001));  // 2.5 ms
  ts.add(make_task(1, "b", 0.04, 0.004));    // 40 ms
  ts.add(make_task(2, "c", 0.0625, 0.006));  // 62.5 ms
  const auto h = ts.hyperperiod();
  ASSERT_TRUE(h.has_value());
  EXPECT_NEAR(*h, 1.0, 1e-9);  // lcm(2.5, 40, 62.5) ms = 1000 ms
}

TEST(TaskSet, HyperperiodUnavailableForIrrationalRatios) {
  TaskSet ts("s");
  ts.add(make_task(0, "a", 0.1, 0.01));
  ts.add(make_task(1, "b", 0.1 * 1.0001234567, 0.01));
  // A period that needs more than 1e6 decimal scaling cannot be expressed.
  EXPECT_FALSE(ts.hyperperiod().has_value());
}

TEST(TaskSet, DefaultSimLengthBounded) {
  TaskSet ts("s");
  ts.add(make_task(0, "a", 0.01, 0.001));
  ts.add(make_task(1, "b", 0.02, 0.002));
  const Time len = ts.default_sim_length();
  EXPECT_GE(len, ts.max_period());
  EXPECT_LE(len, 64.0 * ts.max_period() + 1e-9);
}

TEST(TaskSet, EmptyQueriesThrow) {
  TaskSet ts;
  EXPECT_THROW((void)ts.max_period(), ContractError);
  EXPECT_THROW((void)ts.default_sim_length(), ContractError);
}

TEST(TimeHelpers, ToleranceSemantics) {
  EXPECT_TRUE(time_eq(1.0, 1.0 + 0.5 * kTimeEps));
  EXPECT_TRUE(time_less(1.0, 1.0 + 2.0 * kTimeEps));
  EXPECT_FALSE(time_less(1.0, 1.0 + 0.5 * kTimeEps));
  EXPECT_TRUE(time_leq(1.0 + 0.5 * kTimeEps, 1.0));
  EXPECT_DOUBLE_EQ(snap_nonnegative(-0.5 * kTimeEps), 0.0);
  EXPECT_LT(snap_nonnegative(-1.0), 0.0);
}

}  // namespace
}  // namespace dvs::task
