#include "core/slack_time.hpp"

#include <gtest/gtest.h>

#include "fake_context.hpp"
#include "sim/simulator.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"

namespace dvs::core {
namespace {

using task::make_task;
using task::TaskSet;
using dvs::testing::FakeContext;

TEST(SlackTime, LoneJobGetsDeadlineMinusDemand) {
  TaskSet ts("one");
  ts.add(make_task(0, "a", 10.0, 4.0));
  FakeContext ctx(std::move(ts));
  auto& job = ctx.add_job(0, 0, 0.0);
  SlackTimeGovernor g;
  g.on_start(ctx);
  // slack(10) = 10 - 4 = 6 is the binding checkpoint
  // (slack(20) = 20 - 8 = 12 is looser); alpha = 4 / (4 + 6) = 0.4.
  EXPECT_NEAR(g.select_speed(job, ctx), 0.4, 1e-9);
  EXPECT_NEAR(g.last_slack(), 6.0, 1e-9);
}

TEST(SlackTime, LaterCheckpointCanBind) {
  // Hand-verified scenario: J = task a (C=2, T=20) runs alone at t=0;
  // task b (C=6, T=10, phase 5) floods the window after J's deadline.
  //   slack(20) = 20 - (2 + 6)          = 12
  //   slack(25) = 25 - (2 + 6 + 6)      = 11   <- binding
  //   slack(35) = 35 - (2 + 18)         = 15
  //   slack(40) = 40 - (2 + 2 + 18)     = 18
  // Stretching J by 12 would finish b's second job at 26 > 25; by 11 it
  // completes exactly at 25.  The exact sweep must find 11.
  TaskSet ts("two");
  ts.add(make_task(0, "a", 20.0, 2.0));
  auto b = make_task(1, "b", 10.0, 6.0);
  b.phase = 5.0;
  ts.add(b);
  FakeContext ctx(std::move(ts));
  auto& job = ctx.add_job(0, 0, 0.0);
  SlackTimeGovernor g;
  g.on_start(ctx);
  const double alpha = g.select_speed(job, ctx);
  EXPECT_NEAR(g.last_slack(), 11.0, 1e-9);
  EXPECT_NEAR(alpha, 2.0 / 13.0, 1e-9);
}

TEST(SlackTime, ZeroSlackAtFullUtilizationWorstCase) {
  TaskSet ts("full");
  ts.add(make_task(0, "a", 10.0, 5.0));
  ts.add(make_task(1, "b", 10.0, 5.0));
  FakeContext ctx(std::move(ts));
  auto& j0 = ctx.add_job(0, 0, 0.0);
  ctx.add_job(1, 0, 0.0);
  SlackTimeGovernor g;
  g.on_start(ctx);
  EXPECT_DOUBLE_EQ(g.select_speed(j0, ctx), 1.0);
  EXPECT_DOUBLE_EQ(g.last_slack(), 0.0);
}

TEST(SlackTime, EarlyCompletionIsReclaimed) {
  TaskSet ts("two");
  ts.add(make_task(0, "a", 10.0, 4.0));
  ts.add(make_task(1, "b", 10.0, 4.0));
  FakeContext ctx(std::move(ts));
  SlackTimeGovernor g;
  g.on_start(ctx);

  // Both active: demand(10) = 8 -> slack 2 for the head job.
  auto& j0 = ctx.add_job(0, 0, 0.0);
  ctx.add_job(1, 0, 0.0);
  (void)g.select_speed(j0, ctx);
  EXPECT_NEAR(g.last_slack(), 2.0, 1e-9);

  // Task 0's job turns out to need only 1 unit: once it is gone, the
  // remaining job sees demand(10) = 4 + nothing -> slack grows to 5.
  ctx.clear_jobs();
  auto& j1 = ctx.add_job(1, 0, 0.0);
  ctx.now_ = 1.0;
  (void)g.select_speed(j1, ctx);
  EXPECT_NEAR(g.last_slack(), 5.0, 1e-9);
}

TEST(SlackTime, MidExecutionUsesRemainingBudget) {
  TaskSet ts("one");
  ts.add(make_task(0, "a", 10.0, 4.0));
  FakeContext ctx(std::move(ts));
  auto& job = ctx.add_job(0, 0, 0.0, /*executed=*/3.0);
  ctx.now_ = 3.0;
  SlackTimeGovernor g;
  g.on_start(ctx);
  // rem = 1, slack(10) = 7 - 0 ... demand(3,10) = 1 -> slack = 6.
  (void)g.select_speed(job, ctx);
  EXPECT_NEAR(g.last_slack(), 6.0, 1e-9);
}

TEST(SlackTime, HeuristicIsNeverMoreOptimisticThanExact) {
  TaskSet ts("three");
  ts.add(make_task(0, "a", 0.05, 0.012));
  ts.add(make_task(1, "b", 0.08, 0.02));
  ts.add(make_task(2, "c", 0.2, 0.05));
  SlackTimeConfig heuristic_cfg;
  heuristic_cfg.mode = SlackTimeConfig::Mode::kHeuristic;
  heuristic_cfg.heuristic_checkpoints = 2;

  for (Time now : {0.0, 0.013, 0.027}) {
    FakeContext ctx(ts);
    ctx.now_ = now;
    auto& job = ctx.add_job(0, 0, now);
    ctx.add_job(1, 0, 0.0);
    SlackTimeGovernor exact;
    SlackTimeGovernor heuristic(heuristic_cfg);
    exact.on_start(ctx);
    heuristic.on_start(ctx);
    const double a_exact = exact.select_speed(job, ctx);
    const double a_heur = heuristic.select_speed(job, ctx);
    EXPECT_GE(a_heur, a_exact - 1e-12) << "at t = " << now;
    EXPECT_LE(heuristic.last_slack(), exact.last_slack() + 1e-12);
  }
}

TEST(SlackTime, SwitchOverheadShrinksSlack) {
  TaskSet ts("one");
  ts.add(make_task(0, "a", 10.0, 4.0));
  SlackTimeConfig with_overhead;
  with_overhead.switch_overhead = 0.5;

  FakeContext ctx(std::move(ts));
  auto& job = ctx.add_job(0, 0, 0.0);
  SlackTimeGovernor plain;
  SlackTimeGovernor charged(with_overhead);
  plain.on_start(ctx);
  charged.on_start(ctx);
  const double a_plain = plain.select_speed(job, ctx);
  const double a_charged = charged.select_speed(job, ctx);
  EXPECT_GT(a_charged, a_plain);
  // Demand gains 2 stalls for the job itself + 2 for the decision: slack
  // drops from 6 to 6 - 2 = 4 at the d0 checkpoint... the job's own two
  // stalls also count: 6 - (2*0.5 + 2*0.5) = 4.
  EXPECT_NEAR(charged.last_slack(), 4.0, 1e-9);
}

TEST(SlackTime, NamesDistinguishModes) {
  SlackTimeConfig cfg;
  EXPECT_EQ(SlackTimeGovernor{}.name(), "lpSEH");
  cfg.mode = SlackTimeConfig::Mode::kHeuristic;
  EXPECT_EQ(SlackTimeGovernor{cfg}.name(), "lpSEH-h");
}

TEST(SlackTime, RejectsBadConfig) {
  SlackTimeConfig cfg;
  cfg.heuristic_checkpoints = 0;
  EXPECT_THROW((void)SlackTimeGovernor{cfg}, util::ContractError);
  cfg = {};
  cfg.fallback_horizon_periods = 0.5;
  EXPECT_THROW((void)SlackTimeGovernor{cfg}, util::ContractError);
  cfg = {};
  cfg.switch_overhead = -1.0;
  EXPECT_THROW((void)SlackTimeGovernor{cfg}, util::ContractError);
}

TEST(SlackTime, WorstCaseWorkloadStillMeetsEverything) {
  TaskSet ts("tight");
  ts.add(make_task(0, "a", 0.01, 0.004));
  ts.add(make_task(1, "b", 0.02, 0.006));
  ts.add(make_task(2, "c", 0.05, 0.015));  // U = 1.0 exactly
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  SlackTimeGovernor g;
  sim::SimOptions opts;
  opts.length = 2.0;
  const auto r = sim::simulate(ts, *workload, proc, g, opts);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_NEAR(r.average_speed, 1.0, 1e-6);  // no slack exists at U = 1
}

TEST(SlackTime, BeatsStaticOnLightWorkloads) {
  TaskSet ts("light");
  ts.add(make_task(0, "a", 0.01, 0.003, 0.0003));
  ts.add(make_task(1, "b", 0.04, 0.012, 0.0012));
  const auto workload = task::constant_ratio_model(0.2);
  const cpu::Processor proc = cpu::ideal_processor();
  sim::SimOptions opts;
  opts.length = 2.0;
  SlackTimeGovernor seh;
  const auto r = sim::simulate(ts, *workload, proc, seh, opts);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_LT(r.average_speed, ts.utilization());
}

}  // namespace
}  // namespace dvs::core
