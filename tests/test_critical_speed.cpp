#include "core/critical_speed.hpp"

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "core/slack_time.hpp"
#include "fake_context.hpp"
#include "sim/simulator.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"

namespace dvs::core {
namespace {

using task::make_task;
using task::TaskSet;
using dvs::testing::FakeContext;

TEST(CriticalSpeed, ZeroIdlePowerMeansNoFloor) {
  // With no idle draw, cost (alpha^3)/alpha = alpha^2 is minimized at the
  // lowest speed: the critical speed collapses to (almost) zero.
  const auto pm = cpu::cubic_power_model(0.0);
  EXPECT_LT(critical_speed(*pm), 0.01);
}

TEST(CriticalSpeed, MatchesClosedFormForCubicModel) {
  // cost(alpha) = (alpha^3 - i)/alpha = alpha^2 - i/alpha;
  // d/dalpha = 2 alpha + i/alpha^2 = 0 has no positive root — cost is
  // increasing, so with the displaced-idle formulation the minimum is at
  // alpha -> 0?  No: for alpha below i^(1/3), busy power is *below* idle
  // power and cost is negative and decreasing toward... evaluate:
  // cost'(alpha) = 2 alpha + i/alpha^2 > 0 for alpha > 0, so cost is
  // strictly increasing and the argmin is the lower boundary.
  // The meaningful check: the numeric result sits at the boundary.
  const auto pm = cpu::cubic_power_model(0.05);
  EXPECT_LT(critical_speed(*pm), 0.01);
}

TEST(CriticalSpeed, TableModelWithFlatLowEndHasRealFloor) {
  // Real processors burn near-constant voltage at their low operating
  // points, so (P(alpha) - idle)/alpha genuinely rises again below some
  // speed.  Build such a model: power barely drops below alpha = 0.4.
  const auto pm = cpu::table_power_model("flatlow",
                                         {
                                             {0.2, 1.00, 300.0},
                                             {0.4, 1.05, 380.0},
                                             {0.7, 1.40, 800.0},
                                             {1.0, 1.80, 1600.0},
                                         },
                                         /*idle_fraction=*/0.02);
  const double crit = critical_speed(*pm);
  EXPECT_GT(crit, 0.3);
  EXPECT_LT(crit, 0.8);
}

TEST(CriticalSpeedGovernor, ClampsFromBelowOnly) {
  TaskSet ts("one");
  ts.add(make_task(0, "a", 10.0, 4.0));
  FakeContext ctx(std::move(ts));
  auto& job = ctx.add_job(0, 0, 0.0);

  const auto pm = cpu::table_power_model("flatlow",
                                         {
                                             {0.2, 1.00, 300.0},
                                             {0.4, 1.05, 380.0},
                                             {1.0, 1.80, 1600.0},
                                         },
                                         0.02);
  CriticalSpeedGovernor g(std::make_unique<SlackTimeGovernor>(), pm);
  g.on_start(ctx);
  const double crit = g.floor();
  // Inner lpSEH would pick 0.4 here; the clamp keeps max(0.4, crit).
  EXPECT_NEAR(g.select_speed(job, ctx), std::max(0.4, crit), 1e-9);
}

TEST(CriticalSpeedGovernor, PreservesName) {
  CriticalSpeedGovernor g(make_governor("lpSEH"),
                          cpu::cubic_power_model(0.1));
  EXPECT_EQ(g.name(), "lpSEH+crit");
}

TEST(CriticalSpeedGovernor, RejectsNulls) {
  EXPECT_THROW(CriticalSpeedGovernor(nullptr, cpu::cubic_power_model()),
               util::ContractError);
  EXPECT_THROW(CriticalSpeedGovernor(make_governor("noDVS"), nullptr),
               util::ContractError);
}

TEST(CriticalSpeedGovernor, SavesEnergyWhenLowSpeedsAreWasteful) {
  // On the flat-low-end processor, clamping lpSEH at the critical speed
  // must not increase total energy (it avoids the wasteful region) and
  // must keep all deadlines.
  TaskSet ts("mix");
  ts.add(make_task(0, "a", 0.02, 0.005, 0.0005));
  ts.add(make_task(1, "b", 0.05, 0.012, 0.0012));
  const auto workload = task::uniform_model(4);

  cpu::Processor proc = cpu::ideal_processor();
  proc.power = cpu::table_power_model("flatlow",
                                      {
                                          {0.2, 1.00, 300.0},
                                          {0.4, 1.05, 380.0},
                                          {0.7, 1.40, 800.0},
                                          {1.0, 1.80, 1600.0},
                                      },
                                      0.02);
  sim::SimOptions opts;
  opts.length = 2.0;

  SlackTimeGovernor plain;
  const auto base = sim::simulate(ts, *workload, proc, plain, opts);
  auto clamped = critical_speed_clamp(make_governor("lpSEH"), proc.power);
  const auto better = sim::simulate(ts, *workload, proc, *clamped, opts);

  EXPECT_EQ(base.deadline_misses, 0);
  EXPECT_EQ(better.deadline_misses, 0);
  EXPECT_LE(better.total_energy(), base.total_energy() * 1.001);
}

}  // namespace
}  // namespace dvs::core
