// Property-based fuzz harness for the global-EDF backend (ISSUE 10): for
// EVERY registered EDF governor and seeded random cases spanning
// M in [2, 16], n in [3, 30] and U <= min(0.6 M, 0.15 n), the GFB dispatch
// floor must deliver ZERO deadline misses at zero migration cost on ideal
// cores — the schedulability bound the engine's speed clamp is built on
// (DESIGN.md §14).  A second suite pins the migration-cost conservation
// law: the demand inflation summed over all executed jobs equals the
// reported migration overhead exactly.  Every assertion carries the full
// replay recipe (seed, M, n, U, governor).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>

#include "core/registry.hpp"
#include "cpu/processors.hpp"
#include "mp/global_sim.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"

namespace dvs {
namespace {

constexpr std::uint64_t kFuzzSalt = 0x61B;
constexpr std::uint64_t kSetsPerCell = 9;

struct FuzzCase {
  std::size_t n_cores;
  std::size_t n_tasks;
  double utilization;
  task::TaskSet task_set;
  task::ExecutionTimeModelPtr workload;
};

/// Derive one random case from `seed` alone: every dimension (M, n, U,
/// the set itself, the workload) is a pure function of the seed, so a
/// printed seed replays the exact case.  U is kept inside the GFB bound:
/// with per-task utilization <= 0.35 and U <= 0.6 M, the dispatch floor
/// (U + (M-1)·0.35) / M <= 0.6 + 0.35 = 0.95 stays strictly below 1, so
/// the clamped schedule is guaranteed feasible.  The 0.15 n arm keeps the
/// mean share well under the per-task cap — UUniFast's whole-vector
/// rejection sampling needs that headroom to terminate (the max of n
/// uniform-simplex shares concentrates near U (ln n) / n).
FuzzCase fuzz_case(std::uint64_t seed) {
  util::Rng rng(seed);
  FuzzCase c;
  c.n_cores = static_cast<std::size_t>(rng.uniform_int(2, 16));
  c.n_tasks = static_cast<std::size_t>(rng.uniform_int(3, 30));
  const double u_max =
      std::min(0.6 * static_cast<double>(c.n_cores),
               0.15 * static_cast<double>(c.n_tasks));
  c.utilization = 0.2 + (u_max - 0.2) * rng.unit();

  task::GeneratorConfig gen;
  gen.n_tasks = c.n_tasks;
  gen.total_utilization = c.utilization;
  gen.period_min = 0.01;
  gen.period_max = 0.16;
  gen.bcet_ratio = 0.1;
  gen.grid_fraction = 0.5;
  gen.allow_overload = c.utilization > 1.0;
  gen.max_task_utilization = 0.35;
  util::Rng set_rng(seed ^ kFuzzSalt);
  c.task_set = task::generate_task_set(gen, set_rng, "gfuzz");
  c.workload = task::uniform_model(seed);
  return c;
}

class GlobalZeroMissFuzz : public ::testing::TestWithParam<std::string> {};

TEST_P(GlobalZeroMissFuzz, GfbBoundedSetsNeverMissADeadline) {
  const std::string& governor_name = GetParam();
  const std::uint64_t cell =
      util::hash_u64(kFuzzSalt, std::hash<std::string>{}(governor_name));
  for (std::uint64_t rep = 0; rep < kSetsPerCell; ++rep) {
    const std::uint64_t seed = util::hash_u64(cell, rep);
    const FuzzCase c = fuzz_case(seed);
    const std::string replay =
        "replay: seed=" + std::to_string(seed) + " M=" +
        std::to_string(c.n_cores) + " n=" + std::to_string(c.n_tasks) +
        " U=" + std::to_string(c.utilization) + " governor=" +
        governor_name;
    SCOPED_TRACE(replay);

    // The generated case must actually sit inside the GFB bound, or the
    // zero-miss expectation below would be vacuous hope.
    ASSERT_LT(mp::global_speed_floor(c.task_set, c.n_cores), 1.0) << replay;

    auto governor = core::make_governor(governor_name);
    mp::GlobalOptions o;
    o.length = 0.3;
    o.n_cores = c.n_cores;
    const mp::GlobalResult r = mp::simulate_global(
        c.task_set, *c.workload, cpu::ideal_processor(), *governor, o);

    EXPECT_EQ(r.total.deadline_misses, 0) << replay;
    EXPECT_EQ(r.total.migrations,
              static_cast<std::int64_t>(r.migrations.size()))
        << replay;
    for (std::size_t core = 0; core < r.cores.size(); ++core) {
      EXPECT_EQ(r.cores[core].deadline_misses, 0)
          << replay << " (core " << core << ")";
    }
    // Accounting closes platform-wide: every released job completed or
    // was truncated at the horizon, and all M powered cores tile the
    // simulated horizon.
    EXPECT_EQ(r.total.jobs_completed + r.total.jobs_truncated,
              r.total.jobs_released)
        << replay;
    EXPECT_NEAR(r.total.busy_time + r.total.idle_time +
                    r.total.transition_time,
                static_cast<double>(c.n_cores) * 0.3, 1e-6)
        << replay;
  }
}

std::string param_name(
    const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllGovernors, GlobalZeroMissFuzz,
                         ::testing::ValuesIn(core::governor_names()),
                         param_name);

TEST(GlobalConservation, DemandInflationEqualsReportedMigrationOverhead) {
  // With a nonzero migration cost, the only way the engine may inflate a
  // job's demand beyond the fresh workload draw is the per-migration
  // surcharge — so summed over all executed jobs, (actual - draw) must
  // reproduce migrations x cost exactly.  Completed jobs additionally
  // retire their full inflated demand (executed == actual, snapped at
  // completion).
  const Time cost = 5e-5;
  std::int64_t total_migrations = 0;
  for (std::uint64_t rep = 0; rep < 24; ++rep) {
    const std::uint64_t seed = util::hash_u64(kFuzzSalt, 0xC0 + rep);
    const FuzzCase c = fuzz_case(seed);
    const std::string replay =
        "replay: seed=" + std::to_string(seed) + " M=" +
        std::to_string(c.n_cores) + " n=" + std::to_string(c.n_tasks) +
        " U=" + std::to_string(c.utilization);
    SCOPED_TRACE(replay);

    auto governor = core::make_governor("ccEDF");
    mp::GlobalOptions o;
    o.length = 0.3;
    o.n_cores = c.n_cores;
    o.migration_cost = cost;
    o.record_jobs = true;
    const mp::GlobalResult r = mp::simulate_global(
        c.task_set, *c.workload, cpu::ideal_processor(), *governor, o);

    total_migrations += r.total.migrations;
    EXPECT_NEAR(r.total.migration_overhead_us,
                static_cast<double>(r.total.migrations) * cost * 1e6, 1e-6)
        << replay;

    double inflation = 0.0;
    for (const auto& j : r.total.jobs) {
      if (j.skipped) continue;
      const auto& task = c.task_set[static_cast<std::size_t>(j.task_id)];
      const Work draw = c.workload->draw(task, j.index);
      // Surcharges only ever ADD demand; they never shrink it.
      EXPECT_GE(j.actual + 1e-12, draw) << replay;
      inflation += j.actual - draw;
    }
    EXPECT_NEAR(inflation, static_cast<double>(r.total.migrations) * cost,
                1e-9)
        << replay;

    // Migration records are internally consistent: time-ordered, between
    // distinct real cores.
    Time prev = 0.0;
    for (const auto& m : r.migrations) {
      EXPECT_GE(m.at, prev) << replay;
      prev = m.at;
      EXPECT_NE(m.from_core, m.to_core) << replay;
      EXPECT_GE(m.from_core, 0) << replay;
      EXPECT_LT(static_cast<std::size_t>(m.to_core), c.n_cores) << replay;
    }
  }
  // The seed schedule must actually provoke migrations, or the
  // conservation law above was tested against zero.
  EXPECT_GT(total_migrations, 0) << "fuzz grid never migrated";
}

TEST(GlobalConservation, FaultAndDegradationArmsKeepPlatformInvariants) {
  // Overloaded weakly-hard sets with fault injection on M >= 2 cores:
  // no zero-miss promise out here, but the platform accounting must still
  // close and (m,k) skip legality must hold (skips never violate windows
  // on their own; see degrade/degrade.hpp).
  degrade::DegradationConfig dcfg;
  dcfg.enter_pressure = 1;
  for (std::uint64_t rep = 0; rep < 12; ++rep) {
    const std::uint64_t seed = util::hash_u64(kFuzzSalt, 0xD0 + rep);
    util::Rng rng(seed);
    const auto m = static_cast<std::size_t>(rng.uniform_int(2, 6));
    const double u = static_cast<double>(m) * (0.9 + 0.4 * rng.unit());
    task::GeneratorConfig gen;
    gen.n_tasks = 4 * m;  // per-task shares stay generatable at U > M
    gen.total_utilization = u;
    gen.period_min = 0.01;
    gen.period_max = 0.16;
    gen.bcet_ratio = 1.0;
    gen.allow_overload = true;
    util::Rng set_rng(seed ^ kFuzzSalt);
    task::TaskSet ts = task::generate_task_set(gen, set_rng, "gover");
    ts = degrade::with_firmness(ts, 1, 2);
    const std::string replay = "replay: seed=" + std::to_string(seed) +
                               " M=" + std::to_string(m) +
                               " U=" + std::to_string(u);
    SCOPED_TRACE(replay);

    auto governor = core::make_governor("DRA");
    mp::GlobalOptions o;
    o.length = 0.4;
    o.n_cores = m;
    o.migration_cost = 1e-5;
    o.degradation = &dcfg;
    o.containment = sim::OverrunPolicy::kEscalateToMaxSpeed;
    const mp::GlobalResult r = mp::simulate_global(
        ts, *task::constant_ratio_model(1.0), cpu::ideal_processor(),
        *governor, o);

    EXPECT_EQ(r.total.jobs_completed + r.total.jobs_truncated +
                  r.total.jobs_skipped,
              r.total.jobs_released)
        << replay;
    EXPECT_TRUE(r.total.degradation) << replay;
    // Skip legality under the global backend: the controller only sheds
    // what its (m,k) windows allow, so when skips are the only non-met
    // outcomes there can be no violated windows.
    if (r.total.deadline_misses == 0) {
      EXPECT_EQ(r.total.mk_violations, 0) << replay;
    }
    EXPECT_NEAR(r.total.busy_time + r.total.idle_time +
                    r.total.transition_time,
                static_cast<double>(m) * 0.4, 1e-6)
        << replay;
  }
}

}  // namespace
}  // namespace dvs
