#include "sched/edf_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace dvs::sched {
namespace {

TEST(EdfBefore, OrdersByDeadlineThenTaskThenSeq) {
  EXPECT_TRUE(edf_before({1.0, 0, 0, 0}, {2.0, 0, 0, 0}));
  EXPECT_TRUE(edf_before({1.0, 0, 0, 0}, {1.0, 1, 0, 0}));
  EXPECT_TRUE(edf_before({1.0, 0, 0, 0}, {1.0, 0, 1, 0}));
  EXPECT_FALSE(edf_before({1.0, 0, 0, 0}, {1.0, 0, 0, 0}));
}

TEST(EdfQueue, PopsInDeadlineOrder) {
  EdfReadyQueue q;
  q.push({3.0, 0, 0, 0});
  q.push({1.0, 1, 0, 1});
  q.push({2.0, 2, 0, 2});
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.top().deadline, 1.0);
  q.pop();
  EXPECT_DOUBLE_EQ(q.top().deadline, 2.0);
  q.pop();
  EXPECT_DOUBLE_EQ(q.top().deadline, 3.0);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EdfQueue, DeterministicTieBreak) {
  EdfReadyQueue q;
  q.push({1.0, 2, 0, 0});
  q.push({1.0, 0, 0, 1});
  q.push({1.0, 1, 0, 2});
  EXPECT_EQ(q.top().task_id, 0);
  q.pop();
  EXPECT_EQ(q.top().task_id, 1);
  q.pop();
  EXPECT_EQ(q.top().task_id, 2);
}

TEST(EdfQueue, SortedSnapshotMatchesPopOrder) {
  EdfReadyQueue q;
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    q.push({rng.uniform(0.0, 10.0), static_cast<std::int32_t>(i % 7),
            i, static_cast<std::size_t>(i)});
  }
  const auto snapshot = q.sorted();
  ASSERT_EQ(snapshot.size(), 50u);
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(q.top().slot, snapshot[i].slot) << "position " << i;
    q.pop();
  }
}

TEST(EdfQueue, HeapPropertyUnderRandomLoad) {
  EdfReadyQueue q;
  util::Rng rng(9);
  for (int round = 0; round < 200; ++round) {
    if (q.empty() || rng.unit() < 0.6) {
      q.push({rng.uniform(0.0, 100.0), 0, round,
              static_cast<std::size_t>(round)});
    } else {
      const Time top = q.top().deadline;
      // The popped element must be <= everything still stored.
      for (const auto& e : q.raw()) EXPECT_LE(top, e.deadline);
      q.pop();
    }
  }
  // Draining with no interleaved pushes yields a sorted sequence.
  std::vector<Time> drained;
  while (!q.empty()) {
    drained.push_back(q.top().deadline);
    q.pop();
  }
  EXPECT_TRUE(std::is_sorted(drained.begin(), drained.end()));
}

TEST(EdfQueue, EmptyAccessThrows) {
  EdfReadyQueue q;
  EXPECT_THROW((void)q.top(), util::ContractError);
  EXPECT_THROW(q.pop(), util::ContractError);
}

TEST(EdfQueue, ClearEmpties) {
  EdfReadyQueue q;
  q.push({1.0, 0, 0, 0});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EdfQueue, SortedIntoMatchesSorted) {
  EdfReadyQueue q;
  q.push({5.0, 2, 0, 0});
  q.push({1.0, 1, 0, 1});
  q.push({5.0, 0, 3, 2});
  q.push({2.5, 3, 1, 3});
  const auto expect = q.sorted();
  std::vector<EdfEntry> out;
  q.sorted_into(out);
  ASSERT_EQ(out.size(), expect.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].deadline, expect[i].deadline);
    EXPECT_EQ(out[i].task_id, expect[i].task_id);
    EXPECT_EQ(out[i].seq, expect[i].seq);
    EXPECT_EQ(out[i].slot, expect[i].slot);
  }
}

TEST(EdfQueue, SortedIntoReusesAndOverwritesTheBuffer) {
  EdfReadyQueue q;
  q.push({3.0, 0, 0, 0});
  q.push({1.0, 1, 0, 1});
  std::vector<EdfEntry> out;
  q.sorted_into(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].task_id, 1);
  q.pop();
  q.sorted_into(out);  // stale contents must be fully replaced
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].task_id, 0);
  q.pop();
  q.sorted_into(out);
  EXPECT_TRUE(out.empty());
}

TEST(EdfQueue, ReserveDoesNotChangeContents) {
  EdfReadyQueue q;
  q.reserve(32);
  EXPECT_TRUE(q.empty());
  q.push({1.0, 0, 0, 0});
  q.reserve(64);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.top().task_id, 0);
}

}  // namespace
}  // namespace dvs::sched
