// The Chrome-trace exporter stack: the minimal JSON parser it validates
// with, string escaping, the export -> check_chrome_trace round-trip on a
// real simulation, and the validator's rejection of tampered documents.
#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "cpu/processors.hpp"
#include "obs/json_mini.hpp"
#include "obs/trace_check.hpp"
#include "sim/simulator.hpp"
#include "task/benchmarks.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"

namespace dvs::obs {
namespace {

// ---------------------------------------------------------------- parser

TEST(JsonMini, ParsesScalarsAndContainers) {
  const JsonValue v = parse_json(
      R"({"a": 1.5, "b": [true, false, null], "c": "hi", "d": {}})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->is_number());
  EXPECT_DOUBLE_EQ(a->number, 1.5);
  const JsonValue* b = v.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].boolean);
  EXPECT_FALSE(b->array[1].boolean);
  EXPECT_TRUE(b->array[2].is_null());
  EXPECT_EQ(v.find("c")->string, "hi");
  EXPECT_TRUE(v.find("d")->is_object());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonMini, DecodesEscapesIncludingUnicode) {
  const JsonValue v = parse_json(R"(["a\"b\\c\n", "é", "\t\r"])");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.array.size(), 3u);
  EXPECT_EQ(v.array[0].string, "a\"b\\c\n");
  EXPECT_EQ(v.array[1].string, "\xc3\xa9");  // e-acute as UTF-8
  EXPECT_EQ(v.array[2].string, "\t\r");
}

TEST(JsonMini, ParsesNumbersWithExponents) {
  const JsonValue v = parse_json("[-0.5, 1e3, 2.5E-2]");
  ASSERT_EQ(v.array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.array[0].number, -0.5);
  EXPECT_DOUBLE_EQ(v.array[1].number, 1000.0);
  EXPECT_DOUBLE_EQ(v.array[2].number, 0.025);
}

TEST(JsonMini, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), util::ContractError);
  EXPECT_THROW(parse_json("{"), util::ContractError);
  EXPECT_THROW(parse_json("[1,]"), util::ContractError);
  EXPECT_THROW(parse_json("\"unterminated"), util::ContractError);
  EXPECT_THROW(parse_json("{\"k\": 1} trailing"), util::ContractError);
  EXPECT_THROW(parse_json("\"bad \\q escape\""), util::ContractError);
  EXPECT_THROW(parse_json("nul"), util::ContractError);
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

// ----------------------------------------------------------- round-trip

/// Simulate `names` on the CNC set and export one trace document.
/// `length_scale` misreports the simulated length to the exporter (1.0 is
/// honest) — the tamper knob for the duration-conservation check.
std::string exported_trace(const std::vector<std::string>& names,
                           double length_scale = 1.0) {
  const task::TaskSet ts = task::cnc_task_set();
  const auto workload = task::uniform_model(2002);
  std::vector<sim::VectorTrace> recordings(names.size());
  Time sim_length = 0.0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    auto governor = core::make_governor(names[i]);
    sim::SimOptions opts;
    opts.length = 0.05;
    opts.trace = &recordings[i];
    const sim::SimResult r = sim::simulate(ts, *workload,
                                           cpu::ideal_processor(), *governor,
                                           opts);
    sim_length = r.sim_length;
  }
  std::vector<GovernorTrace> traces;
  for (std::size_t i = 0; i < names.size(); ++i) {
    traces.push_back({names[i], &recordings[i]});
  }
  std::ostringstream out;
  write_chrome_trace(out, ts, traces, sim_length * length_scale);
  return out.str();
}

TEST(ChromeTrace, ExportedSimulationValidates) {
  const std::string json = exported_trace({"noDVS", "DRA", "lpSEH"});
  const TraceCheckReport report = check_chrome_trace(json);
  for (const auto& e : report.errors) ADD_FAILURE() << e;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.pids, 3u);
  EXPECT_GT(report.duration_events, 0u);
  EXPECT_GT(report.tracks, 3u);  // task rows + cpu row per governor
  EXPECT_NEAR(report.sim_length_us, 0.05 * 1e6, 1.0);
}

TEST(ChromeTrace, ExportIsDeterministic) {
  EXPECT_EQ(exported_trace({"DRA"}), exported_trace({"DRA"}));
}

// ------------------------------------------------------------ tampering

TEST(TraceCheck, RejectsTruncatedJson) {
  std::string json = exported_trace({"DRA"});
  json.resize(json.size() / 2);
  const TraceCheckReport report = check_chrome_trace(json);
  EXPECT_FALSE(report.ok());
}

TEST(TraceCheck, RejectsMissingTraceEvents) {
  const TraceCheckReport report = check_chrome_trace(R"({"otherData": {}})");
  EXPECT_FALSE(report.ok());
}

TEST(TraceCheck, RejectsDurationSumMismatch) {
  // The document advertises a simulation 10% shorter than the one the
  // segments actually cover: per-pid X durations no longer sum to it.
  const std::string json = exported_trace({"DRA"}, 0.9);
  const TraceCheckReport report = check_chrome_trace(json);
  EXPECT_FALSE(report.ok());
  bool mentions_sum = false;
  for (const auto& e : report.errors) {
    mentions_sum |= e.find("sum to") != std::string::npos;
  }
  EXPECT_TRUE(mentions_sum);
}

TEST(TraceCheck, RejectsOverlappingDurationEvents) {
  // Hand-built minimal document: two X events on one row overlap in time.
  const std::string json = R"({"traceEvents": [
    {"ph": "X", "pid": 0, "tid": 0, "name": "a", "ts": 0, "dur": 10},
    {"ph": "X", "pid": 0, "tid": 0, "name": "b", "ts": 5, "dur": 10}
  ], "otherData": {"sim_length_us": 20}})";
  const TraceCheckReport report = check_chrome_trace(json);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("overlapping"), std::string::npos);
}

TEST(TraceCheck, RejectsNonMonotoneCounterTrack) {
  const std::string json = R"({"traceEvents": [
    {"ph": "X", "pid": 0, "tid": 0, "name": "a", "ts": 0, "dur": 20},
    {"ph": "C", "pid": 0, "name": "speed", "ts": 10, "args": {"alpha": 1}},
    {"ph": "C", "pid": 0, "name": "speed", "ts": 5, "args": {"alpha": 0.5}}
  ], "otherData": {"sim_length_us": 20}})";
  const TraceCheckReport report = check_chrome_trace(json);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("not monotone"), std::string::npos);
}

TEST(TraceCheck, RejectsMissingSimLength) {
  const std::string json = R"({"traceEvents": [
    {"ph": "X", "pid": 0, "tid": 0, "name": "a", "ts": 0, "dur": 10}
  ]})";
  const TraceCheckReport report = check_chrome_trace(json);
  EXPECT_FALSE(report.ok());
}

TEST(TraceCheck, AcceptsMinimalWellFormedDocument) {
  const std::string json = R"({"traceEvents": [
    {"ph": "X", "pid": 0, "tid": 0, "name": "a", "ts": 0, "dur": 10},
    {"ph": "X", "pid": 0, "tid": 0, "name": "b", "ts": 10, "dur": 5}
  ], "otherData": {"sim_length_us": 15}})";
  const TraceCheckReport report = check_chrome_trace(json);
  for (const auto& e : report.errors) ADD_FAILURE() << e;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.duration_events, 2u);
  EXPECT_EQ(report.tracks, 1u);
}

}  // namespace
}  // namespace dvs::obs
