// The Chrome-trace exporter stack: the minimal JSON parser it validates
// with, string escaping, the export -> check_chrome_trace round-trip on a
// real simulation, and the validator's rejection of tampered documents.
#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "cpu/processors.hpp"
#include "mp/global_sim.hpp"
#include "obs/json_mini.hpp"
#include "obs/trace_check.hpp"
#include "sim/simulator.hpp"
#include "task/benchmarks.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dvs::obs {
namespace {

// ---------------------------------------------------------------- parser

TEST(JsonMini, ParsesScalarsAndContainers) {
  const JsonValue v = parse_json(
      R"({"a": 1.5, "b": [true, false, null], "c": "hi", "d": {}})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->is_number());
  EXPECT_DOUBLE_EQ(a->number, 1.5);
  const JsonValue* b = v.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].boolean);
  EXPECT_FALSE(b->array[1].boolean);
  EXPECT_TRUE(b->array[2].is_null());
  EXPECT_EQ(v.find("c")->string, "hi");
  EXPECT_TRUE(v.find("d")->is_object());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonMini, DecodesEscapesIncludingUnicode) {
  const JsonValue v = parse_json(R"(["a\"b\\c\n", "é", "\t\r"])");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.array.size(), 3u);
  EXPECT_EQ(v.array[0].string, "a\"b\\c\n");
  EXPECT_EQ(v.array[1].string, "\xc3\xa9");  // e-acute as UTF-8
  EXPECT_EQ(v.array[2].string, "\t\r");
}

TEST(JsonMini, ParsesNumbersWithExponents) {
  const JsonValue v = parse_json("[-0.5, 1e3, 2.5E-2]");
  ASSERT_EQ(v.array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.array[0].number, -0.5);
  EXPECT_DOUBLE_EQ(v.array[1].number, 1000.0);
  EXPECT_DOUBLE_EQ(v.array[2].number, 0.025);
}

TEST(JsonMini, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), util::ContractError);
  EXPECT_THROW(parse_json("{"), util::ContractError);
  EXPECT_THROW(parse_json("[1,]"), util::ContractError);
  EXPECT_THROW(parse_json("\"unterminated"), util::ContractError);
  EXPECT_THROW(parse_json("{\"k\": 1} trailing"), util::ContractError);
  EXPECT_THROW(parse_json("\"bad \\q escape\""), util::ContractError);
  EXPECT_THROW(parse_json("nul"), util::ContractError);
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

// ----------------------------------------------------------- round-trip

/// Simulate `names` on the CNC set and export one trace document.
/// `length_scale` misreports the simulated length to the exporter (1.0 is
/// honest) — the tamper knob for the duration-conservation check.
std::string exported_trace(const std::vector<std::string>& names,
                           double length_scale = 1.0) {
  const task::TaskSet ts = task::cnc_task_set();
  const auto workload = task::uniform_model(2002);
  std::vector<sim::VectorTrace> recordings(names.size());
  Time sim_length = 0.0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    auto governor = core::make_governor(names[i]);
    sim::SimOptions opts;
    opts.length = 0.05;
    opts.trace = &recordings[i];
    const sim::SimResult r = sim::simulate(ts, *workload,
                                           cpu::ideal_processor(), *governor,
                                           opts);
    sim_length = r.sim_length;
  }
  std::vector<GovernorTrace> traces;
  for (std::size_t i = 0; i < names.size(); ++i) {
    traces.push_back({names[i], &recordings[i]});
  }
  std::ostringstream out;
  write_chrome_trace(out, ts, traces, sim_length * length_scale);
  return out.str();
}

TEST(ChromeTrace, ExportedSimulationValidates) {
  const std::string json = exported_trace({"noDVS", "DRA", "lpSEH"});
  const TraceCheckReport report = check_chrome_trace(json);
  for (const auto& e : report.errors) ADD_FAILURE() << e;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.pids, 3u);
  EXPECT_GT(report.duration_events, 0u);
  EXPECT_GT(report.tracks, 3u);  // task rows + cpu row per governor
  EXPECT_NEAR(report.sim_length_us, 0.05 * 1e6, 1.0);
}

TEST(ChromeTrace, ExportIsDeterministic) {
  EXPECT_EQ(exported_trace({"DRA"}), exported_trace({"DRA"}));
}

// ------------------------------------------------------------ tampering

TEST(TraceCheck, RejectsTruncatedJson) {
  std::string json = exported_trace({"DRA"});
  json.resize(json.size() / 2);
  const TraceCheckReport report = check_chrome_trace(json);
  EXPECT_FALSE(report.ok());
}

TEST(TraceCheck, RejectsMissingTraceEvents) {
  const TraceCheckReport report = check_chrome_trace(R"({"otherData": {}})");
  EXPECT_FALSE(report.ok());
}

TEST(TraceCheck, RejectsDurationSumMismatch) {
  // The document advertises a simulation 10% shorter than the one the
  // segments actually cover: per-pid X durations no longer sum to it.
  const std::string json = exported_trace({"DRA"}, 0.9);
  const TraceCheckReport report = check_chrome_trace(json);
  EXPECT_FALSE(report.ok());
  bool mentions_sum = false;
  for (const auto& e : report.errors) {
    mentions_sum |= e.find("sum to") != std::string::npos;
  }
  EXPECT_TRUE(mentions_sum);
}

TEST(TraceCheck, RejectsOverlappingDurationEvents) {
  // Hand-built minimal document: two X events on one row overlap in time.
  const std::string json = R"({"traceEvents": [
    {"ph": "X", "pid": 0, "tid": 0, "name": "a", "ts": 0, "dur": 10},
    {"ph": "X", "pid": 0, "tid": 0, "name": "b", "ts": 5, "dur": 10}
  ], "otherData": {"sim_length_us": 20}})";
  const TraceCheckReport report = check_chrome_trace(json);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("overlapping"), std::string::npos);
}

TEST(TraceCheck, RejectsNonMonotoneCounterTrack) {
  const std::string json = R"({"traceEvents": [
    {"ph": "X", "pid": 0, "tid": 0, "name": "a", "ts": 0, "dur": 20},
    {"ph": "C", "pid": 0, "name": "speed", "ts": 10, "args": {"alpha": 1}},
    {"ph": "C", "pid": 0, "name": "speed", "ts": 5, "args": {"alpha": 0.5}}
  ], "otherData": {"sim_length_us": 20}})";
  const TraceCheckReport report = check_chrome_trace(json);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("not monotone"), std::string::npos);
}

TEST(TraceCheck, RejectsMissingSimLength) {
  const std::string json = R"({"traceEvents": [
    {"ph": "X", "pid": 0, "tid": 0, "name": "a", "ts": 0, "dur": 10}
  ]})";
  const TraceCheckReport report = check_chrome_trace(json);
  EXPECT_FALSE(report.ok());
}

// ---------------------------------------------------------- flow arrows

/// Run the global backend with per-core traces and export one pid per
/// core plus one flow arrow per migration — the CLI's global trace
/// layout.  Returns the JSON document.
std::string exported_global_trace(Time migration_cost) {
  task::GeneratorConfig cfg;
  cfg.n_tasks = 9;
  cfg.total_utilization = 1.1;
  cfg.period_min = 0.01;
  cfg.period_max = 0.16;
  cfg.bcet_ratio = 0.1;
  cfg.grid_fraction = 0.5;
  cfg.allow_overload = true;  // U = 1.1 > 1: overload for one core, not two
  cfg.max_task_utilization = 0.35;
  util::Rng rng(4242);
  const task::TaskSet ts = task::generate_task_set(cfg, rng);
  const auto workload = task::uniform_model(4242);
  auto governor = core::make_governor("ccEDF");

  std::vector<sim::VectorTrace> recordings;
  mp::GlobalOptions opts;
  opts.length = 0.3;
  opts.n_cores = 2;
  opts.migration_cost = migration_cost;
  opts.traces = &recordings;
  const mp::GlobalResult r = mp::simulate_global(
      ts, *workload, cpu::ideal_processor(), *governor, opts);
  EXPECT_GT(r.total.migrations, 0);

  std::vector<TraceProcess> processes;
  for (std::size_t c = 0; c < recordings.size(); ++c) {
    processes.push_back(
        {"ccEDF/core" + std::to_string(c), &ts, &recordings[c]});
  }
  std::vector<TraceFlowEvent> flows;
  for (const auto& m : r.migrations) {
    flows.push_back({"migration", m.at,
                     static_cast<std::size_t>(m.from_core),
                     static_cast<std::size_t>(m.to_core), m.task_id,
                     m.job_index});
  }
  std::ostringstream out;
  write_chrome_trace(out, ts.name(), processes, r.total.sim_length, flows);
  return out.str();
}

TEST(ChromeTrace, GlobalExportWithMigrationFlowsValidates) {
  const std::string json = exported_global_trace(1e-4);
  const TraceCheckReport report = check_chrome_trace(json);
  for (const auto& e : report.errors) ADD_FAILURE() << e;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.pids, 2u);          // one pid per core
  EXPECT_GT(report.flow_events, 0u);
  EXPECT_EQ(report.flow_events % 2, 0u);  // each flow is an s/f pair
}

TEST(ChromeTrace, GlobalExportIsDeterministic) {
  EXPECT_EQ(exported_global_trace(1e-4), exported_global_trace(1e-4));
}

TEST(ChromeTrace, FlowOutOfRangeProcessIsRejected) {
  const task::TaskSet ts = task::cnc_task_set();
  sim::VectorTrace trace;
  trace.segment({0.0, 0.01, sim::SegmentKind::kIdle, -1, -1, 0.0});
  const std::vector<TraceProcess> processes{{"only", &ts, &trace}};
  const std::vector<TraceFlowEvent> flows{{"migration", 0.005, 0, 1, 0, 0}};
  std::ostringstream out;
  EXPECT_THROW(write_chrome_trace(out, "x", processes, 0.01, flows),
               util::ContractError);
}

TEST(TraceCheck, RejectsUnpairedFlowEvents) {
  // A start without its finish (and vice versa) — a dangling arrow.
  const std::string json = R"({"traceEvents": [
    {"ph": "X", "pid": 1, "tid": 0, "name": "a", "ts": 0, "dur": 10},
    {"ph": "s", "pid": 1, "tid": 0, "name": "migration", "id": 1, "ts": 2},
    {"ph": "f", "bp": "e", "pid": 1, "tid": 0, "name": "migration",
     "id": 2, "ts": 3}
  ], "otherData": {"sim_length_us": 10}})";
  const TraceCheckReport report = check_chrome_trace(json);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.errors.size(), 2u);
  EXPECT_NE(report.errors[0].find("exactly one start"), std::string::npos);
}

TEST(TraceCheck, RejectsFlowEventWithoutId) {
  const std::string json = R"({"traceEvents": [
    {"ph": "X", "pid": 1, "tid": 0, "name": "a", "ts": 0, "dur": 10},
    {"ph": "s", "pid": 1, "tid": 0, "name": "migration", "ts": 2}
  ], "otherData": {"sim_length_us": 10}})";
  const TraceCheckReport report = check_chrome_trace(json);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("numeric \"id\""), std::string::npos);
}

TEST(TraceCheck, AcceptsMinimalWellFormedDocument) {
  const std::string json = R"({"traceEvents": [
    {"ph": "X", "pid": 0, "tid": 0, "name": "a", "ts": 0, "dur": 10},
    {"ph": "X", "pid": 0, "tid": 0, "name": "b", "ts": 10, "dur": 5}
  ], "otherData": {"sim_length_us": 15}})";
  const TraceCheckReport report = check_chrome_trace(json);
  for (const auto& e : report.errors) ADD_FAILURE() << e;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.duration_events, 2u);
  EXPECT_EQ(report.tracks, 1u);
}

}  // namespace
}  // namespace dvs::obs
