// Golden regression + determinism for the multiprocessor sweep path: a
// small fixed-seed E11-style sweep (2 cores, worst-fit) whose CSV output
// is checked byte-for-byte against a committed expected file, plus the
// thread-count invariance of the full SweepOutcome (per-core results
// included, via sweep_equality.hpp).
//
// To regenerate after an INTENDED semantic change:
//   SLACKDVS_REGOLD=1 ./test_mp --gtest_filter='MpGolden.*'
// then commit the rewritten tests/data/mp_golden_expected.csv.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "sweep_equality.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"

namespace dvs::exp {
namespace {

const char* const kGoldenPath =
    SLACKDVS_TEST_DATA_DIR "/mp_golden_expected.csv";

SweepOutcome golden_mp_sweep(std::size_t n_threads,
                             bool keep_cases = false) {
  ExperimentConfig cfg = default_config();
  cfg.governors = {"staticEDF", "ccEDF", "lpSEH"};
  cfg.seed = 20020304;  // the E1 seed
  cfg.replications = 2;
  cfg.sim_length = 0.4;
  cfg.n_threads = n_threads;
  cfg.n_cores = 2;
  cfg.partitioner = mp::PartitionHeuristic::kWorstFit;
  cfg.keep_case_outcomes = keep_cases;
  cfg.record_jobs = keep_cases;
  // x = total utilization across both cores; 1.3 exceeds one core on
  // purpose — only a correct partitioned path can schedule it.
  return run_sweep(cfg, "U", {0.6, 1.3},
                   [](double u, std::size_t, std::uint64_t seed) {
                     task::GeneratorConfig gen;
                     gen.n_tasks = 6;
                     gen.total_utilization = u;
                     gen.period_min = 0.01;
                     gen.period_max = 0.16;
                     gen.bcet_ratio = 0.1;
                     gen.grid_fraction = 0.5;
                     gen.allow_overload = u > 1.0;
                     gen.max_task_utilization = 0.9;
                     util::Rng rng(seed);
                     return Case{task::generate_task_set(gen, rng),
                                 task::uniform_model(seed)};
                   });
}

std::string to_csv(const SweepOutcome& sweep) {
  std::ostringstream os;
  write_sweep_csv(os, sweep);
  return os.str();
}

std::string read_golden() {
  std::ifstream in(kGoldenPath);
  EXPECT_TRUE(in.is_open()) << "missing golden file: " << kGoldenPath;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(MpGolden, SerialSweepMatchesCommittedCsv) {
  const SweepOutcome sweep = golden_mp_sweep(1);
  EXPECT_TRUE(sweep.failures.empty());
  const std::string actual = to_csv(sweep);
  if (std::getenv("SLACKDVS_REGOLD") != nullptr) {
    std::ofstream out(kGoldenPath);
    ASSERT_TRUE(out.is_open()) << "cannot rewrite " << kGoldenPath;
    out << actual;
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }
  EXPECT_EQ(actual, read_golden())
      << "multiprocessor sweep output drifted from the committed golden "
         "CSV; if the change is intended, regenerate with SLACKDVS_REGOLD=1";
}

TEST(MpGolden, ParallelSweepMatchesCommittedCsv) {
  if (std::getenv("SLACKDVS_REGOLD") != nullptr) {
    GTEST_SKIP() << "regolding uses the serial test";
  }
  EXPECT_EQ(to_csv(golden_mp_sweep(2)), read_golden());
  EXPECT_EQ(to_csv(golden_mp_sweep(8)), read_golden());
}

TEST(MpGolden, SweepOutcomeIsIdenticalAcrossThreadCounts) {
  // Beyond the CSV projection: the FULL outcome — per-core SimResults,
  // job records, partition shape — is bit-identical for every thread
  // count (the (case, governor, core) fan-out reassembles in index
  // order).
  const SweepOutcome serial = golden_mp_sweep(1, /*keep_cases=*/true);
  const SweepOutcome two = golden_mp_sweep(2, /*keep_cases=*/true);
  const SweepOutcome eight = golden_mp_sweep(8, /*keep_cases=*/true);
  expect_same_sweep(serial, two);
  expect_same_sweep(serial, eight);
  // Sanity: the partitioned detail is populated and really has 2 cores.
  const auto& mp0 =
      serial.points.front().cases.front().outcomes.front().mp;
  ASSERT_NE(mp0, nullptr);
  EXPECT_EQ(mp0->n_cores(), 2u);
}

}  // namespace
}  // namespace dvs::exp
