// util::StableVector — the slab-pooled, reference-stable storage backing
// the simulator's job records (docs/PERFORMANCE.md).
#include "util/stable_vector.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

namespace dvs::util {
namespace {

TEST(StableVector, StartsEmpty) {
  StableVector<int> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 0u);
  EXPECT_EQ(v.begin(), v.end());
}

TEST(StableVector, PushBackReadsBackInOrder) {
  StableVector<int> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(v.back(), 999);
}

TEST(StableVector, ReferencesSurviveGrowth) {
  // The whole point of the container: a reference taken at push time must
  // stay valid while later pushes allocate new slabs.
  StableVector<int, 4> v;  // tiny slabs force many slab boundaries
  std::vector<int*> ptrs;
  for (int i = 0; i < 100; ++i) ptrs.push_back(&v.push_back(i));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*ptrs[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(ptrs[static_cast<std::size_t>(i)],
              &v[static_cast<std::size_t>(i)]);
  }
}

TEST(StableVector, ReservePreallocatesWholeSlabs) {
  StableVector<int, 8> v;
  v.reserve(17);  // 3 slabs of 8
  EXPECT_EQ(v.capacity(), 24u);
  EXPECT_EQ(v.size(), 0u);
  v.reserve(5);  // never shrinks
  EXPECT_EQ(v.capacity(), 24u);
}

TEST(StableVector, ClearKeepsSlabsForReuse) {
  StableVector<int, 8> v;
  for (int i = 0; i < 20; ++i) v.push_back(i);
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
  v.push_back(7);
  EXPECT_EQ(v[0], 7);
}

TEST(StableVector, RangeForIteratesEveryElement) {
  StableVector<int, 4> v;
  for (int i = 0; i < 11; ++i) v.push_back(i);
  int sum = 0;
  for (const int& x : v) sum += x;
  EXPECT_EQ(sum, 55);
  // Mutation through the non-const iterator.
  for (int& x : v) x *= 2;
  EXPECT_EQ(v[10], 20);
}

TEST(StableVector, ConstIterationMatchesIndexing) {
  StableVector<std::string, 4> v;
  for (int i = 0; i < 9; ++i) v.push_back(std::to_string(i));
  const auto& cv = v;
  std::size_t i = 0;
  for (const auto& s : cv) EXPECT_EQ(s, std::to_string(i++));
  EXPECT_EQ(i, cv.size());
}

TEST(StableVector, MoveTransfersStorage) {
  StableVector<int, 4> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  int* p = &v[5];
  StableVector<int, 4> w = std::move(v);
  EXPECT_EQ(w.size(), 10u);
  EXPECT_EQ(&w[5], p);  // slabs moved, not copied
  EXPECT_EQ(w[5], 5);
}

}  // namespace
}  // namespace dvs::util
