#include "core/la_edf.hpp"

#include <gtest/gtest.h>

#include "fake_context.hpp"
#include "sim/simulator.hpp"
#include "task/workload.hpp"

namespace dvs::core {
namespace {

using task::make_task;
using task::TaskSet;
using dvs::testing::FakeContext;

TEST(LaEdf, SingleTaskStretchesToDeadline) {
  TaskSet ts("one");
  ts.add(make_task(0, "a", 10.0, 4.0));
  FakeContext ctx(std::move(ts));
  auto& job = ctx.add_job(0, 0, 0.0);
  LaEdfGovernor g;
  g.on_start(ctx);
  g.on_release(job, ctx);
  // All 4 units must finish before d = 10 -> alpha = 0.4.
  EXPECT_NEAR(g.select_speed(job, ctx), 0.4, 1e-12);
}

TEST(LaEdf, DefersWorkOfLaterDeadlineTask) {
  TaskSet ts("two");
  ts.add(make_task(0, "early", 10.0, 2.0));  // u = 0.2
  ts.add(make_task(1, "late", 40.0, 8.0));   // u = 0.2
  FakeContext ctx(std::move(ts));
  auto& j0 = ctx.add_job(0, 0, 0.0);
  auto& j1 = ctx.add_job(1, 0, 0.0);
  LaEdfGovernor g;
  g.on_start(ctx);
  g.on_release(j0, ctx);
  g.on_release(j1, ctx);
  // Pillai-Shin deferral: task "late" (d = 40) can defer
  // min(c_left, (1 - U_later) * 30) = min(8, 0.8 * 30) = 8 entirely, so
  // only task "early"'s 2 units must finish before d_next = 10.
  EXPECT_NEAR(g.select_speed(j0, ctx), 0.2, 1e-12);
}

TEST(LaEdf, DeferralLimitedByUtilization) {
  TaskSet ts("tight");
  ts.add(make_task(0, "early", 10.0, 5.0));  // u = 0.5
  ts.add(make_task(1, "late", 12.0, 5.0));   // u ~= 0.417
  FakeContext ctx(std::move(ts));
  auto& j0 = ctx.add_job(0, 0, 0.0);
  auto& j1 = ctx.add_job(1, 0, 0.0);
  LaEdfGovernor g;
  g.on_start(ctx);
  g.on_release(j0, ctx);
  g.on_release(j1, ctx);
  // For "late": span = 12 - 10 = 2, U after removing its share = 0.5,
  // x = max(0, 5 - (1 - 0.5) * 2) = 4 must run before t = 10.
  // Then "early" contributes its full 5 (span = 0) -> s = 9, alpha = 0.9.
  EXPECT_NEAR(g.select_speed(j0, ctx), 0.9, 1e-9);
}

TEST(LaEdf, MidExecutionUsesRemainingBudget) {
  TaskSet ts("one");
  ts.add(make_task(0, "a", 10.0, 4.0));
  FakeContext ctx(std::move(ts));
  auto& job = ctx.add_job(0, 0, 0.0, /*executed=*/3.0);
  ctx.now_ = 5.0;
  LaEdfGovernor g;
  g.on_start(ctx);
  g.on_release(job, ctx);
  // 1 unit left, 5 time units to the deadline.
  EXPECT_NEAR(g.select_speed(job, ctx), 0.2, 1e-12);
}

TEST(LaEdf, FullSpeedWhenWindowVanishes) {
  TaskSet ts("one");
  ts.add(make_task(0, "a", 10.0, 4.0));
  FakeContext ctx(std::move(ts));
  auto& job = ctx.add_job(0, 0, 0.0);
  ctx.now_ = 10.0;  // at the deadline itself
  LaEdfGovernor g;
  g.on_start(ctx);
  g.on_release(job, ctx);
  EXPECT_DOUBLE_EQ(g.select_speed(job, ctx), 1.0);
}

TEST(LaEdf, EndToEndNoMissesAndAggressiveSaving) {
  TaskSet ts("mix");
  ts.add(make_task(0, "a", 0.05, 0.01, 0.002));
  ts.add(make_task(1, "b", 0.1, 0.02, 0.004));
  ts.add(make_task(2, "c", 0.2, 0.06, 0.012));
  const auto workload = task::uniform_model(17);
  const cpu::Processor proc = cpu::ideal_processor();
  LaEdfGovernor g;
  sim::SimOptions opts;
  opts.length = 5.0;
  const auto r = sim::simulate(ts, *workload, proc, g, opts);
  EXPECT_EQ(r.deadline_misses, 0);
  // laEDF is known to push speeds well below the static optimum when
  // actual demand is light.
  EXPECT_LT(r.average_speed, ts.utilization());
}

}  // namespace
}  // namespace dvs::core
