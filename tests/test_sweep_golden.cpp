// Golden regression for the sweep pipeline: a small fixed-seed E1-style
// sweep whose CSV output is checked byte-for-byte against a committed
// expected file.  The serial/parallel determinism tests only prove that
// thread counts agree with each other; this test pins the *absolute*
// numbers, catching accidental semantic drift from harness refactors
// (changed seed derivation, aggregation order, normalization, CSV
// formatting) even when the drift is thread-count-independent.
//
// The golden sweep runs with ExperimentConfig::oracle, so the committed
// CSV also pins the oracle governor's column and every governor's
// optimality-gap columns; a separate test proves those are a pure
// superset (every pre-existing column byte-identical to a non-oracle
// run of the same sweep).
//
// To regenerate after an INTENDED semantic change:
//   SLACKDVS_REGOLD=1 ./test_exp --gtest_filter='SweepGolden.*'
// then commit the rewritten tests/data/sweep_golden_expected.csv.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"

namespace dvs::exp {
namespace {

const char* const kGoldenPath =
    SLACKDVS_TEST_DATA_DIR "/sweep_golden_expected.csv";

SweepOutcome golden_sweep(std::size_t n_threads, bool oracle = true) {
  ExperimentConfig cfg = default_config();
  cfg.governors = {"staticEDF", "ccEDF", "lpSEH"};
  cfg.seed = 20020304;  // the E1 seed
  cfg.replications = 2;
  cfg.sim_length = 0.4;
  cfg.n_threads = n_threads;
  cfg.oracle = oracle;
  return run_sweep(cfg, "U", {0.5, 0.9},
                   [](double u, std::size_t, std::uint64_t seed) {
                     task::GeneratorConfig gen;
                     gen.n_tasks = 4;
                     gen.total_utilization = u;
                     gen.period_min = 0.01;
                     gen.period_max = 0.16;
                     gen.bcet_ratio = 0.1;
                     gen.grid_fraction = 0.5;
                     util::Rng rng(seed);
                     return Case{task::generate_task_set(gen, rng),
                                 task::uniform_model(seed)};
                   });
}

std::string to_csv(const SweepOutcome& sweep) {
  std::ostringstream os;
  write_sweep_csv(os, sweep);
  return os.str();
}

std::string read_golden() {
  std::ifstream in(kGoldenPath);
  EXPECT_TRUE(in.is_open()) << "missing golden file: " << kGoldenPath;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(SweepGolden, SerialSweepMatchesCommittedCsv) {
  const std::string actual = to_csv(golden_sweep(1));
  if (std::getenv("SLACKDVS_REGOLD") != nullptr) {
    std::ofstream out(kGoldenPath);
    ASSERT_TRUE(out.is_open()) << "cannot rewrite " << kGoldenPath;
    out << actual;
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }
  EXPECT_EQ(actual, read_golden())
      << "sweep output drifted from the committed golden CSV; if the "
         "change is intended, regenerate with SLACKDVS_REGOLD=1";
}

TEST(SweepGolden, ParallelSweepMatchesCommittedCsv) {
  if (std::getenv("SLACKDVS_REGOLD") != nullptr) {
    GTEST_SKIP() << "regolding uses the serial test";
  }
  EXPECT_EQ(to_csv(golden_sweep(4)), read_golden());
}

/// Parse a sweep CSV into header -> column values (cell strings).
std::map<std::string, std::vector<std::string>> csv_columns(
    const std::string& csv) {
  std::vector<std::vector<std::string>> rows;
  std::istringstream in(csv);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::vector<std::string> cells;
    std::istringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) cells.push_back(cell);
    rows.push_back(std::move(cells));
  }
  std::map<std::string, std::vector<std::string>> cols;
  if (rows.empty()) return cols;
  for (std::size_t c = 0; c < rows.front().size(); ++c) {
    auto& col = cols[rows.front()[c]];
    for (std::size_t r = 1; r < rows.size(); ++r) {
      col.push_back(c < rows[r].size() ? rows[r][c] : "");
    }
  }
  return cols;
}

TEST(SweepGolden, OracleCsvIsAPureSupersetOfTheLegacyCsv) {
  // Turning the oracle on appends the oracle governor and the gap
  // columns but must not perturb a single pre-existing cell: the case
  // seeds and every legacy governor's simulations are unchanged, so
  // every column of the non-oracle CSV must reappear byte-identical in
  // the oracle CSV.  This is the compatibility contract that lets CI
  // diff non-oracle CSVs across builds that differ only in oracle
  // support.
  const auto legacy = csv_columns(to_csv(golden_sweep(1, /*oracle=*/false)));
  const auto oracle = csv_columns(to_csv(golden_sweep(1, /*oracle=*/true)));
  ASSERT_FALSE(legacy.empty());
  EXPECT_GT(oracle.size(), legacy.size());
  for (const auto& [name, cells] : legacy) {
    const auto it = oracle.find(name);
    ASSERT_NE(it, oracle.end()) << "column lost: " << name;
    EXPECT_EQ(it->second, cells) << "column drifted: " << name;
  }
}

}  // namespace
}  // namespace dvs::exp
