// Global-EDF backend differentials (DESIGN.md §14): the M = 1 run is
// BIT-IDENTICAL to the uniprocessor simulator — every SimResult field and
// every JobRecord, over 50 random task sets spanning governors,
// utilizations and set sizes, including the degradation / containment /
// processor-fault arms.  On M >= 2 ideal cores, GFB-bounded sets never
// miss at zero migration cost; the migration-cost model counts and
// charges surcharges exactly; per-core traces tile the horizon (the
// Chrome-trace exporter's invariant).  The EdfReadyQueue::remove_slot
// primitive the engine's M = 1 contract rests on is pinned down here too.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "cpu/processors.hpp"
#include "degrade/degrade.hpp"
#include "fault/fault.hpp"
#include "mp/global_sim.hpp"
#include "mp/mp_sim.hpp"
#include "sched/edf_queue.hpp"
#include "sim/simulator.hpp"
#include "sweep_equality.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"

namespace dvs {
namespace {

task::TaskSet random_set(double u, std::uint64_t seed, std::size_t n,
                         double max_task_u = 1.0) {
  task::GeneratorConfig cfg;
  cfg.n_tasks = n;
  cfg.total_utilization = u;
  cfg.period_min = 0.01;
  cfg.period_max = 0.16;
  cfg.bcet_ratio = 0.1;
  cfg.grid_fraction = 0.5;
  cfg.allow_overload = u > 1.0;
  cfg.max_task_utilization = max_task_u;
  util::Rng rng(seed);
  return task::generate_task_set(cfg, rng);
}

const std::vector<std::string> kGovernors{
    "noDVS", "staticEDF", "lppsEDF", "ccEDF", "laEDF",
    "DRA",   "AGR",       "lpSEH-h", "lpSEH", "uniformSlack"};

// --- the heap primitive the M = 1 contract rests on ----------------------

TEST(EdfQueueRemoveSlot, HeadRemovalIsOperationIdenticalToPop) {
  sched::EdfReadyQueue a;
  sched::EdfReadyQueue b;
  util::Rng rng(41);
  for (std::size_t i = 0; i < 64; ++i) {
    const sched::EdfEntry e{rng.unit(), static_cast<std::int32_t>(i % 7),
                            static_cast<std::int64_t>(i), i};
    a.push(e);
    b.push(e);
  }
  while (!a.empty()) {
    const std::size_t head = a.top().slot;
    a.pop();
    ASSERT_TRUE(b.remove_slot(head));
    // Identical repair => identical raw heap layout, not just same order.
    ASSERT_EQ(a.raw().size(), b.raw().size());
    for (std::size_t i = 0; i < a.raw().size(); ++i) {
      EXPECT_EQ(a.raw()[i].slot, b.raw()[i].slot);
      EXPECT_EQ(a.raw()[i].deadline, b.raw()[i].deadline);
    }
  }
  EXPECT_TRUE(b.empty());
}

TEST(EdfQueueRemoveSlot, InteriorRemovalKeepsTheHeapOrdered) {
  util::Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    sched::EdfReadyQueue q;
    const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 40));
    for (std::size_t i = 0; i < n; ++i) {
      q.push({rng.unit(), static_cast<std::int32_t>(i % 5),
              static_cast<std::int64_t>(i), i});
    }
    // Remove every other slot from the middle, then drain: the pops must
    // come out in EDF order.
    for (std::size_t s = 0; s < n; s += 2) ASSERT_TRUE(q.remove_slot(s));
    sched::EdfEntry prev{-1.0, 0, -1, 0};
    while (!q.empty()) {
      const sched::EdfEntry e = q.top();
      q.pop();
      EXPECT_TRUE(sched::edf_before(prev, e));
      EXPECT_EQ(e.slot % 2, 1u);
      prev = e;
    }
  }
}

TEST(EdfQueueRemoveSlot, MissingSlotReturnsFalseAndLeavesTheQueueIntact) {
  sched::EdfReadyQueue q;
  q.push({1.0, 0, 0, 0});
  q.push({2.0, 1, 0, 1});
  EXPECT_FALSE(q.remove_slot(7));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.top().slot, 0u);
}

// --- the GFB dispatch floor ----------------------------------------------

TEST(GlobalSpeedFloor, DisabledOnOneCoreAndClampedToOne) {
  const task::TaskSet ts = random_set(0.8, 99, 5);
  EXPECT_EQ(mp::global_speed_floor(ts, 0), 0.0);
  EXPECT_EQ(mp::global_speed_floor(ts, 1), 0.0);
  // Heavily loaded set on few cores: the unclamped bound exceeds 1.
  const task::TaskSet heavy = random_set(1.9, 100, 4, 0.9);
  EXPECT_EQ(mp::global_speed_floor(heavy, 2), 1.0);
}

TEST(GlobalSpeedFloor, MatchesTheGfbFormula) {
  const task::TaskSet ts = random_set(1.2, 7, 6, 0.5);
  double u_max = 0.0;
  for (const auto& t : ts) u_max = std::max(u_max, t.utilization());
  for (const std::size_t m : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const double expected =
        std::min(1.0, (ts.utilization() + (static_cast<double>(m) - 1.0) *
                                              u_max) /
                          static_cast<double>(m));
    EXPECT_DOUBLE_EQ(mp::global_speed_floor(ts, m), expected);
  }
}

// --- the M = 1 bit-identity contract -------------------------------------

TEST(GlobalDifferential, FiftySetsBitIdenticalToUniprocessor) {
  const cpu::Processor proc = cpu::ideal_processor();
  for (std::uint64_t i = 0; i < 50; ++i) {
    const std::uint64_t seed = util::hash_u64(0x610BA1, i);
    const double u = 0.3 + 0.65 * static_cast<double>(i) / 49.0;
    const std::size_t n = 3 + static_cast<std::size_t>(i % 8);
    const std::string& gov = kGovernors[i % kGovernors.size()];
    SCOPED_TRACE("set " + std::to_string(i) + " seed " +
                 std::to_string(seed) + " governor " + gov);

    const task::TaskSet ts = random_set(u, seed, n);
    const auto workload = task::uniform_model(seed);

    auto uni_gov = core::make_governor(gov);
    sim::SimOptions opts;
    opts.length = 0.4;
    opts.record_jobs = true;
    const sim::SimResult uni =
        sim::simulate(ts, *workload, proc, *uni_gov, opts);

    auto glob_gov = core::make_governor(gov);
    mp::GlobalOptions go;
    go.length = 0.4;
    go.n_cores = 1;
    go.record_jobs = true;
    const mp::GlobalResult glob =
        mp::simulate_global(ts, *workload, proc, *glob_gov, go);

    exp::expect_same_result(uni, glob.total);
    ASSERT_EQ(glob.cores.size(), 1u);
    exp::expect_same_result(uni, glob.cores.front());
    EXPECT_EQ(glob.total.migrations, 0);
    EXPECT_EQ(glob.total.migration_overhead_us, 0.0);
    EXPECT_TRUE(glob.migrations.empty());
  }
}

TEST(GlobalDifferential, TransitionCostProcessorStaysBitIdentical) {
  // Nonzero switch times exercise the stall-commitment machinery: the
  // M = 1 engine must defer in-stall releases to the stall end and only
  // re-query the governor when arrivals dissolved the commitment —
  // exactly the uniprocessor engine's arrivals-during-stall rule.
  const cpu::Processor proc = cpu::strongarm_processor();
  for (std::uint64_t i = 0; i < 12; ++i) {
    const std::uint64_t seed = util::hash_u64(0x57A11, i);
    const std::string& gov = kGovernors[i % kGovernors.size()];
    SCOPED_TRACE("seed " + std::to_string(seed) + " governor " + gov);
    const task::TaskSet ts = random_set(0.4 + 0.04 * static_cast<double>(i),
                                        seed, 4 + i % 5);
    const auto workload = task::uniform_model(seed);

    auto g1 = core::make_governor(gov);
    sim::SimOptions opts;
    opts.length = 0.4;
    opts.record_jobs = true;
    const sim::SimResult uni = sim::simulate(ts, *workload, proc, *g1, opts);

    auto g2 = core::make_governor(gov);
    mp::GlobalOptions go;
    go.length = 0.4;
    go.n_cores = 1;
    go.record_jobs = true;
    const mp::GlobalResult glob =
        mp::simulate_global(ts, *workload, proc, *g2, go);
    exp::expect_same_result(uni, glob.total);
  }
}

TEST(GlobalDifferential, DegradationArmStaysBitIdentical) {
  // Overloaded weakly-hard sets force skips, mode changes and the
  // release-path version bumps the commitment rule depends on.
  degrade::DegradationConfig dcfg;
  dcfg.enter_pressure = 1;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::uint64_t seed = util::hash_u64(0xDE61ADE, i);
    const std::string& gov = kGovernors[i % kGovernors.size()];
    SCOPED_TRACE("seed " + std::to_string(seed) + " governor " + gov);
    task::TaskSet ts =
        random_set(1.05 + 0.03 * static_cast<double>(i), seed, 8);
    ts = degrade::with_firmness(ts, 1, 2);
    const auto workload = task::constant_ratio_model(1.0);

    auto g1 = core::make_governor(gov);
    sim::SimOptions opts;
    opts.length = 0.5;
    opts.record_jobs = true;
    opts.degradation = &dcfg;
    const sim::SimResult uni =
        sim::simulate(ts, *workload, cpu::ideal_processor(), *g1, opts);
    EXPECT_GT(uni.jobs_skipped, 0);  // the arm must actually shed

    auto g2 = core::make_governor(gov);
    mp::GlobalOptions go;
    go.length = 0.5;
    go.n_cores = 1;
    go.record_jobs = true;
    go.degradation = &dcfg;
    const mp::GlobalResult glob =
        mp::simulate_global(ts, *workload, cpu::ideal_processor(), *g2, go);
    exp::expect_same_result(uni, glob.total);
  }
}

TEST(GlobalDifferential, ContainmentAndFaultArmsStayBitIdentical) {
  // Overrunning workloads under every containment policy, on a processor
  // with injected stuck-frequency and stall faults: the escalation branch,
  // budget timers and the per-core fault-model indexing must all reduce
  // to the uniprocessor sequence at M = 1.
  fault::FaultSpec spec;
  spec.seed = 23;
  spec.overrun_prob = 0.4;
  spec.overrun_magnitude = 0.5;
  spec.stuck_prob = 0.3;
  spec.stall_prob = 0.5;
  spec.stall_time = 0.002;
  const cpu::Processor proc =
      fault::faulty_processor(cpu::ideal_processor(), spec);
  for (const auto policy :
       {sim::OverrunPolicy::kNone, sim::OverrunPolicy::kClampAtWcet,
        sim::OverrunPolicy::kEscalateToMaxSpeed}) {
    for (std::uint64_t i = 0; i < 6; ++i) {
      const std::uint64_t seed = util::hash_u64(0xFA111, i);
      const std::string& gov = kGovernors[(i + 3) % kGovernors.size()];
      SCOPED_TRACE("policy " + std::to_string(static_cast<int>(policy)) +
                   " seed " + std::to_string(seed) + " governor " + gov);
      const task::TaskSet ts =
          random_set(0.35 + 0.05 * static_cast<double>(i), seed, 5);
      const auto workload =
          fault::faulty_workload(task::uniform_model(seed), spec);

      auto g1 = core::make_governor(gov);
      sim::SimOptions opts;
      opts.length = 0.4;
      opts.record_jobs = true;
      opts.containment = policy;
      const sim::SimResult uni =
          sim::simulate(ts, *workload, proc, *g1, opts);

      auto g2 = core::make_governor(gov);
      mp::GlobalOptions go;
      go.length = 0.4;
      go.n_cores = 1;
      go.record_jobs = true;
      go.containment = policy;
      const mp::GlobalResult glob =
          mp::simulate_global(ts, *workload, proc, *g2, go);
      exp::expect_same_result(uni, glob.total);
    }
  }
}

TEST(GlobalDifferential, StopOnMissHaltsAtTheSameInstant) {
  // An infeasible set guarantees a miss; both engines must stop at the
  // same first-miss event with identical partial accounting.
  for (std::uint64_t i = 0; i < 6; ++i) {
    const std::uint64_t seed = util::hash_u64(0x57090, i);
    const std::string& gov = kGovernors[i % kGovernors.size()];
    SCOPED_TRACE("seed " + std::to_string(seed) + " governor " + gov);
    const task::TaskSet ts =
        random_set(1.2 + 0.05 * static_cast<double>(i), seed, 6);
    const auto workload = task::constant_ratio_model(1.0);

    auto g1 = core::make_governor(gov);
    sim::SimOptions opts;
    opts.length = 0.5;
    opts.record_jobs = true;
    opts.stop_on_miss = true;
    const sim::SimResult uni =
        sim::simulate(ts, *workload, cpu::ideal_processor(), *g1, opts);
    EXPECT_GT(uni.deadline_misses, 0);

    auto g2 = core::make_governor(gov);
    mp::GlobalOptions go;
    go.length = 0.5;
    go.n_cores = 1;
    go.record_jobs = true;
    go.stop_on_miss = true;
    const mp::GlobalResult glob =
        mp::simulate_global(ts, *workload, cpu::ideal_processor(), *g2, go);
    exp::expect_same_result(uni, glob.total);
  }
}

TEST(GlobalDifferential, MpBackendSelectorRoutesToGlobal) {
  const std::uint64_t seed = 77;
  const task::TaskSet ts = random_set(0.6, seed, 5);
  const auto workload = task::uniform_model(seed);

  auto g1 = core::make_governor("DRA");
  mp::GlobalOptions go;
  go.length = 0.4;
  go.n_cores = 2;
  const mp::GlobalResult direct = mp::simulate_global(
      ts, *workload, cpu::ideal_processor(), *g1, go);

  mp::MpOptions mo;
  mo.backend = mp::MpBackend::kGlobal;
  mo.n_cores = 2;
  mo.length = 0.4;
  const mp::MpResult via_mp = mp::simulate_mp(
      ts, workload, cpu::ideal_processor(),
      [] { return core::make_governor("DRA"); }, mo);

  EXPECT_EQ(via_mp.backend, mp::MpBackend::kGlobal);
  exp::expect_same_result(direct.total, via_mp.total);
  ASSERT_EQ(via_mp.cores.size(), 2u);
  for (std::size_t c = 0; c < 2; ++c) {
    exp::expect_same_result(direct.cores[c], via_mp.cores[c]);
  }
  EXPECT_EQ(via_mp.migrations.size(), direct.migrations.size());
  EXPECT_NE(via_mp.summary().find("global"), std::string::npos);

  // Backend names round-trip and reject garbage.
  EXPECT_EQ(mp::backend_by_name("global"), mp::MpBackend::kGlobal);
  EXPECT_EQ(mp::backend_by_name("Partitioned"), mp::MpBackend::kPartitioned);
  EXPECT_THROW((void)mp::backend_by_name("clustered"), util::ContractError);
}

// --- M >= 2: the zero-miss guarantee and platform accounting -------------

TEST(GlobalZeroMiss, GfbBoundedSetsNeverMissOnIdealCores) {
  // U <= 0.6 M with per-task utilization <= 0.35 keeps the GFB floor
  // strictly below 1, so the engine's dispatch floor guarantees the
  // schedule.  A handful of governors here; the full registry fuzz lives
  // in test_global_property.cpp.
  const cpu::Processor proc = cpu::ideal_processor();
  for (const std::size_t m : {std::size_t{2}, std::size_t{4}}) {
    for (std::uint64_t i = 0; i < 6; ++i) {
      const std::uint64_t seed = util::hash_u64(0x0FFB, m, i);
      const double u = 0.6 * static_cast<double>(m) *
                       (0.5 + 0.5 * static_cast<double>(i) / 5.0);
      const std::string& gov = kGovernors[i % kGovernors.size()];
      SCOPED_TRACE("M=" + std::to_string(m) + " seed=" +
                   std::to_string(seed) + " U=" + std::to_string(u) +
                   " governor=" + gov);
      const task::TaskSet ts = random_set(u, seed, 12, 0.35);
      ASSERT_LT(mp::global_speed_floor(ts, m), 1.0);
      const auto workload = task::uniform_model(seed);
      auto g = core::make_governor(gov);
      mp::GlobalOptions go;
      go.length = 0.3;
      go.n_cores = m;
      const mp::GlobalResult r =
          mp::simulate_global(ts, *workload, proc, *g, go);
      EXPECT_EQ(r.total.deadline_misses, 0);
      EXPECT_EQ(r.total.jobs_completed + r.total.jobs_truncated,
                r.total.jobs_released);
      // All M cores are powered: the time breakdown tiles M x length.
      EXPECT_NEAR(r.total.busy_time + r.total.idle_time +
                      r.total.transition_time,
                  static_cast<double>(m) * 0.3, 1e-6);
    }
  }
}

TEST(GlobalMigration, SurchargeIsCountedAndCharged) {
  // A set that forces preemptions across cores; with a nonzero cost every
  // counted migration must surface in the aggregate overhead and inflate
  // the recorded job demands relative to the fresh workload draws.
  const std::uint64_t seed = 4242;
  const task::TaskSet ts = random_set(1.1, seed, 9, 0.35);
  const auto workload = task::uniform_model(seed);
  const Time cost = 1e-4;

  auto g = core::make_governor("ccEDF");
  mp::GlobalOptions go;
  go.length = 0.4;
  go.n_cores = 2;
  go.migration_cost = cost;
  go.record_jobs = true;
  const mp::GlobalResult r =
      mp::simulate_global(ts, *workload, cpu::ideal_processor(), *g, go);
  ASSERT_GT(r.total.migrations, 0) << "set failed to provoke migrations";
  EXPECT_NEAR(r.total.migration_overhead_us,
              static_cast<double>(r.total.migrations) * cost * 1e6, 1e-6);
  EXPECT_EQ(static_cast<std::int64_t>(r.migrations.size()),
            r.total.migrations);

  // Conservation: summed job-demand inflation == total surcharge work.
  double inflation = 0.0;
  for (const auto& j : r.total.jobs) {
    if (j.skipped) continue;
    const Work base = workload->draw(ts[static_cast<std::size_t>(j.task_id)],
                                     j.index);
    EXPECT_GE(j.actual + 1e-12, std::min(base, j.wcet));
    inflation += j.actual - std::min(base, ts[static_cast<std::size_t>(
                                               j.task_id)].wcet);
  }
  EXPECT_NEAR(inflation * 1e6, r.total.migration_overhead_us, 1e-3);

  // Records are time-ordered and name real cores.
  Time prev = 0.0;
  for (const auto& m : r.migrations) {
    EXPECT_GE(m.at, prev);
    prev = m.at;
    EXPECT_NE(m.from_core, m.to_core);
    EXPECT_GE(m.from_core, 0);
    EXPECT_LT(m.to_core, 2);
  }
}

TEST(GlobalMigration, ZeroCostStillCountsMigrations) {
  const std::uint64_t seed = 4242;  // same shape as above: migrations occur
  const task::TaskSet ts = random_set(1.1, seed, 9, 0.35);
  const auto workload = task::uniform_model(seed);
  auto g = core::make_governor("ccEDF");
  mp::GlobalOptions go;
  go.length = 0.4;
  go.n_cores = 2;
  const mp::GlobalResult r =
      mp::simulate_global(ts, *workload, cpu::ideal_processor(), *g, go);
  EXPECT_GT(r.total.migrations, 0);
  EXPECT_EQ(r.total.migration_overhead_us, 0.0);
  EXPECT_NE(r.total.summary().find("migrations"), std::string::npos);
}

TEST(GlobalTrace, PerCoreTracesTileTheHorizon) {
  // Every core's segments must cover [0, length] without gaps or overlap
  // — the invariant the Chrome-trace exporter (and its validator) builds
  // on.  Release events land on core 0; completions on the owning core.
  const std::uint64_t seed = 99;
  const task::TaskSet ts = random_set(1.0, seed, 8, 0.35);
  const auto workload = task::uniform_model(seed);
  auto g = core::make_governor("DRA");
  std::vector<sim::VectorTrace> traces;
  mp::GlobalOptions go;
  go.length = 0.3;
  go.n_cores = 3;
  go.traces = &traces;
  const mp::GlobalResult r =
      mp::simulate_global(ts, *workload, cpu::ideal_processor(), *g, go);
  ASSERT_EQ(traces.size(), 3u);
  std::int64_t releases = 0;
  std::int64_t completions = 0;
  for (std::size_t c = 0; c < traces.size(); ++c) {
    SCOPED_TRACE("core " + std::to_string(c));
    Time covered = 0.0;
    Time cursor = 0.0;
    for (const auto& s : traces[c].segments()) {
      EXPECT_NEAR(s.begin, cursor, 1e-9);
      EXPECT_GT(s.end, s.begin);
      covered += s.end - s.begin;
      cursor = s.end;
    }
    EXPECT_NEAR(covered, 0.3, 1e-6);
    for (const auto& e : traces[c].events()) {
      if (e.kind == sim::TraceEvent::Kind::kRelease) {
        ++releases;
        EXPECT_EQ(c, 0u);  // platform events live on core 0's track
      }
      if (e.kind == sim::TraceEvent::Kind::kCompletion) ++completions;
    }
  }
  EXPECT_EQ(releases, r.total.jobs_released);
  EXPECT_EQ(completions, r.total.jobs_completed);
}

// --- exp-layer integration: determinism across thread counts -------------

TEST(GlobalSweep, BitIdenticalForEveryThreadCount) {
  // The whole-platform engine run is the unit of work of global sweeps,
  // so a SweepOutcome — stats, totals, per-case results, migration
  // aggregates — must be bit-identical for 1, 2 and 8 worker threads.
  exp::ExperimentConfig cfg = exp::default_config();
  cfg.replications = 3;
  cfg.sim_length = 0.3;
  cfg.keep_case_outcomes = true;
  cfg.record_jobs = true;
  cfg.n_cores = 3;
  cfg.mp_backend = mp::MpBackend::kGlobal;
  cfg.migration_cost = 2e-5;
  const exp::CaseBuilder builder = [](double u, std::size_t /*rep*/,
                                      std::uint64_t seed) {
    return exp::Case{random_set(u, seed, 10, 0.35),
                     task::uniform_model(seed)};
  };
  const std::vector<double> xs{0.8, 1.4};

  cfg.n_threads = 1;
  const exp::SweepOutcome serial = exp::run_sweep(cfg, "U", xs, builder);
  EXPECT_TRUE(serial.global_mp);
  EXPECT_TRUE(serial.failures.empty());
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    cfg.n_threads = threads;
    const exp::SweepOutcome parallel = exp::run_sweep(cfg, "U", xs, builder);
    exp::expect_same_sweep(serial, parallel);
  }
}

TEST(GlobalSweep, RunCaseRoutesThroughTheGlobalBackend) {
  exp::ExperimentConfig cfg = exp::default_config();
  cfg.governors = {"ccEDF"};
  cfg.sim_length = 0.3;
  cfg.n_cores = 2;
  cfg.mp_backend = mp::MpBackend::kGlobal;
  const std::uint64_t seed = 51;
  const exp::Case c{random_set(0.9, seed, 8, 0.35),
                    task::uniform_model(seed)};
  const exp::CaseOutcome out = exp::run_case(c, cfg);
  ASSERT_EQ(out.outcomes.size(), 2u);  // noDVS reference + ccEDF
  for (const auto& g : out.outcomes) {
    ASSERT_FALSE(g.failed()) << g.error;
    ASSERT_NE(g.mp, nullptr);
    EXPECT_EQ(g.mp->backend, mp::MpBackend::kGlobal);
    EXPECT_EQ(g.mp->cores.size(), 2u);
    EXPECT_EQ(g.result.deadline_misses, 0);
  }
  // The oracle's lower bound decomposes over independent cores, which
  // migration invalidates — the combination must refuse loudly.
  cfg.oracle = true;
  EXPECT_THROW((void)exp::run_case(c, cfg), util::ContractError);
}

TEST(GlobalInputValidation, RejectsBadOptions) {
  const task::TaskSet ts = random_set(0.5, 1, 4);
  const auto workload = task::uniform_model(1);
  auto g = core::make_governor("noDVS");
  {
    mp::GlobalOptions go;
    go.n_cores = 0;
    EXPECT_THROW((void)mp::simulate_global(ts, *workload,
                                           cpu::ideal_processor(), *g, go),
                 util::ContractError);
  }
  {
    mp::GlobalOptions go;
    go.migration_cost = -1.0;
    EXPECT_THROW((void)mp::simulate_global(ts, *workload,
                                           cpu::ideal_processor(), *g, go),
                 util::ContractError);
  }
}

}  // namespace
}  // namespace dvs
