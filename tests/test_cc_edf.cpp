#include "core/cc_edf.hpp"

#include <gtest/gtest.h>

#include "fake_context.hpp"
#include "sim/simulator.hpp"
#include "task/workload.hpp"

namespace dvs::core {
namespace {

using task::make_task;
using task::TaskSet;
using dvs::testing::FakeContext;

TaskSet two_tasks() {
  TaskSet ts("cc");
  ts.add(make_task(0, "a", 10.0, 4.0, 0.4));  // u = 0.4
  ts.add(make_task(1, "b", 20.0, 8.0, 0.8));  // u = 0.4
  return ts;
}

TEST(CcEdf, StartsAtWorstCaseUtilization) {
  FakeContext ctx(two_tasks());
  auto& job = ctx.add_job(0, 0, 0.0);
  CcEdfGovernor g;
  g.on_start(ctx);
  EXPECT_NEAR(g.select_speed(job, ctx), 0.8, 1e-12);
}

TEST(CcEdf, EarlyCompletionLowersShare) {
  FakeContext ctx(two_tasks());
  auto& j0 = ctx.add_job(0, 0, 0.0);
  auto& j1 = ctx.add_job(1, 0, 0.0);
  CcEdfGovernor g;
  g.on_start(ctx);
  // Job of task 0 finishes having used only 1.0 of its 4.0 budget:
  // its share drops from 0.4 to 0.1 -> total 0.5.
  j0.actual = 1.0;
  j0.executed = 1.0;
  g.on_completion(j0, ctx);
  EXPECT_NEAR(g.select_speed(j1, ctx), 0.5, 1e-12);
}

TEST(CcEdf, ReleaseRestoresWorstCaseShare) {
  FakeContext ctx(two_tasks());
  auto& j0 = ctx.add_job(0, 0, 0.0);
  auto& j1 = ctx.add_job(1, 0, 0.0);
  CcEdfGovernor g;
  g.on_start(ctx);
  j0.actual = 1.0;
  j0.executed = 1.0;
  g.on_completion(j0, ctx);
  // Next job of task 0 arrives: back to 0.4 + 0.4.
  auto& j0b = ctx.add_job(0, 1, 10.0);
  g.on_release(j0b, ctx);
  EXPECT_NEAR(g.select_speed(j1, ctx), 0.8, 1e-12);
}

TEST(CcEdf, WorstCaseWorkloadMatchesStaticSpeed) {
  // When every job really uses its WCET, ccEDF behaves like staticEDF
  // between releases (shares never drop below the worst case for long).
  const TaskSet ts = two_tasks();
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  CcEdfGovernor g;
  sim::SimOptions opts;
  opts.length = 100.0;
  const auto r = sim::simulate(ts, *workload, proc, g, opts);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_NEAR(r.average_speed, 0.8, 0.05);
}

TEST(CcEdf, LightWorkloadScalesDown) {
  const TaskSet ts = two_tasks();
  const auto workload = task::constant_ratio_model(0.3);
  const cpu::Processor proc = cpu::ideal_processor();
  CcEdfGovernor g;
  sim::SimOptions opts;
  opts.length = 200.0;
  const auto r = sim::simulate(ts, *workload, proc, g, opts);
  EXPECT_EQ(r.deadline_misses, 0);
  // Shares sit between 0.3 * U and U depending on completion timing.
  EXPECT_LT(r.average_speed, 0.8);
  EXPECT_GT(r.average_speed, 0.2);
}

TEST(CcEdf, SpeedClampedToOneUnderOverrun) {
  // Shares can sum above 1 transiently for U = 1 sets; speed must clamp.
  TaskSet ts("full");
  ts.add(make_task(0, "a", 10.0, 5.0));
  ts.add(make_task(1, "b", 10.0, 5.0));
  FakeContext ctx(std::move(ts));
  auto& job = ctx.add_job(0, 0, 0.0);
  CcEdfGovernor g;
  g.on_start(ctx);
  EXPECT_DOUBLE_EQ(g.select_speed(job, ctx), 1.0);
}

}  // namespace
}  // namespace dvs::core
