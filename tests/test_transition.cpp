#include "cpu/transition.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace dvs::cpu {
namespace {

using util::ContractError;

TEST(TransitionNone, CostsNothing) {
  const auto m = TransitionModel::none();
  const auto pm = cubic_power_model();
  EXPECT_TRUE(m.is_free());
  EXPECT_DOUBLE_EQ(m.switch_time(0.2, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(m.switch_energy(*pm, 0.2, 1.0), 0.0);
}

TEST(TransitionConstant, FixedCosts) {
  const auto m = TransitionModel::constant(1e-4, 0.002);
  const auto pm = cubic_power_model();
  EXPECT_FALSE(m.is_free());
  EXPECT_DOUBLE_EQ(m.switch_time(0.2, 1.0), 1e-4);
  EXPECT_DOUBLE_EQ(m.switch_energy(*pm, 0.2, 1.0), 0.002);
}

TEST(TransitionConstant, NoChangeNoCost) {
  const auto m = TransitionModel::constant(1e-4, 0.002);
  const auto pm = cubic_power_model();
  EXPECT_DOUBLE_EQ(m.switch_time(0.5, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(m.switch_energy(*pm, 0.5, 0.5), 0.0);
}

TEST(TransitionConstant, RejectsNegativeCosts) {
  EXPECT_THROW((void)TransitionModel::constant(-1.0, 0.0), ContractError);
  EXPECT_THROW((void)TransitionModel::constant(0.0, -1.0), ContractError);
}

TEST(TransitionVoltageDelta, BurdsFormula) {
  // E = k * Cdd * |V1^2 - V2^2| / Pmax; cubic model: V = vmax * alpha.
  const auto pm = cubic_power_model(0.0, /*vmax=*/2.0);
  const auto m = TransitionModel::voltage_delta(/*t_switch=*/1e-4,
                                                /*cdd=*/5e-6, /*k=*/0.9,
                                                /*pmax_watts=*/1.0);
  // V(1.0) = 2, V(0.5) = 1 -> |4 - 1| = 3.
  EXPECT_NEAR(m.switch_energy(*pm, 1.0, 0.5), 0.9 * 5e-6 * 3.0, 1e-15);
  EXPECT_DOUBLE_EQ(m.switch_time(1.0, 0.5), 1e-4);
}

TEST(TransitionVoltageDelta, SymmetricInDirection) {
  const auto pm = cubic_power_model(0.0, 1.8);
  const auto m = TransitionModel::voltage_delta(1e-5);
  EXPECT_DOUBLE_EQ(m.switch_energy(*pm, 0.3, 0.9),
                   m.switch_energy(*pm, 0.9, 0.3));
}

TEST(TransitionVoltageDelta, LargerSwingCostsMore) {
  const auto pm = cubic_power_model(0.0, 1.8);
  const auto m = TransitionModel::voltage_delta(1e-5);
  EXPECT_GT(m.switch_energy(*pm, 0.1, 1.0), m.switch_energy(*pm, 0.8, 1.0));
}

TEST(TransitionVoltageDelta, NormalizesByReferencePower) {
  const auto pm = cubic_power_model(0.0, 1.8);
  const auto small = TransitionModel::voltage_delta(1e-5, 5e-6, 0.9, 1.0);
  const auto big = TransitionModel::voltage_delta(1e-5, 5e-6, 0.9, 2.0);
  EXPECT_NEAR(small.switch_energy(*pm, 0.2, 1.0),
              2.0 * big.switch_energy(*pm, 0.2, 1.0), 1e-15);
}

TEST(TransitionVoltageDelta, RejectsBadArguments) {
  EXPECT_THROW((void)TransitionModel::voltage_delta(-1.0), ContractError);
  EXPECT_THROW((void)TransitionModel::voltage_delta(0.0, 0.0), ContractError);
  EXPECT_THROW((void)TransitionModel::voltage_delta(0.0, 5e-6, 0.0),
               ContractError);
  EXPECT_THROW((void)TransitionModel::voltage_delta(0.0, 5e-6, 0.9, 0.0),
               ContractError);
}

TEST(TransitionDescribe, NamesModel) {
  EXPECT_EQ(TransitionModel::none().describe(), "free");
  EXPECT_NE(TransitionModel::constant(1e-4, 0.0).describe().find("constant"),
            std::string::npos);
  EXPECT_NE(
      TransitionModel::voltage_delta(1e-4).describe().find("voltage-delta"),
      std::string::npos);
}

}  // namespace
}  // namespace dvs::cpu
