#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/no_dvs.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"

namespace dvs::sim {
namespace {

using task::make_task;
using task::TaskSet;

/// Test governor: always requests a fixed speed.
class FixedSpeedGovernor final : public Governor {
 public:
  explicit FixedSpeedGovernor(double alpha) : alpha_(alpha) {}
  double select_speed(const Job&, const SimContext&) override { return alpha_; }
  std::string name() const override { return "fixed"; }

 private:
  double alpha_;
};

/// Test governor: alternates between two speeds on every decision.
class AlternatingGovernor final : public Governor {
 public:
  double select_speed(const Job&, const SimContext&) override {
    flip_ = !flip_;
    return flip_ ? 1.0 : 0.5;
  }
  std::string name() const override { return "alternating"; }

 private:
  bool flip_ = false;
};

/// Test governor: records SimContext observations for later inspection.
class ProbeGovernor final : public Governor {
 public:
  double select_speed(const Job& running, const SimContext& ctx) override {
    const auto jobs = ctx.active_jobs();
    EXPECT_FALSE(jobs.empty());
    // The running job is the EDF head.
    EXPECT_EQ(jobs.front()->task_id, running.task_id);
    EXPECT_EQ(jobs.front()->index, running.index);
    for (std::size_t i = 1; i < jobs.size(); ++i) {
      EXPECT_LE(jobs[i - 1]->abs_deadline, jobs[i]->abs_deadline + kTimeEps);
    }
    EXPECT_GT(ctx.next_release_after(ctx.now()), ctx.now());
    max_active_ = std::max(max_active_, jobs.size());
    return 1.0;
  }
  std::string name() const override { return "probe"; }
  std::size_t max_active_ = 0;
};

TaskSet one_task() {
  TaskSet ts("one");
  ts.add(make_task(0, "a", 10.0, 2.0, 0.5));
  return ts;
}

TEST(Simulator, SingleTaskFullSpeedAccounting) {
  const TaskSet ts = one_task();
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  core::NoDvsGovernor g;
  SimOptions opts;
  opts.length = 40.0;
  const SimResult r = simulate(ts, *workload, proc, g, opts);

  EXPECT_EQ(r.jobs_released, 4);
  EXPECT_EQ(r.jobs_completed, 4);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_EQ(r.speed_switches, 0);
  EXPECT_NEAR(r.busy_time, 8.0, 1e-9);   // 4 jobs x 2 s at full speed
  EXPECT_NEAR(r.idle_time, 32.0, 1e-9);
  EXPECT_NEAR(r.busy_energy, 8.0, 1e-9);  // P(1) = 1
  EXPECT_NEAR(r.idle_energy, 0.0, 1e-12);
  EXPECT_NEAR(r.average_speed, 1.0, 1e-9);
}

TEST(Simulator, HalfSpeedDoublesBusyTimeCubicallyCutsEnergy) {
  const TaskSet ts = one_task();
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  FixedSpeedGovernor g(0.5);
  SimOptions opts;
  opts.length = 40.0;
  const SimResult r = simulate(ts, *workload, proc, g, opts);

  EXPECT_EQ(r.deadline_misses, 0);  // 2/0.5 = 4 <= deadline 10
  EXPECT_NEAR(r.busy_time, 16.0, 1e-9);
  EXPECT_NEAR(r.busy_energy, 16.0 * 0.125, 1e-9);  // P(0.5) = 1/8
  EXPECT_NEAR(r.average_speed, 0.5, 1e-9);
}

TEST(Simulator, EarlyCompletionUsesActualNotWcet) {
  const TaskSet ts = one_task();
  const auto workload = task::constant_ratio_model(0.5);  // actual = 1.0
  const cpu::Processor proc = cpu::ideal_processor();
  core::NoDvsGovernor g;
  SimOptions opts;
  opts.length = 40.0;
  opts.record_jobs = true;
  const SimResult r = simulate(ts, *workload, proc, g, opts);
  EXPECT_NEAR(r.busy_time, 4.0, 1e-9);  // 4 jobs x 1 s
  ASSERT_EQ(r.jobs.size(), 4u);
  for (const auto& j : r.jobs) {
    EXPECT_NEAR(j.actual, 1.0, 1e-12);
    EXPECT_NEAR(j.completion - j.release, 1.0, 1e-9);
  }
}

TEST(Simulator, EdfPreemptionOrder) {
  // T1 = {C=1, T=4}, T2 = {C=2, T=8}: at t=0 J1 (d=4) runs before J2 (d=8);
  // at t=4 the new J1 (d=8) ties with J2 -> task id breaks the tie.
  TaskSet ts("two");
  ts.add(make_task(0, "hi", 4.0, 1.0));
  ts.add(make_task(1, "lo", 8.0, 2.0));
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  core::NoDvsGovernor g;
  VectorTrace trace;
  SimOptions opts;
  opts.length = 8.0;
  opts.trace = &trace;
  const SimResult r = simulate(ts, *workload, proc, g, opts);
  EXPECT_EQ(r.deadline_misses, 0);

  // Expected busy segments: [0,1] task0, [1,3] task1, idle [3,4],
  // [4,5] task0, idle [5,8].
  std::vector<std::pair<double, int>> busy;
  for (const auto& s : trace.segments()) {
    if (s.kind == SegmentKind::kBusy) {
      busy.push_back({s.begin, s.task_id});
    }
  }
  ASSERT_EQ(busy.size(), 3u);
  EXPECT_EQ(busy[0], (std::pair<double, int>{0.0, 0}));
  EXPECT_EQ(busy[1], (std::pair<double, int>{1.0, 1}));
  EXPECT_EQ(busy[2], (std::pair<double, int>{4.0, 0}));
}

TEST(Simulator, PreemptionSplitsExecution) {
  // Slow task started first gets preempted by a later-released urgent one.
  TaskSet ts("preempt");
  auto urgent = make_task(0, "urgent", 10.0, 1.0);
  urgent.phase = 1.0;  // arrives mid-execution of "slow"
  auto slow = make_task(1, "slow", 20.0, 5.0);
  ts.add(urgent);
  ts.add(slow);
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  core::NoDvsGovernor g;
  VectorTrace trace;
  SimOptions opts;
  opts.length = 20.0;
  opts.trace = &trace;
  const SimResult r = simulate(ts, *workload, proc, g, opts);
  EXPECT_EQ(r.deadline_misses, 0);

  // slow runs [0,1], urgent [1,2] (deadline 11 < 20), slow resumes [2,6].
  std::vector<std::tuple<double, double, int>> busy;
  for (const auto& s : trace.segments()) {
    if (s.kind == SegmentKind::kBusy) busy.push_back({s.begin, s.end, s.task_id});
  }
  ASSERT_GE(busy.size(), 3u);
  EXPECT_EQ(std::get<2>(busy[0]), 1);
  EXPECT_NEAR(std::get<1>(busy[0]), 1.0, 1e-9);
  EXPECT_EQ(std::get<2>(busy[1]), 0);
  EXPECT_NEAR(std::get<1>(busy[1]), 2.0, 1e-9);
  EXPECT_EQ(std::get<2>(busy[2]), 1);
  EXPECT_NEAR(std::get<1>(busy[2]), 6.0, 1e-9);
}

TEST(Simulator, DetectsMissesOnOverload) {
  TaskSet ts("overload");
  ts.add(make_task(0, "a", 10.0, 7.0));
  ts.add(make_task(1, "b", 10.0, 7.0));  // U = 1.4
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  core::NoDvsGovernor g;
  SimOptions opts;
  opts.length = 100.0;
  const SimResult r = simulate(ts, *workload, proc, g, opts);
  EXPECT_GT(r.deadline_misses, 0);
}

TEST(Simulator, StopOnMissHaltsEarly) {
  TaskSet ts("overload");
  ts.add(make_task(0, "a", 10.0, 7.0));
  ts.add(make_task(1, "b", 10.0, 7.0));
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  core::NoDvsGovernor g;
  SimOptions opts;
  opts.length = 1000.0;
  opts.stop_on_miss = true;
  const SimResult r = simulate(ts, *workload, proc, g, opts);
  EXPECT_GE(r.deadline_misses, 1);
  // Halted long before the nominal end.
  EXPECT_LT(r.busy_time + r.idle_time, 100.0);
}

TEST(Simulator, QuantizesRequestsUpward) {
  const TaskSet ts = one_task();
  const auto workload = task::constant_ratio_model(1.0);
  cpu::Processor proc = cpu::four_level_processor();
  FixedSpeedGovernor g(0.3);  // -> 0.5 on the 4-level scale
  SimOptions opts;
  opts.length = 10.0;
  const SimResult r = simulate(ts, *workload, proc, g, opts);
  EXPECT_NEAR(r.busy_time, 2.0 / 0.5, 1e-9);
  EXPECT_NEAR(r.average_speed, 0.5, 1e-9);
}

TEST(Simulator, ChargesTransitionCosts) {
  const TaskSet ts = one_task();
  const auto workload = task::constant_ratio_model(1.0);
  cpu::Processor proc = cpu::ideal_processor();
  proc.transition = cpu::TransitionModel::constant(0.01, 0.05);
  AlternatingGovernor g;
  SimOptions opts;
  opts.length = 40.0;
  const SimResult r = simulate(ts, *workload, proc, g, opts);
  EXPECT_GT(r.speed_switches, 0);
  EXPECT_NEAR(r.transition_energy,
              0.05 * static_cast<double>(r.speed_switches), 1e-9);
  EXPECT_NEAR(r.transition_time,
              0.01 * static_cast<double>(r.speed_switches), 1e-9);
  EXPECT_EQ(r.deadline_misses, 0);
}

TEST(Simulator, FreeTransitionsStillCounted) {
  const TaskSet ts = one_task();
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  AlternatingGovernor g;
  SimOptions opts;
  opts.length = 40.0;
  const SimResult r = simulate(ts, *workload, proc, g, opts);
  EXPECT_GT(r.speed_switches, 0);
  EXPECT_DOUBLE_EQ(r.transition_energy, 0.0);
}

TEST(Simulator, TimeBreakdownCoversLength) {
  TaskSet ts("two");
  ts.add(make_task(0, "a", 0.1, 0.03, 0.01));
  ts.add(make_task(1, "b", 0.25, 0.05, 0.02));
  const auto workload = task::uniform_model(3);
  cpu::Processor proc = cpu::ideal_processor();
  proc.transition = cpu::TransitionModel::constant(1e-4, 0.0);
  AlternatingGovernor g;
  SimOptions opts;
  opts.length = 2.0;
  const SimResult r = simulate(ts, *workload, proc, g, opts);
  EXPECT_NEAR(r.busy_time + r.idle_time + r.transition_time, 2.0, 1e-6);
}

TEST(Simulator, ContextInvariantsHold) {
  TaskSet ts("three");
  ts.add(make_task(0, "a", 0.1, 0.02));
  ts.add(make_task(1, "b", 0.15, 0.03));
  ts.add(make_task(2, "c", 0.4, 0.1));
  const auto workload = task::uniform_model(4);
  const cpu::Processor proc = cpu::ideal_processor();
  ProbeGovernor g;
  SimOptions opts;
  opts.length = 2.0;
  const SimResult r = simulate(ts, *workload, proc, g, opts);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_GE(g.max_active_, 2u);  // preemption scenarios occurred
}

TEST(Simulator, WorkloadIdenticalAcrossGovernors) {
  TaskSet ts("two");
  ts.add(make_task(0, "a", 0.1, 0.03, 0.003));
  ts.add(make_task(1, "b", 0.25, 0.05, 0.005));
  const auto workload = task::uniform_model(77);
  const cpu::Processor proc = cpu::ideal_processor();
  SimOptions opts;
  opts.length = 2.0;
  opts.record_jobs = true;

  core::NoDvsGovernor fast;
  FixedSpeedGovernor slow(0.6);
  const SimResult a = simulate(ts, *workload, proc, fast, opts);
  const SimResult b = simulate(ts, *workload, proc, slow, opts);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].actual, b.jobs[i].actual);
  }
}

TEST(Simulator, TruncatedJobsAreNotMisses) {
  TaskSet ts("late");
  ts.add(make_task(0, "a", 10.0, 6.0));
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  core::NoDvsGovernor g;
  SimOptions opts;
  opts.length = 13.0;  // second job (release 10, deadline 20) gets cut off
  const SimResult r = simulate(ts, *workload, proc, g, opts);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_EQ(r.jobs_truncated, 1);
  EXPECT_EQ(r.jobs_released, 2);
  EXPECT_EQ(r.jobs_completed, 1);
}

TEST(Simulator, PhasedReleasesStartLate) {
  TaskSet ts("phase");
  auto t = make_task(0, "a", 10.0, 2.0);
  t.phase = 5.0;
  ts.add(t);
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  core::NoDvsGovernor g;
  VectorTrace trace;
  SimOptions opts;
  opts.length = 20.0;
  opts.trace = &trace;
  const SimResult r = simulate(ts, *workload, proc, g, opts);
  EXPECT_EQ(r.jobs_released, 2);
  ASSERT_FALSE(trace.segments().empty());
  EXPECT_EQ(trace.segments().front().kind, SegmentKind::kIdle);
  EXPECT_NEAR(trace.segments().front().end, 5.0, 1e-9);
}

TEST(Simulator, RejectsEmptyTaskSet) {
  TaskSet empty;
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  core::NoDvsGovernor g;
  EXPECT_THROW((void)simulate(empty, *workload, proc, g), util::ContractError);
}

TEST(Simulator, GovernorReturningGarbageIsCaught) {
  class BadGovernor final : public Governor {
   public:
    double select_speed(const Job&, const SimContext&) override {
      return std::nan("");
    }
    std::string name() const override { return "bad"; }
  };
  const TaskSet ts = one_task();
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  BadGovernor g;
  EXPECT_THROW((void)simulate(ts, *workload, proc, g), util::InternalError);
}

}  // namespace
}  // namespace dvs::sim
