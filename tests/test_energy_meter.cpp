#include "cpu/energy_meter.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace dvs::cpu {
namespace {

using util::ContractError;

TEST(EnergyMeter, IntegratesBusyPower) {
  EnergyMeter m(cubic_power_model(), 2);
  m.add_busy(2.0, 1.0, 0);    // 2.0 * 1.0
  m.add_busy(4.0, 0.5, 1);    // 4.0 * 0.125
  EXPECT_DOUBLE_EQ(m.busy_energy(), 2.5);
  EXPECT_DOUBLE_EQ(m.busy_time(), 6.0);
  EXPECT_DOUBLE_EQ(m.per_task_energy()[0], 2.0);
  EXPECT_DOUBLE_EQ(m.per_task_energy()[1], 0.5);
}

TEST(EnergyMeter, IdleUsesIdlePower) {
  EnergyMeter m(cubic_power_model(0.1), 1);
  m.add_idle(5.0);
  EXPECT_DOUBLE_EQ(m.idle_energy(), 0.5);
  EXPECT_DOUBLE_EQ(m.idle_time(), 5.0);
}

TEST(EnergyMeter, TransitionsAccumulate) {
  EnergyMeter m(cubic_power_model(), 1);
  m.add_transition(1e-4, 0.01);
  m.add_transition(1e-4, 0.02);
  EXPECT_DOUBLE_EQ(m.transition_energy(), 0.03);
  EXPECT_DOUBLE_EQ(m.transition_time(), 2e-4);
  EXPECT_EQ(m.transition_count(), 2);
}

TEST(EnergyMeter, TotalSumsComponents) {
  EnergyMeter m(cubic_power_model(0.1), 1);
  m.add_busy(1.0, 1.0, 0);
  m.add_idle(1.0);
  m.add_transition(0.0, 0.05);
  EXPECT_DOUBLE_EQ(m.total_energy(), 1.0 + 0.1 + 0.05);
}

TEST(EnergyMeter, ZeroLengthIntervalsAreFree) {
  EnergyMeter m(cubic_power_model(0.1), 1);
  m.add_busy(0.0, 1.0, 0);
  m.add_idle(0.0);
  EXPECT_DOUBLE_EQ(m.total_energy(), 0.0);
}

TEST(EnergyMeter, RejectsBadInput) {
  EnergyMeter m(cubic_power_model(), 1);
  EXPECT_THROW(m.add_busy(-1.0, 1.0, 0), ContractError);
  EXPECT_THROW(m.add_busy(1.0, 1.0, 5), ContractError);
  EXPECT_THROW(m.add_idle(-1.0), ContractError);
  EXPECT_THROW(m.add_transition(-1.0, 0.0), ContractError);
  EXPECT_THROW(EnergyMeter(nullptr, 1), ContractError);
}

}  // namespace
}  // namespace dvs::cpu
