// Test double for sim::SimContext: lets governor unit tests pin the exact
// scheduler state (time, active jobs, next arrival) a decision sees.
#pragma once

#include <algorithm>
#include <deque>
#include <limits>
#include <span>
#include <vector>

#include "sim/governor.hpp"
#include "task/task_set.hpp"

namespace dvs::testing {

class FakeContext final : public sim::SimContext {
 public:
  explicit FakeContext(task::TaskSet ts) : ts_(std::move(ts)) {}

  Time now() const override { return now_; }
  const task::TaskSet& task_set() const override { return ts_; }
  sim::SchedulingPolicy policy() const override { return policy_; }
  double alpha_min() const override { return alpha_min_; }
  Time next_release_after(Time t) const override {
    // Periodic model: compute honestly from the task set so governors that
    // reason about future arrivals see consistent answers.
    Time best = std::numeric_limits<double>::infinity();
    for (const auto& task : ts_) {
      std::int64_t k = task.first_job_at_or_after(t + 2.0 * kTimeEps);
      Time r = task.release_of(k);
      if (r <= t + kTimeEps) r = task.release_of(k + 1);
      best = std::min(best, r);
    }
    return best;
  }
  std::span<const sim::Job* const> active_jobs() const override {
    // Rebuilt on every call (tests mutate jobs_ freely between queries);
    // the scratch member gives the span the lifetime the contract needs.
    scratch_.clear();
    scratch_.reserve(jobs_.size());
    for (const auto& j : jobs_) scratch_.push_back(&j);
    std::sort(scratch_.begin(), scratch_.end(),
              [](const sim::Job* a, const sim::Job* b) {
                if (a->abs_deadline != b->abs_deadline) {
                  return a->abs_deadline < b->abs_deadline;
                }
                return a->task_id < b->task_id;
              });
    return scratch_;
  }
  double current_speed() const override { return speed_; }

  /// Add an active job of task `task_id`, released at `release`, with
  /// `executed` work already done.  Returns a reference for tweaking.
  sim::Job& add_job(std::int32_t task_id, std::int64_t index, Time release,
                    Work executed = 0.0) {
    const auto& t = ts_[static_cast<std::size_t>(task_id)];
    sim::Job j;
    j.task_id = task_id;
    j.index = index;
    j.release = release;
    j.abs_deadline = release + t.deadline;
    j.wcet = t.wcet;
    j.actual = t.wcet;
    j.executed = executed;
    jobs_.push_back(j);
    return jobs_.back();
  }

  void clear_jobs() { jobs_.clear(); }

  Time now_ = 0.0;
  double alpha_min_ = 0.05;
  double speed_ = 1.0;
  sim::SchedulingPolicy policy_ = sim::SchedulingPolicy::kEdf;
  std::deque<sim::Job> jobs_;  ///< deque: stable references as it grows

 private:
  task::TaskSet ts_;
  mutable std::vector<const sim::Job*> scratch_;
};

}  // namespace dvs::testing
