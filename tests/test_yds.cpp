// The YDS kernel against ground truth: hand-computed critical-interval
// cases from the Li/Yao/Yuan construction, the discrete two-level
// rounding against closed-form energies, and a brute-force differential
// — on tiny job sets, no enumerated feasible per-job speed assignment
// may use less energy than yds_schedule() reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "cpu/power_model.hpp"
#include "opt/yds.hpp"
#include "task/task.hpp"
#include "task/task_set.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dvs::opt {
namespace {

OracleJob job(Time r, Time d, Work w, std::int32_t id = 0,
              std::int64_t index = 0) {
  OracleJob j;
  j.task_id = id;
  j.index = index;
  j.release = r;
  j.deadline = d;
  j.work = w;
  return j;
}

// Exact preemptive-EDF replay of a per-job constant-speed assignment:
// true iff every job finishes by its deadline.  Ties on equal deadlines
// go to the lower index; the choice cannot affect feasibility.
bool edf_feasible(const std::vector<OracleJob>& jobs,
                  const std::vector<double>& speed, double tol = 1e-9) {
  const std::size_t n = jobs.size();
  std::vector<Work> rem(n);
  Time t = std::numeric_limits<Time>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    rem[i] = jobs[i].work;
    t = std::min(t, jobs[i].release);
  }
  std::size_t done = 0;
  while (done < n) {
    // Highest-priority active job; earliest pending release for idling.
    std::size_t run = n;
    Time next_r = std::numeric_limits<Time>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (rem[i] <= 0.0) continue;
      if (jobs[i].release <= t + tol) {
        if (run == n || jobs[i].deadline < jobs[run].deadline) run = i;
      } else {
        next_r = std::min(next_r, jobs[i].release);
      }
    }
    if (run == n) {
      t = next_r;
      continue;
    }
    const Time finish = t + rem[run] / speed[run];
    if (next_r < finish) {
      rem[run] -= (next_r - t) * speed[run];
      t = next_r;
    } else {
      if (finish > jobs[run].deadline + tol) return false;
      rem[run] = 0.0;
      t = finish;
      ++done;
    }
  }
  return true;
}

TEST(Yds, EmptyInstance) {
  const YdsSchedule s = yds_schedule({});
  EXPECT_TRUE(s.jobs.empty());
  EXPECT_TRUE(s.intervals.empty());
  EXPECT_EQ(s.max_speed, 0.0);
  EXPECT_TRUE(s.feasible());
}

TEST(Yds, RejectsMalformedJobs) {
  EXPECT_THROW((void)yds_schedule({job(0.0, 1.0, 0.0)}), util::ContractError);
  EXPECT_THROW((void)yds_schedule({job(1.0, 1.0, 0.5)}), util::ContractError);
  EXPECT_THROW((void)yds_schedule({job(2.0, 1.0, 0.5)}), util::ContractError);
}

TEST(Yds, SingleJobRunsAtItsDensity) {
  const YdsSchedule s = yds_schedule({job(0.0, 2.0, 1.0)});
  ASSERT_EQ(s.speed.size(), 1u);
  EXPECT_NEAR(s.speed[0], 0.5, 1e-12);
  EXPECT_NEAR(s.max_speed, 0.5, 1e-12);
  ASSERT_EQ(s.intervals.size(), 1u);
  EXPECT_NEAR(s.intervals[0].start, 0.0, 1e-12);
  EXPECT_NEAR(s.intervals[0].end, 2.0, 1e-12);
  EXPECT_EQ(s.intervals[0].n_jobs, 1u);
  // Cubic power: E = w * P(s) / s = 1 * 0.125 / 0.5.
  const auto power = cpu::cubic_power_model();
  EXPECT_NEAR(s.continuous_energy(*power), 0.25, 1e-12);
}

// The canonical nested construction: a tight inner job forces a fast
// critical interval; the outer job is then stretched over the REMAINING
// time only (Li/Yao/Yuan's collapse step), not its naive full window.
TEST(Yds, NestedCriticalIntervalPeelsInnerFirst) {
  const std::vector<OracleJob> jobs = {
      job(0.0, 10.0, 2.0, 0),  // outer: naive density 0.2
      job(3.0, 7.0, 4.0, 1),   // inner: density 1.0 — the critical interval
  };
  const YdsSchedule s = yds_schedule(jobs);
  ASSERT_EQ(s.speed.size(), 2u);
  EXPECT_NEAR(s.speed[1], 1.0, 1e-12);
  // Outer job gets 10 - 4 = 6 seconds of real time for 2 units of work —
  // NOT 2/10: the collapse is what makes the answer optimal.
  EXPECT_NEAR(s.speed[0], 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(s.max_speed, 1.0, 1e-12);
  EXPECT_TRUE(s.feasible());

  ASSERT_EQ(s.intervals.size(), 2u);
  EXPECT_NEAR(s.intervals[0].start, 3.0, 1e-12);
  EXPECT_NEAR(s.intervals[0].end, 7.0, 1e-12);
  EXPECT_NEAR(s.intervals[0].speed, 1.0, 1e-12);
  // Second interval's original-time footprint spans the outer window,
  // with the peeled inner interval nested inside it.
  EXPECT_NEAR(s.intervals[1].start, 0.0, 1e-12);
  EXPECT_NEAR(s.intervals[1].end, 10.0, 1e-12);
  EXPECT_NEAR(s.intervals[1].speed, 2.0 / 6.0, 1e-12);
  // Peel order is non-increasing in speed.
  EXPECT_GE(s.intervals[0].speed, s.intervals[1].speed);
}

// Two adjacent jobs of identical density merge into ONE critical
// interval (the tie-break prefers the widest window), which is exactly
// the optimal constant-speed schedule.
TEST(Yds, EqualDensityTieMergesIntoOneInterval) {
  const YdsSchedule s =
      yds_schedule({job(0.0, 2.0, 1.0, 0), job(2.0, 4.0, 1.0, 1)});
  ASSERT_EQ(s.intervals.size(), 1u);
  EXPECT_NEAR(s.intervals[0].start, 0.0, 1e-12);
  EXPECT_NEAR(s.intervals[0].end, 4.0, 1e-12);
  EXPECT_EQ(s.intervals[0].n_jobs, 2u);
  EXPECT_NEAR(s.speed[0], 0.5, 1e-12);
  EXPECT_NEAR(s.speed[1], 0.5, 1e-12);
}

TEST(Yds, OverloadedInstanceIsReportedInfeasible) {
  const YdsSchedule s = yds_schedule({job(0.0, 1.0, 2.0)});
  EXPECT_NEAR(s.max_speed, 2.0, 1e-12);
  EXPECT_FALSE(s.feasible());
}

TEST(YdsDiscrete, TwoLevelSplitMatchesClosedForm) {
  YdsSchedule s = yds_schedule({job(0.0, 2.0, 1.0)});  // speed 0.5
  const auto power = cpu::cubic_power_model();
  const auto scale = cpu::FrequencyScale::discrete({0.4, 1.0});
  // t = 2; x = t(s-lo)/(hi-lo) = 2*0.1/0.6 = 1/3 at speed 1, rest at 0.4:
  // E = 1^3 * 1/3 + 0.4^3 * 5/3.
  const double expected = 1.0 / 3.0 + 0.064 * 5.0 / 3.0;
  EXPECT_NEAR(s.discrete_energy(scale, *power), expected, 1e-12);
  // Convexity: discrete rounding can never beat the continuous optimum.
  EXPECT_GE(s.discrete_energy(scale, *power), s.continuous_energy(*power));
}

TEST(YdsDiscrete, ExactLevelNeedsNoSplit) {
  YdsSchedule s = yds_schedule({job(0.0, 2.0, 1.0)});  // speed 0.5
  const auto power = cpu::cubic_power_model();
  const auto scale = cpu::FrequencyScale::discrete({0.5, 1.0});
  EXPECT_NEAR(s.discrete_energy(scale, *power), 0.25, 1e-12);
}

TEST(YdsDiscrete, BelowLowestLevelRunsAtLowestLevel) {
  YdsSchedule s = yds_schedule({job(0.0, 5.0, 1.0)});  // speed 0.2
  const auto power = cpu::cubic_power_model();
  const auto scale = cpu::FrequencyScale::discrete({0.4, 1.0});
  // Runs at 0.4 for w/0.4 = 2.5 s (busy-only; the idle tail is free).
  EXPECT_NEAR(s.discrete_energy(scale, *power), 0.064 * 2.5, 1e-12);
}

TEST(YdsDiscrete, ContinuousScaleClampsAtAlphaMin) {
  YdsSchedule s = yds_schedule({job(0.0, 5.0, 1.0)});  // speed 0.2
  const auto power = cpu::cubic_power_model();
  const auto scale = cpu::FrequencyScale::continuous(0.3);
  EXPECT_NEAR(s.discrete_energy(scale, *power), 0.027 / 0.3, 1e-12);
}

TEST(YdsExpand, MirrorsEngineReleaseSemantics) {
  task::TaskSet ts("expand");
  ts.add(task::make_task(0, "t0", 0.1, 0.02));
  const auto workload = task::constant_ratio_model(1.0);
  // Releases at 0, 0.1, 0.2; the job released exactly at the horizon is
  // never activated, matching the simulator's release loop.
  const auto jobs = expand_jobs(ts, *workload, 0.3);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_NEAR(jobs[2].release, 0.2, 1e-12);
  EXPECT_NEAR(jobs[2].deadline, 0.3, 1e-12);
  EXPECT_NEAR(jobs[1].work, 0.02, 1e-12);
}

TEST(YdsBounds, FiltersJobsWithDeadlinesBeyondHorizon) {
  task::TaskSet ts("bounds");
  ts.add(task::make_task(0, "t0", 0.1, 0.05));
  const auto workload = task::constant_ratio_model(1.0);
  const cpu::Processor proc = cpu::ideal_processor();
  // Horizon 0.25 releases jobs at 0, 0.1, 0.2 but only the first two have
  // deadlines inside the window.
  const OracleBounds b = oracle_bounds(ts, *workload, proc, 0.25);
  EXPECT_EQ(b.n_jobs, 2u);
  EXPECT_TRUE(b.feasible);
  EXPECT_NEAR(b.max_speed, 0.5, 1e-12);
  // Two back-to-back density-0.5 windows: E = 2 * 0.05 * P(0.5)/0.5.
  EXPECT_NEAR(b.continuous_energy, 0.025, 1e-12);
  EXPECT_NEAR(b.discrete_energy, b.continuous_energy, 1e-12);  // continuous scale
  EXPECT_TRUE(b.valid());
}

// Brute-force differential: on tiny random instances, enumerate every
// per-job speed assignment on a fixed grid, replay each under preemptive
// EDF, and record the cheapest feasible one.  Grid schedules are a
// subset of all schedules, so no grid point may undercut the YDS energy;
// the YDS assignment itself must replay feasibly.
TEST(YdsDifferential, NoEnumeratedAssignmentBeatsYds) {
  const auto power = cpu::cubic_power_model();
  const std::vector<double> grid = {0.125, 0.25, 0.375, 0.5,
                                    0.625, 0.75, 0.875, 1.0};
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    util::Rng rng(seed);
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 4));
    std::vector<OracleJob> jobs;
    for (std::size_t i = 0; i < n; ++i) {
      const Time r = rng.uniform(0.0, 3.0);
      const Time len = rng.uniform(0.5, 3.0);
      // Per-job density <= 0.5/n caps ANY window's combined intensity at
      // 0.5, so every instance is feasible and grid speeds can compete.
      jobs.push_back(job(r, r + len,
                         rng.uniform(0.1, 0.5) * len / static_cast<double>(n),
                         static_cast<std::int32_t>(i)));
    }
    SCOPED_TRACE("replay: seed=" + std::to_string(seed) +
                 " n=" + std::to_string(n));

    const YdsSchedule s = yds_schedule(jobs);
    ASSERT_TRUE(s.feasible());
    EXPECT_TRUE(edf_feasible(jobs, s.speed))
        << "YDS speeds must replay feasibly under EDF";
    const double yds_energy = s.continuous_energy(*power);

    double grid_best = std::numeric_limits<double>::infinity();
    std::vector<std::size_t> pick(n, 0);
    for (;;) {
      std::vector<double> speed(n);
      double e = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        speed[i] = grid[pick[i]];
        e += power->busy_power(speed[i]) * (jobs[i].work / speed[i]);
      }
      if (e < grid_best && edf_feasible(jobs, speed)) grid_best = e;
      // Odometer increment over the grid.
      std::size_t d = 0;
      while (d < n && ++pick[d] == grid.size()) pick[d++] = 0;
      if (d == n) break;
    }
    ASSERT_TRUE(std::isfinite(grid_best)) << "grid found no feasible point";
    EXPECT_LE(yds_energy, grid_best + 1e-9)
        << "an enumerated assignment beat the 'optimal' schedule";
  }
}

}  // namespace
}  // namespace dvs::opt
