// The partitioned multiprocessor backend (mp/mp_sim.hpp): plan building,
// workload remapping (common random numbers across partitionings),
// aggregation, powered-down cores, per-core traces, rejection reporting,
// and thread-count invariance of simulate_mp.
#include "mp/mp_sim.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "core/registry.hpp"
#include "cpu/processors.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json_mini.hpp"
#include "sweep_equality.hpp"
#include "task/benchmarks.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dvs::mp {
namespace {

MpOptions wf_options(std::size_t n_cores, Time length = 0.5) {
  MpOptions o;
  o.n_cores = n_cores;
  o.heuristic = PartitionHeuristic::kWorstFit;
  o.length = length;
  return o;
}

GovernorFactory registry_factory(const std::string& name) {
  return [name] { return core::make_governor(name); };
}

task::TaskSet random_set(double u, std::uint64_t seed, std::size_t n) {
  task::GeneratorConfig cfg;
  cfg.n_tasks = n;
  cfg.total_utilization = u;
  cfg.period_min = 0.01;
  cfg.period_max = 0.16;
  cfg.bcet_ratio = 0.1;
  cfg.grid_fraction = 0.5;
  cfg.allow_overload = u > 1.0;
  cfg.max_task_utilization = 0.9;
  util::Rng rng(seed);
  return task::generate_task_set(cfg, rng);
}

TEST(MpPlan, ResolvesLengthFromTheFullSet) {
  const task::TaskSet ts = task::cnc_task_set();
  const auto workload = task::uniform_model(7);
  const MpPlan def =
      plan_mp(ts, workload, 2, PartitionHeuristic::kWorstFit);
  EXPECT_EQ(def.length, ts.default_sim_length());
  const MpPlan fixed =
      plan_mp(ts, workload, 2, PartitionHeuristic::kWorstFit, 0.25);
  EXPECT_EQ(fixed.length, 0.25);
  ASSERT_TRUE(fixed.feasible());
  ASSERT_EQ(fixed.core_sets.size(), 2u);
  ASSERT_EQ(fixed.core_workloads.size(), 2u);
}

TEST(MpPlan, InfeasiblePlanIsNotAnError) {
  task::TaskSet ts("heavy");
  for (int i = 0; i < 3; ++i) {
    ts.add(task::make_task(i, "h" + std::to_string(i), 0.01, 0.007));
  }
  const MpPlan plan = plan_mp(ts, task::uniform_model(1), 2,
                              PartitionHeuristic::kFirstFit);
  EXPECT_FALSE(plan.feasible());
  EXPECT_TRUE(plan.core_sets.empty());
  EXPECT_FALSE(plan.partition.error.empty());
}

TEST(MpWorkload, RemapDrawsWithGlobalTaskIds) {
  const task::TaskSet ts = task::cnc_task_set();
  const auto inner = task::uniform_model(99);
  // A core holding global tasks {2, 5}: local 0 -> global 2, 1 -> global 5.
  const auto remapped = remap_workload(inner, {ts[2].id, ts[5].id});
  task::Task local = ts[2];
  local.id = 0;
  for (std::int64_t k = 0; k < 16; ++k) {
    EXPECT_EQ(remapped->draw(local, k), inner->draw(ts[2], k));
  }
  task::Task local1 = ts[5];
  local1.id = 1;
  EXPECT_EQ(remapped->draw(local1, 3), inner->draw(ts[5], 3));
  EXPECT_EQ(remapped->name(), inner->name());  // transparent
}

TEST(MpSimulate, AggregateSumsTheCores) {
  const task::TaskSet ts = task::cnc_task_set();
  const auto workload = task::uniform_model(42);
  const MpResult mp =
      simulate_mp(ts, workload, cpu::ideal_processor(),
                  registry_factory("ccEDF"), wf_options(2));
  ASSERT_EQ(mp.cores.size(), 2u);
  double busy_e = 0.0, busy_t = 0.0, speed_dot_busy = 0.0;
  std::int64_t released = 0, misses = 0, switches = 0;
  for (const auto& c : mp.cores) {
    busy_e += c.busy_energy;
    busy_t += c.busy_time;
    speed_dot_busy += c.average_speed * c.busy_time;
    released += c.jobs_released;
    misses += c.deadline_misses;
    switches += c.speed_switches;
  }
  EXPECT_EQ(mp.total.busy_energy, busy_e);
  EXPECT_EQ(mp.total.busy_time, busy_t);
  EXPECT_EQ(mp.total.jobs_released, released);
  EXPECT_EQ(mp.total.deadline_misses, misses);
  EXPECT_EQ(mp.total.speed_switches, switches);
  EXPECT_EQ(mp.total.average_speed, speed_dot_busy / busy_t);
  // per-task scatter: every global slot filled from its core's local slot.
  ASSERT_EQ(mp.total.per_task_energy.size(), ts.size());
  const Partition& p = mp.partition;
  for (std::size_t c = 0; c < mp.cores.size(); ++c) {
    for (std::size_t i = 0; i < p.tasks_of_core[c].size(); ++i) {
      EXPECT_EQ(mp.total.per_task_energy[p.tasks_of_core[c][i]],
                mp.cores[c].per_task_energy[i]);
      EXPECT_EQ(mp.total.worst_response[p.tasks_of_core[c][i]],
                mp.cores[c].worst_response[i]);
    }
  }
}

TEST(MpSimulate, EmptyCoresArePoweredDown) {
  task::TaskSet ts("tiny");
  ts.add(task::make_task(0, "only0", 0.01, 0.004, 0.002));
  ts.add(task::make_task(1, "only1", 0.02, 0.008, 0.002));
  const MpResult mp =
      simulate_mp(ts, task::uniform_model(3), cpu::ideal_processor(),
                  registry_factory("lpSEH"), wf_options(4));
  ASSERT_EQ(mp.cores.size(), 4u);
  std::size_t empty = 0;
  for (std::size_t c = 0; c < 4; ++c) {
    if (!mp.partition.tasks_of_core[c].empty()) continue;
    ++empty;
    EXPECT_EQ(mp.cores[c].total_energy(), 0.0);
    EXPECT_EQ(mp.cores[c].jobs_released, 0);
    EXPECT_EQ(mp.cores[c].busy_time, 0.0);
    EXPECT_EQ(mp.cores[c].sim_length, 0.5);  // placeholder keeps the length
  }
  EXPECT_EQ(empty, 2u);
  EXPECT_EQ(mp.total.deadline_misses, 0);
  EXPECT_GT(mp.total.jobs_released, 0);
}

TEST(MpSimulate, RejectionThrowsNamingTheOffendingTask) {
  task::TaskSet ts("heavy");
  for (int i = 0; i < 3; ++i) {
    ts.add(task::make_task(i, "hog" + std::to_string(i), 0.01, 0.007));
  }
  try {
    (void)simulate_mp(ts, task::uniform_model(1), cpu::ideal_processor(),
                      registry_factory("noDVS"), wf_options(2));
    FAIL() << "expected ContractError for the rejected partition";
  } catch (const util::ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("hog2"), std::string::npos)
        << e.what();
  }
}

TEST(MpSimulate, ThreadCountDoesNotChangeOneBit) {
  const task::TaskSet ts = random_set(1.4, 77, 8);
  const auto workload = task::uniform_model(77);
  MpOptions o = wf_options(4);
  o.record_jobs = true;
  o.n_threads = 1;
  const MpResult serial = simulate_mp(ts, workload, cpu::ideal_processor(),
                                      registry_factory("DRA"), o);
  o.n_threads = 8;
  const MpResult parallel = simulate_mp(ts, workload, cpu::ideal_processor(),
                                        registry_factory("DRA"), o);
  exp::expect_same_mp(serial, parallel);
}

TEST(MpSimulate, JobRecordsCarryGlobalTaskIds) {
  const task::TaskSet ts = task::cnc_task_set();
  const auto workload = task::uniform_model(5);
  MpOptions o = wf_options(2);
  o.record_jobs = true;
  const MpResult mp = simulate_mp(ts, workload, cpu::ideal_processor(),
                                  registry_factory("staticEDF"), o);
  ASSERT_FALSE(mp.total.jobs.empty());
  std::map<std::int32_t, std::int64_t> per_task;
  for (const auto& j : mp.total.jobs) {
    ASSERT_GE(j.task_id, 0);
    ASSERT_LT(static_cast<std::size_t>(j.task_id), ts.size());
    ++per_task[j.task_id];
  }
  // Every task of the full set released jobs under its global id.
  EXPECT_EQ(per_task.size(), ts.size());
  // And the records agree with the per-core recordings.
  std::int64_t core_jobs = 0;
  for (const auto& c : mp.cores) {
    core_jobs += static_cast<std::int64_t>(c.jobs.size());
  }
  EXPECT_EQ(static_cast<std::int64_t>(mp.total.jobs.size()), core_jobs);
}

TEST(MpSimulate, PerCoreTracesExportAsOnePidPerCore) {
  const task::TaskSet ts = task::cnc_task_set();
  const auto workload = task::uniform_model(11);
  std::vector<sim::VectorTrace> traces;
  MpOptions o = wf_options(2, 0.2);
  o.traces = &traces;
  const MpResult mp = simulate_mp(ts, workload, cpu::ideal_processor(),
                                  registry_factory("lpSEH"), o);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_FALSE(traces[0].segments().empty());
  EXPECT_FALSE(traces[1].segments().empty());

  const MpPlan plan =
      plan_mp(ts, workload, 2, PartitionHeuristic::kWorstFit, 0.2);
  std::vector<obs::TraceProcess> procs;
  for (std::size_t c = 0; c < traces.size(); ++c) {
    procs.push_back({"lpSEH/core" + std::to_string(c), &plan.core_sets[c],
                     &traces[c]});
  }
  std::ostringstream out;
  obs::write_chrome_trace(out, ts.name(), procs, plan.length);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"lpSEH/core0\""), std::string::npos);
  EXPECT_NE(json.find("\"lpSEH/core1\""), std::string::npos);
  // The footer is JsonWriter-emitted (compact); check it structurally.
  const obs::JsonValue doc = obs::parse_json(json);
  const obs::JsonValue* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  const obs::JsonValue* governors = other->find("governors");
  ASSERT_NE(governors, nullptr);
  EXPECT_EQ(governors->number, 2.0);
  (void)mp;
}

TEST(MpSimulate, SummaryMentionsPartitionShape) {
  const task::TaskSet ts = task::cnc_task_set();
  const MpResult mp =
      simulate_mp(ts, task::uniform_model(42), cpu::ideal_processor(),
                  registry_factory("ccEDF"), wf_options(2));
  const std::string s = mp.summary();
  EXPECT_NE(s.find("ccEDF"), std::string::npos) << s;
  EXPECT_NE(s.find("wf 2/2 cores"), std::string::npos) << s;
}

}  // namespace
}  // namespace dvs::mp
