// Energy-ordering properties.  Per-case guarantees use hard assertions;
// statistical orderings (who beats whom on average) are asserted over a
// batch of task sets with a safety margin, mirroring how the paper's
// claims are statements about means.
#include <gtest/gtest.h>

#include <map>

#include "core/registry.hpp"
#include "cpu/processors.hpp"
#include "exp/experiment.hpp"
#include "task/generator.hpp"
#include "task/workload.hpp"
#include "util/rng.hpp"

namespace dvs {
namespace {

task::TaskSet random_set(double utilization, std::uint64_t seed) {
  task::GeneratorConfig cfg;
  cfg.n_tasks = 5;
  cfg.total_utilization = utilization;
  cfg.period_min = 0.01;
  cfg.period_max = 0.16;
  cfg.bcet_ratio = 0.1;
  cfg.grid_fraction = 0.5;
  util::Rng rng(seed);
  return task::generate_task_set(cfg, rng);
}

/// Mean normalized energy of each governor over a batch of cases.
std::map<std::string, double> batch_means(double utilization,
                                          double workload_ratio_hi,
                                          std::size_t cases) {
  exp::ExperimentConfig cfg = exp::default_config();
  cfg.sim_length = 1.5;
  std::map<std::string, util::RunningStats> acc;
  for (std::size_t i = 0; i < cases; ++i) {
    const auto ts = random_set(utilization, 500 + i);
    const auto workload =
        task::uniform_ratio_model(i + 1, 0.05, workload_ratio_hi);
    const auto outcome = exp::run_case({ts, workload}, cfg);
    for (const auto& g : outcome.outcomes) {
      acc[g.governor].add(g.normalized_energy);
    }
  }
  std::map<std::string, double> means;
  for (const auto& [name, stats] : acc) means[name] = stats.mean();
  return means;
}

TEST(EnergyProperty, NoGovernorExceedsNoDvs) {
  // On an ideal processor (zero idle power, convex P), any speed reduction
  // strictly reduces busy energy, so every governor is at most 1.0.
  exp::ExperimentConfig cfg = exp::default_config();
  cfg.sim_length = 1.5;
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto ts = random_set(0.3 + 0.15 * static_cast<double>(i), 90 + i);
    const auto workload = task::uniform_model(i);
    const auto outcome = exp::run_case({ts, workload}, cfg);
    for (const auto& g : outcome.outcomes) {
      EXPECT_LE(g.normalized_energy, 1.0 + 1e-9)
          << g.governor << " case " << i;
      EXPECT_EQ(g.result.deadline_misses, 0);
    }
  }
}

TEST(EnergyProperty, StaticEdfMatchesTheoreticalSavingOnWorstCase) {
  // Full-WCET workload, ideal cubic processor: staticEDF busy energy is
  // exactly U^2 of noDVS busy energy.
  const auto ts = random_set(0.6, 4);
  const auto workload = task::constant_ratio_model(1.0);
  exp::ExperimentConfig cfg = exp::default_config();
  cfg.governors = {"staticEDF"};
  cfg.sim_length = 2.0;
  const auto outcome = exp::run_case({ts, workload}, cfg);
  const auto& nodvs = outcome.by_name("noDVS").result;
  const auto& stat = outcome.by_name("staticEDF").result;
  EXPECT_NEAR(stat.busy_energy / nodvs.busy_energy, 0.36, 0.01);
}

TEST(EnergyProperty, PaperGovernorDeliversLargeAbsoluteSavings) {
  // Note: lpSEH's greedy slack assignment (all provable slack to the
  // earliest-deadline job) produces uneven speed profiles, so under convex
  // power it does NOT dominate ccEDF's spread-out slowdown on every
  // workload — see EXPERIMENTS.md.  The robust claim is the large
  // absolute saving over running unscaled.
  const auto means = batch_means(0.7, 1.0, 8);
  EXPECT_LT(means.at("lpSEH"), 0.55);
}

TEST(EnergyProperty, UniformSpreadingBeatsGreedySlackAssignment) {
  // The uniformSlack extension spreads reclaimed slack over the whole
  // backlog; convexity of P(alpha) makes it at least as good as the
  // greedy assignment on average.
  const auto means = batch_means(0.7, 1.0, 8);
  EXPECT_LE(means.at("uniformSlack"), means.at("lpSEH") + 0.01);
}

TEST(EnergyProperty, PaperGovernorBeatsLppsEdfClearly) {
  const auto means = batch_means(0.7, 1.0, 8);
  EXPECT_LT(means.at("lpSEH"), means.at("lppsEDF") - 0.05);
}

TEST(EnergyProperty, DynamicSchemesBeatStaticWhenWorkloadIsLight) {
  const auto means = batch_means(0.7, /*ratio hi=*/0.4, 8);
  EXPECT_LT(means.at("lpSEH"), means.at("staticEDF") - 0.05);
  EXPECT_LT(means.at("ccEDF"), means.at("staticEDF"));
  EXPECT_LT(means.at("laEDF"), means.at("staticEDF"));
}

TEST(EnergyProperty, SavingsGrowAsWorkloadLightens) {
  const auto heavy = batch_means(0.7, 1.0, 6);
  const auto light = batch_means(0.7, 0.3, 6);
  EXPECT_LT(light.at("lpSEH"), heavy.at("lpSEH") - 0.05);
  EXPECT_LT(light.at("ccEDF"), heavy.at("ccEDF") - 0.05);
}

TEST(EnergyProperty, MoreFrequencyLevelsNeverHurtOnAverage) {
  // Nested level sets (2 ⊂ 4 ⊂ 16 levels): quantize_up can only choose a
  // lower (or equal) speed with more levels; averaged over cases, energy
  // must not increase.
  std::map<int, double> mean_by_levels;
  for (int levels : {2, 4, 16}) {
    exp::ExperimentConfig cfg = exp::default_config();
    cfg.governors = {"lpSEH"};
    cfg.processor = cpu::quantized_ideal_processor(levels);
    cfg.sim_length = 1.5;
    util::RunningStats acc;
    for (std::uint64_t i = 0; i < 6; ++i) {
      const auto ts = random_set(0.7, 300 + i);
      const auto workload = task::uniform_model(i + 41);
      const auto outcome = exp::run_case({ts, workload}, cfg);
      acc.add(outcome.by_name("lpSEH").normalized_energy);
    }
    mean_by_levels[levels] = acc.mean();
  }
  EXPECT_LE(mean_by_levels[4], mean_by_levels[2] + 0.01);
  EXPECT_LE(mean_by_levels[16], mean_by_levels[4] + 0.01);
}

TEST(EnergyProperty, ExactSlackAnalysisAtLeastAsGoodAsHeuristic) {
  util::RunningStats exact_acc;
  util::RunningStats heur_acc;
  exp::ExperimentConfig cfg = exp::default_config();
  cfg.governors = {"lpSEH", "lpSEH-h"};
  cfg.sim_length = 1.5;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto ts = random_set(0.75, 700 + i);
    const auto workload = task::uniform_model(i + 3);
    const auto outcome = exp::run_case({ts, workload}, cfg);
    exact_acc.add(outcome.by_name("lpSEH").normalized_energy);
    heur_acc.add(outcome.by_name("lpSEH-h").normalized_energy);
  }
  EXPECT_LE(exact_acc.mean(), heur_acc.mean() + 1e-9);
}

TEST(EnergyProperty, OptimalityGapsNeverDipBelowOne) {
  // With ExperimentConfig::oracle the harness appends the clairvoyant
  // oracle governor and stamps every outcome's optimality gaps.  On the
  // idle-free ideal processor no governor can beat either bound, so both
  // gaps stay >= 1 for every governor on every case, and the discrete
  // bound (the optimum restricted to realizable speeds) is at least the
  // continuous one, i.e. gap_continuous >= gap_discrete.
  exp::ExperimentConfig cfg = exp::default_config();
  cfg.sim_length = 1.0;
  cfg.oracle = true;
  for (std::uint64_t i = 0; i < 3; ++i) {
    const auto ts = random_set(0.4 + 0.2 * static_cast<double>(i), 810 + i);
    const auto workload = task::uniform_model(i + 5);
    const auto outcome = exp::run_case({ts, workload}, cfg);
    ASSERT_TRUE(outcome.bounds.valid()) << "case " << i;
    ASSERT_EQ(outcome.outcomes.back().governor, "oracle");
    for (const auto& g : outcome.outcomes) {
      SCOPED_TRACE(g.governor + " case " + std::to_string(i));
      ASSERT_FALSE(g.failed()) << g.error;
      EXPECT_EQ(g.result.deadline_misses, 0);
      EXPECT_GE(g.gap_continuous, 1.0 - 1e-6);
      EXPECT_GE(g.gap_discrete, 1.0 - 1e-6);
      EXPECT_GE(g.gap_continuous, g.gap_discrete - 1e-9);
    }
    // The simulated oracle run itself lands closest to the bound.
    const auto& oracle = outcome.outcomes.back();
    for (const auto& g : outcome.outcomes) {
      EXPECT_GE(g.gap_continuous, oracle.gap_continuous - 1e-9)
          << g.governor << " beat the clairvoyant schedule on case " << i;
    }
  }
}

TEST(EnergyProperty, AverageSpeedNeverBelowAlphaMin) {
  exp::ExperimentConfig cfg = exp::default_config();
  cfg.sim_length = 1.0;
  const auto ts = random_set(0.5, 13);
  const auto workload = task::uniform_model(9);
  const auto outcome = exp::run_case({ts, workload}, cfg);
  for (const auto& g : outcome.outcomes) {
    EXPECT_GE(g.result.average_speed,
              cfg.processor.scale.alpha_min() - 1e-9);
    EXPECT_LE(g.result.average_speed, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace dvs
